#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

ExperimentConfig tiny_experiment() {
  ExperimentConfig cfg;
  cfg.classes = 4;
  cfg.resnet_depth = 8;
  cfg.scale = RunScale{.epochs = 1,
                       .defect_runs = 2,
                       .train_size = 64,
                       .test_size = 32,
                       .image_size = 8,
                       .resnet_width = 2,
                       .batch_size = 32,
                       .name = "test"};
  cfg.seed = 77;
  return cfg;
}

TEST(PaperGrids, MatchTableI) {
  const auto test_rates = paper_test_rates();
  EXPECT_EQ(test_rates.size(), 14u);
  EXPECT_DOUBLE_EQ(test_rates.front(), 0.0);
  EXPECT_DOUBLE_EQ(test_rates.back(), 0.2);
  const auto train_rates = paper_train_rates();
  EXPECT_EQ(train_rates.size(), 7u);
  EXPECT_DOUBLE_EQ(train_rates.front(), 0.005);
  EXPECT_DOUBLE_EQ(train_rates.back(), 0.2);
}

TEST(Experiment, BuildsDatasetsAtScale) {
  const Experiment exp(tiny_experiment());
  EXPECT_EQ(exp.train_data().size(), 64);
  EXPECT_EQ(exp.test_data().size(), 32);
  EXPECT_EQ(exp.train_data().num_classes(), 4);
  EXPECT_EQ(exp.train_data().image_shape(), (Shape{3, 8, 8}));
  EXPECT_NE(exp.dataset_name().find("SynthVision"), std::string::npos);
}

TEST(Experiment, FreshModelsAreDeterministic) {
  const Experiment exp(tiny_experiment());
  auto a = exp.fresh_model();
  auto b = exp.fresh_model();
  const Tensor x = testing::random_tensor(Shape{1, 3, 8, 8}, 1);
  EXPECT_TRUE(a->forward(x, false).allclose(b->forward(x, false)));
}

TEST(Experiment, CloneReproducesOutputs) {
  const Experiment exp(tiny_experiment());
  auto model = exp.fresh_model(5);
  auto copy = exp.clone_model(*model);
  const Tensor x = testing::random_tensor(Shape{2, 3, 8, 8}, 2);
  EXPECT_TRUE(copy->forward(x, false).allclose(model->forward(x, false)));
}

TEST(Experiment, SweepRateZeroEqualsCleanAccuracy) {
  const Experiment exp(tiny_experiment());
  auto model = exp.fresh_model();
  const std::vector<double> accs = exp.sweep_rates(*model, {0.0, 0.05});
  ASSERT_EQ(accs.size(), 2u);
  EXPECT_DOUBLE_EQ(accs[0], evaluate_accuracy(*model, exp.test_data()));
  EXPECT_GE(accs[1], 0.0);
  EXPECT_LE(accs[1], 1.0);
}

TEST(Experiment, PretrainImprovesOverInit) {
  ExperimentConfig cfg = tiny_experiment();
  cfg.scale.epochs = 4;
  cfg.scale.train_size = 192;
  Experiment exp(cfg);
  auto model = exp.fresh_model();
  const double init_acc = evaluate_accuracy(*model, exp.test_data());
  const double trained_acc = exp.pretrain(*model);
  EXPECT_GT(trained_acc, init_acc);
  EXPECT_GT(trained_acc, 1.2 / 4.0);  // clearly above chance
}

TEST(Experiment, FtVariantKeepsArchitecture) {
  ExperimentConfig cfg = tiny_experiment();
  Experiment exp(cfg);
  auto model = exp.fresh_model();
  auto ft = exp.ft_variant(*model, FtScheme::kOneShot, 0.05);
  EXPECT_EQ(parameter_count(*ft), parameter_count(*model));
  // FT training actually changed the weights.
  const StateDict a = state_dict_of(*model);
  const StateDict b = state_dict_of(*ft);
  bool changed = false;
  for (const auto& [name, t] : a) {
    if (!t.allclose(b.at(name))) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Experiment, DefectEvalConfigReflectsScale) {
  const Experiment exp(tiny_experiment());
  EXPECT_EQ(exp.defect_eval_config().num_runs, 2);
}

}  // namespace
}  // namespace ftpim
