#include <gtest/gtest.h>

#include <memory>

#include "src/core/evaluator.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

std::unique_ptr<InMemoryDataset> tiny_vision(std::uint64_t stream, int samples = 128) {
  SynthVisionConfig cfg;
  cfg.num_classes = 3;
  cfg.image_size = 8;
  cfg.samples = samples;
  cfg.seed = 21;
  cfg.noise_std = 0.3f;
  return make_synthvision(cfg, stream);
}

std::unique_ptr<Sequential> tiny_model(std::uint64_t seed) {
  return make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 4, .classes = 3, .seed = seed});
}

FtTrainConfig fast_ft(double target) {
  FtTrainConfig ft;
  ft.base.epochs = 2;
  ft.base.batch_size = 32;
  ft.base.sgd.lr = 0.05f;
  ft.base.augment.enabled = false;
  ft.target_p_sa = target;
  return ft;
}

TEST(DefaultRamp, AscendsToTarget) {
  const auto ramp = default_progressive_ramp(0.08);
  ASSERT_EQ(ramp.size(), 4u);
  EXPECT_DOUBLE_EQ(ramp[0], 0.01);
  EXPECT_DOUBLE_EQ(ramp[3], 0.08);
  for (std::size_t i = 1; i < ramp.size(); ++i) EXPECT_GT(ramp[i], ramp[i - 1]);
}

TEST(FtTrainer, Validation) {
  const auto train = tiny_vision(1);
  auto model = tiny_model(1);
  FtTrainConfig bad = fast_ft(-0.1);
  EXPECT_THROW(FaultTolerantTrainer(*model, *train, bad), std::invalid_argument);

  FtTrainConfig descending = fast_ft(0.1);
  descending.scheme = FtScheme::kProgressive;
  descending.progressive_levels = {0.1, 0.05};
  EXPECT_THROW(FaultTolerantTrainer(*model, *train, descending), std::invalid_argument);

  FtTrainConfig wrong_end = fast_ft(0.1);
  wrong_end.scheme = FtScheme::kProgressive;
  wrong_end.progressive_levels = {0.01, 0.05};
  EXPECT_THROW(FaultTolerantTrainer(*model, *train, wrong_end), std::invalid_argument);
}

TEST(FtTrainer, OneShotUsesSingleStage) {
  const auto train = tiny_vision(2);
  auto model = tiny_model(2);
  FaultTolerantTrainer trainer(*model, *train, fast_ft(0.05));
  ASSERT_EQ(trainer.stage_rates().size(), 1u);
  EXPECT_DOUBLE_EQ(trainer.stage_rates()[0], 0.05);
}

TEST(FtTrainer, ProgressiveDefaultsToRamp) {
  const auto train = tiny_vision(3);
  auto model = tiny_model(3);
  FtTrainConfig ft = fast_ft(0.08);
  ft.scheme = FtScheme::kProgressive;
  FaultTolerantTrainer trainer(*model, *train, ft);
  EXPECT_EQ(trainer.stage_rates(), default_progressive_ramp(0.08));
}

TEST(FtTrainer, RunReportsStagesAndFaultRate) {
  const auto train = tiny_vision(4);
  auto model = tiny_model(4);
  FtTrainConfig ft = fast_ft(0.05);
  ft.scheme = FtScheme::kProgressive;
  ft.progressive_levels = {0.025, 0.05};
  FaultTolerantTrainer trainer(*model, *train, ft);
  const FtTrainStats stats = trainer.run();
  ASSERT_EQ(stats.stage_stats.size(), 2u);
  EXPECT_EQ(stats.stage_stats[0].epoch_losses.size(), 2u);
  // Mean observed cell fault rate across stages ~ mean of the two levels.
  EXPECT_NEAR(stats.mean_cell_fault_rate, 0.0375, 0.02);
}

TEST(FtTrainer, WeightsEndCleanAndFinite) {
  const auto train = tiny_vision(5);
  auto model = tiny_model(5);
  FtTrainConfig ft = fast_ft(0.3);  // heavy faults during training
  FaultTolerantTrainer(*model, *train, ft).run();
  for (const Param* p : parameters_of(*model)) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(p->value[i])) << p->name;
    }
  }
  // A clean forward still works and is not degenerate.
  const auto test = tiny_vision(6, 64);
  EXPECT_GT(evaluate_accuracy(*model, *test), 0.2);
}

TEST(FtTrainer, ImprovesDefectAccuracyOverPlainTraining) {
  // Integration check of the paper's core claim at miniature scale.
  const auto train = tiny_vision(7, 256);
  const auto test = tiny_vision(8, 128);
  const double p_sa = 0.08;

  auto plain = tiny_model(9);
  {
    TrainConfig tc = fast_ft(p_sa).base;
    tc.epochs = 6;
    Trainer(*plain, *train, tc).run();
  }
  auto ft_model = std::make_unique<Sequential>();
  // Clone plain into a new model and FT-train it.
  auto clone = tiny_model(9);
  load_state_dict_into(*clone, state_dict_of(*plain));
  FtTrainConfig ft = fast_ft(p_sa);
  ft.base.epochs = 6;
  FaultTolerantTrainer(*clone, *train, ft).run();

  DefectEvalConfig cfg;
  cfg.num_runs = 8;
  cfg.seed = 123;
  const double acc_plain = evaluate_under_defects(*plain, *test, p_sa, cfg).mean_acc;
  const double acc_ft = evaluate_under_defects(*clone, *test, p_sa, cfg).mean_acc;
  EXPECT_GT(acc_ft, acc_plain - 0.02);  // FT must not be worse (usually much better)
}

TEST(FtTrainer, MaskedGradModeRuns) {
  const auto train = tiny_vision(10);
  auto model = tiny_model(10);
  FtTrainConfig ft = fast_ft(0.1);
  ft.grad_mode = GradMode::kMasked;
  EXPECT_NO_THROW(FaultTolerantTrainer(*model, *train, ft).run());
}

TEST(FtTrainer, PerIterationRefreshRuns) {
  const auto train = tiny_vision(11);
  auto model = tiny_model(11);
  FtTrainConfig ft = fast_ft(0.1);
  ft.refresh = FaultRefresh::kPerIteration;
  EXPECT_NO_THROW(FaultTolerantTrainer(*model, *train, ft).run());
}

TEST(FtTrainer, DeterministicAcrossRuns) {
  const auto train = tiny_vision(12);
  auto a = tiny_model(13);
  auto b = tiny_model(13);
  FaultTolerantTrainer(*a, *train, fast_ft(0.05)).run();
  FaultTolerantTrainer(*b, *train, fast_ft(0.05)).run();
  const StateDict sa = state_dict_of(*a);
  const StateDict sb = state_dict_of(*b);
  for (const auto& [name, t] : sa) EXPECT_TRUE(t.allclose(sb.at(name), 1e-6f, 1e-6f)) << name;
}

}  // namespace
}  // namespace ftpim
