#include <gtest/gtest.h>

#include <cmath>

#include "src/core/table_printer.hpp"

namespace ftpim {
namespace {

TEST(TablePrinter, RendersHeadersAndRows) {
  TablePrinter t("Demo", {"Method", "0.01", "0.02"});
  t.add_row("baseline", {12.5, 3.25});
  t.add_row("ours", {88.0, 70.5});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("baseline"), std::string::npos);
  EXPECT_NE(out.find("12.50"), std::string::npos);
  EXPECT_NE(out.find("88.00"), std::string::npos);
}

TEST(TablePrinter, HighlightsTopK) {
  TablePrinter t("", {"m", "c"});
  t.add_row("a", {1.0});
  t.add_row("b", {3.0});
  t.add_row("c", {2.0});
  const std::string out = t.render(/*highlight_top=*/1);
  EXPECT_NE(out.find("3.00*"), std::string::npos);
  EXPECT_EQ(out.find("1.00*"), std::string::npos);
  EXPECT_EQ(out.find("2.00*"), std::string::npos);
}

TEST(TablePrinter, TopKSpansColumnIndependently) {
  TablePrinter t("", {"m", "x", "y"});
  t.add_row("a", {10.0, 1.0});
  t.add_row("b", {1.0, 10.0});
  const std::string out = t.render(1);
  // Each column stars its own winner.
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 2);
}

TEST(TablePrinter, NanRendersAsDashAndIsNeverStarred) {
  TablePrinter t("", {"m", "v"});
  t.add_row("a", {std::nan("")});
  t.add_row("b", {5.0});
  const std::string out = t.render(2);
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 1);
}

TEST(TablePrinter, DecimalsControlFormatting) {
  TablePrinter t("", {"m", "v"});
  t.add_row("a", {1.23456});
  EXPECT_NE(t.render(0, 4).find("1.2346"), std::string::npos);
  EXPECT_NE(t.render(0, 1).find("1.2"), std::string::npos);
}

TEST(TablePrinter, Validation) {
  EXPECT_THROW(TablePrinter("t", {"only-label"}), std::invalid_argument);
  TablePrinter t("", {"m", "a", "b"});
  EXPECT_THROW(t.add_row("x", {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ftpim
