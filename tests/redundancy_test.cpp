#include <gtest/gtest.h>

#include <cmath>

#include "src/models/mlp.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/redundancy.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::random_tensor;

TEST(Redundancy, Validation) {
  Tensor w = random_tensor(Shape{8}, 1);
  Rng rng(2);
  EXPECT_THROW(
      apply_faults_with_redundancy(w, StuckAtFaultModel(0.1), RedundancyConfig{.replicas = 2}, rng),
      std::invalid_argument);
  EXPECT_THROW(
      apply_faults_with_redundancy(w, StuckAtFaultModel(0.1), RedundancyConfig{.replicas = 0}, rng),
      std::invalid_argument);
}

TEST(Redundancy, ZeroRateIsIdentity) {
  Tensor w = random_tensor(Shape{500}, 3);
  const Tensor original = w;
  Rng rng(4);
  const auto stats =
      apply_faults_with_redundancy(w, StuckAtFaultModel(0.0), RedundancyConfig{.replicas = 3}, rng);
  EXPECT_TRUE(w.allclose(original, 0.0f, 0.0f));
  EXPECT_EQ(stats.faulted_cells, 0);
  EXPECT_EQ(stats.cells, 3000);
}

TEST(Redundancy, SingleReplicaMatchesPlainInjectorStatistically) {
  // R=1 redundancy IS the plain injector model; expected distortion at equal
  // rates must match within Monte-Carlo noise.
  const Tensor base = random_tensor(Shape{20000}, 5, 0.3f);
  const double p = 0.05;

  Tensor w_red = base;
  Rng rng1(6);
  apply_faults_with_redundancy(w_red, StuckAtFaultModel(p), RedundancyConfig{.replicas = 1}, rng1);
  double mad_red = 0.0;
  for (std::int64_t i = 0; i < base.numel(); ++i) mad_red += std::fabs(w_red[i] - base[i]);

  Tensor w_plain = base;
  Rng rng2(7);
  apply_stuck_at_faults(w_plain, StuckAtFaultModel(p), {}, rng2);
  double mad_plain = 0.0;
  for (std::int64_t i = 0; i < base.numel(); ++i) mad_plain += std::fabs(w_plain[i] - base[i]);

  EXPECT_NEAR(mad_red, mad_plain, 0.2 * std::max(mad_red, mad_plain));
}

TEST(Redundancy, TmrMasksMostSingleFaults) {
  // At fault rates where at most one replica of a weight typically faults,
  // the median readback must be far less distorted than R=1.
  const Tensor base = random_tensor(Shape{20000}, 8, 0.3f);
  const double p = 0.02;
  double mads[2] = {0.0, 0.0};
  const int replicas[2] = {1, 3};
  for (int k = 0; k < 2; ++k) {
    Tensor w = base;
    Rng rng(derive_seed(9, static_cast<std::uint64_t>(k)));
    apply_faults_with_redundancy(w, StuckAtFaultModel(p),
                                 RedundancyConfig{.replicas = replicas[k]}, rng);
    for (std::int64_t i = 0; i < base.numel(); ++i) mads[k] += std::fabs(w[i] - base[i]);
  }
  EXPECT_LT(mads[1], 0.3 * mads[0]);  // TMR removes the large majority of damage
}

TEST(Redundancy, MedianKeepsWeightsWithinFullScale) {
  Tensor w = random_tensor(Shape{5000}, 10);
  const float wmax = w.abs_max();
  Rng rng(11);
  apply_faults_with_redundancy(w, StuckAtFaultModel(0.5), RedundancyConfig{.replicas = 5}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w[i]), wmax * (1.0f + 1e-5f));
  }
}

TEST(Redundancy, GuardRestoresCleanWeights) {
  auto net = make_mlp({6, 10, 3}, 12);
  const StateDict before = state_dict_of(*net);
  {
    Rng rng(13);
    RedundantFaultGuard guard(*net, StuckAtFaultModel(0.3), RedundancyConfig{.replicas = 3}, rng);
    EXPECT_GT(guard.stats().faulted_cells, 0);
  }
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f)) << p->name;
  }
}

TEST(Redundancy, ModelInjectorSkipsNonCrossbarParams) {
  auto net = make_mlp({6, 10, 3}, 14);
  std::vector<Tensor> biases;
  for (const Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kBias) biases.push_back(p->value);
  }
  Rng rng(15);
  inject_model_with_redundancy(*net, StuckAtFaultModel(0.5), RedundancyConfig{.replicas = 3}, rng);
  std::size_t b = 0;
  for (const Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kBias) {
      EXPECT_TRUE(p->value.allclose(biases[b++], 0.0f, 0.0f));
    }
  }
}

class RedundancyLevelTest : public ::testing::TestWithParam<int> {};

TEST_P(RedundancyLevelTest, MoreReplicasNeverHurt) {
  const Tensor base = random_tensor(Shape{30000}, 16, 0.3f);
  const double p = 0.05;
  Tensor w1 = base, wr = base;
  Rng rng1(17), rng2(18);
  apply_faults_with_redundancy(w1, StuckAtFaultModel(p), RedundancyConfig{.replicas = 1}, rng1);
  apply_faults_with_redundancy(wr, StuckAtFaultModel(p),
                               RedundancyConfig{.replicas = GetParam()}, rng2);
  double mad1 = 0.0, madr = 0.0;
  for (std::int64_t i = 0; i < base.numel(); ++i) {
    mad1 += std::fabs(w1[i] - base[i]);
    madr += std::fabs(wr[i] - base[i]);
  }
  EXPECT_LT(madr, mad1 * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Replicas, RedundancyLevelTest, ::testing::Values(3, 5, 7));

}  // namespace
}  // namespace ftpim
