// LatencyHistogram + the float/duration summarize/quantile shims.
#include "src/common/stats.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"

namespace ftpim {
namespace {

TEST(LatencyHistogram, EmptyBehavior) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile_ns(0.5), 0);
  EXPECT_EQ(h.min_ns(), 0);
  EXPECT_EQ(h.max_ns(), 0);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);

  // Merging an empty histogram is a no-op in both directions.
  LatencyHistogram other;
  other.record(1000);
  LatencyHistogram copy = other;
  copy.merge(h);
  EXPECT_EQ(copy.count(), other.count());
  EXPECT_EQ(copy.quantile_ns(0.5), other.quantile_ns(0.5));
  h.merge(other);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min_ns(), 1000);
}

TEST(LatencyHistogram, QuantileRejectsBadQ) {
  LatencyHistogram h;
  h.record(10);
  EXPECT_THROW((void)h.quantile_ns(-0.1), ContractViolation);
  EXPECT_THROW((void)h.quantile_ns(1.5), ContractViolation);
}

TEST(LatencyHistogram, BinIndexMonotoneAndEdgesConsistent) {
  int prev = -1;
  for (std::int64_t ns : {std::int64_t{1}, std::int64_t{2}, std::int64_t{5}, std::int64_t{17},
                          std::int64_t{1000}, std::int64_t{123456}, std::int64_t{88'000'000},
                          std::int64_t{4'000'000'000}}) {
    const int bin = LatencyHistogram::bin_index(ns);
    EXPECT_GE(bin, prev) << "bin index must be monotone in ns (ns=" << ns << ")";
    EXPECT_LE(ns, LatencyHistogram::bin_upper_ns(bin)) << "sample above its bin edge, ns=" << ns;
    prev = bin;
  }
  // A sample never lands above the edge of the previous bin.
  for (int bin = 1; bin < LatencyHistogram::kBins; ++bin) {
    const std::int64_t below = LatencyHistogram::bin_upper_ns(bin - 1);
    EXPECT_LT(LatencyHistogram::bin_index(below), bin);
  }
}

TEST(LatencyHistogram, QuantilesLandInLogBins) {
  // Uniform 1..1000 microseconds; the quarter-octave bins guarantee <= 25%
  // relative error above the true nearest-rank value (upper-edge estimate),
  // clamped to the observed extremes.
  LatencyHistogram h;
  for (int us = 1; us <= 1000; ++us) h.record(std::int64_t{1000} * us);
  EXPECT_EQ(h.count(), 1000);
  const auto p50 = h.quantile_ns(0.50);
  const auto p95 = h.quantile_ns(0.95);
  const auto p99 = h.quantile_ns(0.99);
  EXPECT_GE(p50, 500'000);
  EXPECT_LE(p50, 625'000);
  EXPECT_GE(p95, 950'000);
  EXPECT_LE(p95, 1'000'000);
  EXPECT_GE(p99, 990'000);
  EXPECT_LE(p99, 1'000'000);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_EQ(h.quantile_ns(0.0), h.min_ns());
  EXPECT_EQ(h.quantile_ns(1.0), h.max_ns());
}

LatencyHistogram random_hist(std::uint64_t seed, int samples) {
  LatencyHistogram h;
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    // Log-uniform-ish spread across the full range, plus clamping outliers.
    h.record(static_cast<std::int64_t>(rng.uniform_int(std::uint64_t{1} << 40)));
  }
  return h;
}

void expect_identical(const LatencyHistogram& a, const LatencyHistogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min_ns(), b.min_ns());
  EXPECT_EQ(a.max_ns(), b.max_ns());
  EXPECT_DOUBLE_EQ(a.mean_ns(), b.mean_ns());
  EXPECT_EQ(a.bin_counts(), b.bin_counts());
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile_ns(q), b.quantile_ns(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  const LatencyHistogram a = random_hist(1, 500);
  const LatencyHistogram b = random_hist(2, 300);
  const LatencyHistogram c = random_hist(3, 700);

  LatencyHistogram ab_c = a;   // (a+b)+c
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram bc = b;     // a+(b+c)
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  expect_identical(ab_c, a_bc);

  LatencyHistogram ba = b;     // b+a == a+b
  ba.merge(a);
  LatencyHistogram ab = a;
  ab.merge(b);
  expect_identical(ab, ba);

  EXPECT_EQ(ab_c.count(), 1500);
}

TEST(LatencyHistogram, MergeMatchesRecordingEverythingInOne) {
  LatencyHistogram merged = random_hist(10, 400);
  merged.merge(random_hist(11, 400));
  LatencyHistogram single;
  Rng rng_a(10), rng_b(11);
  for (int i = 0; i < 400; ++i)
    single.record(static_cast<std::int64_t>(rng_a.uniform_int(std::uint64_t{1} << 40)));
  for (int i = 0; i < 400; ++i)
    single.record(static_cast<std::int64_t>(rng_b.uniform_int(std::uint64_t{1} << 40)));
  expect_identical(merged, single);
}

TEST(StatsShims, FloatAndIntVectorsWork) {
  const std::vector<float> f{1.0f, 2.0f, 3.0f, 4.0f};
  const Summary s = summarize(f);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_EQ(s.count, std::size_t{4});
  EXPECT_DOUBLE_EQ(quantile(f, 1.0), 4.0);

  const std::vector<int> ints{5, 1, 3};
  EXPECT_DOUBLE_EQ(quantile(ints, 0.5), 3.0);
}

TEST(StatsShims, DurationsConvertToSeconds) {
  using namespace std::chrono_literals;
  const std::vector<std::chrono::milliseconds> lat{10ms, 20ms, 30ms};
  const Summary s = summarize(lat);
  EXPECT_DOUBLE_EQ(s.mean, 0.020);
  EXPECT_DOUBLE_EQ(s.max, 0.030);
  EXPECT_DOUBLE_EQ(quantile(lat, 0.0), 0.010);

  const std::vector<std::chrono::nanoseconds> ns{std::chrono::nanoseconds{1'500'000}};
  EXPECT_DOUBLE_EQ(quantile(ns, 0.5), 0.0015);
}

}  // namespace
}  // namespace ftpim
