#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/loss.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

TEST(Softmax, RowsSumToOne) {
  const Tensor logits = testing::random_tensor(Shape{5, 7}, 1, 3.0f);
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(probs.at(r, c), 0.0f);
      sum += probs.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForLargeLogits) {
  const Tensor logits(Shape{1, 3}, std::vector<float>{1000.0f, 1001.0f, 999.0f});
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(probs[i]));
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_GT(probs[0], probs[2]);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  const SoftmaxCrossEntropy ce;
  const Tensor logits(Shape{2, 4});  // all zeros -> uniform
  const LossResult r = ce.forward(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionLowLoss) {
  const SoftmaxCrossEntropy ce;
  Tensor logits(Shape{1, 3});
  logits.at(0, 1) = 50.0f;
  const LossResult r = ce.forward(logits, {1});
  EXPECT_LT(r.loss, 1e-4f);
}

TEST(SoftmaxCrossEntropy, GradientIsProbsMinusOneHotOverN) {
  const SoftmaxCrossEntropy ce;
  const Tensor logits = testing::random_tensor(Shape{3, 4}, 2);
  const Tensor probs = softmax_rows(logits);
  const std::vector<std::int64_t> labels{1, 0, 3};
  const LossResult r = ce.forward(logits, labels);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      const float expected =
          (probs.at(i, j) - (labels[static_cast<std::size_t>(i)] == j ? 1.0f : 0.0f)) / 3.0f;
      EXPECT_NEAR(r.grad_logits.at(i, j), expected, 1e-5f);
    }
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumeric) {
  const SoftmaxCrossEntropy ce(0.1f);  // include label smoothing path
  Tensor logits = testing::random_tensor(Shape{2, 5}, 3);
  const std::vector<std::int64_t> labels{4, 2};
  const LossResult r = ce.forward(logits, labels);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float up = ce.loss_only(logits, labels);
    logits[i] = saved - eps;
    const float down = ce.loss_only(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR((up - down) / (2 * eps), r.grad_logits[i], 2e-3f) << "i=" << i;
  }
}

TEST(SoftmaxCrossEntropy, GradSumsToZeroPerRow) {
  const SoftmaxCrossEntropy ce;
  const Tensor logits = testing::random_tensor(Shape{4, 6}, 4);
  const LossResult r = ce.forward(logits, {0, 1, 2, 3});
  for (std::int64_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 6; ++j) sum += r.grad_logits.at(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, Validation) {
  EXPECT_THROW(SoftmaxCrossEntropy(-0.1f), std::invalid_argument);
  EXPECT_THROW(SoftmaxCrossEntropy(1.0f), std::invalid_argument);
  const SoftmaxCrossEntropy ce;
  EXPECT_THROW(ce.forward(Tensor(Shape{2, 3}), {0}), std::invalid_argument);
  EXPECT_THROW(ce.forward(Tensor(Shape{1, 3}), {5}), std::out_of_range);
}

TEST(SoftmaxCrossEntropy, LossOnlyMatchesForward) {
  const SoftmaxCrossEntropy ce(0.05f);
  const Tensor logits = testing::random_tensor(Shape{6, 3}, 5);
  const std::vector<std::int64_t> labels{0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(ce.loss_only(logits, labels), ce.forward(logits, labels).loss, 1e-6f);
}

}  // namespace
}  // namespace ftpim
