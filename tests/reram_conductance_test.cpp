#include <gtest/gtest.h>

#include "src/reram/conductance.hpp"
#include <cmath>

#include "src/reram/quantizer.hpp"

namespace ftpim {
namespace {

TEST(ConductanceRange, Validation) {
  EXPECT_NO_THROW(ConductanceRange{}.validate());
  EXPECT_THROW((ConductanceRange{.g_min = 1.0f, .g_max = 0.5f}).validate(),
               std::invalid_argument);
  EXPECT_THROW((ConductanceRange{.g_min = -0.1f, .g_max = 1.0f}).validate(),
               std::invalid_argument);
}

TEST(DifferentialMapper, RoundTripsWeights) {
  const DifferentialMapper mapper(ConductanceRange{}, 2.0f);
  for (const float w : {-2.0f, -1.3f, -0.01f, 0.0f, 0.7f, 2.0f}) {
    EXPECT_NEAR(mapper.to_weight(mapper.to_cells(w)), w, 1e-6f) << w;
  }
}

TEST(DifferentialMapper, SaturatesBeyondWmax) {
  const DifferentialMapper mapper(ConductanceRange{}, 1.0f);
  EXPECT_NEAR(mapper.to_weight(mapper.to_cells(5.0f)), 1.0f, 1e-6f);
  EXPECT_NEAR(mapper.to_weight(mapper.to_cells(-5.0f)), -1.0f, 1e-6f);
}

TEST(DifferentialMapper, OnlyOneCellCarriesSignal) {
  const DifferentialMapper mapper(ConductanceRange{}, 1.0f);
  const CellPair pos = mapper.to_cells(0.5f);
  EXPECT_GT(pos.g_pos, mapper.range().g_min);
  EXPECT_FLOAT_EQ(pos.g_neg, mapper.range().g_min);
  const CellPair neg = mapper.to_cells(-0.5f);
  EXPECT_FLOAT_EQ(neg.g_pos, mapper.range().g_min);
  EXPECT_GT(neg.g_neg, mapper.range().g_min);
}

TEST(DifferentialMapper, StuckOnYieldsFullScaleWeight) {
  // A stuck-on positive cell with a zero weight reads back +w_max: the
  // worst-case distortion that makes SA1 defects so destructive.
  const ConductanceRange range{};
  const DifferentialMapper mapper(range, 1.0f);
  CellPair cells = mapper.to_cells(0.0f);
  cells.g_pos = range.g_max;
  EXPECT_NEAR(mapper.to_weight(cells), 1.0f, 1e-6f);
}

TEST(DifferentialMapper, StuckOffZeroesTheWeightPart) {
  const ConductanceRange range{};
  const DifferentialMapper mapper(range, 1.0f);
  CellPair cells = mapper.to_cells(0.8f);
  cells.g_pos = range.g_min;  // positive part stuck off
  EXPECT_NEAR(mapper.to_weight(cells), 0.0f, 1e-6f);
}

TEST(DifferentialMapper, Validation) {
  EXPECT_THROW(DifferentialMapper(ConductanceRange{}, 0.0f), std::invalid_argument);
  EXPECT_THROW(DifferentialMapper(ConductanceRange{}, -1.0f), std::invalid_argument);
}

TEST(Quantizer, IdentityWhenDisabled) {
  const ConductanceQuantizer q(ConductanceRange{}, 0);
  EXPECT_FLOAT_EQ(q.quantize(0.456f), 0.456f);
  // Still clamps to the physical range.
  EXPECT_FLOAT_EQ(q.quantize(2.0f), 1.0f);
}

TEST(Quantizer, Validation) {
  EXPECT_THROW(ConductanceQuantizer(ConductanceRange{}, 1), std::invalid_argument);
  EXPECT_THROW(ConductanceQuantizer(ConductanceRange{}, -2), std::invalid_argument);
}

class QuantizerLevelsTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerLevelsTest, SnapsToGrid) {
  const int levels = GetParam();
  const ConductanceRange range{.g_min = 0.0f, .g_max = 1.0f};
  const ConductanceQuantizer q(range, levels);
  // Quantized values must be exactly representable levels and idempotent.
  for (float g = 0.0f; g <= 1.0f; g += 0.037f) {
    const float snapped = q.quantize(g);
    EXPECT_FLOAT_EQ(q.quantize(snapped), snapped);
    const float step = 1.0f / static_cast<float>(levels - 1);
    EXPECT_NEAR(snapped / step, std::round(snapped / step), 1e-4f);
    EXPECT_LE(std::fabs(snapped - g), step / 2.0f + 1e-5f);
  }
}

TEST_P(QuantizerLevelsTest, EndpointsAreLevels) {
  const int levels = GetParam();
  const ConductanceQuantizer q(ConductanceRange{.g_min = 0.25f, .g_max = 0.75f}, levels);
  EXPECT_FLOAT_EQ(q.quantize(0.25f), 0.25f);
  EXPECT_FLOAT_EQ(q.quantize(0.75f), 0.75f);
  EXPECT_EQ(q.level_index(0.25f), 0);
  EXPECT_EQ(q.level_index(0.75f), levels - 1);
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantizerLevelsTest, ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace ftpim
