#include <gtest/gtest.h>

#include "src/models/mlp.hpp"
#include "src/models/resnet.hpp"
#include "src/models/small_cnn.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

TEST(ResNet, DepthValidation) {
  EXPECT_THROW(make_resnet(ResNetConfig{.depth = 18}), std::invalid_argument);
  EXPECT_THROW(make_resnet(ResNetConfig{.depth = 7}), std::invalid_argument);
  EXPECT_THROW(make_resnet(ResNetConfig{.depth = 20, .classes = 1}), std::invalid_argument);
  EXPECT_NO_THROW(make_resnet(ResNetConfig{.depth = 8, .base_width = 2}));
}

TEST(ResNet, ForwardShape) {
  auto net = make_resnet20(10, /*base_width=*/4, /*seed=*/1);
  const Tensor x = testing::random_tensor(Shape{2, 3, 16, 16}, 2);
  EXPECT_EQ(net->forward(x, false).shape(), (Shape{2, 10}));
}

TEST(ResNet, WorksAt32px) {
  auto net = make_resnet20(10, 4, 1);
  const Tensor x = testing::random_tensor(Shape{1, 3, 32, 32}, 3);
  EXPECT_EQ(net->forward(x, false).shape(), (Shape{1, 10}));
}

TEST(ResNet, Resnet20HasNineBlocks) {
  auto net = make_resnet20(10, 16, 1);
  // conv+bn+relu + 9 blocks + pool + linear = 14 children.
  EXPECT_EQ(net->size(), 14u);
}

TEST(ResNet, Resnet32HasFifteenBlocks) {
  auto net = make_resnet32(100, 16, 1);
  EXPECT_EQ(net->size(), 20u);
  const Tensor x = testing::random_tensor(Shape{1, 3, 16, 16}, 4);
  EXPECT_EQ(net->forward(x, false).shape(), (Shape{1, 100}));
}

TEST(ResNet, PaperParamCountAtFullWidth) {
  // ResNet-20 width 16 on 10 classes is famously ~0.27M params.
  auto net = make_resnet20(10, 16, 1);
  const std::int64_t n = parameter_count(*net);
  EXPECT_GT(n, 260000);
  EXPECT_LT(n, 280000);
}

TEST(ResNet, TrainBackwardRuns) {
  auto net = make_resnet(ResNetConfig{.depth = 8, .classes = 4, .base_width = 2, .seed = 5});
  const Tensor x = testing::random_tensor(Shape{2, 3, 8, 8}, 6);
  const Tensor y = net->forward(x, true);
  const Tensor g = net->backward(testing::random_tensor(y.shape(), 7));
  EXPECT_EQ(g.shape(), x.shape());
  // Every crossbar weight must receive some gradient signal.
  for (const Param* p : parameters_of(*net)) {
    if (p->kind != ParamKind::kCrossbarWeight) continue;
    double norm = 0.0;
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      norm += std::fabs(p->grad[i]);
    }
    EXPECT_GT(norm, 0.0) << p->name;
  }
}

TEST(ResNet, DeterministicForSeed) {
  auto a = make_resnet20(10, 4, 77);
  auto b = make_resnet20(10, 4, 77);
  const Tensor x = testing::random_tensor(Shape{1, 3, 8, 8}, 8);
  EXPECT_TRUE(a->forward(x, false).allclose(b->forward(x, false)));
}

TEST(Mlp, ShapeAndDepth) {
  auto net = make_mlp({8, 16, 16, 3}, 1);
  const Tensor x = testing::random_tensor(Shape{5, 8}, 9);
  EXPECT_EQ(net->forward(x, false).shape(), (Shape{5, 3}));
  EXPECT_EQ(net->size(), 5u);  // L R L R L
  EXPECT_THROW(make_mlp({4}, 1), std::invalid_argument);
}

TEST(SmallCnn, ShapeAndValidation) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 4, .classes = 7});
  const Tensor x = testing::random_tensor(Shape{2, 3, 16, 16}, 10);
  EXPECT_EQ(net->forward(x, false).shape(), (Shape{2, 7}));
  EXPECT_THROW(make_small_cnn(SmallCnnConfig{.image_size = 10}), std::invalid_argument);
}

TEST(Models, CrossbarWeightTagging) {
  // Conv/linear kernels are crossbar weights; BN params and biases are not —
  // the fault injector and pruners key off this.
  auto net = make_resnet20(10, 4, 1);
  int crossbar = 0, norm = 0, bias = 0;
  for (const Param* p : parameters_of(*net)) {
    switch (p->kind) {
      case ParamKind::kCrossbarWeight: ++crossbar; break;
      case ParamKind::kNorm: ++norm; break;
      case ParamKind::kBias: ++bias; break;
    }
  }
  EXPECT_EQ(crossbar, 20);  // 19 convs + 1 linear
  EXPECT_EQ(norm, 2 * 19);  // gamma+beta per BN
  EXPECT_EQ(bias, 1);       // classifier bias
}

}  // namespace
}  // namespace ftpim
