#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/tensor.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::random_tensor;

void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
                const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

struct GemmDims {
  std::int64_t m, n, k;
};

class GemmParamTest : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  const Tensor a = random_tensor(Shape{m, k}, 1);
  const Tensor b = random_tensor(Shape{k, n}, 2);
  Tensor c = random_tensor(Shape{m, n}, 3);
  Tensor ref = c;
  gemm(m, n, k, 1.5f, a.data(), b.data(), 0.5f, c.data());
  naive_gemm(m, n, k, 1.5f, a.data(), b.data(), 0.5f, ref.data());
  EXPECT_TRUE(c.allclose(ref, 1e-3f, 1e-3f))
      << "m=" << m << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmParamTest,
                         ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                                           GemmDims{16, 16, 16}, GemmDims{33, 65, 129},
                                           GemmDims{100, 1, 50}, GemmDims{1, 100, 50},
                                           GemmDims{64, 300, 17},
                                           // Packed-backend boundary shapes: exact
                                           // 6x16 micro-tiles, one-off ragged edges,
                                           // and K crossing the kKC=256 slab.
                                           GemmDims{6, 16, 8}, GemmDims{7, 15, 16},
                                           GemmDims{5, 17, 255}, GemmDims{96, 32, 257},
                                           GemmDims{98, 47, 300}));

TEST(Gemm, BetaZeroClearsGarbage) {
  // C initialized with NaN-free garbage must be fully overwritten when beta=0.
  const std::int64_t m = 4, n = 4, k = 4;
  const Tensor a = random_tensor(Shape{m, k}, 4);
  const Tensor b = random_tensor(Shape{k, n}, 5);
  Tensor c(Shape{m, n}, 1e30f);
  Tensor ref(Shape{m, n}, 0.0f);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  naive_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  EXPECT_TRUE(c.allclose(ref, 1e-3f, 1e-3f));
}

TEST(Gemm, AlphaZeroOnlyScales) {
  const std::int64_t m = 3, n = 3, k = 3;
  const Tensor a = random_tensor(Shape{m, k}, 6);
  const Tensor b = random_tensor(Shape{k, n}, 7);
  Tensor c(Shape{m, n}, 2.0f);
  gemm(m, n, k, 0.0f, a.data(), b.data(), 0.5f, c.data());
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 1.0f);
}

TEST(GemmAt, MatchesTransposedReference) {
  // C[i,j] += sum_p A[p,i] * B[p,j]
  const std::int64_t m = 9, n = 13, k = 21;
  const Tensor a = random_tensor(Shape{k, m}, 8);
  const Tensor b = random_tensor(Shape{k, n}, 9);
  Tensor c(Shape{m, n});
  gemm_at(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  Tensor ref(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(p, i)) * b.at(p, j);
      }
      ref.at(i, j) = static_cast<float>(acc);
    }
  }
  EXPECT_TRUE(c.allclose(ref, 1e-3f, 1e-3f));
}

TEST(GemmBt, MatchesTransposedReference) {
  // C[i,j] += sum_p A[i,p] * B[j,p]
  const std::int64_t m = 11, n = 6, k = 17;
  const Tensor a = random_tensor(Shape{m, k}, 10);
  const Tensor b = random_tensor(Shape{n, k}, 11);
  Tensor c(Shape{m, n});
  gemm_bt(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  Tensor ref(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(j, p);
      }
      ref.at(i, j) = static_cast<float>(acc);
    }
  }
  EXPECT_TRUE(c.allclose(ref, 1e-3f, 1e-3f));
}

TEST(Gemm, AccumulatesWithBetaOne) {
  const std::int64_t m = 5, n = 5, k = 5;
  const Tensor a = random_tensor(Shape{m, k}, 12);
  const Tensor b = random_tensor(Shape{k, n}, 13);
  Tensor c(Shape{m, n}, 1.0f);
  Tensor once(Shape{m, n});
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, once.data());
  gemm(m, n, k, 1.0f, a.data(), b.data(), 1.0f, c.data());
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], once[i] + 1.0f, 1e-4f);
}

TEST(Gemm, SkipsZeroWeightsCorrectly) {
  // Sparse A (pruned model case): zeros must contribute exactly nothing.
  const std::int64_t m = 8, n = 8, k = 8;
  Tensor a = random_tensor(Shape{m, k}, 14);
  for (std::int64_t i = 0; i < a.numel(); i += 2) a[i] = 0.0f;
  const Tensor b = random_tensor(Shape{k, n}, 15);
  Tensor c(Shape{m, n});
  Tensor ref(Shape{m, n});
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  naive_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  EXPECT_TRUE(c.allclose(ref, 1e-4f, 1e-4f));
}

}  // namespace
}  // namespace ftpim
