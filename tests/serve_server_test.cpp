// InferenceServer: lifecycle, dynamic batching, replica fleet, determinism,
// and the multi-client/multi-worker drain guarantee. Suite names start with
// Serve* so scripts/ci.sh's TSan leg picks them up.
#include "src/serve/inference_server.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/models/small_cnn.hpp"
#include "src/nn/module.hpp"
#include "src/serve/batching_policy.hpp"
#include "src/serve/replica_pool.hpp"
#include "test_util.hpp"

namespace ftpim::serve {
namespace {

std::unique_ptr<Module> make_model() {
  SmallCnnConfig cfg;
  cfg.image_size = 16;
  cfg.seed = 5;
  return make_small_cnn(cfg);
}

Tensor make_input(std::uint64_t seed) {
  return testing::random_tensor(Shape{3, 16, 16}, seed, 0.5f);
}

// --- BatchingPolicy ----------------------------------------------------------

TEST(ServeBatchingPolicy, FlushDecisionsWithManualClock) {
  BatchingPolicy p;
  p.max_batch_size = 4;
  p.max_linger_ns = 1000;
  p.validate();

  EXPECT_FALSE(p.full(3));
  EXPECT_TRUE(p.full(4));

  const std::int64_t open = 5000;
  EXPECT_EQ(p.remaining_linger_ns(5000, open), 1000);
  EXPECT_EQ(p.remaining_linger_ns(5600, open), 400);
  EXPECT_EQ(p.remaining_linger_ns(6000, open), 0);
  EXPECT_EQ(p.remaining_linger_ns(9999, open), 0);  // never negative

  EXPECT_FALSE(p.should_flush(1, 5500, open));  // partial batch, linger left
  EXPECT_TRUE(p.should_flush(4, 5000, open));   // full
  EXPECT_TRUE(p.should_flush(1, 6000, open));   // linger expired

  BatchingPolicy greedy;
  greedy.max_linger_ns = 0;
  EXPECT_TRUE(greedy.should_flush(1, 0, 0));  // never waits

  BatchingPolicy bad;
  bad.max_batch_size = 0;
  EXPECT_THROW(bad.validate(), ContractViolation);
}

// --- ReplicaPool -------------------------------------------------------------

std::vector<std::vector<float>> snapshot_params(Module& m) {
  std::vector<std::vector<float>> out;
  for (const Param* p : parameters_of(m)) out.push_back(p->value.vec());
  return out;
}

TEST(ServeReplicaPool, FleetIsReproducibleAndSourceUntouched) {
  const auto model = make_model();
  const auto source_before = snapshot_params(*model);

  ReplicaPoolConfig cfg;
  cfg.num_replicas = 3;
  cfg.p_sa = 0.05;
  cfg.seed = 77;
  ReplicaPool pool_a(*model, cfg);
  ReplicaPool pool_b(*model, cfg);

  EXPECT_EQ(snapshot_params(*model), source_before) << "pool construction mutated the source";
  ASSERT_EQ(pool_a.size(), 3);

  bool some_replicas_differ = false;
  for (int r = 0; r < pool_a.size(); ++r) {
    // Same seed -> bit-identical fleet across pool rebuilds.
    EXPECT_EQ(snapshot_params(pool_a.replica(r)), snapshot_params(pool_b.replica(r)))
        << "replica " << r << " not reproducible";
    EXPECT_GT(pool_a.injection_stats(r).faulted_cells, 0);
    EXPECT_EQ(pool_a.replica_seed(r), derive_seed(cfg.seed, static_cast<std::uint64_t>(r)));
    if (snapshot_params(pool_a.replica(r)) != source_before) some_replicas_differ = true;
  }
  EXPECT_TRUE(some_replicas_differ) << "p_sa=0.05 should perturb weights";
  // Distinct replicas carry distinct defect maps.
  EXPECT_NE(snapshot_params(pool_a.replica(0)), snapshot_params(pool_a.replica(1)));
}

TEST(ServeReplicaPool, ZeroRateFleetIsPristine) {
  const auto model = make_model();
  ReplicaPoolConfig cfg;
  cfg.num_replicas = 2;
  cfg.p_sa = 0.0;
  ReplicaPool pool(*model, cfg);
  EXPECT_EQ(snapshot_params(pool.replica(0)), snapshot_params(*model));
  EXPECT_EQ(pool.injection_stats(0).faulted_cells, 0);
}

// --- InferenceServer: determinism -------------------------------------------

struct RunOutputs {
  std::vector<std::vector<float>> logits;
  std::vector<std::int64_t> predicted;
  std::vector<std::int64_t> batch_sizes;
  ServerStats stats;
};

RunOutputs run_deterministic_once(int num_requests) {
  const auto model = make_model();
  ManualServeClock clock(1'000'000);

  ServerConfig cfg;
  cfg.queue_capacity = 64;
  cfg.batching.max_batch_size = 4;
  cfg.batching.max_linger_ns = 0;  // deterministic mode: greedy batching
  cfg.pool.num_replicas = 1;       // deterministic mode: single worker
  cfg.pool.p_sa = 0.02;
  cfg.pool.seed = 123;
  cfg.clock = &clock;
  InferenceServer server(*model, cfg);

  // Same request order every run: enqueue everything before the (single)
  // worker exists, so batch composition is a pure function of queue order.
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    futures.push_back(server.submit(make_input(1000 + static_cast<std::uint64_t>(i))));
  }
  server.start();
  server.drain();
  server.stop();

  RunOutputs out;
  for (auto& f : futures) {
    InferenceResult res = f.get();
    out.logits.push_back(res.logits.vec());
    out.predicted.push_back(res.predicted);
    out.batch_sizes.push_back(res.batch_size);
    EXPECT_EQ(res.replica_id, 0);
    EXPECT_EQ(res.latency_ns, 0) << "manual clock never advanced";
  }
  out.stats = server.stats();
  return out;
}

TEST(ServeServer, DeterministicSingleWorkerBitIdenticalRuns) {
  constexpr int kRequests = 10;
  const RunOutputs a = run_deterministic_once(kRequests);
  const RunOutputs b = run_deterministic_once(kRequests);

  // Outputs: bit-identical logits and predictions, same batch shapes.
  ASSERT_EQ(a.logits.size(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(a.logits, b.logits);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.batch_sizes, b.batch_sizes);
  // 10 pre-queued requests at max batch 4 -> batches of 4, 4, 2.
  EXPECT_EQ(a.batch_sizes.front(), 4);
  EXPECT_EQ(a.batch_sizes.back(), 2);

  // Stats: counters and the full latency histogram agree exactly.
  EXPECT_EQ(a.stats.submitted, kRequests);
  EXPECT_EQ(a.stats.served, kRequests);
  EXPECT_EQ(a.stats.rejected(), 0);
  EXPECT_EQ(a.stats.failed, 0);
  EXPECT_EQ(a.stats.batches, 3);
  EXPECT_EQ(a.stats.in_flight, 0);
  // Robustness counters all stay zero on a healthy, deadline-free run — and
  // stay bit-identical across runs like everything else.
  EXPECT_EQ(a.stats.retried, 0);
  EXPECT_EQ(a.stats.expired, 0);
  EXPECT_EQ(a.stats.poisoned, 0);
  EXPECT_EQ(a.stats.canary_batches, 0);
  EXPECT_EQ(a.stats.quarantines, 0);
  EXPECT_EQ(a.stats.repairs, 0);
  EXPECT_EQ(a.stats.aged_cells, 0);
  EXPECT_EQ(a.stats.retried, b.stats.retried);
  EXPECT_EQ(a.stats.per_replica_health, b.stats.per_replica_health);
  EXPECT_EQ(a.stats.summary_line(), b.stats.summary_line());
  EXPECT_EQ(a.stats.health_line(), b.stats.health_line());
  EXPECT_EQ(a.stats.batches, b.stats.batches);
  EXPECT_EQ(a.stats.per_replica_served, b.stats.per_replica_served);
  EXPECT_EQ(a.stats.latency.count(), b.stats.latency.count());
  EXPECT_EQ(a.stats.latency.bin_counts(), b.stats.latency.bin_counts());
  EXPECT_EQ(a.stats.latency.p99_ns(), b.stats.latency.p99_ns());
  EXPECT_DOUBLE_EQ(a.stats.mean_batch_fill(), b.stats.mean_batch_fill());
}

TEST(ServeServer, ServedLogitsMatchDirectReplicaForward) {
  // The served answer must equal running the same faulted replica directly.
  const auto model = make_model();
  ServerConfig cfg;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 1;
  cfg.pool.p_sa = 0.02;
  cfg.pool.seed = 123;
  InferenceServer server(*model, cfg);

  const Tensor input = make_input(42);
  std::future<InferenceResult> fut = server.submit(input);
  server.start();
  server.drain();
  server.stop();
  const InferenceResult res = fut.get();

  ReplicaPool reference(*model, cfg.pool);
  Tensor batched(Shape{1, 3, 16, 16});
  std::memcpy(batched.data(), input.data(),
              static_cast<std::size_t>(input.numel()) * sizeof(float));
  const Tensor expected = reference.replica(0).forward(batched, /*training=*/false);
  ASSERT_EQ(res.logits.numel(), expected.numel());
  EXPECT_EQ(res.logits.vec(), expected.vec());
}

// --- InferenceServer: lifecycle & policies ----------------------------------

TEST(ServeServer, StressMultiClientMultiWorkerDrainLosesNothing) {
  // >=4 client threads against >=4 workers, tiny queue (real backpressure),
  // graceful drain: every accepted request is answered. TSan covers this via
  // the ci.sh thread leg.
  constexpr int kClients = 4;
  constexpr int kPerClient = 64;
  const auto model = make_model();

  ServerConfig cfg;
  cfg.queue_capacity = 8;
  cfg.overflow = OverflowPolicy::kBlock;
  cfg.batching.max_batch_size = 8;
  cfg.batching.max_linger_ns = 100'000;  // 0.1ms
  cfg.pool.num_replicas = 4;
  cfg.pool.p_sa = 0.01;
  InferenceServer server(*model, cfg);
  server.start();

  std::vector<std::thread> clients;
  std::vector<int> answered(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<InferenceResult>> futures;
      for (int i = 0; i < kPerClient; ++i) {
        futures.push_back(
            server.submit(make_input(static_cast<std::uint64_t>(c) * 1000 + i)));
      }
      for (auto& f : futures) {
        const InferenceResult res = f.get();  // throws if any request was lost
        EXPECT_GE(res.replica_id, 0);
        EXPECT_LT(res.replica_id, 4);
        ++answered[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();
  server.stop();

  constexpr std::int64_t kTotal = kClients * kPerClient;
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(answered[static_cast<std::size_t>(c)], kPerClient);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.served, kTotal);
  EXPECT_EQ(stats.rejected(), 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_EQ(stats.queue_depth, std::size_t{0});
  EXPECT_EQ(stats.latency.count(), kTotal);
  std::int64_t by_replica = 0;
  for (const std::int64_t n : stats.per_replica_served) by_replica += n;
  EXPECT_EQ(by_replica, kTotal);
  EXPECT_GE(stats.batches, kTotal / cfg.batching.max_batch_size);
}

TEST(ServeServer, RejectPolicyFailsFastWhenFull) {
  const auto model = make_model();
  ServerConfig cfg;
  cfg.queue_capacity = 2;
  cfg.overflow = OverflowPolicy::kReject;
  cfg.batching.max_linger_ns = 0;
  InferenceServer server(*model, cfg);

  // No workers yet, so the queue fills and stays full.
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(server.submit(make_input(i)));

  server.start();
  server.drain();
  server.stop();

  int ok = 0, rejected = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++ok;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, 3);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.rejected(), 3);
  EXPECT_EQ(stats.rejected_queue_full, 3);  // every rejection was a full queue
  EXPECT_EQ(stats.rejected_stopped, 0);
  EXPECT_EQ(stats.rejected_shed, 0);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(ServeServer, GracefulStopFlushesWithoutDrain) {
  const auto model = make_model();
  ServerConfig cfg;
  cfg.batching.max_batch_size = 4;
  cfg.batching.max_linger_ns = 0;
  InferenceServer server(*model, cfg);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 20; ++i) futures.push_back(server.submit(make_input(i)));
  server.start();
  server.stop();  // no drain(): stop itself must flush all accepted requests

  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, 20);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(ServeServer, StopWithoutStartAnswersQueuedRequests) {
  const auto model = make_model();
  ServerConfig cfg;
  InferenceServer server(*model, cfg);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(server.submit(make_input(i)));
  server.stop();
  for (auto& f : futures) EXPECT_THROW((void)f.get(), std::runtime_error);
  // Submitting after stop also fails through the future, not a broken promise.
  std::future<InferenceResult> late = server.submit(make_input(99));
  EXPECT_THROW((void)late.get(), std::runtime_error);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected(), 4);
  EXPECT_EQ(stats.rejected_stopped, 4);  // all four died to shutdown, not overflow
  EXPECT_EQ(stats.rejected_queue_full, 0);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(ServeServer, SubmitValidatesShape) {
  const auto model = make_model();
  ServerConfig cfg;
  InferenceServer server(*model, cfg);
  (void)server.submit(make_input(1));
  EXPECT_THROW((void)server.submit(Tensor(Shape{3, 8, 8})), ContractViolation);
  EXPECT_THROW((void)server.submit(Tensor(Shape{3, 16, 16, 1})), ContractViolation);
  server.stop();
}

TEST(ServeServer, DrainRequiresRunningAndStartOnce) {
  const auto model = make_model();
  ServerConfig cfg;
  InferenceServer server(*model, cfg);
  EXPECT_THROW(server.drain(), ContractViolation);
  server.start();
  EXPECT_THROW(server.start(), ContractViolation);
  server.drain();  // empty server drains immediately
  server.stop();
  server.stop();  // idempotent
}

}  // namespace
}  // namespace ftpim::serve
