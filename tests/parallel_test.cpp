#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/config.hpp"
#include "src/common/parallel.hpp"

namespace ftpim {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; }, /*min_parallel_trip=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoOp) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallTripRunsSerially) {
  // Below min_parallel_trip the caller thread runs everything (observable
  // via exact sequential ordering).
  std::vector<std::size_t> order;
  parallel_for(0, 4, [&](std::size_t i) { order.push_back(i); }, /*min_parallel_trip=*/100);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ParallelForChunks, ChunksPartitionRange) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for_chunks(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_LE(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
      },
      /*min_parallel_trip=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunks, OffsetRangesWork) {
  std::atomic<long long> sum{0};
  parallel_for_chunks(100, 200, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(NumThreads, PositiveAndStable) {
  EXPECT_GE(num_threads(), 1);
  EXPECT_EQ(num_threads(), num_threads());
}

TEST(NumThreads, OverrideSetAndClear) {
  const int base = num_threads();
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(0);  // clears the override
  EXPECT_EQ(num_threads(), base);
}

TEST(NumThreads, ConcurrentOverrideAndLoopsAreRaceFree) {
  // Hammers the documented contract of set_num_threads: concurrent override
  // writes, num_threads() reads, and parallel_for dispatch must be free of
  // data races (the TSan config of scripts/ci.sh runs this test) and must
  // never corrupt loop coverage.
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int n = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      set_num_threads(n);
      n = (n % 4) + 1;
    }
    set_num_threads(0);
  });
  for (int round = 0; round < 50; ++round) {
    const int seen = num_threads();
    EXPECT_GE(seen, 1);
    std::vector<std::atomic<int>> hits(257);
    parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; }, /*min_parallel_trip=*/1);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  EXPECT_GE(num_threads(), 1);
}

TEST(EnvHelpers, ParseAndFallback) {
  EXPECT_EQ(env_int("FTPIM_SURELY_UNSET_VAR", 17), 17);
  EXPECT_DOUBLE_EQ(env_double("FTPIM_SURELY_UNSET_VAR", 2.5), 2.5);
  EXPECT_EQ(env_string("FTPIM_SURELY_UNSET_VAR", "x"), "x");
  setenv("FTPIM_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(env_int("FTPIM_TEST_ENV_INT", 0), 42);
  setenv("FTPIM_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(env_int("FTPIM_TEST_ENV_INT", 9), 9);
  unsetenv("FTPIM_TEST_ENV_INT");
}

TEST(EnvHelpers, StrictDoubleRejectsJunkAndOutOfRange) {
  // env_double_in is the hardened variant: a typo'd knob (FTPIM_ADC_RANGE
  // and friends) must fail loudly instead of silently running the fallback.
  unsetenv("FTPIM_TEST_ENV_RANGE");
  EXPECT_DOUBLE_EQ(env_double_in("FTPIM_TEST_ENV_RANGE", 0.25, 0.0, 1.0), 0.25);
  setenv("FTPIM_TEST_ENV_RANGE", "", 1);
  EXPECT_DOUBLE_EQ(env_double_in("FTPIM_TEST_ENV_RANGE", 0.25, 0.0, 1.0), 0.25);
  setenv("FTPIM_TEST_ENV_RANGE", "0.5", 1);
  EXPECT_DOUBLE_EQ(env_double_in("FTPIM_TEST_ENV_RANGE", 0.25, 0.0, 1.0), 0.5);
  setenv("FTPIM_TEST_ENV_RANGE", "1.0", 1);  // hi bound is inclusive
  EXPECT_DOUBLE_EQ(env_double_in("FTPIM_TEST_ENV_RANGE", 0.25, 0.0, 1.0), 1.0);
  // Trailing junk, non-numbers, NaN, and out-of-range values all throw a
  // ContractViolation naming the variable.
  for (const char* bad : {"0.5x", "garbage", "nan", "0", "-0.25", "1.5"}) {
    setenv("FTPIM_TEST_ENV_RANGE", bad, 1);
    EXPECT_THROW((void)env_double_in("FTPIM_TEST_ENV_RANGE", 0.25, 0.0, 1.0), ContractViolation)
        << bad;
  }
  unsetenv("FTPIM_TEST_ENV_RANGE");
}

TEST(EnvHelpers, StrictIntRejectsJunkAndOutOfRange) {
  // env_int_in backs FTPIM_THREADS (src/common/parallel.cpp): a mistyped
  // worker count must throw, not silently pick hardware_concurrency. The
  // helper is exercised directly because num_threads() caches its first
  // resolution behind a magic static.
  unsetenv("FTPIM_TEST_ENV_THREADS");
  EXPECT_EQ(env_int_in("FTPIM_TEST_ENV_THREADS", 4, 1, 4096), 4);
  setenv("FTPIM_TEST_ENV_THREADS", "", 1);
  EXPECT_EQ(env_int_in("FTPIM_TEST_ENV_THREADS", 4, 1, 4096), 4);
  setenv("FTPIM_TEST_ENV_THREADS", "8", 1);
  EXPECT_EQ(env_int_in("FTPIM_TEST_ENV_THREADS", 4, 1, 4096), 8);
  setenv("FTPIM_TEST_ENV_THREADS", "1", 1);  // both bounds inclusive
  EXPECT_EQ(env_int_in("FTPIM_TEST_ENV_THREADS", 4, 1, 4096), 1);
  setenv("FTPIM_TEST_ENV_THREADS", "4096", 1);
  EXPECT_EQ(env_int_in("FTPIM_TEST_ENV_THREADS", 4, 1, 4096), 4096);
  for (const char* bad : {"8x", "4.5", "garbage", "0", "-2", "4097", "80000"}) {
    setenv("FTPIM_TEST_ENV_THREADS", bad, 1);
    EXPECT_THROW((void)env_int_in("FTPIM_TEST_ENV_THREADS", 4, 1, 4096), ContractViolation)
        << bad;
  }
  unsetenv("FTPIM_TEST_ENV_THREADS");
}

TEST(RunScale, QuickDefaultsAndOverrides) {
  unsetenv("FTPIM_SCALE");
  unsetenv("FTPIM_EPOCHS");
  const RunScale quick = run_scale();
  EXPECT_EQ(quick.name, "quick");
  EXPECT_GT(quick.epochs, 0);
  setenv("FTPIM_SCALE", "full", 1);
  const RunScale full = run_scale();
  EXPECT_EQ(full.name, "full");
  EXPECT_EQ(full.epochs, 160);
  EXPECT_EQ(full.defect_runs, 100);
  setenv("FTPIM_EPOCHS", "5", 1);
  EXPECT_EQ(run_scale().epochs, 5);
  unsetenv("FTPIM_SCALE");
  unsetenv("FTPIM_EPOCHS");
}

}  // namespace
}  // namespace ftpim
