// Quantized crossbar datapath, bottom up:
//   * QuantKernel  — pack_levels + qmvm vs a naive int32 reference across
//     edge shapes, with EXACT scalar/AVX2 equality (integer math);
//   * QuantAdc     — per-column delta sizing and the round-half-away /
//     clipping transfer of adc_digitize;
//   * QuantQuantizer — level_index/level_value round-trip property incl. the
//     exact midpoint tie-break (step chosen representable in float);
//   * QuantEngine  — mvm vs the float CrossbarEngine in the high-level /
//     ideal-ADC limit, level-domain fault semantics via read_back, parity of
//     the device defect stream with CrossbarEngine, and the determinism
//     contract (bit-identical across FTPIM_THREADS AND kernel levels).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/qinfer/adc.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"
#include "src/reram/quantizer.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/kernels/qgemm.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using kernels::KernelLevel;
using qinfer::AdcConfig;
using qinfer::QuantizedCrossbarEngine;
using qinfer::QuantizedEngineConfig;
using testing::random_tensor;

/// Pins the dispatch level for a scope; restores the ambient default on exit.
class LevelGuard {
 public:
  explicit LevelGuard(KernelLevel level) { kernels::set_kernel_level(level); }
  ~LevelGuard() { kernels::clear_kernel_level_override(); }
};

/// Pins the worker count for a scope.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

std::vector<KernelLevel> runnable_levels() {
  std::vector<KernelLevel> levels = {KernelLevel::kScalar};
  if (kernels::avx2_available()) levels.push_back(KernelLevel::kAvx2);
  return levels;
}

// ---------------------------------------------------------------------------
// QuantKernel

/// c[i, j] = sum_p a[i, p] * b[p, j] over the LOGICAL (unpacked) operands.
void naive_qmvm(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                std::int64_t lda, const std::uint8_t* b, std::int32_t* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a[i * lda + p]) * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

struct QShape {
  std::int64_t m, n, k;
};

/// Padded-A activation codes: lda = k + (k & 1), pad byte zeroed per the
/// odd-k kernel contract.
std::vector<std::int8_t> random_codes(std::int64_t m, std::int64_t k, std::uint64_t seed) {
  const std::int64_t lda = k + (k & 1);
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * lda), 0);
  Rng rng(seed);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      a[static_cast<std::size_t>(i * lda + p)] =
          static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(255)) - 127);
    }
  }
  return a;
}

std::vector<std::uint8_t> random_levels(std::int64_t k, std::int64_t n, int levels,
                                        std::uint64_t seed) {
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
  Rng rng(seed);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(static_cast<std::uint64_t>(levels)));
  return b;
}

TEST(QuantKernel, MatchesNaiveReferenceAcrossShapes) {
  // Edge cases on every axis: n below/at/off the 16-wide panel, odd k
  // (exercises the zero-padded last pair), k = 1, single row, tall m.
  const QShape shapes[] = {{1, 16, 2},  {4, 16, 8},  {5, 33, 7},  {3, 7, 5},
                           {8, 48, 128}, {2, 16, 1}, {7, 1, 9},   {6, 31, 64}};
  for (const KernelLevel level : runnable_levels()) {
    const kernels::QmvmKernel kern = kernels::select_qmvm_kernel(level);
    for (const QShape& s : shapes) {
      const std::int64_t lda = s.k + (s.k & 1);
      const auto a = random_codes(s.m, s.k, 7 + static_cast<std::uint64_t>(s.m * s.k));
      const auto b = random_levels(s.k, s.n, 256, 11 + static_cast<std::uint64_t>(s.n));
      std::vector<std::uint8_t> packed(kernels::packed_levels_bytes(s.k, s.n));
      kernels::pack_levels(b.data(), s.k, s.n, s.n, packed.data());

      std::vector<std::int32_t> got(static_cast<std::size_t>(s.m * s.n), -1);
      std::vector<std::int32_t> want(static_cast<std::size_t>(s.m * s.n), 0);
      kern(s.m, s.n, s.k, a.data(), lda, packed.data(), got.data(), s.n);
      naive_qmvm(s.m, s.n, s.k, a.data(), lda, b.data(), want.data());
      EXPECT_EQ(got, want) << "level=" << static_cast<int>(level) << " m=" << s.m << " n=" << s.n
                           << " k=" << s.k;
    }
  }
}

TEST(QuantKernel, ScalarAndAvx2AreBitIdentical) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  const QShape shapes[] = {{5, 33, 7}, {8, 48, 128}, {13, 17, 31}};
  for (const QShape& s : shapes) {
    const std::int64_t lda = s.k + (s.k & 1);
    const auto a = random_codes(s.m, s.k, 3);
    const auto b = random_levels(s.k, s.n, 256, 5);
    std::vector<std::uint8_t> packed(kernels::packed_levels_bytes(s.k, s.n));
    kernels::pack_levels(b.data(), s.k, s.n, s.n, packed.data());

    std::vector<std::int32_t> scalar_c(static_cast<std::size_t>(s.m * s.n), 0);
    std::vector<std::int32_t> avx2_c(static_cast<std::size_t>(s.m * s.n), 0);
    kernels::qmvm_scalar(s.m, s.n, s.k, a.data(), lda, packed.data(), scalar_c.data(), s.n);
    kernels::qmvm_avx2(s.m, s.n, s.k, a.data(), lda, packed.data(), avx2_c.data(), s.n);
    // Integer math: EXACT equality, not a tolerance.
    EXPECT_EQ(scalar_c, avx2_c) << "m=" << s.m << " n=" << s.n << " k=" << s.k;
  }
}

TEST(QuantKernel, ExtremeOperandValuesStayExact) {
  // All-saturated codes against all-max levels: the largest accumulator the
  // packed format can see at this k; checks the widening path never
  // saturates (the _mm256_maddubs_epi16 trap this backend avoids).
  const std::int64_t m = 3, n = 17, k = 128;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n), 255);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      a[static_cast<std::size_t>(i * k + p)] = (i % 2 == 0) ? std::int8_t{127} : std::int8_t{-127};
    }
  }
  std::vector<std::uint8_t> packed(kernels::packed_levels_bytes(k, n));
  kernels::pack_levels(b.data(), k, n, n, packed.data());
  for (const KernelLevel level : runnable_levels()) {
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), 0);
    kernels::select_qmvm_kernel(level)(m, n, k, a.data(), k, packed.data(), c.data(), n);
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int32_t want = (i % 2 == 0 ? 1 : -1) * 127 * 255 * static_cast<std::int32_t>(k);
      for (std::int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(c[static_cast<std::size_t>(i * n + j)], want);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QuantAdc

TEST(QuantAdc, ColumnDeltaSizing) {
  AdcConfig adc;
  adc.bits = 8;  // qmax = 127
  adc.range_factor = 1.0;
  EXPECT_EQ(qinfer::adc_column_delta(adc, 12700), 100);
  adc.range_factor = 0.125;
  // ceil(12700 * 0.125 / 127) = ceil(12.5) = 13.
  EXPECT_EQ(qinfer::adc_column_delta(adc, 12700), 13);
  // Small columns floor at delta = 1 (never zero).
  EXPECT_EQ(qinfer::adc_column_delta(adc, 0), 1);
  EXPECT_EQ(qinfer::adc_column_delta(adc, 3), 1);
  // Ideal readout is the identity transfer regardless of the bound.
  adc.bits = 0;
  EXPECT_TRUE(adc.ideal());
  EXPECT_EQ(qinfer::adc_column_delta(adc, 1'000'000), 1);
}

TEST(QuantAdc, DigitizeRoundsHalfAwayAndClips) {
  const std::int32_t delta = 10, qmax = 7;
  EXPECT_EQ(qinfer::adc_digitize(0, delta, qmax), 0);
  EXPECT_EQ(qinfer::adc_digitize(4, delta, qmax), 0);    // below half step
  EXPECT_EQ(qinfer::adc_digitize(5, delta, qmax), 10);   // exact midpoint -> away from zero
  EXPECT_EQ(qinfer::adc_digitize(-5, delta, qmax), -10); // symmetric
  EXPECT_EQ(qinfer::adc_digitize(14, delta, qmax), 10);
  EXPECT_EQ(qinfer::adc_digitize(15, delta, qmax), 20);
  EXPECT_EQ(qinfer::adc_digitize(74, delta, qmax), 70);  // code 7 = qmax, unclipped
  EXPECT_EQ(qinfer::adc_digitize(75, delta, qmax), 70);  // would round to 8 -> clipped
  EXPECT_EQ(qinfer::adc_digitize(100000, delta, qmax), 70);
  EXPECT_EQ(qinfer::adc_digitize(-100000, delta, qmax), -70);
}

TEST(QuantAdc, ConfigValidation) {
  AdcConfig adc;
  adc.bits = 1;
  EXPECT_THROW(adc.validate(), ContractViolation);
  adc.bits = 25;
  EXPECT_THROW(adc.validate(), ContractViolation);
  adc.bits = 8;
  adc.range_factor = 0.0;
  EXPECT_THROW(adc.validate(), ContractViolation);
  adc.range_factor = 1.5;
  EXPECT_THROW(adc.validate(), ContractViolation);
  adc.range_factor = 1.0;
  EXPECT_NO_THROW(adc.validate());
  adc.bits = 0;
  EXPECT_NO_THROW(adc.validate());
}

// ---------------------------------------------------------------------------
// QuantQuantizer (satellite: level_index/level_value round-trip property)

TEST(QuantQuantizer, LevelRoundTripAcrossLevelCounts) {
  const ConductanceRange range{};  // default device range
  for (const int levels : {2, 3, 16, 255, 256}) {
    const ConductanceQuantizer q(range, levels);
    for (int i = 0; i < levels; ++i) {
      EXPECT_EQ(q.level_index(q.level_value(i)), i) << "levels=" << levels << " i=" << i;
      // quantize() is idempotent on grid points.
      EXPECT_EQ(q.quantize(q.level_value(i)), q.level_value(i)) << "levels=" << levels;
    }
    // Out-of-range conductances clamp to the end levels.
    EXPECT_EQ(q.level_index(range.g_min - 1.0f), 0);
    EXPECT_EQ(q.level_index(range.g_max + 1.0f), levels - 1);
  }
}

TEST(QuantQuantizer, MidpointTieBreaksUpward) {
  // g in [0, 15] with 16 levels -> step exactly 1.0f, so every midpoint
  // i + 0.5 is exactly representable and the tie-break is observable:
  // lround rounds half away from zero, i.e. to level i + 1.
  const ConductanceRange range{.g_min = 0.0f, .g_max = 15.0f};
  const ConductanceQuantizer q(range, 16);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(q.level_index(static_cast<float>(i) + 0.5f), i + 1) << "i=" << i;
    // Just below the midpoint still snaps down.
    EXPECT_EQ(q.level_index(static_cast<float>(i) + 0.4375f), i) << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// QuantEngine

QuantizedEngineConfig small_config(int levels = 16, int adc_bits = 0) {
  QuantizedEngineConfig config;
  config.tile_rows = 8;
  config.tile_cols = 8;  // 4 outputs per tile -> multi-tile in both dims
  config.levels = levels;
  config.adc.bits = adc_bits;
  return config;
}

TEST(QuantEngine, ConfigValidation) {
  QuantizedEngineConfig config;
  config.tile_rows = 7;  // odd wordline count breaks the k-pair contract
  EXPECT_THROW(config.validate(), ContractViolation);
  config.tile_rows = 128;
  config.tile_cols = 5;
  EXPECT_THROW(config.validate(), ContractViolation);
  config.tile_cols = 128;
  config.levels = 1;
  EXPECT_THROW(config.validate(), ContractViolation);
  config.levels = 257;
  EXPECT_THROW(config.validate(), ContractViolation);
  config.levels = 256;
  EXPECT_NO_THROW(config.validate());
}

TEST(QuantEngine, ReadBackMatchesFloatEngineAtSameLevels) {
  // Both engines snap to the same L-level grid, so their fault-free
  // read_back matrices must agree to float round-off.
  const Tensor w = random_tensor(Shape{10, 13}, 21);
  QuantizedEngineConfig qc = small_config(/*levels=*/16);
  CrossbarEngineConfig fc;
  fc.tile_rows = 8;
  fc.tile_cols = 8;
  fc.quant_levels = 16;
  const QuantizedCrossbarEngine qe(w, qc);
  const CrossbarEngine fe(w, fc);
  const Tensor qw = qe.read_back();
  const Tensor fw = fe.read_back();
  ASSERT_EQ(qw.numel(), fw.numel());
  for (std::int64_t i = 0; i < qw.numel(); ++i) {
    ASSERT_NEAR(qw[i], fw[i], 1e-5f) << "i=" << i;
  }
}

TEST(QuantEngine, MvmApproachesFloatEngineAtHighLevelsIdealAdc) {
  // 256 levels + ideal ADC leaves only activation int8 noise between the
  // quantized datapath and the float crossbar; on O(1) inputs that is a
  // ~1/127 relative error per term.
  const Tensor w = random_tensor(Shape{24, 40}, 31, 0.5f);
  QuantizedEngineConfig qc = small_config(/*levels=*/256);
  CrossbarEngineConfig fc;
  fc.tile_rows = 8;
  fc.tile_cols = 8;
  fc.quant_levels = 256;
  const QuantizedCrossbarEngine qe(w, qc);
  const CrossbarEngine fe(w, fc);

  const std::int64_t batch = 5;
  const Tensor x = random_tensor(Shape{batch, 40}, 17);
  std::vector<float> yq(static_cast<std::size_t>(batch * 24));
  std::vector<float> yf(static_cast<std::size_t>(batch * 24));
  qe.mvm_batch(x.data(), batch, yq.data());
  fe.mvm_batch(x.data(), batch, yf.data());
  for (std::size_t i = 0; i < yq.size(); ++i) {
    ASSERT_NEAR(yq[i], yf[i], 0.08f) << "i=" << i;
  }
}

TEST(QuantEngine, PartialRowTilesAgreeAcrossTilingsAndPanels) {
  // Regression: the packed-B panel stride is a function of k, so a tile must
  // be packed with the k the kernel is driven with (valid rows, not
  // tile_rows). The bug this pins down only shows when a PARTIAL row tile
  // meets MULTIPLE column panels (tile_cols > 2 * kQNR): every panel after
  // the first was read at the wrong stride. Same weights through different
  // tilings must produce bit-identical outputs (all-integer datapath), and
  // both must approximate the float engine at 256 levels + ideal ADC.
  for (const std::int64_t in : {std::int64_t{12}, std::int64_t{13}}) {  // even + odd valid tail
    const Tensor w = random_tensor(Shape{30, in}, 77, 0.5f);
    QuantizedEngineConfig partial;  // rt=1 holds only in-8 driven rows
    partial.tile_rows = 8;
    partial.tile_cols = 64;  // 4 column panels of kQNR=16
    partial.levels = 256;
    partial.adc.bits = 0;
    QuantizedEngineConfig single = partial;  // one row tile, also partially filled
    single.tile_rows = 14;
    const QuantizedCrossbarEngine ep(w, partial);
    const QuantizedCrossbarEngine es(w, single);

    const std::int64_t batch = 4;
    const Tensor x = random_tensor(Shape{batch, in}, 19);
    std::vector<float> yp(static_cast<std::size_t>(batch * 30));
    std::vector<float> ys(static_cast<std::size_t>(batch * 30));
    ep.mvm_batch(x.data(), batch, yp.data());
    es.mvm_batch(x.data(), batch, ys.data());
    EXPECT_EQ(std::memcmp(yp.data(), ys.data(), yp.size() * sizeof(float)), 0) << "in=" << in;

    CrossbarEngineConfig fc;
    fc.tile_rows = 8;
    fc.tile_cols = 64;
    fc.quant_levels = 256;
    const CrossbarEngine fe(w, fc);
    std::vector<float> yf(yp.size());
    fe.mvm_batch(x.data(), batch, yf.data());
    for (std::size_t i = 0; i < yp.size(); ++i) {
      ASSERT_NEAR(yp[i], yf[i], 0.08f) << "in=" << in << " i=" << i;
    }
  }
}

TEST(QuantEngine, MvmIsBatchOfOne) {
  const Tensor w = random_tensor(Shape{9, 11}, 3);
  const QuantizedCrossbarEngine engine(w, small_config());
  const Tensor x = random_tensor(Shape{1, 11}, 5);
  std::vector<float> y1(9), yb(9);
  engine.mvm(x.data(), y1.data());
  engine.mvm_batch(x.data(), 1, yb.data());
  EXPECT_EQ(std::memcmp(y1.data(), yb.data(), y1.size() * sizeof(float)), 0);
}

TEST(QuantEngine, LevelDomainFaultSemantics) {
  // Two weights, one tile. Weight 0 = +w_max (lv+ = L-1, lv- = 0),
  // weight 1 = 0 (both cells level 0).
  Tensor w(Shape{2, 1});
  w[0] = 1.0f;
  w[1] = 0.0f;
  QuantizedEngineConfig config = small_config(/*levels=*/16);
  QuantizedCrossbarEngine engine(w, config, /*w_max=*/1.0f);

  // Stuck-off on weight 0's positive cell (model cell 0): +1 -> 0.
  engine.apply_defect_map(
      DefectMap::from_faults(4, {CellFault{0, FaultType::kStuckOff}}));
  EXPECT_EQ(engine.stuck_cells(), 1);
  Tensor rb = engine.read_back();
  EXPECT_NEAR(rb[0], 0.0f, 1e-6f);
  EXPECT_NEAR(rb[1], 0.0f, 1e-6f);

  // clear_defects restores the PROGRAMMED levels (non-destructive faults).
  engine.clear_defects();
  EXPECT_EQ(engine.stuck_cells(), 0);
  rb = engine.read_back();
  EXPECT_NEAR(rb[0], 1.0f, 1e-6f);

  // Stuck-on on weight 1's negative cell (model cell 3): 0 -> -w_max.
  engine.apply_defect_map(
      DefectMap::from_faults(4, {CellFault{3, FaultType::kStuckOn}}));
  rb = engine.read_back();
  EXPECT_NEAR(rb[0], 1.0f, 1e-6f);
  EXPECT_NEAR(rb[1], -1.0f, 1e-6f);

  // A second map LAYERS onto the first (the aging contract: apply the grown
  // map without clearing): cell 3 stays stuck-on, cell 2 joins it. Weight 1
  // now has BOTH cells pinned at L-1 -> differential readout 0.
  engine.apply_defect_map(
      DefectMap::from_faults(4, {CellFault{2, FaultType::kStuckOn}}));
  rb = engine.read_back();
  EXPECT_NEAR(rb[1], 0.0f, 1e-6f);
  EXPECT_EQ(engine.stuck_cells(), 2);
}

TEST(QuantEngine, FaultsFlowThroughMvm) {
  // A stuck cell must change the compute, not just read_back: pin weight 0
  // of a 1-input engine to +w_max and check y tracks the faulted matrix.
  Tensor w(Shape{2, 2});
  w[0] = 0.25f;
  w[1] = -0.5f;
  w[2] = 0.75f;
  w[3] = 0.0f;
  QuantizedEngineConfig config = small_config(/*levels=*/256);
  QuantizedCrossbarEngine engine(w, config, /*w_max=*/1.0f);
  engine.apply_defect_map(
      DefectMap::from_faults(8, {CellFault{0, FaultType::kStuckOn}}));
  const Tensor faulted = engine.read_back();

  const float x[2] = {0.9f, -0.3f};
  float y[2] = {0.0f, 0.0f};
  engine.mvm(x, y);
  for (int o = 0; o < 2; ++o) {
    const float want = faulted[o * 2] * x[0] + faulted[o * 2 + 1] * x[1];
    EXPECT_NEAR(y[o], want, 0.02f) << "o=" << o;
  }
  // And the faulted output differs from the clean one for the hit row.
  engine.clear_defects();
  float y_clean[2];
  engine.mvm(x, y_clean);
  EXPECT_GT(std::abs(y[0] - y_clean[0]), 0.3f);
  EXPECT_NEAR(y[1], y_clean[1], 1e-6f);
}

TEST(QuantEngine, DeviceDefectStreamMatchesFloatEngine) {
  // Same (master_seed, device_index) must name the same physical die in both
  // simulations: identical stuck-cell counts and near-identical effective
  // weights (level snapping is shared; only float round-off differs).
  const Tensor w = random_tensor(Shape{20, 24}, 77);
  QuantizedEngineConfig qc = small_config(/*levels=*/16);
  CrossbarEngineConfig fc;
  fc.tile_rows = 8;
  fc.tile_cols = 8;
  fc.quant_levels = 16;
  QuantizedCrossbarEngine qe(w, qc);
  CrossbarEngine fe(w, fc);
  const StuckAtFaultModel model(0.05, 0.5);
  qe.apply_device_defects(model, /*master_seed=*/123, /*device_index=*/4);
  fe.apply_device_defects(model, /*master_seed=*/123, /*device_index=*/4);
  ASSERT_GT(qe.stuck_cells(), 0);
  EXPECT_EQ(qe.stuck_cells(), fe.stuck_cells());
  const Tensor qw = qe.read_back();
  const Tensor fw = fe.read_back();
  for (std::int64_t i = 0; i < qw.numel(); ++i) {
    ASSERT_NEAR(qw[i], fw[i], 1e-5f) << "i=" << i;
  }
}

TEST(QuantEngine, AdcClippingCoarsensOutputs) {
  // Full-scale weights + all-positive drive saturate a coarse converter:
  // the 3-bit output must clip strictly below the ideal readout.
  Tensor w(Shape{4, 32});
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = 1.0f;
  Tensor x(Shape{1, 32});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = 1.0f;

  QuantizedEngineConfig ideal = small_config(/*levels=*/16, /*adc_bits=*/0);
  QuantizedEngineConfig coarse = small_config(/*levels=*/16, /*adc_bits=*/3);
  coarse.adc.range_factor = 0.125;
  const QuantizedCrossbarEngine ie(w, ideal, 1.0f);
  const QuantizedCrossbarEngine ce(w, coarse, 1.0f);
  std::vector<float> yi(4), yc(4);
  ie.mvm_batch(x.data(), 1, yi.data());
  ce.mvm_batch(x.data(), 1, yc.data());
  for (int o = 0; o < 4; ++o) {
    EXPECT_NEAR(yi[o], 32.0f, 0.3f) << "o=" << o;  // ideal: sum of 32 ones
    EXPECT_LT(yc[o], 0.5f * yi[o]) << "o=" << o;   // coarse ADC clipped hard
  }
}

TEST(QuantEngine, BitIdenticalAcrossThreadsAndKernels) {
  const Tensor w = random_tensor(Shape{30, 50}, 13);
  QuantizedEngineConfig config = small_config(/*levels=*/16, /*adc_bits=*/8);
  QuantizedCrossbarEngine engine(w, config);
  engine.apply_device_defects(StuckAtFaultModel(0.02, 0.5), 9, 0);
  const std::int64_t batch = 7;
  const Tensor x = random_tensor(Shape{batch, 50}, 19);
  const std::size_t n = static_cast<std::size_t>(batch * 30);

  std::vector<float> baseline(n);
  {
    ThreadGuard threads(1);
    LevelGuard level(KernelLevel::kScalar);
    engine.mvm_batch(x.data(), batch, baseline.data());
  }
  for (const KernelLevel level : runnable_levels()) {
    for (const int threads : {1, 2, 5}) {
      ThreadGuard tg(threads);
      LevelGuard lg(level);
      std::vector<float> y(n, -1.0f);
      engine.mvm_batch(x.data(), batch, y.data());
      // The quantized determinism contract is EXACT equality across both
      // thread count and kernel level — stronger than the float path.
      EXPECT_EQ(std::memcmp(y.data(), baseline.data(), n * sizeof(float)), 0)
          << "threads=" << threads << " level=" << static_cast<int>(level);
    }
  }
}

TEST(QuantEngine, ZeroInputShortCircuitsToZero) {
  const Tensor w = random_tensor(Shape{6, 10}, 2);
  const QuantizedCrossbarEngine engine(w, small_config());
  std::vector<float> x(20, 0.0f), y(12, 42.0f);
  engine.mvm_batch(x.data(), 2, y.data());
  for (const float v : y) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace ftpim
