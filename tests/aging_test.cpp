// In-service defect aging: DefectMap mutation (merge_from / stuck), the
// deterministic AgingModel (interval composability), map-based fault
// application against the differential readout math, and the ReplicaPool
// aging/repair lifecycle. Suite names start with Aging* so scripts/ci.sh's
// TSan leg picks them up.
#include "src/reram/aging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/check.hpp"
#include "src/models/mlp.hpp"
#include "src/nn/module.hpp"
#include "src/reram/conductance.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/serve/replica_pool.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

bool same_faults(const DefectMap& a, const DefectMap& b) {
  if (a.cell_count() != b.cell_count() || a.fault_count() != b.fault_count()) return false;
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    if (a.faults()[i].cell_index != b.faults()[i].cell_index ||
        a.faults()[i].type != b.faults()[i].type) {
      return false;
    }
  }
  return true;
}

// --- DefectMap mutation ------------------------------------------------------

TEST(AgingDefectMap, EmptyMapHasNoFaults) {
  const DefectMap map = DefectMap::empty(100);
  EXPECT_EQ(map.cell_count(), 100);
  EXPECT_EQ(map.fault_count(), 0);
  EXPECT_FALSE(map.stuck(0));
  EXPECT_THROW(DefectMap::empty(-1), ContractViolation);
}

TEST(AgingDefectMap, MergeFirstFaultWinsAndCountsAdded) {
  DefectMap base = DefectMap::empty(10);
  StuckAtFaultModel all_off(1.0, /*sa0_fraction=*/1.0);
  StuckAtFaultModel all_on(1.0, /*sa0_fraction=*/0.0);
  Rng r1(1), r2(2);
  DefectMap off_map = DefectMap::sample(10, all_off, r1);  // every cell stuck-off
  DefectMap on_map = DefectMap::sample(10, all_on, r2);    // every cell stuck-on
  ASSERT_EQ(off_map.fault_count(), 10);
  ASSERT_EQ(on_map.fault_count(), 10);

  EXPECT_EQ(base.merge_from(off_map), 10);
  // Same cells failing again with the other polarity: nothing is added and
  // every cell keeps its ORIGINAL fault type (a stuck cell cannot re-fail).
  EXPECT_EQ(base.merge_from(on_map), 0);
  EXPECT_EQ(base.fault_count(), 10);
  EXPECT_EQ(base.count(FaultType::kStuckOff), 10);
  EXPECT_EQ(base.count(FaultType::kStuckOn), 0);
  for (std::int64_t c = 0; c < 10; ++c) EXPECT_TRUE(base.stuck(c));
}

TEST(AgingDefectMap, MergeKeepsSortedOrderAndRejectsMismatch) {
  StuckAtFaultModel model(0.3);
  Rng ra(11), rb(12);
  DefectMap a = DefectMap::sample(500, model, ra);
  const DefectMap b = DefectMap::sample(500, model, rb);
  const std::int64_t before = a.fault_count();
  const std::int64_t added = a.merge_from(b);
  EXPECT_EQ(a.fault_count(), before + added);
  for (std::size_t i = 1; i < a.faults().size(); ++i) {
    EXPECT_LT(a.faults()[i - 1].cell_index, a.faults()[i].cell_index);
  }
  for (const CellFault& f : b.faults()) EXPECT_TRUE(a.stuck(f.cell_index));

  DefectMap other = DefectMap::empty(400);
  EXPECT_THROW((void)other.merge_from(b), ContractViolation);
}

// --- AgingModel --------------------------------------------------------------

TEST(AgingModel, ValidatesConfig) {
  AgingConfig bad;
  bad.p_new_per_interval = 1.5;
  EXPECT_THROW(AgingModel{bad}, ContractViolation);
  bad = AgingConfig{};
  bad.interval_batches = 0;
  EXPECT_THROW(AgingModel{bad}, ContractViolation);
}

TEST(AgingModel, IntervalsAtCountsWholeIntervals) {
  AgingConfig cfg;
  cfg.p_new_per_interval = 0.01;
  cfg.interval_batches = 8;
  const AgingModel aging(cfg);
  EXPECT_EQ(aging.intervals_at(0), 0);
  EXPECT_EQ(aging.intervals_at(7), 0);
  EXPECT_EQ(aging.intervals_at(8), 1);
  EXPECT_EQ(aging.intervals_at(17), 2);
  EXPECT_EQ(aging.intervals_at(-3), 0);
}

TEST(AgingModel, DisabledAddsNothing) {
  const AgingModel aging(AgingConfig{});  // p = 0
  EXPECT_FALSE(aging.config().enabled());
  DefectMap map = DefectMap::empty(1000);
  EXPECT_EQ(aging.evolve(map, /*device_stream=*/5, 0, 10), 0);
  EXPECT_EQ(map.fault_count(), 0);
}

TEST(AgingModel, EvolutionComposesAndIsDeterministic) {
  AgingConfig cfg;
  cfg.p_new_per_interval = 0.02;
  cfg.seed = 777;
  const AgingModel aging(cfg);
  constexpr std::int64_t kCells = 4000;
  constexpr std::uint64_t kDevice = 3;

  // One shot 0 -> 6.
  DefectMap oneshot = DefectMap::empty(kCells);
  const std::int64_t added_all = aging.evolve(oneshot, kDevice, 0, 6);

  // Stepwise 0 -> 2 -> 6 must land on the bit-identical map.
  DefectMap stepwise = DefectMap::empty(kCells);
  std::int64_t added_steps = aging.evolve(stepwise, kDevice, 0, 2);
  added_steps += aging.evolve(stepwise, kDevice, 2, 6);
  EXPECT_EQ(added_all, added_steps);
  EXPECT_TRUE(same_faults(oneshot, stepwise));
  EXPECT_GT(oneshot.fault_count(), 0);

  // Same inputs, fresh model object: still identical (pure function of
  // (seed, device_stream, interval)).
  DefectMap again = DefectMap::empty(kCells);
  (void)AgingModel(cfg).evolve(again, kDevice, 0, 6);
  EXPECT_TRUE(same_faults(oneshot, again));

  // A different device stream ages differently.
  DefectMap other_device = DefectMap::empty(kCells);
  (void)aging.evolve(other_device, kDevice + 1, 0, 6);
  EXPECT_FALSE(same_faults(oneshot, other_device));
}

TEST(AgingModel, EvolveIsMonotone) {
  AgingConfig cfg;
  cfg.p_new_per_interval = 0.05;
  const AgingModel aging(cfg);
  DefectMap map = DefectMap::empty(2000);
  std::int64_t prev = 0;
  for (std::int64_t k = 0; k < 5; ++k) {
    (void)aging.evolve(map, 0, k, k + 1);
    EXPECT_GE(map.fault_count(), prev);
    prev = map.fault_count();
  }
  EXPECT_THROW((void)aging.evolve(map, 0, 5, 4), ContractViolation);
}

// --- apply_defect_map_to_model ----------------------------------------------

TEST(AgingMapApply, MatchesDifferentialReadoutMath) {
  // Single Linear layer, hand-crafted map: weight i owns cells 2i / 2i+1.
  auto net = make_mlp({4, 3}, 31);
  const std::int64_t cells = crossbar_cell_count(*net);
  Param* weight = nullptr;
  for (Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kCrossbarWeight) weight = p;
  }
  ASSERT_NE(weight, nullptr);
  ASSERT_EQ(cells, 2 * weight->value.numel());
  const Tensor clean = weight->value;
  const InjectorConfig config;
  const DifferentialMapper mapper(config.range, clean.abs_max());

  // Draw a dense map through the aging machinery (rate high enough that
  // several cells fault) and check every weight against hand-computed
  // differential readout below.
  DefectMap map = DefectMap::empty(cells);
  AgingConfig acfg;
  acfg.p_new_per_interval = 0.2;
  acfg.seed = 4242;
  const AgingModel aging(acfg);
  (void)aging.evolve(map, /*device_stream=*/0, 0, 1);
  ASSERT_GT(map.fault_count(), 0);

  const InjectionStats stats = apply_defect_map_to_model(*net, map, config);
  EXPECT_EQ(stats.cells, cells);
  EXPECT_EQ(stats.faulted_cells, map.fault_count());

  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    const bool faulted = map.stuck(2 * i) || map.stuck(2 * i + 1);
    if (!faulted) {
      // Analog cells (quant_levels == 0): fault-free weights are untouched,
      // not round-tripped through the pair encoding (which costs an ulp).
      EXPECT_EQ(weight->value[i], clean[i]) << "weight " << i;
      continue;
    }
    CellPair pair = mapper.to_cells(clean[i]);
    if (map.stuck(2 * i)) {
      const FaultType t = map.faults()[static_cast<std::size_t>(
          std::lower_bound(map.faults().begin(), map.faults().end(), 2 * i,
                           [](const CellFault& f, std::int64_t c) { return f.cell_index < c; }) -
          map.faults().begin())].type;
      pair.g_pos = t == FaultType::kStuckOff ? config.range.g_min : config.range.g_max;
    }
    if (map.stuck(2 * i + 1)) {
      const FaultType t = map.faults()[static_cast<std::size_t>(
          std::lower_bound(map.faults().begin(), map.faults().end(), 2 * i + 1,
                           [](const CellFault& f, std::int64_t c) { return f.cell_index < c; }) -
          map.faults().begin())].type;
      pair.g_neg = t == FaultType::kStuckOff ? config.range.g_min : config.range.g_max;
    }
    const float expected = mapper.to_weight(pair);
    EXPECT_EQ(weight->value[i], expected) << "weight " << i;
  }
}

TEST(AgingMapApply, EmptyMapIsIdentityAndMismatchThrows) {
  auto net = make_mlp({6, 5, 2}, 33);
  std::vector<Tensor> before;
  for (Param* p : parameters_of(*net)) before.push_back(p->value);
  const std::int64_t cells = crossbar_cell_count(*net);
  const InjectionStats stats = apply_defect_map_to_model(*net, DefectMap::empty(cells), {});
  EXPECT_EQ(stats.faulted_cells, 0);
  EXPECT_EQ(stats.affected_weights, 0);
  std::size_t k = 0;
  for (Param* p : parameters_of(*net)) {
    EXPECT_EQ(p->value.vec(), before[k++].vec());
  }
  EXPECT_THROW((void)apply_defect_map_to_model(*net, DefectMap::empty(cells + 2), {}),
               ContractViolation);
}

// --- ReplicaPool lifecycle ---------------------------------------------------

serve::ReplicaPoolConfig pool_config(int replicas, double p_sa, std::uint64_t seed) {
  serve::ReplicaPoolConfig cfg;
  cfg.num_replicas = replicas;
  cfg.p_sa = p_sa;
  cfg.seed = seed;
  return cfg;
}

TEST(AgingPool, AdvanceAgingIsDeterministicAcrossPools) {
  const auto model = make_mlp({8, 16, 4}, 55);
  AgingConfig acfg;
  acfg.p_new_per_interval = 0.05;
  acfg.seed = 909;
  const AgingModel aging(acfg);

  serve::ReplicaPool a(*model, pool_config(2, 0.01, 42));
  serve::ReplicaPool b(*model, pool_config(2, 0.01, 42));
  const std::int64_t added_a = a.advance_aging(0, aging, 3);
  const std::int64_t added_b = b.advance_aging(0, aging, 3);
  EXPECT_EQ(added_a, added_b);
  EXPECT_GT(added_a, 0);
  EXPECT_EQ(a.aged_intervals(0), 3);
  EXPECT_TRUE(same_faults(a.defect_map(0), b.defect_map(0)));

  // Aged weights agree bit-for-bit; stepping a->3 in two hops also agrees.
  serve::ReplicaPool c(*model, pool_config(2, 0.01, 42));
  (void)c.advance_aging(0, aging, 1);
  (void)c.advance_aging(0, aging, 3);
  const auto params_a = parameters_of(a.replica(0));
  const auto params_c = parameters_of(c.replica(0));
  ASSERT_EQ(params_a.size(), params_c.size());
  for (std::size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_EQ(params_a[i]->value.vec(), params_c[i]->value.vec());
  }
  // Aging replica 0 never touched replica 1.
  EXPECT_EQ(a.aged_intervals(1), 0);
  EXPECT_TRUE(same_faults(a.defect_map(1), b.defect_map(1)));
}

TEST(AgingPool, AgingGrowsFaultsMonotonically) {
  const auto model = make_mlp({8, 16, 4}, 55);
  AgingConfig acfg;
  acfg.p_new_per_interval = 0.02;
  const AgingModel aging(acfg);
  serve::ReplicaPool pool(*model, pool_config(1, 0.02, 7));
  const std::int64_t base_faults = pool.defect_map(0).fault_count();
  (void)pool.advance_aging(0, aging, 2);
  const std::int64_t aged_faults = pool.defect_map(0).fault_count();
  EXPECT_GT(aged_faults, base_faults);
  EXPECT_EQ(pool.injection_stats(0).faulted_cells, aged_faults);
  // Re-requesting an already-reached interval is a no-op.
  EXPECT_EQ(pool.advance_aging(0, aging, 2), 0);
  EXPECT_EQ(pool.advance_aging(0, aging, 1), 0);
}

TEST(AgingPool, RepairInstallsFreshDeviceAndLeavesSourcePristine) {
  const auto model = make_mlp({8, 16, 4}, 77);
  std::vector<Tensor> source_before;
  for (Param* p : parameters_of(*model)) source_before.push_back(p->value);

  serve::ReplicaPool pool(*model, pool_config(1, 0.05, 13));
  const DefectMap gen0 = pool.defect_map(0);
  ASSERT_GT(gen0.fault_count(), 0);
  EXPECT_EQ(pool.generation(0), 0);

  AgingConfig acfg;
  acfg.p_new_per_interval = 0.05;
  (void)pool.advance_aging(0, AgingModel(acfg), 2);

  pool.repair(0);
  EXPECT_EQ(pool.generation(0), 1);
  EXPECT_EQ(pool.aged_intervals(0), 0);
  // New physical device: a fresh manufacturing map from the next seed
  // generation, not the old one grown or cleared.
  EXPECT_FALSE(same_faults(pool.defect_map(0), gen0));
  EXPECT_GT(pool.defect_map(0).fault_count(), 0);
  EXPECT_NE(pool.replica_seed(0), derive_seed(13, 0));

  // Repairs are reproducible: a second pool repaired the same way matches.
  serve::ReplicaPool other(*model, pool_config(1, 0.05, 13));
  (void)other.advance_aging(0, AgingModel(acfg), 2);
  other.repair(0);
  EXPECT_TRUE(same_faults(pool.defect_map(0), other.defect_map(0)));
  const auto params_a = parameters_of(pool.replica(0));
  const auto params_b = parameters_of(other.replica(0));
  for (std::size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_EQ(params_a[i]->value.vec(), params_b[i]->value.vec());
  }

  // Source model untouched through injection, aging, and repair.
  std::size_t k = 0;
  for (Param* p : parameters_of(*model)) {
    EXPECT_EQ(p->value.vec(), source_before[k++].vec());
  }
}

TEST(AgingPool, RedundantPoolsRefuseAging) {
  const auto model = make_mlp({6, 4}, 91);
  serve::ReplicaPoolConfig cfg = pool_config(1, 0.05, 3);
  cfg.use_redundancy = true;
  serve::ReplicaPool pool(*model, cfg);
  EXPECT_GT(pool.injection_stats(0).cells, 0);
  AgingConfig acfg;
  acfg.p_new_per_interval = 0.05;
  EXPECT_THROW((void)pool.advance_aging(0, AgingModel(acfg), 1), ContractViolation);
}

}  // namespace
}  // namespace ftpim
