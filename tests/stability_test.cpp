#include <gtest/gtest.h>

#include "src/core/stability.hpp"

namespace ftpim {
namespace {

TEST(StabilityScore, MatchesPaperTable2BaselineRow) {
  // Pretrained ResNet-32: 75.10 / (75.10 - 2.97) = 1.04.
  const double ss = stability_score(
      {.acc_pretrain = 75.10, .acc_retrain = 75.10, .acc_defect = 2.97}, 0.5);
  EXPECT_NEAR(ss, 1.04, 0.005);
}

TEST(StabilityScore, MatchesPaperTable2FtRow) {
  // One-shot P_sa^T=0.05: 75.38 / (75.10 - 73.03) = 36.42.
  const double ss = stability_score(
      {.acc_pretrain = 75.10, .acc_retrain = 75.38, .acc_defect = 73.03}, 0.5);
  EXPECT_NEAR(ss, 36.42, 0.05);
}

TEST(StabilityScore, MatchesPaperTable2PrunedRow) {
  // ADMM 70%, progressive P_sa^T=0.1: 74.7 / (74.89 - 65.37) = 7.85.
  const double ss = stability_score(
      {.acc_pretrain = 74.89, .acc_retrain = 74.70, .acc_defect = 65.37}, 0.5);
  EXPECT_NEAR(ss, 7.85, 0.01);
}

TEST(StabilityScore, ScaleInvariantBetweenPercentAndFraction) {
  const StabilityInputs pct{.acc_pretrain = 80.0, .acc_retrain = 78.0, .acc_defect = 70.0};
  const StabilityInputs frac{.acc_pretrain = 0.80, .acc_retrain = 0.78, .acc_defect = 0.70};
  EXPECT_NEAR(stability_score(pct, 0.5), stability_score(frac, 0.005), 1e-9);
}

TEST(StabilityScore, ClampsWhenDefectAccuracyExceedsPretrain) {
  // FT models can beat the pretrained accuracy under mild faults; the floor
  // keeps SS finite and monotone.
  const double ss = stability_score(
      {.acc_pretrain = 0.75, .acc_retrain = 0.76, .acc_defect = 0.755}, 0.005);
  EXPECT_NEAR(ss, 0.76 / 0.005, 1e-9);
}

TEST(StabilityScore, HigherDefectAccuracyGivesHigherScore) {
  const double weak = stability_score({.acc_pretrain = 0.8, .acc_retrain = 0.8, .acc_defect = 0.4});
  const double strong =
      stability_score({.acc_pretrain = 0.8, .acc_retrain = 0.8, .acc_defect = 0.7});
  EXPECT_GT(strong, weak);
}

TEST(StabilityScore, Validation) {
  EXPECT_THROW(stability_score({.acc_pretrain = -0.1, .acc_retrain = 0.5, .acc_defect = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(stability_score({.acc_pretrain = 0.5, .acc_retrain = 0.5, .acc_defect = 0.5}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftpim
