// Model-level quantized deployment:
//   * QuantDeploy — hook install/uninstall lifecycle (dtor, clone-drop,
//     training-path bypass), Linear/Conv2d eval forwards routed through the
//     engines, and the model-cell-space defect map plumbing;
//   * QuantEval   — evaluate_under_defects on the kQuantized engine:
//     thread-count bit-identity and the zero-fault-rate accuracy criterion
//     (within 1% of the float path at >= 16 levels / 8-bit ADC);
//   * QuantServe  — ReplicaPool quantized lifecycle: clean replica weights,
//     deterministic per-replica maps, aging WITHOUT a re-clone, repair, and
//     the redundancy incompatibility check.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/mlp.hpp"
#include "src/models/small_cnn.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pooling.hpp"
#include "src/nn/sequential.hpp"
#include "src/reram/qinfer/deploy.hpp"
#include "src/serve/replica_pool.hpp"
#include "src/tensor/im2col.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using qinfer::QuantizedEngineConfig;
using testing::random_tensor;

/// Scoped thread-count override; resets to the env/hardware default on exit.
struct ThreadOverride {
  explicit ThreadOverride(int n) { set_num_threads(n); }
  ~ThreadOverride() { set_num_threads(0); }
};

/// 8x8 4-class synthetic vision set (matches the integration-test scale).
std::unique_ptr<InMemoryDataset> tiny_data(std::int64_t samples, std::uint64_t stream) {
  SynthVisionConfig sv;
  sv.num_classes = 4;
  sv.image_size = 8;
  sv.samples = samples;
  sv.seed = 41;
  return make_synthvision(sv, stream);
}

/// Flatten + 2-layer MLP — the smallest image classifier the quantized
/// deployment can hook (Linear wants rank-2 input).
std::unique_ptr<Sequential> make_flat_mlp(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Linear>(3 * 8 * 8, 32, rng, /*with_bias=*/true);
  net->emplace<ReLU>();
  net->emplace<Linear>(32, 4, rng, /*with_bias=*/true);
  return net;
}

QuantizedEngineConfig deploy_config(int levels = 16, int adc_bits = 8) {
  QuantizedEngineConfig config;
  config.tile_rows = 64;
  config.tile_cols = 64;
  config.levels = levels;
  config.adc.bits = adc_bits;
  return config;
}

// ---------------------------------------------------------------------------
// QuantDeploy

TEST(QuantDeploy, LinearEvalForwardRoutesThroughEngine) {
  Rng rng(5);
  Sequential net;
  Linear& lin = net.emplace<Linear>(12, 7, rng, /*with_bias=*/true);
  const auto deployment = qinfer::deploy_quantized(net, deploy_config());
  ASSERT_EQ(deployment->layer_count(), 1u);
  ASSERT_NE(lin.mvm_hook(), nullptr);

  const Tensor x = random_tensor(Shape{3, 12}, 9);
  const Tensor got = net.forward(x, /*training=*/false);

  // Reference: engine mvm_batch + bias, exactly what the hooked path does.
  std::vector<float> want(3 * 7);
  deployment->engine(0).mvm_batch(x.data(), 3, want.data());
  const Tensor& bias = lin.bias().value;
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t o = 0; o < 7; ++o) {
      ASSERT_EQ(got[r * 7 + o], want[static_cast<std::size_t>(r * 7 + o)] + bias[o])
          << r << "," << o;
    }
  }
}

TEST(QuantDeploy, TrainingForwardBypassesHook) {
  auto net = make_mlp({12, 8, 4}, 3);
  const Tensor x = random_tensor(Shape{2, 12}, 11);
  const Tensor clean = net->forward(x, /*training=*/true);
  const auto deployment = qinfer::deploy_quantized(*net, deploy_config());
  const Tensor hooked_train = net->forward(x, /*training=*/true);
  const Tensor hooked_eval = net->forward(x, /*training=*/false);
  // Training ALWAYS uses the float weights (fault-aware training happens in
  // float space); only eval mode sees the quantized device.
  EXPECT_EQ(std::memcmp(clean.data(), hooked_train.data(),
                        static_cast<std::size_t>(clean.numel()) * sizeof(float)),
            0);
  bool differs = false;
  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    if (clean[i] != hooked_eval[i]) differs = true;
  }
  EXPECT_TRUE(differs) << "eval forward should run the quantized datapath";
}

TEST(QuantDeploy, DtorUninstallsAndCloneDrops) {
  auto net = make_mlp({10, 6}, 7);
  const Tensor x = random_tensor(Shape{2, 10}, 13);
  const Tensor clean = net->forward(x, /*training=*/false);
  {
    const auto deployment = qinfer::deploy_quantized(*net, deploy_config());
    // A clone taken while hooked must NOT carry the hook (engines alias the
    // deployment, not the clone's weights).
    const auto copy = net->clone();
    const Tensor copy_out = copy->forward(x, /*training=*/false);
    EXPECT_EQ(std::memcmp(clean.data(), copy_out.data(),
                          static_cast<std::size_t>(clean.numel()) * sizeof(float)),
              0);
  }
  // Deployment destroyed -> float path restored bit-exactly.
  const Tensor after = net->forward(x, /*training=*/false);
  EXPECT_EQ(std::memcmp(clean.data(), after.data(),
                        static_cast<std::size_t>(clean.numel()) * sizeof(float)),
            0);
}

TEST(QuantDeploy, RedeployReplacesHookSafely) {
  auto net = make_mlp({10, 6}, 7);
  auto first = qinfer::deploy_quantized(*net, deploy_config(/*levels=*/16));
  auto second = qinfer::deploy_quantized(*net, deploy_config(/*levels=*/256));
  // Destroying the STALE deployment must not rip out the newer hook.
  first.reset();
  auto* lin = dynamic_cast<Linear*>(modules_of(*net)[1]);
  ASSERT_NE(lin, nullptr);
  EXPECT_NE(lin->mvm_hook(), nullptr);
  second.reset();
  EXPECT_EQ(lin->mvm_hook(), nullptr);
}

TEST(QuantDeploy, ConvEvalForwardMatchesManualLowering) {
  Rng rng(23);
  Sequential net;
  net.emplace<Conv2d>(2, 5, 3, 1, 1, rng, /*with_bias=*/false);
  const auto deployment = qinfer::deploy_quantized(net, deploy_config());
  ASSERT_EQ(deployment->layer_count(), 1u);

  const std::int64_t H = 6, W = 6;
  const Tensor x = random_tensor(Shape{2, 2, H, W}, 29);
  const Tensor got = net.forward(x, /*training=*/false);

  // Manual lowering: im2col -> transpose to [pixels, patch] -> engine GEMM
  // -> transpose back. Must agree EXACTLY with the hooked forward (same
  // integer datapath, same per-image batching).
  ConvGeometry g;
  g.in_c = 2;
  g.in_h = H;
  g.in_w = W;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  const std::int64_t patch = g.col_rows(), pixels = g.col_cols();
  std::vector<float> col(static_cast<std::size_t>(patch * pixels));
  std::vector<float> patches(static_cast<std::size_t>(pixels * patch));
  std::vector<float> yb(static_cast<std::size_t>(pixels * 5));
  for (std::int64_t img = 0; img < 2; ++img) {
    im2col(x.data() + img * 2 * H * W, g, col.data());
    for (std::int64_t p = 0; p < patch; ++p) {
      for (std::int64_t q = 0; q < pixels; ++q) {
        patches[static_cast<std::size_t>(q * patch + p)] =
            col[static_cast<std::size_t>(p * pixels + q)];
      }
    }
    deployment->engine(0).mvm_batch(patches.data(), pixels, yb.data());
    for (std::int64_t o = 0; o < 5; ++o) {
      for (std::int64_t q = 0; q < pixels; ++q) {
        ASSERT_EQ(got[(img * 5 + o) * pixels + q], yb[static_cast<std::size_t>(q * 5 + o)])
            << "img=" << img << " o=" << o << " q=" << q;
      }
    }
  }
}

TEST(QuantDeploy, ModelCellSpaceDefectMapSlicesPerLayer) {
  auto net = make_mlp({6, 4, 3}, 19);
  const auto deployment = qinfer::deploy_quantized(*net, deploy_config());
  ASSERT_EQ(deployment->layer_count(), 2u);
  const std::int64_t cells = deployment->cell_count();
  EXPECT_EQ(cells, crossbar_cell_count(*net));
  EXPECT_EQ(cells, 2 * (6 * 4 + 4 * 3));
  const Tensor clean0 = deployment->engine(0).read_back();
  const Tensor clean1 = deployment->engine(1).read_back();

  // One fault in each layer's range, in the fault_injector cell convention:
  // cell 0 = positive cell of layer-0 weight (0,0); layer1_cell = negative
  // cell of layer-1 weight (0,0).
  const std::int64_t layer1_cell = 2 * (6 * 4) + 1;
  deployment->apply_defect_map(DefectMap::from_faults(
      cells, {CellFault{0, FaultType::kStuckOn}, CellFault{layer1_cell, FaultType::kStuckOn}}));
  EXPECT_EQ(deployment->stuck_cells(), 2);
  EXPECT_EQ(deployment->engine(0).stuck_cells(), 1);
  EXPECT_EQ(deployment->engine(1).stuck_cells(), 1);

  // Stuck-on POSITIVE cell: lv+ pinned at L-1. For w >= 0 (lv- = 0) the
  // weight reads +w_max; for w < 0 it reads clean + w_max.
  const float w0 = dynamic_cast<Linear*>(modules_of(*net)[1])->weight().value[0];
  const float wmax0 = deployment->engine(0).w_max();
  const float want0 = w0 >= 0.0f ? wmax0 : clean0[0] + wmax0;
  EXPECT_NEAR(deployment->engine(0).read_back()[0], want0, 1e-5f);

  // Stuck-on NEGATIVE cell: lv- pinned at L-1. For w >= 0 the weight reads
  // clean - w_max; for w < 0 it reads -w_max.
  const float w1 = dynamic_cast<Linear*>(modules_of(*net)[3])->weight().value[0];
  const float wmax1 = deployment->engine(1).w_max();
  const float want1 = w1 >= 0.0f ? clean1[0] - wmax1 : -wmax1;
  EXPECT_NEAR(deployment->engine(1).read_back()[0], want1, 1e-5f);

  deployment->clear_defects();
  EXPECT_EQ(deployment->stuck_cells(), 0);
  EXPECT_TRUE(deployment->engine(0).read_back().allclose(clean0, 0.0f, 0.0f));
}

// ---------------------------------------------------------------------------
// QuantEval

TEST(QuantEval, AccuracyWithinOnePercentOfFloatAtZeroFaults) {
  // The acceptance criterion: >= 16 levels with an 8-bit ADC loses at most
  // 1% absolute accuracy against the float path at zero fault rate.
  const auto train = tiny_data(256, /*stream=*/1);
  const auto test = tiny_data(128, /*stream=*/2);
  auto net = make_flat_mlp(15);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  tc.sgd.lr = 0.05f;
  tc.augment.enabled = false;
  tc.seed = 7;
  Trainer(*net, *train, tc).run();
  const double float_acc = evaluate_accuracy(*net, *test);
  EXPECT_GT(float_acc, 0.5);  // learned something real (chance 0.25)

  DefectEvalConfig config;
  config.num_runs = 1;
  config.engine = EvalEngine::kQuantized;
  config.quantized = deploy_config(/*levels=*/16, /*adc_bits=*/8);
  const DefectEvalResult result = evaluate_under_defects(*net, *test, /*p_sa=*/0.0, config);
  EXPECT_NEAR(result.mean_acc, float_acc, 0.01 + 1e-12);
  EXPECT_EQ(result.mean_cell_fault_rate, 0.0);

  // Faults through the quantized datapath must hurt a trained model.
  config.num_runs = 3;
  const double hurt = evaluate_under_defects(*net, *test, /*p_sa=*/0.25, config).mean_acc;
  EXPECT_LT(hurt, float_acc);
}

TEST(QuantEval, BitIdenticalAcrossThreadCounts) {
  // Small CNN so the Conv2d hook path runs inside the Monte-Carlo workers.
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 4, .classes = 4});
  const auto data = tiny_data(48, /*stream=*/2);
  DefectEvalConfig config;
  config.num_runs = 4;
  config.seed = 55;
  config.batch_size = 16;
  config.engine = EvalEngine::kQuantized;
  config.quantized = deploy_config(/*levels=*/16, /*adc_bits=*/8);

  std::vector<double> base;
  {
    ThreadOverride threads(1);
    base = evaluate_under_defects(*net, *data, 0.05, config).run_accs;
  }
  ASSERT_EQ(base.size(), 4u);
  for (const int threads : {2, 3}) {
    ThreadOverride tg(threads);
    const DefectEvalResult result = evaluate_under_defects(*net, *data, 0.05, config);
    ASSERT_EQ(result.run_accs.size(), base.size());
    for (std::size_t r = 0; r < base.size(); ++r) {
      // Integer datapath + per-run seeds: EXACT equality, not a tolerance.
      EXPECT_EQ(result.run_accs[r], base[r]) << "threads=" << threads << " run=" << r;
    }
  }
}

// ---------------------------------------------------------------------------
// QuantServe

serve::ReplicaPoolConfig pool_config(int replicas, double p_sa) {
  serve::ReplicaPoolConfig config;
  config.num_replicas = replicas;
  config.p_sa = p_sa;
  config.seed = 21;
  config.engine = serve::ReplicaEngine::kQuantized;
  config.quantized = deploy_config();
  return config;
}

TEST(QuantServe, ReplicaWeightsStayCleanAndMapsAreDeterministic) {
  auto net = make_mlp({8, 6, 4}, 27);
  serve::ReplicaPool pool(*net, pool_config(/*replicas=*/2, /*p_sa=*/0.1));
  const std::vector<Param*> src = parameters_of(*net);
  for (int r = 0; r < pool.size(); ++r) {
    ASSERT_NE(pool.deployment(r), nullptr);
    EXPECT_EQ(pool.defect_map(r).fault_count(), pool.injection_stats(r).faulted_cells);
    // Level-domain deployment: the replica MODEL keeps clean float weights.
    std::vector<Param*> rep = parameters_of(pool.replica(r));
    ASSERT_EQ(src.size(), rep.size());
    for (std::size_t k = 0; k < src.size(); ++k) {
      EXPECT_TRUE(src[k]->value.allclose(rep[k]->value, 0.0f, 0.0f)) << src[k]->name;
    }
  }
  // Two pools with the same seed draw identical per-replica maps and produce
  // bit-identical eval outputs.
  serve::ReplicaPool twin(*net, pool_config(2, 0.1));
  const Tensor x = random_tensor(Shape{3, 8}, 31);
  for (int r = 0; r < pool.size(); ++r) {
    EXPECT_EQ(pool.defect_map(r).fault_count(), twin.defect_map(r).fault_count());
    const Tensor a = pool.replica(r).forward(x, /*training=*/false);
    const Tensor b = twin.replica(r).forward(x, /*training=*/false);
    EXPECT_EQ(
        std::memcmp(a.data(), b.data(), static_cast<std::size_t>(a.numel()) * sizeof(float)), 0)
        << "replica " << r;
  }
  // Distinct replicas see distinct dies.
  EXPECT_NE(pool.replica_seed(0), pool.replica_seed(1));
}

TEST(QuantServe, AgingLayersOntoEnginesWithoutReclone) {
  auto net = make_mlp({8, 6, 4}, 27);
  serve::ReplicaPool pool(*net, pool_config(/*replicas=*/1, /*p_sa=*/0.05));
  const Module* model_before = &pool.replica(0);
  const std::int64_t stuck_before = pool.deployment(0)->stuck_cells();

  AgingConfig ac;
  ac.p_new_per_interval = 0.05;
  const AgingModel aging(ac);
  const std::int64_t added = pool.advance_aging(0, aging, /*target_intervals=*/8);
  ASSERT_GT(added, 0);
  EXPECT_EQ(pool.aged_intervals(0), 8);
  // The level domain is non-destructive: no re-clone happened, the SAME
  // model object aged in place...
  EXPECT_EQ(&pool.replica(0), model_before);
  // ...and the engines now carry the grown map.
  EXPECT_GT(pool.deployment(0)->stuck_cells(), stuck_before);
  EXPECT_EQ(pool.injection_stats(0).faulted_cells, pool.defect_map(0).fault_count());

  // repair() swaps the die: fresh generation, fresh deployment, age reset.
  pool.repair(0);
  EXPECT_EQ(pool.generation(0), 1);
  ASSERT_NE(pool.deployment(0), nullptr);
  EXPECT_EQ(pool.aged_intervals(0), 0);
}

TEST(QuantServe, RepairGenerationsWalkTheDerivedSeedChain) {
  // Repeated repairs on the quantized path must follow the documented seed
  // schedule: generation 0 keeps the historical derive_seed(seed, r) stream,
  // generation g > 0 draws from derive_seed(derive_seed(seed, r), g) — so a
  // re-run of the fleet replays the exact same sequence of dies.
  auto net = make_mlp({8, 6, 4}, 27);
  const std::uint64_t base = 21;
  serve::ReplicaPool pool(*net, pool_config(/*replicas=*/2, /*p_sa=*/0.1));
  EXPECT_EQ(pool.replica_seed(1), derive_seed(base, 1));

  std::vector<std::int64_t> fault_history;
  for (int gen = 1; gen <= 3; ++gen) {
    pool.repair(1);
    EXPECT_EQ(pool.generation(1), gen);
    EXPECT_EQ(pool.replica_seed(1), derive_seed(derive_seed(base, 1), gen));
    fault_history.push_back(pool.defect_map(1).fault_count());
  }
  // Replica 0 never repaired: untouched generation and stream.
  EXPECT_EQ(pool.generation(0), 0);
  EXPECT_EQ(pool.replica_seed(0), derive_seed(base, 0));

  // A twin pool repaired the same number of times lands on the same die:
  // identical maps and bit-identical eval outputs at every generation.
  serve::ReplicaPool twin(*net, pool_config(2, 0.1));
  const Tensor x = random_tensor(Shape{3, 8}, 41);
  for (int gen = 1; gen <= 3; ++gen) {
    twin.repair(1);
    EXPECT_EQ(twin.defect_map(1).fault_count(), fault_history[static_cast<std::size_t>(gen - 1)]);
  }
  const Tensor a = pool.replica(1).forward(x, /*training=*/false);
  const Tensor b = twin.replica(1).forward(x, /*training=*/false);
  EXPECT_EQ(
      std::memcmp(a.data(), b.data(), static_cast<std::size_t>(a.numel()) * sizeof(float)), 0);
}

TEST(QuantServe, RedundancyIsIncompatibleWithQuantizedEngines) {
  auto net = make_mlp({8, 4}, 1);
  serve::ReplicaPoolConfig config = pool_config(1, 0.05);
  config.use_redundancy = true;
  EXPECT_THROW(serve::ReplicaPool(*net, config), ContractViolation);
}

}  // namespace
}  // namespace ftpim
