#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/checkpoint.hpp"
#include "src/tensor/serialize.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundTripsStateDict) {
  StateDict state;
  state.emplace("layer0.weight", testing::random_tensor(Shape{4, 7}, 1));
  state.emplace("layer0.bias", testing::random_tensor(Shape{4}, 2));
  state.emplace("bn.running_mean", testing::random_tensor(Shape{16}, 3));
  const std::string path = temp_path("ftpim_roundtrip.bin");
  save_state_dict(state, path);
  const StateDict loaded = load_state_dict(path);
  ASSERT_EQ(loaded.size(), state.size());
  for (const auto& [name, tensor] : state) {
    const auto it = loaded.find(name);
    ASSERT_NE(it, loaded.end()) << name;
    EXPECT_TRUE(it->second.allclose(tensor, 0.0f, 0.0f)) << name;
  }
  std::filesystem::remove(path);
}

TEST(Serialize, EmptyDictRoundTrips) {
  const std::string path = temp_path("ftpim_empty.bin");
  save_state_dict({}, path);
  EXPECT_TRUE(load_state_dict(path).empty());
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_state_dict("/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST(Serialize, UnwritablePathThrows) {
  EXPECT_THROW(save_state_dict({}, "/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST(Serialize, BadMagicThrows) {
  const std::string path = temp_path("ftpim_badmagic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[16] = "not a ckpt!";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(load_state_dict(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, TruncatedFileThrows) {
  StateDict state;
  state.emplace("w", testing::random_tensor(Shape{64}, 4));
  const std::string path = temp_path("ftpim_trunc.bin");
  save_state_dict(state, path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(load_state_dict(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, ZeroElementTensorsRoundTrip) {
  // A zero-length dimension is legal (e.g. an empty freeze-mask table):
  // the entry keeps its shape through a round-trip and carries no payload.
  StateDict state;
  state.emplace("empty_vec", Tensor(Shape{0}));
  state.emplace("empty_mat", Tensor(Shape{3, 0, 5}));
  state.emplace("regular", testing::random_tensor(Shape{2, 2}, 8));
  const std::string path = temp_path("ftpim_zeroelem.bin");
  save_state_dict(state, path);
  const StateDict loaded = load_state_dict(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.at("empty_vec").shape(), (Shape{0}));
  EXPECT_EQ(loaded.at("empty_vec").numel(), 0);
  EXPECT_EQ(loaded.at("empty_mat").shape(), (Shape{3, 0, 5}));
  EXPECT_EQ(loaded.at("empty_mat").numel(), 0);
  EXPECT_TRUE(loaded.at("regular").allclose(state.at("regular"), 0.0f, 0.0f));
  std::filesystem::remove(path);
}

TEST(Serialize, EncodeDecodeBytesMatchFileFormat) {
  // encode_state_dict is the chunk-payload form of the on-disk format:
  // decoding the encoded bytes must reproduce the dict bit-exactly.
  StateDict state;
  state.emplace("a", testing::random_tensor(Shape{5}, 6));
  state.emplace("b", Tensor(Shape{0, 2}));
  const std::vector<std::uint8_t> bytes = encode_state_dict(state);
  ByteReader in(bytes, "test");
  const StateDict decoded = decode_state_dict(in);
  in.expect_done();
  EXPECT_EQ(encode_state_dict(decoded), bytes);
}

TEST(Serialize, EmptyDictEncodesToCountOnly) {
  const std::vector<std::uint8_t> bytes = encode_state_dict({});
  EXPECT_EQ(bytes.size(), 8u);  // just the u64 entry count
  ByteReader in(bytes, "test");
  EXPECT_TRUE(decode_state_dict(in).empty());
}

TEST(Serialize, PreservesRank0AndHighRank) {
  StateDict state;
  state.emplace("scalar", Tensor(Shape{}, std::vector<float>{3.25f}));
  state.emplace("rank4", testing::random_tensor(Shape{2, 3, 4, 5}, 5));
  const std::string path = temp_path("ftpim_ranks.bin");
  save_state_dict(state, path);
  const StateDict loaded = load_state_dict(path);
  EXPECT_EQ(loaded.at("scalar").rank(), 0u);
  EXPECT_FLOAT_EQ(loaded.at("scalar")[0], 3.25f);
  EXPECT_EQ(loaded.at("rank4").shape(), (Shape{2, 3, 4, 5}));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ftpim
