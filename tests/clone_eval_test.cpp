// Module::clone() contract and the determinism of the parallel Monte-Carlo
// defect evaluation (bit-identical results at any FTPIM_THREADS setting).
#include <gtest/gtest.h>

#include <memory>

#include "src/common/parallel.hpp"
#include "src/core/evaluator.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/mlp.hpp"
#include "src/models/small_cnn.hpp"
#include "src/reram/fault_injector.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::random_tensor;

/// Scoped thread-count override; resets to the env/hardware default on exit
/// even when an assertion throws.
struct ThreadOverride {
  explicit ThreadOverride(int n) { set_num_threads(n); }
  ~ThreadOverride() { set_num_threads(0); }
};

std::unique_ptr<InMemoryDataset> tiny_data(std::int64_t samples = 64) {
  SynthVisionConfig sv;
  sv.num_classes = 10;
  sv.image_size = 16;
  sv.samples = samples;
  sv.seed = 41;
  return make_synthvision(sv, /*sample_stream=*/1);
}

TEST(ModuleClone, ParamsEqualAndStorageDisjoint) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const std::unique_ptr<Module> copy = net->clone();

  std::vector<Param*> src = parameters_of(*net);
  std::vector<Param*> dst = parameters_of(*copy);
  ASSERT_EQ(src.size(), dst.size());
  ASSERT_FALSE(src.empty());
  for (std::size_t k = 0; k < src.size(); ++k) {
    EXPECT_EQ(src[k]->name, dst[k]->name);
    EXPECT_EQ(src[k]->kind, dst[k]->kind);
    EXPECT_TRUE(src[k]->value.allclose(dst[k]->value, 0.0f, 0.0f)) << src[k]->name;
    // Fresh storage: mutating one side must not leak into the other.
    EXPECT_NE(src[k]->value.data(), dst[k]->value.data()) << src[k]->name;
    // Clone starts with zeroed grads regardless of the source's.
    for (std::int64_t i = 0; i < dst[k]->grad.numel(); ++i) {
      ASSERT_EQ(dst[k]->grad[i], 0.0f) << src[k]->name;
    }
  }

  src[0]->value[0] += 1.0f;
  EXPECT_NE(src[0]->value[0], dst[0]->value[0]);
}

TEST(ModuleClone, CarriesBatchNormRunningStats) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  // Push the running stats away from their init values before cloning.
  const Tensor x = random_tensor(Shape{4, 3, 16, 16}, 42);
  (void)net->forward(x, /*training=*/true);
  (void)net->forward(x, /*training=*/true);

  const std::unique_ptr<Module> copy = net->clone();
  const StateDict want = state_dict_of(*net);
  const StateDict got = state_dict_of(*copy);
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [name, tensor] : want) {
    ASSERT_TRUE(got.count(name)) << name;
    EXPECT_TRUE(tensor.allclose(got.at(name), 0.0f, 0.0f)) << name;
  }
  // Eval-mode forwards (which read the running stats) must agree bitwise.
  const Tensor y_src = net->forward(x, /*training=*/false);
  const Tensor y_dst = copy->forward(x, /*training=*/false);
  EXPECT_TRUE(y_src.allclose(y_dst, 0.0f, 0.0f));
}

TEST(ModuleClone, CloneOfResidualModelIsIndependent) {
  auto net = make_mlp({8, 16, 10}, 43);
  const std::unique_ptr<Module> copy = net->clone();
  // Fault the clone; the source must stay clean.
  const StateDict before = state_dict_of(*net);
  Rng rng(44);
  inject_into_model(*copy, StuckAtFaultModel(0.5), {}, rng);
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f)) << p->name;
  }
}

TEST(DefectEval, SourceModelLeftUntouched) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const auto data = tiny_data();
  const StateDict before = state_dict_of(*net);
  DefectEvalConfig cfg;
  cfg.num_runs = 3;
  cfg.batch_size = 32;
  (void)evaluate_under_defects(*net, *data, /*p_sa=*/0.1, cfg);
  const StateDict after = state_dict_of(*net);
  ASSERT_EQ(before.size(), after.size());
  for (const auto& [name, tensor] : before) {
    EXPECT_TRUE(tensor.allclose(after.at(name), 0.0f, 0.0f)) << name;
  }
}

TEST(DefectEval, BitIdenticalAcrossThreadCounts) {
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const auto data = tiny_data();
  DefectEvalConfig cfg;
  cfg.num_runs = 6;
  cfg.seed = 99;
  cfg.batch_size = 32;

  DefectEvalResult serial, parallel;
  {
    ThreadOverride guard(1);
    serial = evaluate_under_defects(*net, *data, /*p_sa=*/0.05, cfg);
  }
  {
    ThreadOverride guard(4);
    parallel = evaluate_under_defects(*net, *data, /*p_sa=*/0.05, cfg);
  }

  // Bit-identical, not approximately equal: every run's fault map is a
  // function of derive_seed(seed, run) alone and the aggregation order is
  // fixed, so the worker count must be unobservable in the numbers.
  ASSERT_EQ(serial.run_accs.size(), parallel.run_accs.size());
  for (std::size_t r = 0; r < serial.run_accs.size(); ++r) {
    EXPECT_EQ(serial.run_accs[r], parallel.run_accs[r]) << "run " << r;
  }
  EXPECT_EQ(serial.mean_acc, parallel.mean_acc);
  EXPECT_EQ(serial.std_acc, parallel.std_acc);
  EXPECT_EQ(serial.min_acc, parallel.min_acc);
  EXPECT_EQ(serial.max_acc, parallel.max_acc);
  EXPECT_EQ(serial.mean_cell_fault_rate, parallel.mean_cell_fault_rate);
}

TEST(DefectEval, MoreRunsExtendPrefixOfFewerRuns) {
  // Run r's result depends only on the run index, so shrinking num_runs must
  // keep the shared prefix bit-identical (chunk boundaries shift with the
  // total count — this catches any seed derivation tied to chunk layout).
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 16, .width = 8, .classes = 10});
  const auto data = tiny_data();
  DefectEvalConfig cfg;
  cfg.num_runs = 3;
  cfg.batch_size = 32;
  const DefectEvalResult few = evaluate_under_defects(*net, *data, 0.05, cfg);
  cfg.num_runs = 6;
  const DefectEvalResult many = evaluate_under_defects(*net, *data, 0.05, cfg);
  for (std::size_t r = 0; r < few.run_accs.size(); ++r) {
    EXPECT_EQ(few.run_accs[r], many.run_accs[r]) << "run " << r;
  }
}

}  // namespace
}  // namespace ftpim
