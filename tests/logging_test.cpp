#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/logging.hpp"

namespace ftpim {
namespace {

struct Captured {
  std::vector<LogLevel> levels;
  std::vector<std::string> lines;
};

void capture_sink(LogLevel level, const std::string& line, void* user) {
  auto* out = static_cast<Captured*>(user);
  out->levels.push_back(level);
  out->lines.push_back(line);
}

// Installs the capture sink at kDebug threshold and restores the previous
// level + stderr sink on scope exit, so tests compose with any suite order.
class SinkGuard {
 public:
  explicit SinkGuard(Captured* out) : saved_level_(log_level()) {
    set_log_level(LogLevel::kDebug);
    set_log_sink(&capture_sink, out);
  }
  ~SinkGuard() {
    set_log_sink(nullptr, nullptr);
    set_log_level(saved_level_);
  }

 private:
  LogLevel saved_level_;
};

TEST(Logging, SinkReceivesFormattedLines) {
  Captured got;
  {
    SinkGuard guard(&got);
    log_info("epoch %d: accuracy %.2f", 3, 0.875);
    log_warn("p_sa=%g outside sweep range", 0.25);
  }
  ASSERT_EQ(got.lines.size(), 2u);
  EXPECT_EQ(got.levels[0], LogLevel::kInfo);
  EXPECT_NE(got.lines[0].find("epoch 3: accuracy 0.88"), std::string::npos) << got.lines[0];
  EXPECT_EQ(got.levels[1], LogLevel::kWarn);
  EXPECT_NE(got.lines[1].find("p_sa=0.25"), std::string::npos) << got.lines[1];
}

TEST(Logging, LevelThresholdFilters) {
  Captured got;
  {
    SinkGuard guard(&got);
    set_log_level(LogLevel::kWarn);
    log_debug("dropped %d", 1);
    log_info("dropped %d", 2);
    log_warn("kept %d", 3);
    log_error("kept %d", 4);
    set_log_level(LogLevel::kOff);
    log_error("dropped even at error %d", 5);
  }
  ASSERT_EQ(got.lines.size(), 2u);
  EXPECT_EQ(got.levels[0], LogLevel::kWarn);
  EXPECT_EQ(got.levels[1], LogLevel::kError);
}

TEST(Logging, NullSinkRestoresStderrWithoutCrashing) {
  Captured got;
  {
    SinkGuard guard(&got);
    log_info("captured");
  }
  // Sink removed — this must route to stderr (not the dead Captured) safely.
  log_debug("post-restore line, default threshold drops it");
  EXPECT_EQ(got.lines.size(), 1u);
}

}  // namespace
}  // namespace ftpim
