#include <gtest/gtest.h>

#include <vector>

#include "src/reram/crossbar.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

TEST(CrossbarArray, ConstructionAndValidation) {
  const CrossbarArray xbar(4, 6, ConductanceRange{});
  EXPECT_EQ(xbar.rows(), 4);
  EXPECT_EQ(xbar.cols(), 6);
  EXPECT_EQ(xbar.cell_count(), 24);
  EXPECT_THROW(CrossbarArray(0, 4, ConductanceRange{}), std::invalid_argument);
}

TEST(CrossbarArray, CellsStartAtGmin) {
  const CrossbarArray xbar(3, 3, ConductanceRange{});
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(xbar.read(r, c), ConductanceRange{}.g_min);
    }
  }
}

TEST(CrossbarArray, ProgramAndRead) {
  CrossbarArray xbar(2, 2, ConductanceRange{});
  xbar.program(0, 1, 0.7f);
  EXPECT_FLOAT_EQ(xbar.read(0, 1), 0.7f);
  EXPECT_THROW(xbar.program(2, 0, 0.5f), std::out_of_range);
  EXPECT_THROW((void)xbar.read(0, 2), std::out_of_range);
}

TEST(CrossbarArray, ProgramClampsToRange) {
  CrossbarArray xbar(1, 1, ConductanceRange{});
  xbar.program(0, 0, 5.0f);
  EXPECT_FLOAT_EQ(xbar.read(0, 0), 1.0f);
  xbar.program(0, 0, -1.0f);
  EXPECT_FLOAT_EQ(xbar.read(0, 0), ConductanceRange{}.g_min);
}

TEST(CrossbarArray, StuckCellIgnoresProgramming) {
  CrossbarArray xbar(2, 2, ConductanceRange{});
  DefectMap map;
  {
    // Build a map with a single stuck-on fault at cell (0,0) via sampling at
    // p=1 over one cell... simpler: sample a full map and use apply then
    // verify; instead use the sample() API over the whole array with p=0 and
    // construct manually through a rate-1 single-cell trick is awkward —
    // sample at rate 1 and check all cells stuck.
    Rng rng(1);
    map = DefectMap::sample(4, StuckAtFaultModel(1.0, 0.0), rng);  // all stuck-on
  }
  xbar.apply_defects(map);
  EXPECT_EQ(xbar.stuck_count(), 4);
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(xbar.read(r, c), 1.0f);  // g_max
      xbar.program(r, c, 0.2f);
      EXPECT_FLOAT_EQ(xbar.read(r, c), 1.0f);  // write ignored
    }
  }
}

TEST(CrossbarArray, StuckOffPinsAtGmin) {
  CrossbarArray xbar(4, 4, ConductanceRange{});
  Rng rng(2);
  const DefectMap map = DefectMap::sample(16, StuckAtFaultModel(1.0, 1.0), rng);  // all SA0
  xbar.apply_defects(map);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(xbar.read(r, c), ConductanceRange{}.g_min);
  }
}

TEST(CrossbarArray, ClearDefectsReenablesProgramming) {
  CrossbarArray xbar(2, 2, ConductanceRange{});
  Rng rng(3);
  xbar.apply_defects(DefectMap::sample(4, StuckAtFaultModel(1.0), rng));
  xbar.clear_defects();
  EXPECT_EQ(xbar.stuck_count(), 0);
  xbar.program(0, 0, 0.4f);
  EXPECT_FLOAT_EQ(xbar.read(0, 0), 0.4f);
}

TEST(CrossbarArray, DefectCellCountMismatchThrows) {
  CrossbarArray xbar(2, 2, ConductanceRange{});
  Rng rng(4);
  const DefectMap map = DefectMap::sample(9, StuckAtFaultModel(0.5), rng);
  EXPECT_THROW(xbar.apply_defects(map), std::invalid_argument);
}

TEST(CrossbarArray, MatvecComputesColumnCurrents) {
  // I_c = sum_r G[r,c] * V_r against a manual computation.
  CrossbarArray xbar(3, 2, ConductanceRange{.g_min = 0.0f, .g_max = 1.0f});
  const float g[3][2] = {{0.1f, 0.2f}, {0.3f, 0.4f}, {0.5f, 0.6f}};
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 2; ++c) xbar.program(r, c, g[r][c]);
  }
  const std::vector<float> v{1.0f, 2.0f, 3.0f};
  std::vector<float> out(2);
  xbar.matvec(v.data(), out.data());
  EXPECT_NEAR(out[0], 0.1f + 0.6f + 1.5f, 1e-5f);
  EXPECT_NEAR(out[1], 0.2f + 0.8f + 1.8f, 1e-5f);
}

TEST(CrossbarArray, QuantizedProgramSnapsLevels) {
  CrossbarArray xbar(1, 1, ConductanceRange{.g_min = 0.0f, .g_max = 1.0f}, /*quant_levels=*/5);
  xbar.program(0, 0, 0.3f);
  EXPECT_FLOAT_EQ(xbar.read(0, 0), 0.25f);  // nearest of {0,.25,.5,.75,1}
}

}  // namespace
}  // namespace ftpim
