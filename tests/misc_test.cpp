// Coverage for the odds and ends: logging levels, shape formatting, 4-D
// accessors, experiment dataset selection via env vars, guard cell counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/common/logging.hpp"
#include "src/core/experiment.hpp"
#include "src/models/mlp.hpp"
#include "src/reram/fault_injector.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

namespace fs = std::filesystem;

TEST(Logging, LevelsAreOrderedAndSettable) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  // Emitting at every level must not crash regardless of threshold.
  log_debug("debug %d", 1);
  log_info("info %s", "x");
  log_warn("warn %.1f", 2.0);
  log_error("error");
  set_log_level(saved);
}

TEST(ShapeUtils, ToStringAndNumel) {
  EXPECT_EQ(shape_to_string({2, 3, 4}), "[2, 3, 4]");
  EXPECT_EQ(shape_to_string({}), "[]");
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_THROW((void)shape_numel({-1}), std::invalid_argument);
}

TEST(Tensor, FourDimAccessorMatchesFlatLayout) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.5f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.5f);
  const Tensor& ct = t;
  EXPECT_FLOAT_EQ(ct.at(1, 2, 3, 4), 7.5f);
}

TEST(WeightFaultGuard, CellCountIsTwicePerWeight) {
  auto net = make_mlp({5, 7, 2}, 1);
  std::int64_t crossbar_weights = 0;
  for (const Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kCrossbarWeight) crossbar_weights += p->value.numel();
  }
  Rng rng(2);
  WeightFaultGuard guard(*net, StuckAtFaultModel(0.1), {}, rng);
  EXPECT_EQ(guard.stats().cells, 2 * crossbar_weights);
}

TEST(Experiment, UsesRealCifarWhenDirectoryProvided) {
  // Build a minimal fixture in the CIFAR-10 binary format and point the
  // experiment at it via FTPIM_CIFAR10_DIR.
  const std::string dir = (fs::temp_directory_path() / "ftpim_exp_cifar").string();
  fs::create_directories(dir);
  auto write_file = [&](const std::string& name, int count) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<unsigned char> rec(1 + 3072);
    for (int r = 0; r < count; ++r) {
      rec[0] = static_cast<unsigned char>(r % 10);
      for (int p = 1; p <= 3072; ++p) rec[static_cast<std::size_t>(p)] =
          static_cast<unsigned char>((r + p) % 256);
      ASSERT_EQ(std::fwrite(rec.data(), 1, rec.size(), f), rec.size());
    }
    std::fclose(f);
  };
  for (int b = 1; b <= 5; ++b) write_file("data_batch_" + std::to_string(b) + ".bin", 8);
  write_file("test_batch.bin", 8);
  setenv("FTPIM_CIFAR10_DIR", dir.c_str(), 1);

  ExperimentConfig cfg;
  cfg.classes = 10;
  cfg.resnet_depth = 8;
  cfg.scale = RunScale{.epochs = 1, .defect_runs = 1, .train_size = 16, .test_size = 8,
                       .image_size = 32, .resnet_width = 2, .batch_size = 8, .name = "test"};
  const Experiment exp(cfg);
  EXPECT_EQ(exp.dataset_name(), "CIFAR-10 (real)");
  EXPECT_EQ(exp.train_data().size(), 16);
  EXPECT_EQ(exp.train_data().image_shape(), (Shape{3, 32, 32}));

  unsetenv("FTPIM_CIFAR10_DIR");
  fs::remove_all(dir);
}

TEST(Experiment, FallsBackToSynthVisionWithoutCifar) {
  setenv("FTPIM_CIFAR10_DIR", "/nonexistent/ftpim", 1);
  ExperimentConfig cfg;
  cfg.classes = 10;
  cfg.resnet_depth = 8;
  cfg.scale = RunScale{.epochs = 1, .defect_runs = 1, .train_size = 8, .test_size = 8,
                       .image_size = 8, .resnet_width = 2, .batch_size = 8, .name = "test"};
  const Experiment exp(cfg);
  EXPECT_NE(exp.dataset_name().find("SynthVision"), std::string::npos);
  unsetenv("FTPIM_CIFAR10_DIR");
}

TEST(InjectionStats, RateOfEmptyIsZero) {
  const InjectionStats empty{};
  EXPECT_DOUBLE_EQ(empty.cell_fault_rate(), 0.0);
}

}  // namespace
}  // namespace ftpim
