// Checkpoint subsystem: CRC32C, atomic file replacement, FTCK container
// framing, TrainingCheckpoint round-trip, retention policy, and the
// crash-injection sweep — every truncation and bit flip of a valid
// checkpoint must surface as a typed CheckpointError, never a crash or a
// silently wrong load. Also proves tools/ftpim_ckpt.py agrees with the C++
// loader on what is and is not a valid file.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/atomic_file.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/crc32c.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/serialize.hpp"
#include "src/core/train_checkpoint.hpp"
#include "src/reram/aging.hpp"
#include "src/reram/defect_map.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {
namespace {

namespace fs = std::filesystem;

/// Fresh empty scratch directory under the system temp dir.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "ftpim_ckpt_test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- CRC32C ------------------------------------------------------------------

TEST(Crc32c, KnownVector) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4 style vector).
  const char* msg = "123456789";
  EXPECT_EQ(crc32c(msg, 9), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(crc32c("", 0), 0u); }

TEST(Crc32c, StreamingMatchesOneShot) {
  Rng rng(71);
  std::vector<std::uint8_t> data(1027);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const std::uint32_t one_shot = crc32c(data.data(), data.size());
  std::uint32_t crc = crc32c_init();
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_int(97), data.size() - pos);
    crc = crc32c_update(crc, data.data() + pos, n);
    pos += n;
  }
  EXPECT_EQ(crc32c_finish(crc), one_shot);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  const std::uint32_t clean = crc32c(data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(data.data(), data.size()), clean);
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

// --- AtomicFileWriter --------------------------------------------------------

TEST(AtomicFile, CommitCreatesExactContent) {
  const fs::path dir = scratch_dir("atomic_commit");
  const fs::path target = dir / "out.bin";
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  {
    AtomicFileWriter w(target.string());
    EXPECT_FALSE(fs::exists(target));  // nothing under the final name yet
    w.write(payload);
    w.commit();
    EXPECT_TRUE(w.committed());
  }
  EXPECT_EQ(read_file(target), payload);
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST(AtomicFile, AbortLeavesNoFile) {
  const fs::path dir = scratch_dir("atomic_abort");
  const fs::path target = dir / "out.bin";
  {
    AtomicFileWriter w(target.string());
    w.write("junk", 4);
    // no commit: destructor must discard the temp file
  }
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST(AtomicFile, OverwriteReplacesPreviousContent) {
  const fs::path dir = scratch_dir("atomic_overwrite");
  const fs::path target = dir / "out.bin";
  {
    AtomicFileWriter w(target.string());
    w.write("old-old-old", 11);
    w.commit();
  }
  {
    AtomicFileWriter w(target.string());
    w.write("new", 3);
    w.commit();
  }
  const auto bytes = read_file(target);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "new");
}

TEST(AtomicFile, AbortedRewriteKeepsOldContent) {
  const fs::path dir = scratch_dir("atomic_abort_keep");
  const fs::path target = dir / "out.bin";
  {
    AtomicFileWriter w(target.string());
    w.write("good", 4);
    w.commit();
  }
  {
    AtomicFileWriter w(target.string());
    w.write("partial-garbage", 15);
    // crash before commit
  }
  const auto bytes = read_file(target);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "good");
}

TEST(AtomicFile, UnwritableDirectoryThrowsIo) {
  try {
    AtomicFileWriter w("/nonexistent-dir-ftpim/x.bin");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kIo);
  }
}

// --- FTCK container ----------------------------------------------------------

CheckpointErrorKind parse_kind(const std::vector<std::uint8_t>& image) {
  try {
    CheckpointReader reader(image, "test-image");
  } catch (const CheckpointError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "image parsed cleanly";
  return CheckpointErrorKind::kIo;
}

std::vector<std::uint8_t> two_chunk_image() {
  CheckpointWriter writer;
  writer.add_chunk("AAAA", {1, 2, 3});
  writer.add_chunk("BBBB", {4, 5, 6, 7, 8});
  return writer.serialize();
}

TEST(CheckpointContainer, RoundTripsThroughFile) {
  const fs::path dir = scratch_dir("container_roundtrip");
  const fs::path path = dir / "c.ftck";
  CheckpointWriter writer;
  writer.add_chunk("AAAA", {1, 2, 3});
  writer.add_chunk("EMPT", {});
  writer.write(path.string());

  const CheckpointReader reader(path.string());
  EXPECT_EQ(reader.version(), kCheckpointFormatVersion);
  ASSERT_EQ(reader.chunks().size(), 2u);
  EXPECT_EQ(reader.chunk("AAAA"), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(reader.chunk("EMPT").empty());
  EXPECT_FALSE(reader.has_chunk("ZZZZ"));
}

TEST(CheckpointContainer, MissingFileIsKMissing) {
  try {
    CheckpointReader reader("/no/such/file.ftck");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMissing);
  }
}

TEST(CheckpointContainer, MissingChunkNamesTheTag) {
  const CheckpointReader reader(two_chunk_image(), "mem");
  try {
    (void)reader.chunk("CCCC");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMissingChunk);
    EXPECT_EQ(e.chunk(), "CCCC");
  }
}

TEST(CheckpointContainer, BadMagicIsDetected) {
  auto image = two_chunk_image();
  image[0] = 'X';
  EXPECT_EQ(parse_kind(image), CheckpointErrorKind::kBadMagic);
}

TEST(CheckpointContainer, FutureVersionIsSkew) {
  auto image = two_chunk_image();
  image[4] = static_cast<std::uint8_t>(kCheckpointFormatVersion + 1);
  EXPECT_EQ(parse_kind(image), CheckpointErrorKind::kVersionSkew);
}

TEST(CheckpointContainer, VersionZeroIsFormatError) {
  auto image = two_chunk_image();
  image[4] = 0;
  EXPECT_EQ(parse_kind(image), CheckpointErrorKind::kFormat);
}

TEST(CheckpointContainer, PayloadBitFlipNamesTheChunk) {
  auto image = two_chunk_image();
  // First chunk payload starts after magic(4)+version(4)+tag(4)+len(8).
  image[20] ^= 0x10;
  try {
    CheckpointReader reader(image, "mem");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kChecksumMismatch);
    EXPECT_EQ(e.chunk(), "AAAA");
  }
}

TEST(CheckpointContainer, NonPrintableTagIsFormatError) {
  auto image = two_chunk_image();
  image[8] = 0x01;  // first chunk tag byte
  EXPECT_EQ(parse_kind(image), CheckpointErrorKind::kFormat);
}

TEST(CheckpointContainer, TrailingBytesAreFormatError) {
  auto image = two_chunk_image();
  image.push_back(0);
  EXPECT_EQ(parse_kind(image), CheckpointErrorKind::kFormat);
}

TEST(CheckpointContainer, EveryTruncationIsTyped) {
  const auto image = two_chunk_image();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::vector<std::uint8_t> prefix(image.begin(),
                                           image.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      CheckpointReader reader(prefix, "prefix");
      FAIL() << "prefix of " << len << " bytes parsed cleanly";
    } catch (const CheckpointError&) {
      // typed failure — exactly what a torn read must produce
    }
  }
}

TEST(CheckpointContainer, UnknownChunksAreTolerated) {
  // Forward compatibility: additive chunks must not break older readers.
  CheckpointWriter writer;
  writer.add_chunk("AAAA", {1});
  writer.add_chunk("XFUT", {9, 9, 9});
  const CheckpointReader reader(writer.serialize(), "mem");
  EXPECT_TRUE(reader.has_chunk("XFUT"));
  EXPECT_EQ(reader.chunk("AAAA"), std::vector<std::uint8_t>{1});
}

TEST(ByteCodec, ScalarRoundTripAndTruncation) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(1ull << 60);
  w.i64(-12345);
  w.f32(1.5f);
  w.f64(-2.25);
  w.str("hello");
  const std::vector<std::uint8_t> bytes = w.bytes();

  ByteReader r(bytes, "T");
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 1ull << 60);
  EXPECT_EQ(r.i64(), -12345);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());

  ByteReader short_reader(bytes.data(), 2, "T");
  try {
    (void)short_reader.u32();
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kTruncated);
    EXPECT_EQ(e.chunk(), "T");
  }

  ByteReader trailing(bytes, "T");
  (void)trailing.u8();
  EXPECT_THROW(trailing.expect_done(), CheckpointError);
}

// --- TrainingCheckpoint round-trip ------------------------------------------

TrainingCheckpoint sample_checkpoint() {
  TrainingCheckpoint ckpt;
  ckpt.config_echo = {0xca, 0xfe, 0x01};
  ckpt.next_stage = 1;
  ckpt.next_epoch = 2;
  ckpt.rate_sum = 0.125;
  ckpt.rate_count = 40;
  ckpt.stage_rates = {0.005, 0.01};
  ckpt.epoch_losses = {{2.0f, 1.5f, 1.25f}, {1.125f, 1.0f}};

  Tensor w(Shape{2, 3});
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = 0.25f * static_cast<float>(i);
  ckpt.model.emplace("fc.weight", w);
  ckpt.model.emplace("bn.running_mean", Tensor(Shape{3}));
  Tensor v(Shape{2, 3});
  for (std::int64_t i = 0; i < v.numel(); ++i) v[i] = -0.5f * static_cast<float>(i);
  ckpt.optimizer.emplace("velocity/fc.weight", v);

  Rng rng(2024);
  (void)rng.normal();  // populate the Box-Muller cache
  ckpt.rng_streams.emplace_back("dataloader.augment", rng.state());

  Rng map_rng(7);
  ckpt.defect_map = DefectMap::sample(256, StuckAtFaultModel(0.05, 0.8), map_rng);
  AgingConfig aging;
  aging.p_new_per_interval = 1e-4;
  aging.interval_batches = 32;
  aging.seed = 1234;
  ckpt.aging = aging;
  return ckpt;
}

void expect_equal(const TrainingCheckpoint& a, const TrainingCheckpoint& b) {
  EXPECT_EQ(a.config_echo, b.config_echo);
  EXPECT_EQ(a.next_stage, b.next_stage);
  EXPECT_EQ(a.next_epoch, b.next_epoch);
  EXPECT_EQ(a.rate_sum, b.rate_sum);
  EXPECT_EQ(a.rate_count, b.rate_count);
  EXPECT_EQ(a.stage_rates, b.stage_rates);
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);
  // Bitwise tensor equality via the canonical encoding.
  EXPECT_EQ(encode_state_dict(a.model), encode_state_dict(b.model));
  EXPECT_EQ(encode_state_dict(a.optimizer), encode_state_dict(b.optimizer));
  ASSERT_EQ(a.rng_streams.size(), b.rng_streams.size());
  for (std::size_t i = 0; i < a.rng_streams.size(); ++i) {
    EXPECT_EQ(a.rng_streams[i].first, b.rng_streams[i].first);
    EXPECT_TRUE(a.rng_streams[i].second == b.rng_streams[i].second);
  }
  ASSERT_EQ(a.defect_map.has_value(), b.defect_map.has_value());
  if (a.defect_map) {
    EXPECT_EQ(a.defect_map->cell_count(), b.defect_map->cell_count());
    ASSERT_EQ(a.defect_map->fault_count(), b.defect_map->fault_count());
    for (std::size_t i = 0; i < a.defect_map->faults().size(); ++i) {
      EXPECT_EQ(a.defect_map->faults()[i].cell_index, b.defect_map->faults()[i].cell_index);
      EXPECT_EQ(a.defect_map->faults()[i].type, b.defect_map->faults()[i].type);
    }
  }
  ASSERT_EQ(a.aging.has_value(), b.aging.has_value());
  if (a.aging) {
    EXPECT_EQ(a.aging->p_new_per_interval, b.aging->p_new_per_interval);
    EXPECT_EQ(a.aging->interval_batches, b.aging->interval_batches);
    EXPECT_EQ(a.aging->sa0_fraction, b.aging->sa0_fraction);
    EXPECT_EQ(a.aging->seed, b.aging->seed);
  }
}

TEST(TrainingCheckpointIo, RoundTripsExactly) {
  const fs::path dir = scratch_dir("tc_roundtrip");
  const fs::path path = dir / "c.ftck";
  const TrainingCheckpoint original = sample_checkpoint();
  save_training_checkpoint(original, path.string());
  const TrainingCheckpoint loaded = load_training_checkpoint(path.string());
  expect_equal(original, loaded);
}

TEST(TrainingCheckpointIo, OptionalChunksStayAbsent) {
  const fs::path dir = scratch_dir("tc_no_optional");
  const fs::path path = dir / "c.ftck";
  TrainingCheckpoint ckpt = sample_checkpoint();
  ckpt.defect_map.reset();
  ckpt.aging.reset();
  save_training_checkpoint(ckpt, path.string());
  const TrainingCheckpoint loaded = load_training_checkpoint(path.string());
  EXPECT_FALSE(loaded.defect_map.has_value());
  EXPECT_FALSE(loaded.aging.has_value());
}

// --- reram state codecs ------------------------------------------------------

TEST(ReramCodec, DefectMapRoundTripsExactly) {
  Rng rng(404);
  const DefectMap original = DefectMap::sample(512, StuckAtFaultModel(0.08, 0.7), rng);
  ByteWriter w;
  original.encode(w);
  ByteReader r(w.bytes(), "DMAP");
  const DefectMap decoded = DefectMap::decode(r);
  r.expect_done();
  EXPECT_EQ(decoded.cell_count(), original.cell_count());
  ASSERT_EQ(decoded.fault_count(), original.fault_count());
  for (std::size_t i = 0; i < original.faults().size(); ++i) {
    EXPECT_EQ(decoded.faults()[i].cell_index, original.faults()[i].cell_index);
    EXPECT_EQ(decoded.faults()[i].type, original.faults()[i].type);
  }
}

TEST(ReramCodec, EmptyDefectMapRoundTrips) {
  const DefectMap original = DefectMap::empty(64);
  ByteWriter w;
  original.encode(w);
  ByteReader r(w.bytes(), "DMAP");
  const DefectMap decoded = DefectMap::decode(r);
  EXPECT_EQ(decoded.cell_count(), 64);
  EXPECT_EQ(decoded.fault_count(), 0);
}

TEST(ReramCodec, DefectMapDecodeRejectsMalformedInput) {
  // Unsorted fault list: a valid encoding is sorted by cell index, so this
  // can only come from corruption that survived the CRC (or a buggy writer).
  ByteWriter w;
  w.i64(16);  // cell_count
  w.u64(2);   // fault count
  w.i64(9);
  w.u8(1);
  w.i64(3);  // out of order
  w.u8(2);
  ByteReader r(w.bytes(), "DMAP");
  EXPECT_THROW((void)DefectMap::decode(r), CheckpointError);

  // Out-of-range cell index.
  ByteWriter w2;
  w2.i64(4);
  w2.u64(1);
  w2.i64(100);
  w2.u8(1);
  ByteReader r2(w2.bytes(), "DMAP");
  EXPECT_THROW((void)DefectMap::decode(r2), CheckpointError);

  // Invalid fault type.
  ByteWriter w3;
  w3.i64(4);
  w3.u64(1);
  w3.i64(0);
  w3.u8(9);
  ByteReader r3(w3.bytes(), "DMAP");
  EXPECT_THROW((void)DefectMap::decode(r3), CheckpointError);
}

TEST(ReramCodec, AgingConfigRoundTripsAndAgingModelReplays) {
  AgingConfig config;
  config.p_new_per_interval = 2e-4;
  config.interval_batches = 48;
  config.sa0_fraction = 0.55;
  config.seed = 31337;
  ByteWriter w;
  config.encode(w);
  ByteReader r(w.bytes(), "AGEM");
  const AgingConfig decoded = AgingConfig::decode(r);
  r.expect_done();
  EXPECT_EQ(decoded.p_new_per_interval, config.p_new_per_interval);
  EXPECT_EQ(decoded.interval_batches, config.interval_batches);
  EXPECT_EQ(decoded.sa0_fraction, config.sa0_fraction);
  EXPECT_EQ(decoded.seed, config.seed);

  // The config IS the model state: a rebuilt AgingModel replays the exact
  // same degradation trajectory.
  const AgingModel original_model(config);
  const AgingModel decoded_model(decoded);
  DefectMap a = DefectMap::empty(1024);
  DefectMap b = DefectMap::empty(1024);
  EXPECT_EQ(original_model.evolve(a, /*device_stream=*/5, 0, 40),
            decoded_model.evolve(b, /*device_stream=*/5, 0, 40));
  ASSERT_EQ(a.fault_count(), b.fault_count());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].cell_index, b.faults()[i].cell_index);
    EXPECT_EQ(a.faults()[i].type, b.faults()[i].type);
  }
}

TEST(ReramCodec, AgingConfigDecodeRejectsInvalidValues) {
  ByteWriter w;
  w.f64(1.5);  // p_new_per_interval outside [0,1]
  w.i64(64);
  w.f64(0.5);
  w.u64(1);
  ByteReader r(w.bytes(), "AGEM");
  try {
    (void)AgingConfig::decode(r);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kFormat);
  }
}

// --- crash injection sweep ---------------------------------------------------

class CheckpointCrashInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratch_dir("crash_injection");
    path_ = dir_ / "victim.ftck";
    save_training_checkpoint(sample_checkpoint(), path_.string());
    image_ = read_file(path_);
    ASSERT_GT(image_.size(), 64u);
  }

  /// Writes `image` to a file and expects load_training_checkpoint to reject
  /// it with a typed CheckpointError.
  void expect_rejected(const std::vector<std::uint8_t>& image, const std::string& what) {
    const fs::path mutated = dir_ / "mutated.ftck";
    write_file(mutated, image);
    try {
      (void)load_training_checkpoint(mutated.string());
      ADD_FAILURE() << what << ": corrupted checkpoint loaded cleanly";
    } catch (const CheckpointError&) {
      // typed rejection — required for every corruption mode
    }
  }

  fs::path dir_;
  fs::path path_;
  std::vector<std::uint8_t> image_;
};

TEST_F(CheckpointCrashInjection, SeededTruncationsAreAllRejected) {
  // A kill during a (non-atomic) write would leave a prefix; every prefix
  // must be rejected. Sample seeded offsets plus the boundary cases.
  Rng rng(515151);
  std::vector<std::size_t> offsets = {0, 1, 4, 7, 8, image_.size() - 1, image_.size() - 4};
  for (int i = 0; i < 64; ++i) {
    offsets.push_back(static_cast<std::size_t>(rng.uniform_int(image_.size())));
  }
  for (const std::size_t len : offsets) {
    const std::vector<std::uint8_t> prefix(image_.begin(),
                                           image_.begin() + static_cast<std::ptrdiff_t>(len));
    expect_rejected(prefix, "truncation to " + std::to_string(len));
  }
}

TEST_F(CheckpointCrashInjection, SeededBitFlipsAreAllRejected) {
  Rng rng(626262);
  for (int i = 0; i < 192; ++i) {
    const std::size_t byte = static_cast<std::size_t>(rng.uniform_int(image_.size()));
    const int bit = static_cast<int>(rng.uniform_int(8));
    std::vector<std::uint8_t> mutated = image_;
    mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
    expect_rejected(mutated,
                    "bit flip at byte " + std::to_string(byte) + " bit " + std::to_string(bit));
  }
}

TEST_F(CheckpointCrashInjection, FutureVersionIsRejected) {
  std::vector<std::uint8_t> mutated = image_;
  mutated[4] = static_cast<std::uint8_t>(kCheckpointFormatVersion + 3);
  const fs::path path = dir_ / "future.ftck";
  write_file(path, mutated);
  try {
    (void)load_training_checkpoint(path.string());
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kVersionSkew);
  }
}

// --- filenames, latest, retention -------------------------------------------

TEST(CheckpointFiles, FilenameIsCanonical) {
  EXPECT_EQ(checkpoint_filename(0), "ckpt-000000.ftck");
  EXPECT_EQ(checkpoint_filename(42), "ckpt-000042.ftck");
  EXPECT_EQ(checkpoint_filename(123456), "ckpt-123456.ftck");
}

TEST(CheckpointFiles, LatestPicksHighestEpoch) {
  const fs::path dir = scratch_dir("latest");
  EXPECT_EQ(latest_checkpoint(dir.string()), "");
  write_file(dir / "ckpt-000002.ftck", {1});
  write_file(dir / "ckpt-000010.ftck", {1});
  write_file(dir / "ckpt-000003.ftck", {1});
  write_file(dir / "notes.txt", {1});
  write_file(dir / "ckpt-00000x.ftck", {1});  // non-numeric: ignored
  EXPECT_EQ(latest_checkpoint(dir.string()), (dir / "ckpt-000010.ftck").string());
  EXPECT_EQ(latest_checkpoint((dir / "missing").string()), "");
}

TEST(CheckpointFiles, RetentionKeepsWindowAndBest) {
  const fs::path dir = scratch_dir("retention");
  auto make = [&](int epoch) {
    const fs::path p = dir / checkpoint_filename(epoch);
    write_file(p, {static_cast<std::uint8_t>(epoch)});
    return p.string();
  };
  CheckpointRetention retention(/*keep_last=*/2, /*keep_best=*/true);
  // Metrics peak at epoch 2 and then decay: epoch 2 must stay pinned.
  retention.admit(make(1), 0.10);
  retention.admit(make(2), 0.90);
  retention.admit(make(3), 0.50);
  retention.admit(make(4), 0.40);
  retention.admit(make(5), 0.30);
  EXPECT_EQ(retention.best_path(), (dir / checkpoint_filename(2)).string());
  EXPECT_FALSE(fs::exists(dir / checkpoint_filename(1)));
  EXPECT_TRUE(fs::exists(dir / checkpoint_filename(2)));  // pinned best
  EXPECT_FALSE(fs::exists(dir / checkpoint_filename(3)));
  EXPECT_TRUE(fs::exists(dir / checkpoint_filename(4)));
  EXPECT_TRUE(fs::exists(dir / checkpoint_filename(5)));
}

TEST(CheckpointFiles, RetentionDeletesDethronedBest) {
  const fs::path dir = scratch_dir("retention_dethrone");
  auto make = [&](int epoch) {
    const fs::path p = dir / checkpoint_filename(epoch);
    write_file(p, {static_cast<std::uint8_t>(epoch)});
    return p.string();
  };
  CheckpointRetention retention(/*keep_last=*/1, /*keep_best=*/true);
  retention.admit(make(1), 0.5);
  retention.admit(make(2), 0.1);  // evicts nothing yet: 1 is pinned best
  EXPECT_TRUE(fs::exists(dir / checkpoint_filename(1)));
  retention.admit(make(3), 0.9);  // dethrones 1; 1 is outside the window
  EXPECT_EQ(retention.best_path(), (dir / checkpoint_filename(3)).string());
  EXPECT_FALSE(fs::exists(dir / checkpoint_filename(1)));
  EXPECT_FALSE(fs::exists(dir / checkpoint_filename(2)));
  EXPECT_TRUE(fs::exists(dir / checkpoint_filename(3)));
}

// --- Python inspector agreement ---------------------------------------------

bool python_available() {
  return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

int run_ckpt_tool(const std::string& args) {
  const std::string cmd = "python3 " + std::string(FTPIM_REPO_ROOT) +
                          "/tools/ftpim_ckpt.py " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

TEST(CkptTool, AgreesWithCxxLoaderOnValidity) {
  if (!python_available()) GTEST_SKIP() << "python3 not available";
  const fs::path dir = scratch_dir("pytool");
  const fs::path good = dir / "good.ftck";
  save_training_checkpoint(sample_checkpoint(), good.string());

  // Valid file: C++ loads it, the tool verifies and dumps it.
  EXPECT_NO_THROW((void)load_training_checkpoint(good.string()));
  EXPECT_EQ(run_ckpt_tool("verify " + good.string()), 0);
  EXPECT_EQ(run_ckpt_tool("dump " + good.string()), 0);
  EXPECT_EQ(run_ckpt_tool("diff " + good.string() + " " + good.string()), 0);

  // Corrupted files: both sides must reject, for a seeded set of mutations.
  const auto image = read_file(good);
  Rng rng(737373);
  for (int i = 0; i < 12; ++i) {
    std::vector<std::uint8_t> mutated = image;
    if (i % 2 == 0) {
      mutated.resize(1 + rng.uniform_int(image.size() - 1));
    } else {
      mutated[rng.uniform_int(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    const fs::path bad = dir / "bad.ftck";
    write_file(bad, mutated);
    EXPECT_THROW((void)load_training_checkpoint(bad.string()), CheckpointError) << "case " << i;
    EXPECT_NE(run_ckpt_tool("verify " + bad.string()), 0) << "case " << i;
  }
}

}  // namespace
}  // namespace ftpim
