// Layer-level unit tests: known-value forwards plus finite-difference
// gradient checks for every layer type (the backbone correctness evidence
// for the manual-backprop engine).
#include <gtest/gtest.h>

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm2d.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pooling.hpp"
#include "src/nn/residual.hpp"
#include "src/nn/sequential.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::check_input_gradient;
using testing::check_param_gradients;
using testing::random_tensor;

constexpr double kGradTol = 2e-2;  // float32 central differences

TEST(Linear, ForwardKnownValues) {
  Rng rng(1);
  Linear layer(2, 2, rng, /*with_bias=*/true);
  layer.weight().value = Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  layer.bias().value = Tensor(Shape{2}, std::vector<float>{0.5f, -0.5f});
  const Tensor x(Shape{1, 2}, std::vector<float>{1, 1});
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);   // 1*1+2*1+0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);   // 3*1+4*1-0.5
}

TEST(Linear, GradientsMatchNumeric) {
  Rng rng(2);
  Linear layer(5, 3, rng);
  const Tensor x = random_tensor(Shape{4, 5}, 3);
  EXPECT_LT(check_input_gradient(layer, x, 10), kGradTol);
  EXPECT_LT(check_param_gradients(layer, x, 11), kGradTol);
}

TEST(Linear, RejectsBadInput) {
  Rng rng(3);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Tensor(Shape{2, 5}), false), std::invalid_argument);
  EXPECT_THROW(Linear(0, 2, rng), std::invalid_argument);
}

TEST(Linear, BackwardWithoutForwardThrows) {
  Rng rng(4);
  Linear layer(2, 2, rng);
  EXPECT_THROW(layer.backward(Tensor(Shape{1, 2})), std::logic_error);
}

TEST(Conv2d, MatchesDirectConvolution) {
  Rng rng(5);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight().value.fill(1.0f);  // box filter
  Tensor x(Shape{1, 1, 3, 3}, 1.0f);
  const Tensor y = conv.forward(x, false);
  // Center sees all 9 ones; corners see 4; edges see 6.
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0f);
}

TEST(Conv2d, StrideTwoHalvesResolution) {
  Rng rng(6);
  Conv2d conv(2, 4, 3, 2, 1, rng);
  const Tensor x = random_tensor(Shape{2, 2, 8, 8}, 7);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 4, 4}));
}

TEST(Conv2d, GradientsMatchNumeric) {
  Rng rng(8);
  Conv2d conv(2, 3, 3, 1, 1, rng, /*with_bias=*/true);
  const Tensor x = random_tensor(Shape{2, 2, 4, 4}, 9);
  EXPECT_LT(check_input_gradient(conv, x, 12), kGradTol);
  EXPECT_LT(check_param_gradients(conv, x, 13), kGradTol);
}

TEST(Conv2d, StridedGradientsMatchNumeric) {
  Rng rng(14);
  Conv2d conv(2, 2, 3, 2, 1, rng);
  const Tensor x = random_tensor(Shape{1, 2, 6, 6}, 15);
  EXPECT_LT(check_input_gradient(conv, x, 16), kGradTol);
  EXPECT_LT(check_param_gradients(conv, x, 17), kGradTol);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(3);
  const Tensor x = random_tensor(Shape{8, 3, 4, 4}, 18, 3.0f);
  const Tensor y = bn.forward(x, true);
  // Per channel: mean ~0, var ~1.
  const std::int64_t plane = 16;
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t n = 0; n < 8; ++n) {
      for (std::int64_t p = 0; p < plane; ++p) {
        const float v = y.data()[(n * 3 + c) * plane + p];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    const double count = 8.0 * plane;
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(2);
  // Train on a few batches to populate running stats.
  for (int i = 0; i < 20; ++i) {
    (void)bn.forward(random_tensor(Shape{4, 2, 3, 3}, 100 + i, 2.0f), true);
  }
  // Eval output on a constant input must use running (not batch) stats: a
  // constant batch has zero variance, which would explode without them.
  const Tensor x(Shape{2, 2, 3, 3}, 1.5f);
  const Tensor y = bn.forward(x, false);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
    EXPECT_LT(std::fabs(y[i]), 10.0f);
  }
}

TEST(BatchNorm2d, GradientsMatchNumeric) {
  BatchNorm2d bn(2);
  const Tensor x = random_tensor(Shape{3, 2, 2, 2}, 19);
  EXPECT_LT(check_input_gradient(bn, x, 20), kGradTol);
  EXPECT_LT(check_param_gradients(bn, x, 21), kGradTol);
}

TEST(ReLU, ForwardAndGradient) {
  ReLU relu;
  const Tensor x = Tensor::from_vector({-1.0f, 0.0f, 2.0f});
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const Tensor g = relu.backward(Tensor::from_vector({5.0f, 5.0f, 5.0f}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 5.0f);
}

TEST(LeakyReLU, GradientMatchesNumeric) {
  LeakyReLU leaky(0.1f);
  const Tensor x = random_tensor(Shape{40}, 22);
  EXPECT_LT(check_input_gradient(leaky, x, 23), kGradTol);
}

TEST(Tanh, GradientMatchesNumeric) {
  Tanh tanh_layer;
  const Tensor x = random_tensor(Shape{40}, 24, 0.5f);
  EXPECT_LT(check_input_gradient(tanh_layer, x, 25), kGradTol);
}

TEST(GlobalAvgPool, ForwardAndGradient) {
  GlobalAvgPool pool;
  Tensor x(Shape{1, 2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.5f);
  EXPECT_LT(check_input_gradient(pool, x, 26), kGradTol);
}

TEST(MaxPool2d, ForwardSelectsMaxima) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 7, 3, 2});
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 7.0f);
}

TEST(MaxPool2d, GradientRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 7, 3, 2});
  (void)pool.forward(x, true);
  const Tensor g = pool.backward(Tensor(Shape{1, 1, 1, 1}, std::vector<float>{4.0f}));
  EXPECT_FLOAT_EQ(g[1], 4.0f);
  EXPECT_FLOAT_EQ(g[0] + g[2] + g[3], 0.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  const Tensor x = random_tensor(Shape{2, 3, 4, 4}, 27);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  const Tensor g = flat.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Sequential, ComposesAndCollectsParams) {
  Rng rng(28);
  Sequential net;
  net.emplace<Linear>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 2, rng);
  const Tensor x = random_tensor(Shape{3, 4}, 29);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{3, 2}));
  const auto params = parameters_of(net);
  ASSERT_EQ(params.size(), 4u);  // two weights, two biases
  EXPECT_EQ(params[0]->name, "0.weight");
  EXPECT_EQ(params[2]->name, "2.weight");
}

TEST(Sequential, GradientsThroughStack) {
  Rng rng(30);
  Sequential net;
  net.emplace<Linear>(4, 6, rng);
  net.emplace<Tanh>();
  net.emplace<Linear>(6, 3, rng);
  const Tensor x = random_tensor(Shape{2, 4}, 31, 0.5f);
  EXPECT_LT(check_input_gradient(net, x, 32), kGradTol);
  EXPECT_LT(check_param_gradients(net, x, 33), kGradTol);
}

TEST(ResidualBlock, IdentityShortcutShapes) {
  Rng rng(34);
  ResidualBlock block(4, 4, 1, rng);
  const Tensor x = random_tensor(Shape{2, 4, 6, 6}, 35);
  EXPECT_EQ(block.forward(x, false).shape(), x.shape());
}

TEST(ResidualBlock, DownsampleShortcutShapes) {
  Rng rng(36);
  ResidualBlock block(4, 8, 2, rng);
  const Tensor x = random_tensor(Shape{2, 4, 6, 6}, 37);
  EXPECT_EQ(block.forward(x, false).shape(), (Shape{2, 8, 3, 3}));
}

TEST(ResidualBlock, RejectsChannelChangeWithoutStride) {
  Rng rng(38);
  EXPECT_THROW(ResidualBlock(4, 8, 1, rng), std::invalid_argument);
  EXPECT_THROW(ResidualBlock(4, 8, 3, rng), std::invalid_argument);
}

TEST(ResidualBlock, GradientsMatchNumeric) {
  Rng rng(39);
  ResidualBlock block(2, 2, 1, rng);
  const Tensor x = random_tensor(Shape{2, 2, 4, 4}, 40);
  // Smaller eps than the default: the block has two ReLUs and eps=1e-2
  // central differences cross activation kinks on this input.
  EXPECT_LT(check_input_gradient(block, x, 41, 3e-3f), kGradTol);
  EXPECT_LT(check_param_gradients(block, x, 42, 3e-3f), kGradTol);
}

TEST(ResidualBlock, DownsampleGradientsMatchNumeric) {
  Rng rng(43);
  ResidualBlock block(2, 4, 2, rng);
  const Tensor x = random_tensor(Shape{1, 2, 4, 4}, 44);
  EXPECT_LT(check_input_gradient(block, x, 45), kGradTol);
  EXPECT_LT(check_param_gradients(block, x, 46), kGradTol);
}

TEST(Module, StateDictRoundTrip) {
  Rng rng(47);
  Sequential net;
  net.emplace<Conv2d>(2, 3, 3, 1, 1, rng);
  net.emplace<BatchNorm2d>(3);
  net.emplace<ReLU>();
  (void)net.forward(random_tensor(Shape{2, 2, 4, 4}, 48), true);  // touch BN stats

  const StateDict state = state_dict_of(net);
  EXPECT_TRUE(state.count("0.weight"));
  EXPECT_TRUE(state.count("1.gamma"));
  EXPECT_TRUE(state.count("1.running_mean"));

  Rng rng2(999);
  Sequential other;
  other.emplace<Conv2d>(2, 3, 3, 1, 1, rng2);
  other.emplace<BatchNorm2d>(3);
  other.emplace<ReLU>();
  load_state_dict_into(other, state);
  const Tensor x = random_tensor(Shape{1, 2, 4, 4}, 49);
  EXPECT_TRUE(other.forward(x, false).allclose(net.forward(x, false)));
}

TEST(Module, LoadStateDictValidates) {
  Rng rng(50);
  Sequential net;
  net.emplace<Linear>(2, 2, rng);
  StateDict missing;
  EXPECT_THROW(load_state_dict_into(net, missing), std::runtime_error);
  StateDict wrong_shape;
  wrong_shape.emplace("0.weight", Tensor(Shape{3, 3}));
  wrong_shape.emplace("0.bias", Tensor(Shape{2}));
  EXPECT_THROW(load_state_dict_into(net, wrong_shape), std::runtime_error);
}

TEST(Module, ParameterCountAndZeroGrads) {
  Rng rng(51);
  Sequential net;
  net.emplace<Linear>(3, 4, rng);  // 12 + 4
  net.emplace<Linear>(4, 2, rng);  // 8 + 2
  EXPECT_EQ(parameter_count(net), 26);
  const Tensor x = random_tensor(Shape{2, 3}, 52);
  (void)net.forward(x, true);
  (void)net.backward(random_tensor(Shape{2, 2}, 53));
  zero_grads(net);
  for (const Param* p : parameters_of(net)) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

}  // namespace
}  // namespace ftpim
