// Kill/resume equivalence for fault-tolerant training (DESIGN.md §10).
//
// The contract under test: a progressive FT run checkpointed every epoch,
// killed after any epoch — at a stage boundary or mid-stage — and resumed
// from the checkpoint must land on final weights and FtTrainStats that are
// BIT-IDENTICAL to the never-interrupted run, at any thread count. These
// tests simulate the kill by running the full baseline once, then replaying
// the tail from every checkpoint it left behind with a fresh model object.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/tensor/serialize.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/common/checkpoint.hpp"
#include "src/core/train_checkpoint.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"

namespace ftpim {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "ftpim_resume_test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::unique_ptr<InMemoryDataset> tiny_vision() {
  SynthVisionConfig cfg;
  cfg.num_classes = 3;
  cfg.image_size = 8;
  cfg.samples = 48;
  cfg.seed = 11;
  cfg.noise_std = 0.3f;
  return make_synthvision(cfg, 1);
}

std::unique_ptr<Module> fresh_model() {
  return make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 21});
}

/// Progressive 2-stage run, 2 epochs per stage, augmentation ON so the
/// cross-epoch DataLoader RNG stream actually matters for equivalence.
FtTrainConfig ft_config(const std::string& ckpt_dir) {
  FtTrainConfig ft;
  ft.base.epochs = 2;
  ft.base.batch_size = 16;
  ft.base.sgd.lr = 0.05f;
  ft.base.augment.enabled = true;
  ft.base.seed = 9;
  ft.scheme = FtScheme::kProgressive;
  ft.target_p_sa = 0.02;
  ft.progressive_levels = {0.01, 0.02};
  ft.fault_seed = 77;
  ft.checkpoint.dir = ckpt_dir;
  ft.checkpoint.every_epochs = 1;
  ft.checkpoint.keep_last = 100;  // keep every epoch so each is resumable
  ft.checkpoint.keep_best = false;
  return ft;
}

std::vector<std::uint8_t> weight_bytes(Module& model) {
  return encode_state_dict(state_dict_of(model));
}

void expect_stats_identical(const FtTrainStats& a, const FtTrainStats& b) {
  EXPECT_EQ(a.stage_rates, b.stage_rates);
  ASSERT_EQ(a.stage_stats.size(), b.stage_stats.size());
  for (std::size_t s = 0; s < a.stage_stats.size(); ++s) {
    EXPECT_EQ(a.stage_stats[s].epoch_losses, b.stage_stats[s].epoch_losses) << "stage " << s;
  }
  EXPECT_EQ(a.mean_cell_fault_rate, b.mean_cell_fault_rate);  // exact, not approx
}

/// Runs the baseline once, then resumes from every checkpoint it produced
/// and demands bit-identical final weights and stats.
void run_equivalence(int threads, const std::string& tag) {
  set_num_threads(threads);
  const auto data = tiny_vision();
  const fs::path base_dir = scratch_dir("base_" + tag);

  auto baseline_model = fresh_model();
  FaultTolerantTrainer baseline(*baseline_model, *data, ft_config(base_dir.string()));
  const FtTrainStats base_stats = baseline.run();
  const std::vector<std::uint8_t> base_weights = weight_bytes(*baseline_model);
  const int total_epochs = 4;  // 2 stages x 2 epochs

  // Every epoch left a checkpoint: 1 = mid stage 0, 2 = stage boundary,
  // 3 = mid stage 1, 4 = run complete.
  for (int k = 1; k <= total_epochs; ++k) {
    const fs::path ckpt = base_dir / checkpoint_filename(k);
    ASSERT_TRUE(fs::exists(ckpt)) << ckpt;

    const fs::path resume_dir = scratch_dir("resume_" + tag + "_" + std::to_string(k));
    auto model = fresh_model();  // weights come from the checkpoint, not init
    FaultTolerantTrainer trainer(*model, *data, ft_config(resume_dir.string()));
    const FtTrainStats stats = trainer.resume(ckpt.string());

    EXPECT_EQ(weight_bytes(*model), base_weights) << "resumed from epoch " << k;
    expect_stats_identical(stats, base_stats);
  }
  set_num_threads(0);
}

TEST(FtResume, BitIdenticalFromEveryKillPointSingleThread) {
  run_equivalence(1, "t1");
}

TEST(FtResume, BitIdenticalFromEveryKillPointFourThreads) {
  run_equivalence(4, "t4");
}

TEST(FtResume, OneShotSchemeResumesMidRun) {
  const auto data = tiny_vision();
  const fs::path base_dir = scratch_dir("oneshot_base");

  FtTrainConfig cfg = ft_config(base_dir.string());
  cfg.scheme = FtScheme::kOneShot;
  cfg.progressive_levels.clear();
  cfg.base.epochs = 3;

  auto baseline_model = fresh_model();
  const FtTrainStats base_stats =
      FaultTolerantTrainer(*baseline_model, *data, cfg).run();

  FtTrainConfig resume_cfg = cfg;
  resume_cfg.checkpoint.dir = scratch_dir("oneshot_resume").string();
  auto model = fresh_model();
  FaultTolerantTrainer trainer(*model, *data, resume_cfg);
  const FtTrainStats stats =
      trainer.resume((base_dir / checkpoint_filename(2)).string());

  EXPECT_EQ(weight_bytes(*model), weight_bytes(*baseline_model));
  expect_stats_identical(stats, base_stats);
}

TEST(FtResume, CompletedCheckpointRestoresWithoutTraining) {
  const auto data = tiny_vision();
  const fs::path base_dir = scratch_dir("complete_base");

  auto baseline_model = fresh_model();
  FaultTolerantTrainer baseline(*baseline_model, *data, ft_config(base_dir.string()));
  const FtTrainStats base_stats = baseline.run();

  auto model = fresh_model();
  FaultTolerantTrainer trainer(*model, *data,
                               ft_config(scratch_dir("complete_resume").string()));
  const FtTrainStats stats =
      trainer.resume((base_dir / checkpoint_filename(4)).string());

  EXPECT_EQ(weight_bytes(*model), weight_bytes(*baseline_model));
  expect_stats_identical(stats, base_stats);
}

TEST(FtResume, LatestCheckpointFindsTheNewest) {
  const auto data = tiny_vision();
  const fs::path dir = scratch_dir("latest");
  auto model = fresh_model();
  FaultTolerantTrainer(*model, *data, ft_config(dir.string())).run();
  EXPECT_EQ(latest_checkpoint(dir.string()), (dir / checkpoint_filename(4)).string());
}

TEST(FtResume, MismatchedConfigIsRejected) {
  const auto data = tiny_vision();
  const fs::path base_dir = scratch_dir("mismatch_base");
  auto model = fresh_model();
  FaultTolerantTrainer(*model, *data, ft_config(base_dir.string())).run();
  const std::string ckpt = (base_dir / checkpoint_filename(1)).string();

  // Any numerically relevant divergence must be refused as kStateMismatch.
  FtTrainConfig changed = ft_config(scratch_dir("mismatch_resume").string());
  changed.fault_seed = 78;
  auto other = fresh_model();
  FaultTolerantTrainer trainer(*other, *data, changed);
  try {
    (void)trainer.resume(ckpt);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kStateMismatch);
  }
}

TEST(FtResume, VerboseAndCheckpointPolicyDoNotBlockResume) {
  // verbose and retention knobs are excluded from the config echo: flipping
  // them between the original run and the resume is legal.
  const auto data = tiny_vision();
  const fs::path base_dir = scratch_dir("policy_base");
  auto baseline_model = fresh_model();
  FaultTolerantTrainer baseline(*baseline_model, *data, ft_config(base_dir.string()));
  const FtTrainStats base_stats = baseline.run();

  FtTrainConfig changed = ft_config(scratch_dir("policy_resume").string());
  changed.checkpoint.every_epochs = 2;
  changed.checkpoint.keep_last = 1;
  changed.checkpoint.keep_best = true;
  auto model = fresh_model();
  FaultTolerantTrainer trainer(*model, *data, changed);
  const FtTrainStats stats =
      trainer.resume((base_dir / checkpoint_filename(3)).string());
  EXPECT_EQ(weight_bytes(*model), weight_bytes(*baseline_model));
  expect_stats_identical(stats, base_stats);
}

TEST(FtResume, RetentionPrunesDuringTraining) {
  const auto data = tiny_vision();
  const fs::path dir = scratch_dir("retention_live");
  FtTrainConfig cfg = ft_config(dir.string());
  cfg.checkpoint.keep_last = 1;
  cfg.checkpoint.keep_best = false;
  auto model = fresh_model();
  FaultTolerantTrainer(*model, *data, cfg).run();
  // Only the final checkpoint survives a keep_last=1 policy.
  EXPECT_FALSE(fs::exists(dir / checkpoint_filename(1)));
  EXPECT_FALSE(fs::exists(dir / checkpoint_filename(2)));
  EXPECT_FALSE(fs::exists(dir / checkpoint_filename(3)));
  EXPECT_TRUE(fs::exists(dir / checkpoint_filename(4)));
}

}  // namespace
}  // namespace ftpim
