// Property-style parameterized gradient checks: every (layer, geometry)
// combination in the sweep must pass finite-difference verification. This is
// the broad-coverage companion to the targeted checks in nn_layers_test.
#include <gtest/gtest.h>

#include <memory>

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm2d.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/dropout.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pooling.hpp"
#include "src/nn/residual.hpp"
#include "src/nn/sequential.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::check_input_gradient;
using testing::check_param_gradients;
using testing::random_tensor;

constexpr double kTol = 2e-2;
constexpr float kEps = 3e-3f;  // small enough to dodge ReLU kinks

struct ConvCase {
  std::int64_t in_c, out_c, kernel, stride, pad, img;
};

class ConvGradTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, InputAndParamGradients) {
  const ConvCase c = GetParam();
  Rng rng(1);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, rng, /*with_bias=*/true);
  const Tensor x = random_tensor(Shape{2, c.in_c, c.img, c.img}, 2);
  EXPECT_LT(check_input_gradient(conv, x, 3, kEps), kTol);
  EXPECT_LT(check_param_gradients(conv, x, 4, kEps), kTol);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGradTest,
                         ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4},   // pointwise
                                           ConvCase{2, 3, 3, 1, 1, 5},   // same-pad
                                           ConvCase{3, 2, 3, 2, 1, 6},   // strided
                                           ConvCase{2, 2, 5, 1, 2, 7},   // 5x5
                                           ConvCase{1, 4, 3, 1, 0, 5},   // valid
                                           ConvCase{4, 1, 2, 2, 0, 6})); // even kernel

struct LinearCase {
  std::int64_t in, out, batch;
};

class LinearGradTest : public ::testing::TestWithParam<LinearCase> {};

TEST_P(LinearGradTest, InputAndParamGradients) {
  const LinearCase c = GetParam();
  Rng rng(5);
  Linear layer(c.in, c.out, rng, /*with_bias=*/true);
  const Tensor x = random_tensor(Shape{c.batch, c.in}, 6);
  EXPECT_LT(check_input_gradient(layer, x, 7, kEps), kTol);
  EXPECT_LT(check_param_gradients(layer, x, 8, kEps), kTol);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinearGradTest,
                         ::testing::Values(LinearCase{1, 1, 1}, LinearCase{7, 3, 5},
                                           LinearCase{16, 16, 2}, LinearCase{3, 11, 8}));

struct BnCase {
  std::int64_t channels, batch, side;
};

class BatchNormGradTest : public ::testing::TestWithParam<BnCase> {};

TEST_P(BatchNormGradTest, InputAndParamGradients) {
  const BnCase c = GetParam();
  BatchNorm2d bn(c.channels);
  const Tensor x = random_tensor(Shape{c.batch, c.channels, c.side, c.side}, 9, 1.5f);
  EXPECT_LT(check_input_gradient(bn, x, 10, kEps), kTol);
  EXPECT_LT(check_param_gradients(bn, x, 11, kEps), kTol);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BatchNormGradTest,
                         ::testing::Values(BnCase{1, 4, 3}, BnCase{3, 2, 4}, BnCase{5, 3, 2}));

class ResidualGradTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ResidualGradTest, DownsampleVariants) {
  const std::int64_t stride = GetParam();
  Rng rng(12);
  const std::int64_t in_c = 2;
  const std::int64_t out_c = stride == 2 ? 4 : 2;
  ResidualBlock block(in_c, out_c, stride, rng);
  const Tensor x = random_tensor(Shape{1, in_c, 4, 4}, 13);
  EXPECT_LT(check_input_gradient(block, x, 14, kEps), kTol);
  EXPECT_LT(check_param_gradients(block, x, 15, kEps), kTol);
}

INSTANTIATE_TEST_SUITE_P(Strides, ResidualGradTest, ::testing::Values(1, 2));

TEST(CompositeGrad, ConvBnReluPoolLinearStack) {
  Rng rng(16);
  Sequential net;
  net.emplace<Conv2d>(2, 3, 3, 1, 1, rng);
  net.emplace<BatchNorm2d>(3);
  net.emplace<Tanh>();  // smooth activation keeps the check tight
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(3, 4, rng);
  const Tensor x = random_tensor(Shape{2, 2, 6, 6}, 17);
  EXPECT_LT(check_input_gradient(net, x, 18, kEps), kTol);
  EXPECT_LT(check_param_gradients(net, x, 19, kEps), kTol);
}

TEST(CompositeGrad, MaxPoolInStack) {
  Rng rng(20);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  net.emplace<MaxPool2d>(2, 2);
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 3 * 3, 2, rng);
  const Tensor x = random_tensor(Shape{1, 1, 6, 6}, 21);
  EXPECT_LT(check_input_gradient(net, x, 22, kEps), kTol);
}

TEST(CompositeGrad, DropoutIsExactlyMaskedIdentityInBackward) {
  // Dropout's mask is resampled per forward, so finite differences can't be
  // used; instead verify backward applies exactly the cached forward mask.
  Dropout drop(0.5f, 33);
  const Tensor x = testing::random_tensor(Shape{200}, 23);
  const Tensor y = drop.forward(x, true);
  const Tensor probe = testing::random_tensor(Shape{200}, 24);
  const Tensor dx = drop.backward(probe);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float mask = x[i] != 0.0f ? y[i] / x[i] : 0.0f;  // recover scale
    if (y[i] == 0.0f) {
      EXPECT_FLOAT_EQ(dx[i], 0.0f);
    } else {
      EXPECT_NEAR(dx[i], probe[i] * mask, 1e-4f);
    }
  }
}

}  // namespace
}  // namespace ftpim
