#include <gtest/gtest.h>

#include <vector>

#include "src/tensor/im2col.hpp"
#include "src/tensor/tensor.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

TEST(ConvGeometry, OutputDims) {
  const ConvGeometry g{.in_c = 3, .in_h = 32, .in_w = 32, .kernel_h = 3, .kernel_w = 3,
                       .stride_h = 1, .stride_w = 1, .pad_h = 1, .pad_w = 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  EXPECT_EQ(g.col_rows(), 27);
  EXPECT_EQ(g.col_cols(), 1024);
}

TEST(ConvGeometry, StridedOutputDims) {
  const ConvGeometry g{.in_c = 16, .in_h = 16, .in_w = 16, .kernel_h = 3, .kernel_w = 3,
                       .stride_h = 2, .stride_w = 2, .pad_h = 1, .pad_w = 1};
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
}

TEST(Im2col, IdentityKernelCopiesImage) {
  // 1x1 kernel, no pad, stride 1: col should equal the image flattened.
  const ConvGeometry g{.in_c = 2, .in_h = 3, .in_w = 3, .kernel_h = 1, .kernel_w = 1,
                       .stride_h = 1, .stride_w = 1, .pad_h = 0, .pad_w = 0};
  const Tensor img = testing::random_tensor(Shape{2, 3, 3}, 1);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(img.data(), g, col.data());
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_FLOAT_EQ(col[i], img[i]);
}

TEST(Im2col, KnownSmallCase) {
  // 1 channel 2x2 image, 2x2 kernel, pad 0 -> single output position holding
  // the whole image.
  const ConvGeometry g{.in_c = 1, .in_h = 2, .in_w = 2, .kernel_h = 2, .kernel_w = 2,
                       .stride_h = 1, .stride_w = 1, .pad_h = 0, .pad_w = 0};
  const Tensor img(Shape{1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  std::vector<float> col(4);
  im2col(img.data(), g, col.data());
  EXPECT_EQ(col, (std::vector<float>{1, 2, 3, 4}));
}

TEST(Im2col, PaddingProducesZeros) {
  // 1x1 image, 3x3 kernel, pad 1: center tap sees the pixel, others zero.
  const ConvGeometry g{.in_c = 1, .in_h = 1, .in_w = 1, .kernel_h = 3, .kernel_w = 3,
                       .stride_h = 1, .stride_w = 1, .pad_h = 1, .pad_w = 1};
  const Tensor img(Shape{1, 1, 1}, std::vector<float>{5.0f});
  std::vector<float> col(9);
  im2col(img.data(), g, col.data());
  for (int tap = 0; tap < 9; ++tap) EXPECT_FLOAT_EQ(col[tap], tap == 4 ? 5.0f : 0.0f);
}

TEST(Col2im, InverseOfIm2colForNonOverlapping) {
  // Stride == kernel: each input pixel appears exactly once in col, so
  // col2im(im2col(x)) == x.
  const ConvGeometry g{.in_c = 2, .in_h = 4, .in_w = 4, .kernel_h = 2, .kernel_w = 2,
                       .stride_h = 2, .stride_w = 2, .pad_h = 0, .pad_w = 0};
  const Tensor img = testing::random_tensor(Shape{2, 4, 4}, 2);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(img.data(), g, col.data());
  Tensor back(Shape{2, 4, 4});
  col2im(col.data(), g, back.data());
  EXPECT_TRUE(back.allclose(img));
}

TEST(Col2im, OverlapAccumulates) {
  // 3x3 kernel stride 1 pad 1 over all-ones col: each pixel accumulates one
  // contribution per kernel tap that covers it (9 in the interior).
  const ConvGeometry g{.in_c = 1, .in_h = 5, .in_w = 5, .kernel_h = 3, .kernel_w = 3,
                       .stride_h = 1, .stride_w = 1, .pad_h = 1, .pad_w = 1};
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()), 1.0f);
  Tensor img(Shape{1, 5, 5});
  col2im(col.data(), g, img.data());
  EXPECT_FLOAT_EQ(img.data()[2 * 5 + 2], 9.0f);  // interior
  EXPECT_FLOAT_EQ(img.data()[0], 4.0f);          // corner
  EXPECT_FLOAT_EQ(img.data()[2], 6.0f);          // edge
}

TEST(Im2colCol2im, AdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> — im2col and col2im must be adjoint
  // linear maps for convolution backward to be correct.
  const ConvGeometry g{.in_c = 2, .in_h = 6, .in_w = 5, .kernel_h = 3, .kernel_w = 3,
                       .stride_h = 2, .stride_w = 1, .pad_h = 1, .pad_w = 1};
  const Tensor x = testing::random_tensor(Shape{2, 6, 5}, 3);
  const std::int64_t col_n = g.col_rows() * g.col_cols();
  const Tensor y = testing::random_tensor(Shape{col_n}, 4);

  std::vector<float> col(static_cast<std::size_t>(col_n));
  im2col(x.data(), g, col.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < col_n; ++i) lhs += static_cast<double>(col[i]) * y[i];

  Tensor xt(Shape{2, 6, 5});
  col2im(y.data(), g, xt.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * xt[i];

  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

}  // namespace
}  // namespace ftpim
