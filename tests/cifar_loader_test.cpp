// Tests the real-CIFAR binary loader against synthetic fixture files written
// in the exact CIFAR-10/100 record format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/data/cifar_loader.hpp"

namespace ftpim {
namespace {

namespace fs = std::filesystem;

class CifarLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "ftpim_cifar_fixture").string();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Writes `count` CIFAR records. Pixel p of record r is (r*7 + p) % 256;
  /// label is r % 10 (fine label r % 100 for CIFAR-100).
  void write_fixture(const std::string& filename, int count, int label_bytes) {
    std::FILE* f = std::fopen((dir_ + "/" + filename).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<unsigned char> record(static_cast<std::size_t>(label_bytes) + 3072);
    for (int r = 0; r < count; ++r) {
      if (label_bytes == 2) {
        record[0] = static_cast<unsigned char>(r % 20);   // coarse
        record[1] = static_cast<unsigned char>(r % 100);  // fine
      } else {
        record[0] = static_cast<unsigned char>(r % 10);
      }
      for (int p = 0; p < 3072; ++p) {
        record[static_cast<std::size_t>(label_bytes + p)] =
            static_cast<unsigned char>((r * 7 + p) % 256);
      }
      ASSERT_EQ(std::fwrite(record.data(), 1, record.size(), f), record.size());
    }
    std::fclose(f);
  }

  std::string dir_;
};

TEST_F(CifarLoaderTest, AvailabilityChecks) {
  EXPECT_FALSE(cifar10_available(dir_));
  EXPECT_FALSE(cifar100_available(dir_));
  for (int b = 1; b <= 5; ++b) write_fixture("data_batch_" + std::to_string(b) + ".bin", 4, 1);
  write_fixture("test_batch.bin", 4, 1);
  EXPECT_TRUE(cifar10_available(dir_));
  write_fixture("train.bin", 4, 2);
  write_fixture("test.bin", 4, 2);
  EXPECT_TRUE(cifar100_available(dir_));
}

TEST_F(CifarLoaderTest, LoadsCifar10TrainAcrossBatches) {
  for (int b = 1; b <= 5; ++b) write_fixture("data_batch_" + std::to_string(b) + ".bin", 3, 1);
  write_fixture("test_batch.bin", 2, 1);
  const auto train = load_cifar10(dir_, /*train=*/true, 0);
  EXPECT_EQ(train->size(), 15);
  EXPECT_EQ(train->num_classes(), 10);
  EXPECT_EQ(train->image_shape(), (Shape{3, 32, 32}));
  const auto test = load_cifar10(dir_, /*train=*/false, 0);
  EXPECT_EQ(test->size(), 2);
}

TEST_F(CifarLoaderTest, RespectsMaxSamples) {
  for (int b = 1; b <= 5; ++b) write_fixture("data_batch_" + std::to_string(b) + ".bin", 10, 1);
  write_fixture("test_batch.bin", 10, 1);
  const auto train = load_cifar10(dir_, /*train=*/true, 12);
  EXPECT_EQ(train->size(), 12);
}

TEST_F(CifarLoaderTest, LabelsRoundTrip) {
  write_fixture("data_batch_1.bin", 10, 1);
  for (int b = 2; b <= 5; ++b) write_fixture("data_batch_" + std::to_string(b) + ".bin", 0, 1);
  write_fixture("test_batch.bin", 0, 1);
  const auto train = load_cifar10(dir_, /*train=*/true, 0);
  for (std::int64_t i = 0; i < train->size(); ++i) {
    EXPECT_EQ(train->get(i).label, i % 10);
  }
}

TEST_F(CifarLoaderTest, Cifar100UsesFineLabel) {
  write_fixture("train.bin", 25, 2);
  write_fixture("test.bin", 5, 2);
  const auto train = load_cifar100(dir_, /*train=*/true, 0);
  EXPECT_EQ(train->num_classes(), 100);
  for (std::int64_t i = 0; i < train->size(); ++i) {
    EXPECT_EQ(train->get(i).label, i % 100);  // fine, not coarse (i % 20)
  }
}

TEST_F(CifarLoaderTest, MissingFileThrows) {
  EXPECT_THROW(load_cifar10(dir_, true, 0), std::runtime_error);
}

TEST_F(CifarLoaderTest, TruncatedRecordThrows) {
  write_fixture("test_batch.bin", 2, 1);
  fs::resize_file(dir_ + "/test_batch.bin", 3073 + 100);  // 1 full + partial record
  EXPECT_THROW(load_cifar10(dir_, false, 0), std::runtime_error);
}

TEST_F(CifarLoaderTest, PixelsAreNormalized) {
  write_fixture("test_batch.bin", 8, 1);
  const auto test = load_cifar10(dir_, /*train=*/false, 0);
  // After per-channel normalization the global per-channel mean is ~0.
  double sum = 0.0;
  std::int64_t n = 0;
  for (std::int64_t i = 0; i < test->size(); ++i) {
    const Sample s = test->get(i);
    for (std::int64_t j = 0; j < s.image.numel(); ++j) sum += s.image[j];
    n += s.image.numel();
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 0.0, 1e-3);
}

}  // namespace
}  // namespace ftpim
