#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/nn/linear.hpp"
#include "src/optim/lr_scheduler.hpp"
#include "src/optim/sgd.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

Param make_param(const char* name, std::vector<float> values, ParamKind kind) {
  const auto n = static_cast<std::int64_t>(values.size());
  return Param(name, Tensor(Shape{n}, std::move(values)), kind);
}

TEST(Sgd, PlainStepMatchesManual) {
  Param p = make_param("w", {1.0f, 2.0f}, ParamKind::kCrossbarWeight);
  p.grad = Tensor::from_vector({0.5f, -0.5f});
  Sgd opt({&p}, SgdConfig{.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f, .grad_clip = 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 2.0f + 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p = make_param("w", {0.0f}, ParamKind::kCrossbarWeight);
  Sgd opt({&p}, SgdConfig{.lr = 1.0f, .momentum = 0.5f, .weight_decay = 0.0f, .grad_clip = 0.0f});
  p.grad = Tensor::from_vector({1.0f});
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad = Tensor::from_vector({1.0f});
  opt.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, WeightDecayOnlyOnCrossbarWeights) {
  Param w = make_param("w", {1.0f}, ParamKind::kCrossbarWeight);
  Param g = make_param("gamma", {1.0f}, ParamKind::kNorm);
  Param b = make_param("bias", {1.0f}, ParamKind::kBias);
  Sgd opt({&w, &g, &b},
          SgdConfig{.lr = 1.0f, .momentum = 0.0f, .weight_decay = 0.1f, .grad_clip = 0.0f});
  opt.step();  // zero grads: only decay acts
  EXPECT_FLOAT_EQ(w.value[0], 0.9f);
  EXPECT_FLOAT_EQ(g.value[0], 1.0f);
  EXPECT_FLOAT_EQ(b.value[0], 1.0f);
}

TEST(Sgd, GradClipScalesLargeGradients) {
  Param p = make_param("w", {0.0f, 0.0f}, ParamKind::kBias);
  p.grad = Tensor::from_vector({3.0f, 4.0f});  // norm 5
  Sgd opt({&p}, SgdConfig{.lr = 1.0f, .momentum = 0.0f, .weight_decay = 0.0f, .grad_clip = 1.0f});
  opt.step();
  // Clipped to unit norm: grad (0.6, 0.8).
  EXPECT_NEAR(p.value[0], -0.6f, 1e-5f);
  EXPECT_NEAR(p.value[1], -0.8f, 1e-5f);
}

TEST(Sgd, MaskFreezesPrunedPositions) {
  Param p = make_param("w", {1.0f, 2.0f}, ParamKind::kCrossbarWeight);
  Sgd opt({&p}, SgdConfig{.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f, .grad_clip = 0.0f});
  Tensor mask = Tensor::from_vector({0.0f, 1.0f});
  opt.set_mask(&p, mask);
  p.value[0] = 0.0f;  // pruned position
  p.grad = Tensor::from_vector({5.0f, 5.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);  // stays pruned
  EXPECT_LT(p.value[1], 2.0f);        // free position updated
}

TEST(Sgd, MaskShapeValidation) {
  Param p = make_param("w", {1.0f, 2.0f}, ParamKind::kCrossbarWeight);
  Sgd opt({&p}, SgdConfig{});
  EXPECT_THROW(opt.set_mask(&p, Tensor(Shape{3})), std::invalid_argument);
}

TEST(Sgd, ConfigValidation) {
  Param p = make_param("w", {1.0f}, ParamKind::kCrossbarWeight);
  EXPECT_THROW(Sgd({&p}, SgdConfig{.lr = 0.0f}), std::invalid_argument);
  EXPECT_THROW(Sgd({&p}, SgdConfig{.lr = 0.1f, .momentum = 1.0f}), std::invalid_argument);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // min (w-3)^2: gradient 2(w-3).
  Param p = make_param("w", {0.0f}, ParamKind::kBias);
  Sgd opt({&p}, SgdConfig{.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f, .grad_clip = 0.0f});
  for (int i = 0; i < 200; ++i) {
    p.grad = Tensor::from_vector({2.0f * (p.value[0] - 3.0f)});
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-3f);
}

TEST(CosineSchedule, EndpointsAndMidpoint) {
  const CosineSchedule sched(0.1f, 0.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(0, 100), 0.1f);
  EXPECT_NEAR(sched.lr_at(50, 100), 0.05f, 1e-6f);
  EXPECT_LT(sched.lr_at(99, 100), 0.001f);
}

TEST(CosineSchedule, MonotoneDecreasing) {
  const CosineSchedule sched(0.1f);
  for (int e = 1; e < 50; ++e) EXPECT_LE(sched.lr_at(e, 50), sched.lr_at(e - 1, 50));
}

TEST(CosineSchedule, Validation) {
  EXPECT_THROW(CosineSchedule(0.0f), std::invalid_argument);
  EXPECT_THROW(CosineSchedule(0.1f, 0.2f), std::invalid_argument);
}

TEST(StepSchedule, DropsAtMilestones) {
  const StepSchedule sched(1.0f, {10, 20}, 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_at(5, 30), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(10, 30), 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_at(25, 30), 0.01f);
}

TEST(ConstantSchedule, Constant) {
  const ConstantSchedule sched(0.02f);
  EXPECT_FLOAT_EQ(sched.lr_at(0, 10), 0.02f);
  EXPECT_FLOAT_EQ(sched.lr_at(9, 10), 0.02f);
}

}  // namespace
}  // namespace ftpim
