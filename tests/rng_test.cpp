#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/rng.hpp"

namespace ftpim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(u, -3.0f);
    EXPECT_LT(u, 5.0f);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaleShift) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0f, 0.3f), 0.0f);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> order(257);
  rng.shuffle(order.data(), order.size());
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], static_cast<int>(i));
  // And actually shuffled (overwhelmingly likely).
  bool moved = false;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != static_cast<int>(i)) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(DeriveSeed, IndependentStreams) {
  const std::uint64_t master = 1234;
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(derive_seed(master, s));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions among small stream ids
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(5, 17), derive_seed(5, 17));
  EXPECT_NE(derive_seed(5, 17), derive_seed(6, 17));
  EXPECT_NE(derive_seed(5, 17), derive_seed(5, 18));
}

class RngStatsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStatsTest, UniformMeanIsHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngStatsTest, ::testing::Values(1, 99, 12345, 0xdeadbeef));

}  // namespace
}  // namespace ftpim
