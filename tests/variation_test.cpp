#include <gtest/gtest.h>

#include <cmath>

#include "src/models/mlp.hpp"
#include "src/reram/variation.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

TEST(Variation, ZeroSigmaIsNearIdentity) {
  Tensor w = testing::random_tensor(Shape{500}, 1);
  const Tensor original = w;
  Rng rng(2);
  apply_conductance_variation(w, VariationConfig{.sigma = 0.0f}, rng);
  EXPECT_TRUE(w.allclose(original, 1e-5f, 1e-5f));
}

TEST(Variation, PerturbsWeightsAtPositiveSigma) {
  Tensor w = testing::random_tensor(Shape{500}, 3);
  const Tensor original = w;
  Rng rng(4);
  apply_conductance_variation(w, VariationConfig{.sigma = 0.2f}, rng);
  double mad = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) mad += std::fabs(w[i] - original[i]);
  EXPECT_GT(mad / static_cast<double>(w.numel()), 1e-3);
}

TEST(Variation, StaysWithinFullScale) {
  Tensor w = testing::random_tensor(Shape{2000}, 5);
  const float wmax = w.abs_max();
  Rng rng(6);
  apply_conductance_variation(w, VariationConfig{.sigma = 1.0f}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w[i]), wmax * (1.0f + 1e-5f));
    EXPECT_TRUE(std::isfinite(w[i]));
  }
}

TEST(Variation, LargerSigmaLargerDistortion) {
  double mads[2] = {0.0, 0.0};
  const float sigmas[2] = {0.05f, 0.5f};
  for (int k = 0; k < 2; ++k) {
    Tensor w = testing::random_tensor(Shape{5000}, 7);
    const Tensor original = w;
    Rng rng(8);
    apply_conductance_variation(w, VariationConfig{.sigma = sigmas[k]}, rng);
    for (std::int64_t i = 0; i < w.numel(); ++i) mads[k] += std::fabs(w[i] - original[i]);
  }
  EXPECT_GT(mads[1], 2.0 * mads[0]);
}

TEST(Variation, ModelHelperSkipsNonCrossbarParams) {
  auto net = make_mlp({6, 8, 2}, 9);
  std::vector<Tensor> biases;
  for (const Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kBias) biases.push_back(p->value);
  }
  Rng rng(10);
  apply_variation_to_model(*net, VariationConfig{.sigma = 0.3f}, rng);
  std::size_t b = 0;
  for (const Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kBias) {
      EXPECT_TRUE(p->value.allclose(biases[b++], 0.0f, 0.0f));
    }
  }
}

}  // namespace
}  // namespace ftpim
