#include <gtest/gtest.h>

#include <cmath>

#include "src/models/mlp.hpp"
#include "src/prune/admm_pruner.hpp"
#include "src/tensor/tensor_ops.hpp"
#include "src/prune/magnitude_pruner.hpp"
#include "src/prune/sparsity.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::random_tensor;

TEST(SparsityUtils, MagnitudeKeepMaskKeepsLargest) {
  const Tensor v = Tensor::from_vector({0.1f, -5.0f, 3.0f, -0.2f, 4.0f});
  const Tensor mask = magnitude_keep_mask(v, 2);
  EXPECT_EQ(mask[0], 0.0f);
  EXPECT_EQ(mask[1], 1.0f);  // |-5|
  EXPECT_EQ(mask[2], 0.0f);
  EXPECT_EQ(mask[3], 0.0f);
  EXPECT_EQ(mask[4], 1.0f);  // |4|
}

TEST(SparsityUtils, KeepMaskHandlesTiesExactly) {
  const Tensor v = Tensor::from_vector({1.0f, 1.0f, 1.0f, 1.0f});
  const Tensor mask = magnitude_keep_mask(v, 2);
  std::int64_t kept = 0;
  for (std::int64_t i = 0; i < 4; ++i) kept += mask[i] != 0.0f ? 1 : 0;
  EXPECT_EQ(kept, 2);
}

TEST(SparsityUtils, KeepMaskBoundaryCases) {
  const Tensor v = Tensor::from_vector({1.0f, 2.0f});
  EXPECT_EQ(count_zeros(magnitude_keep_mask(v, 0)), 2);
  EXPECT_EQ(count_zeros(magnitude_keep_mask(v, 2)), 0);
  EXPECT_THROW(magnitude_keep_mask(v, 3), std::invalid_argument);
}

TEST(SparsityUtils, ProjectTopkIsIdempotent) {
  const Tensor v = random_tensor(Shape{100}, 1);
  const Tensor p1 = project_topk(v, 30);
  const Tensor p2 = project_topk(p1, 30);
  EXPECT_TRUE(p1.allclose(p2, 0.0f, 0.0f));
  EXPECT_EQ(count_zeros(p1), 70);
}

TEST(MagnitudePrune, PerLayerHitsExactSparsity) {
  auto net = make_mlp({20, 30, 10}, 2);
  const auto masks =
      magnitude_prune(*net, MagnitudePruneConfig{.sparsity = 0.5, .scope = PruneScope::kPerLayer});
  for (const PruneMask& m : masks) {
    const double layer_sparsity =
        static_cast<double>(m.pruned()) / static_cast<double>(m.mask.numel());
    EXPECT_NEAR(layer_sparsity, 0.5, 0.01) << m.param->name;
  }
  EXPECT_NEAR(model_sparsity(*net), 0.5, 0.01);
}

TEST(MagnitudePrune, GlobalHitsOverallSparsity) {
  auto net = make_mlp({20, 30, 10}, 3);
  magnitude_prune(*net, MagnitudePruneConfig{.sparsity = 0.7, .scope = PruneScope::kGlobal});
  EXPECT_NEAR(model_sparsity(*net), 0.7, 0.01);
}

TEST(MagnitudePrune, GlobalUsesOneThreshold) {
  // Make layer 0 weights tiny and layer 1 large: global pruning should prune
  // (almost) all of layer 0 before touching layer 1.
  auto net = make_mlp({10, 10, 10}, 4);
  auto params = prunable_params(*net);
  ASSERT_EQ(params.size(), 2u);
  for (std::int64_t i = 0; i < params[0]->value.numel(); ++i) params[0]->value[i] *= 0.001f;
  for (std::int64_t i = 0; i < params[1]->value.numel(); ++i) params[1]->value[i] += 10.0f;
  magnitude_prune(*net, MagnitudePruneConfig{.sparsity = 0.5, .scope = PruneScope::kGlobal});
  EXPECT_EQ(count_zeros(params[0]->value), params[0]->value.numel());
  EXPECT_EQ(count_zeros(params[1]->value), 0);
}

TEST(MagnitudePrune, PrunesSmallestMagnitudes) {
  auto net = make_mlp({8, 8}, 5);
  auto params = prunable_params(*net);
  const Tensor before = params[0]->value;
  magnitude_prune(*net, MagnitudePruneConfig{.sparsity = 0.25});
  float max_pruned = 0.0f, min_kept = 1e9f;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    if (params[0]->value[i] == 0.0f) {
      max_pruned = std::max(max_pruned, std::fabs(before[i]));
    } else {
      min_kept = std::min(min_kept, std::fabs(before[i]));
    }
  }
  EXPECT_LE(max_pruned, min_kept);
}

TEST(MagnitudePrune, Validation) {
  auto net = make_mlp({4, 4}, 6);
  EXPECT_THROW(magnitude_prune(*net, MagnitudePruneConfig{.sparsity = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(magnitude_prune(*net, MagnitudePruneConfig{.sparsity = -0.1}),
               std::invalid_argument);
}

TEST(Admm, Validation) {
  auto net = make_mlp({4, 4}, 7);
  EXPECT_THROW(AdmmPruner(*net, AdmmConfig{.sparsity = 1.0}), std::invalid_argument);
  EXPECT_THROW(AdmmPruner(*net, AdmmConfig{.sparsity = 0.5, .rho = 0.0f}),
               std::invalid_argument);
}

TEST(Admm, RegularizerPullsWeightsTowardProjection) {
  // Pure ADMM dynamics without a data loss: repeatedly applying the proximal
  // gradient should shrink the primal residual ||W - Z||.
  auto net = make_mlp({16, 16}, 8);
  AdmmPruner pruner(*net, AdmmConfig{.sparsity = 0.5, .rho = 0.5f});
  auto params = prunable_params(*net);
  const double initial = pruner.primal_residual();
  for (int iter = 0; iter < 60; ++iter) {
    for (Param* p : params) p->grad.zero();
    pruner.regularize_grads();
    for (Param* p : params) {
      for (std::int64_t i = 0; i < p->value.numel(); ++i) {
        p->value[i] -= 0.5f * p->grad[i];
      }
    }
    if (iter % 10 == 9) pruner.dual_update();
  }
  EXPECT_LT(pruner.primal_residual(), 0.5 * initial);
}

TEST(Admm, FinalizeHitsExactPerLayerSparsity) {
  auto net = make_mlp({20, 30, 10}, 9);
  AdmmPruner pruner(*net, AdmmConfig{.sparsity = 0.7, .rho = 1e-2f});
  const auto masks = pruner.finalize();
  for (const PruneMask& m : masks) {
    const double s = static_cast<double>(m.pruned()) / static_cast<double>(m.mask.numel());
    EXPECT_NEAR(s, 0.7, 0.01);
  }
  EXPECT_NEAR(model_sparsity(*net), 0.7, 0.01);
}

TEST(Admm, RegularizeIsNoOpAfterFinalize) {
  auto net = make_mlp({8, 8}, 10);
  AdmmPruner pruner(*net, AdmmConfig{.sparsity = 0.5, .rho = 1.0f});
  pruner.finalize();
  auto params = prunable_params(*net);
  for (Param* p : params) p->grad.zero();
  pruner.regularize_grads();
  for (const Param* p : params) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

TEST(SparsityUtils, ReportMentionsEveryLayer) {
  auto net = make_mlp({4, 6, 2}, 11);
  const std::string report = sparsity_report(*net);
  EXPECT_NE(report.find("0.weight"), std::string::npos);
  EXPECT_NE(report.find("2.weight"), std::string::npos);
  EXPECT_NE(report.find("overall"), std::string::npos);
}

class SparsityLevelTest : public ::testing::TestWithParam<double> {};

TEST_P(SparsityLevelTest, GlobalPruneTracksTarget) {
  auto net = make_mlp({32, 32, 16}, 12);
  magnitude_prune(*net, MagnitudePruneConfig{.sparsity = GetParam()});
  EXPECT_NEAR(model_sparsity(*net), GetParam(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Levels, SparsityLevelTest, ::testing::Values(0.0, 0.2, 0.4, 0.7, 0.9));

}  // namespace
}  // namespace ftpim
