#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/common/check.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {
namespace {

TEST(Check, TrueConditionDoesNotThrow) {
  EXPECT_NO_THROW(FTPIM_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(FTPIM_CHECK(true, "message ignored on success %d", 7));
}

TEST(Check, FalseConditionThrowsContractViolation) {
  EXPECT_THROW(FTPIM_CHECK(2 < 1), ContractViolation);
}

TEST(Check, WhatContainsLocationExpressionAndMessage) {
  try {
    FTPIM_CHECK(1 == 2, "batch_size=%d is not %s", 3, "positive");
    FAIL() << "FTPIM_CHECK did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("FTPIM_CHECK(1 == 2)"), std::string::npos) << what;
    EXPECT_NE(what.find("batch_size=3 is not positive"), std::string::npos) << what;
  }
}

TEST(Check, CatchableAsLegacyExceptionTypes) {
  // Conversion contract: sites that migrated from `throw std::invalid_argument`
  // must keep satisfying callers catching the old types.
  EXPECT_THROW(FTPIM_CHECK(false), std::invalid_argument);
  EXPECT_THROW(FTPIM_CHECK(false), std::logic_error);
  EXPECT_THROW(FTPIM_CHECK(false), std::exception);
}

TEST(Check, ComparisonMacrosPassAndFail) {
  EXPECT_NO_THROW(FTPIM_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(FTPIM_CHECK_NE(4, 5));
  EXPECT_NO_THROW(FTPIM_CHECK_LT(4, 5));
  EXPECT_NO_THROW(FTPIM_CHECK_LE(5, 5));
  EXPECT_NO_THROW(FTPIM_CHECK_GT(5, 4));
  EXPECT_NO_THROW(FTPIM_CHECK_GE(5, 5));
  EXPECT_THROW(FTPIM_CHECK_EQ(4, 5), ContractViolation);
  EXPECT_THROW(FTPIM_CHECK_NE(4, 4), ContractViolation);
  EXPECT_THROW(FTPIM_CHECK_LT(5, 5), ContractViolation);
  EXPECT_THROW(FTPIM_CHECK_LE(6, 5), ContractViolation);
  EXPECT_THROW(FTPIM_CHECK_GT(5, 5), ContractViolation);
  EXPECT_THROW(FTPIM_CHECK_GE(4, 5), ContractViolation);
}

TEST(Check, ComparisonFailureReportsBothOperands) {
  try {
    const int rows = 3;
    const int cols = 4;
    FTPIM_CHECK_EQ(rows, cols, "matrix must be square");
    FAIL() << "FTPIM_CHECK_EQ did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("FTPIM_CHECK_EQ(rows, cols)"), std::string::npos) << what;
    EXPECT_NE(what.find("3 vs 4"), std::string::npos) << what;
    EXPECT_NE(what.find("matrix must be square"), std::string::npos) << what;
  }
}

TEST(Check, ComparisonOperandsEvaluatedExactlyOnce) {
  int calls = 0;
  const auto next = [&calls]() { return ++calls; };
  FTPIM_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(FTPIM_CHECK_GT(next(), 10), ContractViolation);
  EXPECT_EQ(calls, 2);
}

TEST(DCheck, FiringMatchesBuildConfiguration) {
  // kDChecksEnabled is set by the FTPIM_DCHECKS CMake option (AUTO = off in
  // Release). The same test binary asserts whichever behavior was built.
  if (kDChecksEnabled) {
    EXPECT_THROW(FTPIM_DCHECK(false), ContractViolation);
    EXPECT_THROW(FTPIM_DCHECK_EQ(1, 2), ContractViolation);
  } else {
    EXPECT_NO_THROW(FTPIM_DCHECK(false));
    EXPECT_NO_THROW(FTPIM_DCHECK_EQ(1, 2));
  }
  EXPECT_NO_THROW(FTPIM_DCHECK(true));
  EXPECT_NO_THROW(FTPIM_DCHECK_EQ(2, 2));
}

TEST(DCheck, DisabledOperandsAreNotEvaluated) {
  if (kDChecksEnabled) GTEST_SKIP() << "DCHECKs live in this build";
  int side_effects = 0;
  const auto bump = [&side_effects]() { return ++side_effects; };
  FTPIM_DCHECK(bump() > 0);
  FTPIM_DCHECK_EQ(bump(), 1);
  FTPIM_DCHECK_LT(bump(), bump());
  EXPECT_EQ(side_effects, 0) << "compiled-away DCHECK evaluated its operands";
}

TEST(CheckIntegration, TensorContractsThrowContractViolation) {
  EXPECT_THROW(Tensor({-1, 4}), ContractViolation);
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f}), ContractViolation);
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), ContractViolation);
  EXPECT_THROW(t.reshape_inplace({5}), ContractViolation);
  EXPECT_NO_THROW(t.reshape_inplace({3, 2}));
}

}  // namespace
}  // namespace ftpim
