// ABFT checksum columns on both crossbar engines (src/reram/abft.hpp):
//   * Abft           — digit-column sizing, report merging, the accumulator;
//   * AbftQuantized  — base-L digit checksums on the quantized engine: clean
//     MVMs verify silently, data outputs are bit-identical with ABFT on/off,
//     post-baseline faults are detected AND localized to their (rt, ct) tile,
//     scrubbing heals transient faults, rebaselining accepts existing ones,
//     and detection decisions are invariant across threads and kernel levels;
//   * AbftFloat      — the wide-cell checksum on the float engine under the
//     eps-scaled tolerance: no false positives clean, detection + scrub on a
//     defective die.
// Suite names start with Abft* so scripts/ci.sh's TSan leg picks them up.
#include "src/reram/abft.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/reram/crossbar_engine.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using kernels::KernelLevel;
using qinfer::QuantizedCrossbarEngine;
using qinfer::QuantizedEngineConfig;
using testing::random_tensor;

class LevelGuard {
 public:
  explicit LevelGuard(KernelLevel level) { kernels::set_kernel_level(level); }
  ~LevelGuard() { kernels::clear_kernel_level_override(); }
};

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

std::vector<KernelLevel> runnable_levels() {
  std::vector<KernelLevel> levels = {KernelLevel::kScalar};
  if (kernels::avx2_available()) levels.push_back(KernelLevel::kAvx2);
  return levels;
}

// ---------------------------------------------------------------------------
// Abft: module-level pieces

TEST(Abft, ChecksumDigitColumnsCoverTheWorstRowSum) {
  // Smallest d with levels^d > (levels-1) * data_cols.
  EXPECT_EQ(abft::checksum_digit_columns(16, 128), 3);  // 15*128=1920, 16^3=4096
  EXPECT_EQ(abft::checksum_digit_columns(16, 16), 2);   // 15*16=240, 16^2=256
  EXPECT_EQ(abft::checksum_digit_columns(256, 1), 1);   // 255, 256^1
  EXPECT_EQ(abft::checksum_digit_columns(2, 4), 3);     // 4, 2^3=8
  EXPECT_EQ(abft::checksum_digit_columns(4, 1000), 6);  // 3000, 4^6=4096
}

TEST(Abft, ReportMergeFoldsTilesAndTotals) {
  abft::TileFaultReport a;
  a.checks = 10;
  a.mismatches = 2;
  a.tiles = {{0, 1, 1}, {2, 0, 1}};
  abft::TileFaultReport b;
  b.checks = 5;
  b.mismatches = 3;
  b.tiles = {{0, 0, 1}, {0, 1, 2}};
  a.merge_from(b);
  EXPECT_EQ(a.checks, 15);
  EXPECT_EQ(a.mismatches, 5);
  EXPECT_FALSE(a.clean());
  ASSERT_EQ(a.flagged_tiles(), 3);
  // (row, col)-sorted; the shared tile (0,1) merged its counts.
  EXPECT_EQ(a.tiles[0].row_tile, 0);
  EXPECT_EQ(a.tiles[0].col_tile, 0);
  EXPECT_EQ(a.tiles[0].mismatches, 1);
  EXPECT_EQ(a.tiles[1].row_tile, 0);
  EXPECT_EQ(a.tiles[1].col_tile, 1);
  EXPECT_EQ(a.tiles[1].mismatches, 3);
  EXPECT_EQ(a.tiles[2].row_tile, 2);
  EXPECT_EQ(a.tiles[2].mismatches, 1);
}

TEST(Abft, AccumulatorTakeDrainsAndStaysArmed) {
  abft::AbftAccumulator acc;
  EXPECT_FALSE(acc.armed());
  acc.reset(2, 3);
  EXPECT_TRUE(acc.armed());
  // Two worker chunks over a 2x3 grid.
  const std::int64_t chunk1[6] = {0, 1, 0, 0, 0, 2};
  const std::int64_t chunk2[6] = {0, 1, 0, 0, 0, 0};
  acc.merge(chunk1, 4);
  acc.merge(chunk2, 4);
  abft::TileFaultReport rep = acc.take();
  EXPECT_EQ(rep.checks, 8);
  EXPECT_EQ(rep.mismatches, 4);
  ASSERT_EQ(rep.flagged_tiles(), 2);
  EXPECT_EQ(rep.tiles[0].row_tile, 0);
  EXPECT_EQ(rep.tiles[0].col_tile, 1);
  EXPECT_EQ(rep.tiles[0].mismatches, 2);
  EXPECT_EQ(rep.tiles[1].row_tile, 1);
  EXPECT_EQ(rep.tiles[1].col_tile, 2);
  EXPECT_EQ(rep.tiles[1].mismatches, 2);
  // take() drained the tallies but kept the grid armed.
  EXPECT_TRUE(acc.armed());
  EXPECT_TRUE(acc.take().clean());
}

// ---------------------------------------------------------------------------
// AbftQuantized

QuantizedEngineConfig small_qconfig(bool abft_on, int adc_bits = 0) {
  QuantizedEngineConfig cfg;
  cfg.tile_rows = 32;
  cfg.tile_cols = 16;  // outs_per_tile = 8; 2 checksum digit columns at L=16
  cfg.levels = 16;
  cfg.adc.bits = adc_bits;
  cfg.abft.enabled = abft_on;
  return cfg;
}

TEST(AbftQuantized, CleanEngineVerifiesSilently) {
  const Tensor w = random_tensor(Shape{20, 40}, 31);
  const Tensor x = random_tensor(Shape{6, 40}, 77);
  for (const int bits : {0, 8}) {
    QuantizedCrossbarEngine engine(w, small_qconfig(true, bits));
    ASSERT_TRUE(engine.abft_enabled());
    EXPECT_EQ(engine.checksum_columns(), 2);
    std::vector<float> y(6 * 20);
    engine.mvm_batch(x.data(), 6, y.data());
    const abft::TileFaultReport rep = engine.take_abft_report();
    // No check may misfire: the ideal-ADC tolerance is exactly zero, the ADC
    // tolerance is the rounding bound with clipped samples vetoed (so with an
    // ADC the check count can fall below samples x tiles, but not to zero).
    if (bits == 0) {
      EXPECT_EQ(rep.checks, 6 * engine.tile_count());
    } else {
      EXPECT_GT(rep.checks, 0);
      EXPECT_LE(rep.checks, 6 * engine.tile_count());
    }
    EXPECT_TRUE(rep.clean()) << "adc bits=" << bits << ": " << rep.mismatches;
  }
}

TEST(AbftQuantized, DataOutputsBitIdenticalWithAbftOnOrOff) {
  const Tensor w = random_tensor(Shape{20, 40}, 32);
  const Tensor x = random_tensor(Shape{5, 40}, 78);
  for (const int bits : {0, 8}) {
    QuantizedCrossbarEngine on(w, small_qconfig(true, bits));
    QuantizedCrossbarEngine off(w, small_qconfig(false, bits));
    std::vector<float> y_on(5 * 20), y_off(5 * 20);
    on.mvm_batch(x.data(), 5, y_on.data());
    off.mvm_batch(x.data(), 5, y_off.data());
    // The checksum columns ride in the same packed buffer but past the data
    // columns, so the data outputs must not move by a single bit.
    EXPECT_EQ(std::memcmp(y_on.data(), y_off.data(), y_on.size() * sizeof(float)), 0)
        << "adc bits=" << bits;
  }
}

TEST(AbftQuantized, DetectsAndLocalizesPostBaselineFault) {
  // Weight (o=13, i=37) sits in tile (rt = 37/32 = 1, ct = 13/8 = 1). Pin it
  // to zero so a stuck-on positive cell (level 15) is a guaranteed large
  // level-domain change, then fault exactly that cell AFTER construction.
  Tensor w = random_tensor(Shape{20, 40}, 33);
  const std::int64_t o = 13, i = 37, in = 40;
  w[o * in + i] = 0.0f;
  const Tensor x = random_tensor(Shape{4, 40}, 79);
  QuantizedCrossbarEngine engine(w, small_qconfig(true, /*adc_bits=*/0));
  const DefectMap map = DefectMap::from_faults(
      2 * 20 * 40, {{2 * (o * in + i), FaultType::kStuckOn}});
  engine.apply_defect_map(map);

  std::vector<float> y(4 * 20);
  engine.mvm_batch(x.data(), 4, y.data());
  const abft::TileFaultReport rep = engine.take_abft_report();
  EXPECT_FALSE(rep.clean());
  ASSERT_EQ(rep.flagged_tiles(), 1) << "exactly one tile must be named";
  EXPECT_EQ(rep.tiles[0].row_tile, 1);
  EXPECT_EQ(rep.tiles[0].col_tile, 1);
  // Every sample drives row 37 with a nonzero activation, so every check of
  // that tile trips.
  EXPECT_EQ(rep.tiles[0].mismatches, 4);
  EXPECT_EQ(rep.mismatches, 4);
}

TEST(AbftQuantized, AdcPathDetectsFaultsBeyondTheRoundingBound) {
  Tensor w = random_tensor(Shape{20, 40}, 34);
  const std::int64_t o = 3, i = 10, in = 40;
  w[o * in + i] = 0.0f;
  const Tensor x = random_tensor(Shape{8, 40}, 80);
  QuantizedCrossbarEngine engine(w, small_qconfig(true, /*adc_bits=*/8));
  const DefectMap map = DefectMap::from_faults(
      2 * 20 * 40, {{2 * (o * in + i), FaultType::kStuckOn}});
  engine.apply_defect_map(map);
  std::vector<float> y(8 * 20);
  engine.mvm_batch(x.data(), 8, y.data());
  const abft::TileFaultReport rep = engine.take_abft_report();
  // A full-swing stuck-on dwarfs the per-column ADC rounding tolerance.
  EXPECT_FALSE(rep.clean());
  ASSERT_GE(rep.flagged_tiles(), 1);
  EXPECT_EQ(rep.tiles[0].row_tile, 0);
  EXPECT_EQ(rep.tiles[0].col_tile, 0);
}

TEST(AbftQuantized, ScrubHealsTransientFaultsInPlace) {
  const Tensor w = random_tensor(Shape{20, 40}, 35);
  const Tensor x = random_tensor(Shape{4, 40}, 81);
  QuantizedCrossbarEngine engine(w, small_qconfig(true));
  std::vector<float> clean(4 * 20);
  engine.mvm_batch(x.data(), 4, clean.data());
  (void)engine.take_abft_report();

  // Transient upset: faults land, detection names the tiles...
  engine.apply_defect_map(DefectMap::from_faults(
      2 * 20 * 40, {{2 * (2 * 40 + 5), FaultType::kStuckOn},
                             {2 * (17 * 40 + 38) + 1, FaultType::kStuckOn}}));
  std::vector<float> y(4 * 20);
  engine.mvm_batch(x.data(), 4, y.data());
  abft::TileFaultReport rep = engine.take_abft_report();
  ASSERT_FALSE(rep.clean());
  EXPECT_EQ(rep.flagged_tiles(), 2);

  // ...and scrubbing exactly those tiles restores bit-exact clean outputs
  // without touching the rest of the die.
  EXPECT_EQ(engine.scrub(rep), 2);
  engine.mvm_batch(x.data(), 4, y.data());
  rep = engine.take_abft_report();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(std::memcmp(y.data(), clean.data(), y.size() * sizeof(float)), 0);
}

TEST(AbftQuantized, RebaselineAcceptsManufacturingFaults) {
  const Tensor w = random_tensor(Shape{20, 40}, 36);
  const Tensor x = random_tensor(Shape{4, 40}, 82);
  QuantizedCrossbarEngine engine(w, small_qconfig(true));
  engine.apply_defect_map(DefectMap::from_faults(
      2 * 20 * 40, {{2 * (6 * 40 + 20), FaultType::kStuckOn}}));
  std::vector<float> y(4 * 20);
  engine.mvm_batch(x.data(), 4, y.data());
  ASSERT_FALSE(engine.take_abft_report().clean());

  // Install-time acceptance: the same die, rebaselined, stops ringing — an
  // FT-trained network tolerates its manufacturing defects, so they must not
  // trigger repair thrash.
  engine.abft_rebaseline();
  engine.mvm_batch(x.data(), 4, y.data());
  EXPECT_TRUE(engine.take_abft_report().clean());
}

TEST(AbftQuantized, DeviceDefectsWithRebaselineStayClean) {
  // Heavy device damage, including faults in checksum cells: rebaselining
  // accepts the damage and silences tiles whose check column itself is stuck;
  // the combination must produce zero detections (and the silenced tiles are
  // visible through abft_tile_active).
  const Tensor w = random_tensor(Shape{24, 64}, 37);
  const Tensor x = random_tensor(Shape{4, 64}, 83);
  QuantizedCrossbarEngine engine(w, small_qconfig(true));
  engine.apply_device_defects(StuckAtFaultModel(0.3), /*master_seed=*/5, /*device_index=*/1);
  engine.abft_rebaseline();
  std::vector<float> y(4 * 24);
  engine.mvm_batch(x.data(), 4, y.data());
  const abft::TileFaultReport rep = engine.take_abft_report();
  EXPECT_TRUE(rep.clean()) << rep.mismatches << " mismatches";
  std::int64_t active = 0;
  for (std::int64_t rt = 0; rt < engine.row_tile_count(); ++rt) {
    for (std::int64_t ct = 0; ct < engine.col_tile_count(); ++ct) {
      active += engine.abft_tile_active(rt, ct) ? 1 : 0;
    }
  }
  // Silenced tiles are excluded from the check count.
  EXPECT_EQ(rep.checks, 4 * active);
}

TEST(AbftQuantized, DecisionsInvariantAcrossThreadsAndKernels) {
  Tensor w = random_tensor(Shape{36, 100}, 38);
  w[9 * 100 + 50] = 0.0f;
  const Tensor x = random_tensor(Shape{7, 100}, 84);
  const DefectMap map = DefectMap::from_faults(
      2 * 36 * 100, {{2 * (9 * 100 + 50), FaultType::kStuckOn}});

  std::vector<float> ref;
  abft::TileFaultReport ref_rep;
  bool first = true;
  for (const KernelLevel level : runnable_levels()) {
    for (const int threads : {1, 4}) {
      LevelGuard lg(level);
      ThreadGuard tg(threads);
      QuantizedCrossbarEngine engine(w, small_qconfig(true, /*adc_bits=*/8));
      engine.apply_defect_map(map);
      std::vector<float> y(7 * 36);
      engine.mvm_batch(x.data(), 7, y.data());
      const abft::TileFaultReport rep = engine.take_abft_report();
      if (first) {
        ref = y;
        ref_rep = rep;
        first = false;
        EXPECT_FALSE(rep.clean());
        continue;
      }
      EXPECT_EQ(std::memcmp(y.data(), ref.data(), y.size() * sizeof(float)), 0)
          << "level=" << static_cast<int>(level) << " threads=" << threads;
      EXPECT_EQ(rep.checks, ref_rep.checks);
      EXPECT_EQ(rep.mismatches, ref_rep.mismatches);
      ASSERT_EQ(rep.flagged_tiles(), ref_rep.flagged_tiles());
      for (std::size_t t = 0; t < rep.tiles.size(); ++t) {
        EXPECT_EQ(rep.tiles[t].row_tile, ref_rep.tiles[t].row_tile);
        EXPECT_EQ(rep.tiles[t].col_tile, ref_rep.tiles[t].col_tile);
        EXPECT_EQ(rep.tiles[t].mismatches, ref_rep.tiles[t].mismatches);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AbftFloat

CrossbarEngineConfig small_fconfig(bool abft_on) {
  CrossbarEngineConfig cfg;
  cfg.tile_rows = 32;
  cfg.tile_cols = 16;
  cfg.abft.enabled = abft_on;
  return cfg;
}

TEST(AbftFloat, CleanEngineVerifiesSilentlyAndOutputsUnchanged) {
  const Tensor w = random_tensor(Shape{20, 40}, 41);
  const Tensor x = random_tensor(Shape{6, 40}, 85);
  CrossbarEngine on(w, small_fconfig(true));
  CrossbarEngine off(w, small_fconfig(false));
  ASSERT_TRUE(on.abft_enabled());
  ASSERT_FALSE(off.abft_enabled());
  std::vector<float> y_on(6 * 20), y_off(6 * 20);
  on.mvm_batch(x.data(), 6, y_on.data());
  off.mvm_batch(x.data(), 6, y_off.data());
  EXPECT_EQ(std::memcmp(y_on.data(), y_off.data(), y_on.size() * sizeof(float)), 0);
  const abft::TileFaultReport rep = on.take_abft_report();
  EXPECT_EQ(rep.checks, 6 * on.tile_count());
  EXPECT_TRUE(rep.clean()) << rep.mismatches << " float false positives";
}

TEST(AbftFloat, DetectsDeviceFaultsAndScrubRestores) {
  const Tensor w = random_tensor(Shape{20, 40}, 42);
  const Tensor x = random_tensor(Shape{6, 40}, 86);
  CrossbarEngine engine(w, small_fconfig(true));
  std::vector<float> clean(6 * 20);
  engine.mvm_batch(x.data(), 6, clean.data());
  (void)engine.take_abft_report();

  engine.apply_device_defects(StuckAtFaultModel(0.05), /*master_seed=*/9, /*device_index=*/2);
  ASSERT_GT(engine.stuck_cells(), 0);
  std::vector<float> y(6 * 20);
  engine.mvm_batch(x.data(), 6, y.data());
  abft::TileFaultReport rep = engine.take_abft_report();
  ASSERT_FALSE(rep.clean());
  ASSERT_GE(rep.flagged_tiles(), 1);

  // Scrub every flagged tile: faults in those tiles clear and their outputs
  // return to the pre-fault values (no caller map to re-apply here, so a
  // full-die fault set may need scrubbing beyond the flagged tiles — scrub
  // everything to prove the re-programming path).
  abft::TileFaultReport all;
  for (std::int64_t rt = 0; rt < engine.row_tile_count(); ++rt) {
    for (std::int64_t ct = 0; ct < engine.col_tile_count(); ++ct) {
      all.tiles.push_back({rt, ct, 1});
    }
  }
  all.mismatches = 1;
  EXPECT_EQ(engine.scrub(all), engine.tile_count());
  EXPECT_EQ(engine.stuck_cells(), 0);
  engine.mvm_batch(x.data(), 6, y.data());
  rep = engine.take_abft_report();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(std::memcmp(y.data(), clean.data(), y.size() * sizeof(float)), 0);
}

TEST(AbftFloat, RebaselineAcceptsExistingDamage) {
  const Tensor w = random_tensor(Shape{20, 40}, 43);
  const Tensor x = random_tensor(Shape{6, 40}, 87);
  CrossbarEngine engine(w, small_fconfig(true));
  engine.apply_device_defects(StuckAtFaultModel(0.05), /*master_seed=*/9, /*device_index=*/3);
  std::vector<float> y(6 * 20);
  engine.mvm_batch(x.data(), 6, y.data());
  ASSERT_FALSE(engine.take_abft_report().clean());
  engine.abft_rebaseline();
  engine.mvm_batch(x.data(), 6, y.data());
  EXPECT_TRUE(engine.take_abft_report().clean());
}

}  // namespace
}  // namespace ftpim
