#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/data/augment.hpp"
#include "src/data/dataloader.hpp"
#include "src/data/synthetic.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

SynthVisionConfig tiny_config() {
  SynthVisionConfig cfg;
  cfg.num_classes = 4;
  cfg.image_size = 8;
  cfg.samples = 64;
  cfg.seed = 5;
  return cfg;
}

TEST(InMemoryDataset, AddAndGet) {
  InMemoryDataset data(Shape{1, 2, 2}, 3);
  data.add(Tensor(Shape{1, 2, 2}, 1.0f), 2);
  EXPECT_EQ(data.size(), 1);
  EXPECT_EQ(data.get(0).label, 2);
  EXPECT_THROW(data.get(1), std::out_of_range);
  EXPECT_THROW(data.add(Tensor(Shape{2, 2, 2}), 0), std::invalid_argument);
  EXPECT_THROW(data.add(Tensor(Shape{1, 2, 2}), 5), std::invalid_argument);
}

TEST(InMemoryDataset, NormalizeChannels) {
  InMemoryDataset data(Shape{2, 2, 2}, 2);
  data.add(testing::random_tensor(Shape{2, 2, 2}, 1, 4.0f), 0);
  data.add(testing::random_tensor(Shape{2, 2, 2}, 2, 4.0f), 1);
  data.normalize_channels();
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < 2; ++i) {
      const Sample s = data.get(i);
      for (std::int64_t p = 0; p < 4; ++p) {
        const float v = s.image.data()[c * 4 + p];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    EXPECT_NEAR(sum / 8.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 8.0, 1.0, 1e-3);
  }
}

TEST(SynthVision, DeterministicForSeedAndStream) {
  const auto a = make_synthvision(tiny_config(), 1);
  const auto b = make_synthvision(tiny_config(), 1);
  ASSERT_EQ(a->size(), b->size());
  for (std::int64_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->get(i).label, b->get(i).label);
    EXPECT_TRUE(a->get(i).image.allclose(b->get(i).image, 0.0f, 0.0f));
  }
}

TEST(SynthVision, DifferentStreamsDiffer) {
  const auto a = make_synthvision(tiny_config(), 1);
  const auto b = make_synthvision(tiny_config(), 2);
  bool any_diff = false;
  for (std::int64_t i = 0; i < a->size() && !any_diff; ++i) {
    if (!a->get(i).image.allclose(b->get(i).image)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthVision, CoversAllClasses) {
  SynthVisionConfig cfg = tiny_config();
  cfg.samples = 400;
  const auto data = make_synthvision(cfg, 3);
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < data->size(); ++i) seen.insert(data->get(i).label);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(SynthVision, ClassesAreStatisticallyDistinct) {
  // Per-class mean images must differ: the generator encodes the label.
  SynthVisionConfig cfg = tiny_config();
  cfg.samples = 512;
  cfg.noise_std = 0.2f;
  const auto data = make_synthvision(cfg, 4);
  std::vector<Tensor> means(4, Tensor(Shape{3, 8, 8}));
  std::vector<int> counts(4, 0);
  for (std::int64_t i = 0; i < data->size(); ++i) {
    const Sample s = data->get(i);
    for (std::int64_t j = 0; j < s.image.numel(); ++j) {
      means[static_cast<std::size_t>(s.label)][j] += s.image[j];
    }
    counts[static_cast<std::size_t>(s.label)]++;
  }
  for (int c = 0; c < 4; ++c) {
    for (std::int64_t j = 0; j < means[0].numel(); ++j) {
      means[static_cast<std::size_t>(c)][j] /= static_cast<float>(std::max(1, counts[c]));
    }
  }
  double min_dist = 1e9;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      double d = 0.0;
      for (std::int64_t j = 0; j < means[0].numel(); ++j) {
        const double diff = means[a][j] - means[b][j];
        d += diff * diff;
      }
      min_dist = std::min(min_dist, std::sqrt(d));
    }
  }
  EXPECT_GT(min_dist, 0.5);
}

TEST(SynthVision, ConfigValidation) {
  SynthVisionConfig cfg = tiny_config();
  cfg.num_classes = 1;
  EXPECT_THROW(make_synthvision(cfg, 1), std::invalid_argument);
}

TEST(Augment, HflipIsInvolution) {
  const Tensor img = testing::random_tensor(Shape{3, 5, 6}, 10);
  EXPECT_TRUE(hflip_image(hflip_image(img)).allclose(img, 0.0f, 0.0f));
}

TEST(Augment, HflipReversesColumns) {
  Tensor img(Shape{1, 1, 3}, std::vector<float>{1, 2, 3});
  const Tensor flipped = hflip_image(img);
  EXPECT_FLOAT_EQ(flipped[0], 3.0f);
  EXPECT_FLOAT_EQ(flipped[2], 1.0f);
}

TEST(Augment, CenterPadCropIsIdentity) {
  const Tensor img = testing::random_tensor(Shape{2, 4, 4}, 11);
  EXPECT_TRUE(pad_crop_image(img, 2, 2, 2).allclose(img, 0.0f, 0.0f));
}

TEST(Augment, CornerCropShiftsAndZeroPads) {
  Tensor img(Shape{1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  // dy=dx=0 with pad 1 shifts content down-right; top-left becomes padding.
  const Tensor out = pad_crop_image(img, 1, 0, 0);
  EXPECT_FLOAT_EQ(out.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(out.data()[3], 1.0f);  // original (0,0) now at (1,1)
  EXPECT_THROW(pad_crop_image(img, 1, 3, 0), std::invalid_argument);
}

TEST(Augment, DisabledIsPassThrough) {
  Rng rng(12);
  const Tensor img = testing::random_tensor(Shape{3, 4, 4}, 13);
  const AugmentConfig off{.crop_pad = 2, .hflip = true, .enabled = false};
  EXPECT_TRUE(augment_image(img, off, rng).allclose(img, 0.0f, 0.0f));
}

TEST(DataLoader, CoversAllSamplesOnce) {
  const auto data = make_synthvision(tiny_config(), 5);
  DataLoader loader(*data, 10, /*shuffle=*/true, /*seed=*/7);
  loader.start_epoch(0);
  std::int64_t seen = 0;
  for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b) seen += loader.batch(b).size();
  EXPECT_EQ(seen, data->size());
}

TEST(DataLoader, ShuffleChangesOrderAcrossEpochs) {
  const auto data = make_synthvision(tiny_config(), 6);
  DataLoader loader(*data, 64, /*shuffle=*/true, /*seed=*/8);
  loader.start_epoch(0);
  const Batch b0 = loader.batch(0);
  loader.start_epoch(1);
  const Batch b1 = loader.batch(0);
  EXPECT_NE(b0.labels, b1.labels);  // same multiset, different order (w.h.p.)
}

TEST(DataLoader, NoShuffleIsStable) {
  const auto data = make_synthvision(tiny_config(), 7);
  DataLoader loader(*data, 16, /*shuffle=*/false, /*seed=*/9);
  loader.start_epoch(0);
  const Batch a = loader.batch(1);
  loader.start_epoch(5);
  const Batch b = loader.batch(1);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_TRUE(a.images.allclose(b.images, 0.0f, 0.0f));
}

TEST(DataLoader, FullBatchMatchesDataset) {
  const auto data = make_synthvision(tiny_config(), 8);
  const Batch full = DataLoader::full_batch(*data);
  EXPECT_EQ(full.size(), data->size());
  EXPECT_EQ(full.labels[3], data->get(3).label);
}

TEST(DataLoader, PartialLastBatch) {
  const auto data = make_synthvision(tiny_config(), 9);  // 64 samples
  DataLoader loader(*data, 48, /*shuffle=*/false, /*seed=*/1);
  EXPECT_EQ(loader.batches_per_epoch(), 2);
  EXPECT_EQ(loader.batch(1).size(), 16);
  EXPECT_THROW(loader.batch(2), std::out_of_range);
}

}  // namespace
}  // namespace ftpim
