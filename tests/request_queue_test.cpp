// Bounded MPMC RequestQueue: capacity, block/reject backpressure, close
// semantics, and a TSan-visible multi-producer/multi-consumer stress run.
// Suite names start with Serve* so scripts/ci.sh's TSan leg picks them up.
#include "src/serve/request_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/check.hpp"

namespace ftpim::serve {
namespace {

Request make_request(std::uint64_t id) {
  Request r;
  r.input = Tensor(Shape{1});
  r.input[0] = static_cast<float>(id);
  r.id = id;
  return r;
}

TEST(ServeQueue, RejectsZeroCapacity) {
  EXPECT_THROW(RequestQueue q(0), ContractViolation);
}

TEST(ServeQueue, TryPushFailsWhenFullAndRequestSurvives) {
  RequestQueue q(2);
  EXPECT_TRUE(q.try_push(make_request(0)));
  EXPECT_TRUE(q.try_push(make_request(1)));
  Request third = make_request(2);
  EXPECT_FALSE(q.try_push(std::move(third)));
  // A failed push must not consume the request (the server rejects it with
  // an exception through the still-live promise).
  EXPECT_EQ(third.id, 2u);
  third.promise.set_value(InferenceResult{});

  Request out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.id, 0u);  // FIFO
  EXPECT_TRUE(q.try_push(make_request(3)));
  EXPECT_EQ(q.size(), std::size_t{2});
}

TEST(ServeQueue, FifoOrder) {
  RequestQueue q(8);
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(q.try_push(make_request(i)));
  for (std::uint64_t i = 0; i < 8; ++i) {
    Request out;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.id, i);
  }
  EXPECT_EQ(q.size(), std::size_t{0});
}

TEST(ServeQueue, BlockingPushUnblocksOnPop) {
  RequestQueue q(1);
  ASSERT_TRUE(q.try_push(make_request(0)));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(make_request(1)));
    pushed.store(true);
  });
  Request out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.id, 0u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.id, 1u);
}

TEST(ServeQueue, CloseDrainsThenFails) {
  RequestQueue q(4);
  ASSERT_TRUE(q.try_push(make_request(0)));
  ASSERT_TRUE(q.try_push(make_request(1)));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(make_request(2)));
  Request blocked = make_request(3);
  EXPECT_FALSE(q.push(std::move(blocked)));
  blocked.promise.set_value(InferenceResult{});

  Request out;
  EXPECT_TRUE(q.pop(out));   // drains the two accepted items first
  EXPECT_TRUE(q.pop(out));
  EXPECT_FALSE(q.pop(out));  // then reports shutdown
  EXPECT_EQ(q.pop_for(out, 1'000'000), PopResult::kClosed);
}

TEST(ServeQueue, CloseWakesBlockedWaiters) {
  RequestQueue q(1);
  ASSERT_TRUE(q.try_push(make_request(0)));
  std::thread blocked_producer([&] { EXPECT_FALSE(q.push(make_request(1))); });
  RequestQueue empty_q(1);
  std::thread blocked_consumer([&] {
    Request out;
    EXPECT_FALSE(empty_q.pop(out));
  });
  q.close();
  empty_q.close();
  blocked_producer.join();
  blocked_consumer.join();
}

TEST(ServeQueue, PopForTimesOutOnEmpty) {
  RequestQueue q(1);
  Request out;
  EXPECT_EQ(q.pop_for(out, 1'000'000), PopResult::kTimeout);  // 1ms
}

TEST(ServeQueue, PopForDistinguishesTimeoutFromClosed) {
  // The same empty-handed return means two different things to a worker:
  // kTimeout = keep serving (linger expired), kClosed = shut down. The enum
  // must tell them apart in every combination.
  RequestQueue q(2);
  Request out;
  EXPECT_EQ(q.pop_for(out, 0), PopResult::kTimeout);  // open, empty, no wait
  ASSERT_TRUE(q.try_push(make_request(7)));
  EXPECT_EQ(q.pop_for(out, 0), PopResult::kItem);  // item available: no wait needed
  EXPECT_EQ(out.id, 7u);
  ASSERT_TRUE(q.try_push(make_request(8)));
  q.close();
  // Closed but not drained: accepted items still come out.
  EXPECT_EQ(q.pop_for(out, 1'000'000), PopResult::kItem);
  EXPECT_EQ(out.id, 8u);
  // Closed and drained: immediately kClosed, no timeout wait.
  EXPECT_EQ(q.pop_for(out, 1'000'000), PopResult::kClosed);
}

TEST(ServeQueue, PopForReturnsItemPushedDuringWait) {
  RequestQueue q(1);
  std::thread producer([&] { EXPECT_TRUE(q.push(make_request(3))); });
  Request out;
  // Generous bound: the producer races the wait, and a wake-up on push must
  // yield kItem, never a spurious kTimeout.
  EXPECT_EQ(q.pop_for(out, 5'000'000'000), PopResult::kItem);
  EXPECT_EQ(out.id, 3u);
  producer.join();
}

TEST(ServeQueue, AnswerHelpersReportPoisonedPromises) {
  Request r = make_request(1);
  auto fut = r.promise.get_future();
  EXPECT_TRUE(answer(r, InferenceResult{}));
  // Second settle attempts hit an already-satisfied promise: reported as
  // false, never thrown.
  EXPECT_FALSE(answer(r, InferenceResult{}));
  EXPECT_FALSE(answer_error(r, std::make_exception_ptr(std::runtime_error("x"))));
  EXPECT_EQ(fut.get().predicted, 0);

  Request e = make_request(2);
  auto efut = e.promise.get_future();
  EXPECT_TRUE(answer_error(e, std::make_exception_ptr(std::runtime_error("boom"))));
  EXPECT_FALSE(answer(e, InferenceResult{}));
  EXPECT_THROW(efut.get(), std::runtime_error);
}

TEST(ServeQueue, RequestExcludes) {
  Request r = make_request(0);
  EXPECT_FALSE(r.excludes(0));
  r.excluded.push_back(2);
  r.excluded.push_back(0);
  EXPECT_TRUE(r.excludes(0));
  EXPECT_TRUE(r.excludes(2));
  EXPECT_FALSE(r.excludes(1));
  EXPECT_EQ(r.deadline_ns, kNoDeadlineNs);  // default: no deadline
  EXPECT_EQ(r.attempts_left, 1);
}

TEST(ServeQueue, MpmcStressAccountsForEveryItem) {
  // 4 producers x 4 consumers over a tiny queue: every pushed id is popped
  // exactly once. Runs under TSan via scripts/ci.sh (thread leg).
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 200;
  RequestQueue q(8);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);
  std::atomic<std::int64_t> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      Request out;
      while (q.pop(out)) {
        seen[static_cast<std::size_t>(out.id)].fetch_add(1);
        out.promise.set_value(InferenceResult{});
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(make_request(static_cast<std::uint64_t>(p) * kPerProducer + i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped.load(), static_cast<std::int64_t>(kProducers * kPerProducer));
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i << " popped wrong number of times";
  }
}

}  // namespace
}  // namespace ftpim::serve
