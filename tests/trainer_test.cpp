#include <gtest/gtest.h>

#include <memory>

#include "src/core/evaluator.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/mlp.hpp"
#include "src/models/small_cnn.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

std::unique_ptr<InMemoryDataset> tiny_vision(std::uint64_t stream, int samples = 96) {
  SynthVisionConfig cfg;
  cfg.num_classes = 3;
  cfg.image_size = 8;
  cfg.samples = samples;
  cfg.seed = 11;
  cfg.noise_std = 0.3f;
  return make_synthvision(cfg, stream);
}

TrainConfig fast_config(int epochs) {
  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.sgd.lr = 0.05f;
  tc.augment.enabled = false;
  tc.seed = 5;
  return tc;
}

TEST(Trainer, LossDecreasesOnLearnableTask) {
  const auto train = tiny_vision(1);
  auto net = make_small_cnn(
      SmallCnnConfig{.image_size = 8, .width = 4, .classes = 3, .seed = 1});
  Trainer trainer(*net, *train, fast_config(6));
  const TrainStats stats = trainer.run();
  ASSERT_EQ(stats.epoch_losses.size(), 6u);
  EXPECT_LT(stats.epoch_losses.back(), 0.8f * stats.epoch_losses.front());
}

TEST(Trainer, TrainedModelBeatsChance) {
  const auto train = tiny_vision(2, 192);
  const auto test = tiny_vision(3, 96);
  auto net = make_small_cnn(
      SmallCnnConfig{.image_size = 8, .width = 4, .classes = 3, .seed = 2});
  Trainer(*net, *train, fast_config(8)).run();
  EXPECT_GT(evaluate_accuracy(*net, *test), 0.55);  // chance = 0.33
}

TEST(Trainer, HooksFireInOrderAndCount) {
  const auto train = tiny_vision(4);
  auto net = make_mlp({192, 16, 3}, 3);
  // MLP needs flat input; use the small CNN instead for 4-D data. Build a
  // flat dataset via full-batch reshaping is overkill — use the CNN.
  auto cnn = make_small_cnn(
      SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 4});
  TrainConfig tc = fast_config(2);
  Trainer trainer(*cnn, *train, tc);
  int before = 0, after_bwd = 0, after_step = 0, after_epoch = 0;
  int order_violations = 0;
  TrainHooks hooks;
  hooks.before_forward = [&](int, std::int64_t) {
    if (before != after_bwd) ++order_violations;
    ++before;
  };
  hooks.after_backward = [&](int, std::int64_t) { ++after_bwd; };
  hooks.after_step = [&](int, std::int64_t) { ++after_step; };
  hooks.after_epoch = [&](int, float) { ++after_epoch; };
  trainer.set_hooks(hooks);
  trainer.run();
  const int expected_iters = 2 * 3;  // 96/32 batches * 2 epochs
  EXPECT_EQ(before, expected_iters);
  EXPECT_EQ(after_bwd, expected_iters);
  EXPECT_EQ(after_step, expected_iters);
  EXPECT_EQ(after_epoch, 2);
  EXPECT_EQ(order_violations, 0);
}

TEST(Trainer, CosineLrFollowsSchedule) {
  const auto train = tiny_vision(5, 32);
  auto cnn = make_small_cnn(
      SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 6});
  TrainConfig tc = fast_config(3);
  tc.sgd.lr = 0.1f;
  Trainer trainer(*cnn, *train, tc);
  std::vector<float> lrs;
  TrainHooks hooks;
  hooks.after_epoch = [&](int, float) { lrs.push_back(trainer.optimizer().lr()); };
  trainer.set_hooks(hooks);
  trainer.run();
  ASSERT_EQ(lrs.size(), 3u);
  EXPECT_FLOAT_EQ(lrs[0], 0.1f);   // epoch 0 of 3
  EXPECT_GT(lrs[0], lrs[1]);
  EXPECT_GT(lrs[1], lrs[2]);
}

TEST(Trainer, EpochOffsetSharesScheduleAcrossStages) {
  const auto train = tiny_vision(6, 32);
  auto cnn = make_small_cnn(
      SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 7});
  TrainConfig tc = fast_config(1);
  tc.sgd.lr = 0.1f;
  Trainer trainer(*cnn, *train, tc);
  // Stage 2 of 4 with global schedule of 4 epochs: LR must be below base.
  trainer.run(/*epoch_offset=*/2, /*total_epochs=*/4);
  EXPECT_LT(trainer.optimizer().lr(), 0.06f);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto train = tiny_vision(7);
  auto a = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 8});
  auto b = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 8});
  Trainer(*a, *train, fast_config(2)).run();
  Trainer(*b, *train, fast_config(2)).run();
  const StateDict sa = state_dict_of(*a);
  const StateDict sb = state_dict_of(*b);
  for (const auto& [name, t] : sa) {
    EXPECT_TRUE(t.allclose(sb.at(name), 1e-6f, 1e-6f)) << name;
  }
}

TEST(Evaluator, PerfectAndZeroAccuracy) {
  // A model with a huge bias toward the true class scores 1.0.
  const auto data = tiny_vision(8, 48);
  auto cnn = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 9});
  const double acc = evaluate_accuracy(*cnn, *data);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Evaluator, DefectEvalRestoresWeightsAndIsDeterministic) {
  const auto data = tiny_vision(9, 48);
  auto cnn = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 10});
  const StateDict before = state_dict_of(*cnn);
  DefectEvalConfig cfg;
  cfg.num_runs = 4;
  cfg.seed = 77;
  const DefectEvalResult r1 = evaluate_under_defects(*cnn, *data, 0.05, cfg);
  const StateDict after = state_dict_of(*cnn);
  for (const auto& [name, t] : before) {
    EXPECT_TRUE(t.allclose(after.at(name), 0.0f, 0.0f)) << name;
  }
  const DefectEvalResult r2 = evaluate_under_defects(*cnn, *data, 0.05, cfg);
  EXPECT_EQ(r1.run_accs, r2.run_accs);
  EXPECT_EQ(r1.run_accs.size(), 4u);
  EXPECT_LE(r1.min_acc, r1.mean_acc);
  EXPECT_GE(r1.max_acc, r1.mean_acc);
}

TEST(Evaluator, ZeroRateMatchesCleanAccuracy) {
  const auto data = tiny_vision(10, 48);
  auto cnn = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 11});
  DefectEvalConfig cfg;
  cfg.num_runs = 2;
  const double clean = evaluate_accuracy(*cnn, *data);
  const DefectEvalResult r = evaluate_under_defects(*cnn, *data, 0.0, cfg);
  EXPECT_DOUBLE_EQ(r.mean_acc, clean);
  EXPECT_DOUBLE_EQ(r.std_acc, 0.0);
}

}  // namespace
}  // namespace ftpim
