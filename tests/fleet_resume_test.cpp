// Kill-and-resume regression for the fleet simulator: a sweep interrupted at
// any checkpoint boundary and resumed — at the SAME or a DIFFERENT
// FTPIM_THREADS setting — must reproduce the uninterrupted run's timeline
// bit-exactly. Also exercises the refusal paths: config/seed mismatch and
// resume-after-step. Suite name FleetResume* rides scripts/ci.sh's crash
// subset alongside FtResume.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/parallel.hpp"
#include "src/fleet/fleet_simulator.hpp"
#include "src/models/mlp.hpp"

namespace ftpim::fleet {
namespace {

std::string scratch_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ftpim_fleet_resume_test" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

FleetConfig resume_fleet() {
  FleetConfig cfg;
  cfg.num_devices = 10;
  cfg.ticks = 6;
  cfg.sample_shape = {16};
  cfg.probe_samples = 12;
  cfg.accuracy_floor = 0.55;
  cfg.interval_batches = 16;
  cfg.p_transient_per_tick = 0.004;  // transient replay must round-trip too
  cfg.seed = 77;
  cfg.profile.p_sa_min = 0.01;
  cfg.profile.p_sa_max = 0.06;
  cfg.profile.aging_min = 0.001;
  cfg.profile.aging_max = 0.008;
  cfg.profile.traffic_min = 8;
  cfg.profile.traffic_max = 24;
  cfg.profile.quantized_fraction = 0.8;  // mixed fleet: float devices resume too
  cfg.policy = RepairPolicyKind::kDetectionDrivenScrub;  // scrubs AND repairs
  cfg.policy_config.refresh_every_ticks = 2;
  cfg.policy_config.max_scrub_retries = 1;
  cfg.quantized.adc.bits = 0;
  cfg.checkpoint_every_ticks = 2;
  return cfg;
}

std::unique_ptr<Module> fleet_model() { return make_mlp({16, 24, 4}, 7); }

std::vector<std::uint8_t> timeline_bytes(const FleetSimulator& sim) {
  ByteWriter out;
  for (const TickAggregate& agg : sim.timeline()) agg.encode(out);
  return out.take();
}

/// Uninterrupted-sweep artifacts the resumed runs must reproduce.
struct Baseline {
  std::vector<std::uint8_t> timeline;
  std::vector<std::int64_t> deaths;
  FleetSummary summary;
};

Baseline run_uninterrupted(const Module& model, const FleetConfig& cfg) {
  FleetSimulator sim(model, cfg);
  Baseline base;
  base.summary = sim.run();
  base.timeline = timeline_bytes(sim);
  base.deaths = sim.death_ticks();
  return base;
}

/// Steps a checkpointing sweep to tick `kill_at`, abandons it (destructor ==
/// crash: the checkpoint file is all that survives), then resumes a fresh
/// simulator from that file and runs it to the horizon.
void kill_and_resume(const Module& model, const FleetConfig& cfg, std::int64_t kill_at,
                     const Baseline& base) {
  {
    FleetSimulator doomed(model, cfg);
    for (std::int64_t t = 0; t < kill_at; ++t) doomed.step();
    ASSERT_TRUE(std::filesystem::exists(cfg.checkpoint_path))
        << "no checkpoint on disk at kill tick " << kill_at;
  }

  FleetSimulator resumed(model, cfg);
  resumed.resume(cfg.checkpoint_path);
  EXPECT_EQ(resumed.next_tick(), kill_at) << "cursor must land on the kill tick";
  const FleetSummary summary = resumed.run();

  EXPECT_EQ(timeline_bytes(resumed), base.timeline) << "killed at tick " << kill_at;
  EXPECT_EQ(resumed.death_ticks(), base.deaths);
  EXPECT_EQ(summary.survivors, base.summary.survivors);
  EXPECT_EQ(summary.repairs, base.summary.repairs);
  EXPECT_EQ(summary.scrubs, base.summary.scrubs);
  EXPECT_EQ(summary.detections, base.summary.detections);
  EXPECT_DOUBLE_EQ(summary.final_acc_p50, base.summary.final_acc_p50);
}

TEST(FleetResume, KillAtEveryBoundaryReproducesTheSweepBitExactly) {
  const auto model = fleet_model();
  FleetConfig cfg = resume_fleet();
  cfg.checkpoint_path = scratch_dir("boundaries") + "/sweep.ftck";

  FleetConfig clean = cfg;
  clean.checkpoint_path.clear();  // baseline never touches the disk
  const Baseline base = run_uninterrupted(*model, clean);
  EXPECT_LT(base.summary.survival_fraction, 1.0) << "sweep must exercise deaths";
  EXPECT_GT(base.summary.scrubs + base.summary.repairs, 0) << "and maintenance";

  // Every cadence boundary, including the horizon itself (resume-then-run
  // with nothing left to simulate must still hand back the same summary).
  for (std::int64_t kill_at : {std::int64_t{2}, std::int64_t{4}, std::int64_t{6}}) {
    kill_and_resume(*model, cfg, kill_at, base);
  }
}

TEST(FleetResume, ResumeIsBitExactAcrossThreadCounts) {
  const auto model = fleet_model();
  FleetConfig cfg = resume_fleet();
  cfg.checkpoint_path = scratch_dir("threads") + "/sweep.ftck";

  FleetConfig clean = cfg;
  clean.checkpoint_path.clear();
  set_num_threads(1);
  const Baseline base = run_uninterrupted(*model, clean);

  // Checkpoint written single-threaded, resumed at 4 threads — and the other
  // way around. Both must reproduce the single-threaded baseline bit-exactly.
  set_num_threads(1);
  {
    FleetSimulator doomed(*model, cfg);
    doomed.step();
    doomed.step();
  }
  set_num_threads(4);
  {
    FleetSimulator resumed(*model, cfg);
    resumed.resume(cfg.checkpoint_path);
    resumed.run();
    EXPECT_EQ(timeline_bytes(resumed), base.timeline) << "1-thread ckpt, 4-thread resume";
    EXPECT_EQ(resumed.death_ticks(), base.deaths);
  }

  // 4-thread sweep overwrites the checkpoint at tick 4; resume serial.
  {
    FleetSimulator doomed(*model, cfg);
    for (int t = 0; t < 4; ++t) doomed.step();
  }
  set_num_threads(1);
  {
    FleetSimulator resumed(*model, cfg);
    resumed.resume(cfg.checkpoint_path);
    EXPECT_EQ(resumed.next_tick(), 4);
    resumed.run();
    EXPECT_EQ(timeline_bytes(resumed), base.timeline) << "4-thread ckpt, 1-thread resume";
  }
  set_num_threads(0);
}

TEST(FleetResume, MismatchedConfigOrSeedIsRefused) {
  const auto model = fleet_model();
  FleetConfig cfg = resume_fleet();
  cfg.checkpoint_path = scratch_dir("mismatch") + "/sweep.ftck";
  {
    FleetSimulator doomed(*model, cfg);
    doomed.step();
    doomed.step();
  }

  FleetConfig other_seed = cfg;
  other_seed.seed += 1;
  FleetSimulator wrong_seed(*model, other_seed);
  try {
    wrong_seed.resume(cfg.checkpoint_path);
    FAIL() << "seed mismatch must not resume";
  } catch (const CheckpointError& err) {
    EXPECT_EQ(err.kind(), CheckpointErrorKind::kStateMismatch);
    EXPECT_EQ(err.chunk(), "FLCF");
  }

  FleetConfig other_policy = cfg;
  other_policy.policy = RepairPolicyKind::kNeverRepair;
  FleetSimulator wrong_policy(*model, other_policy);
  EXPECT_THROW(wrong_policy.resume(cfg.checkpoint_path), CheckpointError);

  // checkpoint_path itself is NOT part of the canonical echo: resuming the
  // same sweep into a different output path is the normal sharded workflow.
  FleetConfig other_path = cfg;
  other_path.checkpoint_path = scratch_dir("mismatch-out") + "/other.ftck";
  FleetSimulator repathed(*model, other_path);
  EXPECT_NO_THROW(repathed.resume(cfg.checkpoint_path));
}

TEST(FleetResume, ResumeAfterSteppingIsAContractViolation) {
  const auto model = fleet_model();
  FleetConfig cfg = resume_fleet();
  cfg.checkpoint_path = scratch_dir("late") + "/sweep.ftck";
  {
    FleetSimulator doomed(*model, cfg);
    doomed.step();
    doomed.step();
  }
  FleetSimulator late(*model, cfg);
  late.step();
  EXPECT_THROW(late.resume(cfg.checkpoint_path), ContractViolation);
}

TEST(FleetResume, TruncatedCheckpointIsRefused) {
  const auto model = fleet_model();
  FleetConfig cfg = resume_fleet();
  const std::string dir = scratch_dir("truncated");
  cfg.checkpoint_path = dir + "/sweep.ftck";
  {
    FleetSimulator doomed(*model, cfg);
    doomed.step();
    doomed.step();
  }
  // Chop the tail off the file; the CRC32C framing must catch it.
  std::vector<char> bytes;
  {
    std::ifstream in(cfg.checkpoint_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), std::size_t{64});
  const std::string cut = dir + "/cut.ftck";
  {
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 48));
  }
  FleetSimulator victim(*model, cfg);
  EXPECT_THROW(victim.resume(cut), CheckpointError);
}

}  // namespace
}  // namespace ftpim::fleet
