// Property tests for the packed kernel backend (src/tensor/kernels/):
//   * packed GEMM vs a naive triple loop, per dispatch level, across seeded
//     shapes including ragged edge tiles and all transpose variants;
//   * bit-identity of GEMM and Conv2d forward/backward across FTPIM_THREADS
//     at a fixed dispatch level (the repo's determinism contract);
//   * scalar/AVX2 agreement within float tolerance;
//   * the FTPIM_KERNEL dispatch contract (parse, override, clamping).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/nn/conv2d.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/im2col.hpp"
#include "src/tensor/kernels/conv_kernels.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/tensor.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using kernels::KernelLevel;
using testing::random_tensor;

/// Pins the dispatch level for a scope; restores the ambient default on exit.
class LevelGuard {
 public:
  explicit LevelGuard(KernelLevel level) { kernels::set_kernel_level(level); }
  ~LevelGuard() { kernels::clear_kernel_level_override(); }
};

/// Pins the worker count for a scope.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

std::vector<KernelLevel> runnable_levels() {
  std::vector<KernelLevel> levels = {KernelLevel::kScalar};
  if (kernels::avx2_available()) levels.push_back(KernelLevel::kAvx2);
  return levels;
}

void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
                const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

void naive_gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
                   const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a[p * m + i]) * b[p * n + j];
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

void naive_gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
                   const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a[i * k + p]) * b[j * k + p];
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

struct GemmDims {
  std::int64_t m, n, k;
};

// Shapes chosen to cross every blocking boundary: exact micro-tiles (6x16),
// one-off ragged edges, sub-tile problems, K spanning multiple kKC=256 slabs,
// and M spanning multiple kMC=96 blocks / worker panels.
const GemmDims kShapes[] = {
    {1, 1, 1},    {6, 16, 16},  {7, 17, 31},   {5, 15, 64},   {12, 32, 256},
    {13, 48, 257}, {33, 65, 129}, {97, 40, 300}, {100, 1, 50},  {1, 100, 50},
    {64, 300, 17}, {200, 96, 64},
};

class GemmKernelParamTest : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmKernelParamTest, MatchesNaiveAtEveryLevel) {
  const auto [m, n, k] = GetParam();
  const Tensor a = random_tensor(Shape{m, k}, 21);
  const Tensor b = random_tensor(Shape{k, n}, 22);
  const Tensor c0 = random_tensor(Shape{m, n}, 23);

  Tensor ref = c0;
  naive_gemm(m, n, k, 1.5f, a.data(), b.data(), 0.5f, ref.data());
  for (const KernelLevel level : runnable_levels()) {
    LevelGuard guard(level);
    Tensor c = c0;
    gemm(m, n, k, 1.5f, a.data(), b.data(), 0.5f, c.data());
    EXPECT_TRUE(c.allclose(ref, 1e-3f, 1e-3f))
        << "level=" << kernels::kernel_level_name(level) << " m=" << m << " n=" << n
        << " k=" << k;
  }
}

TEST_P(GemmKernelParamTest, TransposedVariantsMatchNaiveAtEveryLevel) {
  const auto [m, n, k] = GetParam();
  const Tensor a_t = random_tensor(Shape{k, m}, 24);  // gemm_at operand
  const Tensor b_t = random_tensor(Shape{n, k}, 25);  // gemm_bt operand
  const Tensor a = random_tensor(Shape{m, k}, 26);
  const Tensor b = random_tensor(Shape{k, n}, 27);
  const Tensor c0 = random_tensor(Shape{m, n}, 28);

  Tensor ref_at = c0;
  naive_gemm_at(m, n, k, 2.0f, a_t.data(), b.data(), 1.0f, ref_at.data());
  Tensor ref_bt = c0;
  naive_gemm_bt(m, n, k, 1.0f, a.data(), b_t.data(), 0.0f, ref_bt.data());

  for (const KernelLevel level : runnable_levels()) {
    LevelGuard guard(level);
    Tensor c_at = c0;
    gemm_at(m, n, k, 2.0f, a_t.data(), b.data(), 1.0f, c_at.data());
    EXPECT_TRUE(c_at.allclose(ref_at, 1e-3f, 1e-3f))
        << "gemm_at level=" << kernels::kernel_level_name(level) << " m=" << m << " n=" << n
        << " k=" << k;
    Tensor c_bt = c0;
    gemm_bt(m, n, k, 1.0f, a.data(), b_t.data(), 0.0f, c_bt.data());
    EXPECT_TRUE(c_bt.allclose(ref_bt, 1e-3f, 1e-3f))
        << "gemm_bt level=" << kernels::kernel_level_name(level) << " m=" << m << " n=" << n
        << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmKernelParamTest, ::testing::ValuesIn(kShapes));

TEST(GemmKernelDeterminism, BitIdenticalAcrossThreadCounts) {
  // Large enough that the driver's flop heuristic goes parallel (>=1.5e6).
  const std::int64_t m = 250, n = 96, k = 64;
  const Tensor a = random_tensor(Shape{m, k}, 31);
  const Tensor b = random_tensor(Shape{k, n}, 32);
  const Tensor c0 = random_tensor(Shape{m, n}, 33);

  for (const KernelLevel level : runnable_levels()) {
    LevelGuard guard(level);
    Tensor baseline = c0;
    {
      ThreadGuard threads(1);
      gemm(m, n, k, 1.25f, a.data(), b.data(), 0.5f, baseline.data());
    }
    for (const int workers : {2, 3, 5, 8}) {
      ThreadGuard threads(workers);
      Tensor c = c0;
      gemm(m, n, k, 1.25f, a.data(), b.data(), 0.5f, c.data());
      EXPECT_EQ(0, std::memcmp(baseline.data(), c.data(),
                               static_cast<std::size_t>(m * n) * sizeof(float)))
          << "level=" << kernels::kernel_level_name(level) << " workers=" << workers;
    }
  }
}

TEST(GemmKernelLevels, ScalarAndAvx2AgreeWithinTolerance) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "no AVX2+FMA on this host/build";
  const std::int64_t m = 57, n = 83, k = 301;
  const Tensor a = random_tensor(Shape{m, k}, 41);
  const Tensor b = random_tensor(Shape{k, n}, 42);
  Tensor c_scalar(Shape{m, n});
  Tensor c_avx2(Shape{m, n});
  {
    LevelGuard guard(KernelLevel::kScalar);
    gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_scalar.data());
  }
  {
    LevelGuard guard(KernelLevel::kAvx2);
    gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_avx2.data());
  }
  EXPECT_TRUE(c_scalar.allclose(c_avx2, 1e-3f, 1e-3f));
}

TEST(KernelDispatch, ParseKernelEnvContract) {
  EXPECT_EQ(kernels::parse_kernel_env("scalar", KernelLevel::kAvx2), KernelLevel::kScalar);
  EXPECT_EQ(kernels::parse_kernel_env(nullptr, KernelLevel::kScalar), KernelLevel::kScalar);
  EXPECT_EQ(kernels::parse_kernel_env("bogus", KernelLevel::kScalar), KernelLevel::kScalar);
  // "avx2" resolves to the AVX2 kernel only when the host can run it.
  const KernelLevel want =
      kernels::avx2_available() ? KernelLevel::kAvx2 : KernelLevel::kScalar;
  EXPECT_EQ(kernels::parse_kernel_env("avx2", KernelLevel::kScalar), want);
}

TEST(KernelDispatch, StrictEnvParseThrowsOnUnknownLevel) {
  // parse_kernel_env_strict is what the cached FTPIM_KERNEL resolution uses:
  // unset/empty keeps the fallback, known names resolve (with the same
  // capability clamp as the lenient parser), anything else is a typo and
  // must throw instead of silently running the host's best kernel.
  EXPECT_EQ(kernels::parse_kernel_env_strict(nullptr, KernelLevel::kScalar),
            KernelLevel::kScalar);
  EXPECT_EQ(kernels::parse_kernel_env_strict("", KernelLevel::kScalar), KernelLevel::kScalar);
  EXPECT_EQ(kernels::parse_kernel_env_strict("scalar", KernelLevel::kAvx2),
            KernelLevel::kScalar);
  const KernelLevel want =
      kernels::avx2_available() ? KernelLevel::kAvx2 : KernelLevel::kScalar;
  EXPECT_EQ(kernels::parse_kernel_env_strict("avx2", KernelLevel::kScalar), want);
  for (const char* bad : {"bogus", "AVX2", "scalar ", "sse", "avx512"}) {
    EXPECT_THROW((void)kernels::parse_kernel_env_strict(bad, KernelLevel::kScalar),
                 ContractViolation)
        << bad;
  }
}

TEST(KernelDispatch, OverrideNeverSelectsUnrunnableLevel) {
  {
    LevelGuard guard(KernelLevel::kAvx2);
    const KernelLevel active = kernels::active_kernel_level();
    if (kernels::avx2_available()) {
      EXPECT_EQ(active, KernelLevel::kAvx2);
    } else {
      EXPECT_EQ(active, KernelLevel::kScalar);
    }
  }
  LevelGuard guard(KernelLevel::kScalar);
  EXPECT_EQ(kernels::active_kernel_level(), KernelLevel::kScalar);
}

TEST(KernelDispatch, LevelNames) {
  EXPECT_STREQ(kernels::kernel_level_name(KernelLevel::kScalar), "scalar");
  EXPECT_STREQ(kernels::kernel_level_name(KernelLevel::kAvx2), "avx2");
}

// ---------------------------------------------------------------------------
// Fused conv path: correctness vs the explicit im2col reference.
// ---------------------------------------------------------------------------

ConvGeometry test_geom() {
  return ConvGeometry{.in_c = 3,
                      .in_h = 11,
                      .in_w = 9,
                      .kernel_h = 3,
                      .kernel_w = 3,
                      .stride_h = 2,
                      .stride_w = 1,
                      .pad_h = 1,
                      .pad_w = 1};
}

TEST(ConvKernelCorrectness, ForwardMatchesIm2colReference) {
  const ConvGeometry g = test_geom();
  const std::int64_t out_c = 7;
  const Tensor image = random_tensor(Shape{g.in_c, g.in_h, g.in_w}, 51);
  const Tensor weight = random_tensor(Shape{out_c, g.col_rows()}, 52);

  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()), 0.0f);
  im2col(image.data(), g, col.data());
  Tensor ref(Shape{out_c, g.col_cols()});
  naive_gemm(out_c, g.col_cols(), g.col_rows(), 1.0f, weight.data(), col.data(), 0.0f,
             ref.data());

  for (const KernelLevel level : runnable_levels()) {
    LevelGuard guard(level);
    Tensor out(Shape{out_c, g.col_cols()});
    kernels::conv_forward_packed(g, weight.data(), out_c, image.data(), out.data());
    EXPECT_TRUE(out.allclose(ref, 1e-3f, 1e-3f))
        << "level=" << kernels::kernel_level_name(level);
  }
}

TEST(ConvKernelCorrectness, GradWeightMatchesIm2colReference) {
  const ConvGeometry g = test_geom();
  const std::int64_t out_c = 7;
  const Tensor image = random_tensor(Shape{g.in_c, g.in_h, g.in_w}, 53);
  const Tensor dout = random_tensor(Shape{out_c, g.col_cols()}, 54);

  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()), 0.0f);
  im2col(image.data(), g, col.data());
  // dW[o, r] = sum_p dout[o, p] * col[r, p]
  Tensor ref(Shape{out_c, g.col_rows()});
  naive_gemm_bt(out_c, g.col_rows(), g.col_cols(), 1.0f, dout.data(), col.data(), 0.0f,
                ref.data());

  for (const KernelLevel level : runnable_levels()) {
    LevelGuard guard(level);
    Tensor dw(Shape{out_c, g.col_rows()});
    kernels::conv_grad_weight_packed(g, dout.data(), out_c, image.data(), dw.data());
    EXPECT_TRUE(dw.allclose(ref, 1e-3f, 1e-3f))
        << "level=" << kernels::kernel_level_name(level);
  }
}

TEST(ConvKernelCorrectness, GradInputMatchesIm2colReference) {
  const ConvGeometry g = test_geom();
  const std::int64_t out_c = 7;
  const Tensor weight = random_tensor(Shape{out_c, g.col_rows()}, 55);
  const Tensor dout = random_tensor(Shape{out_c, g.col_cols()}, 56);

  // dcol = W^T * dY, then col2im.
  std::vector<float> dcol(static_cast<std::size_t>(g.col_rows() * g.col_cols()), 0.0f);
  naive_gemm_at(g.col_rows(), g.col_cols(), out_c, 1.0f, weight.data(), dout.data(), 0.0f,
                dcol.data());
  Tensor ref(Shape{g.in_c, g.in_h, g.in_w});
  col2im(dcol.data(), g, ref.data());

  for (const KernelLevel level : runnable_levels()) {
    LevelGuard guard(level);
    Tensor dx(Shape{g.in_c, g.in_h, g.in_w});
    kernels::conv_grad_input_packed(g, weight.data(), out_c, dout.data(), dx.data());
    EXPECT_TRUE(dx.allclose(ref, 1e-3f, 1e-3f))
        << "level=" << kernels::kernel_level_name(level);
  }
}

// ---------------------------------------------------------------------------
// Conv2d module: forward and backward bit-identical across worker counts at
// the ambient dispatch level (so the CI scalar leg covers scalar, the
// default leg covers AVX2).
// ---------------------------------------------------------------------------

struct ConvRun {
  Tensor out, grad_input, grad_weight, grad_bias;
};

ConvRun run_conv(int workers) {
  ThreadGuard threads(workers);
  Rng rng(42);
  Conv2d conv(3, 8, 3, 1, 1, rng, /*with_bias=*/true);
  const Tensor x = random_tensor(Shape{5, 3, 11, 9}, 61);
  ConvRun r;
  r.out = conv.forward(x, /*training=*/true);
  const Tensor dy = random_tensor(r.out.shape(), 62);
  r.grad_input = conv.backward(dy);
  std::vector<Param*> params;
  conv.collect_params("", params);
  r.grad_weight = params[0]->grad;
  r.grad_bias = params[1]->grad;
  return r;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what, int workers) {
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << what << " differs between 1 worker and " << workers << " workers";
}

TEST(ConvKernelDeterminism, ForwardBackwardBitIdenticalAcrossThreadCounts) {
  const ConvRun baseline = run_conv(1);
  for (const int workers : {2, 3, 8}) {
    const ConvRun r = run_conv(workers);
    expect_bitwise_equal(baseline.out, r.out, "forward output", workers);
    expect_bitwise_equal(baseline.grad_input, r.grad_input, "grad_input", workers);
    expect_bitwise_equal(baseline.grad_weight, r.grad_weight, "grad_weight", workers);
    expect_bitwise_equal(baseline.grad_bias, r.grad_bias, "grad_bias", workers);
  }
}

}  // namespace
}  // namespace ftpim
