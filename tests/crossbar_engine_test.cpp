// Cell-level engine tests, including the equivalence between the tiled
// crossbar path and the ideal GEMM / fast weight-space injector.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/reram/crossbar_engine.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/tensor/gemm.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::random_tensor;

CrossbarEngineConfig small_tiles() {
  CrossbarEngineConfig cfg;
  cfg.tile_rows = 16;
  cfg.tile_cols = 8;
  return cfg;
}

TEST(CrossbarEngine, Validation) {
  const Tensor w = random_tensor(Shape{4, 4}, 1);
  CrossbarEngineConfig odd;
  odd.tile_cols = 7;
  EXPECT_THROW(CrossbarEngine(w, odd), std::invalid_argument);
  EXPECT_THROW(CrossbarEngine(Tensor(Shape{4}), CrossbarEngineConfig{}), std::invalid_argument);
}

TEST(CrossbarEngine, TileCountCoversMatrix) {
  const Tensor w = random_tensor(Shape{10, 40}, 2);
  const CrossbarEngine engine(w, small_tiles());
  // rows: ceil(40/16)=3 row tiles; cols: 8/2=4 outs/tile -> ceil(10/4)=3.
  EXPECT_EQ(engine.tile_count(), 9);
  EXPECT_EQ(engine.total_cells(), 9 * 16 * 8);
}

TEST(CrossbarEngine, ReadBackMatchesProgrammedWeights) {
  const Tensor w = random_tensor(Shape{6, 20}, 3, 0.5f);
  const CrossbarEngine engine(w, small_tiles());
  EXPECT_TRUE(engine.read_back().allclose(w, 1e-5f, 1e-4f));
}

TEST(CrossbarEngine, MvmMatchesIdealGemmWithoutDefects) {
  const std::int64_t out = 12, in = 37;
  const Tensor w = random_tensor(Shape{out, in}, 4, 0.3f);
  const CrossbarEngine engine(w, small_tiles());
  std::vector<float> x(static_cast<std::size_t>(in));
  Rng rng(5);
  for (auto& v : x) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> y_ideal(static_cast<std::size_t>(out), 0.0f);
  gemm(out, 1, in, 1.0f, w.data(), x.data(), 0.0f, y_ideal.data());
  std::vector<float> y_xbar(static_cast<std::size_t>(out));
  engine.mvm(x.data(), y_xbar.data());
  for (std::int64_t i = 0; i < out; ++i) EXPECT_NEAR(y_xbar[i], y_ideal[i], 2e-4f) << i;
}

TEST(CrossbarEngine, MvmMatchesReadBackUnderDefects) {
  // With faults applied, the analog MVM must equal GEMM with the read-back
  // effective weights (self-consistency of the cell model).
  const std::int64_t out = 9, in = 25;
  const Tensor w = random_tensor(Shape{out, in}, 6, 0.4f);
  CrossbarEngine engine(w, small_tiles());
  engine.apply_device_defects(StuckAtFaultModel(0.1), /*master_seed=*/11, /*device=*/0);
  EXPECT_GT(engine.stuck_cells(), 0);

  const Tensor w_eff = engine.read_back();
  std::vector<float> x(static_cast<std::size_t>(in));
  Rng rng(7);
  for (auto& v : x) v = rng.normal();
  std::vector<float> y_eff(static_cast<std::size_t>(out), 0.0f);
  gemm(out, 1, in, 1.0f, w_eff.data(), x.data(), 0.0f, y_eff.data());
  std::vector<float> y_xbar(static_cast<std::size_t>(out));
  engine.mvm(x.data(), y_xbar.data());
  for (std::int64_t i = 0; i < out; ++i) EXPECT_NEAR(y_xbar[i], y_eff[i], 2e-4f) << i;
}

TEST(CrossbarEngine, DefectsAreDeterministicPerDevice) {
  const Tensor w = random_tensor(Shape{8, 16}, 8);
  CrossbarEngine a(w, small_tiles());
  CrossbarEngine b(w, small_tiles());
  a.apply_device_defects(StuckAtFaultModel(0.05), 99, 7);
  b.apply_device_defects(StuckAtFaultModel(0.05), 99, 7);
  EXPECT_TRUE(a.read_back().allclose(b.read_back(), 0.0f, 0.0f));
  CrossbarEngine c(w, small_tiles());
  c.apply_device_defects(StuckAtFaultModel(0.05), 99, 8);
  EXPECT_FALSE(a.read_back().allclose(c.read_back(), 0.0f, 0.0f));
}

TEST(CrossbarEngine, ClearDefectsRestoresIdealWeights) {
  const Tensor w = random_tensor(Shape{8, 16}, 9, 0.5f);
  CrossbarEngine engine(w, small_tiles());
  engine.apply_device_defects(StuckAtFaultModel(0.2), 1, 1);
  engine.clear_defects();
  EXPECT_EQ(engine.stuck_cells(), 0);
  // Stuck values persist in conductance until reprogrammed — clear_defects
  // only removes the stuck flags. Re-programming happens by constructing a
  // fresh engine; here we just verify the flag behaviour.
}

TEST(CrossbarEngine, EquivalenceWithWeightSpaceInjectorInDistribution) {
  // The fast path (apply_stuck_at_faults) and the cell-level engine implement
  // the same fault model; at equal rates their weight distortions must agree
  // statistically: compare mean absolute weight change over many draws.
  const std::int64_t out = 16, in = 64;
  const Tensor w = random_tensor(Shape{out, in}, 10, 0.3f);
  const double p_sa = 0.05;
  const int reps = 12;

  double engine_mad = 0.0;
  for (int r = 0; r < reps; ++r) {
    CrossbarEngine engine(w, small_tiles(), w.abs_max());
    engine.apply_device_defects(StuckAtFaultModel(p_sa), 1234, static_cast<std::uint64_t>(r));
    const Tensor w_eff = engine.read_back();
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      engine_mad += std::fabs(w_eff[i] - w[i]);
    }
  }
  engine_mad /= static_cast<double>(reps * w.numel());

  double fast_mad = 0.0;
  for (int r = 0; r < reps; ++r) {
    Tensor w_fast = w;
    Rng rng(derive_seed(5678, static_cast<std::uint64_t>(r)));
    apply_stuck_at_faults(w_fast, StuckAtFaultModel(p_sa), {}, rng);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      fast_mad += std::fabs(w_fast[i] - w[i]);
    }
  }
  fast_mad /= static_cast<double>(reps * w.numel());

  // Same model, same rate -> same expected distortion (within Monte-Carlo
  // noise; 25% relative tolerance at these sample sizes).
  EXPECT_NEAR(engine_mad, fast_mad, 0.25 * std::max(engine_mad, fast_mad));
}

TEST(CrossbarEngine, QuantizedEngineSnapsReadback) {
  CrossbarEngineConfig cfg = small_tiles();
  cfg.quant_levels = 3;  // {gmin, mid, gmax}
  const Tensor w = random_tensor(Shape{4, 8}, 11, 0.5f);
  const CrossbarEngine engine(w, cfg, w.abs_max());
  const Tensor w_eff = engine.read_back();
  // Each differential weight comes from quantized pair -> small discrete set.
  std::set<int> values;
  for (std::int64_t i = 0; i < w_eff.numel(); ++i) {
    values.insert(static_cast<int>(std::lround(w_eff[i] / w.abs_max() * 2.0f)));
  }
  EXPECT_LE(values.size(), 5u);
}

}  // namespace
}  // namespace ftpim
