#include <gtest/gtest.h>

#include <cmath>

#include "src/reram/defect_map.hpp"
#include "src/reram/fault_model.hpp"

namespace ftpim {
namespace {

TEST(StuckAtFaultModel, Validation) {
  EXPECT_THROW(StuckAtFaultModel(-0.1), std::invalid_argument);
  EXPECT_THROW(StuckAtFaultModel(1.1), std::invalid_argument);
  EXPECT_THROW(StuckAtFaultModel(0.1, -0.1), std::invalid_argument);
  EXPECT_THROW(StuckAtFaultModel(0.1, 1.1), std::invalid_argument);
}

TEST(StuckAtFaultModel, PaperSplitArithmetic) {
  const StuckAtFaultModel model(0.1079);
  // Paper ratio 1.75 : 9.04 -> P_sa0 = 0.0175, P_sa1 = 0.0904 at P_sa=0.1079.
  EXPECT_NEAR(model.p_sa0(), 0.0175, 1e-6);
  EXPECT_NEAR(model.p_sa1(), 0.0904, 1e-6);
}

TEST(StuckAtFaultModel, ZeroRateNeverFaults) {
  const StuckAtFaultModel model(0.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(model.sample(rng), FaultType::kNone);
}

TEST(StuckAtFaultModel, FullRateAlwaysFaults) {
  const StuckAtFaultModel model(1.0, 0.3);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(model.sample(rng), FaultType::kNone);
}

TEST(StuckAtFaultModel, SampleFrequenciesMatchRates) {
  const StuckAtFaultModel model(0.05);  // paper split
  Rng rng(3);
  const int n = 200000;
  int sa0 = 0, sa1 = 0;
  for (int i = 0; i < n; ++i) {
    switch (model.sample(rng)) {
      case FaultType::kStuckOff: ++sa0; break;
      case FaultType::kStuckOn: ++sa1; break;
      default: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(sa0 + sa1) / n, 0.05, 0.003);
  EXPECT_NEAR(static_cast<double>(sa0) / n, model.p_sa0(), 0.002);
  EXPECT_NEAR(static_cast<double>(sa1) / n, model.p_sa1(), 0.003);
}

TEST(DefectMap, ZeroRateIsEmpty) {
  Rng rng(4);
  const DefectMap map = DefectMap::sample(10000, StuckAtFaultModel(0.0), rng);
  EXPECT_EQ(map.fault_count(), 0);
  EXPECT_EQ(map.cell_count(), 10000);
}

TEST(DefectMap, ObservedRateMatchesTarget) {
  Rng rng(5);
  const std::int64_t cells = 500000;
  const DefectMap map = DefectMap::sample(cells, StuckAtFaultModel(0.01), rng);
  EXPECT_NEAR(map.observed_rate(), 0.01, 0.001);
}

TEST(DefectMap, GeometricSkippingMatchesBernoulliStatistics) {
  // The geometric-gap sampler must match a naive per-cell Bernoulli draw in
  // distribution: compare fault-count means over repeated maps.
  const StuckAtFaultModel model(0.02);
  const std::int64_t cells = 20000;
  double sum = 0.0;
  const int reps = 50;
  for (int r = 0; r < reps; ++r) {
    Rng rng(100 + static_cast<std::uint64_t>(r));
    sum += static_cast<double>(DefectMap::sample(cells, model, rng).fault_count());
  }
  EXPECT_NEAR(sum / reps / static_cast<double>(cells), 0.02, 0.002);
}

TEST(DefectMap, IndicesSortedUniqueInRange) {
  Rng rng(6);
  const DefectMap map = DefectMap::sample(50000, StuckAtFaultModel(0.05), rng);
  std::int64_t prev = -1;
  for (const CellFault& f : map.faults()) {
    EXPECT_GT(f.cell_index, prev);
    EXPECT_LT(f.cell_index, 50000);
    EXPECT_NE(f.type, FaultType::kNone);
    prev = f.cell_index;
  }
}

TEST(DefectMap, TypeSplitMatchesPaperRatio) {
  Rng rng(7);
  const DefectMap map = DefectMap::sample(1000000, StuckAtFaultModel(0.02), rng);
  const double sa0_frac = static_cast<double>(map.count(FaultType::kStuckOff)) /
                          static_cast<double>(map.fault_count());
  EXPECT_NEAR(sa0_frac, kPaperSa0Fraction, 0.01);
}

TEST(DefectMap, PerDeviceDeterminism) {
  const StuckAtFaultModel model(0.01);
  const DefectMap a = DefectMap::sample_for_device(10000, model, 42, 3);
  const DefectMap b = DefectMap::sample_for_device(10000, model, 42, 3);
  ASSERT_EQ(a.fault_count(), b.fault_count());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].cell_index, b.faults()[i].cell_index);
    EXPECT_EQ(a.faults()[i].type, b.faults()[i].type);
  }
  const DefectMap c = DefectMap::sample_for_device(10000, model, 42, 4);
  bool differs = a.fault_count() != c.fault_count();
  for (std::size_t i = 0; !differs && i < std::min(a.faults().size(), c.faults().size()); ++i) {
    differs = a.faults()[i].cell_index != c.faults()[i].cell_index;
  }
  EXPECT_TRUE(differs);
}

TEST(DefectMap, FullRateHitsEveryCell) {
  Rng rng(8);
  const DefectMap map = DefectMap::sample(1000, StuckAtFaultModel(1.0), rng);
  EXPECT_EQ(map.fault_count(), 1000);
}

}  // namespace
}  // namespace ftpim
