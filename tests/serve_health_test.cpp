// Self-healing serving: OutcomeWindow, HealthMonitor state machine, canary
// scoring, deadline/retry/failover semantics, poisoned-batchmate isolation,
// load shedding, and the deterministic degrade->quarantine->repair loop.
// Suite names start with Serve* so scripts/ci.sh's TSan leg picks them up.
#include "src/serve/health_monitor.hpp"

#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/core/evaluator.hpp"
#include "src/models/small_cnn.hpp"
#include "src/nn/module.hpp"
#include "src/serve/inference_server.hpp"
#include "src/serve/serve_error.hpp"
#include "test_util.hpp"

namespace ftpim::serve {
namespace {

std::unique_ptr<Module> make_model() {
  SmallCnnConfig cfg;
  cfg.image_size = 16;
  cfg.seed = 5;
  return make_small_cnn(cfg);
}

Tensor make_input(std::uint64_t seed) {
  return testing::random_tensor(Shape{3, 16, 16}, seed, 0.5f);
}

/// Resolves a future expected to fail with a ServeError; reports its kind.
ServeError::Kind kind_of(std::future<InferenceResult>& fut) {
  try {
    (void)fut.get();
  } catch (const ServeError& e) {
    return e.kind();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "future failed with a non-ServeError: " << e.what();
    return ServeError::kStopped;
  }
  ADD_FAILURE() << "future unexpectedly succeeded";
  return ServeError::kStopped;
}

// --- OutcomeWindow -----------------------------------------------------------

TEST(ServeHealthWindow, EmptyWindowReadsHealthy) {
  OutcomeWindow w(4);
  EXPECT_EQ(w.size(), 0);
  EXPECT_DOUBLE_EQ(w.success_rate(), 1.0);
  EXPECT_THROW(OutcomeWindow bad(0), ContractViolation);
}

TEST(ServeHealthWindow, SlidesAndEvictsOldest) {
  OutcomeWindow w(3);
  w.record(false);
  w.record(false);
  w.record(false);
  EXPECT_DOUBLE_EQ(w.success_rate(), 0.0);
  // Three successes push the three failures out one by one.
  w.record(true);
  EXPECT_EQ(w.successes(), 1);
  EXPECT_EQ(w.failures(), 2);
  w.record(true);
  w.record(true);
  EXPECT_DOUBLE_EQ(w.success_rate(), 1.0);
  EXPECT_EQ(w.size(), 3);
  EXPECT_EQ(w.capacity(), 3);
}

TEST(ServeHealthWindow, ResetForgetsEverything) {
  OutcomeWindow w(8);
  for (int i = 0; i < 8; ++i) w.record(i % 2 == 0);
  EXPECT_EQ(w.size(), 8);
  w.reset();
  EXPECT_EQ(w.size(), 0);
  EXPECT_EQ(w.successes(), 0);
  EXPECT_DOUBLE_EQ(w.success_rate(), 1.0);
}

TEST(ServeHealthWindow, CodecRoundTripsEmptyAndWrappedWindows) {
  // The fleet checkpoint (FLDV chunk) persists per-device windows; empty,
  // exactly-full, and wrapped-past-capacity windows must all restore to a
  // state that keeps recording/evicting identically to the original.
  const auto round_trip = [](const OutcomeWindow& w) {
    ByteWriter out;
    w.encode(out);
    ByteReader in(out.bytes(), "window");
    OutcomeWindow back = OutcomeWindow::decode(in);
    in.expect_done();
    return back;
  };

  OutcomeWindow empty_back = round_trip(OutcomeWindow(4));
  EXPECT_EQ(empty_back.capacity(), 4);
  EXPECT_EQ(empty_back.size(), 0);
  EXPECT_DOUBLE_EQ(empty_back.success_rate(), 1.0);

  OutcomeWindow exactly_full(3);
  for (int i = 0; i < 3; ++i) exactly_full.record(i != 1);
  OutcomeWindow full_back = round_trip(exactly_full);
  EXPECT_EQ(full_back.size(), 3);
  EXPECT_EQ(full_back.successes(), 2);

  OutcomeWindow wrapped(3);
  for (int i = 0; i < 5; ++i) wrapped.record(i >= 3);  // eviction cursor mid-ring
  OutcomeWindow wrapped_back = round_trip(wrapped);
  EXPECT_EQ(wrapped_back.size(), 3);
  EXPECT_EQ(wrapped_back.successes(), wrapped.successes());
  // The cursor survives the round trip: the same future outcomes must evict
  // the same past outcomes from both windows, keeping the rates locked.
  for (bool outcome : {false, true, false, false}) {
    wrapped.record(outcome);
    wrapped_back.record(outcome);
    EXPECT_EQ(wrapped_back.successes(), wrapped.successes());
    EXPECT_DOUBLE_EQ(wrapped_back.success_rate(), wrapped.success_rate());
  }
}

TEST(ServeHealthWindow, CodecAfterResetMatchesAFreshWindow) {
  // A post-repair reset() must leave no trace of history in the encoding —
  // a resumed device starts its window exactly like a never-used one.
  OutcomeWindow used(4);
  for (int i = 0; i < 6; ++i) used.record(true);
  used.reset();
  ByteWriter reset_bytes;
  used.encode(reset_bytes);
  ByteWriter fresh_bytes;
  OutcomeWindow(4).encode(fresh_bytes);
  EXPECT_EQ(reset_bytes.bytes(), fresh_bytes.bytes());
}

TEST(ServeHealthWindow, CodecRejectsInconsistentFraming) {
  const auto expect_bad = [](std::int64_t capacity, std::int64_t head, std::int64_t size,
                             std::vector<std::uint8_t> ring) {
    ByteWriter out;
    out.i64(capacity);
    out.i64(head);
    out.i64(size);
    out.raw(ring.data(), ring.size());
    ByteReader in(out.bytes(), "window");
    EXPECT_THROW((void)OutcomeWindow::decode(in), CheckpointError)
        << "capacity=" << capacity << " head=" << head << " size=" << size;
  };
  expect_bad(0, 0, 0, {});                 // empty ring
  expect_bad(3, 3, 2, {1, 0, 1});          // cursor past the ring
  expect_bad(3, 0, 4, {1, 0, 1});          // more outcomes than slots
  expect_bad(3, 0, 3, {1, 2, 0});          // ring byte not 0/1
  expect_bad(3, 0, 1, {1, 1, 0});          // stale slots claim successes > size
}

// --- HealthMonitor -----------------------------------------------------------

HealthConfig tight_health() {
  HealthConfig h;
  h.window = 8;
  h.min_samples = 4;
  h.suspect_below = 0.95;
  h.quarantine_below = 0.60;
  return h;
}

TEST(ServeHealthMonitor, MinSamplesGateKeepsFreshReplicasHealthy) {
  HealthMonitor mon(2, tight_health());
  // Three straight failures — still below the evidence bar.
  mon.record(0, false, 3);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kHealthy);
  EXPECT_DOUBLE_EQ(mon.score(0), 0.0);
  // Fourth failure crosses min_samples: now the score counts.
  mon.record(0, false);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kQuarantined);
  // Replica 1 never recorded anything — independent and healthy.
  EXPECT_EQ(mon.state(1), ReplicaHealth::kHealthy);
}

TEST(ServeHealthMonitor, ThresholdsMapScoreToStates) {
  HealthMonitor mon(1, tight_health());
  // 7/8 = 0.875: below suspect_below, above quarantine_below.
  mon.record(0, true, 7);
  mon.record(0, false, 1);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kSuspect);
  // Slide to 4/8 = 0.5 < 0.6: quarantined.
  mon.record(0, false, 3);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kQuarantined);
  EXPECT_STREQ(to_string(mon.state(0)), "quarantined");
}

TEST(ServeHealthMonitor, RepairResetsWindowAndCountsRepairs) {
  HealthMonitor mon(1, tight_health());
  mon.record(0, false, 8);
  ASSERT_EQ(mon.state(0), ReplicaHealth::kQuarantined);
  mon.mark_repaired(0);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kHealthy);
  EXPECT_DOUBLE_EQ(mon.score(0), 1.0);
  const auto snap = mon.snapshot();
  ASSERT_EQ(snap.size(), std::size_t{1});
  EXPECT_EQ(snap[0].repairs, 1);
  EXPECT_EQ(snap[0].state, ReplicaHealth::kHealthy);
}

TEST(ServeHealthMonitor, ValidatesConfigAndBounds) {
  HealthConfig bad = tight_health();
  bad.quarantine_below = 0.99;  // above suspect_below
  EXPECT_THROW(HealthMonitor(1, bad), ContractViolation);
  HealthConfig bad2 = tight_health();
  bad2.min_samples = 100;  // exceeds window
  EXPECT_THROW(HealthMonitor(1, bad2), ContractViolation);
  HealthMonitor mon(2, tight_health());
  EXPECT_THROW(mon.record(2, true), ContractViolation);
  EXPECT_THROW((void)mon.score(-1), ContractViolation);
}

// --- Canary set --------------------------------------------------------------

TEST(ServeHealthCanary, GoldenOutputsAreDeterministicAndSourceUntouched) {
  const auto model = make_model();
  std::vector<std::vector<float>> before;
  for (const Param* p : parameters_of(*model)) before.push_back(p->value.vec());

  const CanarySet a = make_canary_set(*model, Shape{3, 16, 16}, 4, 99);
  const CanarySet b = make_canary_set(*model, Shape{3, 16, 16}, 4, 99);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.inputs.shape(), (Shape{4, 3, 16, 16}));
  EXPECT_EQ(a.inputs.vec(), b.inputs.vec());
  EXPECT_EQ(a.golden.vec(), b.golden.vec());
  EXPECT_EQ(a.golden_pred, b.golden_pred);

  const CanarySet c = make_canary_set(*model, Shape{3, 16, 16}, 4, 100);
  EXPECT_NE(a.inputs.vec(), c.inputs.vec()) << "different seeds must differ";

  std::size_t k = 0;
  for (const Param* p : parameters_of(*model)) EXPECT_EQ(p->value.vec(), before[k++]);
}

TEST(ServeHealthCanary, ScoreCountsArgmaxMatchesOrToleranceHits) {
  const auto model = make_model();
  const CanarySet canary = make_canary_set(*model, Shape{3, 16, 16}, 4, 7);
  // The clean model scores perfectly against its own golden outputs.
  EXPECT_EQ(score_canary(canary.golden, canary), 4);
  EXPECT_EQ(score_canary(canary.golden, canary, /*max_abs_err=*/0.0f), 4);

  // Nudge one logit: within a loose tolerance, outside a tight one; argmax
  // comparison only cares if the prediction flips.
  Tensor nudged = canary.golden;
  nudged[0] += 0.5f;
  EXPECT_EQ(score_canary(nudged, canary, /*max_abs_err=*/1.0f), 4);
  EXPECT_EQ(score_canary(nudged, canary, /*max_abs_err=*/0.01f), 3);
}

// --- Deadlines, retry, failover ---------------------------------------------

TEST(ServeHealthServer, RetryFailsOverToHealthyReplica) {
  // Replica 0's device "breaks" on every batch (the hook throws); replica 1
  // is healthy. With a 2-attempt budget no request may ever surface an
  // error — every failure re-queues onto the healthy replica.
  const auto model = make_model();
  ServerConfig cfg;
  cfg.queue_capacity = 64;
  cfg.batching.max_batch_size = 4;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 2;
  cfg.pool.p_sa = 0.01;
  cfg.max_attempts = 2;
  cfg.health.min_samples = 64;  // keep quarantine out of this test's way
  cfg.batch_hook = [](int replica_id, std::vector<Request>&) {
    if (replica_id == 0) throw std::runtime_error("chaos: replica 0 device fault");
  };
  InferenceServer server(*model, cfg);

  constexpr int kRequests = 24;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < kRequests; ++i) futures.push_back(server.submit(make_input(i)));
  server.start();
  server.drain();
  server.stop();

  for (auto& f : futures) {
    const InferenceResult res = f.get();  // throws if any request failed
    EXPECT_EQ(res.replica_id, 1);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, kRequests);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.per_replica_served[0], 0);
  EXPECT_EQ(stats.per_replica_served[1], kRequests);
  EXPECT_GT(stats.retried, 0);
  // Every throwing forward pass was recorded, none swallowed silently.
  EXPECT_GT(stats.worker_exceptions, 0);
  // Replica 0's health window saw its batch failures.
  EXPECT_LT(stats.per_replica_health[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.per_replica_health[1], 1.0);
}

TEST(ServeHealthServer, ExhaustedWhenNoAlternativeReplica) {
  // Single replica, always-failing device: the attempt budget is useless
  // because there is nobody to fail over to — typed kExhausted, no retries.
  const auto model = make_model();
  ServerConfig cfg;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 1;
  cfg.max_attempts = 3;
  cfg.batch_hook = [](int, std::vector<Request>&) {
    throw std::runtime_error("chaos: device fault");
  };
  InferenceServer server(*model, cfg);
  auto fut = server.submit(make_input(1));
  server.start();
  server.drain();
  server.stop();

  EXPECT_EQ(kind_of(fut), ServeError::kExhausted);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.retried, 0);
  EXPECT_EQ(stats.served, 0);
  EXPECT_EQ(stats.worker_exceptions, 1);
}

TEST(ServeHealthServer, AttemptBudgetSpentAcrossReplicas) {
  // Both replicas fail: attempt 1 re-queues with the first replica excluded,
  // attempt 2 exhausts the budget on the second.
  const auto model = make_model();
  ServerConfig cfg;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 2;
  cfg.max_attempts = 2;
  cfg.health.min_samples = 64;
  cfg.batch_hook = [](int, std::vector<Request>&) {
    throw std::runtime_error("chaos: fleet-wide fault");
  };
  InferenceServer server(*model, cfg);
  auto fut = server.submit(make_input(2));
  server.start();
  server.drain();
  server.stop();

  EXPECT_EQ(kind_of(fut), ServeError::kExhausted);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.retried, 1);
}

TEST(ServeHealthServer, DeadlineExpiredWhileQueuedFailsTyped) {
  // The deadline passes while the request sits in the queue (manual clock
  // advanced before the worker starts): typed kDeadlineExceeded through the
  // future — catchable as ServeError, not just a generic runtime_error.
  const auto model = make_model();
  ManualServeClock clock(1'000'000);
  ServerConfig cfg;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 1;
  cfg.clock = &clock;
  InferenceServer server(*model, cfg);

  SubmitOptions opts;
  opts.deadline_ns = 1000;  // relative: absolute deadline = now + 1us
  auto doomed = server.submit(make_input(1), opts);
  auto fine = server.submit(make_input(2));  // no deadline
  clock.advance_ns(10'000);                  // sail past the first deadline
  server.start();
  server.drain();
  server.stop();

  EXPECT_EQ(kind_of(doomed), ServeError::kDeadlineExceeded);
  EXPECT_NO_THROW((void)fine.get());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.served, 1);
}

TEST(ServeHealthServer, ShedsRequestsWithUnmeetableDeadlines) {
  // Admission control: with shed_ns_per_queued = 1us per queued request and
  // a 2.5us default deadline, the third submission is predicted to finish at
  // +3us and is shed at the door (no queue slot, no forward pass).
  const auto model = make_model();
  ManualServeClock clock(1'000'000);
  ServerConfig cfg;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 1;
  cfg.clock = &clock;
  cfg.shed_ns_per_queued = 1'000;
  cfg.default_deadline_ns = 2'500;
  InferenceServer server(*model, cfg);

  auto a = server.submit(make_input(1));  // depth 0: predicted +1us, fits
  auto b = server.submit(make_input(2));  // depth 1: predicted +2us, fits
  auto c = server.submit(make_input(3));  // depth 2: predicted +3us, shed
  auto d = server.submit(make_input(4));  // still depth 2: shed too
  server.start();
  server.drain();
  server.stop();

  EXPECT_NO_THROW((void)a.get());
  EXPECT_NO_THROW((void)b.get());
  EXPECT_EQ(kind_of(c), ServeError::kDeadlineShed);
  EXPECT_EQ(kind_of(d), ServeError::kDeadlineShed);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_shed, 2);
  EXPECT_EQ(stats.rejected(), 2);
  EXPECT_EQ(stats.submitted, 2);  // shed requests never count as accepted
  EXPECT_EQ(stats.served, 2);
}

TEST(ServeHealthServer, PoisonedRequestDoesNotTakeDownBatchmates) {
  // A request whose promise is already satisfied (poisoned via the batch
  // hook, standing in for a cancelled/duplicated client) must not prevent
  // its batchmates from being answered.
  const auto model = make_model();
  ServerConfig cfg;
  cfg.batching.max_batch_size = 3;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 1;
  cfg.batch_hook = [](int, std::vector<Request>& batch) {
    if (batch.size() == 3) {
      InferenceResult hijacked;
      hijacked.predicted = -1;
      (void)answer(batch[1], std::move(hijacked));
    }
  };
  InferenceServer server(*model, cfg);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(server.submit(make_input(i)));
  server.start();
  server.drain();
  server.stop();

  // Batchmates answered normally; the poisoned slot kept the hook's value.
  EXPECT_GE(futures[0].get().predicted, 0);
  EXPECT_EQ(futures[1].get().predicted, -1);
  EXPECT_GE(futures[2].get().predicted, 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.poisoned, 1);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.in_flight, 0);
}

// --- Degrade -> quarantine -> repair, deterministically ----------------------

struct DegradationRun {
  std::vector<std::int64_t> predicted;
  ServerStats stats;
};

DegradationRun run_degradation_once(int num_requests) {
  const auto model = make_model();
  ManualServeClock clock(1'000'000);
  ServerConfig cfg;
  cfg.queue_capacity = 128;
  cfg.batching.max_batch_size = 1;  // every request is its own batch
  cfg.batching.max_linger_ns = 0;   // deterministic mode: greedy batching
  cfg.pool.num_replicas = 1;        // deterministic mode: single worker
  cfg.pool.p_sa = 0.0;              // ships pristine; degradation comes from aging
  cfg.pool.seed = 21;
  cfg.clock = &clock;
  // Aggressive wear: every served batch is an aging interval in which 20% of
  // the surviving cells fail — the replica degrades within a handful of
  // batches.
  cfg.aging.p_new_per_interval = 0.2;
  cfg.aging.interval_batches = 1;
  cfg.aging.seed = 404;
  // Canary after every batch; quarantine once the window dips below 0.6.
  cfg.health.canary_every_batches = 1;
  cfg.health.canary_samples = 4;
  cfg.health.window = 8;
  cfg.health.min_samples = 4;
  cfg.health.suspect_below = 0.95;
  cfg.health.quarantine_below = 0.60;
  cfg.health.repair_on_quarantine = true;
  InferenceServer server(*model, cfg);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < num_requests; ++i) {
    futures.push_back(server.submit(make_input(500 + static_cast<std::uint64_t>(i))));
  }
  server.start();
  server.drain();
  server.stop();

  DegradationRun out;
  for (auto& f : futures) {
    out.predicted.push_back(f.get().predicted);  // accepted => answered, no throws
  }
  out.stats = server.stats();
  return out;
}

TEST(ServeHealthServer, DeterministicDegradationQuarantineRepairLoop) {
  constexpr int kRequests = 40;
  const DegradationRun a = run_degradation_once(kRequests);
  const DegradationRun b = run_degradation_once(kRequests);

  // The lifecycle actually happened: the replica aged, canaries caught the
  // degradation, it was quarantined and repaired — at least once — and every
  // accepted request was still answered with a result.
  EXPECT_EQ(a.stats.served, kRequests);
  EXPECT_EQ(a.stats.failed, 0);
  EXPECT_GT(a.stats.aged_cells, 0);
  EXPECT_EQ(a.stats.canary_batches, kRequests);
  EXPECT_GT(a.stats.canary_failures, 0);
  EXPECT_GE(a.stats.quarantines, 1);
  EXPECT_GE(a.stats.repairs, 1);
  ASSERT_EQ(a.stats.per_replica_repairs.size(), std::size_t{1});
  EXPECT_EQ(static_cast<std::int64_t>(a.stats.per_replica_repairs[0]), a.stats.repairs);
  // The observability gauges reflect the config: window capacity, per-replica
  // window fill, and the canary cadence all surface in the snapshot.
  EXPECT_EQ(a.stats.health_window_capacity, 8);
  ASSERT_EQ(a.stats.per_replica_window_size.size(), std::size_t{1});
  // A repair on the final batch legitimately resets the window to empty, so
  // only the capacity bound is invariant here.
  EXPECT_LE(a.stats.per_replica_window_size[0], 8);
  EXPECT_EQ(a.stats.canary_every_batches, 1);
  ASSERT_EQ(a.stats.per_replica_canary_progress.size(), std::size_t{1});

  // Bit-identical across runs: predictions, every counter, the latency
  // histogram, and the rendered summary/health lines.
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.stats.aged_cells, b.stats.aged_cells);
  EXPECT_EQ(a.stats.canary_failures, b.stats.canary_failures);
  EXPECT_EQ(a.stats.quarantines, b.stats.quarantines);
  EXPECT_EQ(a.stats.repairs, b.stats.repairs);
  EXPECT_EQ(a.stats.batches, b.stats.batches);
  EXPECT_EQ(a.stats.per_replica_health, b.stats.per_replica_health);
  EXPECT_EQ(a.stats.latency.bin_counts(), b.stats.latency.bin_counts());
  EXPECT_EQ(a.stats.summary_line(), b.stats.summary_line());
  EXPECT_EQ(a.stats.health_line(), b.stats.health_line());
}

// --- ServeError taxonomy -----------------------------------------------------

TEST(ServeHealthError, KindsRoundTripThroughToString) {
  EXPECT_STREQ(to_string(ServeError::kQueueFull), "queue_full");
  EXPECT_STREQ(to_string(ServeError::kStopped), "stopped");
  EXPECT_STREQ(to_string(ServeError::kDeadlineShed), "deadline_shed");
  EXPECT_STREQ(to_string(ServeError::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(to_string(ServeError::kExhausted), "exhausted");
  const ServeError err(ServeError::kExhausted, "budget spent");
  EXPECT_EQ(err.kind(), ServeError::kExhausted);
  EXPECT_STREQ(err.what(), "budget spent");
  // is-a runtime_error: legacy catch sites keep working.
  EXPECT_THROW(throw ServeError(ServeError::kStopped, "x"), std::runtime_error);
}

TEST(ServeHealthStats, SummaryAndHealthLinesRenderBreakdown) {
  ServerStats s;
  s.submitted = 10;
  s.rejected_queue_full = 1;
  s.rejected_stopped = 2;
  s.rejected_shed = 3;
  s.served = 4;
  s.per_replica_health = {0.5};
  s.per_replica_state = {ReplicaHealth::kSuspect};
  s.per_replica_repairs = {2};
  s.quarantines = 1;
  s.repairs = 2;
  EXPECT_EQ(s.rejected(), 6);
  const std::string line = s.summary_line();
  EXPECT_NE(line.find("rejected 6=full:1+stop:2+shed:3"), std::string::npos) << line;
  const std::string health = s.health_line();
  EXPECT_NE(health.find("suspect:0.50"), std::string::npos) << health;
  EXPECT_NE(health.find("quarantines 1 repairs 2"), std::string::npos) << health;
}

TEST(ServeHealthStats, HealthLineShowsAbftWindowAndCanaryGauges) {
  ServerStats s;
  s.per_replica_health = {0.88};
  s.per_replica_state = {ReplicaHealth::kHealthy};
  s.per_replica_window_size = {5};
  s.health_window_capacity = 8;
  s.per_replica_canary_progress = {3};
  s.canary_every_batches = 4;
  s.abft_detections = 2;
  s.abft_flagged_tiles = 7;
  s.abft_scrubs = 2;
  s.abft_scrubbed_tiles = 7;
  s.abft_escalations = 1;
  const std::string line = s.health_line();
  // Window fill and canary countdown distinguish a stuck monitor from a
  // healthy idle one; the abft segment carries the detection/scrub story.
  EXPECT_NE(line.find("win=5/8"), std::string::npos) << line;
  EXPECT_NE(line.find("can=3/4"), std::string::npos) << line;
  EXPECT_NE(line.find("abft 2 hits (7 tiles) scrubs 2 (7 tiles) refresh 0 esc 1"),
            std::string::npos)
      << line;

  // With canaries off the countdown gauge disappears but the window stays.
  s.canary_every_batches = 0;
  const std::string quiet = s.health_line();
  EXPECT_EQ(quiet.find("can="), std::string::npos) << quiet;
  EXPECT_NE(quiet.find("win=5/8"), std::string::npos) << quiet;
}

TEST(ServeHealthStats, HealthLineExactFormatIsPinned) {
  // Operators grep these lines out of logs; the layout is load-bearing.
  // All-zero stats render every segment, in order, with "no replicas".
  ServerStats zero;
  EXPECT_EQ(zero.health_line(),
            "canary 0 batches (0 misses) | abft 0 hits (0 tiles) scrubs 0 (0 tiles) "
            "refresh 0 esc 0 | quarantines 0 repairs 0 | aged_cells 0 | no replicas");

  ServerStats s;
  s.canary_batches = 3;
  s.canary_failures = 1;
  s.abft_detections = 4;
  s.abft_flagged_tiles = 9;
  s.abft_scrubs = 2;
  s.abft_scrubbed_tiles = 5;
  s.periodic_refreshes = 12;  // the kPeriodic scrub-policy counter
  s.abft_escalations = 1;
  s.quarantines = 6;
  s.repairs = 7;
  s.aged_cells = 42;
  s.per_replica_state = {ReplicaHealth::kHealthy, ReplicaHealth::kQuarantined};
  s.per_replica_health = {1.0, 0.25};
  const std::string line = s.health_line();
  EXPECT_EQ(line,
            "canary 3 batches (1 misses) | abft 4 hits (9 tiles) scrubs 2 (5 tiles) "
            "refresh 12 esc 1 | quarantines 6 repairs 7 | aged_cells 42 | "
            "[0]=healthy:1.00 [1]=quarantined:0.25");
}

}  // namespace
}  // namespace ftpim::serve
