// Fleet-at-scale lifecycle simulator: policy decisions, deterministic
// heterogeneous profiles, survival analysis math, thread-count invariance of
// whole sweeps, and the transient-heal/persistent-return refresh semantics.
// Suite names start with Fleet* so scripts/ci.sh's TSan leg picks them up.
#include "src/fleet/fleet_simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/parallel.hpp"
#include "src/models/mlp.hpp"

namespace ftpim::fleet {
namespace {

/// Small heterogeneous fleet over a 16->24->4 MLP. Aggressive defect and
/// aging rates so lifecycles actually happen within a handful of ticks.
FleetConfig small_fleet(RepairPolicyKind policy) {
  FleetConfig cfg;
  cfg.num_devices = 12;
  cfg.ticks = 8;
  cfg.sample_shape = {16};
  cfg.probe_samples = 16;
  cfg.accuracy_floor = 0.55;
  cfg.interval_batches = 16;
  cfg.p_transient_per_tick = 0.002;
  cfg.seed = 2024;
  cfg.profile.p_sa_min = 0.01;
  cfg.profile.p_sa_max = 0.08;
  cfg.profile.aging_min = 0.001;
  cfg.profile.aging_max = 0.01;
  cfg.profile.traffic_min = 8;
  cfg.profile.traffic_max = 32;
  cfg.profile.quantized_fraction = 0.75;
  cfg.policy = policy;
  cfg.policy_config.window = 48;
  cfg.policy_config.min_samples = 16;
  cfg.policy_config.repair_below = 0.85;
  cfg.policy_config.refresh_every_ticks = 2;
  cfg.policy_config.max_scrub_retries = 1;
  cfg.quantized.adc.bits = 0;  // ideal readout: probe scores are exact
  return cfg;
}

std::unique_ptr<Module> fleet_model() { return make_mlp({16, 24, 4}, 7); }

std::vector<std::uint8_t> timeline_bytes(const FleetSimulator& sim) {
  ByteWriter out;
  for (const TickAggregate& agg : sim.timeline()) agg.encode(out);
  return out.take();
}

// --- RepairPolicy ------------------------------------------------------------

TEST(FleetPolicy, NamesRoundTripAndGarbageIsRejected) {
  for (RepairPolicyKind kind : kAllRepairPolicies) {
    EXPECT_EQ(parse_repair_policy(to_string(kind)), kind);
    EXPECT_EQ(make_repair_policy(kind, RepairPolicyConfig{})->kind(), kind);
  }
  EXPECT_THROW((void)parse_repair_policy("weekly_reboot"), ContractViolation);
  RepairPolicyConfig bad;
  bad.repair_below = 1.5;
  EXPECT_THROW((void)make_repair_policy(RepairPolicyKind::kCanaryGated, bad), ContractViolation);
}

TEST(FleetPolicy, DecisionsFollowTheStatusSurface) {
  RepairPolicyConfig cfg;
  cfg.min_samples = 4;
  cfg.repair_below = 0.8;
  cfg.refresh_every_ticks = 3;
  cfg.max_scrub_retries = 2;

  DeviceStatus healthy;
  healthy.window_score = 1.0;
  healthy.window_size = 10;

  DeviceStatus failing = healthy;
  failing.window_score = 0.5;

  DeviceStatus fresh_failing = failing;
  fresh_failing.window_size = 3;  // below the evidence gate

  const auto never = make_repair_policy(RepairPolicyKind::kNeverRepair, cfg);
  EXPECT_EQ(never->decide(failing), RepairActionKind::kNone);

  const auto gated = make_repair_policy(RepairPolicyKind::kCanaryGated, cfg);
  EXPECT_EQ(gated->decide(healthy), RepairActionKind::kNone);
  EXPECT_EQ(gated->decide(failing), RepairActionKind::kRepair);
  EXPECT_EQ(gated->decide(fresh_failing), RepairActionKind::kNone) << "min_samples gate";

  const auto scheduled = make_repair_policy(RepairPolicyKind::kScheduledRefresh, cfg);
  DeviceStatus due = healthy;
  due.ticks_since_heal = 3;
  EXPECT_EQ(scheduled->decide(healthy), RepairActionKind::kNone);
  EXPECT_EQ(scheduled->decide(due), RepairActionKind::kScrub);

  const auto driven = make_repair_policy(RepairPolicyKind::kDetectionDrivenScrub, cfg);
  DeviceStatus flagged = healthy;
  flagged.abft_flagged = true;
  flagged.consecutive_detections = 1;
  EXPECT_EQ(driven->decide(healthy), RepairActionKind::kNone);
  EXPECT_EQ(driven->decide(flagged), RepairActionKind::kScrub);
  flagged.consecutive_detections = 3;  // outlived max_scrub_retries = 2
  EXPECT_EQ(driven->decide(flagged), RepairActionKind::kRepair);
}

// --- Profiles ----------------------------------------------------------------

TEST(FleetProfile, DrawIsDeterministicAndInsideTheDeclaredRanges) {
  const FleetConfig cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  for (int d = 0; d < cfg.num_devices; ++d) {
    const DeviceProfile a = draw_profile(cfg, d);
    const DeviceProfile b = draw_profile(cfg, d);
    EXPECT_EQ(a.p_sa, b.p_sa);
    EXPECT_EQ(a.aging_per_interval, b.aging_per_interval);
    EXPECT_EQ(a.batches_per_tick, b.batches_per_tick);
    EXPECT_EQ(a.datapath, b.datapath);
    EXPECT_GE(a.p_sa, cfg.profile.p_sa_min);
    EXPECT_LE(a.p_sa, cfg.profile.p_sa_max);
    EXPECT_GE(a.aging_per_interval, cfg.profile.aging_min);
    EXPECT_LE(a.aging_per_interval, cfg.profile.aging_max);
    EXPECT_GE(a.batches_per_tick, cfg.profile.traffic_min);
    EXPECT_LE(a.batches_per_tick, cfg.profile.traffic_max);
  }
}

TEST(FleetProfile, QuantizedFractionPinsTheDatapath) {
  FleetConfig cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  cfg.profile.quantized_fraction = 0.0;
  for (int d = 0; d < 8; ++d) EXPECT_EQ(draw_profile(cfg, d).datapath, Datapath::kFloat);
  cfg.profile.quantized_fraction = 1.0;
  for (int d = 0; d < 8; ++d) EXPECT_EQ(draw_profile(cfg, d).datapath, Datapath::kQuantized);
}

TEST(FleetProfile, PinnedRangesMakeHomogeneousFleets) {
  FleetConfig cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  cfg.profile.p_sa_min = cfg.profile.p_sa_max = 0.03;
  cfg.profile.aging_min = cfg.profile.aging_max = 0.0;  // aging off, pinned
  cfg.profile.traffic_min = cfg.profile.traffic_max = 10;
  for (int d = 0; d < 6; ++d) {
    const DeviceProfile p = draw_profile(cfg, d);
    EXPECT_EQ(p.p_sa, 0.03);
    EXPECT_EQ(p.aging_per_interval, 0.0);
    EXPECT_EQ(p.batches_per_tick, 10);
  }
}

TEST(FleetConfigValidate, RejectsOutOfRangeKnobs) {
  FleetConfig cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  cfg.num_devices = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  cfg.accuracy_floor = 1.5;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  cfg.profile.traffic_min = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  cfg.profile.p_sa_min = 0.0;  // log-uniform needs a positive lower edge
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

// --- Survival math -----------------------------------------------------------

TEST(FleetSurvival, KaplanMeierProductOverHandBuiltTimeline) {
  std::vector<TickAggregate> timeline(3);
  timeline[0].tick = 0;
  timeline[0].alive = 10;
  timeline[0].deaths = 2;  // S = 0.8
  timeline[1].tick = 1;
  timeline[1].alive = 8;
  timeline[1].deaths = 0;  // S = 0.8
  timeline[2].tick = 2;
  timeline[2].alive = 8;
  timeline[2].deaths = 4;  // S = 0.4
  const std::vector<double> curve = survival_curve(timeline);
  ASSERT_EQ(curve.size(), std::size_t{3});
  EXPECT_DOUBLE_EQ(curve[0], 0.8);
  EXPECT_DOUBLE_EQ(curve[1], 0.8);
  EXPECT_DOUBLE_EQ(curve[2], 0.4);

  timeline[1].repairs = 3;
  timeline[2].scrubs = 5;
  // Deaths at ticks 0,0,2,2,2,2; four survivors censored at the horizon (3).
  const std::vector<std::int64_t> deaths = {0, 0, 2, 2, 2, 2, -1, -1, -1, -1};
  const FleetSummary s = summarize_fleet(timeline, deaths, 25.0, 1.0);
  EXPECT_EQ(s.devices, 10);
  EXPECT_EQ(s.survivors, 4);
  EXPECT_DOUBLE_EQ(s.survival_fraction, 0.4);
  EXPECT_DOUBLE_EQ(s.mean_lifetime_ticks, (0 + 0 + 2 + 2 + 2 + 2 + 3 + 3 + 3 + 3) / 10.0);
  EXPECT_EQ(s.repairs, 3);
  EXPECT_EQ(s.scrubs, 5);
  EXPECT_DOUBLE_EQ(s.total_cost, 3 * 25.0 + 5 * 1.0);
}

TEST(FleetSurvival, TickAggregateCodecRoundTripsAndScreensCounts) {
  TickAggregate agg;
  agg.tick = 7;
  agg.alive = 42;
  agg.deaths = 3;
  agg.acc_mean = 0.75;
  agg.acc_p10 = 0.5;
  agg.acc_p50 = 0.8;
  agg.acc_p90 = 0.95;
  agg.repairs = 2;
  agg.scrubs = 9;
  agg.detections = 4;
  agg.aged_cells = 11;
  agg.transient_cells = 1;
  ByteWriter out;
  agg.encode(out);
  ByteReader in(out.bytes(), "FLTL");
  const TickAggregate back = TickAggregate::decode(in);
  in.expect_done();
  ByteWriter out2;
  back.encode(out2);
  EXPECT_EQ(out.bytes(), out2.bytes());

  agg.deaths = agg.alive + 1;  // more deaths than devices at risk
  ByteWriter bad;
  agg.encode(bad);
  ByteReader bad_in(bad.bytes(), "FLTL");
  EXPECT_THROW((void)TickAggregate::decode(bad_in), CheckpointError);
}

TEST(FleetSurvival, SparklineSamplesTheCurve) {
  EXPECT_EQ(survival_sparkline({}, 10), "");
  const std::string full = survival_sparkline({1.0, 1.0, 1.0}, 3);
  const std::string gone = survival_sparkline({0.0}, 4);
  EXPECT_EQ(full, "███");
  EXPECT_EQ(gone, "▁");
  EXPECT_THROW((void)survival_sparkline({1.0}, 0), ContractViolation);
}

// --- Whole-fleet simulation --------------------------------------------------

TEST(FleetSim, LifecyclesHappenAndPoliciesActDifferently) {
  const auto model = fleet_model();
  FleetSimulator never(*model, small_fleet(RepairPolicyKind::kNeverRepair));
  const FleetSummary never_summary = never.run();
  EXPECT_EQ(never_summary.repairs, 0);
  EXPECT_EQ(never_summary.scrubs, 0);
  EXPECT_LT(never_summary.survival_fraction, 1.0) << "fleet this defective must lose devices";
  EXPECT_GT(never_summary.survivors, 0) << "benign-profile devices must survive";
  EXPECT_GT(never_summary.detections, 0) << "quantized devices must flag faults";

  FleetSimulator scheduled(*model, small_fleet(RepairPolicyKind::kScheduledRefresh));
  EXPECT_GT(scheduled.run().scrubs, 0) << "cadence policy must refresh";

  FleetSimulator gated(*model, small_fleet(RepairPolicyKind::kCanaryGated));
  EXPECT_GT(gated.run().repairs, 0) << "score this low must trigger swaps";

  // Dead devices stay dead: at-risk counts never increase over the timeline.
  for (std::size_t t = 1; t < never.timeline().size(); ++t) {
    EXPECT_LE(never.timeline()[t].alive, never.timeline()[t - 1].alive);
    EXPECT_EQ(never.timeline()[t].alive,
              never.timeline()[t - 1].alive - never.timeline()[t - 1].deaths);
  }
}

TEST(FleetSim, TimelineIsBitIdenticalAcrossThreadCounts) {
  const auto model = fleet_model();
  const FleetConfig cfg = small_fleet(RepairPolicyKind::kDetectionDrivenScrub);

  set_num_threads(1);
  FleetSimulator serial(*model, cfg);
  serial.run();
  const std::vector<std::uint8_t> serial_timeline = timeline_bytes(serial);

  set_num_threads(4);
  FleetSimulator threaded(*model, cfg);
  threaded.run();
  const std::vector<std::uint8_t> threaded_timeline = timeline_bytes(threaded);
  set_num_threads(0);

  EXPECT_EQ(serial_timeline, threaded_timeline);
  EXPECT_EQ(serial.death_ticks(), threaded.death_ticks());
}

TEST(FleetSim, RefreshHealsTransientsButPersistentFaultsReturn) {
  // One pinned quantized device with heavy transients and no aging: scrubs
  // must bring the engine back to exactly the manufacturing defect count.
  FleetConfig cfg = small_fleet(RepairPolicyKind::kScheduledRefresh);
  cfg.num_devices = 1;
  cfg.ticks = 6;
  cfg.accuracy_floor = 0.0;  // nothing dies; we watch the die state
  cfg.p_transient_per_tick = 0.02;
  cfg.profile.quantized_fraction = 1.0;
  cfg.profile.p_sa_min = cfg.profile.p_sa_max = 0.05;
  cfg.profile.aging_min = cfg.profile.aging_max = 0.0;
  cfg.policy_config.refresh_every_ticks = 1;  // scrub every tick

  const auto model = fleet_model();
  FleetSimulator sim(*model, cfg);
  sim.run();

  const VirtualDevice& dev = sim.device(0);
  EXPECT_GT(dev.transient_cells(), 0) << "upsets this frequent must land";
  EXPECT_GT(dev.scrubs(), 0);
  EXPECT_EQ(dev.aged_cells(), 0);
  EXPECT_EQ(dev.pool().generation(0), 0) << "refresh must not consume a device swap";
  // The last tick ends with a scrub (refresh_every_ticks=1), so the engines
  // hold exactly the persistent (manufacturing) faults again.
  EXPECT_EQ(dev.pool().deployment(0)->stuck_cells(), dev.pool().defect_map(0).fault_count());
}

TEST(FleetSim, FloatDevicesTakeNoTransientsAndNeverFlag) {
  FleetConfig cfg = small_fleet(RepairPolicyKind::kNeverRepair);
  cfg.profile.quantized_fraction = 0.0;  // all-float fleet
  cfg.p_transient_per_tick = 0.02;
  const auto model = fleet_model();
  FleetSimulator sim(*model, cfg);
  const FleetSummary summary = sim.run();
  EXPECT_EQ(summary.detections, 0);
  for (const TickAggregate& agg : sim.timeline()) EXPECT_EQ(agg.transient_cells, 0);
}

}  // namespace
}  // namespace ftpim::fleet
