// End-to-end integration: the paper's full pipeline at miniature scale —
// pretrain -> observe SAF fragility -> FT-train (both schemes) -> verify the
// rescue and the Stability Score improvement; plus the prune-then-harden
// pipeline with mask preservation.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/evaluator.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/stability.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/resnet.hpp"
#include "src/prune/magnitude_pruner.hpp"
#include "src/prune/sparsity.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

struct Pipeline {
  std::unique_ptr<InMemoryDataset> train;
  std::unique_ptr<InMemoryDataset> test;
  std::unique_ptr<Sequential> model;
  TrainConfig tc;

  Pipeline() {
    SynthVisionConfig cfg;
    cfg.num_classes = 4;
    cfg.image_size = 8;
    cfg.samples = 256;
    cfg.seed = 99;
    train = make_synthvision(cfg, 1);
    cfg.samples = 128;
    test = make_synthvision(cfg, 2);
    model = make_resnet(ResNetConfig{.depth = 8, .classes = 4, .base_width = 4, .seed = 1});
    tc.epochs = 5;
    tc.batch_size = 32;
    tc.sgd.lr = 0.05f;
    tc.augment.enabled = false;
    tc.seed = 3;
  }
};

TEST(Integration, FullPaperPipelineAtMiniatureScale) {
  Pipeline p;
  Trainer(*p.model, *p.train, p.tc).run();
  const double acc_pretrain = evaluate_accuracy(*p.model, *p.test);
  EXPECT_GT(acc_pretrain, 0.5);  // learned something real (chance 0.25)

  const double rate = 0.05;
  DefectEvalConfig cfg;
  cfg.num_runs = 6;
  cfg.seed = 7;
  const double acc_defect_before =
      evaluate_under_defects(*p.model, *p.test, rate, cfg).mean_acc;
  EXPECT_LT(acc_defect_before, acc_pretrain);  // SAF hurts

  // FT-train a copy with each scheme.
  double best_defect_after = 0.0;
  for (const FtScheme scheme : {FtScheme::kOneShot, FtScheme::kProgressive}) {
    auto ft_model =
        make_resnet(ResNetConfig{.depth = 8, .classes = 4, .base_width = 4, .seed = 1});
    load_state_dict_into(*ft_model, state_dict_of(*p.model));
    FtTrainConfig ft;
    ft.base = p.tc;
    ft.base.epochs = scheme == FtScheme::kProgressive ? 2 : 5;
    ft.scheme = scheme;
    ft.target_p_sa = rate;
    FaultTolerantTrainer(*ft_model, *p.train, ft).run();

    const double acc_retrain = evaluate_accuracy(*ft_model, *p.test);
    const double acc_defect_after =
        evaluate_under_defects(*ft_model, *p.test, rate, cfg).mean_acc;
    best_defect_after = std::max(best_defect_after, acc_defect_after);

    const double ss_before =
        stability_score({acc_pretrain, acc_pretrain, acc_defect_before});
    const double ss_after = stability_score({acc_pretrain, acc_retrain, acc_defect_after});
    // The paper's core claim, at any scale: FT training improves the
    // robustness/accuracy trade-off.
    EXPECT_GT(ss_after, ss_before * 0.9)
        << (scheme == FtScheme::kOneShot ? "one-shot" : "progressive");
  }
  EXPECT_GT(best_defect_after, acc_defect_before);
}

TEST(Integration, PruneThenHardenPreservesMasksAndRobustness) {
  Pipeline p;
  Trainer(*p.model, *p.train, p.tc).run();

  const auto masks = magnitude_prune(*p.model, MagnitudePruneConfig{.sparsity = 0.5});
  {
    TrainConfig ft_tc = p.tc;
    ft_tc.sgd.lr = 0.01f;
    ft_tc.epochs = 2;
    Trainer trainer(*p.model, *p.train, ft_tc);
    for (const PruneMask& m : masks) trainer.optimizer().set_mask(m.param, m.mask);
    trainer.run();
  }
  EXPECT_NEAR(model_sparsity(*p.model), 0.5, 0.02);

  const double rate = 0.05;
  DefectEvalConfig cfg;
  cfg.num_runs = 4;
  const double before = evaluate_under_defects(*p.model, *p.test, rate, cfg).mean_acc;

  FtTrainConfig ft;
  ft.base = p.tc;
  ft.base.epochs = 4;
  ft.base.sgd.lr = 0.01f;
  ft.target_p_sa = rate;
  FaultTolerantTrainer(*p.model, *p.train, ft).run();
  // Re-apply masks (FT training's straight-through updates can move pruned
  // weights; deployment re-zeroes them).
  for (const PruneMask& m : masks) {
    apply_mask(const_cast<Param*>(m.param)->value, m.mask);
  }
  EXPECT_NEAR(model_sparsity(*p.model), 0.5, 0.02);
  const double after = evaluate_under_defects(*p.model, *p.test, rate, cfg).mean_acc;
  EXPECT_GT(after, before - 0.05);  // not worse; typically much better
}

TEST(Integration, CheckpointRoundTripPreservesBehaviour) {
  Pipeline p;
  Trainer(*p.model, *p.train, p.tc).run();
  const std::string path = ::testing::TempDir() + "/ftpim_integration_ckpt.bin";
  save_state_dict(state_dict_of(*p.model), path);

  auto restored = make_resnet(ResNetConfig{.depth = 8, .classes = 4, .base_width = 4, .seed = 2});
  load_state_dict_into(*restored, load_state_dict(path));
  EXPECT_DOUBLE_EQ(evaluate_accuracy(*restored, *p.test),
                   evaluate_accuracy(*p.model, *p.test));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftpim
