#include <gtest/gtest.h>

#include <memory>

#include "src/core/device_specific.hpp"
#include "src/core/evaluator.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/small_cnn.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

struct DsFixture {
  std::unique_ptr<InMemoryDataset> train;
  std::unique_ptr<InMemoryDataset> test;
  std::unique_ptr<Sequential> model;
  TrainConfig tc;

  DsFixture() {
    SynthVisionConfig cfg;
    cfg.num_classes = 3;
    cfg.image_size = 8;
    cfg.samples = 192;
    cfg.seed = 44;
    train = make_synthvision(cfg, 1);
    cfg.samples = 96;
    test = make_synthvision(cfg, 2);
    model = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 4, .classes = 3, .seed = 9});
    tc.epochs = 4;
    tc.batch_size = 32;
    tc.sgd.lr = 0.05f;
    tc.augment.enabled = false;
  }
};

TEST(EvaluateOnDevice, DeterministicPerDeviceAndRestores) {
  DsFixture s;
  const StateDict before = state_dict_of(*s.model);
  const double a1 = evaluate_on_device(*s.model, *s.test, 0.05, kPaperSa0Fraction, {}, 99, 0);
  const double a2 = evaluate_on_device(*s.model, *s.test, 0.05, kPaperSa0Fraction, {}, 99, 0);
  EXPECT_DOUBLE_EQ(a1, a2);
  for (const Param* p : parameters_of(*s.model)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f));
  }
}

TEST(EvaluateOnDevice, DifferentDevicesDifferentMaps) {
  DsFixture s;
  Trainer(*s.model, *s.train, s.tc).run();
  // At a damaging rate, different devices give different accuracies (w.h.p.).
  const double a = evaluate_on_device(*s.model, *s.test, 0.1, kPaperSa0Fraction, {}, 99, 0);
  const double b = evaluate_on_device(*s.model, *s.test, 0.1, kPaperSa0Fraction, {}, 99, 1);
  const double c = evaluate_on_device(*s.model, *s.test, 0.1, kPaperSa0Fraction, {}, 99, 2);
  EXPECT_TRUE(a != b || b != c);
}

TEST(DeviceSpecificRetrain, RescuesTargetDevice) {
  DsFixture s;
  Trainer(*s.model, *s.train, s.tc).run();

  const double rate = 0.1;
  const std::uint64_t seed = 1234;
  const double before = evaluate_on_device(*s.model, *s.test, rate, kPaperSa0Fraction, {}, seed, 0);

  DeviceSpecificConfig ds;
  ds.base = s.tc;
  ds.base.sgd.lr = 0.01f;
  ds.p_sa = rate;
  ds.defect_master_seed = seed;
  ds.device_index = 0;
  device_specific_retrain(*s.model, *s.train, ds);

  const double after = evaluate_on_device(*s.model, *s.test, rate, kPaperSa0Fraction, {}, seed, 0);
  EXPECT_GT(after, before - 0.02);  // typically a large improvement
  // And the model's stored weights are clean/finite after training.
  for (const Param* p : parameters_of(*s.model)) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(p->value[i]));
    }
  }
}

TEST(DeviceSpecificRetrain, TransfersWorseThanOwnDevice) {
  DsFixture s;
  Trainer(*s.model, *s.train, s.tc).run();
  DeviceSpecificConfig ds;
  ds.base = s.tc;
  ds.base.sgd.lr = 0.01f;
  ds.p_sa = 0.15;  // strong defects make the specialization visible
  ds.defect_master_seed = 5555;
  ds.device_index = 0;
  device_specific_retrain(*s.model, *s.train, ds);

  const double own =
      evaluate_on_device(*s.model, *s.test, ds.p_sa, kPaperSa0Fraction, {}, 5555, 0);
  double others = 0.0;
  const int n_others = 4;
  for (int d = 1; d <= n_others; ++d) {
    others += evaluate_on_device(*s.model, *s.test, ds.p_sa, kPaperSa0Fraction, {}, 5555,
                                 static_cast<std::uint64_t>(d));
  }
  others /= n_others;
  EXPECT_GE(own, others - 0.02);  // specialization: own device at least as good
}

}  // namespace
}  // namespace ftpim
