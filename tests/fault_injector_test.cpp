#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/models/mlp.hpp"
#include "src/reram/fault_injector.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

using testing::random_tensor;

TEST(ApplyFault, ZeroRateIsIdentity) {
  Tensor w = random_tensor(Shape{100}, 1);
  const Tensor original = w;
  Rng rng(2);
  const InjectionStats stats = apply_stuck_at_faults(w, StuckAtFaultModel(0.0), {}, rng);
  EXPECT_TRUE(w.allclose(original, 0.0f, 0.0f));
  EXPECT_EQ(stats.faulted_cells, 0);
  EXPECT_EQ(stats.affected_weights, 0);
  EXPECT_EQ(stats.cells, 200);
}

TEST(ApplyFault, StatsTrackCellRate) {
  Tensor w = random_tensor(Shape{50000}, 3);
  Rng rng(4);
  const InjectionStats stats = apply_stuck_at_faults(w, StuckAtFaultModel(0.02), {}, rng);
  EXPECT_NEAR(stats.cell_fault_rate(), 0.02, 0.003);
  EXPECT_GT(stats.affected_weights, 0);
  EXPECT_LE(stats.affected_weights, stats.faulted_cells);
}

TEST(ApplyFault, FaultedWeightsStayWithinFullScale) {
  Tensor w = random_tensor(Shape{10000}, 5);
  const float wmax = w.abs_max();
  Rng rng(6);
  apply_stuck_at_faults(w, StuckAtFaultModel(0.5), {}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w[i]), wmax * (1.0f + 1e-5f));
  }
}

TEST(ApplyFault, AllStuckOnSaturatesZeroWeights) {
  // All cells stuck on: G+ = G- = Gmax -> effective weight 0 for every value.
  Tensor w = random_tensor(Shape{64}, 7);
  Rng rng(8);
  apply_stuck_at_faults(w, StuckAtFaultModel(1.0, /*sa0_fraction=*/0.0), {}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i) EXPECT_NEAR(w[i], 0.0f, 1e-5f);
}

TEST(ApplyFault, AllStuckOffZeroesEverything) {
  Tensor w = random_tensor(Shape{64}, 9);
  Rng rng(10);
  apply_stuck_at_faults(w, StuckAtFaultModel(1.0, /*sa0_fraction=*/1.0), {}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i) EXPECT_NEAR(w[i], 0.0f, 1e-5f);
}

TEST(ApplyFault, SingleStuckOnCellGivesFullScale) {
  // With sa0_fraction=0 (all faults stuck-ON) a faulted pair for a weight w
  // can read back only: +wmax (G+ stuck on), w - wmax (G- stuck on), or 0
  // (both stuck on). With tiny w = 0.001 the magnitudes are ~0, ~0.999, ~1.
  const float w_small = 0.001f;
  Tensor w(Shape{1000}, w_small);
  w[0] = 1.0f;  // sets w_max
  Rng rng(11);
  Tensor mask;
  apply_stuck_at_faults(w, StuckAtFaultModel(0.5, 0.0), {}, rng, &mask);
  int fullscale = 0;
  for (std::int64_t i = 1; i < w.numel(); ++i) {
    if (mask[i] == 0.0f) continue;
    const float a = std::fabs(w[i]);
    const bool both_stuck = a < 1e-5f;
    const bool pos_stuck = std::fabs(w[i] - 1.0f) < 1e-5f;
    const bool neg_stuck = std::fabs(w[i] - (w_small - 1.0f)) < 1e-5f;
    EXPECT_TRUE(both_stuck || pos_stuck || neg_stuck) << w[i];
    if (pos_stuck || neg_stuck) ++fullscale;
  }
  EXPECT_GT(fullscale, 100);  // plenty of single-cell faults at p=0.5
}

TEST(ApplyFault, HitMaskMarksExactlyChangedWeights) {
  Tensor w = random_tensor(Shape{5000}, 12);
  const Tensor original = w;
  Rng rng(13);
  Tensor mask;
  apply_stuck_at_faults(w, StuckAtFaultModel(0.05), {}, rng, &mask);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    if (w[i] != original[i]) {
      EXPECT_EQ(mask[i], 1.0f) << i;
    } else {
      // mask=1 with equal value is possible only when the stuck value equals
      // the programmed value — not counted as affected.
      if (mask[i] == 1.0f) ADD_FAILURE() << "mask set but weight unchanged at " << i;
    }
  }
}

TEST(ApplyFault, DeterministicForSeed) {
  Tensor w1 = random_tensor(Shape{2000}, 14);
  Tensor w2 = w1;
  Rng rng1(15), rng2(15);
  apply_stuck_at_faults(w1, StuckAtFaultModel(0.03), {}, rng1);
  apply_stuck_at_faults(w2, StuckAtFaultModel(0.03), {}, rng2);
  EXPECT_TRUE(w1.allclose(w2, 0.0f, 0.0f));
}

TEST(ApplyFault, QuantizationPathRoundsCleanWeights) {
  InjectorConfig config;
  config.quant_levels = 4;
  Tensor w = random_tensor(Shape{256}, 16);
  Rng rng(17);
  apply_stuck_at_faults(w, StuckAtFaultModel(0.0), config, rng);
  // With 4 levels the weight values must come from a small discrete set.
  std::set<int> buckets;
  const float wmax = 1e-4f + w.abs_max();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    buckets.insert(static_cast<int>(std::lround(w[i] / wmax * 3.0f)));
  }
  EXPECT_LE(buckets.size(), 7u);  // 2*levels - 1 differential values
}

TEST(ApplyFault, ZeroTensorIsSafe) {
  Tensor w(Shape{128});
  Rng rng(18);
  EXPECT_NO_THROW(apply_stuck_at_faults(w, StuckAtFaultModel(0.1), {}, rng));
  for (std::int64_t i = 0; i < w.numel(); ++i) EXPECT_TRUE(std::isfinite(w[i]));
}

TEST(InjectIntoModel, OnlyTouchesCrossbarWeights) {
  auto net = make_mlp({8, 16, 4}, 19);
  // Record biases before.
  std::vector<Tensor> biases;
  for (const Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kBias) biases.push_back(p->value);
  }
  Rng rng(20);
  const InjectionStats stats = inject_into_model(*net, StuckAtFaultModel(0.3), {}, rng);
  EXPECT_GT(stats.faulted_cells, 0);
  std::size_t b = 0;
  for (const Param* p : parameters_of(*net)) {
    if (p->kind == ParamKind::kBias) {
      EXPECT_TRUE(p->value.allclose(biases[b++], 0.0f, 0.0f)) << p->name;
    }
  }
}

TEST(WeightFaultGuard, RestoresCleanWeights) {
  auto net = make_mlp({6, 12, 3}, 21);
  const StateDict before = state_dict_of(*net);
  {
    Rng rng(22);
    WeightFaultGuard guard(*net, StuckAtFaultModel(0.2), {}, rng);
    EXPECT_GT(guard.stats().faulted_cells, 0);
    // Weights are perturbed inside the scope.
    bool changed = false;
    for (const Param* p : parameters_of(*net)) {
      if (p->kind != ParamKind::kCrossbarWeight) continue;
      if (!p->value.allclose(before.at(p->name), 0.0f, 0.0f)) changed = true;
    }
    EXPECT_TRUE(changed);
  }
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f)) << p->name;
  }
}

TEST(WeightFaultGuard, RestoreIsIdempotent) {
  auto net = make_mlp({4, 4}, 23);
  const StateDict before = state_dict_of(*net);
  Rng rng(24);
  WeightFaultGuard guard(*net, StuckAtFaultModel(0.5), {}, rng);
  guard.restore();
  guard.restore();
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f));
  }
}

TEST(WeightFaultGuard, RestoresWhenEvaluationThrows) {
  // The guard is the exception-safety story of every evaluate-under-faults
  // scope: clean weights must come back even when the evaluation throws.
  auto net = make_mlp({6, 12, 3}, 29);
  const StateDict before = state_dict_of(*net);
  EXPECT_THROW(
      {
        Rng rng(30);
        WeightFaultGuard guard(*net, StuckAtFaultModel(0.3), {}, rng);
        throw std::runtime_error("evaluation blew up");
      },
      std::runtime_error);
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f)) << p->name;
  }
}

TEST(ApplyFaultToCopy, SourceUntouchedAndMatchesInPlace) {
  const Tensor src = random_tensor(Shape{4096}, 31);
  const Tensor original = src;

  Tensor dst;
  Tensor mask;
  Rng rng_copy(32);
  const InjectionStats s1 =
      apply_faults_to_copy(src, dst, StuckAtFaultModel(0.05), {}, rng_copy, &mask);
  EXPECT_TRUE(src.allclose(original, 0.0f, 0.0f));

  // Same RNG seed through the in-place path must give the same read-back.
  Tensor inplace = src;
  Rng rng_inplace(32);
  const InjectionStats s2 = apply_stuck_at_faults(inplace, StuckAtFaultModel(0.05), {}, rng_inplace);
  EXPECT_TRUE(dst.allclose(inplace, 0.0f, 0.0f));
  EXPECT_EQ(s1.faulted_cells, s2.faulted_cells);
  EXPECT_EQ(s1.affected_weights, s2.affected_weights);

  // Storage reuse contract: a second call with a matching shape keeps dst's
  // allocation.
  const float* dst_storage = dst.data();
  Rng rng_again(33);
  apply_faults_to_copy(src, dst, StuckAtFaultModel(0.05), {}, rng_again, &mask);
  EXPECT_EQ(dst.data(), dst_storage);
}

TEST(FaultInjectionSession, InjectRestoreCyclesAreDeterministic) {
  auto net = make_mlp({6, 12, 3}, 34);
  const StateDict before = state_dict_of(*net);

  FaultInjectionSession session(*net);
  Rng rng_a(35);
  session.inject(StuckAtFaultModel(0.2), {}, rng_a);
  const StateDict faulted_first = state_dict_of(*net);
  session.restore();
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f)) << p->name;
  }

  // Re-injecting with the same seed through the SAME session (reused
  // buffers) reproduces the first faulted state bitwise.
  Rng rng_b(35);
  session.inject(StuckAtFaultModel(0.2), {}, rng_b);
  const StateDict faulted_second = state_dict_of(*net);
  for (const auto& [name, tensor] : faulted_first) {
    EXPECT_TRUE(tensor.allclose(faulted_second.at(name), 0.0f, 0.0f)) << name;
  }
  session.restore();
  session.restore();  // idempotent
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f)) << p->name;
  }
}

TEST(FaultInjectionSession, InjectWithoutRestoreRedrawsFromCleanWeights) {
  // inject() on an already-injected session must restore first: the second
  // draw applies to clean weights, not faulted-on-faulted ones.
  auto net = make_mlp({4, 8, 2}, 36);
  FaultInjectionSession session(*net);
  Rng rng1(37);
  session.inject(StuckAtFaultModel(0.3), {}, rng1);
  Rng rng2(37);
  session.inject(StuckAtFaultModel(0.3), {}, rng2);  // no restore in between
  const StateDict direct = state_dict_of(*net);
  session.restore();

  Rng rng3(37);
  session.inject(StuckAtFaultModel(0.3), {}, rng3);
  const StateDict clean_draw = state_dict_of(*net);
  session.restore();
  for (const auto& [name, tensor] : direct) {
    EXPECT_TRUE(tensor.allclose(clean_draw.at(name), 0.0f, 0.0f)) << name;
  }
}

TEST(FaultInjectionSession, DestructorRestores) {
  auto net = make_mlp({4, 8, 2}, 38);
  const StateDict before = state_dict_of(*net);
  {
    FaultInjectionSession session(*net);
    Rng rng(39);
    session.inject(StuckAtFaultModel(0.5), {}, rng);
  }
  for (const Param* p : parameters_of(*net)) {
    EXPECT_TRUE(p->value.allclose(before.at(p->name), 0.0f, 0.0f)) << p->name;
  }
}

TEST(WeightFaultGuard, HitMasksAlignWithParams) {
  auto net = make_mlp({10, 10, 10}, 25);
  Rng rng(26);
  WeightFaultGuard guard(*net, StuckAtFaultModel(0.1), {}, rng);
  ASSERT_EQ(guard.faulted_params().size(), guard.hit_masks().size());
  for (std::size_t k = 0; k < guard.faulted_params().size(); ++k) {
    EXPECT_EQ(guard.faulted_params()[k]->value.shape(), guard.hit_masks()[k].shape());
    EXPECT_EQ(guard.faulted_params()[k]->kind, ParamKind::kCrossbarWeight);
  }
}

class InjectionRateTest : public ::testing::TestWithParam<double> {};

TEST_P(InjectionRateTest, ObservedRateTracksTarget) {
  const double p = GetParam();
  Tensor w = random_tensor(Shape{100000}, 27);
  Rng rng(28);
  const InjectionStats stats = apply_stuck_at_faults(w, StuckAtFaultModel(p), {}, rng);
  EXPECT_NEAR(stats.cell_fault_rate(), p, std::max(0.002, p * 0.15));
}

INSTANTIATE_TEST_SUITE_P(Rates, InjectionRateTest,
                         ::testing::Values(0.001, 0.005, 0.01, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace ftpim
