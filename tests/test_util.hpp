// Shared helpers for ftpim tests: random tensors and finite-difference
// gradient checking of Module implementations.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim::testing {

inline Tensor random_tensor(Shape shape, std::uint64_t seed, float scale = 1.0f) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = scale * rng.normal();
  return t;
}

/// Scalar objective used by gradient checks: sum(output * probe), whose
/// gradient wrt the output is simply `probe`.
inline float probed_sum(const Tensor& out, const Tensor& probe) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    acc += static_cast<double>(out[i]) * probe[i];
  }
  return static_cast<float>(acc);
}

/// Max relative error between analytic and numeric input gradients of a
/// module, via central differences. Module must be deterministic in
/// training mode for repeated forwards on perturbed inputs (true for all
/// ftpim layers; BatchNorm recomputes batch stats which the numeric
/// derivative correctly accounts for).
inline double check_input_gradient(Module& module, const Tensor& input, std::uint64_t probe_seed,
                                   float eps = 1e-2f) {
  Tensor out = module.forward(input, /*training=*/true);
  const Tensor probe = random_tensor(out.shape(), probe_seed);
  const Tensor analytic = module.backward(probe);

  double max_err = 0.0;
  Tensor x = input;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x[i];
    x[i] = saved + eps;
    const float up = probed_sum(module.forward(x, true), probe);
    x[i] = saved - eps;
    const float down = probed_sum(module.forward(x, true), probe);
    x[i] = saved;
    const double numeric = static_cast<double>(up - down) / (2.0 * eps);
    const double err = std::fabs(numeric - analytic[i]) /
                       std::max(1.0, std::fabs(numeric) + std::fabs(analytic[i]));
    max_err = std::max(max_err, err);
  }
  return max_err;
}

/// Max relative error of parameter gradients (all params of the module).
inline double check_param_gradients(Module& module, const Tensor& input,
                                    std::uint64_t probe_seed, float eps = 1e-2f) {
  Tensor out = module.forward(input, /*training=*/true);
  const Tensor probe = random_tensor(out.shape(), probe_seed);
  zero_grads(module);
  (void)module.backward(probe);

  double max_err = 0.0;
  for (Param* p : parameters_of(module)) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float up = probed_sum(module.forward(input, true), probe);
      p->value[i] = saved - eps;
      const float down = probed_sum(module.forward(input, true), probe);
      p->value[i] = saved;
      const double numeric = static_cast<double>(up - down) / (2.0 * eps);
      const double err = std::fabs(numeric - p->grad[i]) /
                         std::max(1.0, std::fabs(numeric) + std::fabs(p->grad[i]));
      max_err = std::max(max_err, err);
    }
  }
  return max_err;
}

}  // namespace ftpim::testing
