// Tests for the bench harness helpers (bench_common.hpp) — grid trimming,
// header formatting, percent conversion, shape-check accounting.
#include <gtest/gtest.h>

#include "../bench/bench_common.hpp"

namespace ftpim::bench {
namespace {

RunScale named(const char* name) {
  RunScale s;
  s.name = name;
  return s;
}

TEST(BenchGrids, FullScaleUsesPaperGrids) {
  EXPECT_EQ(test_rates_for(named("full")), paper_test_rates());
  EXPECT_EQ(train_rates_for(named("full")), paper_train_rates());
}

TEST(BenchGrids, QuickGridsAreSubsetsOfPaperGrids) {
  const auto all_test = paper_test_rates();
  for (const double r : test_rates_for(named("quick"))) {
    EXPECT_NE(std::find(all_test.begin(), all_test.end(), r), all_test.end()) << r;
  }
  const auto all_train = paper_train_rates();
  for (const double r : train_rates_for(named("quick"))) {
    EXPECT_NE(std::find(all_train.begin(), all_train.end(), r), all_train.end()) << r;
  }
}

TEST(BenchGrids, GridsAscend) {
  for (const char* scale : {"quick", "medium", "full"}) {
    const auto rates = test_rates_for(named(scale));
    for (std::size_t i = 1; i < rates.size(); ++i) EXPECT_GT(rates[i], rates[i - 1]) << scale;
  }
}

TEST(BenchHelpers, RateHeadersFormat) {
  const auto headers = rate_headers("Method", {0.0, 0.001, 0.1});
  ASSERT_EQ(headers.size(), 4u);
  EXPECT_EQ(headers[0], "Method");
  EXPECT_EQ(headers[1], "0");
  EXPECT_EQ(headers[2], "0.001");
  EXPECT_EQ(headers[3], "0.1");
}

TEST(BenchHelpers, ToPercentScales) {
  const auto pct = to_percent({0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(pct[0], 0.0);
  EXPECT_DOUBLE_EQ(pct[1], 50.0);
  EXPECT_DOUBLE_EQ(pct[2], 100.0);
}

TEST(BenchHelpers, ShapeCheckCountsBothOutcomes) {
  ShapeCheck check;
  check.expect(true, "holds");
  check.expect(false, "fails");
  check.expect(true, "holds too");
  EXPECT_EQ(check.passed, 2);
  EXPECT_EQ(check.failed, 1);
}

}  // namespace
}  // namespace ftpim::bench
