#include <gtest/gtest.h>

#include "src/tensor/tensor.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace ftpim {
namespace {

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  const Tensor t(Shape{4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ShapeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(Tensor, NegativeDimThrows) { EXPECT_THROW(Tensor(Shape{-1, 2}), std::invalid_argument); }

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{2, 3});
  EXPECT_EQ(r.at(1, 2), 6.0f);
  EXPECT_THROW(t.reshaped(Shape{5}), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({-3, 1, 2});
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
}

TEST(TensorOps, ElementwiseAndAxpy) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({4, 5, 6});
  EXPECT_TRUE(add(a, b).allclose(Tensor::from_vector({5, 7, 9})));
  EXPECT_TRUE(sub(a, b).allclose(Tensor::from_vector({-3, -3, -3})));
  EXPECT_TRUE(mul(a, b).allclose(Tensor::from_vector({4, 10, 18})));
  axpy_inplace(a, 2.0f, b);
  EXPECT_TRUE(a.allclose(Tensor::from_vector({9, 12, 15})));
}

TEST(TensorOps, MatmulSmall) {
  const Tensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor b(Shape{3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(c.allclose(Tensor(Shape{2, 2}, std::vector<float>{58, 64, 139, 154})));
}

TEST(TensorOps, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})), std::invalid_argument);
}

TEST(TensorOps, AccuracyAndArgmax) {
  const Tensor logits(Shape{2, 3}, std::vector<float>{0.1f, 0.9f, 0.0f, 2.0f, 1.0f, 0.5f});
  EXPECT_EQ(argmax_row(logits, 0), 1);
  EXPECT_EQ(argmax_row(logits, 1), 0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 2}), 0.5);
}

TEST(TensorOps, KthLargestAbs) {
  const Tensor t = Tensor::from_vector({-5, 1, 3, -2});
  EXPECT_FLOAT_EQ(kth_largest_abs(t, 1), 5.0f);
  EXPECT_FLOAT_EQ(kth_largest_abs(t, 2), 3.0f);
  EXPECT_FLOAT_EQ(kth_largest_abs(t, 4), 1.0f);
  EXPECT_THROW(kth_largest_abs(t, 0), std::invalid_argument);
  EXPECT_THROW(kth_largest_abs(t, 5), std::invalid_argument);
}

TEST(TensorOps, CountZeros) {
  EXPECT_EQ(count_zeros(Tensor::from_vector({0, 1, 0, 2})), 2);
}

}  // namespace
}  // namespace ftpim
