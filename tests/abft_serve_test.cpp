// Online fault detection in the serve layer: ABFT detections feeding the
// HealthMonitor, detection-triggered tile scrubs, and the escalation path
// from exhausted scrub retries to forced quarantine and repair. Suite names
// start with Abft*/Scrub* so scripts/ci.sh's TSan leg picks them up.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/models/small_cnn.hpp"
#include "src/nn/module.hpp"
#include "src/reram/defect_map.hpp"
#include "src/serve/health_monitor.hpp"
#include "src/serve/inference_server.hpp"
#include "test_util.hpp"

namespace ftpim::serve {
namespace {

std::unique_ptr<Module> make_model() {
  SmallCnnConfig cfg;
  cfg.image_size = 16;
  cfg.seed = 5;
  // Pin the first crossbar weight to zero: a stuck-on positive cell at
  // (o=0, i=0) is then a guaranteed level-domain change, so the transient
  // upset below is detectable regardless of what the random init drew.
  auto model = make_small_cnn(cfg);
  parameters_of(*model)[0]->value[0] = 0.0f;
  return model;
}

Tensor make_input(std::uint64_t seed) {
  return testing::random_tensor(Shape{3, 16, 16}, seed, 0.5f);
}

/// Deterministic single-worker quantized serving with ABFT armed: one
/// request per batch, greedy batching, manual clock, pristine fleet, ideal
/// ADC (exact integer tolerance — every detection is a true fault).
ServerConfig abft_server_config(ManualServeClock& clock) {
  ServerConfig cfg;
  cfg.queue_capacity = 128;
  cfg.batching.max_batch_size = 1;
  cfg.batching.max_linger_ns = 0;
  cfg.pool.num_replicas = 1;
  cfg.pool.p_sa = 0.0;
  cfg.pool.seed = 21;
  cfg.pool.engine = ReplicaEngine::kQuantized;
  cfg.pool.quantized.abft.enabled = true;
  cfg.pool.quantized.adc.bits = 0;
  cfg.clock = &clock;
  return cfg;
}

// --- HealthMonitor detection plumbing ----------------------------------------

HealthConfig tight_health() {
  HealthConfig h;
  h.window = 8;
  h.min_samples = 4;
  h.suspect_below = 0.95;
  h.quarantine_below = 0.60;
  return h;
}

TEST(AbftHealthMonitor, DetectionsDepressTheWindowAndAreCounted) {
  HealthMonitor mon(1, tight_health());
  ASSERT_TRUE(mon.config().detection_fails_window);
  for (int i = 0; i < 4; ++i) mon.record_detection(0, 2);
  // Four detections == four failure outcomes: past min_samples, score 0.
  EXPECT_EQ(mon.state(0), ReplicaHealth::kQuarantined);
  const auto snap = mon.snapshot();
  ASSERT_EQ(snap.size(), std::size_t{1});
  EXPECT_EQ(snap[0].detections, 4);
  EXPECT_EQ(snap[0].flagged_tiles, 8);
  EXPECT_EQ(snap[0].window_size, 4);
  EXPECT_FALSE(snap[0].forced);
}

TEST(AbftHealthMonitor, WindowCouplingCanBeDisabled) {
  HealthConfig h = tight_health();
  h.detection_fails_window = false;
  HealthMonitor mon(1, h);
  for (int i = 0; i < 8; ++i) mon.record_detection(0, 1);
  // Detections are tallied but the score never moves — escalation is then
  // the only path from detections to quarantine.
  EXPECT_EQ(mon.state(0), ReplicaHealth::kHealthy);
  const auto snap = mon.snapshot();
  EXPECT_EQ(snap[0].detections, 8);
  EXPECT_EQ(snap[0].window_size, 0);
  EXPECT_DOUBLE_EQ(snap[0].score, 1.0);
}

TEST(AbftHealthMonitor, ForcedQuarantineIsStickyUntilRepair) {
  HealthMonitor mon(1, tight_health());
  mon.force_quarantine(0);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kQuarantined);
  EXPECT_TRUE(mon.snapshot()[0].forced);
  // A perfect window cannot lift a forced quarantine...
  mon.record(0, true, 8);
  EXPECT_DOUBLE_EQ(mon.score(0), 1.0);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kQuarantined);
  // ...only the repair path can.
  mon.mark_repaired(0);
  EXPECT_EQ(mon.state(0), ReplicaHealth::kHealthy);
  const auto snap = mon.snapshot();
  EXPECT_FALSE(snap[0].forced);
  EXPECT_EQ(snap[0].repairs, 1);
}

// --- Transient upset: detect -> scrub -> heal, no repair ---------------------

struct TransientRun {
  std::vector<std::int64_t> predicted;
  std::vector<float> logits_before;  ///< probe answered before the upset
  std::vector<float> logits_after;   ///< same input answered after the scrub
  ServerStats stats;
  int generation = 0;
};

TransientRun run_transient_once() {
  const auto model = make_model();
  ManualServeClock clock(1'000'000);
  ServerConfig cfg = abft_server_config(clock);
  cfg.health.canary_every_batches = 1;
  cfg.health.canary_samples = 4;
  cfg.health.window = 8;
  cfg.health.min_samples = 4;

  // Land a transient stuck-on upset on the worker thread just before batch 3
  // runs: the positive cell of layer 0's weight (0, 0) — pinned to zero by
  // make_model(), so the fault flips its level from mid-scale to full-on.
  InferenceServer* srv = nullptr;
  int batch_no = 0;
  cfg.batch_hook = [&srv, &batch_no](int replica_id, std::vector<Request>&) {
    if (++batch_no == 3) {
      qinfer::QuantizedDeployment* dep = srv->pool().deployment(replica_id);
      ASSERT_NE(dep, nullptr);
      qinfer::QuantizedCrossbarEngine& eng = dep->engine(0);
      eng.apply_defect_map(DefectMap::from_faults(
          2 * eng.out_features() * eng.in_features(), {{0, FaultType::kStuckOn}}));
    }
  };
  InferenceServer server(*model, cfg);
  srv = &server;

  // Request 1 and request 6 carry the SAME input: one is answered by the
  // pristine engine, the other after the upset was scrubbed — healing must
  // restore bit-exact outputs without a re-clone.
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t seed = (i == 6) ? 501 : 500 + static_cast<std::uint64_t>(i);
    futures.push_back(server.submit(make_input(seed)));
  }
  server.start();
  server.drain();
  server.stop();

  TransientRun out;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    InferenceResult res = futures[i].get();
    out.predicted.push_back(res.predicted);
    if (i == 1) out.logits_before = res.logits.vec();
    if (i == 6) out.logits_after = res.logits.vec();
  }
  out.stats = server.stats();
  out.generation = server.pool().generation(0);
  return out;
}

TEST(AbftServe, TransientUpsetDetectedScrubbedAndHealedInPlace) {
  const TransientRun run = run_transient_once();
  // Detection latency is one batch: the upset batch itself is flagged, the
  // scrub answers it, and nothing else ever rings.
  EXPECT_EQ(run.stats.served, 8);
  EXPECT_EQ(run.stats.failed, 0);
  EXPECT_EQ(run.stats.abft_detections, 1);
  EXPECT_EQ(run.stats.abft_flagged_tiles, 1) << "one tile of layer 0 must be named";
  EXPECT_EQ(run.stats.abft_scrubs, 1);
  EXPECT_EQ(run.stats.abft_scrubbed_tiles, 1);
  EXPECT_EQ(run.stats.abft_escalations, 0);
  // The scrub healed the transient in place: no quarantine, no repair, the
  // device is still generation 0, and the post-batch canaries (which run
  // AFTER the scrub) never miss.
  EXPECT_EQ(run.stats.quarantines, 0);
  EXPECT_EQ(run.stats.repairs, 0);
  EXPECT_EQ(run.generation, 0);
  EXPECT_EQ(run.stats.canary_failures, 0);
  // Healed means bit-exact: the same input produces the same logits before
  // the upset and after the scrub.
  ASSERT_EQ(run.logits_before.size(), run.logits_after.size());
  EXPECT_EQ(std::memcmp(run.logits_before.data(), run.logits_after.data(),
                        run.logits_before.size() * sizeof(float)),
            0);
}

TEST(AbftServe, TransientLifecycleIsBitReproducible) {
  const TransientRun a = run_transient_once();
  const TransientRun b = run_transient_once();
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.logits_after, b.logits_after);
  EXPECT_EQ(a.stats.abft_detections, b.stats.abft_detections);
  EXPECT_EQ(a.stats.abft_flagged_tiles, b.stats.abft_flagged_tiles);
  EXPECT_EQ(a.stats.summary_line(), b.stats.summary_line());
  EXPECT_EQ(a.stats.health_line(), b.stats.health_line());
}

// --- Persistent damage: scrub retries exhausted -> quarantine -> repair ------

ServerStats run_escalation_once(int num_requests) {
  const auto model = make_model();
  ManualServeClock clock(1'000'000);
  ServerConfig cfg = abft_server_config(clock);
  // Aggressive wear: every served batch is an aging interval in which 20% of
  // the surviving cells fail. Aging faults live in the replica's persistent
  // map, so every scrub re-applies them — detections persist until the
  // retry budget (2) is exhausted and the replica is force-quarantined.
  cfg.aging.p_new_per_interval = 0.2;
  cfg.aging.interval_batches = 1;
  cfg.aging.seed = 404;
  cfg.health.canary_every_batches = 0;       // isolate the ABFT path
  cfg.health.detection_fails_window = false;  // escalation is the only route
  cfg.health.max_scrub_retries = 2;
  cfg.health.repair_on_quarantine = true;
  InferenceServer server(*model, cfg);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < num_requests; ++i) {
    futures.push_back(server.submit(make_input(700 + static_cast<std::uint64_t>(i))));
  }
  server.start();
  server.drain();
  server.stop();
  for (auto& f : futures) (void)f.get();  // accepted => answered, no throws
  return server.stats();
}

TEST(ScrubServe, PersistentDamageEscalatesThroughRetriesToRepair) {
  const ServerStats stats = run_escalation_once(20);
  EXPECT_EQ(stats.served, 20);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GT(stats.aged_cells, 0);
  // The full escalation ladder ran: aging-grown faults were detected, the
  // scrub budget was spent re-programming tiles (the persistent map keeps
  // resurfacing them), and exhaustion forced the quarantine + repair path.
  EXPECT_GE(stats.abft_detections, 3);
  EXPECT_GE(stats.abft_scrubs, 2);
  EXPECT_GT(stats.abft_scrubbed_tiles, 0);
  EXPECT_GE(stats.abft_escalations, 1);
  // With canaries off and window coupling disabled, every quarantine (and so
  // every repair) was ABFT-escalated.
  EXPECT_EQ(stats.quarantines, stats.abft_escalations);
  EXPECT_EQ(stats.repairs, stats.abft_escalations);
}

TEST(ScrubServe, EscalationLifecycleIsBitReproducible) {
  const ServerStats a = run_escalation_once(20);
  const ServerStats b = run_escalation_once(20);
  EXPECT_EQ(a.abft_detections, b.abft_detections);
  EXPECT_EQ(a.abft_flagged_tiles, b.abft_flagged_tiles);
  EXPECT_EQ(a.abft_scrubs, b.abft_scrubs);
  EXPECT_EQ(a.abft_scrubbed_tiles, b.abft_scrubbed_tiles);
  EXPECT_EQ(a.abft_escalations, b.abft_escalations);
  EXPECT_EQ(a.aged_cells, b.aged_cells);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.summary_line(), b.summary_line());
  EXPECT_EQ(a.health_line(), b.health_line());
}

// --- ScrubPolicy::kPeriodic: scheduled whole-replica refresh -----------------

TEST(ScrubServe, PeriodicRefreshHealsASilentUpsetWithoutAnyDetector) {
  const auto model = make_model();
  ManualServeClock clock(1'000'000);
  ServerConfig cfg = abft_server_config(clock);
  // Detector and canaries OFF: the upset below is completely silent. Only
  // the blind cadence — a whole-replica refresh every 2 served batches —
  // stands between the fault and the remaining traffic.
  cfg.pool.quantized.abft.enabled = false;
  cfg.health.canary_every_batches = 0;
  cfg.health.scrub_policy = ScrubPolicy::kPeriodic;
  cfg.health.scrub_every_batches = 2;

  InferenceServer* srv = nullptr;
  int batch_no = 0;
  cfg.batch_hook = [&srv, &batch_no](int replica_id, std::vector<Request>&) {
    if (++batch_no == 3) {
      qinfer::QuantizedDeployment* dep = srv->pool().deployment(replica_id);
      ASSERT_NE(dep, nullptr);
      qinfer::QuantizedCrossbarEngine& eng = dep->engine(0);
      eng.apply_defect_map(DefectMap::from_faults(
          2 * eng.out_features() * eng.in_features(), {{0, FaultType::kStuckOn}}));
    }
  };
  InferenceServer server(*model, cfg);
  srv = &server;

  // Request 1 is answered pristine; request 6 carries the SAME input and is
  // answered after the scheduled refresh (end of batch 4) re-programmed the
  // die — the silent upset must be gone, bit-exactly.
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t seed = (i == 6) ? 501 : 500 + static_cast<std::uint64_t>(i);
    futures.push_back(server.submit(make_input(seed)));
  }
  server.start();
  server.drain();
  server.stop();

  std::vector<float> logits_before;
  std::vector<float> logits_after;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    InferenceResult res = futures[i].get();
    if (i == 1) logits_before = res.logits.vec();
    if (i == 6) logits_after = res.logits.vec();
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, 8);
  EXPECT_EQ(stats.periodic_refreshes, 4) << "cadence 2 over 8 single-request batches";
  // Nothing detected, nothing escalated, nothing swapped: the heal came from
  // the schedule alone, without consuming a device generation.
  EXPECT_EQ(stats.abft_detections, 0);
  EXPECT_EQ(stats.abft_scrubs, 0);
  EXPECT_EQ(stats.quarantines, 0);
  EXPECT_EQ(stats.repairs, 0);
  EXPECT_EQ(server.pool().generation(0), 0);
  ASSERT_EQ(logits_before.size(), logits_after.size());
  EXPECT_EQ(std::memcmp(logits_before.data(), logits_after.data(),
                        logits_before.size() * sizeof(float)),
            0);
}

TEST(ScrubServe, PeriodicPolicyRequiresACadence) {
  HealthConfig h;
  h.scrub_policy = ScrubPolicy::kPeriodic;
  h.scrub_every_batches = 0;
  EXPECT_THROW(h.validate(), ContractViolation);
  h.scrub_every_batches = 4;
  EXPECT_NO_THROW(h.validate());
  EXPECT_STREQ(to_string(ScrubPolicy::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(ScrubPolicy::kDetectionDriven), "detection-driven");
}

}  // namespace
}  // namespace ftpim::serve
