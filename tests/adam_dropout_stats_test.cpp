#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/stats.hpp"
#include "src/nn/dropout.hpp"
#include "src/optim/adam.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

Param make_param(const char* name, std::vector<float> values, ParamKind kind) {
  const auto n = static_cast<std::int64_t>(values.size());
  return Param(name, Tensor(Shape{n}, std::move(values)), kind);
}

TEST(Adam, Validation) {
  Param p = make_param("w", {1.0f}, ParamKind::kCrossbarWeight);
  EXPECT_THROW(Adam({&p}, AdamConfig{.lr = 0.0f}), std::invalid_argument);
  EXPECT_THROW(Adam({&p}, AdamConfig{.lr = 0.1f, .beta1 = 1.0f}), std::invalid_argument);
  EXPECT_THROW(Adam({&p}, AdamConfig{.lr = 0.1f, .eps = 0.0f}), std::invalid_argument);
}

TEST(Adam, FirstStepMovesByApproxLr) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Param p = make_param("w", {0.0f, 0.0f}, ParamKind::kBias);
  p.grad = Tensor::from_vector({0.5f, -2.0f});
  Adam opt({&p}, AdamConfig{.lr = 0.01f});
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
  EXPECT_NEAR(p.value[1], 0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p = make_param("w", {0.0f}, ParamKind::kBias);
  Adam opt({&p}, AdamConfig{.lr = 0.05f});
  for (int i = 0; i < 500; ++i) {
    p.grad = Tensor::from_vector({2.0f * (p.value[0] - 3.0f)});
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, MaskFreezesPositions) {
  Param p = make_param("w", {0.0f, 1.0f}, ParamKind::kCrossbarWeight);
  Adam opt({&p}, AdamConfig{.lr = 0.1f});
  opt.set_mask(&p, Tensor::from_vector({0.0f, 1.0f}));
  p.grad = Tensor::from_vector({1.0f, 1.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);
  EXPECT_LT(p.value[1], 1.0f);
  EXPECT_THROW(opt.set_mask(&p, Tensor(Shape{3})), std::invalid_argument);
}

TEST(Adam, DecoupledDecayOnlyOnCrossbarWeights) {
  Param w = make_param("w", {1.0f}, ParamKind::kCrossbarWeight);
  Param b = make_param("b", {1.0f}, ParamKind::kBias);
  Adam opt({&w, &b}, AdamConfig{.lr = 0.1f, .weight_decay = 0.5f});
  opt.step();  // zero grads: only decay acts on w
  EXPECT_LT(w.value[0], 1.0f);
  EXPECT_FLOAT_EQ(b.value[0], 1.0f);
}

TEST(Adam, StateDictRoundTripContinuesExactly) {
  // Moments + step counter captured mid-run and restored into a fresh Adam
  // must continue the trajectory bit-exactly (the checkpoint/resume
  // contract). The step counter matters: bias correction depends on t.
  const AdamConfig cfg{.lr = 0.02f, .weight_decay = 0.1f};
  Param live = make_param("w", {0.1f, -0.4f, 2.0f}, ParamKind::kCrossbarWeight);
  Adam opt({&live}, cfg);
  auto grad_at = [](const Param& p, int step) {
    return Tensor::from_vector({p.value[0] + static_cast<float>(step) * 0.01f,
                                -p.value[1], 0.5f * p.value[2]});
  };
  for (int i = 0; i < 5; ++i) {
    live.grad = grad_at(live, i);
    opt.step();
  }

  const StateDict saved = opt.state_dict();
  Param resumed = make_param("w", {live.value[0], live.value[1], live.value[2]},
                             ParamKind::kCrossbarWeight);
  Adam opt2({&resumed}, cfg);
  opt2.load_state(saved);

  for (int i = 5; i < 10; ++i) {
    live.grad = grad_at(live, i);
    opt.step();
    resumed.grad = grad_at(resumed, i);
    opt2.step();
  }
  for (std::int64_t i = 0; i < live.value.numel(); ++i) {
    EXPECT_EQ(live.value[i], resumed.value[i]) << i;  // bit-exact
  }
}

TEST(Adam, LoadStateRejectsMissingOrMisshapen) {
  Param p = make_param("w", {1.0f, 2.0f}, ParamKind::kCrossbarWeight);
  Adam opt({&p}, AdamConfig{.lr = 0.01f});
  EXPECT_THROW(opt.load_state({}), ContractViolation);
  StateDict bad = opt.state_dict();
  bad.insert_or_assign("adam_m/w", Tensor(Shape{3}));
  EXPECT_THROW(opt.load_state(bad), ContractViolation);
}

TEST(Dropout, Validation) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5f);
  const Tensor x = testing::random_tensor(Shape{64}, 1);
  EXPECT_TRUE(drop.forward(x, false).allclose(x, 0.0f, 0.0f));
}

TEST(Dropout, TrainingZeroesApproxPFraction) {
  Dropout drop(0.3f, 7);
  const Tensor x(Shape{20000}, 1.0f);
  const Tensor y = drop.forward(x, true);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.02);
}

TEST(Dropout, PreservesExpectation) {
  Dropout drop(0.4f, 8);
  const Tensor x(Shape{50000}, 2.0f);
  const Tensor y = drop.forward(x, true);
  EXPECT_NEAR(y.mean(), 2.0f, 0.05f);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 9);
  const Tensor x(Shape{100}, 1.0f);
  const Tensor y = drop.forward(x, true);
  const Tensor g = drop.backward(Tensor(Shape{100}, 1.0f));
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(g[i], y[i]);  // same scaled mask applied to ones
  }
}

TEST(Stats, SummarizeBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Stats, QuantileNearestRank) {
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 1.0), 5.0);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace ftpim
