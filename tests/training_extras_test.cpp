// Additional end-to-end and edge-case coverage: Adam on a real task,
// augmentation-enabled training, deeper ResNet variants, SynthVision at 100
// classes, and evaluator edge cases.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/evaluator.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic.hpp"
#include "src/models/resnet.hpp"
#include "src/models/small_cnn.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/loss.hpp"
#include "src/optim/adam.hpp"
#include "test_util.hpp"

namespace ftpim {
namespace {

std::unique_ptr<InMemoryDataset> vision(std::uint64_t stream, int samples, int classes = 3) {
  SynthVisionConfig cfg;
  cfg.num_classes = classes;
  cfg.image_size = 8;
  cfg.samples = samples;
  cfg.seed = 31;
  cfg.noise_std = 0.3f;
  return make_synthvision(cfg, stream);
}

TEST(AdamTraining, LearnsTinyVisionTask) {
  const auto train = vision(1, 192);
  const auto test = vision(2, 96);
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 4, .classes = 3, .seed = 1});
  Adam opt(parameters_of(*net), AdamConfig{.lr = 3e-3f});
  DataLoader loader(*train, 32, /*shuffle=*/true, /*seed=*/2);
  const SoftmaxCrossEntropy loss;
  for (int epoch = 0; epoch < 8; ++epoch) {
    loader.start_epoch(epoch);
    for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b) {
      const Batch batch = loader.batch(b);
      zero_grads(*net);
      const Tensor logits = net->forward(batch.images, true);
      const LossResult lr = loss.forward(logits, batch.labels);
      net->backward(lr.grad_logits);
      opt.step();
    }
  }
  EXPECT_GT(evaluate_accuracy(*net, *test), 0.55);
}

TEST(Trainer, AugmentationEnabledStillLearns) {
  const auto train = vision(3, 192);
  const auto test = vision(4, 96);
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 4, .classes = 3, .seed = 2});
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  tc.sgd.lr = 0.05f;
  tc.augment = AugmentConfig{.crop_pad = 1, .hflip = true, .enabled = true};
  Trainer(*net, *train, tc).run();
  EXPECT_GT(evaluate_accuracy(*net, *test), 0.5);
}

TEST(Trainer, LabelSmoothingPathTrains) {
  const auto train = vision(5, 96);
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 3});
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 32;
  tc.label_smoothing = 0.1f;
  tc.augment.enabled = false;
  const TrainStats stats = Trainer(*net, *train, tc).run();
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
}

TEST(ResNetVariants, DeeperDepthsConstructAndRun) {
  for (const int depth : {44, 56}) {
    auto net = make_resnet(ResNetConfig{.depth = depth, .classes = 5, .base_width = 2, .seed = 4});
    const Tensor x = testing::random_tensor(Shape{1, 3, 8, 8}, 5);
    EXPECT_EQ(net->forward(x, false).shape(), (Shape{1, 5})) << depth;
  }
}

TEST(SynthVision, HundredClassGeneration) {
  SynthVisionConfig cfg;
  cfg.num_classes = 100;
  cfg.image_size = 8;
  cfg.samples = 300;
  cfg.seed = 6;
  const auto data = make_synthvision(cfg, 1);
  EXPECT_EQ(data->num_classes(), 100);
  std::int64_t max_label = 0;
  for (std::int64_t i = 0; i < data->size(); ++i) {
    max_label = std::max(max_label, data->get(i).label);
  }
  EXPECT_GT(max_label, 50);  // labels actually span the range
}

TEST(Evaluator, EmptyDatasetGivesZero) {
  InMemoryDataset empty(Shape{3, 8, 8}, 3);
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 7});
  EXPECT_DOUBLE_EQ(evaluate_accuracy(*net, empty), 0.0);
}

TEST(Evaluator, ZeroRunsGivesEmptyResult) {
  const auto data = vision(6, 16);
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 8});
  DefectEvalConfig cfg;
  cfg.num_runs = 0;
  const DefectEvalResult r = evaluate_under_defects(*net, *data, 0.1, cfg);
  EXPECT_TRUE(r.run_accs.empty());
  EXPECT_DOUBLE_EQ(r.mean_acc, 0.0);
}

TEST(Evaluator, BatchSizeDoesNotChangeAccuracy) {
  const auto data = vision(7, 50);
  auto net = make_small_cnn(SmallCnnConfig{.image_size = 8, .width = 2, .classes = 3, .seed = 9});
  const double a = evaluate_accuracy(*net, *data, 7);    // ragged batches
  const double b = evaluate_accuracy(*net, *data, 256);  // single batch
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Conv2d, NoBiasHasSingleParam) {
  Rng rng(10);
  Conv2d conv(2, 2, 3, 1, 1, rng, /*with_bias=*/false);
  std::vector<Param*> params;
  conv.collect_params("c.", params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0]->name, "c.weight");
}

}  // namespace
}  // namespace ftpim
