#include "src/nn/pooling.hpp"

#include "src/common/check.hpp"

#include <limits>

namespace ftpim {

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  FTPIM_CHECK(!(input.rank() != 4), "GlobalAvgPool: rank-4 input required");
  if (training) cached_in_shape_ = input.shape();
  const std::int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  Tensor out(Shape{n, c});
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* src = input.data() + (i * c + ch) * plane;
      double acc = 0.0;
      for (std::int64_t p = 0; p < plane; ++p) acc += src[p];
      out.at(i, ch) = static_cast<float>(acc) * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_in_shape_.empty()), "GlobalAvgPool::backward without training forward");
  const std::int64_t n = cached_in_shape_[0], c = cached_in_shape_[1];
  const std::int64_t plane = cached_in_shape_[2] * cached_in_shape_[3];
  Tensor grad_input(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_output.at(i, ch) * inv;
      float* dst = grad_input.data() + (i * c + ch) * plane;
      for (std::int64_t p = 0; p < plane; ++p) dst[p] = g;
    }
  }
  return grad_input;
}

std::unique_ptr<Module> GlobalAvgPool::clone() const { return std::make_unique<GlobalAvgPool>(); }

MaxPool2d::MaxPool2d(std::int64_t window, std::int64_t stride) : window_(window), stride_(stride) {
  FTPIM_CHECK(!(window <= 0 || stride <= 0), "MaxPool2d: invalid geometry");
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  FTPIM_CHECK(!(input.rank() != 4), "MaxPool2d: rank-4 input required");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h - window_) / stride_ + 1;
  const std::int64_t ow = (w - window_) / stride_ + 1;
  FTPIM_CHECK(!(oh <= 0 || ow <= 0), "MaxPool2d: output would be empty");
  Tensor out(Shape{n, c, oh, ow});
  if (training) {
    cached_in_shape_ = input.shape();
    cached_argmax_.assign(static_cast<std::size_t>(n * c * oh * ow), 0);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < window_; ++ky) {
            for (std::int64_t kx = 0; kx < window_; ++kx) {
              const std::int64_t iy = y * stride_ + ky;
              const std::int64_t ix = x * stride_ + kx;
              const std::int64_t idx = iy * w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out.at(i, ch, y, x) = best;
          if (training) {
            cached_argmax_[static_cast<std::size_t>(((i * c + ch) * oh + y) * ow + x)] = best_idx;
          }
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_in_shape_.empty()), "MaxPool2d::backward without training forward");
  const std::int64_t n = cached_in_shape_[0], c = cached_in_shape_[1];
  const std::int64_t h = cached_in_shape_[2], w = cached_in_shape_[3];
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input(cached_in_shape_);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      float* dst = grad_input.data() + (i * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          const std::int64_t idx =
              cached_argmax_[static_cast<std::size_t>(((i * c + ch) * oh + y) * ow + x)];
          dst[idx] += grad_output.at(i, ch, y, x);
        }
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Module> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(window_, stride_);
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  FTPIM_CHECK(!(input.rank() < 2), "Flatten: rank >= 2 required");
  if (training) cached_in_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  return input.reshaped(Shape{n, input.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_in_shape_.empty()), "Flatten::backward without training forward");
  return grad_output.reshaped(cached_in_shape_);
}

std::unique_ptr<Module> Flatten::clone() const { return std::make_unique<Flatten>(); }

}  // namespace ftpim
