#include "src/nn/linear.hpp"

#include "src/common/check.hpp"


#include "src/nn/init.hpp"
#include "src/tensor/gemm.hpp"

namespace ftpim {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias)
    : in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias),
      weight_("weight", Tensor(Shape{out_features, in_features}), ParamKind::kCrossbarWeight),
      bias_("bias", Tensor(Shape{out_features}), ParamKind::kBias) {
  FTPIM_CHECK(!(in_features <= 0 || out_features <= 0), "Linear: feature counts must be positive");
  kaiming_uniform(weight_.value, in_features, rng);
}

Linear::Linear(const Linear& other)
    : in_features_(other.in_features_),
      out_features_(other.out_features_),
      with_bias_(other.with_bias_),
      weight_(other.weight_.clone_detached()),
      bias_(other.bias_.clone_detached()) {}

std::unique_ptr<Module> Linear::clone() const {
  return std::unique_ptr<Module>(new Linear(*this));
}

Tensor Linear::forward(const Tensor& input, bool training) {
  FTPIM_CHECK(input.rank() == 2 && input.dim(1) == in_features_,
              "Linear::forward: expected [N,%lld], got %s", static_cast<long long>(in_features_),
              shape_to_string(input.shape()).c_str());
  if (training) cached_input_ = input;
  const std::int64_t n = input.dim(0);
  Tensor out(Shape{n, out_features_});
  if (!training && mvm_hook_ != nullptr) {
    // Deployed path: the installed engine computes x W_effective^T.
    mvm_hook_->mvm_batch(input.data(), n, out.data());
  } else {
    // out[N,out] = input[N,in] * W^T[in,out] — the transpose is absorbed into
    // pack-B inside the kernel backend, not materialized.
    gemm_bt(n, out_features_, in_features_, 1.0f, input.data(), weight_.value.data(), 0.0f,
            out.data());
  }
  if (with_bias_) {
    float* po = out.data();
    const float* pb = bias_.value.data();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out_features_; ++j) po[i * out_features_ + j] += pb[j];
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_input_.empty()), "Linear::backward called without a training forward");
  const std::int64_t n = grad_output.dim(0);
  // dW[out,in] += dY^T[out,N] * X[N,in]
  gemm_at(out_features_, in_features_, n, 1.0f, grad_output.data(), cached_input_.data(), 1.0f,
          weight_.grad.data());
  if (with_bias_) {
    float* pgb = bias_.grad.data();
    const float* pgo = grad_output.data();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out_features_; ++j) pgb[j] += pgo[i * out_features_ + j];
    }
  }
  // dX[N,in] = dY[N,out] * W[out,in]
  Tensor grad_input(Shape{n, in_features_});
  gemm(n, in_features_, out_features_, 1.0f, grad_output.data(), weight_.value.data(), 0.0f,
       grad_input.data());
  return grad_input;
}

void Linear::set_mvm_hook(std::shared_ptr<const MvmHook> hook) {
  if (hook != nullptr) {
    FTPIM_CHECK(hook->in_features() == in_features_ && hook->out_features() == out_features_,
                "Linear::set_mvm_hook: hook extents [%lld -> %lld] do not match layer "
                "[%lld -> %lld]",
                static_cast<long long>(hook->in_features()),
                static_cast<long long>(hook->out_features()),
                static_cast<long long>(in_features_), static_cast<long long>(out_features_));
  }
  mvm_hook_ = std::move(hook);
}

void Linear::collect_params(const std::string& prefix, std::vector<Param*>& out) {
  weight_.name = prefix + "weight";
  out.push_back(&weight_);
  if (with_bias_) {
    bias_.name = prefix + "bias";
    out.push_back(&bias_);
  }
}

}  // namespace ftpim
