// Layer/module abstraction with explicit forward/backward.
//
// ftpim uses manual backprop over a static module graph (Sequential +
// Residual) rather than a tape autograd: the model zoo is ResNet-style, the
// graph never changes shape, and explicit backward keeps every kernel
// inspectable — which matters when fault injection rewrites weights between
// forward passes.
//
// Contract:
//   * forward(x, training) caches whatever backward needs.
//   * backward(grad_out) ACCUMULATES into param .grad and returns grad wrt
//     the forward input. Call zero_grad() between steps.
//   * Parameters are exposed via collect_params(prefix, out); weights that
//     live on ReRAM crossbars (conv/linear kernels) are tagged
//     ParamKind::kCrossbarWeight — fault injection and pruning apply to
//     exactly this set.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/param.hpp"
#include "src/tensor/serialize.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the layer output; `training` selects batch statistics vs
  /// running statistics etc. Must be called before backward().
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates gradients; accumulates parameter grads; returns grad wrt the
  /// most recent forward() input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Appends pointers to this module's (and children's) parameters, with
  /// hierarchical names rooted at `prefix`.
  virtual void collect_params(const std::string& prefix, std::vector<Param*>& out) {
    (void)prefix;
    (void)out;
  }

  /// Appends non-trainable state (e.g. BN running stats) as name/tensor
  /// pointer pairs for checkpointing.
  virtual void collect_buffers(const std::string& prefix,
                               std::vector<std::pair<std::string, Tensor*>>& out) {
    (void)prefix;
    (void)out;
  }

  /// Appends this module and (for containers) every descendant, parents
  /// before children, in forward order. The deployment layer uses this to
  /// find the concrete Linear/Conv2d instances behind a model so it can
  /// install per-layer hardware hooks (see mvm_hook.hpp).
  virtual void collect_modules(std::vector<Module*>& out) { out.push_back(this); }

  /// Deep copy: same architecture with parameter values and buffers (e.g. BN
  /// running stats) copied into fresh, disjoint storage. Gradients are zeroed
  /// and activation/backward caches are NOT carried over — the clone behaves
  /// as if freshly constructed and loaded from this module's state dict.
  /// Clones share no mutable state with the source, so each can run
  /// forward/backward (and be fault-injected) on its own thread concurrently.
  [[nodiscard]] virtual std::unique_ptr<Module> clone() const = 0;

  /// Short type tag for debugging ("Conv2d", "ReLU", ...).
  [[nodiscard]] virtual std::string type_name() const = 0;

 protected:
  Module() = default;
};

// --- whole-network helpers ---------------------------------------------------

/// All parameters of `root` with hierarchical names.
std::vector<Param*> parameters_of(Module& root, const std::string& prefix = "");

/// Flat pre-order walk of the module tree (root first).
std::vector<Module*> modules_of(Module& root);

/// Zeroes every parameter gradient.
void zero_grads(Module& root);

/// Total trainable element count.
std::int64_t parameter_count(Module& root);

/// Serializes parameter values and buffers into a StateDict.
StateDict state_dict_of(Module& root);

/// Loads matching entries from `state` into `root`'s params/buffers.
/// Throws std::runtime_error on missing entries or shape mismatches.
void load_state_dict_into(Module& root, const StateDict& state);

}  // namespace ftpim
