// Inference-time MVM replacement hook.
//
// A crossbar-weight layer (Linear, Conv2d) normally computes
// y = x W^T through the float GEMM backend. An installed MvmHook replaces
// exactly that product during EVAL-mode forward — training forwards and all
// backward paths ignore hooks, so a hooked model still trains normally.
//
// This is how hardware simulations slot under an unchanged model graph: the
// quantized crossbar engine (src/reram/qinfer/) implements MvmHook and gets
// to see the same activations the layer would have fed its GEMM, in the same
// [batch, in] row-major layout (for Conv2d: batch = output pixels,
// in = C*kh*kw patch features).
//
// Contract:
//   * mvm_batch must treat x as const, fully overwrite y[batch, out], and
//     retain neither pointer past the call;
//   * implementations must be safe to call concurrently from multiple
//     threads (Conv2d invokes the hook from its per-image parallel loop);
//   * hooks are installed via shared_ptr and are intentionally DROPPED by
//     Module::clone() — a clone is a fresh software model; whoever deploys
//     it to simulated hardware installs new hooks bound to new engine state.
#pragma once

#include <cstdint>

namespace ftpim {

class MvmHook {
 public:
  virtual ~MvmHook() = default;

  /// y[batch, out] = x[batch, in] * W_effective^T.
  virtual void mvm_batch(const float* x, std::int64_t batch, float* y) const = 0;

  [[nodiscard]] virtual std::int64_t in_features() const noexcept = 0;
  [[nodiscard]] virtual std::int64_t out_features() const noexcept = 0;
};

}  // namespace ftpim
