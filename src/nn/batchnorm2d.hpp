// Batch normalization over NCHW channels, with running statistics for eval.
#pragma once

#include "src/nn/module.hpp"

namespace ftpim {

class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix, std::vector<Param*>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, Tensor*>>& out) override;
  /// Clones gamma/beta and the running statistics (the buffers eval-mode
  /// forward depends on); backward caches are dropped.
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "BatchNorm2d"; }

  [[nodiscard]] std::int64_t channels() const noexcept { return channels_; }
  [[nodiscard]] const Tensor& running_mean() const noexcept { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const noexcept { return running_var_; }

 private:
  BatchNorm2d(const BatchNorm2d& other);

  std::int64_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Backward caches (training only).
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  ///< [C]
  std::int64_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

}  // namespace ftpim
