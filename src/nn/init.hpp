// Weight initializers (He/Kaiming and uniform variants).
#pragma once

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

/// Kaiming-normal init for ReLU networks: N(0, sqrt(2/fan_in)).
void kaiming_normal(Tensor& w, std::int64_t fan_in, Rng& rng);

/// Kaiming-uniform init: U(-b, b) with b = sqrt(6/fan_in).
void kaiming_uniform(Tensor& w, std::int64_t fan_in, Rng& rng);

/// Uniform init in [-bound, bound].
void uniform_init(Tensor& w, float bound, Rng& rng);

}  // namespace ftpim
