// Residual block for CIFAR-style ResNets (He et al. 2016).
//
// main path: conv3x3(s) -> BN -> ReLU -> conv3x3(1) -> BN
// shortcut : identity, or "option A" when shape changes — stride-2
//            subsample plus zero-padded channels (parameter-free, as in the
//            original CIFAR ResNets; keeps all crossbar weights inside the
//            main path which simplifies fault-injection accounting).
// output   : ReLU(main + shortcut)
#pragma once

#include <memory>

#include "src/common/rng.hpp"
#include "src/nn/batchnorm2d.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/module.hpp"
#include "src/nn/sequential.hpp"

namespace ftpim {

class ResidualBlock final : public Module {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels, std::int64_t stride,
                Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix, std::vector<Param*>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, Tensor*>>& out) override;
  void collect_modules(std::vector<Module*>& out) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "ResidualBlock"; }

 private:
  ResidualBlock(const ResidualBlock& other);  ///< clone(): main path deep-copied


  /// Applies the option-A shortcut to x (identity when shapes match).
  [[nodiscard]] Tensor shortcut_forward(const Tensor& x) const;
  /// Backprop through the option-A shortcut.
  [[nodiscard]] Tensor shortcut_backward(const Tensor& grad) const;

  std::int64_t in_channels_, out_channels_, stride_;
  Sequential main_;
  Tensor cached_sum_mask_;  ///< ReLU mask over (main + shortcut)
  Shape cached_in_shape_;
};

}  // namespace ftpim
