// Fully-connected layer: y = x W^T + b, x:[N,in], W:[out,in], b:[out].
//
// An installed MvmHook replaces the x W^T product during eval-mode forward
// (training and backward always use the float weights); see mvm_hook.hpp.
#pragma once

#include <memory>

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/nn/mvm_hook.hpp"

namespace ftpim {

class Linear final : public Module {
 public:
  /// Initializes with Kaiming-uniform weights and zero bias.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix, std::vector<Param*>& out) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "Linear"; }

  [[nodiscard]] std::int64_t in_features() const noexcept { return in_features_; }
  [[nodiscard]] std::int64_t out_features() const noexcept { return out_features_; }
  [[nodiscard]] Param& weight() noexcept { return weight_; }
  [[nodiscard]] Param& bias() noexcept { return bias_; }
  [[nodiscard]] bool has_bias() const noexcept { return with_bias_; }

  /// Installs (or, with nullptr, removes) the eval-forward MVM replacement.
  /// The hook's feature extents must match this layer. NOT carried by clone().
  void set_mvm_hook(std::shared_ptr<const MvmHook> hook);
  [[nodiscard]] const MvmHook* mvm_hook() const noexcept { return mvm_hook_.get(); }

 private:
  Linear(const Linear& other);  ///< clone(): params copied, caches and hook dropped

  std::int64_t in_features_;
  std::int64_t out_features_;
  bool with_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  std::shared_ptr<const MvmHook> mvm_hook_;
};

}  // namespace ftpim
