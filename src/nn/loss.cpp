#include "src/nn/loss.hpp"

#include "src/common/check.hpp"

#include <cmath>
#include <stdexcept>

namespace ftpim {

SoftmaxCrossEntropy::SoftmaxCrossEntropy(float label_smoothing)
    : label_smoothing_(label_smoothing) {
  FTPIM_CHECK(!(label_smoothing < 0.0f || label_smoothing >= 1.0f), "SoftmaxCrossEntropy: label_smoothing must be in [0,1)");
}

Tensor softmax_rows(const Tensor& logits) {
  FTPIM_CHECK(!(logits.rank() != 2), "softmax_rows: rank-2 required");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* dst = out.data() + i * c;
    float mx = row[0];
    for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      const float e = std::exp(row[j] - mx);
      dst[j] = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < c; ++j) dst[j] *= inv;
  }
  return out;
}

LossResult SoftmaxCrossEntropy::forward(const Tensor& logits,
                                        const std::vector<std::int64_t>& labels) const {
  FTPIM_CHECK(!(logits.rank() != 2), "SoftmaxCrossEntropy: rank-2 logits");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  FTPIM_CHECK(!(static_cast<std::int64_t>(labels.size()) != n), "SoftmaxCrossEntropy: label count mismatch");
  LossResult result;
  result.grad_logits = softmax_rows(logits);
  const float off_target = label_smoothing_ / static_cast<float>(c);
  const float on_target = 1.0f - label_smoothing_ + off_target;
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
    float* p = result.grad_logits.data() + i * c;
    for (std::int64_t j = 0; j < c; ++j) {
      const float target = (j == y) ? on_target : off_target;
      if (target > 0.0f) {
        loss -= static_cast<double>(target) * std::log(std::max(p[j], 1e-12f));
      }
      p[j] = (p[j] - target) * inv_n;
    }
  }
  result.loss = static_cast<float>(loss / static_cast<double>(n));
  return result;
}

float SoftmaxCrossEntropy::loss_only(const Tensor& logits,
                                     const std::vector<std::int64_t>& labels) const {
  const Tensor probs = softmax_rows(logits);
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  const float off_target = label_smoothing_ / static_cast<float>(c);
  const float on_target = 1.0f - label_smoothing_ + off_target;
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    const float* p = probs.data() + i * c;
    for (std::int64_t j = 0; j < c; ++j) {
      const float target = (j == y) ? on_target : off_target;
      if (target > 0.0f) loss -= static_cast<double>(target) * std::log(std::max(p[j], 1e-12f));
    }
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace ftpim
