// Softmax cross-entropy loss with fused gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace ftpim {

struct LossResult {
  float loss = 0.0f;     ///< mean cross-entropy over the batch
  Tensor grad_logits;    ///< d loss / d logits, [N, classes]
};

class SoftmaxCrossEntropy {
 public:
  /// label_smoothing in [0,1): standard uniform label smoothing.
  explicit SoftmaxCrossEntropy(float label_smoothing = 0.0f);

  /// logits: [N, classes]; labels: N class indices.
  [[nodiscard]] LossResult forward(const Tensor& logits,
                                   const std::vector<std::int64_t>& labels) const;

  /// Loss only (no gradient) — for evaluation.
  [[nodiscard]] float loss_only(const Tensor& logits,
                                const std::vector<std::int64_t>& labels) const;

 private:
  float label_smoothing_;
};

/// Numerically-stable row softmax: [N,C] -> [N,C].
Tensor softmax_rows(const Tensor& logits);

}  // namespace ftpim
