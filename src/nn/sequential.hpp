// Sequential container: forward runs children in order, backward in reverse.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/module.hpp"

namespace ftpim {

class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Deep copy: every child is clone()d, so the copy shares no storage or
  /// caches with `other` (same contract as Module::clone()). This is the one
  /// copyable Module — it is the repo's model type, and value copies are what
  /// per-worker evaluation and harness model cloning build on.
  Sequential(const Sequential& other);

  /// Appends a child module; returns a reference for chaining.
  Sequential& add(std::unique_ptr<Module> child);

  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto child = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *child;
    add(std::move(child));
    return ref;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix, std::vector<Param*>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, Tensor*>>& out) override;
  void collect_modules(std::vector<Module*>& out) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t size() const noexcept { return children_.size(); }
  [[nodiscard]] Module& child(std::size_t i) { return *children_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace ftpim
