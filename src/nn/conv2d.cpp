#include "src/nn/conv2d.hpp"

#include "src/common/check.hpp"

#include <cstring>
#include <stdexcept>

#include "src/common/parallel.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/gemm.hpp"

namespace ftpim {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, Rng& rng, bool with_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      with_bias_(with_bias),
      weight_("weight", Tensor(Shape{out_channels, in_channels * kernel * kernel}),
              ParamKind::kCrossbarWeight),
      bias_("bias", Tensor(Shape{out_channels}), ParamKind::kBias) {
  FTPIM_CHECK(!(in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 || pad < 0), "Conv2d: invalid geometry");
  kaiming_normal(weight_.value, in_channels * kernel * kernel, rng);
}

Conv2d::Conv2d(const Conv2d& other)
    : in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      kernel_(other.kernel_),
      stride_(other.stride_),
      pad_(other.pad_),
      with_bias_(other.with_bias_),
      weight_(other.weight_.clone_detached()),
      bias_(other.bias_.clone_detached()) {}

std::unique_ptr<Module> Conv2d::clone() const {
  return std::unique_ptr<Module>(new Conv2d(*this));
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw ContractViolation("Conv2d::forward: expected [N," + std::to_string(in_channels_) +
                                ",H,W], got " + shape_to_string(input.shape()));
  }
  const std::int64_t n = input.dim(0);
  geom_ = ConvGeometry{.in_c = in_channels_,
                       .in_h = input.dim(2),
                       .in_w = input.dim(3),
                       .kernel_h = kernel_,
                       .kernel_w = kernel_,
                       .stride_h = stride_,
                       .stride_w = stride_,
                       .pad_h = pad_,
                       .pad_w = pad_};
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  FTPIM_CHECK(!(oh <= 0 || ow <= 0), "Conv2d::forward: output would be empty");
  const std::int64_t col_rows = geom_.col_rows();
  const std::int64_t col_cols = geom_.col_cols();
  const std::int64_t in_plane = in_channels_ * geom_.in_h * geom_.in_w;
  const std::int64_t out_plane = out_channels_ * oh * ow;

  Tensor out(Shape{n, out_channels_, oh, ow});
  if (training) {
    cached_input_ = input;
    cached_cols_.assign(static_cast<std::size_t>(n * col_rows * col_cols), 0.0f);
    cached_batch_ = n;
  }

  const float* w = weight_.value.data();
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t i) {
    // Per-image scratch when not caching for backward.
    std::vector<float> local_col;
    float* col;
    if (training) {
      col = cached_cols_.data() + static_cast<std::int64_t>(i) * col_rows * col_cols;
    } else {
      local_col.assign(static_cast<std::size_t>(col_rows * col_cols), 0.0f);
      col = local_col.data();
    }
    im2col(input.data() + static_cast<std::int64_t>(i) * in_plane, geom_, col);
    float* dst = out.data() + static_cast<std::int64_t>(i) * out_plane;
    gemm(out_channels_, col_cols, col_rows, 1.0f, w, col, 0.0f, dst);
    if (with_bias_) {
      const float* pb = bias_.value.data();
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        float* row = dst + c * oh * ow;
        for (std::int64_t p = 0; p < oh * ow; ++p) row[p] += pb[c];
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_input_.empty() || cached_batch_ == 0), "Conv2d::backward called without a training forward");
  const std::int64_t n = cached_batch_;
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t col_rows = geom_.col_rows();
  const std::int64_t col_cols = geom_.col_cols();
  const std::int64_t in_plane = in_channels_ * geom_.in_h * geom_.in_w;
  const std::int64_t out_plane = out_channels_ * oh * ow;
  if (grad_output.rank() != 4 || grad_output.dim(0) != n || grad_output.dim(1) != out_channels_ ||
      grad_output.dim(2) != oh || grad_output.dim(3) != ow) {
    throw ContractViolation("Conv2d::backward: grad shape mismatch");
  }

  Tensor grad_input(cached_input_.shape());
  const float* w = weight_.value.data();

  // Parallel over images with per-thread dW accumulators to avoid races.
  const int workers = num_threads();
  std::vector<Tensor> dw_partial(static_cast<std::size_t>(workers),
                                 Tensor(weight_.value.shape()));
  std::vector<Tensor> db_partial(static_cast<std::size_t>(workers), Tensor(bias_.value.shape()));

  parallel_for_chunks(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        // Thread slot derived from chunk start; chunks are disjoint.
        const std::size_t slot =
            (lo * static_cast<std::size_t>(workers)) / static_cast<std::size_t>(n);
        Tensor& dw = dw_partial[std::min(slot, dw_partial.size() - 1)];
        Tensor& db = db_partial[std::min(slot, db_partial.size() - 1)];
        std::vector<float> dcol(static_cast<std::size_t>(col_rows * col_cols));
        for (std::size_t i = lo; i < hi; ++i) {
          const float* dy = grad_output.data() + static_cast<std::int64_t>(i) * out_plane;
          const float* col = cached_cols_.data() + static_cast<std::int64_t>(i) * col_rows * col_cols;
          // dW[out_c, col_rows] += dY[out_c, col_cols] * col^T
          gemm_bt(out_channels_, col_rows, col_cols, 1.0f, dy, col, 1.0f, dw.data());
          if (with_bias_) {
            float* pdb = db.data();
            for (std::int64_t c = 0; c < out_channels_; ++c) {
              const float* row = dy + c * oh * ow;
              double acc = 0.0;
              for (std::int64_t p = 0; p < oh * ow; ++p) acc += row[p];
              pdb[c] += static_cast<float>(acc);
            }
          }
          // dcol[col_rows, col_cols] = W^T[col_rows, out_c] * dY
          gemm_at(col_rows, col_cols, out_channels_, 1.0f, w, dy, 0.0f, dcol.data());
          float* dx = grad_input.data() + static_cast<std::int64_t>(i) * in_plane;
          col2im(dcol.data(), geom_, dx);
        }
      },
      /*min_parallel_trip=*/2);

  for (const Tensor& dw : dw_partial) {
    float* acc = weight_.grad.data();
    const float* src = dw.data();
    for (std::int64_t i = 0; i < weight_.grad.numel(); ++i) acc[i] += src[i];
  }
  if (with_bias_) {
    for (const Tensor& db : db_partial) {
      float* acc = bias_.grad.data();
      const float* src = db.data();
      for (std::int64_t i = 0; i < bias_.grad.numel(); ++i) acc[i] += src[i];
    }
  }
  return grad_input;
}

void Conv2d::collect_params(const std::string& prefix, std::vector<Param*>& out) {
  weight_.name = prefix + "weight";
  out.push_back(&weight_);
  if (with_bias_) {
    bias_.name = prefix + "bias";
    out.push_back(&bias_);
  }
}

}  // namespace ftpim
