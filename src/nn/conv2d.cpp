#include "src/nn/conv2d.hpp"

#include "src/common/check.hpp"

#include <algorithm>

#include "src/common/parallel.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/kernels/conv_kernels.hpp"
#include "src/tensor/kernels/pack_arena.hpp"

namespace ftpim {
namespace {

// Fixed number of gradient-accumulation slots in backward. Deliberately
// independent of num_threads(): each slot owns a fixed image range and is
// processed by exactly one worker, and the slot partials are reduced in slot
// order, so dW/db are bit-identical for any FTPIM_THREADS value.
constexpr std::int64_t kReduceSlots = 16;

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, Rng& rng, bool with_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      with_bias_(with_bias),
      weight_("weight", Tensor(Shape{out_channels, in_channels * kernel * kernel}),
              ParamKind::kCrossbarWeight),
      bias_("bias", Tensor(Shape{out_channels}), ParamKind::kBias) {
  FTPIM_CHECK(!(in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 || pad < 0), "Conv2d: invalid geometry");
  kaiming_normal(weight_.value, in_channels * kernel * kernel, rng);
}

Conv2d::Conv2d(const Conv2d& other)
    : in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      kernel_(other.kernel_),
      stride_(other.stride_),
      pad_(other.pad_),
      with_bias_(other.with_bias_),
      weight_(other.weight_.clone_detached()),
      bias_(other.bias_.clone_detached()) {}

std::unique_ptr<Module> Conv2d::clone() const {
  return std::unique_ptr<Module>(new Conv2d(*this));
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw ContractViolation("Conv2d::forward: expected [N," + std::to_string(in_channels_) +
                                ",H,W], got " + shape_to_string(input.shape()));
  }
  const std::int64_t n = input.dim(0);
  geom_ = ConvGeometry{.in_c = in_channels_,
                       .in_h = input.dim(2),
                       .in_w = input.dim(3),
                       .kernel_h = kernel_,
                       .kernel_w = kernel_,
                       .stride_h = stride_,
                       .stride_w = stride_,
                       .pad_h = pad_,
                       .pad_w = pad_};
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  FTPIM_CHECK(!(oh <= 0 || ow <= 0), "Conv2d::forward: output would be empty");
  const std::int64_t in_plane = in_channels_ * geom_.in_h * geom_.in_w;
  const std::int64_t out_plane = out_channels_ * oh * ow;

  Tensor out(Shape{n, out_channels_, oh, ow});
  if (training) {
    cached_input_ = input;
    cached_batch_ = n;
  }

  // Patches are gathered inside the kernel backend's pack step (fused
  // im2col), so no per-image column matrix exists — not even in training:
  // backward re-gathers patches from cached_input_ the same way.
  const float* w = weight_.value.data();
  const MvmHook* hook = (!training && mvm_hook_ != nullptr) ? mvm_hook_.get() : nullptr;
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t i) {
    float* dst = out.data() + static_cast<std::int64_t>(i) * out_plane;
    if (hook != nullptr) {
      // Deployed path: stage the image's patch matrix explicitly and hand
      // each output pixel to the hook as one activation row. Float scratch
      // slots 1/3 — disjoint from the conv-dX slab (0) and the crossbar
      // current buffer (2); the quantized engine underneath only touches
      // the typed integer slots.
      const std::int64_t col_rows = geom_.col_rows();  // in_c * k * k
      const std::int64_t pixels = oh * ow;
      kernels::PackArena& arena = kernels::PackArena::local();
      float* col = arena.scratch_buffer(1, static_cast<std::size_t>(col_rows * pixels));
      im2col(input.data() + static_cast<std::int64_t>(i) * in_plane, geom_, col);
      float* patches = arena.scratch_buffer(3, static_cast<std::size_t>(pixels * col_rows));
      for (std::int64_t p = 0; p < pixels; ++p) {
        for (std::int64_t r = 0; r < col_rows; ++r) {
          patches[p * col_rows + r] = col[r * pixels + p];
        }
      }
      // col is dead past this point; its slot restages as the hook output.
      float* yb = arena.scratch_buffer(1, static_cast<std::size_t>(pixels * out_channels_));
      hook->mvm_batch(patches, pixels, yb);
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        for (std::int64_t p = 0; p < pixels; ++p) dst[c * pixels + p] = yb[p * out_channels_ + c];
      }
    } else {
      kernels::conv_forward_packed(geom_, w, out_channels_,
                                   input.data() + static_cast<std::int64_t>(i) * in_plane, dst);
    }
    if (with_bias_) {
      const float* pb = bias_.value.data();
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        float* row = dst + c * oh * ow;
        for (std::int64_t p = 0; p < oh * ow; ++p) row[p] += pb[c];
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_input_.empty() || cached_batch_ == 0), "Conv2d::backward called without a training forward");
  const std::int64_t n = cached_batch_;
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t in_plane = in_channels_ * geom_.in_h * geom_.in_w;
  const std::int64_t out_plane = out_channels_ * oh * ow;
  if (grad_output.rank() != 4 || grad_output.dim(0) != n || grad_output.dim(1) != out_channels_ ||
      grad_output.dim(2) != oh || grad_output.dim(3) != ow) {
    throw ContractViolation("Conv2d::backward: grad shape mismatch");
  }

  Tensor grad_input(cached_input_.shape());
  const float* w = weight_.value.data();
  const float* x = cached_input_.data();

  const std::int64_t slots = std::min<std::int64_t>(kReduceSlots, n);
  std::vector<Tensor> dw_partial(static_cast<std::size_t>(slots), Tensor(weight_.value.shape()));
  std::vector<Tensor> db_partial(static_cast<std::size_t>(slots), Tensor(bias_.value.shape()));

  parallel_for(0, static_cast<std::size_t>(slots), [&](std::size_t s) {
    const std::int64_t lo = static_cast<std::int64_t>(s) * n / slots;
    const std::int64_t hi = (static_cast<std::int64_t>(s) + 1) * n / slots;
    Tensor& dw = dw_partial[s];
    Tensor& db = db_partial[s];
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* dy = grad_output.data() + i * out_plane;
      const float* img = x + i * in_plane;
      kernels::conv_grad_weight_packed(geom_, dy, out_channels_, img, dw.data());
      if (with_bias_) {
        float* pdb = db.data();
        for (std::int64_t c = 0; c < out_channels_; ++c) {
          const float* row = dy + c * oh * ow;
          double acc = 0.0;
          for (std::int64_t p = 0; p < oh * ow; ++p) acc += row[p];
          pdb[c] += static_cast<float>(acc);
        }
      }
      kernels::conv_grad_input_packed(geom_, w, out_channels_, dy, grad_input.data() + i * in_plane);
    }
  });

  for (const Tensor& dw : dw_partial) {
    float* acc = weight_.grad.data();
    const float* src = dw.data();
    for (std::int64_t i = 0; i < weight_.grad.numel(); ++i) acc[i] += src[i];
  }
  if (with_bias_) {
    for (const Tensor& db : db_partial) {
      float* acc = bias_.grad.data();
      const float* src = db.data();
      for (std::int64_t i = 0; i < bias_.grad.numel(); ++i) acc[i] += src[i];
    }
  }
  return grad_input;
}

void Conv2d::set_mvm_hook(std::shared_ptr<const MvmHook> hook) {
  if (hook != nullptr) {
    const std::int64_t patch = in_channels_ * kernel_ * kernel_;
    FTPIM_CHECK(hook->in_features() == patch && hook->out_features() == out_channels_,
                "Conv2d::set_mvm_hook: hook extents [%lld -> %lld] do not match layer "
                "[%lld -> %lld]",
                static_cast<long long>(hook->in_features()),
                static_cast<long long>(hook->out_features()), static_cast<long long>(patch),
                static_cast<long long>(out_channels_));
  }
  mvm_hook_ = std::move(hook);
}

void Conv2d::collect_params(const std::string& prefix, std::vector<Param*>& out) {
  weight_.name = prefix + "weight";
  out.push_back(&weight_);
  if (with_bias_) {
    bias_.name = prefix + "bias";
    out.push_back(&bias_);
  }
}

}  // namespace ftpim
