// 2-D convolution (NCHW) via fused-im2col packed GEMM.
//
// Patch gathering happens inside the kernel backend's pack step
// (src/tensor/kernels/), so the [C*kh*kw, oh*ow] column matrix is never
// materialized — forward, dW, and dX all stream KC x NR panels through the
// per-thread pack arena instead.
//
// CIFAR-style ResNets use 3x3 stride-1/2 pad-1 convolutions without bias
// (batch norm follows); bias is supported for standalone use.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/tensor/im2col.hpp"

namespace ftpim {

class Conv2d final : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, Rng& rng, bool with_bias = false);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix, std::vector<Param*>& out) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "Conv2d"; }

  [[nodiscard]] std::int64_t in_channels() const noexcept { return in_channels_; }
  [[nodiscard]] std::int64_t out_channels() const noexcept { return out_channels_; }
  [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] std::int64_t stride() const noexcept { return stride_; }
  [[nodiscard]] Param& weight() noexcept { return weight_; }

 private:
  Conv2d(const Conv2d& other);  ///< clone(): params copied, caches dropped

  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool with_bias_;
  Param weight_;  ///< [out_c, in_c * k * k] — already in crossbar matrix layout
  Param bias_;    ///< [out_c]
  ConvGeometry geom_;
  Tensor cached_input_;  ///< training only; backward re-gathers patches from it
  std::int64_t cached_batch_ = 0;
};

}  // namespace ftpim
