// 2-D convolution (NCHW) via fused-im2col packed GEMM.
//
// Patch gathering happens inside the kernel backend's pack step
// (src/tensor/kernels/), so the [C*kh*kw, oh*ow] column matrix is never
// materialized — forward, dW, and dX all stream KC x NR panels through the
// per-thread pack arena instead.
//
// CIFAR-style ResNets use 3x3 stride-1/2 pad-1 convolutions without bias
// (batch norm follows); bias is supported for standalone use.
//
// An installed MvmHook replaces the filter GEMM during eval-mode forward:
// each image is lowered to a [out_h*out_w, C*kh*kw] patch matrix and fed to
// the hook as a batch of patch rows (training and backward always use the
// float weights); see mvm_hook.hpp.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/nn/mvm_hook.hpp"
#include "src/tensor/im2col.hpp"

namespace ftpim {

class Conv2d final : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, Rng& rng, bool with_bias = false);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix, std::vector<Param*>& out) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "Conv2d"; }

  [[nodiscard]] std::int64_t in_channels() const noexcept { return in_channels_; }
  [[nodiscard]] std::int64_t out_channels() const noexcept { return out_channels_; }
  [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] std::int64_t stride() const noexcept { return stride_; }
  [[nodiscard]] Param& weight() noexcept { return weight_; }

  /// Installs (or, with nullptr, removes) the eval-forward MVM replacement.
  /// The hook must map in_c*k*k -> out_c. NOT carried by clone().
  void set_mvm_hook(std::shared_ptr<const MvmHook> hook);
  [[nodiscard]] const MvmHook* mvm_hook() const noexcept { return mvm_hook_.get(); }

 private:
  Conv2d(const Conv2d& other);  ///< clone(): params copied, caches and hook dropped

  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool with_bias_;
  Param weight_;  ///< [out_c, in_c * k * k] — already in crossbar matrix layout
  Param bias_;    ///< [out_c]
  ConvGeometry geom_;
  Tensor cached_input_;  ///< training only; backward re-gathers patches from it
  std::int64_t cached_batch_ = 0;
  std::shared_ptr<const MvmHook> mvm_hook_;
};

}  // namespace ftpim
