#include "src/nn/residual.hpp"

#include "src/common/check.hpp"


#include "src/nn/activations.hpp"

namespace ftpim {

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                             std::int64_t stride, Rng& rng)
    : in_channels_(in_channels), out_channels_(out_channels), stride_(stride) {
  FTPIM_CHECK(!(stride != 1 && stride != 2), "ResidualBlock: stride must be 1 or 2");
  FTPIM_CHECK(!(stride == 1 && in_channels != out_channels), "ResidualBlock: channel change requires stride 2 (option A)");
  main_.emplace<Conv2d>(in_channels, out_channels, 3, stride, 1, rng, /*with_bias=*/false);
  main_.emplace<BatchNorm2d>(out_channels);
  main_.emplace<ReLU>();
  main_.emplace<Conv2d>(out_channels, out_channels, 3, 1, 1, rng, /*with_bias=*/false);
  main_.emplace<BatchNorm2d>(out_channels);
}

ResidualBlock::ResidualBlock(const ResidualBlock& other)
    : in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      stride_(other.stride_),
      main_(other.main_) {}

std::unique_ptr<Module> ResidualBlock::clone() const {
  return std::unique_ptr<Module>(new ResidualBlock(*this));
}

Tensor ResidualBlock::shortcut_forward(const Tensor& x) const {
  if (stride_ == 1 && in_channels_ == out_channels_) return x;
  // Option A: spatial subsample by stride, zero-pad new channels.
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + stride_ - 1) / stride_;
  const std::int64_t ow = (w + stride_ - 1) / stride_;
  Tensor out(Shape{n, out_channels_, oh, ow});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < in_channels_; ++c) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xx = 0; xx < ow; ++xx) {
          out.at(i, c, y, xx) = x.at(i, c, y * stride_, xx * stride_);
        }
      }
    }
  }
  return out;
}

Tensor ResidualBlock::shortcut_backward(const Tensor& grad) const {
  if (stride_ == 1 && in_channels_ == out_channels_) return grad;
  const std::int64_t n = cached_in_shape_[0], h = cached_in_shape_[2], w = cached_in_shape_[3];
  Tensor out(Shape{n, in_channels_, h, w});
  const std::int64_t oh = grad.dim(2), ow = grad.dim(3);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < in_channels_; ++c) {  // padded channels carry no gradient
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xx = 0; xx < ow; ++xx) {
          out.at(i, c, y * stride_, xx * stride_) = grad.at(i, c, y, xx);
        }
      }
    }
  }
  return out;
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  if (training) cached_in_shape_ = input.shape();
  Tensor main_out = main_.forward(input, training);
  const Tensor short_out = shortcut_forward(input);
  if (main_out.shape() != short_out.shape()) {
    throw ContractViolation("ResidualBlock: main/shortcut shape mismatch " +
                           shape_to_string(main_out.shape()) + " vs " +
                           shape_to_string(short_out.shape()));
  }
  float* pm = main_out.data();
  const float* ps = short_out.data();
  if (training) {
    cached_sum_mask_ = Tensor(main_out.shape());
    float* mask = cached_sum_mask_.data();
    for (std::int64_t i = 0; i < main_out.numel(); ++i) {
      const float s = pm[i] + ps[i];
      const bool pos = s > 0.0f;
      mask[i] = pos ? 1.0f : 0.0f;
      pm[i] = pos ? s : 0.0f;
    }
  } else {
    for (std::int64_t i = 0; i < main_out.numel(); ++i) {
      const float s = pm[i] + ps[i];
      pm[i] = s > 0.0f ? s : 0.0f;
    }
  }
  return main_out;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_sum_mask_.empty()), "ResidualBlock::backward without training forward");
  Tensor grad_sum(grad_output.shape());
  const float* dy = grad_output.data();
  const float* mask = cached_sum_mask_.data();
  float* ds = grad_sum.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) ds[i] = dy[i] * mask[i];

  Tensor grad_main = main_.backward(grad_sum);
  const Tensor grad_short = shortcut_backward(grad_sum);
  FTPIM_CHECK(!(grad_main.shape() != grad_short.shape()), "ResidualBlock::backward: gradient shape mismatch");
  float* pa = grad_main.data();
  const float* pb = grad_short.data();
  for (std::int64_t i = 0; i < grad_main.numel(); ++i) pa[i] += pb[i];
  return grad_main;
}

void ResidualBlock::collect_params(const std::string& prefix, std::vector<Param*>& out) {
  main_.collect_params(prefix + "main.", out);
}

void ResidualBlock::collect_buffers(const std::string& prefix,
                                    std::vector<std::pair<std::string, Tensor*>>& out) {
  main_.collect_buffers(prefix + "main.", out);
}

void ResidualBlock::collect_modules(std::vector<Module*>& out) {
  out.push_back(this);
  main_.collect_modules(out);
}

}  // namespace ftpim
