#include "src/nn/activations.hpp"

#include "src/common/check.hpp"

#include <cmath>

namespace ftpim {

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  const float* src = input.data();
  float* dst = out.data();
  if (training) {
    cached_mask_ = Tensor(input.shape());
    float* mask = cached_mask_.data();
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      const bool pos = src[i] > 0.0f;
      mask[i] = pos ? 1.0f : 0.0f;
      dst[i] = pos ? src[i] : 0.0f;
    }
  } else {
    for (std::int64_t i = 0; i < input.numel(); ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_mask_.empty()), "ReLU::backward without training forward");
  FTPIM_CHECK(!(grad_output.shape() != cached_mask_.shape()), "ReLU::backward: grad shape mismatch");
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.data();
  const float* mask = cached_mask_.data();
  float* dx = grad_input.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) dx[i] = dy[i] * mask[i];
  return grad_input;
}

std::unique_ptr<Module> ReLU::clone() const { return std::make_unique<ReLU>(); }

Tensor LeakyReLU::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor out(input.shape());
  const float* src = input.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    dst[i] = src[i] > 0.0f ? src[i] : slope_ * src[i];
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_input_.empty()), "LeakyReLU::backward without training forward");
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.data();
  const float* x = cached_input_.data();
  float* dx = grad_input.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    dx[i] = x[i] > 0.0f ? dy[i] : slope_ * dy[i];
  }
  return grad_input;
}

std::unique_ptr<Module> LeakyReLU::clone() const { return std::make_unique<LeakyReLU>(slope_); }

Tensor Tanh::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  const float* src = input.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) dst[i] = std::tanh(src[i]);
  if (training) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_output_.empty()), "Tanh::backward without training forward");
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.data();
  const float* y = cached_output_.data();
  float* dx = grad_input.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  return grad_input;
}

std::unique_ptr<Module> Tanh::clone() const { return std::make_unique<Tanh>(); }

}  // namespace ftpim
