// Pooling layers and the NCHW->NC flatten used before the classifier head.
#pragma once

#include <vector>

#include "src/nn/module.hpp"

namespace ftpim {

/// Global average pooling: [N,C,H,W] -> [N,C].
class GlobalAvgPool final : public Module {
 public:
  GlobalAvgPool() = default;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_in_shape_;
};

/// Max pooling with square window/stride: [N,C,H,W] -> [N,C,H',W'].
class MaxPool2d final : public Module {
 public:
  MaxPool2d(std::int64_t window, std::int64_t stride);
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "MaxPool2d"; }

 private:
  std::int64_t window_, stride_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> cached_argmax_;
};

/// [N,C,H,W] -> [N, C*H*W].
class Flatten final : public Module {
 public:
  Flatten() = default;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "Flatten"; }

 private:
  Shape cached_in_shape_;
};

}  // namespace ftpim
