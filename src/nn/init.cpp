#include "src/nn/init.hpp"

#include "src/common/check.hpp"

#include <cmath>

namespace ftpim {

void kaiming_normal(Tensor& w, std::int64_t fan_in, Rng& rng) {
  FTPIM_CHECK(!(fan_in <= 0), "kaiming_normal: fan_in must be positive");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) p[i] = rng.normal(0.0f, stddev);
}

void kaiming_uniform(Tensor& w, std::int64_t fan_in, Rng& rng) {
  FTPIM_CHECK(!(fan_in <= 0), "kaiming_uniform: fan_in must be positive");
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  uniform_init(w, bound, rng);
}

void uniform_init(Tensor& w, float bound, Rng& rng) {
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) p[i] = rng.uniform(-bound, bound);
}

}  // namespace ftpim
