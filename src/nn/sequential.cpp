#include "src/nn/sequential.hpp"

#include "src/common/check.hpp"


namespace ftpim {

Sequential::Sequential(const Sequential& other) {
  children_.reserve(other.children_.size());
  for (const auto& child : other.children_) children_.push_back(child->clone());
}

std::unique_ptr<Module> Sequential::clone() const { return std::make_unique<Sequential>(*this); }

Sequential& Sequential::add(std::unique_ptr<Module> child) {
  FTPIM_CHECK(!(!child), "Sequential::add: null child");
  children_.push_back(std::move(child));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(const std::string& prefix, std::vector<Param*>& out) {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    children_[i]->collect_params(prefix + std::to_string(i) + ".", out);
  }
}

void Sequential::collect_buffers(const std::string& prefix,
                                 std::vector<std::pair<std::string, Tensor*>>& out) {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    children_[i]->collect_buffers(prefix + std::to_string(i) + ".", out);
  }
}

void Sequential::collect_modules(std::vector<Module*>& out) {
  out.push_back(this);
  for (const auto& child : children_) child->collect_modules(out);
}

}  // namespace ftpim
