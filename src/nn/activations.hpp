// Elementwise activations.
#pragma once

#include "src/nn/module.hpp"

namespace ftpim {

class ReLU final : public Module {
 public:
  ReLU() = default;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "ReLU"; }

 private:
  Tensor cached_mask_;  ///< 1 where input > 0 (training only)
};

class LeakyReLU final : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f) : slope_(negative_slope) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
};

class Tanh final : public Module {
 public:
  Tanh() = default;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace ftpim
