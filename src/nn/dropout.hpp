// Inverted dropout. Disabled (identity) in eval mode. Seeded explicitly so
// training stays reproducible.
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"

namespace ftpim {

class Dropout final : public Module {
 public:
  explicit Dropout(float drop_prob, std::uint64_t seed = 0xd70);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  /// The clone carries the current RNG state, so source and clone draw the
  /// same mask stream from the point of cloning onward.
  [[nodiscard]] std::unique_ptr<Module> clone() const override;
  [[nodiscard]] std::string type_name() const override { return "Dropout"; }

  [[nodiscard]] float drop_prob() const noexcept { return drop_prob_; }

 private:
  Dropout(const Dropout& other) : drop_prob_(other.drop_prob_), rng_(other.rng_) {}

  float drop_prob_;
  Rng rng_;
  Tensor cached_mask_;  ///< scaled keep mask (0 or 1/(1-p))
};

}  // namespace ftpim
