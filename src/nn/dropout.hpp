// Inverted dropout. Disabled (identity) in eval mode. Seeded explicitly so
// training stays reproducible.
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"

namespace ftpim {

class Dropout final : public Module {
 public:
  explicit Dropout(float drop_prob, std::uint64_t seed = 0xd70);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string type_name() const override { return "Dropout"; }

  [[nodiscard]] float drop_prob() const noexcept { return drop_prob_; }

 private:
  float drop_prob_;
  Rng rng_;
  Tensor cached_mask_;  ///< scaled keep mask (0 or 1/(1-p))
};

}  // namespace ftpim
