#include "src/nn/module.hpp"

#include <stdexcept>

namespace ftpim {

std::vector<Param*> parameters_of(Module& root, const std::string& prefix) {
  std::vector<Param*> params;
  root.collect_params(prefix, params);
  return params;
}

std::vector<Module*> modules_of(Module& root) {
  std::vector<Module*> modules;
  root.collect_modules(modules);
  return modules;
}

void zero_grads(Module& root) {
  for (Param* p : parameters_of(root)) p->grad.zero();
}

std::int64_t parameter_count(Module& root) {
  std::int64_t n = 0;
  for (const Param* p : parameters_of(root)) n += p->value.numel();
  return n;
}

StateDict state_dict_of(Module& root) {
  StateDict state;
  for (const Param* p : parameters_of(root)) state.emplace(p->name, p->value);
  std::vector<std::pair<std::string, Tensor*>> buffers;
  root.collect_buffers("", buffers);
  for (const auto& [name, tensor] : buffers) state.emplace(name, *tensor);
  return state;
}

void load_state_dict_into(Module& root, const StateDict& state) {
  auto fetch = [&state](const std::string& name) -> const Tensor& {
    const auto it = state.find(name);
    if (it == state.end()) {
      throw std::runtime_error("load_state_dict: missing entry '" + name + "'");
    }
    return it->second;
  };
  for (Param* p : parameters_of(root)) {
    const Tensor& src = fetch(p->name);
    if (src.shape() != p->value.shape()) {
      throw std::runtime_error("load_state_dict: shape mismatch for '" + p->name + "': " +
                               shape_to_string(src.shape()) + " vs " +
                               shape_to_string(p->value.shape()));
    }
    p->value = src;
  }
  std::vector<std::pair<std::string, Tensor*>> buffers;
  root.collect_buffers("", buffers);
  for (auto& [name, tensor] : buffers) {
    const Tensor& src = fetch(name);
    if (src.shape() != tensor->shape()) {
      throw std::runtime_error("load_state_dict: shape mismatch for buffer '" + name + "'");
    }
    *tensor = src;
  }
}

}  // namespace ftpim
