#include "src/nn/batchnorm2d.hpp"

#include "src/common/check.hpp"

#include <cmath>
#include <vector>

namespace ftpim {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("gamma", Tensor(Shape{channels}, 1.0f), ParamKind::kNorm),
      beta_("beta", Tensor(Shape{channels}, 0.0f), ParamKind::kNorm),
      running_mean_(Shape{channels}, 0.0f),
      running_var_(Shape{channels}, 1.0f) {
  FTPIM_CHECK(!(channels <= 0), "BatchNorm2d: channels must be positive");
}

BatchNorm2d::BatchNorm2d(const BatchNorm2d& other)
    : channels_(other.channels_),
      momentum_(other.momentum_),
      eps_(other.eps_),
      gamma_(other.gamma_.clone_detached()),
      beta_(other.beta_.clone_detached()),
      running_mean_(other.running_mean_),
      running_var_(other.running_var_) {}

std::unique_ptr<Module> BatchNorm2d::clone() const {
  return std::unique_ptr<Module>(new BatchNorm2d(*this));
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw ContractViolation("BatchNorm2d::forward: expected [N," + std::to_string(channels_) +
                                ",H,W], got " + shape_to_string(input.shape()));
  }
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t plane = h * w;
  const std::int64_t count = n * plane;
  Tensor out(input.shape());

  const float* gamma = gamma_.value.data();
  const float* beta = beta_.value.data();

  if (training) {
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_ = Tensor(Shape{channels_});
    for (std::int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* src = input.data() + (i * channels_ + c) * plane;
        for (std::int64_t p = 0; p < plane; ++p) {
          sum += src[p];
          sq += static_cast<double>(src[p]) * src[p];
        }
      }
      const double mean = sum / static_cast<double>(count);
      const double var = sq / static_cast<double>(count) - mean * mean;
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[c] = inv_std;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      // Unbiased variance for running stats (PyTorch convention).
      const double unbiased =
          count > 1 ? var * static_cast<double>(count) / static_cast<double>(count - 1) : var;
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(unbiased);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* src = input.data() + (i * channels_ + c) * plane;
        float* xh = cached_xhat_.data() + (i * channels_ + c) * plane;
        float* dst = out.data() + (i * channels_ + c) * plane;
        for (std::int64_t p = 0; p < plane; ++p) {
          const float xhat = (src[p] - static_cast<float>(mean)) * inv_std;
          xh[p] = xhat;
          dst[p] = gamma[c] * xhat + beta[c];
        }
      }
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float mean = running_mean_[c];
      const float g = gamma[c] * inv_std;
      const float b = beta[c] - g * mean;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* src = input.data() + (i * channels_ + c) * plane;
        float* dst = out.data() + (i * channels_ + c) * plane;
        for (std::int64_t p = 0; p < plane; ++p) dst[p] = g * src[p] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  FTPIM_CHECK(!(cached_xhat_.empty()), "BatchNorm2d::backward called without a training forward");
  const std::int64_t n = cached_n_, h = cached_h_, w = cached_w_;
  const std::int64_t plane = h * w;
  const std::int64_t count = n * plane;
  Tensor grad_input(grad_output.shape());
  const float* gamma = gamma_.value.data();

  for (std::int64_t c = 0; c < channels_; ++c) {
    // dgamma = sum(dy * xhat), dbeta = sum(dy)
    double dgamma = 0.0, dbeta = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dy = grad_output.data() + (i * channels_ + c) * plane;
      const float* xh = cached_xhat_.data() + (i * channels_ + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        dgamma += static_cast<double>(dy[p]) * xh[p];
        dbeta += dy[p];
      }
    }
    gamma_.grad[c] += static_cast<float>(dgamma);
    beta_.grad[c] += static_cast<float>(dbeta);

    // dx = gamma*inv_std/count * (count*dy - dbeta - xhat*dgamma)
    const float scale = gamma[c] * cached_inv_std_[c] / static_cast<float>(count);
    const float fcount = static_cast<float>(count);
    const float fdg = static_cast<float>(dgamma);
    const float fdb = static_cast<float>(dbeta);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dy = grad_output.data() + (i * channels_ + c) * plane;
      const float* xh = cached_xhat_.data() + (i * channels_ + c) * plane;
      float* dx = grad_input.data() + (i * channels_ + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        dx[p] = scale * (fcount * dy[p] - fdb - xh[p] * fdg);
      }
    }
  }
  return grad_input;
}

void BatchNorm2d::collect_params(const std::string& prefix, std::vector<Param*>& out) {
  gamma_.name = prefix + "gamma";
  beta_.name = prefix + "beta";
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_buffers(const std::string& prefix,
                                  std::vector<std::pair<std::string, Tensor*>>& out) {
  out.emplace_back(prefix + "running_mean", &running_mean_);
  out.emplace_back(prefix + "running_var", &running_var_);
}

}  // namespace ftpim
