#include "src/nn/dropout.hpp"

#include "src/common/check.hpp"


namespace ftpim {

Dropout::Dropout(float drop_prob, std::uint64_t seed) : drop_prob_(drop_prob), rng_(seed) {
  FTPIM_CHECK(!(drop_prob < 0.0f || drop_prob >= 1.0f), "Dropout: drop_prob must be in [0,1)");
}

std::unique_ptr<Module> Dropout::clone() const {
  return std::unique_ptr<Module>(new Dropout(*this));
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || drop_prob_ == 0.0f) {
    cached_mask_ = Tensor();
    return input;
  }
  cached_mask_ = Tensor(input.shape());
  const float keep_scale = 1.0f / (1.0f - drop_prob_);
  Tensor out(input.shape());
  const float* src = input.data();
  float* mask = cached_mask_.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const bool keep = !rng_.bernoulli(drop_prob_);
    mask[i] = keep ? keep_scale : 0.0f;
    dst[i] = src[i] * mask[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cached_mask_.empty()) return grad_output;  // eval-mode or p=0 forward
  FTPIM_CHECK(!(grad_output.shape() != cached_mask_.shape()), "Dropout::backward: grad shape mismatch");
  Tensor grad(grad_output.shape());
  const float* dy = grad_output.data();
  const float* mask = cached_mask_.data();
  float* dx = grad.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) dx[i] = dy[i] * mask[i];
  return grad;
}

}  // namespace ftpim
