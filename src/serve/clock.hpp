// Injectable time source for the serving layer.
//
// Every time-dependent decision in ftpim::serve (batch linger expiry,
// request latency measurement) reads a ServeClock instead of calling
// std::chrono directly, so tests can substitute a ManualServeClock and get
// bit-identical latency statistics across runs (DESIGN.md "Serving layer"
// determinism rules). Production code uses SteadyServeClock (monotonic).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ftpim::serve {

class ServeClock {
 public:
  virtual ~ServeClock() = default;
  /// Monotonic nanoseconds since an arbitrary epoch.
  [[nodiscard]] virtual std::int64_t now_ns() = 0;
};

/// Wall-clock implementation over std::chrono::steady_clock.
class SteadyServeClock final : public ServeClock {
 public:
  [[nodiscard]] std::int64_t now_ns() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Test clock: time only moves when advance()d. Thread-safe (the serving
/// workers and the test driver may read/advance concurrently); the counter
/// is a relaxed atomic — the clock carries no happens-before obligations,
/// only a monotonic value.
class ManualServeClock final : public ServeClock {
 public:
  explicit ManualServeClock(std::int64_t start_ns = 0) noexcept : now_ns_(start_ns) {}

  [[nodiscard]] std::int64_t now_ns() override {
    return now_ns_.load(std::memory_order_relaxed);
  }

  void advance_ns(std::int64_t delta_ns) noexcept {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_ns_;
};

}  // namespace ftpim::serve
