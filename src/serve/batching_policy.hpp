// Dynamic-batching policy: how long a worker holds an open batch.
//
// A batch closes when it is full (max_batch_size) or when the oldest request
// in it has lingered max_linger_ns — the standard throughput/latency knob of
// dynamic batching servers. All decisions are pure functions of (batch size,
// now, batch-open time) read from the server's injectable ServeClock, so the
// policy is unit-testable with a ManualServeClock and the single-worker
// serving path stays deterministic (see DESIGN.md "Serving layer").
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"

namespace ftpim::serve {

struct BatchingPolicy {
  std::int64_t max_batch_size = 8;
  std::int64_t max_linger_ns = 1'000'000;  ///< 1ms; 0 = greedy (never wait)

  void validate() const {
    FTPIM_CHECK_GT(max_batch_size, std::int64_t{0}, "BatchingPolicy: max_batch_size");
    FTPIM_CHECK_GE(max_linger_ns, std::int64_t{0}, "BatchingPolicy: max_linger_ns");
  }

  FTPIM_HOT [[nodiscard]] bool full(std::int64_t batch_size) const noexcept {
    return batch_size >= max_batch_size;
  }

  /// Nanoseconds the worker may still wait for more requests; 0 once the
  /// linger budget of a batch opened at `open_ns` is spent.
  FTPIM_HOT [[nodiscard]] std::int64_t remaining_linger_ns(std::int64_t now_ns,
                                                           std::int64_t open_ns) const noexcept {
    return std::max<std::int64_t>(std::int64_t{0}, max_linger_ns - (now_ns - open_ns));
  }

  /// True when the batch must be dispatched now (full, or linger expired).
  FTPIM_HOT [[nodiscard]] bool should_flush(std::int64_t batch_size, std::int64_t now_ns,
                                            std::int64_t open_ns) const noexcept {
    return full(batch_size) || remaining_linger_ns(now_ns, open_ns) == 0;
  }
};

}  // namespace ftpim::serve
