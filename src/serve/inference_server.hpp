// Asynchronous dynamically-batched inference over a fleet of defective
// replicas — the serving layer (DESIGN.md "Serving layer").
//
// Architecture: clients submit() single samples and get a std::future; the
// requests land in one bounded FIFO RequestQueue; each replica of the
// ReplicaPool is owned by exactly one worker thread that pops requests,
// coalesces them into batches under the BatchingPolicy, runs one batched
// forward pass on its (persistently faulted) clone, and fulfills the
// promises. Because a worker is the sole driver of its replica, the model
// hot path is lock-free; the only shared state is the queue and the stats
// block, each behind its own annotated Mutex.
//
// Lifecycle: construct -> [submit()...] -> start() -> traffic -> stop().
// submit() is legal before start() (requests queue up; this is what makes
// the deterministic single-worker test mode possible) and after stop() it
// rejects. drain() blocks until every accepted request has been answered.
// stop() is graceful: the queue closes, workers flush every remaining
// accepted request, then exit — a drained shutdown loses nothing. The
// destructor stop()s.
//
// Determinism: with one worker, requests submitted in a fixed order before
// start(), max_linger_ns = 0, and a ManualServeClock, batch composition,
// outputs, and every stat (latency histogram included) are bit-identical
// across runs — see tests/serve_server_test.cpp.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/nn/module.hpp"
#include "src/serve/batching_policy.hpp"
#include "src/serve/clock.hpp"
#include "src/serve/replica_pool.hpp"
#include "src/serve/request_queue.hpp"
#include "src/serve/server_stats.hpp"

namespace ftpim::serve {

/// What submit() does when the queue is full.
enum class OverflowPolicy {
  kBlock,   ///< backpressure: block the client until space frees up
  kReject,  ///< fail fast: the returned future throws std::runtime_error
};

struct ServerConfig {
  std::size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  BatchingPolicy batching{};
  ReplicaPoolConfig pool{};
  /// Time source for linger decisions and latency stats; nullptr = monotonic
  /// wall clock. Non-owning — must outlive the server.
  ServeClock* clock = nullptr;
};

class InferenceServer {
 public:
  /// Builds the replica fleet from `model` (cloned; never mutated).
  InferenceServer(const Module& model, const ServerConfig& config);

  /// Graceful stop() — flushes in-flight requests before returning.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample ([C,H,W], same shape for every request) and returns
  /// the future answer. Rejections (full queue under kReject, or a stopped
  /// server) are delivered through the future as std::runtime_error.
  [[nodiscard]] std::future<InferenceResult> submit(Tensor input);

  /// Spawns one worker thread per replica. Call once.
  void start();

  /// Blocks until every accepted request has been answered (queue empty and
  /// nothing in flight). Requires start(); the server keeps serving after.
  void drain();

  /// Graceful shutdown: stop intake, flush every accepted request, join the
  /// workers. Idempotent. Safe to call without start() (queued requests are
  /// then answered with an exception — no worker ever existed to run them).
  void stop();

  [[nodiscard]] bool running() const;

  /// Point-in-time metrics snapshot (see ServerStats).
  [[nodiscard]] ServerStats stats() const;

  /// The underlying fleet — e.g. to measure per-replica accuracy offline.
  /// Do not drive replicas while the server is running.
  [[nodiscard]] ReplicaPool& pool() noexcept { return pool_; }
  [[nodiscard]] const ReplicaPool& pool() const noexcept { return pool_; }

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  void worker_loop(int replica_id);
  void run_batch(int replica_id, std::vector<Request>& batch);
  void reject(Request&& request, const char* why);

  ServerConfig config_;
  ReplicaPool pool_;
  SteadyServeClock default_clock_;
  ServeClock* clock_;  ///< config_.clock or &default_clock_
  RequestQueue queue_;

  enum class State { kIdle, kRunning, kStopped };

  mutable Mutex mu_;
  CondVar drained_;  ///< signaled when in_flight_ hits zero
  State state_ FTPIM_GUARDED_BY(mu_) = State::kIdle;
  std::uint64_t next_id_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t in_flight_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t submitted_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t rejected_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t served_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t failed_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t batches_ FTPIM_GUARDED_BY(mu_) = 0;
  Shape input_shape_ FTPIM_GUARDED_BY(mu_);  ///< pinned by the first submit()
  std::vector<std::int64_t> per_replica_served_ FTPIM_GUARDED_BY(mu_);
  std::vector<LatencyHistogram> per_worker_latency_ FTPIM_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;  ///< touched only by start()/stop()
};

}  // namespace ftpim::serve
