// Asynchronous dynamically-batched inference over a self-healing fleet of
// defective replicas — the serving layer (DESIGN.md "Serving layer" and
// "Failure handling & self-healing").
//
// Architecture: clients submit() single samples and get a std::future; the
// requests land in one bounded FIFO RequestQueue; each replica of the
// ReplicaPool is owned by exactly one worker thread that pops requests,
// coalesces them into batches under the BatchingPolicy, runs one batched
// forward pass on its (persistently faulted) clone, and fulfills the
// promises. Because a worker is the sole driver of its replica, the model
// hot path is lock-free; the only shared state is the queue, the stats
// block, and the HealthMonitor, each behind its own annotated Mutex.
//
// Robustness (this is what makes the fleet self-healing):
//
//   * Deadlines & shedding — a request may carry an absolute deadline.
//     Admission control can refuse requests whose deadline is predicted
//     unmeetable (shed_ns_per_queued), workers drop requests whose deadline
//     already passed, and both outcomes surface as typed ServeError kinds.
//   * Retry & failover — a failed forward pass burns one of the request's
//     attempts and re-queues it with the failing replica excluded, so a
//     different device gets the next try. When the budget, the deadline, or
//     the fleet runs out, the future reports kDeadlineExceeded/kExhausted.
//   * Health & repair — every batch and periodic known-answer canary probes
//     (golden outputs from the pristine source model) feed a per-replica
//     HealthMonitor; replicas scoring below threshold are quarantined and
//     (by default) repaired in place: re-cloned from the pristine source
//     with a fresh defect map.
//   * In-service aging — an AgingModel deterministically grows each
//     replica's defect map with served-batch count, so fleets degrade, get
//     caught by canaries, and heal, all inside one process.
//
// Lifecycle: construct -> [submit()...] -> start() -> traffic -> stop().
// submit() is legal before start() (requests queue up; this is what makes
// the deterministic single-worker test mode possible) and after stop() it
// rejects. drain() blocks until every accepted request has been answered.
// stop() is graceful: the queue closes, workers flush every remaining
// accepted request, then exit — a drained shutdown loses nothing. The
// destructor stop()s.
//
// Determinism: with one worker, requests submitted in a fixed order before
// start(), max_linger_ns = 0, and a ManualServeClock, batch composition,
// outputs, aging, quarantines, repairs, and every stat (latency histogram
// included) are bit-identical across runs — see tests/serve_server_test.cpp
// and tests/serve_health_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/annotations.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/core/evaluator.hpp"
#include "src/nn/module.hpp"
#include "src/reram/aging.hpp"
#include "src/serve/batching_policy.hpp"
#include "src/serve/clock.hpp"
#include "src/serve/health_monitor.hpp"
#include "src/serve/replica_pool.hpp"
#include "src/serve/request_queue.hpp"
#include "src/serve/serve_error.hpp"
#include "src/serve/server_stats.hpp"

namespace ftpim::serve {

/// What submit() does when the queue is full.
enum class OverflowPolicy {
  kBlock,   ///< backpressure: block the client until space frees up
  kReject,  ///< fail fast: the returned future throws ServeError(kQueueFull)
};

struct ServerConfig {
  std::size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  BatchingPolicy batching{};
  ReplicaPoolConfig pool{};
  /// Time source for linger decisions and latency stats; nullptr = monotonic
  /// wall clock. Non-owning — must outlive the server.
  ServeClock* clock = nullptr;
  /// Deadline applied to submits that don't carry their own (relative to
  /// enqueue time; 0 = no deadline).
  std::int64_t default_deadline_ns = 0;
  /// Forward passes a request may consume before its future fails (>= 1).
  /// Each failed attempt excludes the failing replica and re-queues.
  int max_attempts = 1;
  /// Admission control: estimated service time per already-queued request.
  /// A request whose deadline precedes enqueue_ns + (depth+1)*this is shed
  /// at submit() with kDeadlineShed. 0 disables shedding.
  std::int64_t shed_ns_per_queued = 0;
  /// Replica health scoring, canary cadence, and repair policy.
  HealthConfig health{};
  /// In-service defect growth (incompatible with pool.use_redundancy).
  AgingConfig aging{};
  /// Test/chaos hook: runs just before each batch's forward pass on the
  /// worker thread. May throw (treated exactly like a forward failure — the
  /// retry/failover path) or tamper with the batch's promises (the poisoned-
  /// request path). Leave empty in production.
  std::function<void(int replica_id, std::vector<Request>& batch)> batch_hook;
};

/// Per-request overrides for submit().
struct SubmitOptions {
  std::int64_t deadline_ns = 0;  ///< relative to enqueue; 0 = config default
  int max_attempts = 0;          ///< 0 = config default
};

class InferenceServer {
 public:
  /// Builds the replica fleet from `model` (cloned; never mutated).
  InferenceServer(const Module& model, const ServerConfig& config);

  /// Graceful stop() — flushes in-flight requests before returning.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample ([C,H,W], same shape for every request) and returns
  /// the future answer. All failure modes are delivered through the future
  /// as ServeError (see serve_error.hpp for the kind taxonomy).
  [[nodiscard]] std::future<InferenceResult> submit(Tensor input);
  [[nodiscard]] std::future<InferenceResult> submit(Tensor input, const SubmitOptions& options);

  /// Spawns one worker thread per replica. Call once.
  void start();

  /// Blocks until every accepted request has been answered (queue empty and
  /// nothing in flight). Requires start(); the server keeps serving after.
  void drain();

  /// Graceful shutdown: stop intake, flush every accepted request, join the
  /// workers. Idempotent. Safe to call without start() (queued requests are
  /// then answered with ServeError(kStopped) — no worker ever ran them).
  void stop();

  [[nodiscard]] bool running() const;

  /// Point-in-time metrics snapshot (see ServerStats).
  [[nodiscard]] ServerStats stats() const;

  /// Replica health, scored from batch outcomes and canary probes.
  [[nodiscard]] const HealthMonitor& health() const noexcept { return health_; }

  /// The underlying fleet — e.g. to measure per-replica accuracy offline.
  /// Do not drive replicas while the server is running.
  [[nodiscard]] ReplicaPool& pool() noexcept { return pool_; }
  [[nodiscard]] const ReplicaPool& pool() const noexcept { return pool_; }

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  /// Per-worker maintenance counters; owned by the worker thread.
  struct WorkerTick {
    std::int64_t batches_since_repair = 0;
    std::int64_t batches_since_canary = 0;
    /// Served batches since the last ScrubPolicy::kPeriodic refresh.
    std::int64_t batches_since_scrub = 0;
    /// ABFT-flagged batches in a row; a clean batch resets it, exceeding
    /// health.max_scrub_retries escalates to a forced quarantine.
    std::int64_t consecutive_detections = 0;
    ReplicaHealth last_state = ReplicaHealth::kHealthy;
  };

  /// Per-worker reusable staging for batched inputs: one Tensor per batch
  /// size, materialized on first use and overwritten in full on every later
  /// batch of that size, so steady-state dispatch allocates nothing. Owned
  /// by the worker thread — never shared.
  struct BatchStage {
    std::vector<Tensor> staged;  ///< index = batch_size - 1

    FTPIM_HOT [[nodiscard]] Tensor& input_for(const Shape& sample_shape,
                                              std::int64_t batch_size) {
      const auto idx = static_cast<std::size_t>(batch_size - 1);
      if (idx >= staged.size() || staged[idx].numel() == 0) {
        return materialize(sample_shape, batch_size);
      }
      return staged[idx];
    }

    FTPIM_COLD Tensor& materialize(const Shape& sample_shape, std::int64_t batch_size);
  };

  void worker_loop(int replica_id) noexcept;
  /// Deadline/exclusion triage for a freshly popped request. True = the
  /// request belongs in this worker's batch; false = it was re-queued for
  /// another replica or answered with a ServeError.
  [[nodiscard]] bool triage(int replica_id, Request& request);
  void run_batch(int replica_id, std::vector<Request>& batch, WorkerTick& tick,
                 BatchStage& stage);
  /// Slow path of run_batch: the forward pass threw. Logs the cause, burns
  /// one attempt per request, re-queues those with budget/time/alternatives
  /// left, answers the rest with typed errors.
  void fail_batch(int replica_id, std::vector<Request>& batch,
                  const std::exception_ptr& error, std::int64_t done_ns);
  /// Records a forward pass (batch or canary) that threw: logs the cause
  /// through the sink and bumps the worker_exceptions counter.
  void note_worker_exception(const char* where, const std::exception_ptr& error);
  /// Post-batch upkeep: aging, canary probes, quarantine detection, repair.
  void maintain(int replica_id, WorkerTick& tick);
  void ensure_canary();
  /// Rejects a not-yet-accepted request (rolls back submit accounting).
  void reject(Request&& request, ServeError::Kind kind, const char* why);
  /// Answers an ACCEPTED request with a typed error and settles its
  /// in-flight accounting.
  void finish_with_error(Request& request, ServeError::Kind kind, const std::string& why);

  ServerConfig config_;
  ReplicaPool pool_;
  SteadyServeClock default_clock_;
  ServeClock* clock_;  ///< config_.clock or &default_clock_
  RequestQueue queue_;
  HealthMonitor health_;
  AgingModel aging_;

  std::once_flag canary_once_;
  CanarySet canary_;  ///< written once under canary_once_, then read-only

  enum class State { kIdle, kRunning, kStopped };

  mutable Mutex mu_;
  CondVar drained_;  ///< signaled when in_flight_ hits zero
  State state_ FTPIM_GUARDED_BY(mu_) = State::kIdle;
  std::uint64_t next_id_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t in_flight_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t submitted_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t rejected_queue_full_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t rejected_stopped_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t rejected_shed_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t served_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t failed_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t retried_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t expired_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t poisoned_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t batches_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t canary_batches_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t canary_failures_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t quarantines_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t repairs_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t aged_cells_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t abft_detections_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t abft_flagged_tiles_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t abft_scrubs_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t abft_scrubbed_tiles_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t abft_escalations_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t periodic_refreshes_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t worker_exceptions_ FTPIM_GUARDED_BY(mu_) = 0;
  Shape input_shape_ FTPIM_GUARDED_BY(mu_);  ///< pinned by the first submit()
  std::vector<std::int64_t> per_replica_served_ FTPIM_GUARDED_BY(mu_);
  std::vector<std::int64_t> per_replica_canary_progress_ FTPIM_GUARDED_BY(mu_);
  std::vector<LatencyHistogram> per_worker_latency_ FTPIM_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;  ///< touched only by start()/stop()
};

}  // namespace ftpim::serve
