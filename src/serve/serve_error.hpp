// Typed failure taxonomy for the serving layer.
//
// Every way a submitted request can fail WITHOUT a successful forward pass is
// a ServeError with a machine-readable Kind; callers catch the one type and
// branch on kind() instead of parsing what() strings. A ServeError is-a
// std::runtime_error, so legacy catch sites keep working and the message
// still explains itself in logs.
//
// Kinds and when the future carries them:
//   kQueueFull        submit() under OverflowPolicy::kReject, queue at capacity
//   kStopped          server stopped (or stopping) before the request ran
//   kDeadlineShed     admission control predicted the deadline cannot be met
//   kDeadlineExceeded the deadline passed while queued or retrying
//   kExhausted        attempt budget spent, or no non-excluded replica left
#pragma once

#include <stdexcept>
#include <string>

namespace ftpim::serve {

class ServeError : public std::runtime_error {
 public:
  // Plain (non-class) nested enum so call sites read ServeError::kStopped.
  enum Kind {
    kQueueFull,
    kStopped,
    kDeadlineShed,
    kDeadlineExceeded,
    kExhausted,
  };

  ServeError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

[[nodiscard]] inline const char* to_string(ServeError::Kind kind) noexcept {
  switch (kind) {
    case ServeError::kQueueFull: return "queue_full";
    case ServeError::kStopped: return "stopped";
    case ServeError::kDeadlineShed: return "deadline_shed";
    case ServeError::kDeadlineExceeded: return "deadline_exceeded";
    case ServeError::kExhausted: return "exhausted";
  }
  return "unknown";
}

}  // namespace ftpim::serve
