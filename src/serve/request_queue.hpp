// Bounded MPMC request queue with backpressure — the intake of the serving
// layer.
//
// Producers are client threads calling InferenceServer::submit(); consumers
// are the per-replica worker threads. The queue is strictly FIFO (a deque
// under one mutex — at single-sample-inference granularity the lock is never
// the bottleneck, the forward pass is), which is also what makes the
// single-worker serving path deterministic: batch composition is a pure
// function of arrival order.
//
// Backpressure comes in two flavors, selected by the server's OverflowPolicy:
// push() blocks until space frees up (kBlock), try_push() fails immediately
// (kReject). close() starts shutdown: subsequent pushes fail, pending and
// future pops drain the remaining items and then return false, so consumers
// observe every accepted request before exiting (graceful drain loses
// nothing).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <vector>

#include "src/common/annotations.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim::serve {

/// One answered inference request.
struct InferenceResult {
  Tensor logits;                 ///< [classes]
  std::int64_t predicted = 0;    ///< argmax of logits
  int replica_id = 0;            ///< device replica that served the request
  std::int64_t batch_size = 1;   ///< size of the batch the request rode in
  std::int64_t latency_ns = 0;   ///< enqueue -> answer, per the server's clock
};

/// deadline_ns value meaning "no deadline" (never reached by a ServeClock).
inline constexpr std::int64_t kNoDeadlineNs = std::numeric_limits<std::int64_t>::max();

/// In-flight request: payload + the promise the worker answers.
///
/// deadline/attempt/excluded fields carry the retry-and-failover state a
/// request accumulates as it bounces between replicas: every failed attempt
/// adds the failing replica to `excluded` and burns one of `attempts_left`,
/// and a worker that pops a request excluding its own replica re-queues it
/// for someone else (see InferenceServer).
struct Request {
  Tensor input;                  ///< single sample [C,H,W]
  std::promise<InferenceResult> promise;
  std::int64_t enqueue_ns = 0;
  std::uint64_t id = 0;          ///< server-assigned, monotonically increasing
  std::int64_t deadline_ns = kNoDeadlineNs;  ///< absolute, per the server's clock
  int attempts_left = 1;         ///< forward passes this request may still consume
  std::vector<int> excluded;     ///< replicas that already failed this request

  FTPIM_HOT [[nodiscard]] bool excludes(int replica_id) const noexcept {
    return std::find(excluded.begin(), excluded.end(), replica_id) != excluded.end();
  }
};

/// Fulfills the request's promise; false when the promise was already
/// satisfied or abandoned (a poisoned request must not take down the worker
/// or its batchmates — the failure is reported, not thrown).
bool answer(Request& request, InferenceResult&& result) noexcept;
bool answer_error(Request& request, std::exception_ptr error) noexcept;

/// Outcome of a bounded pop: consumers must tell "nothing yet" apart from
/// "nothing ever again" to exit their drain loops correctly.
enum class PopResult {
  kItem,     ///< `out` holds a request
  kTimeout,  ///< queue open but empty for the whole wait
  kClosed,   ///< closed and fully drained — no item will ever arrive
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Blocks while full; true once enqueued. Fails (without consuming the
  /// request) only when the queue is closed.
  [[nodiscard]] bool push(Request&& request);

  /// Non-blocking; fails when full or closed, leaving `request` untouched.
  [[nodiscard]] bool try_push(Request&& request);

  /// Blocks until an item is available; false when closed and drained.
  [[nodiscard]] bool pop(Request& out);

  /// Non-blocking; false when currently empty (or closed and drained).
  [[nodiscard]] bool try_pop(Request& out);

  /// Blocks up to `timeout_ns` (real time). kItem fills `out`; kTimeout and
  /// kClosed distinguish a transient empty queue from shutdown-and-drained.
  [[nodiscard]] PopResult pop_for(Request& out, std::int64_t timeout_ns);

  /// Begins shutdown: wakes all waiters; pushes fail from now on, pops drain
  /// the remaining items then fail. Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<Request> items_ FTPIM_GUARDED_BY(mu_);
  bool closed_ FTPIM_GUARDED_BY(mu_) = false;
};

}  // namespace ftpim::serve
