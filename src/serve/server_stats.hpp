// Point-in-time serving metrics snapshot.
//
// InferenceServer::stats() fills one of these under the server's stats mutex
// and hands it out by value, so readers never hold a lock into the hot path.
// The latency histogram is the merge (in replica-id order — exact and
// associative, see LatencyHistogram) of the per-worker histograms, which are
// only ever written by their owning worker thread. Everything here is
// integer-or-derived, so deterministic serving mode reproduces the whole
// snapshot bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/strformat.hpp"
#include "src/serve/health_monitor.hpp"

namespace ftpim::serve {

struct ServerStats {
  std::int64_t submitted = 0;  ///< accepted into the queue
  // Rejections by reason: the future carried a ServeError of the matching
  // kind and the request never reached a forward pass.
  std::int64_t rejected_queue_full = 0;  ///< kReject policy, queue at capacity
  std::int64_t rejected_stopped = 0;     ///< server stopped before it ran
  std::int64_t rejected_shed = 0;        ///< admission control: deadline unmeetable
  std::int64_t served = 0;     ///< answered with a result
  std::int64_t failed = 0;     ///< answered with an exception, all retries spent
  std::int64_t retried = 0;    ///< failed attempts re-queued onto another replica
  std::int64_t expired = 0;    ///< failed specifically with kDeadlineExceeded
  std::int64_t poisoned = 0;   ///< promises already satisfied when answered
  std::int64_t batches = 0;    ///< batched forward passes executed
  std::int64_t canary_batches = 0;   ///< known-answer probe batches run
  std::int64_t canary_failures = 0;  ///< probe samples that missed golden
  std::int64_t quarantines = 0;      ///< healthy/suspect -> quarantined transitions
  std::int64_t repairs = 0;          ///< replicas re-cloned + re-injected
  std::int64_t aged_cells = 0;       ///< cell faults grown in service (all replicas)
  std::int64_t abft_detections = 0;     ///< batches flagged by ABFT checksums
  std::int64_t abft_flagged_tiles = 0;  ///< (layer, tile) pairs named by those batches
  std::int64_t abft_scrubs = 0;         ///< detection-triggered scrub passes
  std::int64_t abft_scrubbed_tiles = 0; ///< tiles re-programmed by scrubs
  std::int64_t abft_escalations = 0;    ///< scrub retries exhausted -> forced quarantine
  std::int64_t periodic_refreshes = 0;  ///< ScrubPolicy::kPeriodic whole-replica refreshes
  std::int64_t worker_exceptions = 0;  ///< forward passes (batch or canary) that threw
  std::size_t queue_depth = 0; ///< requests waiting at snapshot time
  std::int64_t in_flight = 0;  ///< accepted but not yet answered
  std::int64_t canary_every_batches = 0;  ///< configured canary cadence (0 = off)
  std::vector<std::int64_t> per_replica_served;   ///< indexed by replica id
  std::vector<double> per_replica_health;         ///< health score in [0,1]
  std::vector<ReplicaHealth> per_replica_state;   ///< health state machine
  std::vector<int> per_replica_repairs;           ///< repairs per replica
  std::vector<int> per_replica_window_size;       ///< outcomes in each health window
  int health_window_capacity = 0;                 ///< configured window capacity
  /// Batches served since each replica's last canary probe (worker-published
  /// every batch; 0 when canaries are off or the replica has not served yet).
  std::vector<std::int64_t> per_replica_canary_progress;
  LatencyHistogram latency;    ///< submit -> answer, per the server clock

  /// Total rejections across all reasons.
  [[nodiscard]] std::int64_t rejected() const noexcept {
    return rejected_queue_full + rejected_stopped + rejected_shed;
  }

  /// served / batches — how well dynamic batching is filling batches.
  [[nodiscard]] double mean_batch_fill() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(served) / static_cast<double>(batches);
  }

  /// One-line human-readable summary (callers print it; src/ never does).
  [[nodiscard]] std::string summary_line() const {
    return detail::format_msg(
        "served %lld/%lld (rejected %lld=full:%lld+stop:%lld+shed:%lld, failed %lld, "
        "retried %lld, expired %lld) | batches %lld (fill %.2f) | "
        "queue %zu | p50 %.3fms p95 %.3fms p99 %.3fms",
        static_cast<long long>(served), static_cast<long long>(submitted),
        static_cast<long long>(rejected()), static_cast<long long>(rejected_queue_full),
        static_cast<long long>(rejected_stopped), static_cast<long long>(rejected_shed),
        static_cast<long long>(failed), static_cast<long long>(retried),
        static_cast<long long>(expired), static_cast<long long>(batches), mean_batch_fill(),
        queue_depth, static_cast<double>(latency.p50_ns()) * 1e-6,
        static_cast<double>(latency.p95_ns()) * 1e-6,
        static_cast<double>(latency.p99_ns()) * 1e-6);
  }

  /// One-line fleet-health summary: canary outcomes, ABFT detection/scrub
  /// counters, lifecycle counters, and each replica's
  /// "state:score win=fill/capacity can=progress/cadence" gauge. The window
  /// fill and canary progress distinguish a stuck monitor (nothing ever
  /// recorded, no canary due) from a healthy idle one.
  [[nodiscard]] std::string health_line() const {
    std::string per;
    for (std::size_t r = 0; r < per_replica_state.size(); ++r) {
      per += detail::format_msg("%s[%zu]=%s:%.2f", r == 0 ? "" : " ", r,
                                to_string(per_replica_state[r]), per_replica_health[r]);
      if (r < per_replica_window_size.size()) {
        per += detail::format_msg(" win=%d/%d", per_replica_window_size[r],
                                  health_window_capacity);
      }
      if (canary_every_batches > 0 && r < per_replica_canary_progress.size()) {
        per += detail::format_msg(" can=%lld/%lld",
                                  static_cast<long long>(per_replica_canary_progress[r]),
                                  static_cast<long long>(canary_every_batches));
      }
    }
    return detail::format_msg(
        "canary %lld batches (%lld misses) | abft %lld hits (%lld tiles) "
        "scrubs %lld (%lld tiles) refresh %lld esc %lld | quarantines %lld repairs %lld | "
        "aged_cells %lld | %s",
        static_cast<long long>(canary_batches), static_cast<long long>(canary_failures),
        static_cast<long long>(abft_detections), static_cast<long long>(abft_flagged_tiles),
        static_cast<long long>(abft_scrubs), static_cast<long long>(abft_scrubbed_tiles),
        static_cast<long long>(periodic_refreshes), static_cast<long long>(abft_escalations),
        static_cast<long long>(quarantines), static_cast<long long>(repairs),
        static_cast<long long>(aged_cells), per.empty() ? "no replicas" : per.c_str());
  }
};

}  // namespace ftpim::serve
