// Point-in-time serving metrics snapshot.
//
// InferenceServer::stats() fills one of these under the server's stats mutex
// and hands it out by value, so readers never hold a lock into the hot path.
// The latency histogram is the merge (in replica-id order — exact and
// associative, see LatencyHistogram) of the per-worker histograms, which are
// only ever written by their owning worker thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/strformat.hpp"

namespace ftpim::serve {

struct ServerStats {
  std::int64_t submitted = 0;  ///< accepted into the queue
  std::int64_t rejected = 0;   ///< refused (full queue under kReject, or stopped)
  std::int64_t served = 0;     ///< answered with a result
  std::int64_t failed = 0;     ///< answered with an exception (forward threw)
  std::int64_t batches = 0;    ///< batched forward passes executed
  std::size_t queue_depth = 0; ///< requests waiting at snapshot time
  std::int64_t in_flight = 0;  ///< accepted but not yet answered
  std::vector<std::int64_t> per_replica_served;  ///< indexed by replica id
  LatencyHistogram latency;    ///< submit -> answer, per the server clock

  /// served / batches — how well dynamic batching is filling batches.
  [[nodiscard]] double mean_batch_fill() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(served) / static_cast<double>(batches);
  }

  /// One-line human-readable summary (callers print it; src/ never does).
  [[nodiscard]] std::string summary_line() const {
    return detail::format_msg(
        "served %lld/%lld (rejected %lld, failed %lld) | batches %lld (fill %.2f) | "
        "queue %zu | p50 %.3fms p95 %.3fms p99 %.3fms",
        static_cast<long long>(served), static_cast<long long>(submitted),
        static_cast<long long>(rejected), static_cast<long long>(failed),
        static_cast<long long>(batches), mean_batch_fill(), queue_depth,
        static_cast<double>(latency.p50_ns()) * 1e-6,
        static_cast<double>(latency.p95_ns()) * 1e-6,
        static_cast<double>(latency.p99_ns()) * 1e-6);
  }
};

}  // namespace ftpim::serve
