// Fleet of device replicas: one trained model, N defective copies.
//
// This is the paper's deployment story made executable: a single FT-trained
// network is cloned once per simulated edge device, and each clone gets its
// own persistent stuck-at defect map (drawn through the same Apply_Fault
// machinery as the offline evaluator) that stays applied for the replica's
// lifetime — no per-device retraining, no fault refresh. Replica r's map is
// seeded with derive_seed(config.seed, r), a function of the replica index
// alone, so a fleet is bit-reproducible across runs and across pool
// rebuilds.
//
// Thread-safety: replicas are disjoint deep clones (Module::clone()), so
// each may run forward() on its own thread concurrently; the pool itself is
// immutable after construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/module.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/fault_model.hpp"

namespace ftpim::serve {

struct ReplicaPoolConfig {
  int num_replicas = 1;
  double p_sa = 0.0;  ///< per-cell stuck-at probability; 0 = pristine fleet
  double sa0_fraction = kPaperSa0Fraction;
  InjectorConfig injector{};
  std::uint64_t seed = 99;  ///< master seed; replica r uses derive_seed(seed, r)
};

class ReplicaPool {
 public:
  /// Clones `source` num_replicas times and injects each clone's persistent
  /// defect map. `source` is never mutated.
  ReplicaPool(const Module& source, const ReplicaPoolConfig& config);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(replicas_.size()); }

  /// The replica model (faulted weights). Callers own the threading
  /// discipline: at most one thread drives a given replica at a time.
  [[nodiscard]] Module& replica(int index);
  [[nodiscard]] const Module& replica(int index) const;

  /// Injection outcome of replica `index` (fault counts, affected weights).
  [[nodiscard]] const InjectionStats& injection_stats(int index) const;

  /// The seed replica `index`'s defect map was drawn with.
  [[nodiscard]] std::uint64_t replica_seed(int index) const;

  [[nodiscard]] const ReplicaPoolConfig& config() const noexcept { return config_; }

 private:
  struct Replica {
    std::unique_ptr<Module> model;
    InjectionStats stats;
  };

  ReplicaPoolConfig config_;
  std::vector<Replica> replicas_;
};

}  // namespace ftpim::serve
