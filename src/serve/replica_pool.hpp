// Fleet of device replicas: one trained model, N defective copies.
//
// This is the paper's deployment story made executable: a single FT-trained
// network is cloned once per simulated edge device, and each clone gets its
// own persistent stuck-at defect map (drawn through the same Apply_Fault
// machinery as the offline evaluator) that stays applied across the
// replica's service life. Replica r's generation-0 map is seeded with
// derive_seed(config.seed, r), a function of the replica index alone, so a
// fleet is bit-reproducible across runs and across pool rebuilds.
//
// Unlike the original immutable fleet, replicas now have a LIFECYCLE:
//
//   * advance_aging() grows a replica's defect map in service (new cells
//     fail as the device wears — src/reram/aging.hpp) and re-deploys the
//     model: pristine-source re-clone + full accumulated map re-applied.
//     Rebuilding from clean weights is load-bearing — stuck-cell readback is
//     not invertible, so aged faults cannot be layered onto already-faulted
//     weights.
//   * repair() simulates swapping the device: a fresh clone of the pristine
//     source gets a FRESH defect map from the next seed generation
//     (derive_seed(derive_seed(seed, r), generation)), modeling a new
//     physical device with its own manufacturing defects.
//
// With use_redundancy the fleet deploys each clone through R-modular
// redundancy (median-of-R readout, src/reram/redundancy.hpp) instead of a
// bare defect map; aging is not modeled for redundant deployments.
//
// Thread-safety: replicas are disjoint deep clones (Module::clone()).
// Construction is exclusive; afterwards each replica — model, map, and the
// repair()/advance_aging() mutators — is single-owner state driven only by
// its worker thread, while size()/config()/source() stay safe to read from
// anywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/module.hpp"
#include "src/reram/aging.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/fault_model.hpp"
#include "src/reram/qinfer/deploy.hpp"
#include "src/reram/redundancy.hpp"

namespace ftpim::serve {

/// Which datapath a replica's device runs.
enum class ReplicaEngine {
  kFloat,      ///< faults folded into float weights (fault_injector)
  kQuantized,  ///< int8 conductance-domain engines behind MvmHooks
};

struct ReplicaPoolConfig {
  int num_replicas = 1;
  double p_sa = 0.0;  ///< per-cell stuck-at probability; 0 = pristine fleet
  double sa0_fraction = kPaperSa0Fraction;
  InjectorConfig injector{};
  std::uint64_t seed = 99;  ///< master seed; replica r uses derive_seed(seed, r)
  bool use_redundancy = false;  ///< deploy via median-of-R instead of a defect map
  RedundancyConfig redundancy{};
  /// kQuantized deploys every replica through QuantizedDeployment: weights
  /// stay clean in the model, faults live in the engines' level domain, and
  /// the SAME per-replica defect map stream is drawn as on the float path
  /// (seed_for is engine-independent). Incompatible with use_redundancy.
  ReplicaEngine engine = ReplicaEngine::kFloat;
  qinfer::QuantizedEngineConfig quantized{};  ///< engine == kQuantized only
};

class ReplicaPool {
 public:
  /// Clones `source` num_replicas times and injects each clone's persistent
  /// defect map. `source` is never mutated; a pristine clone is retained for
  /// repairs and aging rebuilds.
  ReplicaPool(const Module& source, const ReplicaPoolConfig& config);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(replicas_.size()); }

  /// The replica model (faulted weights). Callers own the threading
  /// discipline: at most one thread drives a given replica at a time.
  [[nodiscard]] Module& replica(int index);
  [[nodiscard]] const Module& replica(int index) const;

  /// The pristine source model (clean weights, never faulted). Canary golden
  /// outputs are computed from a clone of this.
  [[nodiscard]] const Module& source() const noexcept { return *source_; }

  /// Injection outcome of replica `index` (fault counts, affected weights).
  /// After aging rebuilds this reflects the full accumulated map.
  [[nodiscard]] const InjectionStats& injection_stats(int index) const;

  /// The replica's persistent defect map (empty under use_redundancy).
  [[nodiscard]] const DefectMap& defect_map(int index) const;

  /// How many times replica `index` has been repaired (generation 0 = the
  /// original device).
  [[nodiscard]] int generation(int index) const;

  /// The seed replica `index`'s CURRENT defect map was drawn with; generation
  /// 0 keeps the historical derive_seed(seed, index) stream.
  [[nodiscard]] std::uint64_t replica_seed(int index) const;

  /// Replaces replica `index` with a new device: fresh clone of the pristine
  /// source, fresh defect map from the next seed generation. Single-owner
  /// mutator — only the replica's worker may call this.
  void repair(int index);

  /// Whole-replica background refresh ("re-program the die"): re-deploys
  /// replica `index` from retained clean state and re-applies its persistent
  /// defect map. Transient damage (upsets landed directly in an engine's
  /// level domain, or injected into float weights) heals; manufacturing and
  /// aging faults — everything recorded in the map — come straight back. On
  /// the quantized path this is clear_defects + map re-apply over engines
  /// that retain their programmed levels, and the ABFT baseline is left
  /// untouched so post-baseline faults keep detecting; on the float path it
  /// is a pristine re-clone + map re-apply. No generation bump, no map
  /// change, no window reset. Returns the engine tiles re-programmed (0 on
  /// the float path). Single-owner mutator. Requires !use_redundancy.
  std::int64_t refresh(int index);

  /// Ages replica `index` to `target_intervals` (monotone; no-op when already
  /// there): grows its map via `aging` and, if anything changed, re-deploys
  /// from the pristine source with the accumulated map. Returns the number of
  /// cell faults added. Single-owner mutator. Requires !use_redundancy.
  std::int64_t advance_aging(int index, const AgingModel& aging, std::int64_t target_intervals);

  /// Intervals replica `index` has been aged through so far.
  [[nodiscard]] std::int64_t aged_intervals(int index) const;

  /// The replica's quantized deployment (nullptr on the float path). The
  /// mutable overload is single-owner like repair() — chaos/test harnesses
  /// use it to land transient upsets directly in an engine's level domain.
  [[nodiscard]] const qinfer::QuantizedDeployment* deployment(int index) const;
  [[nodiscard]] qinfer::QuantizedDeployment* deployment(int index);

  [[nodiscard]] const ReplicaPoolConfig& config() const noexcept { return config_; }

  // --- ABFT (engine == kQuantized with quantized.abft.enabled only) ---

  /// True when replicas verify every MVM through ABFT checksum columns.
  [[nodiscard]] bool abft_armed() const noexcept {
    return config_.engine == ReplicaEngine::kQuantized && config_.quantized.abft.enabled;
  }

  /// Drains replica `index`'s per-layer detection reports accumulated since
  /// the last drain. Single-owner, like repair().
  [[nodiscard]] std::vector<abft::TileFaultReport> take_abft_reports(int index);

  /// Detection-triggered scrub: re-programs every tile flagged in `reports`
  /// from the engines' retained levels, then re-applies the replica's
  /// persistent defect map — transient faults heal, manufacturing and
  /// aging-grown faults resurface (and keep detections alive, which is what
  /// escalates persistent damage to a full repair). Returns tiles scrubbed.
  /// Single-owner mutator; no re-clone, no generation change.
  std::int64_t scrub(int index, const std::vector<abft::TileFaultReport>& reports);

 private:
  struct Replica {
    std::unique_ptr<Module> model;
    /// Declared after model: destroyed first, so hook uninstall still sees a
    /// live model. Engines hold clean levels + faults separately, which is
    /// why aging below never needs a model re-clone on the quantized path.
    std::unique_ptr<qinfer::QuantizedDeployment> deployment;
    InjectionStats stats;
    DefectMap map;
    int generation = 0;
    std::int64_t aged_intervals = 0;
  };

  [[nodiscard]] std::uint64_t seed_for(int index, int generation) const;
  void install(Replica& rep, int index);  ///< clone source + apply the map for its seed
  [[nodiscard]] const Replica& at(int index, const char* what) const;
  [[nodiscard]] Replica& at(int index, const char* what);

  ReplicaPoolConfig config_;
  std::unique_ptr<Module> source_;  ///< pristine clone; never faulted
  std::vector<Replica> replicas_;
};

}  // namespace ftpim::serve
