// Per-replica health scoring for the self-healing fleet.
//
// Each replica carries a sliding OutcomeWindow of recent outcomes: batch
// forward results and known-answer canary samples (see InferenceServer's
// maintenance path, which compares canary logits against golden outputs from
// the pristine source model). The window's success rate is the replica's
// health score; thresholds map the score to a three-state machine
//
//   healthy  --score < suspect_below-->  suspect
//   suspect  --score < quarantine_below-->  quarantined
//   quarantined  --repair (re-clone + fresh map), mark_repaired-->  healthy
//
// with a min_samples evidence gate so a single early failure cannot
// quarantine a fresh replica. All state is integer counts over a recorded
// sequence, so the decisions — and everything downstream of them, repairs
// included — are bit-reproducible in deterministic serving mode.
//
// Thread safety: fully synchronized on an internal mutex. Workers record
// outcomes for their own replica but read snapshots of every replica's
// state, and the stats path reads all of them at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/thread_annotations.hpp"

namespace ftpim::serve {

enum class ReplicaHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
};

[[nodiscard]] const char* to_string(ReplicaHealth state) noexcept;

/// When replicas get re-programmed in service.
enum class ScrubPolicy : std::uint8_t {
  /// Scrub only the tiles ABFT flags, when it flags them (the PR 9 path;
  /// requires a quantized deployment with abft.enabled to do anything).
  kDetectionDriven = 0,
  /// Additionally refresh the whole replica every scrub_every_batches served
  /// batches (ReplicaPool::refresh): re-program from retained state and
  /// re-apply the persistent map, healing transient damage on a schedule —
  /// before, or without, any detector ringing. Works on both datapaths; the
  /// detection-driven tile scrubs stay active alongside it.
  kPeriodic = 1,
};

[[nodiscard]] const char* to_string(ScrubPolicy policy) noexcept;

struct HealthConfig {
  int window = 64;                 ///< outcomes remembered per replica
  int min_samples = 8;             ///< evidence gate: healthy until this many outcomes
  double suspect_below = 0.95;     ///< score below this -> suspect
  double quarantine_below = 0.70;  ///< score below this -> quarantined
  /// Canary cadence: every this many served batches a worker runs the
  /// known-answer probe set through its replica (0 = canaries off).
  std::int64_t canary_every_batches = 0;
  int canary_samples = 4;          ///< probe inputs per canary batch
  /// Canary pass criterion: >= 0 compares logits within this absolute error;
  /// < 0 (default) compares argmax predictions only.
  float canary_max_abs_err = -1.0f;
  std::uint64_t canary_seed = 1234;
  /// Quarantined replicas are repaired in place (re-cloned from the pristine
  /// source with a fresh defect map) by their worker.
  bool repair_on_quarantine = true;
  /// ABFT detection handling (quantized deployments with abft.enabled only):
  /// scrub the flagged tiles in place before escalating to quarantine.
  bool scrub_on_detection = true;
  /// Consecutive detected batches tolerated (each answered with a scrub when
  /// scrub_on_detection) before the replica is force-quarantined. A
  /// transient fault heals on the first scrub; a persistent one survives
  /// every retry and escalates to the full repair path.
  int max_scrub_retries = 3;
  /// Each ABFT-detected batch also records one failure outcome into the
  /// replica's window, so detections depress the health score like any other
  /// failure signal.
  bool detection_fails_window = true;
  /// Scrub scheduling (see ScrubPolicy). kPeriodic requires a cadence.
  ScrubPolicy scrub_policy = ScrubPolicy::kDetectionDriven;
  /// kPeriodic only: served batches between whole-replica refreshes (> 0).
  std::int64_t scrub_every_batches = 0;

  void validate() const;
};

class HealthMonitor {
 public:
  HealthMonitor(int num_replicas, const HealthConfig& config);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Records `count` identical outcomes for one replica (a batch of N
  /// requests that all succeeded or all failed records N at once).
  void record(int replica_id, bool success, int count = 1);

  /// Health score in [0,1]: the window's success rate (1.0 while empty).
  [[nodiscard]] double score(int replica_id) const;

  /// Threshold mapping of score(); healthy until min_samples outcomes exist.
  [[nodiscard]] ReplicaHealth state(int replica_id) const;

  /// Clears the replica's window after a repair — the new device starts with
  /// a clean record — and bumps its repair count (also lifts a forced
  /// quarantine).
  void mark_repaired(int replica_id);

  /// Records one ABFT-detected batch: bumps the replica's detection counters
  /// and (when config.detection_fails_window) records one failure outcome.
  void record_detection(int replica_id, std::int64_t flagged_tiles);

  /// Pins the replica to kQuarantined regardless of its window score — the
  /// escalation path when scrub retries are exhausted. Sticky until
  /// mark_repaired.
  void force_quarantine(int replica_id);

  struct Snapshot {
    double score = 1.0;
    ReplicaHealth state = ReplicaHealth::kHealthy;
    int repairs = 0;
    int window_size = 0;      ///< outcomes currently in the window
    int window_capacity = 0;  ///< the window's configured capacity
    std::int64_t detections = 0;     ///< ABFT-detected batches
    std::int64_t flagged_tiles = 0;  ///< tiles named across those detections
    bool forced = false;             ///< quarantine pinned by force_quarantine
  };
  /// Consistent point-in-time view of every replica (one lock acquisition).
  [[nodiscard]] std::vector<Snapshot> snapshot() const;

  [[nodiscard]] int num_replicas() const noexcept {
    return static_cast<int>(replicas_.size());
  }
  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }

 private:
  struct ReplicaRecord {
    OutcomeWindow window;
    int repairs = 0;
    std::int64_t detections = 0;
    std::int64_t flagged_tiles = 0;
    bool forced_quarantine = false;
    explicit ReplicaRecord(int capacity) : window(capacity) {}
  };

  [[nodiscard]] ReplicaHealth state_locked(const ReplicaRecord& r) const FTPIM_REQUIRES(mu_);
  [[nodiscard]] const ReplicaRecord& at(int replica_id) const FTPIM_REQUIRES(mu_);
  [[nodiscard]] ReplicaRecord& at(int replica_id) FTPIM_REQUIRES(mu_);

  const HealthConfig config_;
  mutable Mutex mu_;
  std::vector<ReplicaRecord> replicas_ FTPIM_GUARDED_BY(mu_);
};

}  // namespace ftpim::serve
