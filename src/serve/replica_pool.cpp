#include "src/serve/replica_pool.hpp"

#include "src/common/check.hpp"
#include "src/common/rng.hpp"

namespace ftpim::serve {

ReplicaPool::ReplicaPool(const Module& source, const ReplicaPoolConfig& config)
    : config_(config) {
  FTPIM_CHECK_GT(config.num_replicas, 0, "ReplicaPool: num_replicas");
  FTPIM_CHECK(config.p_sa >= 0.0 && config.p_sa <= 1.0, "ReplicaPool: p_sa %g outside [0,1]",
              config.p_sa);
  FTPIM_CHECK(config.sa0_fraction >= 0.0 && config.sa0_fraction <= 1.0,
              "ReplicaPool: sa0_fraction outside [0,1]");
  config.injector.range.validate();

  replicas_.reserve(static_cast<std::size_t>(config.num_replicas));
  for (int r = 0; r < config.num_replicas; ++r) {
    Replica rep;
    rep.model = source.clone();
    if (config.p_sa > 0.0) {
      const StuckAtFaultModel fault_model(config.p_sa, config.sa0_fraction);
      Rng rng(replica_seed(r));
      rep.stats = inject_into_model(*rep.model, fault_model, config.injector, rng);
    }
    replicas_.push_back(std::move(rep));
  }
}

Module& ReplicaPool::replica(int index) {
  FTPIM_CHECK_GE(index, 0, "ReplicaPool::replica");
  FTPIM_CHECK_LT(index, size(), "ReplicaPool::replica");
  return *replicas_[static_cast<std::size_t>(index)].model;
}

const Module& ReplicaPool::replica(int index) const {
  FTPIM_CHECK_GE(index, 0, "ReplicaPool::replica");
  FTPIM_CHECK_LT(index, size(), "ReplicaPool::replica");
  return *replicas_[static_cast<std::size_t>(index)].model;
}

const InjectionStats& ReplicaPool::injection_stats(int index) const {
  FTPIM_CHECK_GE(index, 0, "ReplicaPool::injection_stats");
  FTPIM_CHECK_LT(index, size(), "ReplicaPool::injection_stats");
  return replicas_[static_cast<std::size_t>(index)].stats;
}

std::uint64_t ReplicaPool::replica_seed(int index) const {
  FTPIM_CHECK_GE(index, 0, "ReplicaPool::replica_seed");
  FTPIM_CHECK_LT(index, config_.num_replicas, "ReplicaPool::replica_seed");
  return derive_seed(config_.seed, static_cast<std::uint64_t>(index));
}

}  // namespace ftpim::serve
