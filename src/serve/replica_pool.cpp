#include "src/serve/replica_pool.hpp"

#include "src/common/check.hpp"
#include "src/common/rng.hpp"

namespace ftpim::serve {

ReplicaPool::ReplicaPool(const Module& source, const ReplicaPoolConfig& config)
    : config_(config) {
  FTPIM_CHECK_GT(config.num_replicas, 0, "ReplicaPool: num_replicas");
  FTPIM_CHECK(config.p_sa >= 0.0 && config.p_sa <= 1.0, "ReplicaPool: p_sa %g outside [0,1]",
              config.p_sa);
  FTPIM_CHECK(config.sa0_fraction >= 0.0 && config.sa0_fraction <= 1.0,
              "ReplicaPool: sa0_fraction outside [0,1]");
  config.injector.range.validate();
  FTPIM_CHECK(!(config.engine == ReplicaEngine::kQuantized && config.use_redundancy),
              "ReplicaPool: redundancy is not modeled for quantized deployments");
  if (config.engine == ReplicaEngine::kQuantized) config.quantized.validate();

  source_ = source.clone();
  replicas_.resize(static_cast<std::size_t>(config.num_replicas));
  for (int r = 0; r < config.num_replicas; ++r) {
    install(replicas_[static_cast<std::size_t>(r)], r);
  }
}

std::uint64_t ReplicaPool::seed_for(int index, int generation) const {
  // Generation 0 keeps the historical one-level stream (a fleet that never
  // repairs reproduces pre-lifecycle pools bit-for-bit); repairs descend one
  // more derive_seed level so every physical device gets its own stream.
  const std::uint64_t base = derive_seed(config_.seed, static_cast<std::uint64_t>(index));
  if (generation == 0) return base;
  return derive_seed(base, static_cast<std::uint64_t>(generation));
}

namespace {

/// Stats of a level-domain map application. Unlike the float injector this
/// counts weights with at least one stuck cell (the float path counts
/// weights whose VALUE changed, which excludes benign hits like stuck-off
/// on an already-level-0 cell).
InjectionStats quantized_map_stats(const DefectMap& map) {
  InjectionStats stats;
  stats.cells = map.cell_count();
  stats.faulted_cells = map.fault_count();
  std::int64_t prev_weight = -1;
  for (const CellFault& f : map.faults()) {
    const std::int64_t w = f.cell_index / 2;
    if (w != prev_weight) {
      ++stats.affected_weights;
      prev_weight = w;
    }
  }
  return stats;
}

}  // namespace

void ReplicaPool::install(Replica& rep, int index) {
  // Tear down any previous deployment BEFORE replacing the model it hooks.
  rep.deployment.reset();
  rep.model = source_->clone();
  rep.stats = InjectionStats{};
  rep.aged_intervals = 0;
  if (config_.engine == ReplicaEngine::kQuantized) {
    rep.deployment = qinfer::deploy_quantized(*rep.model, config_.quantized);
    rep.map = DefectMap::empty(rep.deployment->cell_count());
    rep.stats.cells = rep.deployment->cell_count();
    if (config_.p_sa > 0.0) {
      const StuckAtFaultModel fault_model(config_.p_sa, config_.sa0_fraction);
      Rng rng(seed_for(index, rep.generation));
      rep.map = DefectMap::sample(rep.deployment->cell_count(), fault_model, rng);
      rep.deployment->apply_defect_map(rep.map);
      rep.stats = quantized_map_stats(rep.map);
    }
    // Accept the manufacturing defects of this die as the ABFT reference
    // state: an FT-trained network tolerates them, so they must not ring the
    // detector forever (and trigger repair thrash). Aging faults land AFTER
    // this baseline and are detected within one batch.
    if (rep.deployment->abft_enabled()) rep.deployment->abft_rebaseline();
    return;
  }
  if (config_.use_redundancy) {
    rep.map = DefectMap();
    if (config_.p_sa > 0.0) {
      const StuckAtFaultModel fault_model(config_.p_sa, config_.sa0_fraction);
      Rng rng(seed_for(index, rep.generation));
      const RedundantInjectionStats rs =
          inject_model_with_redundancy(*rep.model, fault_model, config_.redundancy, rng);
      rep.stats.cells = rs.cells;
      rep.stats.faulted_cells = rs.faulted_cells;
      rep.stats.affected_weights = rs.affected_weights;
    }
    return;
  }
  const std::int64_t cells = crossbar_cell_count(*rep.model);
  if (config_.p_sa > 0.0) {
    const StuckAtFaultModel fault_model(config_.p_sa, config_.sa0_fraction);
    Rng rng(seed_for(index, rep.generation));
    rep.map = DefectMap::sample(cells, fault_model, rng);
    rep.stats = apply_defect_map_to_model(*rep.model, rep.map, config_.injector);
  } else {
    // Pristine deployment: keep the trained weights untouched (no map, no
    // quantization pass) but carry an empty map so in-service aging has a
    // cell array to grow into.
    rep.map = DefectMap::empty(cells);
    rep.stats.cells = cells;
  }
}

const ReplicaPool::Replica& ReplicaPool::at(int index, const char* what) const {
  FTPIM_CHECK(index >= 0 && index < size(), "ReplicaPool::%s: index %d outside [0,%d)", what,
              index, size());
  return replicas_[static_cast<std::size_t>(index)];
}

ReplicaPool::Replica& ReplicaPool::at(int index, const char* what) {
  return const_cast<Replica&>(static_cast<const ReplicaPool*>(this)->at(index, what));
}

Module& ReplicaPool::replica(int index) { return *at(index, "replica").model; }

const Module& ReplicaPool::replica(int index) const { return *at(index, "replica").model; }

const InjectionStats& ReplicaPool::injection_stats(int index) const {
  return at(index, "injection_stats").stats;
}

const DefectMap& ReplicaPool::defect_map(int index) const { return at(index, "defect_map").map; }

int ReplicaPool::generation(int index) const { return at(index, "generation").generation; }

std::int64_t ReplicaPool::aged_intervals(int index) const {
  return at(index, "aged_intervals").aged_intervals;
}

std::uint64_t ReplicaPool::replica_seed(int index) const {
  const Replica& rep = at(index, "replica_seed");
  return seed_for(index, rep.generation);
}

void ReplicaPool::repair(int index) {
  Replica& rep = at(index, "repair");
  ++rep.generation;
  install(rep, index);
}

std::int64_t ReplicaPool::refresh(int index) {
  FTPIM_CHECK(!config_.use_redundancy,
              "ReplicaPool::refresh: refresh is not modeled for redundant deployments");
  Replica& rep = at(index, "refresh");
  if (config_.engine == ReplicaEngine::kQuantized) {
    rep.deployment->clear_defects();
    if (rep.map.fault_count() > 0) rep.deployment->apply_defect_map(rep.map);
    rep.stats = quantized_map_stats(rep.map);
    std::int64_t tiles = 0;
    for (std::size_t i = 0; i < rep.deployment->layer_count(); ++i) {
      tiles += rep.deployment->engine(i).tile_count();
    }
    return tiles;
  }
  rep.model = source_->clone();
  if (rep.map.fault_count() > 0) {
    rep.stats = apply_defect_map_to_model(*rep.model, rep.map, config_.injector);
  } else {
    rep.stats = InjectionStats{};
    rep.stats.cells = rep.map.cell_count();
  }
  return 0;
}

std::int64_t ReplicaPool::advance_aging(int index, const AgingModel& aging,
                                        std::int64_t target_intervals) {
  FTPIM_CHECK(!config_.use_redundancy,
              "ReplicaPool::advance_aging: aging is not modeled for redundant deployments");
  Replica& rep = at(index, "advance_aging");
  if (target_intervals <= rep.aged_intervals) return 0;
  const std::int64_t added =
      aging.evolve(rep.map, seed_for(index, rep.generation), rep.aged_intervals, target_intervals);
  rep.aged_intervals = target_intervals;
  if (added > 0) {
    if (config_.engine == ReplicaEngine::kQuantized) {
      // Level-domain fault application is NON-destructive: the engines keep
      // clean programmed levels separately from faults, so the grown map
      // layers straight on — no pristine re-clone, no re-programming.
      rep.deployment->apply_defect_map(rep.map);
      rep.stats = quantized_map_stats(rep.map);
    } else {
      // Stuck-cell readback is lossy, so the grown map cannot be layered
      // onto the already-faulted weights: re-deploy from the pristine
      // source.
      rep.model = source_->clone();
      rep.stats = apply_defect_map_to_model(*rep.model, rep.map, config_.injector);
    }
  }
  return added;
}

const qinfer::QuantizedDeployment* ReplicaPool::deployment(int index) const {
  return at(index, "deployment").deployment.get();
}

qinfer::QuantizedDeployment* ReplicaPool::deployment(int index) {
  return at(index, "deployment").deployment.get();
}

std::vector<abft::TileFaultReport> ReplicaPool::take_abft_reports(int index) {
  Replica& rep = at(index, "take_abft_reports");
  FTPIM_CHECK(abft_armed() && rep.deployment != nullptr,
              "ReplicaPool::take_abft_reports: ABFT requires a quantized deployment");
  return rep.deployment->take_abft_reports();
}

std::int64_t ReplicaPool::scrub(int index, const std::vector<abft::TileFaultReport>& reports) {
  Replica& rep = at(index, "scrub");
  FTPIM_CHECK(abft_armed() && rep.deployment != nullptr,
              "ReplicaPool::scrub: ABFT requires a quantized deployment");
  const std::int64_t scrubbed = rep.deployment->scrub(reports);
  // Re-apply the persistent map: a scrub is "re-program the tile", not
  // "pretend the die never aged". Faults recorded in the map come back and,
  // if they keep tripping the checksum, escalate through the health monitor
  // to a real repair.
  if (scrubbed > 0) rep.deployment->apply_defect_map(rep.map);
  return scrubbed;
}

}  // namespace ftpim::serve
