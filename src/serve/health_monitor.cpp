#include "src/serve/health_monitor.hpp"

#include "src/common/check.hpp"

namespace ftpim::serve {

const char* to_string(ReplicaHealth state) noexcept {
  switch (state) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kSuspect: return "suspect";
    case ReplicaHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

const char* to_string(ScrubPolicy policy) noexcept {
  switch (policy) {
    case ScrubPolicy::kDetectionDriven: return "detection-driven";
    case ScrubPolicy::kPeriodic: return "periodic";
  }
  return "unknown";
}

void HealthConfig::validate() const {
  FTPIM_CHECK_GT(window, 0, "HealthConfig: window");
  FTPIM_CHECK_GT(min_samples, 0, "HealthConfig: min_samples");
  FTPIM_CHECK(min_samples <= window, "HealthConfig: min_samples %d exceeds window %d",
              min_samples, window);
  FTPIM_CHECK(suspect_below >= 0.0 && suspect_below <= 1.0,
              "HealthConfig: suspect_below %g outside [0,1]", suspect_below);
  FTPIM_CHECK(quarantine_below >= 0.0 && quarantine_below <= 1.0,
              "HealthConfig: quarantine_below %g outside [0,1]", quarantine_below);
  FTPIM_CHECK(quarantine_below <= suspect_below,
              "HealthConfig: quarantine_below %g must not exceed suspect_below %g",
              quarantine_below, suspect_below);
  FTPIM_CHECK_GE(canary_every_batches, std::int64_t{0}, "HealthConfig: canary_every_batches");
  FTPIM_CHECK_GT(canary_samples, 0, "HealthConfig: canary_samples");
  FTPIM_CHECK_GE(max_scrub_retries, 0, "HealthConfig: max_scrub_retries");
  FTPIM_CHECK_GE(scrub_every_batches, std::int64_t{0}, "HealthConfig: scrub_every_batches");
  FTPIM_CHECK(scrub_policy != ScrubPolicy::kPeriodic || scrub_every_batches > 0,
              "HealthConfig: ScrubPolicy::kPeriodic requires scrub_every_batches > 0");
}

HealthMonitor::HealthMonitor(int num_replicas, const HealthConfig& config) : config_(config) {
  FTPIM_CHECK_GT(num_replicas, 0, "HealthMonitor: num_replicas");
  config.validate();
  replicas_.reserve(static_cast<std::size_t>(num_replicas));
  for (int r = 0; r < num_replicas; ++r) replicas_.emplace_back(config.window);
}

const HealthMonitor::ReplicaRecord& HealthMonitor::at(int replica_id) const {
  FTPIM_CHECK(replica_id >= 0 && replica_id < num_replicas(),
              "HealthMonitor: replica_id %d outside [0,%d)", replica_id, num_replicas());
  return replicas_[static_cast<std::size_t>(replica_id)];
}

HealthMonitor::ReplicaRecord& HealthMonitor::at(int replica_id) {
  return const_cast<ReplicaRecord&>(static_cast<const HealthMonitor*>(this)->at(replica_id));
}

void HealthMonitor::record(int replica_id, bool success, int count) {
  FTPIM_CHECK_GE(count, 0, "HealthMonitor::record: count");
  MutexLock lock(mu_);
  ReplicaRecord& r = at(replica_id);
  for (int i = 0; i < count; ++i) r.window.record(success);
}

double HealthMonitor::score(int replica_id) const {
  MutexLock lock(mu_);
  return at(replica_id).window.success_rate();
}

ReplicaHealth HealthMonitor::state_locked(const ReplicaRecord& r) const {
  // A forced quarantine (exhausted scrub retries) overrides the score: the
  // detection signal is exact, so it needs no min_samples evidence gate.
  if (r.forced_quarantine) return ReplicaHealth::kQuarantined;
  if (r.window.size() < config_.min_samples) return ReplicaHealth::kHealthy;
  const double s = r.window.success_rate();
  if (s < config_.quarantine_below) return ReplicaHealth::kQuarantined;
  if (s < config_.suspect_below) return ReplicaHealth::kSuspect;
  return ReplicaHealth::kHealthy;
}

ReplicaHealth HealthMonitor::state(int replica_id) const {
  MutexLock lock(mu_);
  return state_locked(at(replica_id));
}

void HealthMonitor::mark_repaired(int replica_id) {
  MutexLock lock(mu_);
  ReplicaRecord& r = at(replica_id);
  r.window.reset();
  r.forced_quarantine = false;
  ++r.repairs;
}

void HealthMonitor::record_detection(int replica_id, std::int64_t flagged_tiles) {
  FTPIM_CHECK_GE(flagged_tiles, std::int64_t{0}, "HealthMonitor::record_detection");
  MutexLock lock(mu_);
  ReplicaRecord& r = at(replica_id);
  ++r.detections;
  r.flagged_tiles += flagged_tiles;
  if (config_.detection_fails_window) r.window.record(false);
}

void HealthMonitor::force_quarantine(int replica_id) {
  MutexLock lock(mu_);
  at(replica_id).forced_quarantine = true;
}

std::vector<HealthMonitor::Snapshot> HealthMonitor::snapshot() const {
  MutexLock lock(mu_);
  std::vector<Snapshot> out;
  out.reserve(replicas_.size());
  for (const ReplicaRecord& r : replicas_) {
    Snapshot s;
    s.score = r.window.success_rate();
    s.state = state_locked(r);
    s.repairs = r.repairs;
    s.window_size = r.window.size();
    s.window_capacity = config_.window;
    s.detections = r.detections;
    s.flagged_tiles = r.flagged_tiles;
    s.forced = r.forced_quarantine;
    out.push_back(s);
  }
  return out;
}

}  // namespace ftpim::serve
