#include "src/serve/request_queue.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace ftpim::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  FTPIM_CHECK_GT(capacity, std::size_t{0}, "RequestQueue: capacity");
}

bool RequestQueue::push(Request&& request) {
  MutexLock lock(mu_);
  while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
  if (closed_) return false;
  items_.push_back(std::move(request));
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::try_push(Request&& request) {
  MutexLock lock(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(std::move(request));
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::pop(Request& out) {
  MutexLock lock(mu_);
  while (!closed_ && items_.empty()) not_empty_.wait(lock);
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

bool RequestQueue::try_pop(Request& out) {
  MutexLock lock(mu_);
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

bool RequestQueue::pop_for(Request& out, std::int64_t timeout_ns) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(std::max<std::int64_t>(timeout_ns, 0));
  MutexLock lock(mu_);
  while (!closed_ && items_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    (void)not_empty_.wait_for(lock, deadline - now);
  }
  if (items_.empty()) return false;  // timeout, or closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

void RequestQueue::close() {
  MutexLock lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  MutexLock lock(mu_);
  return items_.size();
}

}  // namespace ftpim::serve
