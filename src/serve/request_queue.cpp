#include "src/serve/request_queue.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace ftpim::serve {

FTPIM_HOT bool answer(Request& request, InferenceResult&& result) noexcept {
  try {
    request.promise.set_value(std::move(result));
    return true;
  } catch (const std::future_error&) {
    return false;  // promise already satisfied or abandoned
  }
}

FTPIM_COLD bool answer_error(Request& request, std::exception_ptr error) noexcept {
  try {
    request.promise.set_exception(std::move(error));
    return true;
  } catch (const std::future_error&) {
    return false;
  }
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  FTPIM_CHECK_GT(capacity, std::size_t{0}, "RequestQueue: capacity");
}

bool RequestQueue::push(Request&& request) {
  MutexLock lock(mu_);
  while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
  if (closed_) return false;
  items_.push_back(std::move(request));
  not_empty_.notify_one();
  return true;
}

FTPIM_HOT bool RequestQueue::try_push(Request&& request) {
  MutexLock lock(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(std::move(request));
  not_empty_.notify_one();
  return true;
}

FTPIM_HOT bool RequestQueue::pop(Request& out) {
  MutexLock lock(mu_);
  while (!closed_ && items_.empty()) not_empty_.wait(lock);
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

FTPIM_HOT bool RequestQueue::try_pop(Request& out) {
  MutexLock lock(mu_);
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

FTPIM_HOT PopResult RequestQueue::pop_for(Request& out, std::int64_t timeout_ns) {
  MutexLock lock(mu_);
  // The predicate overload owns the timeout bookkeeping (spurious wakeups
  // included) — no wall-clock read here, which keeps src/serve's "all time
  // flows through ServeClock" lint rule honest outside clock.hpp.
  (void)not_empty_.wait_for(lock, std::chrono::nanoseconds(std::max<std::int64_t>(timeout_ns, 0)),
                            [this]() FTPIM_NO_THREAD_SAFETY_ANALYSIS {
                              return closed_ || !items_.empty();
                            });
  if (items_.empty()) return closed_ ? PopResult::kClosed : PopResult::kTimeout;
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return PopResult::kItem;
}

void RequestQueue::close() {
  MutexLock lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  MutexLock lock(mu_);
  return items_.size();
}

}  // namespace ftpim::serve
