#include "src/serve/inference_server.hpp"

#include "src/common/check.hpp"
#include "src/common/logging.hpp"
#include "src/tensor/tensor_ops.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

namespace ftpim::serve {

InferenceServer::InferenceServer(const Module& model, const ServerConfig& config)
    : config_(config),
      pool_(model, config.pool),
      clock_(config.clock != nullptr ? config.clock : &default_clock_),
      queue_(config.queue_capacity) {
  config_.batching.validate();
  MutexLock lock(mu_);
  per_replica_served_.assign(static_cast<std::size_t>(pool_.size()), 0);
  per_worker_latency_.assign(static_cast<std::size_t>(pool_.size()), LatencyHistogram{});
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::reject(Request&& request, const char* why) {
  request.promise.set_exception(std::make_exception_ptr(std::runtime_error(why)));
  MutexLock lock(mu_);
  ++rejected_;
  --submitted_;
  --in_flight_;
  if (in_flight_ == 0) drained_.notify_all();
}

std::future<InferenceResult> InferenceServer::submit(Tensor input) {
  FTPIM_CHECK_EQ(input.rank(), std::size_t{3}, "InferenceServer::submit: input must be [C,H,W]");
  Request req;
  req.input = std::move(input);
  req.enqueue_ns = clock_->now_ns();
  std::future<InferenceResult> fut = req.promise.get_future();

  {
    MutexLock lock(mu_);
    if (state_ == State::kStopped) {
      // Reject inline (under the same lock as the counter) — queue is closed.
      req.promise.set_exception(
          std::make_exception_ptr(std::runtime_error("InferenceServer: stopped")));
      ++rejected_;
      return fut;
    }
    if (input_shape_.empty()) {
      input_shape_ = req.input.shape();
    } else {
      FTPIM_CHECK(req.input.shape() == input_shape_,
                  "InferenceServer::submit: input shape %s differs from the server's %s",
                  shape_to_string(req.input.shape()).c_str(),
                  shape_to_string(input_shape_).c_str());
    }
    req.id = next_id_++;
    // Count before the push so drain() never observes an accepted-but-
    // uncounted request; reject() rolls this back on push failure.
    ++submitted_;
    ++in_flight_;
  }

  // The (possibly blocking) push runs outside mu_ — workers take mu_ to
  // publish batch results and must stay able to while a client waits here.
  const bool accepted = config_.overflow == OverflowPolicy::kBlock
                            ? queue_.push(std::move(req))
                            : queue_.try_push(std::move(req));
  if (!accepted) {
    // push/try_push leave the request intact on failure.
    reject(std::move(req), config_.overflow == OverflowPolicy::kBlock
                               ? "InferenceServer: stopped"
                               : "InferenceServer: queue full");
  }
  return fut;
}

void InferenceServer::start() {
  {
    MutexLock lock(mu_);
    FTPIM_CHECK(state_ == State::kIdle, "InferenceServer::start: already started");
    state_ = State::kRunning;
  }
  workers_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int r = 0; r < pool_.size(); ++r) {
    workers_.emplace_back([this, r] { worker_loop(r); });
  }
  log_debug("serve: started %d worker(s), queue capacity %zu", pool_.size(),
            queue_.capacity());
}

void InferenceServer::drain() {
  MutexLock lock(mu_);
  FTPIM_CHECK(state_ == State::kRunning, "InferenceServer::drain: server not running");
  while (in_flight_ > 0) drained_.wait(lock);
}

void InferenceServer::stop() {
  {
    MutexLock lock(mu_);
    if (state_ == State::kStopped) return;
    state_ = State::kStopped;
  }
  queue_.close();  // workers flush the remaining accepted requests, then exit
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Never-started servers have no workers; answer whatever is still queued so
  // no future is left dangling with a broken promise.
  Request leftover;
  while (queue_.try_pop(leftover)) {
    leftover.promise.set_exception(
        std::make_exception_ptr(std::runtime_error("InferenceServer: stopped before serving")));
    MutexLock lock(mu_);
    ++rejected_;
    --in_flight_;
    if (in_flight_ == 0) drained_.notify_all();
  }
}

bool InferenceServer::running() const {
  MutexLock lock(mu_);
  return state_ == State::kRunning;
}

ServerStats InferenceServer::stats() const {
  ServerStats out;
  out.queue_depth = queue_.size();
  MutexLock lock(mu_);
  out.submitted = submitted_;
  out.rejected = rejected_;
  out.served = served_;
  out.failed = failed_;
  out.batches = batches_;
  out.in_flight = in_flight_;
  out.per_replica_served = per_replica_served_;
  for (const LatencyHistogram& h : per_worker_latency_) out.latency.merge(h);
  return out;
}

void InferenceServer::worker_loop(int replica_id) {
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(config_.batching.max_batch_size));
  while (true) {
    Request first;
    if (!queue_.pop(first)) break;  // closed and drained -> exit
    batch.clear();
    batch.push_back(std::move(first));
    const std::int64_t open_ns = clock_->now_ns();

    // Coalesce: greedily take what is already queued; once the queue runs
    // dry, wait out the remaining linger budget (per the injectable clock;
    // the bounded cv-wait itself is real time).
    while (!config_.batching.full(static_cast<std::int64_t>(batch.size()))) {
      Request more;
      if (queue_.try_pop(more)) {
        batch.push_back(std::move(more));
        continue;
      }
      const std::int64_t remaining =
          config_.batching.remaining_linger_ns(clock_->now_ns(), open_ns);
      if (remaining == 0) break;
      if (!queue_.pop_for(more, remaining)) break;  // linger expired or closing
      batch.push_back(std::move(more));
    }
    run_batch(replica_id, batch);
  }
}

void InferenceServer::run_batch(int replica_id, std::vector<Request>& batch) {
  const auto batch_size = static_cast<std::int64_t>(batch.size());
  const Shape& sample_shape = batch.front().input.shape();
  Shape batched_shape;
  batched_shape.reserve(sample_shape.size() + 1);
  batched_shape.push_back(batch_size);
  batched_shape.insert(batched_shape.end(), sample_shape.begin(), sample_shape.end());

  Tensor inputs(std::move(batched_shape));
  const std::int64_t sample_numel = batch.front().input.numel();
  for (std::int64_t i = 0; i < batch_size; ++i) {
    std::memcpy(inputs.data() + i * sample_numel,
                batch[static_cast<std::size_t>(i)].input.data(),
                static_cast<std::size_t>(sample_numel) * sizeof(float));
  }

  bool ok = true;
  Tensor logits;
  try {
    logits = pool_.replica(replica_id).forward(inputs, /*training=*/false);
    FTPIM_CHECK_EQ(logits.rank(), std::size_t{2}, "serve: model output must be [N, classes]");
    FTPIM_CHECK_EQ(logits.dim(0), batch_size, "serve: model output batch mismatch");
  } catch (...) {
    ok = false;
    const std::exception_ptr error = std::current_exception();
    for (Request& req : batch) req.promise.set_exception(error);
  }

  const std::int64_t done_ns = clock_->now_ns();
  if (ok) {
    const std::int64_t classes = logits.dim(1);
    for (std::int64_t i = 0; i < batch_size; ++i) {
      Request& req = batch[static_cast<std::size_t>(i)];
      InferenceResult res;
      res.logits = Tensor(Shape{classes});
      std::memcpy(res.logits.data(), logits.data() + i * classes,
                  static_cast<std::size_t>(classes) * sizeof(float));
      res.predicted = argmax_row(logits, i);
      res.replica_id = replica_id;
      res.batch_size = batch_size;
      res.latency_ns = std::max<std::int64_t>(std::int64_t{0}, done_ns - req.enqueue_ns);
      req.promise.set_value(std::move(res));
    }
  }

  MutexLock lock(mu_);
  ++batches_;
  if (ok) {
    served_ += batch_size;
    per_replica_served_[static_cast<std::size_t>(replica_id)] += batch_size;
    LatencyHistogram& hist = per_worker_latency_[static_cast<std::size_t>(replica_id)];
    for (const Request& req : batch) {
      hist.record(std::max<std::int64_t>(std::int64_t{0}, done_ns - req.enqueue_ns));
    }
  } else {
    failed_ += batch_size;
  }
  in_flight_ -= batch_size;
  if (in_flight_ == 0) drained_.notify_all();
}

}  // namespace ftpim::serve
