#include "src/serve/inference_server.hpp"

#include "src/common/check.hpp"
#include "src/common/logging.hpp"
#include "src/tensor/tensor_ops.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

namespace ftpim::serve {
namespace {

/// Best-effort message extraction for wrapping a failed attempt's error.
FTPIM_COLD std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    log_debug("serve: failed attempt threw a non-std::exception payload");
    return "unknown error";
  }
}

}  // namespace

InferenceServer::InferenceServer(const Module& model, const ServerConfig& config)
    : config_(config),
      pool_(model, config.pool),
      clock_(config.clock != nullptr ? config.clock : &default_clock_),
      queue_(config.queue_capacity),
      health_(pool_.size(), config.health),
      aging_(config.aging) {
  config_.batching.validate();
  FTPIM_CHECK_GE(config.max_attempts, 1, "ServerConfig: max_attempts");
  FTPIM_CHECK_GE(config.default_deadline_ns, std::int64_t{0}, "ServerConfig: default_deadline_ns");
  FTPIM_CHECK_GE(config.shed_ns_per_queued, std::int64_t{0}, "ServerConfig: shed_ns_per_queued");
  FTPIM_CHECK(!(config.aging.enabled() && config.pool.use_redundancy),
              "ServerConfig: in-service aging is not modeled for redundant deployments");
  MutexLock lock(mu_);
  per_replica_served_.assign(static_cast<std::size_t>(pool_.size()), 0);
  per_replica_canary_progress_.assign(static_cast<std::size_t>(pool_.size()), 0);
  per_worker_latency_.assign(static_cast<std::size_t>(pool_.size()), LatencyHistogram{});
}

InferenceServer::~InferenceServer() { stop(); }

FTPIM_COLD void InferenceServer::reject(Request&& request, ServeError::Kind kind,
                                        const char* why) {
  (void)answer_error(request, std::make_exception_ptr(ServeError(kind, why)));
  MutexLock lock(mu_);
  switch (kind) {
    case ServeError::kQueueFull: ++rejected_queue_full_; break;
    case ServeError::kStopped: ++rejected_stopped_; break;
    default: ++rejected_shed_; break;
  }
  --submitted_;
  --in_flight_;
  if (in_flight_ == 0) drained_.notify_all();
}

FTPIM_COLD void InferenceServer::finish_with_error(Request& request, ServeError::Kind kind,
                                                   const std::string& why) {
  const bool delivered = answer_error(request, std::make_exception_ptr(ServeError(kind, why)));
  MutexLock lock(mu_);
  ++failed_;
  if (kind == ServeError::kDeadlineExceeded) ++expired_;
  if (!delivered) ++poisoned_;
  --in_flight_;
  if (in_flight_ == 0) drained_.notify_all();
}

std::future<InferenceResult> InferenceServer::submit(Tensor input) {
  return submit(std::move(input), SubmitOptions{});
}

std::future<InferenceResult> InferenceServer::submit(Tensor input, const SubmitOptions& options) {
  FTPIM_CHECK_EQ(input.rank(), std::size_t{3}, "InferenceServer::submit: input must be [C,H,W]");
  FTPIM_CHECK_GE(options.deadline_ns, std::int64_t{0}, "SubmitOptions: deadline_ns");
  FTPIM_CHECK_GE(options.max_attempts, 0, "SubmitOptions: max_attempts");
  Request req;
  req.input = std::move(input);
  req.enqueue_ns = clock_->now_ns();
  const std::int64_t relative_deadline =
      options.deadline_ns > 0 ? options.deadline_ns : config_.default_deadline_ns;
  req.deadline_ns = relative_deadline > 0 ? req.enqueue_ns + relative_deadline : kNoDeadlineNs;
  req.attempts_left = options.max_attempts > 0 ? options.max_attempts : config_.max_attempts;
  std::future<InferenceResult> fut = req.promise.get_future();

  {
    MutexLock lock(mu_);
    if (state_ == State::kStopped) {
      // Reject inline (under the same lock as the counter) — queue is closed.
      (void)answer_error(req,
                         std::make_exception_ptr(ServeError(ServeError::kStopped,
                                                            "InferenceServer: stopped")));
      ++rejected_stopped_;
      return fut;
    }
    if (input_shape_.empty()) {
      input_shape_ = req.input.shape();
    } else {
      FTPIM_CHECK(req.input.shape() == input_shape_,
                  "InferenceServer::submit: input shape %s differs from the server's %s",
                  shape_to_string(req.input.shape()).c_str(),
                  shape_to_string(input_shape_).c_str());
    }
    if (config_.shed_ns_per_queued > 0 && req.deadline_ns != kNoDeadlineNs) {
      // Admission control: with `depth` requests ahead of it, the newcomer's
      // predicted completion is enqueue + (depth+1)*service estimate. If that
      // already misses the deadline, failing NOW is cheaper than failing
      // after burning a queue slot and a forward pass.
      const auto depth = static_cast<std::int64_t>(queue_.size());
      const std::int64_t predicted = req.enqueue_ns + (depth + 1) * config_.shed_ns_per_queued;
      if (predicted > req.deadline_ns) {
        (void)answer_error(
            req, std::make_exception_ptr(ServeError(
                     ServeError::kDeadlineShed,
                     "InferenceServer: deadline unmeetable at current queue depth")));
        ++rejected_shed_;
        return fut;
      }
    }
    req.id = next_id_++;
    // Count before the push so drain() never observes an accepted-but-
    // uncounted request; reject() rolls this back on push failure.
    ++submitted_;
    ++in_flight_;
  }

  // The (possibly blocking) push runs outside mu_ — workers take mu_ to
  // publish batch results and must stay able to while a client waits here.
  const bool accepted = config_.overflow == OverflowPolicy::kBlock
                            ? queue_.push(std::move(req))
                            : queue_.try_push(std::move(req));
  if (!accepted) {
    // push/try_push leave the request intact on failure. A blocking push
    // only fails when the queue closed underneath it.
    if (config_.overflow == OverflowPolicy::kBlock || queue_.closed()) {
      reject(std::move(req), ServeError::kStopped, "InferenceServer: stopped");
    } else {
      reject(std::move(req), ServeError::kQueueFull, "InferenceServer: queue full");
    }
  }
  return fut;
}

void InferenceServer::start() {
  {
    MutexLock lock(mu_);
    FTPIM_CHECK(state_ == State::kIdle, "InferenceServer::start: already started");
    state_ = State::kRunning;
  }
  workers_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int r = 0; r < pool_.size(); ++r) {
    workers_.emplace_back([this, r] { worker_loop(r); });
  }
  log_debug("serve: started %d worker(s), queue capacity %zu", pool_.size(),
            queue_.capacity());
}

void InferenceServer::drain() {
  MutexLock lock(mu_);
  FTPIM_CHECK(state_ == State::kRunning, "InferenceServer::drain: server not running");
  while (in_flight_ > 0) drained_.wait(lock);
}

void InferenceServer::stop() {
  {
    MutexLock lock(mu_);
    if (state_ == State::kStopped) return;
    state_ = State::kStopped;
  }
  queue_.close();  // workers flush the remaining accepted requests, then exit
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Never-started servers have no workers; answer whatever is still queued so
  // no future is left dangling with a broken promise.
  Request leftover;
  while (queue_.try_pop(leftover)) {
    const bool delivered = answer_error(
        leftover, std::make_exception_ptr(
                      ServeError(ServeError::kStopped, "InferenceServer: stopped before serving")));
    MutexLock lock(mu_);
    ++rejected_stopped_;
    if (!delivered) ++poisoned_;
    --in_flight_;
    if (in_flight_ == 0) drained_.notify_all();
  }
}

bool InferenceServer::running() const {
  MutexLock lock(mu_);
  return state_ == State::kRunning;
}

ServerStats InferenceServer::stats() const {
  ServerStats out;
  out.queue_depth = queue_.size();
  const std::vector<HealthMonitor::Snapshot> health = health_.snapshot();
  out.per_replica_health.reserve(health.size());
  out.per_replica_state.reserve(health.size());
  out.per_replica_repairs.reserve(health.size());
  out.per_replica_window_size.reserve(health.size());
  for (const HealthMonitor::Snapshot& s : health) {
    out.per_replica_health.push_back(s.score);
    out.per_replica_state.push_back(s.state);
    out.per_replica_repairs.push_back(s.repairs);
    out.per_replica_window_size.push_back(s.window_size);
    out.health_window_capacity = s.window_capacity;
  }
  out.canary_every_batches = config_.health.canary_every_batches;
  MutexLock lock(mu_);
  out.submitted = submitted_;
  out.rejected_queue_full = rejected_queue_full_;
  out.rejected_stopped = rejected_stopped_;
  out.rejected_shed = rejected_shed_;
  out.served = served_;
  out.failed = failed_;
  out.retried = retried_;
  out.expired = expired_;
  out.poisoned = poisoned_;
  out.batches = batches_;
  out.canary_batches = canary_batches_;
  out.canary_failures = canary_failures_;
  out.quarantines = quarantines_;
  out.repairs = repairs_;
  out.aged_cells = aged_cells_;
  out.abft_detections = abft_detections_;
  out.abft_flagged_tiles = abft_flagged_tiles_;
  out.abft_scrubs = abft_scrubs_;
  out.abft_scrubbed_tiles = abft_scrubbed_tiles_;
  out.abft_escalations = abft_escalations_;
  out.periodic_refreshes = periodic_refreshes_;
  out.worker_exceptions = worker_exceptions_;
  out.in_flight = in_flight_;
  out.per_replica_served = per_replica_served_;
  out.per_replica_canary_progress = per_replica_canary_progress_;
  for (const LatencyHistogram& h : per_worker_latency_) out.latency.merge(h);
  return out;
}

FTPIM_HOT bool InferenceServer::triage(int replica_id, Request& request) {
  if (request.deadline_ns <= clock_->now_ns()) {
    finish_with_error(request, ServeError::kDeadlineExceeded,
                      "InferenceServer: deadline passed while queued");
    return false;
  }
  if (!request.excludes(replica_id)) return true;
  // This replica already failed the request — hand it to a different one.
  // try_push (never a blocking push): a worker that blocks on its own queue
  // can deadlock the fleet. The residual spin — this worker re-popping a
  // request only others may serve — is bounded by their forward-pass time.
  if (static_cast<int>(request.excluded.size()) < pool_.size() &&
      queue_.try_push(std::move(request))) {
    return false;
  }
  finish_with_error(request, ServeError::kExhausted,
                    "InferenceServer: no replica left to fail over to");
  return false;
}

FTPIM_HOT void InferenceServer::worker_loop(int replica_id) noexcept {
  WorkerTick tick;
  BatchStage stage;
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(config_.batching.max_batch_size));
  while (true) {
    Request first;
    if (!queue_.pop(first)) break;  // closed and drained -> exit
    if (!triage(replica_id, first)) continue;
    batch.clear();
    batch.push_back(std::move(first));
    const std::int64_t open_ns = clock_->now_ns();

    // Coalesce: greedily take what is already queued; once the queue runs
    // dry, wait out the remaining linger budget (per the injectable clock;
    // the bounded cv-wait itself is real time).
    while (!config_.batching.full(static_cast<std::int64_t>(batch.size()))) {
      Request more;
      if (queue_.try_pop(more)) {
        if (triage(replica_id, more)) batch.push_back(std::move(more));
        continue;
      }
      const std::int64_t remaining =
          config_.batching.remaining_linger_ns(clock_->now_ns(), open_ns);
      if (remaining == 0) break;
      if (queue_.pop_for(more, remaining) != PopResult::kItem) break;  // expired or closing
      if (triage(replica_id, more)) batch.push_back(std::move(more));
    }
    if (batch.empty()) continue;  // triage answered/re-routed everything
    run_batch(replica_id, batch, tick, stage);
    maintain(replica_id, tick);
  }
}

FTPIM_COLD Tensor& InferenceServer::BatchStage::materialize(const Shape& sample_shape,
                                                            std::int64_t batch_size) {
  const auto idx = static_cast<std::size_t>(batch_size - 1);
  if (idx >= staged.size()) staged.resize(idx + 1);
  Shape batched_shape;
  batched_shape.reserve(sample_shape.size() + 1);
  batched_shape.push_back(batch_size);
  batched_shape.insert(batched_shape.end(), sample_shape.begin(), sample_shape.end());
  staged[idx] = Tensor(std::move(batched_shape));
  return staged[idx];
}

FTPIM_HOT void InferenceServer::run_batch(int replica_id, std::vector<Request>& batch,
                                          WorkerTick& tick, BatchStage& stage) {
  const auto batch_size = static_cast<std::int64_t>(batch.size());
  const Shape& sample_shape = batch.front().input.shape();
  Tensor& inputs = stage.input_for(sample_shape, batch_size);
  const std::int64_t sample_numel = batch.front().input.numel();
  for (std::int64_t i = 0; i < batch_size; ++i) {
    std::memcpy(inputs.data() + i * sample_numel,
                batch[static_cast<std::size_t>(i)].input.data(),
                static_cast<std::size_t>(sample_numel) * sizeof(float));
  }

  bool ok = true;
  std::exception_ptr error;
  Tensor logits;
  try {
    if (config_.batch_hook) config_.batch_hook(replica_id, batch);
    logits = pool_.replica(replica_id).forward(inputs, /*training=*/false);
    FTPIM_CHECK_EQ(logits.rank(), std::size_t{2}, "serve: model output must be [N, classes]");
    FTPIM_CHECK_EQ(logits.dim(0), batch_size, "serve: model output batch mismatch");
  } catch (...) {
    ok = false;
    error = std::current_exception();
  }
  ++tick.batches_since_repair;
  health_.record(replica_id, ok);

  const std::int64_t done_ns = clock_->now_ns();
  if (ok) {
    const std::int64_t classes = logits.dim(1);
    std::int64_t answered = 0;
    std::int64_t dead = 0;
    for (std::int64_t i = 0; i < batch_size; ++i) {
      Request& req = batch[static_cast<std::size_t>(i)];
      InferenceResult res;
      res.logits = Tensor(Shape{classes});
      std::memcpy(res.logits.data(), logits.data() + i * classes,
                  static_cast<std::size_t>(classes) * sizeof(float));
      res.predicted = argmax_row(logits, i);
      res.replica_id = replica_id;
      res.batch_size = batch_size;
      res.latency_ns = std::max<std::int64_t>(std::int64_t{0}, done_ns - req.enqueue_ns);
      // A poisoned promise (already satisfied/abandoned) must not take down
      // its batchmates; the slot is counted, not thrown.
      if (answer(req, std::move(res))) {
        ++answered;
      } else {
        ++dead;
      }
    }
    MutexLock lock(mu_);
    ++batches_;
    served_ += answered;
    poisoned_ += dead;
    per_replica_served_[static_cast<std::size_t>(replica_id)] += answered;
    LatencyHistogram& hist = per_worker_latency_[static_cast<std::size_t>(replica_id)];
    for (const Request& req : batch) {
      hist.record(std::max<std::int64_t>(std::int64_t{0}, done_ns - req.enqueue_ns));
    }
    in_flight_ -= batch_size;
    if (in_flight_ == 0) drained_.notify_all();
    return;
  }
  fail_batch(replica_id, batch, error, done_ns);
}

FTPIM_COLD void InferenceServer::fail_batch(int replica_id, std::vector<Request>& batch,
                                            const std::exception_ptr& error,
                                            std::int64_t done_ns) {
  // Failed attempt: every request burns one attempt and excludes this
  // replica; those with budget, time, and an alternative replica left go
  // back into the queue for failover, the rest fail with a typed error.
  note_worker_exception("batch forward pass", error);
  const auto batch_size = static_cast<std::int64_t>(batch.size());
  const std::string cause = describe(error);
  std::int64_t requeued = 0;
  {
    MutexLock lock(mu_);
    ++batches_;
  }
  for (std::int64_t i = 0; i < batch_size; ++i) {
    Request& req = batch[static_cast<std::size_t>(i)];
    req.excluded.push_back(replica_id);
    --req.attempts_left;
    const bool time_left = req.deadline_ns > done_ns;
    const bool has_alternative = static_cast<int>(req.excluded.size()) < pool_.size();
    if (req.attempts_left > 0 && time_left && has_alternative &&
        queue_.try_push(std::move(req))) {
      ++requeued;  // still in flight; another worker owns it now
      continue;
    }
    if (!time_left) {
      finish_with_error(req, ServeError::kDeadlineExceeded,
                        "InferenceServer: deadline passed during retry (last error: " + cause +
                            ")");
    } else {
      finish_with_error(req, ServeError::kExhausted,
                        "InferenceServer: attempts exhausted (last error: " + cause + ")");
    }
  }
  MutexLock lock(mu_);
  retried_ += requeued;
}

FTPIM_COLD void InferenceServer::note_worker_exception(const char* where,
                                                       const std::exception_ptr& error) {
  log_warn("serve: %s threw: %s", where, describe(error).c_str());
  MutexLock lock(mu_);
  ++worker_exceptions_;
}

FTPIM_COLD void InferenceServer::ensure_canary() {
  std::call_once(canary_once_, [this] {
    Shape sample_shape;
    {
      MutexLock lock(mu_);
      sample_shape = input_shape_;  // non-empty: a batch was already served
    }
    canary_ = make_canary_set(pool_.source(), sample_shape, config_.health.canary_samples,
                              config_.health.canary_seed);
  });
}

FTPIM_COLD void InferenceServer::maintain(int replica_id, WorkerTick& tick) {
  // 0. ABFT: drain the checksum-detection reports the batch just accumulated.
  // A flagged batch depresses the health score (record_detection) and is
  // answered with an in-place scrub of the named tiles; once
  // max_scrub_retries consecutive batches stay flagged the fault is
  // persistent — scrubbing cannot help — and the replica is force-
  // quarantined so step 3 runs the full repair path.
  if (pool_.abft_armed()) {
    const std::vector<abft::TileFaultReport> reports = pool_.take_abft_reports(replica_id);
    std::int64_t mismatches = 0;
    std::int64_t flagged = 0;
    for (const abft::TileFaultReport& r : reports) {
      mismatches += r.mismatches;
      flagged += r.flagged_tiles();
    }
    if (mismatches > 0) {
      health_.record_detection(replica_id, flagged);
      ++tick.consecutive_detections;
      {
        MutexLock lock(mu_);
        ++abft_detections_;
        abft_flagged_tiles_ += flagged;
      }
      if (config_.health.scrub_on_detection &&
          tick.consecutive_detections <= config_.health.max_scrub_retries) {
        const std::int64_t scrubbed = pool_.scrub(replica_id, reports);
        MutexLock lock(mu_);
        ++abft_scrubs_;
        abft_scrubbed_tiles_ += scrubbed;
      } else {
        health_.force_quarantine(replica_id);
        MutexLock lock(mu_);
        ++abft_escalations_;
      }
    } else {
      tick.consecutive_detections = 0;
    }
  }

  // 1. Aging: the replica's defect map grows with its served-batch count.
  if (config_.aging.enabled()) {
    const std::int64_t added = pool_.advance_aging(
        replica_id, aging_, aging_.intervals_at(tick.batches_since_repair));
    if (added > 0) {
      MutexLock lock(mu_);
      aged_cells_ += added;
    }
  }

  // 1.5 Periodic background refresh (ScrubPolicy::kPeriodic): every
  // scrub_every_batches served batches, re-program the whole replica from
  // retained state and re-apply its persistent map — transient damage heals
  // on a schedule instead of waiting for a detector or a canary miss. Runs
  // after aging so the tick ends on a freshly programmed die.
  if (config_.health.scrub_policy == ScrubPolicy::kPeriodic &&
      ++tick.batches_since_scrub >= config_.health.scrub_every_batches) {
    tick.batches_since_scrub = 0;
    pool_.refresh(replica_id);
    MutexLock lock(mu_);
    ++periodic_refreshes_;
  }

  // 2. Canary: every canary_every_batches served batches, run the known-
  // answer probes and score against the pristine model's golden outputs.
  if (config_.health.canary_every_batches > 0 &&
      ++tick.batches_since_canary >= config_.health.canary_every_batches) {
    tick.batches_since_canary = 0;
    ensure_canary();
    int passed = 0;
    try {
      const Tensor logits = pool_.replica(replica_id).forward(canary_.inputs, /*training=*/false);
      passed = score_canary(logits, canary_, config_.health.canary_max_abs_err);
    } catch (...) {
      passed = 0;  // a canary forward that throws fails every probe
      note_worker_exception("canary probe", std::current_exception());
    }
    const int missed = config_.health.canary_samples - passed;
    if (passed > 0) health_.record(replica_id, true, passed);
    if (missed > 0) health_.record(replica_id, false, missed);
    MutexLock lock(mu_);
    ++canary_batches_;
    canary_failures_ += missed;
  }
  {
    // Publish the canary countdown so health_line() can show a "probe is
    // coming" gauge next to each replica's window fill.
    MutexLock lock(mu_);
    per_replica_canary_progress_[static_cast<std::size_t>(replica_id)] =
        tick.batches_since_canary;
  }

  // 3. Quarantine detection and (optional) in-place repair.
  const ReplicaHealth state = health_.state(replica_id);
  if (state == ReplicaHealth::kQuarantined) {
    if (tick.last_state != ReplicaHealth::kQuarantined) {
      MutexLock lock(mu_);
      ++quarantines_;
    }
    if (config_.health.repair_on_quarantine) {
      pool_.repair(replica_id);  // fresh clone of the pristine source + fresh map
      health_.mark_repaired(replica_id);
      tick = WorkerTick{};
      MutexLock lock(mu_);
      ++repairs_;
      per_replica_canary_progress_[static_cast<std::size_t>(replica_id)] = 0;
      return;
    }
  }
  tick.last_state = state;
}

}  // namespace ftpim::serve
