// Weight <-> conductance mapping for ReRAM crossbars.
//
// Each signed weight is stored as a differential pair of cells (G+, G-):
//   G+ = Gmin + max(w,0)/wmax * (Gmax - Gmin)
//   G- = Gmin + max(-w,0)/wmax * (Gmax - Gmin)
// so the readout difference is proportional to w:
//   w  = (G+ - G-) * wmax / (Gmax - Gmin).
// Stuck-off (SA0) pins a cell at Gmin, stuck-on (SA1) at Gmax; reconstruction
// through the same readout equation turns cell faults into effective-weight
// perturbations (a stuck-on cell of the wrong polarity flips a weight all the
// way to ±wmax, which is why SAF defects are so destructive).
#pragma once

#include "src/common/check.hpp"

namespace ftpim {

struct ConductanceRange {
  float g_min = 0.03125f;  ///< normalized; on/off ratio 32 (HfO2-class device)
  float g_max = 1.0f;

  [[nodiscard]] float span() const noexcept { return g_max - g_min; }
  void validate() const {
    FTPIM_CHECK(g_min >= 0.0f && g_max > g_min, "ConductanceRange: require 0 <= g_min < g_max");
  }
};

struct CellPair {
  float g_pos = 0.0f;
  float g_neg = 0.0f;
};

class DifferentialMapper {
 public:
  /// w_max is the full-scale weight magnitude (per-tensor abs-max in practice).
  DifferentialMapper(ConductanceRange range, float w_max);

  /// Weight -> differential conductance pair. Weights beyond ±w_max saturate.
  [[nodiscard]] CellPair to_cells(float weight) const noexcept;

  /// Differential pair -> effective weight (readout equation).
  [[nodiscard]] float to_weight(const CellPair& cells) const noexcept;

  [[nodiscard]] const ConductanceRange& range() const noexcept { return range_; }
  [[nodiscard]] float w_max() const noexcept { return w_max_; }

 private:
  ConductanceRange range_;
  float w_max_;
  float w_to_g_;  ///< (g_max - g_min) / w_max
  float g_to_w_;  ///< w_max / (g_max - g_min)
};

}  // namespace ftpim
