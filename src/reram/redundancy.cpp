#include "src/reram/redundancy.hpp"

#include "src/common/check.hpp"

#include <algorithm>

namespace ftpim {
namespace {

float replica_readout(float weight, const DifferentialMapper& mapper,
                      const StuckAtFaultModel& model, Rng& rng,
                      std::int64_t* faulted_cells) {
  const FaultType f_pos = model.sample(rng);
  const FaultType f_neg = model.sample(rng);
  if (f_pos == FaultType::kNone && f_neg == FaultType::kNone) {
    // Fault-free replica: skip the conductance round trip so the readout is
    // bit-exact (matches apply_stuck_at_faults' clean path).
    return weight;
  }
  CellPair cells = mapper.to_cells(weight);
  const float g_min = mapper.range().g_min;
  const float g_max = mapper.range().g_max;
  if (f_pos != FaultType::kNone) {
    cells.g_pos = (f_pos == FaultType::kStuckOff) ? g_min : g_max;
    ++*faulted_cells;
  }
  if (f_neg != FaultType::kNone) {
    cells.g_neg = (f_neg == FaultType::kStuckOff) ? g_min : g_max;
    ++*faulted_cells;
  }
  return mapper.to_weight(cells);
}

}  // namespace

RedundantInjectionStats apply_faults_with_redundancy(Tensor& weights,
                                                     const StuckAtFaultModel& model,
                                                     const RedundancyConfig& config, Rng& rng) {
  FTPIM_CHECK(!(config.replicas < 1 || config.replicas % 2 == 0), "redundancy: replicas must be odd and >= 1");
  RedundantInjectionStats stats;
  stats.cells = 2ll * config.replicas * weights.numel();

  float w_max = config.per_tensor_wmax ? weights.abs_max() : config.fixed_wmax;
  if (w_max <= 0.0f) w_max = 1.0f;
  const DifferentialMapper mapper(config.range, w_max);

  std::vector<float> readouts(static_cast<std::size_t>(config.replicas));
  float* w = weights.data();
  for (std::int64_t i = 0; i < weights.numel(); ++i) {
    for (int r = 0; r < config.replicas; ++r) {
      readouts[static_cast<std::size_t>(r)] =
          replica_readout(w[i], mapper, model, rng, &stats.faulted_cells);
    }
    auto mid = readouts.begin() + config.replicas / 2;
    std::nth_element(readouts.begin(), mid, readouts.end());
    const float median = *mid;
    if (median != w[i]) ++stats.affected_weights;
    w[i] = median;
  }
  return stats;
}

RedundantInjectionStats inject_model_with_redundancy(Module& model_root,
                                                     const StuckAtFaultModel& model,
                                                     const RedundancyConfig& config, Rng& rng) {
  RedundantInjectionStats total;
  for (Param* p : parameters_of(model_root)) {
    if (p->kind != ParamKind::kCrossbarWeight) continue;
    const RedundantInjectionStats s = apply_faults_with_redundancy(p->value, model, config, rng);
    total.cells += s.cells;
    total.faulted_cells += s.faulted_cells;
    total.affected_weights += s.affected_weights;
  }
  return total;
}

RedundantFaultGuard::RedundantFaultGuard(Module& model_root, const StuckAtFaultModel& model,
                                         const RedundancyConfig& config, Rng& rng) {
  for (Param* p : parameters_of(model_root)) {
    if (p->kind == ParamKind::kCrossbarWeight) params_.push_back(p);
  }
  clean_.reserve(params_.size());
  for (Param* p : params_) {
    clean_.push_back(p->value);
    const RedundantInjectionStats s = apply_faults_with_redundancy(p->value, model, config, rng);
    stats_.cells += s.cells;
    stats_.faulted_cells += s.faulted_cells;
    stats_.affected_weights += s.affected_weights;
  }
}

void RedundantFaultGuard::restore() {
  if (restored_) return;
  for (std::size_t k = 0; k < params_.size(); ++k) params_[k]->value = clean_[k];
  restored_ = true;
}

RedundantFaultGuard::~RedundantFaultGuard() { restore(); }

}  // namespace ftpim
