// Algorithm-based fault tolerance (ABFT) for the crossbar engines.
//
// Every weight tile carries checksum column(s) programmed alongside the data
// columns, in the same cell technology and hence the same fault domain. For a
// tile with data columns c = 0..C-1 the checksum encodes the per-row sum
// s_r = sum_c w[r, c]; because the crossbar MVM is linear in the columns, a
// fault-free tile satisfies, for every input vector x,
//
//   sum_c (sum_r x_r w[r, c])  ==  sum_r x_r s_r
//
// so each MVM verifies itself at the cost of reading the checksum column(s).
// A cell that drifts or sticks AFTER the checksum was programmed breaks the
// identity for almost every input, which localizes the fault to a (layer,
// tile) pair within one batch — no canary wait, no accuracy estimate.
//
// Engine encodings (derivations in DESIGN.md section 14):
//   * QuantizedCrossbarEngine — s_r can reach (L-1)*C which no single L-level
//     cell can hold, so the checksum is stored as base-L digit columns
//     d_k(r) with s_r = sum_k L^k d_k(r). The digit columns ride in the same
//     packed buffer as the data columns and go through the same kernel, so
//     the check is integer-exact under ideal readout; with a real ADC the
//     comparison carries a bound derived from the per-column step sizes.
//   * CrossbarEngine (float) — one wide checksum column per tile holding the
//     conductance row sums, verified under an epsilon bound scaled by the
//     input magnitude (valid because conductances are non-negative).
//
// Verification outcomes accumulate per tile inside the engine (lock-free on
// the hot path via per-worker scratch counts, merged behind a cold mutex) and
// are drained as a TileFaultReport by the serving layer, which scrubs the
// flagged tiles (re-program from retained weights + re-apply the live defect
// map) and escalates to quarantine when detections persist.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"
#include "src/common/thread_annotations.hpp"

namespace ftpim::abft {

struct AbftConfig {
  /// Master switch: append checksum columns at program time and verify every
  /// MVM. Off by default — the checksum column costs one extra packed panel
  /// per tile on the quantized path (see BENCH_abft.json).
  bool enabled = false;
  /// Safety factor on the float engine's rounding-error bound. The quantized
  /// paths do not use it (their tolerances are exact integer bounds).
  double tolerance_scale = 64.0;

  void validate() const {
    FTPIM_CHECK(tolerance_scale >= 1.0, "AbftConfig: tolerance_scale must be >= 1");
  }
};

/// Mismatch tally for one tile of one engine. Tiles index the engine's grid:
/// row_tile walks the input (row) direction, col_tile the output direction.
struct TileFaultCount {
  std::int64_t row_tile = 0;
  std::int64_t col_tile = 0;
  /// (sample, tile) checks on this tile whose checksum disagreed.
  std::int64_t mismatches = 0;
};

/// Per-engine detection summary drained after one or more MVM batches.
/// `layer` is filled by the deployment when fanning reports out, so the serve
/// layer can localize a detection to (layer, tile) without engine access.
struct TileFaultReport {
  std::int64_t layer = -1;
  std::int64_t checks = 0;      ///< total (sample, tile) verifications run
  std::int64_t mismatches = 0;  ///< verifications that failed
  std::vector<TileFaultCount> tiles;  ///< flagged tiles, (row, col)-sorted

  [[nodiscard]] bool clean() const noexcept { return mismatches == 0; }
  [[nodiscard]] std::int64_t flagged_tiles() const noexcept {
    return static_cast<std::int64_t>(tiles.size());
  }
  /// Folds another report for the same engine geometry into this one.
  void merge_from(const TileFaultReport& other);
};

/// Number of base-L digit columns needed to hold the largest possible row
/// checksum (L-1)*data_cols: the smallest d >= 1 with L^d > (L-1)*data_cols.
[[nodiscard]] std::int64_t checksum_digit_columns(int levels, std::int64_t data_cols);

/// Thread-safe per-engine mismatch accounting. MVM workers count mismatches
/// into per-worker scratch (no locks, no allocation) and merge once per
/// chunk; the owner drains a TileFaultReport between batches.
class AbftAccumulator {
 public:
  /// Arms the accumulator for a row_tiles x col_tiles grid (resets tallies).
  void reset(std::int64_t row_tiles, std::int64_t col_tiles);

  [[nodiscard]] bool armed() const noexcept { return row_tiles_ > 0; }

  /// Folds one worker chunk's per-tile mismatch counts (row-major grid array
  /// of row_tiles*col_tiles entries) plus its check count. Cold: called once
  /// per worker chunk, not per sample.
  FTPIM_COLD void merge(const std::int64_t* per_tile_mismatches, std::int64_t checks);

  /// Returns the accumulated report and resets tallies (grid stays armed).
  [[nodiscard]] TileFaultReport take();

 private:
  std::int64_t row_tiles_ = 0;
  std::int64_t col_tiles_ = 0;
  mutable Mutex mu_;
  std::vector<std::int64_t> counts_ FTPIM_GUARDED_BY(mu_);
  std::int64_t checks_ FTPIM_GUARDED_BY(mu_) = 0;
  std::int64_t mismatches_ FTPIM_GUARDED_BY(mu_) = 0;
};

}  // namespace ftpim::abft
