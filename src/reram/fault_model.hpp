// Stuck-at-fault (SAF) statistical model.
//
// Following the March-test defect study the paper adopts (C.-Y. Chen et al.,
// IEEE Trans. Computers), each ReRAM cell independently fails with total
// probability P_sa = P_sa0 + P_sa1, split between stuck-off (SA0, pinned at
// Gmin) and stuck-on (SA1, pinned at Gmax) in the fixed ratio
// P_sa0 : P_sa1 = 1.75 : 9.04.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"

namespace ftpim {

enum class FaultType : std::uint8_t { kNone = 0, kStuckOff = 1, kStuckOn = 2 };

/// The paper's SA0:SA1 split.
inline constexpr double kPaperSa0Weight = 1.75;
inline constexpr double kPaperSa1Weight = 9.04;
inline constexpr double kPaperSa0Fraction = kPaperSa0Weight / (kPaperSa0Weight + kPaperSa1Weight);

class StuckAtFaultModel {
 public:
  /// p_sa: total per-cell failure probability in [0,1].
  /// sa0_fraction: P_sa0 / P_sa, in [0,1]. Defaults to the paper's split.
  explicit StuckAtFaultModel(double p_sa, double sa0_fraction = kPaperSa0Fraction);

  /// Draws the fault state of one cell.
  [[nodiscard]] FaultType sample(Rng& rng) const noexcept;

  [[nodiscard]] double p_sa() const noexcept { return p_sa_; }
  [[nodiscard]] double p_sa0() const noexcept { return p_sa_ * sa0_fraction_; }
  [[nodiscard]] double p_sa1() const noexcept { return p_sa_ * (1.0 - sa0_fraction_); }
  [[nodiscard]] double sa0_fraction() const noexcept { return sa0_fraction_; }

 private:
  double p_sa_;
  double sa0_fraction_;
};

}  // namespace ftpim
