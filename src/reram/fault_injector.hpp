// Weight-space stuck-at-fault injection — the paper's Apply_Fault(w, P_sa).
//
// For every weight, its differential cell pair is materialized, each cell is
// independently subjected to the SAF model, and the (possibly faulted) pair
// is read back into weight space. This is exactly what the cell-level
// CrossbarEngine computes, collapsed to a fast per-weight path (the
// equivalence is covered by tests/reram_equivalence_test).
//
// InjectIntoModel applies the injection to every ParamKind::kCrossbarWeight
// parameter of a network; WeightFaultGuard additionally snapshots the clean
// weights and restores them on destruction, which is how the trainer injects
// per-iteration faults without losing the master copy.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/reram/conductance.hpp"
#include "src/reram/fault_model.hpp"
#include "src/reram/quantizer.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

struct InjectorConfig {
  ConductanceRange range{};
  int quant_levels = 0;       ///< 0 = analog cells (paper setting)
  bool per_tensor_wmax = true;  ///< w_max = abs-max of the tensor (else fixed_wmax)
  float fixed_wmax = 1.0f;
};

struct InjectionStats {
  std::int64_t cells = 0;             ///< 2 * weights
  std::int64_t faulted_cells = 0;
  std::int64_t affected_weights = 0;  ///< weights whose value changed
  [[nodiscard]] double cell_fault_rate() const noexcept {
    return cells > 0 ? static_cast<double>(faulted_cells) / static_cast<double>(cells) : 0.0;
  }
};

/// Applies stuck-at faults to `weights` in place. If `hit_mask` is non-null it
/// is resized to the weight shape and set to 1 at weights whose cells faulted
/// (used for masked-gradient FT training).
InjectionStats apply_stuck_at_faults(Tensor& weights, const StuckAtFaultModel& model,
                                     const InjectorConfig& config, Rng& rng,
                                     Tensor* hit_mask = nullptr);

/// Injects into every crossbar-weight parameter of `model_root`.
InjectionStats inject_into_model(Module& model_root, const StuckAtFaultModel& model,
                                 const InjectorConfig& config, Rng& rng);

/// RAII: snapshots all crossbar weights of a network, injects faults, and
/// restores the clean weights on destruction (or on restore()).
class WeightFaultGuard {
 public:
  WeightFaultGuard(Module& model_root, const StuckAtFaultModel& model,
                   const InjectorConfig& config, Rng& rng);
  ~WeightFaultGuard();

  WeightFaultGuard(const WeightFaultGuard&) = delete;
  WeightFaultGuard& operator=(const WeightFaultGuard&) = delete;

  /// Restores clean weights early (idempotent).
  void restore();

  [[nodiscard]] const InjectionStats& stats() const noexcept { return stats_; }

  /// Per-parameter hit masks, parallel to parameters_of(model) filtered to
  /// crossbar weights; 1 where a cell fault changed the weight.
  [[nodiscard]] const std::vector<Tensor>& hit_masks() const noexcept { return hit_masks_; }
  [[nodiscard]] const std::vector<Param*>& faulted_params() const noexcept { return params_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> clean_;
  std::vector<Tensor> hit_masks_;
  InjectionStats stats_;
  bool restored_ = false;
};

}  // namespace ftpim
