// Weight-space stuck-at-fault injection — the paper's Apply_Fault(w, P_sa).
//
// For every weight, its differential cell pair is materialized, each cell is
// independently subjected to the SAF model, and the (possibly faulted) pair
// is read back into weight space. This is exactly what the cell-level
// CrossbarEngine computes, collapsed to a fast per-weight path (the
// equivalence is covered by tests/reram_equivalence_test).
//
// The primitive is apply_faults_to_copy: a PURE function from a clean weight
// tensor to a faulted copy + hit mask that never touches the source. The
// in-place path (apply_stuck_at_faults), the reusable FaultInjectionSession,
// and the RAII WeightFaultGuard are all built on it; the parallel defect
// evaluator runs one session per worker-thread model clone.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/reram/conductance.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/fault_model.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

struct InjectorConfig {
  ConductanceRange range{};
  int quant_levels = 0;       ///< 0 = analog cells (paper setting)
  bool per_tensor_wmax = true;  ///< w_max = abs-max of the tensor (else fixed_wmax)
  float fixed_wmax = 1.0f;
};

struct InjectionStats {
  std::int64_t cells = 0;             ///< 2 * weights
  std::int64_t faulted_cells = 0;
  std::int64_t affected_weights = 0;  ///< weights whose value changed
  [[nodiscard]] double cell_fault_rate() const noexcept {
    return cells > 0 ? static_cast<double>(faulted_cells) / static_cast<double>(cells) : 0.0;
  }
};

/// Non-mutating Apply_Fault: writes the faulted read-back of `src` into `dst`
/// (reusing `dst`'s storage when the shape already matches) without touching
/// `src`. The differential-pair w_max scale is derived from `src`, so the
/// result is bit-identical to faulting `src` in place. If `hit_mask` is
/// non-null it is shaped like `src` (storage reused too) and set to 1 at
/// weights whose cells faulted.
InjectionStats apply_faults_to_copy(const Tensor& src, Tensor& dst,
                                    const StuckAtFaultModel& model, const InjectorConfig& config,
                                    Rng& rng, Tensor* hit_mask = nullptr);

/// Applies stuck-at faults to `weights` in place (same RNG stream and float
/// semantics as apply_faults_to_copy).
InjectionStats apply_stuck_at_faults(Tensor& weights, const StuckAtFaultModel& model,
                                     const InjectorConfig& config, Rng& rng,
                                     Tensor* hit_mask = nullptr);

/// Injects into every crossbar-weight parameter of `model_root`.
InjectionStats inject_into_model(Module& model_root, const StuckAtFaultModel& model,
                                 const InjectorConfig& config, Rng& rng);

/// Cells `model_root` occupies on its differential-pair deployment: 2 cells
/// per crossbar weight, concatenated in parameters_of order. This is the
/// cell_count a DefectMap for the model must carry.
[[nodiscard]] std::int64_t crossbar_cell_count(Module& model_root);

/// Applies a cell-level DefectMap to every crossbar weight of `model_root`.
/// Weight i of the concatenated parameter walk owns cells 2i (positive) and
/// 2i+1 (negative); stuck cells pin to Gmin/Gmax and the weight reads back
/// through the differential readout equation, exactly like the RNG-driven
/// fault_kernel. Weights must hold their CLEAN values — map application is
/// defined against the clean programming of each pair, which is why the
/// serving layer's aging path rebuilds replicas from the pristine source
/// before re-applying a grown map. The map's cell_count must equal
/// crossbar_cell_count(model_root).
InjectionStats apply_defect_map_to_model(Module& model_root, const DefectMap& map,
                                         const InjectorConfig& config);

/// Reusable inject/restore workspace bound to one network.
///
/// Thread-safety contract: a session (like the Module it binds) is
/// single-owner — one session per worker clone, never shared across threads
/// (see evaluate_under_defects). inject() enforces non-concurrent use with an
/// always-on contract check on an internal atomic flag.
///
/// Binds to the crossbar-weight parameters of `model_root` once; every
/// inject() computes faulted copies into persistent shadow buffers and then
/// swaps them in (exception-safe: the model is untouched until all copies
/// succeeded; the publish step is noexcept swaps). restore() swaps the clean
/// tensors back in O(pointers) and is idempotent. Buffers — shadows and hit
/// masks — are allocated on the first inject() and reused afterwards, which
/// is what keeps per-iteration fault injection in FaultTolerantTrainer
/// allocation-free in steady state.
class FaultInjectionSession {
 public:
  explicit FaultInjectionSession(Module& model_root);
  ~FaultInjectionSession();  ///< restores clean weights if still injected

  FaultInjectionSession(const FaultInjectionSession&) = delete;
  FaultInjectionSession& operator=(const FaultInjectionSession&) = delete;

  /// Snapshots clean weights and publishes a freshly drawn fault map.
  /// Restores first if a previous injection is still active.
  const InjectionStats& inject(const StuckAtFaultModel& model, const InjectorConfig& config,
                               Rng& rng);

  /// Swaps the clean weights back (idempotent, noexcept).
  void restore() noexcept;

  [[nodiscard]] bool injected() const noexcept { return injected_; }
  [[nodiscard]] const InjectionStats& stats() const noexcept { return stats_; }

  /// Per-parameter hit masks, parallel to faulted_params(); 1 where a cell
  /// fault changed the weight. Valid after the first inject().
  [[nodiscard]] const std::vector<Tensor>& hit_masks() const noexcept { return hit_masks_; }
  [[nodiscard]] const std::vector<Param*>& faulted_params() const noexcept { return params_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> shadow_;  ///< faulted copy pre-publish, clean copy while injected
  std::vector<Tensor> hit_masks_;
  InjectionStats stats_;
  bool injected_ = false;
  std::atomic<bool> busy_{false};  ///< inject() reentrancy/concurrency detector
};

/// RAII: snapshots all crossbar weights of a network, injects faults, and
/// restores the clean weights on destruction (or on restore()). Thin
/// single-shot wrapper over FaultInjectionSession.
class WeightFaultGuard {
 public:
  WeightFaultGuard(Module& model_root, const StuckAtFaultModel& model,
                   const InjectorConfig& config, Rng& rng);

  WeightFaultGuard(const WeightFaultGuard&) = delete;
  WeightFaultGuard& operator=(const WeightFaultGuard&) = delete;

  /// Restores clean weights early (idempotent).
  void restore() noexcept { session_.restore(); }

  [[nodiscard]] const InjectionStats& stats() const noexcept { return session_.stats(); }

  /// Per-parameter hit masks, parallel to parameters_of(model) filtered to
  /// crossbar weights; 1 where a cell fault changed the weight.
  [[nodiscard]] const std::vector<Tensor>& hit_masks() const noexcept {
    return session_.hit_masks();
  }
  [[nodiscard]] const std::vector<Param*>& faulted_params() const noexcept {
    return session_.faulted_params();
  }

 private:
  FaultInjectionSession session_;
};

}  // namespace ftpim
