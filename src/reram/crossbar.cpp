#include "src/reram/crossbar.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftpim {

CrossbarArray::CrossbarArray(std::int64_t rows, std::int64_t cols, ConductanceRange range,
                             int quant_levels)
    : rows_(rows),
      cols_(cols),
      range_(range),
      quantizer_(range, quant_levels),
      g_(static_cast<std::size_t>(rows * cols), range.g_min),
      fault_(static_cast<std::size_t>(rows * cols), 0) {
  FTPIM_CHECK(!(rows <= 0 || cols <= 0), "CrossbarArray: invalid dimensions");
  range_.validate();
}

void CrossbarArray::program(std::int64_t r, std::int64_t c, float g) {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("CrossbarArray::program");
  }
  const std::size_t i = idx(r, c);
  if (fault_[i] != 0) return;  // stuck cell ignores write pulses
  g_[i] = quantizer_.quantize(std::clamp(g, range_.g_min, range_.g_max));
}

float CrossbarArray::read(std::int64_t r, std::int64_t c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("CrossbarArray::read");
  }
  return g_[idx(r, c)];
}

void CrossbarArray::apply_defects(const DefectMap& map) {
  FTPIM_CHECK(!(map.cell_count() != cell_count()), "CrossbarArray::apply_defects: cell count mismatch");
  for (const CellFault& f : map.faults()) {
    const auto i = static_cast<std::size_t>(f.cell_index);
    fault_[i] = static_cast<std::uint8_t>(f.type);
    g_[i] = (f.type == FaultType::kStuckOff) ? range_.g_min : range_.g_max;
  }
}

void CrossbarArray::clear_defects() {
  std::fill(fault_.begin(), fault_.end(), static_cast<std::uint8_t>(0));
}

void CrossbarArray::matvec(const float* in, float* out) const {
  std::fill(out, out + cols_, 0.0f);
  for (std::int64_t r = 0; r < rows_; ++r) {
    const float v = in[r];
    if (v == 0.0f) continue;
    const float* grow = g_.data() + r * cols_;
    for (std::int64_t c = 0; c < cols_; ++c) out[c] += grow[c] * v;
  }
}

std::int64_t CrossbarArray::stuck_count() const noexcept {
  std::int64_t n = 0;
  for (const std::uint8_t f : fault_) {
    if (f != 0) ++n;
  }
  return n;
}

}  // namespace ftpim
