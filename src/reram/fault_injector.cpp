#include "src/reram/fault_injector.hpp"

#include "src/common/check.hpp"
#include "src/reram/quantizer.hpp"

namespace ftpim {
namespace {

float tensor_wmax(const Tensor& weights, const InjectorConfig& config) {
  if (!config.per_tensor_wmax) return config.fixed_wmax;
  const float m = weights.abs_max();
  return m > 0.0f ? m : 1.0f;  // all-zero tensor: any scale works
}

/// Shared kernel: reads clean weights from `src`, writes the faulted
/// read-back to `dst` (src == dst is the in-place path). Every element of
/// dst is written, so a copy destination needs no pre-fill.
InjectionStats fault_kernel(const float* src, float* dst, std::int64_t n,
                            const DifferentialMapper& mapper, const ConductanceQuantizer& quant,
                            const InjectorConfig& config, const StuckAtFaultModel& model,
                            Rng& rng, float* mask) {
  InjectionStats stats;
  stats.cells = 2 * n;
  const float g_min = config.range.g_min;
  const float g_max = config.range.g_max;
  for (std::int64_t i = 0; i < n; ++i) {
    const FaultType f_pos = model.sample(rng);
    const FaultType f_neg = model.sample(rng);
    if (f_pos == FaultType::kNone && f_neg == FaultType::kNone) {
      if (config.quant_levels >= 2) {
        // Still pass through programming quantization so the fault-free path
        // matches device resolution.
        CellPair cells = mapper.to_cells(src[i]);
        cells.g_pos = quant.quantize(cells.g_pos);
        cells.g_neg = quant.quantize(cells.g_neg);
        dst[i] = mapper.to_weight(cells);
      } else {
        dst[i] = src[i];
      }
      continue;
    }
    CellPair cells = mapper.to_cells(src[i]);
    if (config.quant_levels >= 2) {
      cells.g_pos = quant.quantize(cells.g_pos);
      cells.g_neg = quant.quantize(cells.g_neg);
    }
    if (f_pos != FaultType::kNone) {
      cells.g_pos = (f_pos == FaultType::kStuckOff) ? g_min : g_max;
      ++stats.faulted_cells;
    }
    if (f_neg != FaultType::kNone) {
      cells.g_neg = (f_neg == FaultType::kStuckOff) ? g_min : g_max;
      ++stats.faulted_cells;
    }
    const float new_w = mapper.to_weight(cells);
    if (new_w != src[i]) {
      ++stats.affected_weights;
      if (mask != nullptr) mask[i] = 1.0f;
    }
    dst[i] = new_w;
  }
  return stats;
}

/// Shapes `buffer` like `reference`, reusing its storage when possible, and
/// zero-fills it (hit masks must start clean).
void reset_like(Tensor& buffer, const Tensor& reference) {
  if (buffer.shape() != reference.shape()) {
    buffer = Tensor(reference.shape());
  } else {
    buffer.zero();
  }
}

void accumulate(InjectionStats& total, const InjectionStats& s) {
  total.cells += s.cells;
  total.faulted_cells += s.faulted_cells;
  total.affected_weights += s.affected_weights;
}

}  // namespace

InjectionStats apply_faults_to_copy(const Tensor& src, Tensor& dst,
                                    const StuckAtFaultModel& model, const InjectorConfig& config,
                                    Rng& rng, Tensor* hit_mask) {
  FTPIM_CHECK(&dst != &src, "apply_faults_to_copy: dst must not alias src (use apply_stuck_at_faults)");
  FTPIM_CHECK(hit_mask == nullptr || (hit_mask != &dst && hit_mask != &src),
              "apply_faults_to_copy: hit_mask must not alias src/dst");
  config.range.validate();
  FTPIM_CHECK(config.quant_levels == 0 || config.quant_levels >= 2,
              "InjectorConfig: quant_levels must be 0 (analog) or >= 2");
  FTPIM_CHECK(config.per_tensor_wmax || config.fixed_wmax > 0.0f,
              "InjectorConfig: fixed_wmax must be positive");
  if (dst.shape() != src.shape()) dst = Tensor(src.shape());
  if (hit_mask != nullptr) reset_like(*hit_mask, src);
  const DifferentialMapper mapper(config.range, tensor_wmax(src, config));
  const ConductanceQuantizer quant(config.range, config.quant_levels);
  return fault_kernel(src.data(), dst.data(), src.numel(), mapper, quant, config, model, rng,
                      hit_mask != nullptr ? hit_mask->data() : nullptr);
}

InjectionStats apply_stuck_at_faults(Tensor& weights, const StuckAtFaultModel& model,
                                     const InjectorConfig& config, Rng& rng, Tensor* hit_mask) {
  if (hit_mask != nullptr) reset_like(*hit_mask, weights);
  const DifferentialMapper mapper(config.range, tensor_wmax(weights, config));
  const ConductanceQuantizer quant(config.range, config.quant_levels);
  return fault_kernel(weights.data(), weights.data(), weights.numel(), mapper, quant, config,
                      model, rng, hit_mask != nullptr ? hit_mask->data() : nullptr);
}

InjectionStats inject_into_model(Module& model_root, const StuckAtFaultModel& model,
                                 const InjectorConfig& config, Rng& rng) {
  InjectionStats total;
  for (Param* p : parameters_of(model_root)) {
    if (p->kind != ParamKind::kCrossbarWeight) continue;
    accumulate(total, apply_stuck_at_faults(p->value, model, config, rng));
  }
  return total;
}

std::int64_t crossbar_cell_count(Module& model_root) {
  std::int64_t cells = 0;
  for (Param* p : parameters_of(model_root)) {
    if (p->kind == ParamKind::kCrossbarWeight) cells += 2 * p->value.numel();
  }
  return cells;
}

InjectionStats apply_defect_map_to_model(Module& model_root, const DefectMap& map,
                                         const InjectorConfig& config) {
  config.range.validate();
  FTPIM_CHECK(config.quant_levels == 0 || config.quant_levels >= 2,
              "InjectorConfig: quant_levels must be 0 (analog) or >= 2");
  FTPIM_CHECK(config.per_tensor_wmax || config.fixed_wmax > 0.0f,
              "InjectorConfig: fixed_wmax must be positive");
  std::vector<Param*> params;
  std::int64_t total_cells = 0;
  for (Param* p : parameters_of(model_root)) {
    if (p->kind != ParamKind::kCrossbarWeight) continue;
    params.push_back(p);
    total_cells += 2 * p->value.numel();
  }
  FTPIM_CHECK_EQ(map.cell_count(), total_cells,
                 "apply_defect_map_to_model: map describes %lld cells, model has %lld",
                 static_cast<long long>(map.cell_count()), static_cast<long long>(total_cells));

  InjectionStats stats;
  stats.cells = total_cells;
  const std::vector<CellFault>& faults = map.faults();
  const float g_min = config.range.g_min;
  const float g_max = config.range.g_max;
  std::size_t k = 0;
  std::int64_t cell_off = 0;
  std::vector<std::int64_t> faulted_weights;  // per-param, for the quantized clean path
  for (Param* p : params) {
    Tensor& w = p->value;
    const std::int64_t n = w.numel();
    const std::int64_t cell_hi = cell_off + 2 * n;
    const DifferentialMapper mapper(config.range, tensor_wmax(w, config));
    const ConductanceQuantizer quant(config.range, config.quant_levels);
    faulted_weights.clear();
    while (k < faults.size() && faults[k].cell_index < cell_hi) {
      const std::int64_t i = (faults[k].cell_index - cell_off) / 2;
      CellPair cells = mapper.to_cells(w[i]);
      if (config.quant_levels >= 2) {
        cells.g_pos = quant.quantize(cells.g_pos);
        cells.g_neg = quant.quantize(cells.g_neg);
      }
      // Consume every fault landing on weight i (its positive and/or
      // negative cell) before reading the pair back.
      while (k < faults.size() && faults[k].cell_index < cell_hi &&
             (faults[k].cell_index - cell_off) / 2 == i) {
        const bool positive = ((faults[k].cell_index - cell_off) % 2) == 0;
        const float pinned = faults[k].type == FaultType::kStuckOff ? g_min : g_max;
        (positive ? cells.g_pos : cells.g_neg) = pinned;
        ++stats.faulted_cells;
        ++k;
      }
      const float new_w = mapper.to_weight(cells);
      if (new_w != w[i]) ++stats.affected_weights;
      w[i] = new_w;
      if (config.quant_levels >= 2) faulted_weights.push_back(i);
    }
    if (config.quant_levels >= 2) {
      // Parity with fault_kernel: the fault-free path still passes through
      // programming quantization so map-based and RNG-based deployments see
      // the same device resolution.
      std::size_t fw = 0;
      for (std::int64_t i = 0; i < n; ++i) {
        if (fw < faulted_weights.size() && faulted_weights[fw] == i) {
          ++fw;
          continue;
        }
        CellPair cells = mapper.to_cells(w[i]);
        cells.g_pos = quant.quantize(cells.g_pos);
        cells.g_neg = quant.quantize(cells.g_neg);
        w[i] = mapper.to_weight(cells);
      }
    }
    cell_off = cell_hi;
  }
  return stats;
}

FaultInjectionSession::FaultInjectionSession(Module& model_root) {
  for (Param* p : parameters_of(model_root)) {
    if (p->kind == ParamKind::kCrossbarWeight) params_.push_back(p);
  }
  shadow_.resize(params_.size());
  hit_masks_.resize(params_.size());
}

const InjectionStats& FaultInjectionSession::inject(const StuckAtFaultModel& model,
                                                    const InjectorConfig& config, Rng& rng) {
  // A session is single-owner state (one per worker clone in the parallel
  // evaluator); concurrent inject() would corrupt the swap protocol. The
  // exchange is cheap and catches misuse in every build type.
  const bool was_busy = busy_.exchange(true, std::memory_order_acq_rel);
  FTPIM_CHECK(!was_busy, "FaultInjectionSession::inject: concurrent use of one session");
  // Clears the busy flag on every exit path, including a throwing copy phase.
  struct BusyClear {
    std::atomic<bool>& flag;
    ~BusyClear() { flag.store(false, std::memory_order_release); }
  } busy_clear{busy_};
  restore();
  stats_ = InjectionStats{};
  // Phase 1 (may allocate on first use): faulted copies into the shadows,
  // model untouched — an exception here leaves the clean weights live.
  for (std::size_t k = 0; k < params_.size(); ++k) {
    accumulate(stats_,
               apply_faults_to_copy(params_[k]->value, shadow_[k], model, config, rng,
                                    &hit_masks_[k]));
  }
  // Phase 2 (noexcept): publish — shadows now hold the clean tensors.
  for (std::size_t k = 0; k < params_.size(); ++k) {
    std::swap(params_[k]->value, shadow_[k]);
  }
  injected_ = true;
  return stats_;
}

void FaultInjectionSession::restore() noexcept {
  if (!injected_) return;
  for (std::size_t k = 0; k < params_.size(); ++k) std::swap(params_[k]->value, shadow_[k]);
  injected_ = false;
}

FaultInjectionSession::~FaultInjectionSession() { restore(); }

WeightFaultGuard::WeightFaultGuard(Module& model_root, const StuckAtFaultModel& model,
                                   const InjectorConfig& config, Rng& rng)
    : session_(model_root) {
  session_.inject(model, config, rng);
}

}  // namespace ftpim
