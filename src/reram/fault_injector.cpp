#include "src/reram/fault_injector.hpp"

namespace ftpim {
namespace {

float tensor_wmax(const Tensor& weights, const InjectorConfig& config) {
  if (!config.per_tensor_wmax) return config.fixed_wmax;
  const float m = weights.abs_max();
  return m > 0.0f ? m : 1.0f;  // all-zero tensor: any scale works
}

}  // namespace

InjectionStats apply_stuck_at_faults(Tensor& weights, const StuckAtFaultModel& model,
                                     const InjectorConfig& config, Rng& rng, Tensor* hit_mask) {
  InjectionStats stats;
  stats.cells = 2 * weights.numel();
  if (hit_mask != nullptr) *hit_mask = Tensor(weights.shape());

  const DifferentialMapper mapper(config.range, tensor_wmax(weights, config));
  const ConductanceQuantizer quant(config.range, config.quant_levels);
  const float g_min = config.range.g_min;
  const float g_max = config.range.g_max;

  float* w = weights.data();
  float* mask = hit_mask != nullptr ? hit_mask->data() : nullptr;
  for (std::int64_t i = 0; i < weights.numel(); ++i) {
    const FaultType f_pos = model.sample(rng);
    const FaultType f_neg = model.sample(rng);
    if (f_pos == FaultType::kNone && f_neg == FaultType::kNone) {
      if (config.quant_levels >= 2) {
        // Still pass through programming quantization so the fault-free path
        // matches device resolution.
        CellPair cells = mapper.to_cells(w[i]);
        cells.g_pos = quant.quantize(cells.g_pos);
        cells.g_neg = quant.quantize(cells.g_neg);
        w[i] = mapper.to_weight(cells);
      }
      continue;
    }
    CellPair cells = mapper.to_cells(w[i]);
    if (config.quant_levels >= 2) {
      cells.g_pos = quant.quantize(cells.g_pos);
      cells.g_neg = quant.quantize(cells.g_neg);
    }
    if (f_pos != FaultType::kNone) {
      cells.g_pos = (f_pos == FaultType::kStuckOff) ? g_min : g_max;
      ++stats.faulted_cells;
    }
    if (f_neg != FaultType::kNone) {
      cells.g_neg = (f_neg == FaultType::kStuckOff) ? g_min : g_max;
      ++stats.faulted_cells;
    }
    const float new_w = mapper.to_weight(cells);
    if (new_w != w[i]) {
      ++stats.affected_weights;
      if (mask != nullptr) mask[i] = 1.0f;
    }
    w[i] = new_w;
  }
  return stats;
}

InjectionStats inject_into_model(Module& model_root, const StuckAtFaultModel& model,
                                 const InjectorConfig& config, Rng& rng) {
  InjectionStats total;
  for (Param* p : parameters_of(model_root)) {
    if (p->kind != ParamKind::kCrossbarWeight) continue;
    const InjectionStats s = apply_stuck_at_faults(p->value, model, config, rng);
    total.cells += s.cells;
    total.faulted_cells += s.faulted_cells;
    total.affected_weights += s.affected_weights;
  }
  return total;
}

WeightFaultGuard::WeightFaultGuard(Module& model_root, const StuckAtFaultModel& model,
                                   const InjectorConfig& config, Rng& rng) {
  for (Param* p : parameters_of(model_root)) {
    if (p->kind == ParamKind::kCrossbarWeight) params_.push_back(p);
  }
  clean_.reserve(params_.size());
  hit_masks_.resize(params_.size());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    clean_.push_back(p->value);
    const InjectionStats s =
        apply_stuck_at_faults(p->value, model, config, rng, &hit_masks_[k]);
    stats_.cells += s.cells;
    stats_.faulted_cells += s.faulted_cells;
    stats_.affected_weights += s.affected_weights;
  }
}

void WeightFaultGuard::restore() {
  if (restored_) return;
  for (std::size_t k = 0; k < params_.size(); ++k) params_[k]->value = clean_[k];
  restored_ = true;
}

WeightFaultGuard::~WeightFaultGuard() { restore(); }

}  // namespace ftpim
