#include "src/reram/qinfer/quantized_engine.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/reram/quantizer.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/kernels/pack_arena.hpp"
#include "src/tensor/kernels/qgemm.hpp"

namespace ftpim::qinfer {

void QuantizedEngineConfig::validate() const {
  FTPIM_CHECK(tile_rows > 0 && tile_rows % 2 == 0,
              "QuantizedEngineConfig: tile_rows must be even and positive");
  // Keeps the worst-case int32 column sum (127 * 255 * tile_rows) and the
  // ADC reconstruction bound inside int32 — see qgemm.hpp and adc.hpp.
  FTPIM_CHECK(tile_rows <= 65536, "QuantizedEngineConfig: tile_rows must be <= 65536");
  FTPIM_CHECK(tile_cols > 1 && tile_cols % 2 == 0,
              "QuantizedEngineConfig: tile_cols must be even and positive");
  FTPIM_CHECK(levels >= 2 && levels <= 256,
              "QuantizedEngineConfig: levels must be in [2, 256] (uint8 level storage)");
  range.validate();
  adc.validate();
  abft.validate();
  if (abft.enabled) {
    // The checksum readout sum_k L^k * A*_k must stay inside int64: the
    // largest digit-column accumulator is 127 * 255 * tile_rows and the digit
    // weights sum to less than L^(digits+1) / (L - 1) <= 2 * L * (L-1) * tile_cols.
    const double weight_sum =
        2.0 * levels * (levels - 1) * static_cast<double>(tile_cols);
    const double worst = weight_sum * 127.0 * 255.0 * static_cast<double>(tile_rows);
    FTPIM_CHECK(worst < 4.0e18,
                "QuantizedEngineConfig: tile too large for an int64-exact ABFT checksum");
  }
}

QuantizedCrossbarEngine::QuantizedCrossbarEngine(const Tensor& weights,
                                                 const QuantizedEngineConfig& config, float w_max)
    : config_(config) {
  FTPIM_CHECK(!(weights.rank() != 2), "QuantizedCrossbarEngine: [out,in] matrix required");
  config_.validate();
  out_ = weights.dim(0);
  in_ = weights.dim(1);
  w_max_ = w_max > 0.0f ? w_max : (weights.abs_max() > 0.0f ? weights.abs_max() : 1.0f);
  outs_per_tile_ = config_.tile_cols / 2;
  row_tiles_ = (in_ + config_.tile_rows - 1) / config_.tile_rows;
  col_tiles_ = (out_ + outs_per_tile_ - 1) / outs_per_tile_;
  check_cols_ =
      config_.abft.enabled ? abft::checksum_digit_columns(config_.levels, config_.tile_cols) : 0;
  // With ABFT on the packed width is rounded up to a multiple of 16: the
  // qgemm kernels run aligned widths measurably faster than the odd width
  // tile_cols + check_cols_ lands on (e.g. 128 + 3). The pad columns are
  // DEAD ZERO cells — padding with extra digit columns instead would add an
  // L^k * delta term per column to the ADC tolerance and destroy detection
  // sensitivity. Verification never reads past tile_cols + check_cols_.
  packed_cols_ = config_.tile_cols + check_cols_;
  if (check_cols_ > 0) packed_cols_ = (packed_cols_ + 15) & ~std::int64_t{15};

  const auto cells = static_cast<std::size_t>(config_.tile_rows * config_.tile_cols);
  tiles_.resize(static_cast<std::size_t>(row_tiles_ * col_tiles_));
  for (Tile& t : tiles_) {
    t.level.assign(cells, 0);  // unprogrammed cells rest at level 0 (g_min)
    t.fault.assign(cells, 0);
    t.packed.resize(kernels::packed_levels_bytes(config_.tile_rows, packed_cols_));
    if (!config_.adc.ideal()) t.delta.assign(static_cast<std::size_t>(packed_cols_), 1);
    if (check_cols_ > 0) {
      t.check_level.assign(static_cast<std::size_t>(config_.tile_rows * check_cols_), 0);
      t.check_fault.assign(static_cast<std::size_t>(config_.tile_rows * check_cols_), 0);
    }
  }
  if (check_cols_ > 0) abft_.reset(row_tiles_, col_tiles_);

  // Program: weight -> differential conductance pair -> nearest level index.
  // level_index(to_cells(w)) is exactly the value CrossbarArray::program
  // stores when quant_levels == levels, so the two engines hold the same
  // discretized device state.
  const DifferentialMapper mapper(config_.range, w_max_);
  const ConductanceQuantizer quantizer(config_.range, config_.levels);
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config_.tile_rows;
      const std::int64_t local_r = i % config_.tile_rows;
      const CellPair pair = mapper.to_cells(weights.at(o, i));
      Tile& t = tile(rt, ct);
      const std::size_t base = static_cast<std::size_t>(local_r * config_.tile_cols + 2 * local_o);
      t.level[base] = static_cast<std::uint8_t>(quantizer.level_index(pair.g_pos));
      t.level[base + 1] = static_cast<std::uint8_t>(quantizer.level_index(pair.g_neg));
    }
  }
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      // With ABFT the initial baseline is the clean programming (no faults
      // yet, so rebaseline == encode the programmed levels).
      if (check_cols_ > 0) {
        rebaseline_tile(tile(rt, ct), valid_rows_of(rt));
      } else {
        repack_tile(tile(rt, ct), valid_rows_of(rt));
      }
    }
  }
}

std::int64_t QuantizedCrossbarEngine::valid_rows_of(std::int64_t rt) const noexcept {
  return std::min(config_.tile_rows, in_ - rt * config_.tile_rows);
}

std::uint8_t QuantizedCrossbarEngine::effective_level(const Tile& t,
                                                      std::size_t cell) const noexcept {
  const std::uint8_t f = t.fault[cell];
  if (f == 0) return t.level[cell];
  return f == static_cast<std::uint8_t>(FaultType::kStuckOff)
             ? std::uint8_t{0}
             : static_cast<std::uint8_t>(config_.levels - 1);
}

std::uint8_t QuantizedCrossbarEngine::effective_check_level(const Tile& t, std::int64_t r,
                                                            std::int64_t k) const noexcept {
  const auto cell = static_cast<std::size_t>(r * check_cols_ + k);
  const std::uint8_t f = t.check_fault[cell];
  if (f == 0) return t.check_level[cell];
  return f == static_cast<std::uint8_t>(FaultType::kStuckOff)
             ? std::uint8_t{0}
             : static_cast<std::uint8_t>(config_.levels - 1);
}

FTPIM_COLD void QuantizedCrossbarEngine::repack_tile(Tile& t, std::int64_t valid_rows) {
  const std::int64_t rows = config_.tile_rows;
  const std::int64_t cols = config_.tile_cols;
  const std::int64_t pc = packed_cols_;
  // Checksum digit columns ride in the same packed buffer as the data
  // columns (columns cols .. cols + check_cols_ - 1) and go through the same
  // kernel call, so they see the identical accumulation path; any columns
  // past that are dead zero padding for kernel width alignment. pc == cols
  // when ABFT is off and this packs byte-for-byte what it always did.
  std::vector<std::uint8_t> eff(static_cast<std::size_t>(rows * pc));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      eff[static_cast<std::size_t>(r * pc + c)] =
          effective_level(t, static_cast<std::size_t>(r * cols + c));
    }
    for (std::int64_t k = 0; k < check_cols_; ++k) {
      eff[static_cast<std::size_t>(r * pc + cols + k)] = effective_check_level(t, r, k);
    }
  }
  // Pack with k == valid_rows, not tile_rows: the packed panel stride is a
  // function of k (ceil(k/2) pairs per panel), and the MVM drives the kernel
  // with k == valid_rows. Packing the full tile would shift every column
  // panel after the first whenever the tile is partially filled.
  kernels::pack_levels(eff.data(), valid_rows, pc, pc, t.packed.data());
  if (check_cols_ > 0) {
    // Verification bound: data columns at or past nz_cols hold level 0 in
    // every driven row, so their kernel output is identically zero and the
    // readout can skip them without changing dsum or the clip veto. Edge
    // tiles whose outputs map only a few columns verify in O(used), not
    // O(tile_cols). Recomputed on every repack, so late faults that raise a
    // dead column are re-covered.
    std::int64_t nz = 0;
    for (std::int64_t r = 0; r < valid_rows; ++r) {
      for (std::int64_t c = cols - 1; c >= nz; --c) {
        if (eff[static_cast<std::size_t>(r * pc + c)] != 0) {
          nz = c + 1;
          break;
        }
      }
    }
    t.nz_cols = nz;
  }
  if (config_.adc.ideal()) {
    t.tol2 = 0;  // digitization is exact, so the checksum identity is too
    return;
  }
  // Worst-case column sum over the DRIVEN rows only — rows past valid_rows
  // carry zero wordline drive (k = valid in the MVM), so they contribute
  // neither signal nor full-scale.
  for (std::int64_t c = 0; c < pc; ++c) {
    std::int64_t bound = 0;
    for (std::int64_t r = 0; r < valid_rows; ++r) {
      bound += eff[static_cast<std::size_t>(r * pc + c)];
    }
    t.delta[static_cast<std::size_t>(c)] = adc_column_delta(config_.adc, 127 * bound);
  }
  // 2x tolerance of the digitized checksum comparison: round-half-away error
  // is at most delta/2 per column, so 2 * |sum_c A~_c - sum_k L^k A~*_k| <=
  // sum_c delta_c + sum_k L^k delta*_k for a fault-free tile (clipping
  // excluded — see DESIGN.md section 14).
  std::int64_t tol2 = 0;
  for (std::int64_t c = 0; c < cols; ++c) tol2 += t.delta[static_cast<std::size_t>(c)];
  std::int64_t chk_tol = 0;
  for (std::int64_t k = check_cols_ - 1; k >= 0; --k) {
    chk_tol = chk_tol * config_.levels + t.delta[static_cast<std::size_t>(cols + k)];
  }
  t.tol2 = tol2 + chk_tol;
  if (check_cols_ > 0) {
    // Saturation thresholds for the verification veto: |reconstructed| ==
    // qmax * delta means the column clipped, and the bound above no longer
    // holds for that sample.
    const std::int64_t qmax = config_.adc.qmax();
    t.sat.resize(static_cast<std::size_t>(pc));
    for (std::int64_t c = 0; c < pc; ++c) {
      t.sat[static_cast<std::size_t>(c)] = qmax * t.delta[static_cast<std::size_t>(c)];
    }
  }
}

FTPIM_COLD void QuantizedCrossbarEngine::rebaseline_tile(Tile& t, std::int64_t valid_rows) {
  const std::int64_t rows = config_.tile_rows;
  const std::int64_t cols = config_.tile_cols;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t s = 0;
    for (std::int64_t c = 0; c < cols; ++c) {
      s += effective_level(t, static_cast<std::size_t>(r * cols + c));
    }
    for (std::int64_t k = 0; k < check_cols_; ++k) {
      t.check_level[static_cast<std::size_t>(r * check_cols_ + k)] =
          static_cast<std::uint8_t>(s % config_.levels);
      s /= config_.levels;
    }
    // check_cols_ was sized for the maximal row sum, so the digits always fit.
    FTPIM_DCHECK_EQ(s, 0);
  }
  // A stuck checksum cell makes the check column itself unreliable: silence
  // verification for this tile (canaries still cover it) rather than alarm
  // forever on a fault no scrub can reach. Only driven rows matter.
  t.check_ok = 1;
  for (std::int64_t r = 0; r < valid_rows && t.check_ok != 0; ++r) {
    for (std::int64_t k = 0; k < check_cols_; ++k) {
      if (t.check_fault[static_cast<std::size_t>(r * check_cols_ + k)] != 0) {
        t.check_ok = 0;
        break;
      }
    }
  }
  repack_tile(t, valid_rows);
}

bool QuantizedCrossbarEngine::abft_tile_active(std::int64_t rt, std::int64_t ct) const {
  FTPIM_CHECK(rt >= 0 && rt < row_tiles_ && ct >= 0 && ct < col_tiles_,
              "QuantizedCrossbarEngine::abft_tile_active: tile index out of range");
  return check_cols_ > 0 && tile(rt, ct).check_ok != 0;
}

void QuantizedCrossbarEngine::abft_rebaseline() {
  FTPIM_CHECK(check_cols_ > 0, "QuantizedCrossbarEngine::abft_rebaseline: ABFT is disabled");
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      rebaseline_tile(tile(rt, ct), valid_rows_of(rt));
    }
  }
}

void QuantizedCrossbarEngine::scrub_tile(std::int64_t rt, std::int64_t ct) {
  FTPIM_CHECK(rt >= 0 && rt < row_tiles_ && ct >= 0 && ct < col_tiles_,
              "QuantizedCrossbarEngine::scrub_tile: tile index out of range");
  Tile& t = tile(rt, ct);
  // The programmed levels (and the checksum digits of the last baseline) are
  // retained state, so "re-program from source" is exactly a tile-local
  // fault clear + repack. The caller re-applies its persistent DefectMap so
  // aging-grown faults resurface and keep the detection alive.
  std::fill(t.fault.begin(), t.fault.end(), std::uint8_t{0});
  std::fill(t.check_fault.begin(), t.check_fault.end(), std::uint8_t{0});
  repack_tile(t, valid_rows_of(rt));
}

std::int64_t QuantizedCrossbarEngine::scrub(const abft::TileFaultReport& report) {
  std::int64_t scrubbed = 0;
  for (const abft::TileFaultCount& f : report.tiles) {
    scrub_tile(f.row_tile, f.col_tile);
    ++scrubbed;
  }
  return scrubbed;
}

abft::TileFaultReport QuantizedCrossbarEngine::take_abft_report() {
  FTPIM_CHECK(check_cols_ > 0, "QuantizedCrossbarEngine::take_abft_report: ABFT is disabled");
  return abft_.take();
}

std::int64_t QuantizedCrossbarEngine::total_cells() const noexcept {
  return static_cast<std::int64_t>(tiles_.size()) * config_.tile_rows * config_.tile_cols;
}

std::int64_t QuantizedCrossbarEngine::stuck_cells() const noexcept {
  std::int64_t n = 0;
  for (const Tile& t : tiles_) {
    for (const std::uint8_t f : t.fault) n += (f != 0);
  }
  return n;
}

void QuantizedCrossbarEngine::apply_device_defects(const StuckAtFaultModel& model,
                                                   std::uint64_t master_seed,
                                                   std::uint64_t device_index) {
  // Identical stream to CrossbarEngine::apply_device_defects: one sample per
  // tile in row-major tile order from the derived device seed. Checksum
  // cells draw from a SEPARATE derived stream (distinct salt) so enabling
  // ABFT leaves the data-cell fault pattern of a given die byte-identical.
  Rng rng(derive_seed(master_seed, device_index + 0xcba));
  Rng rng_chk(derive_seed(master_seed, device_index + 0xabf7));
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      Tile& t = tile(rt, ct);
      const DefectMap map =
          DefectMap::sample(config_.tile_rows * config_.tile_cols, model, rng);
      for (const CellFault& f : map.faults()) {
        t.fault[static_cast<std::size_t>(f.cell_index)] = static_cast<std::uint8_t>(f.type);
      }
      if (check_cols_ > 0) {
        const DefectMap chk_map =
            DefectMap::sample(config_.tile_rows * check_cols_, model, rng_chk);
        for (const CellFault& f : chk_map.faults()) {
          t.check_fault[static_cast<std::size_t>(f.cell_index)] =
              static_cast<std::uint8_t>(f.type);
        }
      }
      repack_tile(t, valid_rows_of(rt));
    }
  }
}

void QuantizedCrossbarEngine::apply_defect_map(const DefectMap& map) {
  FTPIM_CHECK(map.cell_count() == 2 * out_ * in_,
              "QuantizedCrossbarEngine::apply_defect_map: cell count mismatch");
  std::vector<std::uint8_t> dirty(tiles_.size(), 0);
  for (const CellFault& f : map.faults()) {
    const std::int64_t w = f.cell_index / 2;  // flat weight index o * in + i
    const std::int64_t pol = f.cell_index % 2;
    const std::int64_t o = w / in_;
    const std::int64_t i = w % in_;
    const std::int64_t rt = i / config_.tile_rows;
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_r = i % config_.tile_rows;
    const std::int64_t local_c = 2 * (o % outs_per_tile_) + pol;
    Tile& t = tile(rt, ct);
    t.fault[static_cast<std::size_t>(local_r * config_.tile_cols + local_c)] =
        static_cast<std::uint8_t>(f.type);
    dirty[static_cast<std::size_t>(rt * col_tiles_ + ct)] = 1;
  }
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      if (dirty[static_cast<std::size_t>(rt * col_tiles_ + ct)] != 0) {
        repack_tile(tile(rt, ct), valid_rows_of(rt));
      }
    }
  }
}

void QuantizedCrossbarEngine::clear_defects() {
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      Tile& t = tile(rt, ct);
      std::fill(t.fault.begin(), t.fault.end(), std::uint8_t{0});
      std::fill(t.check_fault.begin(), t.check_fault.end(), std::uint8_t{0});
      repack_tile(t, valid_rows_of(rt));
    }
  }
}

namespace {

/// Rare-path clip scan for the ABFT veto: recomputes the digitized value of
/// every verified column of one (sample, tile) readout and reports whether
/// any reached the converter rails. Runs only when a residual is already out
/// of tolerance, so the clean readout pays nothing for clip detection.
FTPIM_COLD bool any_column_clipped(const std::int32_t* crow, const std::int32_t* delta,
                                   const std::int64_t* sat, std::int64_t ncols,
                                   std::int32_t qmax) {
  for (std::int64_t c = 0; c < ncols; ++c) {
    const std::int32_t d = adc_digitize(crow[c], delta[static_cast<std::size_t>(c)], qmax);
    if (static_cast<std::int64_t>(d < 0 ? -d : d) >= sat[static_cast<std::size_t>(c)]) {
      return true;
    }
  }
  return false;
}

}  // namespace

FTPIM_HOT void QuantizedCrossbarEngine::mvm(const float* x, float* y) const {
  mvm_batch(x, 1, y);
}

FTPIM_HOT void QuantizedCrossbarEngine::mvm_batch(const float* x, std::int64_t batch,
                                                  float* y) const {
  FTPIM_CHECK_GE(batch, 0);
  if (batch == 0) return;

  // Per-batch symmetric activation scale: sx = absmax / 127. A zero batch
  // yields zero drive everywhere — short-circuit before dividing.
  float absmax = 0.0f;
  const std::int64_t total_in = batch * in_;
  for (std::int64_t i = 0; i < total_in; ++i) {
    const float a = x[i] < 0.0f ? -x[i] : x[i];
    if (a > absmax) absmax = a;
  }
  if (absmax == 0.0f) {
    std::fill(y, y + batch * out_, 0.0f);
    return;
  }
  const float inv_scale = 127.0f / absmax;
  const float dequant = (absmax / 127.0f) * (w_max_ / static_cast<float>(config_.levels - 1));

  const std::int64_t tc = config_.tile_cols;
  const std::int64_t pc = packed_cols_;  // tc + checksum digit columns
  const bool do_abft = check_cols_ > 0;
  const std::int64_t levels = config_.levels;
  // Odd in_ needs one zero pad byte per row: the kernels consume K in pairs
  // (qgemm.hpp's lda >= k + (k & 1) contract). tile_rows is even, so only
  // the LAST row tile can see an odd k, and its pad lands at column in_.
  const std::int64_t stride = in_ + (in_ & 1);
  kernels::PackArena& caller_arena = kernels::PackArena::local();
  auto* xq = reinterpret_cast<std::int8_t*>(
      caller_arena.byte_buffer(0, static_cast<std::size_t>(batch * stride)));

  const kernels::QmvmKernel kern = kernels::select_qmvm_kernel(kernels::active_kernel_level());
  const bool ideal_adc = config_.adc.ideal();
  const std::int32_t qmax = ideal_adc ? 0 : config_.adc.qmax();

  // Row-parallel over the batch: each worker quantizes its own slice of xq,
  // then walks every tile. All per-output state is integer until the single
  // dequantizing multiply, so the partition never changes a bit of y.
  parallel_for_chunks(
      0, static_cast<std::size_t>(batch),
      [&](std::size_t lo_s, std::size_t hi_s) {
        const auto lo = static_cast<std::int64_t>(lo_s);
        const auto hi = static_cast<std::int64_t>(hi_s);
        const std::int64_t mb = hi - lo;
        for (std::int64_t bi = lo; bi < hi; ++bi) {
          const float* xrow = x + bi * in_;
          std::int8_t* qrow = xq + bi * stride;
          for (std::int64_t i = 0; i < in_; ++i) {
            const long code = std::lround(xrow[i] * inv_scale);
            qrow[i] = static_cast<std::int8_t>(std::clamp<long>(code, -127, 127));
          }
          if ((in_ & 1) != 0) qrow[in_] = 0;
        }

        kernels::PackArena& arena = kernels::PackArena::local();
        std::int32_t* cur = arena.i32_buffer(0, static_cast<std::size_t>(mb * pc));
        std::int64_t* acc = arena.i64_buffer(0, static_cast<std::size_t>(mb * out_));
        std::fill(acc, acc + mb * out_, std::int64_t{0});
        std::int64_t* mm = nullptr;  // per-worker per-tile mismatch counts
        std::int64_t chunk_checks = 0;
        if (do_abft) {
          mm = arena.i64_buffer(1, tiles_.size());
          std::fill(mm, mm + tiles_.size(), std::int64_t{0});
        }

        for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
          const std::int64_t base = rt * config_.tile_rows;
          const std::int64_t valid = std::min(config_.tile_rows, in_ - base);
          for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
            const Tile& t = tile(rt, ct);
            kern(mb, pc, valid, xq + lo * stride + base, stride, t.packed.data(), cur, pc);
            const std::int64_t out_base = ct * outs_per_tile_;
            const std::int64_t out_count = std::min(outs_per_tile_, out_ - out_base);
            // A verified tile folds the checksum comparison into the readout
            // loop: the per-output accumulation below is kept expression-for-
            // expression identical to the unverified branch, so enabling ABFT
            // never changes a bit of y.
            const bool check_tile = do_abft && t.check_ok != 0;
            for (std::int64_t bi = 0; bi < mb; ++bi) {
              const std::int32_t* crow = cur + bi * pc;
              std::int64_t* arow = acc + bi * out_ + out_base;
              std::int64_t dsum = 0;  // sum of digitized data columns
              if (ideal_adc) {
                if (check_tile) {
                  for (std::int64_t o = 0; o < out_count; ++o) {
                    arow[o] += crow[2 * o] - crow[2 * o + 1];
                    dsum += static_cast<std::int64_t>(crow[2 * o]) + crow[2 * o + 1];
                  }
                } else {
                  for (std::int64_t o = 0; o < out_count; ++o) {
                    arow[o] += crow[2 * o] - crow[2 * o + 1];
                  }
                }
              } else {
                if (check_tile) {
                  for (std::int64_t o = 0; o < out_count; ++o) {
                    const std::int32_t dp = adc_digitize(
                        crow[2 * o], t.delta[static_cast<std::size_t>(2 * o)], qmax);
                    const std::int32_t dn = adc_digitize(
                        crow[2 * o + 1], t.delta[static_cast<std::size_t>(2 * o + 1)], qmax);
                    arow[o] += dp - dn;
                    dsum += static_cast<std::int64_t>(dp) + dn;
                  }
                } else {
                  for (std::int64_t o = 0; o < out_count; ++o) {
                    arow[o] += adc_digitize(crow[2 * o], t.delta[static_cast<std::size_t>(2 * o)],
                                            qmax) -
                               adc_digitize(crow[2 * o + 1],
                                            t.delta[static_cast<std::size_t>(2 * o + 1)], qmax);
                  }
                }
              }
              if (check_tile) {
                // Data columns past the mapped outputs (edge col tiles only)
                // still count toward the checksum identity — but only up to
                // the tile's last nonzero column; the rest read exactly zero.
                const std::int64_t ctop = t.nz_cols;
                for (std::int64_t c = 2 * out_count; c < ctop; ++c) {
                  dsum += ideal_adc
                              ? crow[c]
                              : adc_digitize(crow[c], t.delta[static_cast<std::size_t>(c)], qmax);
                }
                std::int64_t chk = 0;  // sum_k L^k * digit column k, via Horner
                for (std::int64_t k = check_cols_ - 1; k >= 0; --k) {
                  std::int32_t a = crow[tc + k];
                  if (!ideal_adc) {
                    a = adc_digitize(a, t.delta[static_cast<std::size_t>(tc + k)], qmax);
                  }
                  chk = chk * levels + a;
                }
                ++chunk_checks;
                const std::int64_t res = dsum - chk;
                if ((res < 0 ? -2 * res : 2 * res) > t.tol2) {
                  // Out-of-tolerance residual. On the ADC path a saturated
                  // column breaks the linearity the identity needs, so the
                  // clip veto is decided HERE, on the rare mismatch path,
                  // instead of per column in the clean readout above. A
                  // clipped sample whose distorted residual still lands
                  // inside tolerance counts as a check but cannot alarm.
                  if (ideal_adc ||
                      !any_column_clipped(crow, t.delta.data(), t.sat.data(),
                                          tc + check_cols_, qmax)) {
                    ++mm[static_cast<std::size_t>(rt * col_tiles_ + ct)];
                  } else {
                    --chunk_checks;  // vetoed, not verified
                  }
                }
              }
            }
          }
        }
        if (do_abft) abft_.merge(mm, chunk_checks);

        for (std::int64_t bi = 0; bi < mb; ++bi) {
          float* yrow = y + (lo + bi) * out_;
          const std::int64_t* arow = acc + bi * out_;
          for (std::int64_t o = 0; o < out_; ++o) {
            yrow[o] = static_cast<float>(arow[o]) * dequant;
          }
        }
      },
      2);
}

Tensor QuantizedCrossbarEngine::read_back() const {
  Tensor w(Shape{out_, in_});
  const ConductanceQuantizer quantizer(config_.range, config_.levels);
  const float g_to_w = w_max_ / config_.range.span();
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config_.tile_rows;
      const std::int64_t local_r = i % config_.tile_rows;
      const Tile& t = tile(rt, ct);
      const std::size_t base = static_cast<std::size_t>(local_r * config_.tile_cols + 2 * local_o);
      const float g_pos = quantizer.level_value(effective_level(t, base));
      const float g_neg = quantizer.level_value(effective_level(t, base + 1));
      w.at(o, i) = (g_pos - g_neg) * g_to_w;
    }
  }
  return w;
}

}  // namespace ftpim::qinfer
