#include "src/reram/qinfer/quantized_engine.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/reram/quantizer.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/kernels/pack_arena.hpp"
#include "src/tensor/kernels/qgemm.hpp"

namespace ftpim::qinfer {

void QuantizedEngineConfig::validate() const {
  FTPIM_CHECK(tile_rows > 0 && tile_rows % 2 == 0,
              "QuantizedEngineConfig: tile_rows must be even and positive");
  // Keeps the worst-case int32 column sum (127 * 255 * tile_rows) and the
  // ADC reconstruction bound inside int32 — see qgemm.hpp and adc.hpp.
  FTPIM_CHECK(tile_rows <= 65536, "QuantizedEngineConfig: tile_rows must be <= 65536");
  FTPIM_CHECK(tile_cols > 1 && tile_cols % 2 == 0,
              "QuantizedEngineConfig: tile_cols must be even and positive");
  FTPIM_CHECK(levels >= 2 && levels <= 256,
              "QuantizedEngineConfig: levels must be in [2, 256] (uint8 level storage)");
  range.validate();
  adc.validate();
}

QuantizedCrossbarEngine::QuantizedCrossbarEngine(const Tensor& weights,
                                                 const QuantizedEngineConfig& config, float w_max)
    : config_(config) {
  FTPIM_CHECK(!(weights.rank() != 2), "QuantizedCrossbarEngine: [out,in] matrix required");
  config_.validate();
  out_ = weights.dim(0);
  in_ = weights.dim(1);
  w_max_ = w_max > 0.0f ? w_max : (weights.abs_max() > 0.0f ? weights.abs_max() : 1.0f);
  outs_per_tile_ = config_.tile_cols / 2;
  row_tiles_ = (in_ + config_.tile_rows - 1) / config_.tile_rows;
  col_tiles_ = (out_ + outs_per_tile_ - 1) / outs_per_tile_;

  const auto cells = static_cast<std::size_t>(config_.tile_rows * config_.tile_cols);
  tiles_.resize(static_cast<std::size_t>(row_tiles_ * col_tiles_));
  for (Tile& t : tiles_) {
    t.level.assign(cells, 0);  // unprogrammed cells rest at level 0 (g_min)
    t.fault.assign(cells, 0);
    t.packed.resize(kernels::packed_levels_bytes(config_.tile_rows, config_.tile_cols));
    if (!config_.adc.ideal()) t.delta.assign(static_cast<std::size_t>(config_.tile_cols), 1);
  }

  // Program: weight -> differential conductance pair -> nearest level index.
  // level_index(to_cells(w)) is exactly the value CrossbarArray::program
  // stores when quant_levels == levels, so the two engines hold the same
  // discretized device state.
  const DifferentialMapper mapper(config_.range, w_max_);
  const ConductanceQuantizer quantizer(config_.range, config_.levels);
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config_.tile_rows;
      const std::int64_t local_r = i % config_.tile_rows;
      const CellPair pair = mapper.to_cells(weights.at(o, i));
      Tile& t = tile(rt, ct);
      const std::size_t base = static_cast<std::size_t>(local_r * config_.tile_cols + 2 * local_o);
      t.level[base] = static_cast<std::uint8_t>(quantizer.level_index(pair.g_pos));
      t.level[base + 1] = static_cast<std::uint8_t>(quantizer.level_index(pair.g_neg));
    }
  }
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) repack_tile(tile(rt, ct), valid_rows_of(rt));
  }
}

std::int64_t QuantizedCrossbarEngine::valid_rows_of(std::int64_t rt) const noexcept {
  return std::min(config_.tile_rows, in_ - rt * config_.tile_rows);
}

std::uint8_t QuantizedCrossbarEngine::effective_level(const Tile& t,
                                                      std::size_t cell) const noexcept {
  const std::uint8_t f = t.fault[cell];
  if (f == 0) return t.level[cell];
  return f == static_cast<std::uint8_t>(FaultType::kStuckOff)
             ? std::uint8_t{0}
             : static_cast<std::uint8_t>(config_.levels - 1);
}

FTPIM_COLD void QuantizedCrossbarEngine::repack_tile(Tile& t, std::int64_t valid_rows) {
  const std::int64_t rows = config_.tile_rows;
  const std::int64_t cols = config_.tile_cols;
  std::vector<std::uint8_t> eff(static_cast<std::size_t>(rows * cols));
  for (std::size_t c = 0; c < eff.size(); ++c) eff[c] = effective_level(t, c);
  // Pack with k == valid_rows, not tile_rows: the packed panel stride is a
  // function of k (ceil(k/2) pairs per panel), and the MVM drives the kernel
  // with k == valid_rows. Packing the full tile would shift every column
  // panel after the first whenever the tile is partially filled.
  kernels::pack_levels(eff.data(), valid_rows, cols, cols, t.packed.data());
  if (config_.adc.ideal()) return;
  // Worst-case column sum over the DRIVEN rows only — rows past valid_rows
  // carry zero wordline drive (k = valid in the MVM), so they contribute
  // neither signal nor full-scale.
  for (std::int64_t c = 0; c < cols; ++c) {
    std::int64_t bound = 0;
    for (std::int64_t r = 0; r < valid_rows; ++r) {
      bound += eff[static_cast<std::size_t>(r * cols + c)];
    }
    t.delta[static_cast<std::size_t>(c)] = adc_column_delta(config_.adc, 127 * bound);
  }
}

std::int64_t QuantizedCrossbarEngine::total_cells() const noexcept {
  return static_cast<std::int64_t>(tiles_.size()) * config_.tile_rows * config_.tile_cols;
}

std::int64_t QuantizedCrossbarEngine::stuck_cells() const noexcept {
  std::int64_t n = 0;
  for (const Tile& t : tiles_) {
    for (const std::uint8_t f : t.fault) n += (f != 0);
  }
  return n;
}

void QuantizedCrossbarEngine::apply_device_defects(const StuckAtFaultModel& model,
                                                   std::uint64_t master_seed,
                                                   std::uint64_t device_index) {
  // Identical stream to CrossbarEngine::apply_device_defects: one sample per
  // tile in row-major tile order from the derived device seed.
  Rng rng(derive_seed(master_seed, device_index + 0xcba));
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      Tile& t = tile(rt, ct);
      const DefectMap map =
          DefectMap::sample(config_.tile_rows * config_.tile_cols, model, rng);
      for (const CellFault& f : map.faults()) {
        t.fault[static_cast<std::size_t>(f.cell_index)] = static_cast<std::uint8_t>(f.type);
      }
      repack_tile(t, valid_rows_of(rt));
    }
  }
}

void QuantizedCrossbarEngine::apply_defect_map(const DefectMap& map) {
  FTPIM_CHECK(map.cell_count() == 2 * out_ * in_,
              "QuantizedCrossbarEngine::apply_defect_map: cell count mismatch");
  std::vector<std::uint8_t> dirty(tiles_.size(), 0);
  for (const CellFault& f : map.faults()) {
    const std::int64_t w = f.cell_index / 2;  // flat weight index o * in + i
    const std::int64_t pol = f.cell_index % 2;
    const std::int64_t o = w / in_;
    const std::int64_t i = w % in_;
    const std::int64_t rt = i / config_.tile_rows;
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_r = i % config_.tile_rows;
    const std::int64_t local_c = 2 * (o % outs_per_tile_) + pol;
    Tile& t = tile(rt, ct);
    t.fault[static_cast<std::size_t>(local_r * config_.tile_cols + local_c)] =
        static_cast<std::uint8_t>(f.type);
    dirty[static_cast<std::size_t>(rt * col_tiles_ + ct)] = 1;
  }
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      if (dirty[static_cast<std::size_t>(rt * col_tiles_ + ct)] != 0) {
        repack_tile(tile(rt, ct), valid_rows_of(rt));
      }
    }
  }
}

void QuantizedCrossbarEngine::clear_defects() {
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      Tile& t = tile(rt, ct);
      std::fill(t.fault.begin(), t.fault.end(), std::uint8_t{0});
      repack_tile(t, valid_rows_of(rt));
    }
  }
}

FTPIM_HOT void QuantizedCrossbarEngine::mvm(const float* x, float* y) const {
  mvm_batch(x, 1, y);
}

FTPIM_HOT void QuantizedCrossbarEngine::mvm_batch(const float* x, std::int64_t batch,
                                                  float* y) const {
  FTPIM_CHECK_GE(batch, 0);
  if (batch == 0) return;

  // Per-batch symmetric activation scale: sx = absmax / 127. A zero batch
  // yields zero drive everywhere — short-circuit before dividing.
  float absmax = 0.0f;
  const std::int64_t total_in = batch * in_;
  for (std::int64_t i = 0; i < total_in; ++i) {
    const float a = x[i] < 0.0f ? -x[i] : x[i];
    if (a > absmax) absmax = a;
  }
  if (absmax == 0.0f) {
    std::fill(y, y + batch * out_, 0.0f);
    return;
  }
  const float inv_scale = 127.0f / absmax;
  const float dequant = (absmax / 127.0f) * (w_max_ / static_cast<float>(config_.levels - 1));

  const std::int64_t tc = config_.tile_cols;
  // Odd in_ needs one zero pad byte per row: the kernels consume K in pairs
  // (qgemm.hpp's lda >= k + (k & 1) contract). tile_rows is even, so only
  // the LAST row tile can see an odd k, and its pad lands at column in_.
  const std::int64_t stride = in_ + (in_ & 1);
  kernels::PackArena& caller_arena = kernels::PackArena::local();
  auto* xq = reinterpret_cast<std::int8_t*>(
      caller_arena.byte_buffer(0, static_cast<std::size_t>(batch * stride)));

  const kernels::QmvmKernel kern = kernels::select_qmvm_kernel(kernels::active_kernel_level());
  const bool ideal_adc = config_.adc.ideal();
  const std::int32_t qmax = ideal_adc ? 0 : config_.adc.qmax();

  // Row-parallel over the batch: each worker quantizes its own slice of xq,
  // then walks every tile. All per-output state is integer until the single
  // dequantizing multiply, so the partition never changes a bit of y.
  parallel_for_chunks(
      0, static_cast<std::size_t>(batch),
      [&](std::size_t lo_s, std::size_t hi_s) {
        const auto lo = static_cast<std::int64_t>(lo_s);
        const auto hi = static_cast<std::int64_t>(hi_s);
        const std::int64_t mb = hi - lo;
        for (std::int64_t bi = lo; bi < hi; ++bi) {
          const float* xrow = x + bi * in_;
          std::int8_t* qrow = xq + bi * stride;
          for (std::int64_t i = 0; i < in_; ++i) {
            const long code = std::lround(xrow[i] * inv_scale);
            qrow[i] = static_cast<std::int8_t>(std::clamp<long>(code, -127, 127));
          }
          if ((in_ & 1) != 0) qrow[in_] = 0;
        }

        kernels::PackArena& arena = kernels::PackArena::local();
        std::int32_t* cur = arena.i32_buffer(0, static_cast<std::size_t>(mb * tc));
        std::int64_t* acc = arena.i64_buffer(0, static_cast<std::size_t>(mb * out_));
        std::fill(acc, acc + mb * out_, std::int64_t{0});

        for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
          const std::int64_t base = rt * config_.tile_rows;
          const std::int64_t valid = std::min(config_.tile_rows, in_ - base);
          for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
            const Tile& t = tile(rt, ct);
            kern(mb, tc, valid, xq + lo * stride + base, stride, t.packed.data(), cur, tc);
            const std::int64_t out_base = ct * outs_per_tile_;
            const std::int64_t out_count = std::min(outs_per_tile_, out_ - out_base);
            for (std::int64_t bi = 0; bi < mb; ++bi) {
              const std::int32_t* crow = cur + bi * tc;
              std::int64_t* arow = acc + bi * out_ + out_base;
              if (ideal_adc) {
                for (std::int64_t o = 0; o < out_count; ++o) {
                  arow[o] += crow[2 * o] - crow[2 * o + 1];
                }
              } else {
                for (std::int64_t o = 0; o < out_count; ++o) {
                  arow[o] += adc_digitize(crow[2 * o], t.delta[static_cast<std::size_t>(2 * o)],
                                          qmax) -
                             adc_digitize(crow[2 * o + 1],
                                          t.delta[static_cast<std::size_t>(2 * o + 1)], qmax);
                }
              }
            }
          }
        }

        for (std::int64_t bi = 0; bi < mb; ++bi) {
          float* yrow = y + (lo + bi) * out_;
          const std::int64_t* arow = acc + bi * out_;
          for (std::int64_t o = 0; o < out_; ++o) {
            yrow[o] = static_cast<float>(arow[o]) * dequant;
          }
        }
      },
      2);
}

Tensor QuantizedCrossbarEngine::read_back() const {
  Tensor w(Shape{out_, in_});
  const ConductanceQuantizer quantizer(config_.range, config_.levels);
  const float g_to_w = w_max_ / config_.range.span();
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config_.tile_rows;
      const std::int64_t local_r = i % config_.tile_rows;
      const Tile& t = tile(rt, ct);
      const std::size_t base = static_cast<std::size_t>(local_r * config_.tile_cols + 2 * local_o);
      const float g_pos = quantizer.level_value(effective_level(t, base));
      const float g_neg = quantizer.level_value(effective_level(t, base + 1));
      w.at(o, i) = (g_pos - g_neg) * g_to_w;
    }
  }
  return w;
}

}  // namespace ftpim::qinfer
