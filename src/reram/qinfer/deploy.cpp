#include "src/reram/qinfer/deploy.hpp"

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/reram/fault_injector.hpp"

namespace ftpim::qinfer {

QuantizedDeployment::QuantizedDeployment(Module& model, const QuantizedEngineConfig& config)
    : model_(&model) {
  config.validate();
  // modules_of walks children in the same order collect_params does, and
  // only Linear/Conv2d carry kCrossbarWeight params, so the per-layer cell
  // ranges assigned here line up with the fault injector's concatenated
  // parameter walk. The check at the end pins that invariant.
  for (Module* m : modules_of(model)) {
    LayerSlot slot;
    Tensor* weights = nullptr;
    if (auto* lin = dynamic_cast<Linear*>(m); lin != nullptr) {
      slot.linear = lin;
      weights = &lin->weight().value;
    } else if (auto* conv = dynamic_cast<Conv2d*>(m); conv != nullptr) {
      slot.conv = conv;
      weights = &conv->weight().value;
    } else {
      continue;
    }
    auto engine = std::make_unique<QuantizedCrossbarEngine>(*weights, config);
    slot.hook = std::make_shared<EngineHook>(std::move(engine));
    slot.cell_offset = cell_count_;
    slot.cells = 2 * weights->numel();
    cell_count_ += slot.cells;
    if (slot.linear != nullptr) {
      slot.linear->set_mvm_hook(slot.hook);
    } else {
      slot.conv->set_mvm_hook(slot.hook);
    }
    layers_.push_back(std::move(slot));
  }
  FTPIM_CHECK_EQ(cell_count_, crossbar_cell_count(model),
                 "QuantizedDeployment: layer walk disagrees with the parameter walk");
  abft_enabled_ = config.abft.enabled;
}

QuantizedDeployment::~QuantizedDeployment() {
  for (LayerSlot& slot : layers_) {
    // Only uninstall a hook we still own — if someone re-deployed the same
    // model, the layer already points at the newer deployment's hook.
    if (slot.linear != nullptr && slot.linear->mvm_hook() == slot.hook.get()) {
      slot.linear->set_mvm_hook(nullptr);
    } else if (slot.conv != nullptr && slot.conv->mvm_hook() == slot.hook.get()) {
      slot.conv->set_mvm_hook(nullptr);
    }
  }
}

std::int64_t QuantizedDeployment::total_cells() const noexcept {
  std::int64_t n = 0;
  for (const LayerSlot& slot : layers_) n += slot.hook->engine().total_cells();
  return n;
}

std::int64_t QuantizedDeployment::stuck_cells() const noexcept {
  std::int64_t n = 0;
  for (const LayerSlot& slot : layers_) n += slot.hook->engine().stuck_cells();
  return n;
}

void QuantizedDeployment::apply_defect_map(const DefectMap& map) {
  FTPIM_CHECK_EQ(map.cell_count(), cell_count_,
                 "QuantizedDeployment::apply_defect_map: map describes %lld cells, model has %lld",
                 static_cast<long long>(map.cell_count()), static_cast<long long>(cell_count_));
  const std::vector<CellFault>& faults = map.faults();
  std::size_t k = 0;
  std::vector<CellFault> local;
  for (LayerSlot& slot : layers_) {
    const std::int64_t hi = slot.cell_offset + slot.cells;
    local.clear();
    while (k < faults.size() && faults[k].cell_index < hi) {
      local.push_back(CellFault{faults[k].cell_index - slot.cell_offset, faults[k].type});
      ++k;
    }
    slot.hook->engine().apply_defect_map(
        DefectMap::from_faults(slot.cells, local));
  }
}

void QuantizedDeployment::apply_device_defects(const StuckAtFaultModel& model,
                                               std::uint64_t master_seed,
                                               std::uint64_t device_index) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].hook->engine().apply_device_defects(
        model, derive_seed(master_seed, 0x51ab + static_cast<std::uint64_t>(i)), device_index);
  }
}

void QuantizedDeployment::clear_defects() {
  for (LayerSlot& slot : layers_) slot.hook->engine().clear_defects();
}

std::vector<abft::TileFaultReport> QuantizedDeployment::take_abft_reports() {
  FTPIM_CHECK(abft_enabled_, "QuantizedDeployment::take_abft_reports: ABFT is disabled");
  std::vector<abft::TileFaultReport> reports;
  reports.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    abft::TileFaultReport r = layers_[i].hook->engine().take_abft_report();
    r.layer = static_cast<std::int64_t>(i);
    reports.push_back(std::move(r));
  }
  return reports;
}

void QuantizedDeployment::abft_rebaseline() {
  FTPIM_CHECK(abft_enabled_, "QuantizedDeployment::abft_rebaseline: ABFT is disabled");
  for (LayerSlot& slot : layers_) slot.hook->engine().abft_rebaseline();
}

std::int64_t QuantizedDeployment::scrub(const std::vector<abft::TileFaultReport>& reports) {
  FTPIM_CHECK(abft_enabled_, "QuantizedDeployment::scrub: ABFT is disabled");
  std::int64_t scrubbed = 0;
  for (const abft::TileFaultReport& r : reports) {
    if (r.tiles.empty()) continue;
    FTPIM_CHECK(r.layer >= 0 && r.layer < static_cast<std::int64_t>(layers_.size()),
                "QuantizedDeployment::scrub: report names layer %lld of %lld",
                static_cast<long long>(r.layer), static_cast<long long>(layers_.size()));
    scrubbed += layers_[static_cast<std::size_t>(r.layer)].hook->engine().scrub(r);
  }
  return scrubbed;
}

std::unique_ptr<QuantizedDeployment> deploy_quantized(Module& model,
                                                      const QuantizedEngineConfig& config) {
  return std::make_unique<QuantizedDeployment>(model, config);
}

}  // namespace ftpim::qinfer
