// Quantized crossbar inference engine: int8 conductance-domain compute with
// faults applied where the hardware sees them.
//
// CrossbarEngine (src/reram/crossbar_engine.hpp) simulates the analog limit:
// float conductances, float GEMM, ideal peripherals. This engine simulates
// the digital reality of a multi-level-cell deployment:
//
//   * each weight is SNAPPED to one of L conductance levels and stored as a
//     uint8 level index per differential cell (G+ = g_min + lv+ * step,
//     step = span / (L - 1)), so the stored matrix is exactly what a
//     programming loop could write into an L-level device;
//   * stuck-at faults act in the LEVEL domain — stuck-off pins a cell at
//     level 0 (g_min), stuck-on at level L-1 (g_max) — and stuck cells
//     ignore the programmed value, mirroring CrossbarArray::program;
//   * the MVM is integer end to end: activations are quantized per batch to
//     int8 codes (symmetric scale sx = absmax / 127), each tile computes
//     int8 x u8 -> int32 column sums through the qgemm kernel backend
//     (src/tensor/kernels/qgemm.hpp), the ADC model digitizes each column
//     BEFORE the G+ - G- subtraction (adc.hpp), and per-output partial sums
//     accumulate across row tiles in int64;
//   * one float multiply per output dequantizes at the very end:
//       y = total * (sx * w_max / (L - 1))
//     because w_eff = (lv+ - lv-) * step * w_max / span
//                   = (lv+ - lv-) * w_max / (L - 1).
//
// Determinism contract: everything between activation quantization and the
// final dequantize is integer arithmetic, which is exact and associative.
// mvm_batch is therefore bit-identical across FTPIM_THREADS values AND
// across kernel levels (scalar vs AVX2) — strictly stronger than the float
// path's tolerance-based reproducibility.
//
// Tiling matches CrossbarEngine: weight (o, i) lives in tile
// (rt = i / tile_rows, ct = o / (tile_cols / 2)) at local row i % tile_rows,
// physical columns 2*local_o and 2*local_o + 1. apply_device_defects draws
// the SAME per-tile defect stream as CrossbarEngine::apply_device_defects,
// so a given (master_seed, device_index) names the same physical die in
// both simulations.
//
// Mutation (apply_* / clear_defects) is single-owner: do not mutate
// concurrently with mvm calls. mvm itself is internally parallel and safe to
// call from one thread at a time per engine.
#pragma once

#include <cstdint>
#include <vector>

#include "src/reram/abft.hpp"
#include "src/reram/conductance.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/qinfer/adc.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim::qinfer {

struct QuantizedEngineConfig {
  /// Wordlines per tile; must be even (the int8 kernel consumes K in pairs,
  /// and an even split keeps the zero-pad contract at the last tile only).
  std::int64_t tile_rows = 128;
  /// Bitlines per tile; must be even (differential pairs).
  std::int64_t tile_cols = 128;
  ConductanceRange range{};
  /// Conductance levels per cell, in [2, 256] (uint8 level storage).
  int levels = 16;
  AdcConfig adc{};
  /// ABFT checksum columns + per-MVM verification (DESIGN.md section 14).
  abft::AbftConfig abft{};

  void validate() const;
};

class QuantizedCrossbarEngine {
 public:
  /// Programs W [out, in] onto level-index tiles. w_max <= 0 means
  /// per-matrix abs-max (same convention as CrossbarEngine).
  QuantizedCrossbarEngine(const Tensor& weights, const QuantizedEngineConfig& config,
                          float w_max = 0.0f);

  [[nodiscard]] std::int64_t out_features() const noexcept { return out_; }
  [[nodiscard]] std::int64_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::int64_t tile_count() const noexcept {
    return static_cast<std::int64_t>(tiles_.size());
  }
  [[nodiscard]] const QuantizedEngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] float w_max() const noexcept { return w_max_; }
  [[nodiscard]] std::int64_t total_cells() const noexcept;
  [[nodiscard]] std::int64_t stuck_cells() const noexcept;

  /// Draws an independent defect map per tile from the device seed and
  /// applies it in the level domain. Uses the same RNG stream as
  /// CrossbarEngine::apply_device_defects — (master_seed, device_index)
  /// identifies the same die in both engines.
  void apply_device_defects(const StuckAtFaultModel& model, std::uint64_t master_seed,
                            std::uint64_t device_index);

  /// Applies a weight-indexed defect map (cell_count == 2 * out * in; cell
  /// 2*w is the positive cell of flat weight w = o * in + i, cell 2*w + 1
  /// the negative cell) — the convention of
  /// src/reram/fault_injector.hpp, so ReplicaPool / evaluator maps drive
  /// this engine directly. Maps LAYER: cells named here overwrite their
  /// fault state, cells absent keep theirs (what in-service aging needs);
  /// clear_defects() is the only reset.
  void apply_defect_map(const DefectMap& map);

  /// Restores a defect-free die (programmed levels stay).
  void clear_defects();

  /// y[out] = W_effective * x[in] through the quantized datapath.
  void mvm(const float* x, float* y) const;

  /// Batched form: y[batch, out] = x[batch, in] * W_effective^T. One int8
  /// GEMM per tile; the activation scale is shared by the whole batch.
  void mvm_batch(const float* x, std::int64_t batch, float* y) const;

  /// Effective float weights reconstructed from the (faulted) level indices
  /// through the same readout equation as CrossbarEngine::read_back.
  [[nodiscard]] Tensor read_back() const;

  // --- ABFT (config().abft.enabled only; see src/reram/abft.hpp) ---

  [[nodiscard]] bool abft_enabled() const noexcept { return check_cols_ > 0; }
  /// Base-L digit columns appended per tile (0 when ABFT is off).
  [[nodiscard]] std::int64_t checksum_columns() const noexcept { return check_cols_; }
  [[nodiscard]] std::int64_t row_tile_count() const noexcept { return row_tiles_; }
  [[nodiscard]] std::int64_t col_tile_count() const noexcept { return col_tiles_; }
  /// False when the tile's verification was silenced at the last rebaseline
  /// because a checksum cell itself is stuck (the check column cannot be
  /// trusted; the canary path still covers the tile).
  [[nodiscard]] bool abft_tile_active(std::int64_t rt, std::int64_t ct) const;

  /// Recomputes every tile's checksum digits from the current EFFECTIVE
  /// levels: faults present now are accepted as the reference state (no
  /// further detections), faults that appear later are detected. Called once
  /// at install so a fault-tolerated die does not trigger repair thrash.
  void abft_rebaseline();

  /// Re-programs one tile from retained source levels: clears the tile's
  /// data- and checksum-cell faults and repacks. Unlike clear_defects this is
  /// tile-local; the caller re-applies its persistent DefectMap afterwards so
  /// aging-grown faults stay visible while transient faults heal.
  void scrub_tile(std::int64_t rt, std::int64_t ct);

  /// Scrubs every tile flagged in the report; returns the number scrubbed.
  std::int64_t scrub(const abft::TileFaultReport& report);

  /// Drains mismatch tallies accumulated by mvm / mvm_batch since the last
  /// drain (report.layer is left at -1; the deployment fills it in).
  [[nodiscard]] abft::TileFaultReport take_abft_report();

 private:
  struct Tile {
    std::vector<std::uint8_t> level;   ///< programmed level index per cell [rows * cols]
    std::vector<std::uint8_t> fault;   ///< FaultType per cell (0 = healthy)
    std::vector<std::uint8_t> packed;  ///< k-pair panels of the EFFECTIVE levels
    std::vector<std::int32_t> delta;   ///< per-bitline ADC step (bits > 0 only)
    // ABFT state (sized only when enabled):
    std::vector<std::uint8_t> check_level;  ///< baseline digits [rows * check_cols]
    std::vector<std::uint8_t> check_fault;  ///< FaultType per checksum cell
    std::uint8_t check_ok = 1;              ///< verification trusted for this tile
    std::int64_t tol2 = 0;  ///< 2x residual tolerance (0 on the ideal-ADC path)
    /// Per-column clip magnitude qmax * delta (ADC path only): a sample whose
    /// readout saturated any column of this tile is vetoed, not verified —
    /// clipping destroys the linearity the checksum identity needs.
    std::vector<std::int64_t> sat;
    /// 1 + highest data column with any nonzero effective level over the
    /// driven rows (ABFT only). Columns at or past this bound read exactly
    /// zero from the kernel, so verification skips them bit-identically —
    /// on tiles whose outputs cover few columns this is most of the tile.
    std::int64_t nz_cols = 0;
  };

  [[nodiscard]] std::uint8_t effective_level(const Tile& t, std::size_t cell) const noexcept;
  [[nodiscard]] std::uint8_t effective_check_level(const Tile& t, std::int64_t r,
                                                   std::int64_t k) const noexcept;
  /// Rebuilds the packed panels and ADC deltas after any level/fault change.
  void repack_tile(Tile& t, std::int64_t valid_rows);
  /// Re-encodes the checksum digits from current effective levels, refreshes
  /// check_ok, and repacks (ABFT only).
  void rebaseline_tile(Tile& t, std::int64_t valid_rows);
  [[nodiscard]] const Tile& tile(std::int64_t rt, std::int64_t ct) const {
    return tiles_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
  }
  [[nodiscard]] Tile& tile(std::int64_t rt, std::int64_t ct) {
    return tiles_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
  }
  [[nodiscard]] std::int64_t valid_rows_of(std::int64_t rt) const noexcept;

  std::int64_t out_ = 0, in_ = 0;
  QuantizedEngineConfig config_;
  float w_max_ = 1.0f;
  std::int64_t row_tiles_ = 0, col_tiles_ = 0;
  std::int64_t outs_per_tile_ = 0;
  std::int64_t check_cols_ = 0;   ///< checksum digit columns (0 = ABFT off)
  std::int64_t packed_cols_ = 0;  ///< tile_cols + check_cols_, padded up to 16n when ABFT is on
  std::vector<Tile> tiles_;       ///< row-major [row_tile][col_tile]
  /// MVM workers merge mismatch counts here (cold, once per chunk).
  mutable abft::AbftAccumulator abft_;
};

}  // namespace ftpim::qinfer
