// ADC transfer model for the quantized crossbar datapath.
//
// A real crossbar digitizes each bitline's accumulated current BEFORE the
// digital periphery subtracts the differential pair, so ADC resolution and
// saturation distort the positive and negative column readings
// independently. We model that in the integer accumulator domain: the qgemm
// kernel's per-column sum A_c = sum_r xq_r * lv[r, c] is the bitline current
// in units of (one activation code) x (one conductance level step), and the
// ADC maps it to one of 2^bits uniformly spaced codes.
//
// Per-column step size: a b-bit signed ADC has usable code range
// ±qmax = ±(2^(b-1) - 1). The physical worst case for column c is every
// activation at full drive (|xq| = 127) against the column's programmed
// levels: bound_c = 127 * sum_r lv[r, c] (computed over the EFFECTIVE,
// fault-distorted levels — a stuck-on cell raises the column's full-scale).
// Digitizing bound_c itself would waste most codes: random-signed activation
// sums concentrate near zero (|A| grows like sqrt(rows) while bound grows
// like rows), so the converter's input range is calibrated down by
// range_factor and anything beyond it clips:
//
//   delta_c = max(1, ceil(bound_c * range_factor / qmax))
//   code    = clamp(round_half_away(A / delta_c), -qmax, +qmax)
//   A'      = code * delta_c
//
// bits == 0 is the ideal-readout limit (A' = A), matching how
// quant_levels == 0 disables conductance quantization elsewhere.
//
// Everything is integer (the one double, delta_c, is computed per column at
// program/fault time, never per sample), so the digitized accumulators stay
// bit-identical across thread counts and kernel levels.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"

namespace ftpim::qinfer {

struct AdcConfig {
  /// Resolution in bits; 0 disables the ADC (ideal readout).
  int bits = 8;
  /// Fraction of the worst-case column sum mapped onto the code range.
  /// Smaller values spend resolution near zero (where activation sums
  /// concentrate) at the cost of clipping rare large sums. 0.25 is the
  /// empirical sweet spot of the accuracy x range_factor sweep
  /// (examples/quantized_eval + FTPIM_ADC_RANGE): trained-layer column sums
  /// have heavy tails, so 0.125 already clips enough to cost several points
  /// of accuracy at ANY resolution, while at >= 6 bits the coarser step of
  /// 0.25 is still far below the network's noise floor.
  double range_factor = 0.25;

  void validate() const {
    FTPIM_CHECK(bits == 0 || (bits >= 2 && bits <= 24),
                "AdcConfig: bits must be 0 (ideal) or in [2, 24]");
    FTPIM_CHECK(range_factor > 0.0 && range_factor <= 1.0,
                "AdcConfig: range_factor must be in (0, 1]");
  }

  [[nodiscard]] bool ideal() const noexcept { return bits == 0; }

  /// Largest code magnitude of the signed converter (bits >= 2 only).
  [[nodiscard]] std::int32_t qmax() const noexcept {
    return (std::int32_t{1} << (bits - 1)) - 1;
  }
};

/// Per-column ADC step from the column's worst-case accumulator magnitude.
/// Cold path: runs once per (tile, column) at program/fault time.
[[nodiscard]] inline std::int32_t adc_column_delta(const AdcConfig& adc,
                                                   std::int64_t worst_case_sum) {
  FTPIM_CHECK_GE(worst_case_sum, 0);
  if (adc.ideal()) return 1;
  const double full_scale = static_cast<double>(worst_case_sum) * adc.range_factor;
  const auto delta = static_cast<std::int64_t>(std::ceil(full_scale / adc.qmax()));
  return static_cast<std::int32_t>(delta < 1 ? 1 : delta);
}

/// Digitizes one accumulator: round-half-away-from-zero to the nearest code,
/// clip at ±qmax, return the reconstructed accumulator code * delta.
/// Integer-exact, hence deterministic everywhere it runs.
FTPIM_HOT [[nodiscard]] inline std::int32_t adc_digitize(std::int32_t acc, std::int32_t delta,
                                                         std::int32_t qmax) noexcept {
  const std::int64_t mag = acc < 0 ? -static_cast<std::int64_t>(acc) : acc;
  std::int64_t code = (2 * mag + delta) / (2 * static_cast<std::int64_t>(delta));
  if (code > qmax) code = qmax;
  const std::int64_t rec = code * delta;
  return static_cast<std::int32_t>(acc < 0 ? -rec : rec);
}

}  // namespace ftpim::qinfer
