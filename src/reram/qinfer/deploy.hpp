// Model-level deployment of the quantized crossbar engine.
//
// A QuantizedDeployment walks a model, builds one QuantizedCrossbarEngine
// per crossbar-weight layer (Linear / Conv2d), and installs each engine as
// the layer's MvmHook — after which every EVAL-mode forward of the model
// runs the int8 conductance-domain datapath instead of the float GEMM.
// Training forwards and backward are untouched, so the same model object
// can keep training between deployments.
//
// Fault plumbing: the deployment speaks the same model-level cell space as
// src/reram/fault_injector.hpp — 2 cells per crossbar weight, concatenated
// in parameters_of order — so the DefectMaps that ReplicaPool and the
// defect evaluator already sample can be applied unchanged. Here they land
// in the LEVEL domain (stuck-off -> level 0, stuck-on -> level L-1) instead
// of being folded into float weights.
//
// Lifetime: the deployment does not own the model and must not outlive it.
// Its destructor uninstalls the hooks it installed; engines are owned by
// the hook shared_ptrs, so a hook captured elsewhere stays valid even after
// the deployment is gone. Mutation (apply_* / clear_defects) is
// single-owner and must not race an in-flight forward.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/module.hpp"
#include "src/nn/mvm_hook.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"

namespace ftpim::qinfer {

/// MvmHook adapter that owns one engine. The engine type itself stays free
/// of nn dependencies; this is the one place the two meet.
class EngineHook final : public MvmHook {
 public:
  explicit EngineHook(std::unique_ptr<QuantizedCrossbarEngine> engine)
      : engine_(std::move(engine)) {}

  void mvm_batch(const float* x, std::int64_t batch, float* y) const override {
    engine_->mvm_batch(x, batch, y);
  }
  [[nodiscard]] std::int64_t in_features() const noexcept override {
    return engine_->in_features();
  }
  [[nodiscard]] std::int64_t out_features() const noexcept override {
    return engine_->out_features();
  }

  [[nodiscard]] QuantizedCrossbarEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const QuantizedCrossbarEngine& engine() const noexcept { return *engine_; }

 private:
  std::unique_ptr<QuantizedCrossbarEngine> engine_;
};

class QuantizedDeployment {
 public:
  /// Programs every crossbar-weight layer of `model` onto a quantized
  /// engine (per-matrix abs-max w_max, like the float injector's default)
  /// and installs the hooks.
  QuantizedDeployment(Module& model, const QuantizedEngineConfig& config);
  ~QuantizedDeployment();

  QuantizedDeployment(const QuantizedDeployment&) = delete;
  QuantizedDeployment& operator=(const QuantizedDeployment&) = delete;

  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
  [[nodiscard]] QuantizedCrossbarEngine& engine(std::size_t i) { return layers_[i].hook->engine(); }
  [[nodiscard]] const QuantizedCrossbarEngine& engine(std::size_t i) const {
    return layers_[i].hook->engine();
  }

  /// Model-level cell count (== crossbar_cell_count(model)).
  [[nodiscard]] std::int64_t cell_count() const noexcept { return cell_count_; }
  [[nodiscard]] std::int64_t total_cells() const noexcept;
  [[nodiscard]] std::int64_t stuck_cells() const noexcept;

  /// Applies a model-level defect map (fault_injector cell convention) in
  /// the level domain, slicing it onto the per-layer engines.
  void apply_defect_map(const DefectMap& map);

  /// Per-die sampling across all layers: layer i draws from the stream
  /// derive_seed(master_seed, 0x51ab + i) so layers are decorrelated while
  /// (master_seed, device_index) still names one physical device.
  void apply_device_defects(const StuckAtFaultModel& model, std::uint64_t master_seed,
                            std::uint64_t device_index);

  void clear_defects();

  // --- ABFT fan-out (config.abft.enabled only; see src/reram/abft.hpp) ---

  [[nodiscard]] bool abft_enabled() const noexcept { return abft_enabled_; }

  /// Drains every engine's detection tally; reports carry their layer index.
  /// Layers with no checks since the last drain still yield a (clean) entry,
  /// so the vector is always layer_count() long.
  [[nodiscard]] std::vector<abft::TileFaultReport> take_abft_reports();

  /// Re-encodes every engine's checksum baseline from the current effective
  /// levels (accepts the faults present now as reference state).
  void abft_rebaseline();

  /// Scrubs every tile flagged in `reports` (reports index layers via
  /// TileFaultReport::layer). Returns the number of tiles scrubbed. The
  /// caller re-applies its persistent DefectMap afterwards.
  std::int64_t scrub(const std::vector<abft::TileFaultReport>& reports);

 private:
  struct LayerSlot {
    Linear* linear = nullptr;  ///< exactly one of linear/conv is set
    Conv2d* conv = nullptr;
    std::shared_ptr<EngineHook> hook;
    std::int64_t cell_offset = 0;  ///< into the model-level cell space
    std::int64_t cells = 0;        ///< 2 * weight numel
  };

  Module* model_;
  std::vector<LayerSlot> layers_;
  std::int64_t cell_count_ = 0;
  bool abft_enabled_ = false;
};

/// Convenience: heap-allocate a deployment (replica slots store these next
/// to the model clone they instrument).
[[nodiscard]] std::unique_ptr<QuantizedDeployment> deploy_quantized(
    Module& model, const QuantizedEngineConfig& config);

}  // namespace ftpim::qinfer
