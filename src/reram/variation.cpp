#include "src/reram/variation.hpp"

#include <algorithm>

namespace ftpim {

void apply_conductance_variation(Tensor& weights, const VariationConfig& config, Rng& rng) {
  float w_max = config.per_tensor_wmax ? weights.abs_max() : config.fixed_wmax;
  if (w_max <= 0.0f) w_max = 1.0f;
  const DifferentialMapper mapper(config.range, w_max);
  const float g_min = config.range.g_min;
  const float g_max = config.range.g_max;

  float* w = weights.data();
  for (std::int64_t i = 0; i < weights.numel(); ++i) {
    CellPair cells = mapper.to_cells(w[i]);
    cells.g_pos = std::clamp(cells.g_pos * rng.lognormal(0.0f, config.sigma), g_min, g_max);
    cells.g_neg = std::clamp(cells.g_neg * rng.lognormal(0.0f, config.sigma), g_min, g_max);
    w[i] = mapper.to_weight(cells);
  }
}

void apply_variation_to_model(Module& model_root, const VariationConfig& config, Rng& rng) {
  for (Param* p : parameters_of(model_root)) {
    if (p->kind != ParamKind::kCrossbarWeight) continue;
    apply_conductance_variation(p->value, config, rng);
  }
}

}  // namespace ftpim
