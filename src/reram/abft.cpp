#include "src/reram/abft.hpp"

#include <algorithm>

namespace ftpim::abft {

void TileFaultReport::merge_from(const TileFaultReport& other) {
  checks += other.checks;
  mismatches += other.mismatches;
  if (other.tiles.empty()) return;
  std::vector<TileFaultCount> merged;
  merged.reserve(tiles.size() + other.tiles.size());
  auto a = tiles.begin();
  auto b = other.tiles.begin();
  const auto key = [](const TileFaultCount& t) { return std::pair{t.row_tile, t.col_tile}; };
  while (a != tiles.end() || b != other.tiles.end()) {
    if (b == other.tiles.end() || (a != tiles.end() && key(*a) < key(*b))) {
      merged.push_back(*a++);
    } else if (a == tiles.end() || key(*b) < key(*a)) {
      merged.push_back(*b++);
    } else {
      merged.push_back({a->row_tile, a->col_tile, a->mismatches + b->mismatches});
      ++a;
      ++b;
    }
  }
  tiles = std::move(merged);
}

std::int64_t checksum_digit_columns(int levels, std::int64_t data_cols) {
  FTPIM_CHECK_GE(levels, 2);
  FTPIM_CHECK_GE(data_cols, 1);
  const std::int64_t max_sum = static_cast<std::int64_t>(levels - 1) * data_cols;
  std::int64_t capacity = 1;  // exclusive: digits cover [0, capacity)
  std::int64_t digits = 0;
  while (capacity <= max_sum) {
    capacity *= levels;
    ++digits;
  }
  return digits;
}

void AbftAccumulator::reset(std::int64_t row_tiles, std::int64_t col_tiles) {
  FTPIM_CHECK_GE(row_tiles, 1);
  FTPIM_CHECK_GE(col_tiles, 1);
  row_tiles_ = row_tiles;
  col_tiles_ = col_tiles;
  MutexLock lock(mu_);
  counts_.assign(static_cast<std::size_t>(row_tiles * col_tiles), 0);
  checks_ = 0;
  mismatches_ = 0;
}

void AbftAccumulator::merge(const std::int64_t* per_tile_mismatches, std::int64_t checks) {
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += per_tile_mismatches[i];
    mismatches_ += per_tile_mismatches[i];
  }
  checks_ += checks;
}

TileFaultReport AbftAccumulator::take() {
  TileFaultReport report;
  MutexLock lock(mu_);
  report.checks = checks_;
  report.mismatches = mismatches_;
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      const std::int64_t n = counts_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
      if (n > 0) report.tiles.push_back({rt, ct, n});
    }
  }
  std::fill(counts_.begin(), counts_.end(), 0);
  checks_ = 0;
  mismatches_ = 0;
  return report;
}

}  // namespace ftpim::abft
