#include "src/reram/crossbar_engine.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ftpim {

CrossbarEngine::CrossbarEngine(const Tensor& weights, const CrossbarEngineConfig& config,
                               float w_max)
    : config_(config) {
  FTPIM_CHECK(!(weights.rank() != 2), "CrossbarEngine: [out,in] matrix required");
  FTPIM_CHECK(!(config.tile_rows <= 0 || config.tile_cols <= 1 || config.tile_cols % 2 != 0), "CrossbarEngine: tile_cols must be even and positive");
  out_ = weights.dim(0);
  in_ = weights.dim(1);
  w_max_ = w_max > 0.0f ? w_max : (weights.abs_max() > 0.0f ? weights.abs_max() : 1.0f);
  outs_per_tile_ = config.tile_cols / 2;
  row_tiles_ = (in_ + config.tile_rows - 1) / config.tile_rows;
  col_tiles_ = (out_ + outs_per_tile_ - 1) / outs_per_tile_;

  tiles_.reserve(static_cast<std::size_t>(row_tiles_ * col_tiles_));
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      tiles_.emplace_back(config.tile_rows, config.tile_cols, config.range, config.quant_levels);
    }
  }

  const DifferentialMapper mapper(config.range, w_max_);
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config.tile_rows;
      const std::int64_t local_r = i % config.tile_rows;
      const CellPair cells = mapper.to_cells(weights.at(o, i));
      CrossbarArray& t = tile(rt, ct);
      t.program(local_r, 2 * local_o, cells.g_pos);
      t.program(local_r, 2 * local_o + 1, cells.g_neg);
    }
  }
}

std::int64_t CrossbarEngine::total_cells() const noexcept {
  std::int64_t n = 0;
  for (const CrossbarArray& t : tiles_) n += t.cell_count();
  return n;
}

std::int64_t CrossbarEngine::stuck_cells() const noexcept {
  std::int64_t n = 0;
  for (const CrossbarArray& t : tiles_) n += t.stuck_count();
  return n;
}

void CrossbarEngine::apply_device_defects(const StuckAtFaultModel& model,
                                          std::uint64_t master_seed,
                                          std::uint64_t device_index) {
  Rng rng(derive_seed(master_seed, device_index + 0xcba));
  for (CrossbarArray& t : tiles_) {
    t.apply_defects(DefectMap::sample(t.cell_count(), model, rng));
  }
}

void CrossbarEngine::clear_defects() {
  for (CrossbarArray& t : tiles_) t.clear_defects();
}

void CrossbarEngine::mvm(const float* x, float* y) const {
  std::fill(y, y + out_, 0.0f);
  std::vector<float> x_slice(static_cast<std::size_t>(config_.tile_rows), 0.0f);
  std::vector<float> currents(static_cast<std::size_t>(config_.tile_cols));
  const float g_to_w = w_max_ / config_.range.span();

  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    const std::int64_t base = rt * config_.tile_rows;
    const std::int64_t valid = std::min(config_.tile_rows, in_ - base);
    std::fill(x_slice.begin(), x_slice.end(), 0.0f);
    std::copy(x + base, x + base + valid, x_slice.begin());
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      tile(rt, ct).matvec(x_slice.data(), currents.data());
      const std::int64_t out_base = ct * outs_per_tile_;
      const std::int64_t out_count = std::min(outs_per_tile_, out_ - out_base);
      for (std::int64_t o = 0; o < out_count; ++o) {
        y[out_base + o] +=
            (currents[static_cast<std::size_t>(2 * o)] -
             currents[static_cast<std::size_t>(2 * o + 1)]) * g_to_w;
      }
    }
  }
}

Tensor CrossbarEngine::read_back() const {
  Tensor w(Shape{out_, in_});
  const float g_to_w = w_max_ / config_.range.span();
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config_.tile_rows;
      const std::int64_t local_r = i % config_.tile_rows;
      const CrossbarArray& t = tile(rt, ct);
      w.at(o, i) = (t.read(local_r, 2 * local_o) - t.read(local_r, 2 * local_o + 1)) * g_to_w;
    }
  }
  return w;
}

}  // namespace ftpim
