#include "src/reram/crossbar_engine.hpp"

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"

#include <algorithm>

#include "src/tensor/kernels/gemm_driver.hpp"
#include "src/tensor/kernels/pack_arena.hpp"

namespace ftpim {

CrossbarEngine::CrossbarEngine(const Tensor& weights, const CrossbarEngineConfig& config,
                               float w_max)
    : config_(config) {
  FTPIM_CHECK(!(weights.rank() != 2), "CrossbarEngine: [out,in] matrix required");
  FTPIM_CHECK(!(config.tile_rows <= 0 || config.tile_cols <= 1 || config.tile_cols % 2 != 0), "CrossbarEngine: tile_cols must be even and positive");
  out_ = weights.dim(0);
  in_ = weights.dim(1);
  w_max_ = w_max > 0.0f ? w_max : (weights.abs_max() > 0.0f ? weights.abs_max() : 1.0f);
  outs_per_tile_ = config.tile_cols / 2;
  row_tiles_ = (in_ + config.tile_rows - 1) / config.tile_rows;
  col_tiles_ = (out_ + outs_per_tile_ - 1) / outs_per_tile_;

  tiles_.reserve(static_cast<std::size_t>(row_tiles_ * col_tiles_));
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      tiles_.emplace_back(config.tile_rows, config.tile_cols, config.range, config.quant_levels);
    }
  }

  const DifferentialMapper mapper(config.range, w_max_);
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config.tile_rows;
      const std::int64_t local_r = i % config.tile_rows;
      const CellPair cells = mapper.to_cells(weights.at(o, i));
      CrossbarArray& t = tile(rt, ct);
      t.program(local_r, 2 * local_o, cells.g_pos);
      t.program(local_r, 2 * local_o + 1, cells.g_neg);
    }
  }
}

std::int64_t CrossbarEngine::total_cells() const noexcept {
  std::int64_t n = 0;
  for (const CrossbarArray& t : tiles_) n += t.cell_count();
  return n;
}

std::int64_t CrossbarEngine::stuck_cells() const noexcept {
  std::int64_t n = 0;
  for (const CrossbarArray& t : tiles_) n += t.stuck_count();
  return n;
}

void CrossbarEngine::apply_device_defects(const StuckAtFaultModel& model,
                                          std::uint64_t master_seed,
                                          std::uint64_t device_index) {
  Rng rng(derive_seed(master_seed, device_index + 0xcba));
  for (CrossbarArray& t : tiles_) {
    t.apply_defects(DefectMap::sample(t.cell_count(), model, rng));
  }
}

void CrossbarEngine::clear_defects() {
  for (CrossbarArray& t : tiles_) t.clear_defects();
}

FTPIM_HOT void CrossbarEngine::mvm(const float* x, float* y) const { mvm_batch(x, 1, y); }

FTPIM_HOT void CrossbarEngine::mvm_batch(const float* x, std::int64_t batch, float* y) const {
  FTPIM_CHECK_GE(batch, 0);
  if (batch == 0) return;
  std::fill(y, y + batch * out_, 0.0f);
  const std::int64_t tc = config_.tile_cols;
  const float g_to_w = w_max_ / config_.range.span();
  // Column currents live in arena scratch (slot 2 — disjoint from the conv
  // dX slab in slot 0), so steady-state serving allocates nothing here.
  kernels::PackArena& arena = kernels::PackArena::local();
  float* currents = arena.scratch_buffer(2, static_cast<std::size_t>(batch * tc));

  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    const std::int64_t base = rt * config_.tile_rows;
    const std::int64_t valid = std::min(config_.tile_rows, in_ - base);
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      // currents[batch, tile_cols] = X[:, base:base+valid] * G[0:valid, :].
      // Rows past `valid` carry zero drive in the analog model, so k = valid.
      const kernels::PackASource a{x + base, in_, kernels::PackASource::Layout::kRowMajor};
      const kernels::PackBSource b{tile(rt, ct).conductance_data(), tc, nullptr,
                                   kernels::PackBSource::Layout::kRowMajor};
      kernels::gemm_packed(batch, tc, valid, 1.0f, a, b, 0.0f, currents, tc);
      const std::int64_t out_base = ct * outs_per_tile_;
      const std::int64_t out_count = std::min(outs_per_tile_, out_ - out_base);
      for (std::int64_t bi = 0; bi < batch; ++bi) {
        const float* cur = currents + bi * tc;
        float* yrow = y + bi * out_;
        for (std::int64_t o = 0; o < out_count; ++o) {
          yrow[out_base + o] += (cur[2 * o] - cur[2 * o + 1]) * g_to_w;
        }
      }
    }
  }
}

Tensor CrossbarEngine::read_back() const {
  Tensor w(Shape{out_, in_});
  const float g_to_w = w_max_ / config_.range.span();
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config_.tile_rows;
      const std::int64_t local_r = i % config_.tile_rows;
      const CrossbarArray& t = tile(rt, ct);
      w.at(o, i) = (t.read(local_r, 2 * local_o) - t.read(local_r, 2 * local_o + 1)) * g_to_w;
    }
  }
  return w;
}

}  // namespace ftpim
