#include "src/reram/crossbar_engine.hpp"

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"

#include <algorithm>

#include "src/tensor/kernels/gemm_driver.hpp"
#include "src/tensor/kernels/pack_arena.hpp"

namespace ftpim {

CrossbarEngine::CrossbarEngine(const Tensor& weights, const CrossbarEngineConfig& config,
                               float w_max)
    : config_(config) {
  FTPIM_CHECK(!(weights.rank() != 2), "CrossbarEngine: [out,in] matrix required");
  FTPIM_CHECK(!(config.tile_rows <= 0 || config.tile_cols <= 1 || config.tile_cols % 2 != 0), "CrossbarEngine: tile_cols must be even and positive");
  out_ = weights.dim(0);
  in_ = weights.dim(1);
  w_max_ = w_max > 0.0f ? w_max : (weights.abs_max() > 0.0f ? weights.abs_max() : 1.0f);
  outs_per_tile_ = config.tile_cols / 2;
  row_tiles_ = (in_ + config.tile_rows - 1) / config.tile_rows;
  col_tiles_ = (out_ + outs_per_tile_ - 1) / outs_per_tile_;

  tiles_.reserve(static_cast<std::size_t>(row_tiles_ * col_tiles_));
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      tiles_.emplace_back(config.tile_rows, config.tile_cols, config.range, config.quant_levels);
    }
  }

  const DifferentialMapper mapper(config.range, w_max_);
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config.tile_rows;
      const std::int64_t local_r = i % config.tile_rows;
      const CellPair cells = mapper.to_cells(weights.at(o, i));
      CrossbarArray& t = tile(rt, ct);
      t.program(local_r, 2 * local_o, cells.g_pos);
      t.program(local_r, 2 * local_o + 1, cells.g_neg);
    }
  }

  if (config.abft.enabled) {
    config.abft.validate();
    weights_ = weights;  // scrub re-programs flagged tiles from this copy
    chk_.resize(tiles_.size());
    for (ChecksumColumn& c : chk_) {
      c.base.assign(static_cast<std::size_t>(config.tile_rows), 0.0f);
      c.fault.assign(static_cast<std::size_t>(config.tile_rows), 0);
      c.eff.assign(static_cast<std::size_t>(config.tile_rows), 0.0f);
    }
    for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
      for (std::int64_t ct = 0; ct < col_tiles_; ++ct) rebaseline_chk(rt, ct);
    }
    abft_.reset(row_tiles_, col_tiles_);
  }
}

void CrossbarEngine::rebaseline_chk(std::int64_t rt, std::int64_t ct) {
  const CrossbarArray& t = tile(rt, ct);
  ChecksumColumn& c = chk_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
  const float* g = t.conductance_data();
  for (std::int64_t r = 0; r < config_.tile_rows; ++r) {
    double s = 0.0;
    for (std::int64_t col = 0; col < config_.tile_cols; ++col) {
      s += g[r * config_.tile_cols + col];
    }
    c.base[static_cast<std::size_t>(r)] = static_cast<float>(s);
  }
  // A stuck checksum cell makes the check column unreliable: silence
  // verification for this tile rather than alarm forever. Only driven rows
  // (r < valid) matter, matching the k = valid MVM contract.
  const std::int64_t valid = std::min(config_.tile_rows, in_ - rt * config_.tile_rows);
  c.ok = 1;
  for (std::int64_t r = 0; r < valid; ++r) {
    if (c.fault[static_cast<std::size_t>(r)] != 0) {
      c.ok = 0;
      break;
    }
  }
  refresh_chk(rt, ct);
}

void CrossbarEngine::refresh_chk(std::int64_t rt, std::int64_t ct) {
  ChecksumColumn& c = chk_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
  const float off = static_cast<float>(config_.tile_cols) * config_.range.g_min;
  const float on = static_cast<float>(config_.tile_cols) * config_.range.g_max;
  for (std::int64_t r = 0; r < config_.tile_rows; ++r) {
    const auto i = static_cast<std::size_t>(r);
    c.eff[i] = c.fault[i] == 0
                   ? c.base[i]
                   : (c.fault[i] == static_cast<std::uint8_t>(FaultType::kStuckOff) ? off : on);
  }
}

bool CrossbarEngine::abft_tile_active(std::int64_t rt, std::int64_t ct) const {
  FTPIM_CHECK(rt >= 0 && rt < row_tiles_ && ct >= 0 && ct < col_tiles_,
              "CrossbarEngine::abft_tile_active: tile index out of range");
  return !chk_.empty() && chk_[static_cast<std::size_t>(rt * col_tiles_ + ct)].ok != 0;
}

void CrossbarEngine::abft_rebaseline() {
  FTPIM_CHECK(!chk_.empty(), "CrossbarEngine::abft_rebaseline: ABFT is disabled");
  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) rebaseline_chk(rt, ct);
  }
}

void CrossbarEngine::scrub_tile(std::int64_t rt, std::int64_t ct) {
  FTPIM_CHECK(!chk_.empty(), "CrossbarEngine::scrub_tile: requires config.abft.enabled");
  FTPIM_CHECK(rt >= 0 && rt < row_tiles_ && ct >= 0 && ct < col_tiles_,
              "CrossbarEngine::scrub_tile: tile index out of range");
  CrossbarArray& t = tile(rt, ct);
  // clear_defects keeps the stuck-snapped conductances, so re-program every
  // cell: unmapped edge cells back to the fresh-die g_min, mapped cells from
  // the retained weights. The checksum BASELINE is retained state (like the
  // programmed weights), so previously accepted faults stay accepted.
  t.clear_defects();
  for (std::int64_t r = 0; r < config_.tile_rows; ++r) {
    for (std::int64_t col = 0; col < config_.tile_cols; ++col) {
      t.program(r, col, config_.range.g_min);
    }
  }
  const DifferentialMapper mapper(config_.range, w_max_);
  const std::int64_t o_lo = ct * outs_per_tile_;
  const std::int64_t o_hi = std::min(out_, o_lo + outs_per_tile_);
  const std::int64_t i_lo = rt * config_.tile_rows;
  const std::int64_t i_hi = std::min(in_, i_lo + config_.tile_rows);
  for (std::int64_t o = o_lo; o < o_hi; ++o) {
    for (std::int64_t i = i_lo; i < i_hi; ++i) {
      const CellPair cells = mapper.to_cells(weights_.at(o, i));
      t.program(i - i_lo, 2 * (o - o_lo), cells.g_pos);
      t.program(i - i_lo, 2 * (o - o_lo) + 1, cells.g_neg);
    }
  }
  ChecksumColumn& c = chk_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
  std::fill(c.fault.begin(), c.fault.end(), std::uint8_t{0});
  refresh_chk(rt, ct);
}

std::int64_t CrossbarEngine::scrub(const abft::TileFaultReport& report) {
  std::int64_t scrubbed = 0;
  for (const abft::TileFaultCount& f : report.tiles) {
    scrub_tile(f.row_tile, f.col_tile);
    ++scrubbed;
  }
  return scrubbed;
}

abft::TileFaultReport CrossbarEngine::take_abft_report() {
  FTPIM_CHECK(!chk_.empty(), "CrossbarEngine::take_abft_report: ABFT is disabled");
  return abft_.take();
}

std::int64_t CrossbarEngine::total_cells() const noexcept {
  std::int64_t n = 0;
  for (const CrossbarArray& t : tiles_) n += t.cell_count();
  return n;
}

std::int64_t CrossbarEngine::stuck_cells() const noexcept {
  std::int64_t n = 0;
  for (const CrossbarArray& t : tiles_) n += t.stuck_count();
  return n;
}

void CrossbarEngine::apply_device_defects(const StuckAtFaultModel& model,
                                          std::uint64_t master_seed,
                                          std::uint64_t device_index) {
  // Checksum cells draw from a SEPARATE derived stream (distinct salt) so
  // enabling ABFT leaves the data-cell fault pattern of a die byte-identical
  // (and in parity with QuantizedCrossbarEngine's data stream).
  Rng rng(derive_seed(master_seed, device_index + 0xcba));
  Rng rng_chk(derive_seed(master_seed, device_index + 0xabf7));
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    tiles_[i].apply_defects(DefectMap::sample(tiles_[i].cell_count(), model, rng));
    if (!chk_.empty()) {
      const DefectMap chk_map = DefectMap::sample(config_.tile_rows, model, rng_chk);
      for (const CellFault& f : chk_map.faults()) {
        chk_[i].fault[static_cast<std::size_t>(f.cell_index)] =
            static_cast<std::uint8_t>(f.type);
      }
      refresh_chk(static_cast<std::int64_t>(i) / col_tiles_,
                  static_cast<std::int64_t>(i) % col_tiles_);
    }
  }
}

void CrossbarEngine::clear_defects() {
  for (CrossbarArray& t : tiles_) t.clear_defects();
  for (std::size_t i = 0; i < chk_.size(); ++i) {
    std::fill(chk_[i].fault.begin(), chk_[i].fault.end(), std::uint8_t{0});
    refresh_chk(static_cast<std::int64_t>(i) / col_tiles_,
                static_cast<std::int64_t>(i) % col_tiles_);
  }
}

FTPIM_HOT void CrossbarEngine::mvm(const float* x, float* y) const { mvm_batch(x, 1, y); }

FTPIM_HOT void CrossbarEngine::mvm_batch(const float* x, std::int64_t batch, float* y) const {
  FTPIM_CHECK_GE(batch, 0);
  if (batch == 0) return;
  std::fill(y, y + batch * out_, 0.0f);
  const std::int64_t tc = config_.tile_cols;
  const float g_to_w = w_max_ / config_.range.span();
  // Column currents live in arena scratch (slot 2 — disjoint from the conv
  // dX slab in slot 0), so steady-state serving allocates nothing here.
  kernels::PackArena& arena = kernels::PackArena::local();
  float* currents = arena.scratch_buffer(2, static_cast<std::size_t>(batch * tc));
  const bool do_abft = !chk_.empty();
  std::int64_t* mm = nullptr;  // per-tile mismatch counts (arena slot 1)
  std::int64_t checks = 0;
  if (do_abft) {
    mm = arena.i64_buffer(1, tiles_.size());
    std::fill(mm, mm + tiles_.size(), std::int64_t{0});
  }
  // Rounding bound of the checksum identity, per sample and tile: both sides
  // accumulate ~valid*tc products of magnitude <= |x_r| * g, so the residual
  // of a fault-free tile stays within a small multiple of eps times the
  // input-weighted checksum magnitude sum_r |x_r| * chk_eff[r] (conductances
  // are non-negative, so that sum bounds every column's magnitude). The
  // scale factor absorbs the sqrt(k)-ish growth of blocked/FMA summation —
  // derivation in DESIGN.md section 14.
  const double eps_tol = config_.abft.tolerance_scale * 1.19209290e-07;

  for (std::int64_t rt = 0; rt < row_tiles_; ++rt) {
    const std::int64_t base = rt * config_.tile_rows;
    const std::int64_t valid = std::min(config_.tile_rows, in_ - base);
    for (std::int64_t ct = 0; ct < col_tiles_; ++ct) {
      // currents[batch, tile_cols] = X[:, base:base+valid] * G[0:valid, :].
      // Rows past `valid` carry zero drive in the analog model, so k = valid.
      const kernels::PackASource a{x + base, in_, kernels::PackASource::Layout::kRowMajor};
      const kernels::PackBSource b{tile(rt, ct).conductance_data(), tc, nullptr,
                                   kernels::PackBSource::Layout::kRowMajor};
      kernels::gemm_packed(batch, tc, valid, 1.0f, a, b, 0.0f, currents, tc);
      const std::int64_t out_base = ct * outs_per_tile_;
      const std::int64_t out_count = std::min(outs_per_tile_, out_ - out_base);
      for (std::int64_t bi = 0; bi < batch; ++bi) {
        const float* cur = currents + bi * tc;
        float* yrow = y + bi * out_;
        for (std::int64_t o = 0; o < out_count; ++o) {
          yrow[out_base + o] += (cur[2 * o] - cur[2 * o + 1]) * g_to_w;
        }
      }
      if (do_abft) {
        const auto tidx = static_cast<std::size_t>(rt * col_tiles_ + ct);
        const ChecksumColumn& c = chk_[tidx];
        if (c.ok == 0) continue;  // checksum cell itself is stuck
        // Fixed-order scalar sums in double: bit-identical regardless of
        // FTPIM_THREADS (the gemm above already is, per its contract).
        for (std::int64_t bi = 0; bi < batch; ++bi) {
          const float* xrow = x + bi * in_ + base;
          double a_star = 0.0;  // checksum column readout sum_r x_r * chk[r]
          double aabs = 0.0;    // input-weighted magnitude for the tolerance
          for (std::int64_t r = 0; r < valid; ++r) {
            const double xv = xrow[r];
            const double ev = c.eff[static_cast<std::size_t>(r)];
            a_star += xv * ev;
            aabs += (xv < 0.0 ? -xv : xv) * ev;
          }
          const float* cur = currents + bi * tc;
          double dsum = 0.0;  // sum of the data-column currents
          for (std::int64_t col = 0; col < tc; ++col) dsum += cur[col];
          const double res = dsum - a_star;
          const double tol = eps_tol * (aabs + (a_star < 0.0 ? -a_star : a_star));
          if ((res < 0.0 ? -res : res) > tol) ++mm[tidx];
        }
        checks += batch;
      }
    }
  }
  if (do_abft) abft_.merge(mm, checks);
}

Tensor CrossbarEngine::read_back() const {
  Tensor w(Shape{out_, in_});
  const float g_to_w = w_max_ / config_.range.span();
  for (std::int64_t o = 0; o < out_; ++o) {
    const std::int64_t ct = o / outs_per_tile_;
    const std::int64_t local_o = o % outs_per_tile_;
    for (std::int64_t i = 0; i < in_; ++i) {
      const std::int64_t rt = i / config_.tile_rows;
      const std::int64_t local_r = i % config_.tile_rows;
      const CrossbarArray& t = tile(rt, ct);
      w.at(o, i) = (t.read(local_r, 2 * local_o) - t.read(local_r, 2 * local_o + 1)) * g_to_w;
    }
  }
  return w;
}

}  // namespace ftpim
