#include "src/reram/fault_model.hpp"

#include "src/common/check.hpp"


namespace ftpim {

StuckAtFaultModel::StuckAtFaultModel(double p_sa, double sa0_fraction)
    : p_sa_(p_sa), sa0_fraction_(sa0_fraction) {
  FTPIM_CHECK(!(p_sa < 0.0 || p_sa > 1.0), "StuckAtFaultModel: p_sa must be in [0,1]");
  FTPIM_CHECK(!(sa0_fraction < 0.0 || sa0_fraction > 1.0), "StuckAtFaultModel: sa0_fraction must be in [0,1]");
}

FaultType StuckAtFaultModel::sample(Rng& rng) const noexcept {
  if (p_sa_ <= 0.0) return FaultType::kNone;
  const double u = rng.uniform_double();
  if (u >= p_sa_) return FaultType::kNone;
  // Within a fault, split by the SA0 fraction; reuse the same draw for
  // determinism (u / p_sa_ is uniform on [0,1) conditioned on fault).
  return (u < p_sa_ * sa0_fraction_) ? FaultType::kStuckOff : FaultType::kStuckOn;
}

}  // namespace ftpim
