// Uniform conductance-level quantizer.
//
// Multi-level ReRAM cells store one of L programmable conductance levels
// between Gmin and Gmax. levels == 0 disables quantization (analog limit,
// matching the paper's float-weight simulation); levels >= 2 snaps to the
// nearest level, which benches use to study SAF x quantization interactions.
#pragma once

#include "src/reram/conductance.hpp"

namespace ftpim {

class ConductanceQuantizer {
 public:
  /// levels == 0 -> identity; levels >= 2 -> uniform grid over [g_min, g_max].
  ConductanceQuantizer(ConductanceRange range, int levels);

  [[nodiscard]] float quantize(float g) const noexcept;
  [[nodiscard]] int levels() const noexcept { return levels_; }

  /// Index of the nearest level (levels >= 2 only).
  [[nodiscard]] int level_index(float g) const noexcept;
  /// Conductance of level i.
  [[nodiscard]] float level_value(int i) const noexcept;

 private:
  ConductanceRange range_;
  int levels_;
  float step_ = 0.0f;
};

}  // namespace ftpim
