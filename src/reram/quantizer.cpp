#include "src/reram/quantizer.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <cmath>

namespace ftpim {

ConductanceQuantizer::ConductanceQuantizer(ConductanceRange range, int levels)
    : range_(range), levels_(levels) {
  range_.validate();
  FTPIM_CHECK(!(levels < 0 || levels == 1), "ConductanceQuantizer: levels must be 0 or >= 2");
  if (levels_ >= 2) step_ = range_.span() / static_cast<float>(levels_ - 1);
}

float ConductanceQuantizer::quantize(float g) const noexcept {
  if (levels_ == 0) return std::clamp(g, range_.g_min, range_.g_max);
  return level_value(level_index(g));
}

int ConductanceQuantizer::level_index(float g) const noexcept {
  if (levels_ < 2) return 0;
  const float clamped = std::clamp(g, range_.g_min, range_.g_max);
  const int idx = static_cast<int>(std::lround((clamped - range_.g_min) / step_));
  return std::clamp(idx, 0, levels_ - 1);
}

float ConductanceQuantizer::level_value(int i) const noexcept {
  if (levels_ < 2) return range_.g_min;
  return range_.g_min + step_ * static_cast<float>(std::clamp(i, 0, levels_ - 1));
}

}  // namespace ftpim
