#include "src/reram/defect_map.hpp"

#include <cmath>

namespace ftpim {

DefectMap DefectMap::sample(std::int64_t cell_count, const StuckAtFaultModel& model, Rng& rng) {
  DefectMap map;
  map.cell_count_ = cell_count;
  if (model.p_sa() <= 0.0 || cell_count <= 0) return map;

  // Geometric skipping: draw the gap to the next faulty cell directly instead
  // of a Bernoulli per cell — O(faults) instead of O(cells).
  const double p = model.p_sa();
  const double log1mp = std::log1p(-p);
  std::int64_t index = -1;
  while (true) {
    const double u = rng.uniform_double();
    const double gap = std::floor(std::log1p(-u) / log1mp);  // Geometric(p) >= 0
    if (gap > static_cast<double>(cell_count)) break;        // definitely past the end
    index += 1 + static_cast<std::int64_t>(gap);
    if (index >= cell_count) break;
    const FaultType type =
        rng.uniform_double() < model.sa0_fraction() ? FaultType::kStuckOff : FaultType::kStuckOn;
    map.faults_.push_back(CellFault{index, type});
  }
  return map;
}

DefectMap DefectMap::sample_for_device(std::int64_t cell_count, const StuckAtFaultModel& model,
                                       std::uint64_t master_seed, std::uint64_t device_index) {
  Rng rng(derive_seed(master_seed, device_index + 0xdef));
  return sample(cell_count, model, rng);
}

std::int64_t DefectMap::count(FaultType type) const noexcept {
  std::int64_t n = 0;
  for (const CellFault& f : faults_) {
    if (f.type == type) ++n;
  }
  return n;
}

}  // namespace ftpim
