#include "src/reram/defect_map.hpp"

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"

#include <algorithm>
#include <cmath>

namespace ftpim {

DefectMap DefectMap::sample(std::int64_t cell_count, const StuckAtFaultModel& model, Rng& rng) {
  DefectMap map;
  map.cell_count_ = cell_count;
  if (model.p_sa() <= 0.0 || cell_count <= 0) return map;

  // Geometric skipping: draw the gap to the next faulty cell directly instead
  // of a Bernoulli per cell — O(faults) instead of O(cells).
  const double p = model.p_sa();
  const double log1mp = std::log1p(-p);
  std::int64_t index = -1;
  while (true) {
    const double u = rng.uniform_double();
    const double gap = std::floor(std::log1p(-u) / log1mp);  // Geometric(p) >= 0
    if (gap > static_cast<double>(cell_count)) break;        // definitely past the end
    index += 1 + static_cast<std::int64_t>(gap);
    if (index >= cell_count) break;
    const FaultType type =
        rng.uniform_double() < model.sa0_fraction() ? FaultType::kStuckOff : FaultType::kStuckOn;
    map.faults_.push_back(CellFault{index, type});
  }
  return map;
}

DefectMap DefectMap::sample_for_device(std::int64_t cell_count, const StuckAtFaultModel& model,
                                       std::uint64_t master_seed, std::uint64_t device_index) {
  Rng rng(derive_seed(master_seed, device_index + 0xdef));
  return sample(cell_count, model, rng);
}

DefectMap DefectMap::empty(std::int64_t cell_count) {
  FTPIM_CHECK_GE(cell_count, std::int64_t{0}, "DefectMap::empty: cell_count");
  DefectMap map;
  map.cell_count_ = cell_count;
  return map;
}

DefectMap DefectMap::from_faults(std::int64_t cell_count, std::vector<CellFault> faults) {
  FTPIM_CHECK_GE(cell_count, std::int64_t{0}, "DefectMap::from_faults: cell_count");
  std::int64_t prev = -1;
  for (const CellFault& f : faults) {
    FTPIM_CHECK(f.cell_index > prev && f.cell_index < cell_count,
                "DefectMap::from_faults: faults must be sorted, unique, and in range");
    FTPIM_CHECK(f.type == FaultType::kStuckOff || f.type == FaultType::kStuckOn,
                "DefectMap::from_faults: fault type must be a stuck-at type");
    prev = f.cell_index;
  }
  DefectMap map;
  map.cell_count_ = cell_count;
  map.faults_ = std::move(faults);
  return map;
}

std::int64_t DefectMap::merge_from(const DefectMap& newer) {
  FTPIM_CHECK_EQ(cell_count_, newer.cell_count_,
                 "DefectMap::merge_from: maps describe different cell arrays");
  if (newer.faults_.empty()) return 0;
  std::vector<CellFault> merged;
  merged.reserve(faults_.size() + newer.faults_.size());
  std::int64_t added = 0;
  std::size_t a = 0, b = 0;
  while (a < faults_.size() || b < newer.faults_.size()) {
    if (b >= newer.faults_.size() ||
        (a < faults_.size() && faults_[a].cell_index <= newer.faults_[b].cell_index)) {
      // Existing fault wins on ties: a stuck cell cannot re-fail.
      if (b < newer.faults_.size() && faults_[a].cell_index == newer.faults_[b].cell_index) ++b;
      merged.push_back(faults_[a++]);
    } else {
      merged.push_back(newer.faults_[b++]);
      ++added;
    }
  }
  faults_ = std::move(merged);
  return added;
}

bool DefectMap::stuck(std::int64_t cell_index) const noexcept {
  const auto it = std::lower_bound(
      faults_.begin(), faults_.end(), cell_index,
      [](const CellFault& f, std::int64_t cell) { return f.cell_index < cell; });
  return it != faults_.end() && it->cell_index == cell_index;
}

void DefectMap::encode(ByteWriter& out) const {
  out.i64(cell_count_);
  out.u64(faults_.size());
  for (const CellFault& f : faults_) {
    out.i64(f.cell_index);
    out.u8(static_cast<std::uint8_t>(f.type));
  }
}

DefectMap DefectMap::decode(ByteReader& in) {
  DefectMap map;
  map.cell_count_ = in.i64();
  if (map.cell_count_ < 0) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "", "defect map: negative cell_count");
  }
  const std::uint64_t n = in.u64();
  if (n > static_cast<std::uint64_t>(map.cell_count_)) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "",
                          "defect map: more faults than cells");
  }
  map.faults_.reserve(static_cast<std::size_t>(n));
  std::int64_t prev = -1;
  for (std::uint64_t i = 0; i < n; ++i) {
    CellFault f;
    f.cell_index = in.i64();
    const std::uint8_t type = in.u8();
    if (f.cell_index <= prev || f.cell_index >= map.cell_count_) {
      throw CheckpointError(CheckpointErrorKind::kFormat, "",
                            "defect map: fault list is unsorted or out of range");
    }
    if (type != static_cast<std::uint8_t>(FaultType::kStuckOff) &&
        type != static_cast<std::uint8_t>(FaultType::kStuckOn)) {
      throw CheckpointError(CheckpointErrorKind::kFormat, "",
                            "defect map: unknown fault type " + std::to_string(type));
    }
    f.type = static_cast<FaultType>(type);
    prev = f.cell_index;
    map.faults_.push_back(f);
  }
  return map;
}

std::int64_t DefectMap::count(FaultType type) const noexcept {
  std::int64_t n = 0;
  for (const CellFault& f : faults_) {
    if (f.type == type) ++n;
  }
  return n;
}

}  // namespace ftpim
