// Tiled crossbar mapping of a weight matrix, with cell-level fault injection.
//
// A weight matrix W [out, in] maps onto tiles of physical crossbars:
//   * rows carry the input dimension (split into ceil(in / tile_rows) tiles),
//   * each output column uses a differential pair of crossbar columns, so a
//     tile holds tile_cols/2 outputs.
// mvm() sums partial currents across row tiles and subtracts the negative
// columns — the standard ISAAC/PUMA-style dataflow with ideal peripherals.
//
// This is the ground-truth path the fast weight-space injector
// (fault_injector.hpp) must agree with; tests/reram_equivalence_test checks
// read_back() against apply_stuck_at_faults() under a shared defect stream.
#pragma once

#include <cstdint>
#include <vector>

#include "src/reram/abft.hpp"
#include "src/reram/crossbar.hpp"
#include "src/reram/defect_map.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

struct CrossbarEngineConfig {
  std::int64_t tile_rows = 128;
  std::int64_t tile_cols = 128;  ///< must be even (differential pairs)
  ConductanceRange range{};
  int quant_levels = 0;
  /// ABFT checksum column + per-MVM verification (DESIGN.md section 14).
  /// The float engine models the checksum as one wide cell per row holding
  /// the row's conductance sum, verified under an eps-scaled bound.
  abft::AbftConfig abft{};
};

class CrossbarEngine {
 public:
  /// Programs W [out, in] onto tiles. w_max <= 0 means per-matrix abs-max.
  CrossbarEngine(const Tensor& weights, const CrossbarEngineConfig& config, float w_max = 0.0f);

  [[nodiscard]] std::int64_t out_features() const noexcept { return out_; }
  [[nodiscard]] std::int64_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::int64_t tile_count() const noexcept {
    return static_cast<std::int64_t>(tiles_.size());
  }
  [[nodiscard]] std::int64_t total_cells() const noexcept;
  [[nodiscard]] std::int64_t stuck_cells() const noexcept;

  /// Draws an independent defect map per tile from the device seed and
  /// applies it (models one physical device instance).
  void apply_device_defects(const StuckAtFaultModel& model, std::uint64_t master_seed,
                            std::uint64_t device_index);

  /// Restores a defect-free die (weights stay programmed).
  void clear_defects();

  /// y[out] = W_effective * x[in] computed through the crossbar tiles.
  void mvm(const float* x, float* y) const;

  /// Batched form: y[batch, out] = x[batch, in] * W_effective^T, computed
  /// per tile through the packed GEMM backend (one GEMM per tile instead of
  /// batch scalar matvecs). mvm() is the batch-of-one special case.
  void mvm_batch(const float* x, std::int64_t batch, float* y) const;

  /// Reads the effective weight matrix (including fault distortions).
  [[nodiscard]] Tensor read_back() const;

  // --- ABFT (config().abft.enabled only; see src/reram/abft.hpp) ---

  [[nodiscard]] bool abft_enabled() const noexcept { return !chk_.empty(); }
  [[nodiscard]] std::int64_t row_tile_count() const noexcept { return row_tiles_; }
  [[nodiscard]] std::int64_t col_tile_count() const noexcept { return col_tiles_; }
  /// False when verification was silenced at the last rebaseline because the
  /// tile's checksum cell itself is stuck.
  [[nodiscard]] bool abft_tile_active(std::int64_t rt, std::int64_t ct) const;

  /// Recomputes every tile's checksum baseline from the current EFFECTIVE
  /// conductances: faults present now are accepted as the reference state,
  /// faults that appear later are detected.
  void abft_rebaseline();

  /// Re-programs one tile from the retained source weights (every cell,
  /// including unmapped edge columns, is rewritten) and clears the tile's
  /// data- and checksum-cell faults. The checksum baseline is retained; the
  /// caller re-applies its persistent DefectMap so aging-grown faults
  /// resurface while transient faults heal.
  void scrub_tile(std::int64_t rt, std::int64_t ct);

  /// Scrubs every tile flagged in the report; returns the number scrubbed.
  std::int64_t scrub(const abft::TileFaultReport& report);

  /// Drains mismatch tallies accumulated by mvm / mvm_batch since the last
  /// drain (report.layer is left at -1).
  [[nodiscard]] abft::TileFaultReport take_abft_report();

 private:
  struct TileRef {
    std::int64_t row_tile;  ///< which input-dim slice
    std::int64_t col_tile;  ///< which output slice
  };

  /// One wide checksum cell per tile row: base holds the baselined row sums,
  /// eff the faulted readout (stuck-off = tile_cols * g_min, stuck-on =
  /// tile_cols * g_max), ok whether the check column is trustworthy.
  struct ChecksumColumn {
    std::vector<float> base;
    std::vector<std::uint8_t> fault;
    std::vector<float> eff;
    std::uint8_t ok = 1;
  };

  /// Recomputes base from the tile's effective conductances + refreshes ok.
  void rebaseline_chk(std::int64_t rt, std::int64_t ct);
  /// Recomputes eff from base + fault (base untouched).
  void refresh_chk(std::int64_t rt, std::int64_t ct);

  std::int64_t out_, in_;
  CrossbarEngineConfig config_;
  float w_max_;
  std::int64_t row_tiles_, col_tiles_;
  std::int64_t outs_per_tile_;
  std::vector<CrossbarArray> tiles_;  ///< row-major [row_tile][col_tile]
  std::vector<ChecksumColumn> chk_;   ///< parallel to tiles_ (empty = ABFT off)
  Tensor weights_;                    ///< retained source weights (ABFT only)
  /// MVM merges mismatch counts here (cold, once per batch).
  mutable abft::AbftAccumulator abft_;

  [[nodiscard]] const CrossbarArray& tile(std::int64_t rt, std::int64_t ct) const {
    return tiles_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
  }
  [[nodiscard]] CrossbarArray& tile(std::int64_t rt, std::int64_t ct) {
    return tiles_[static_cast<std::size_t>(rt * col_tiles_ + ct)];
  }
};

}  // namespace ftpim
