// Cell-level crossbar array model.
//
// A crossbar of R rows x C columns computes, per column c, the analog dot
// product I_c = sum_r G[r,c] * V_r in one step. Weight matrices map onto
// differential column pairs (see crossbar_engine.hpp). This class owns the
// conductance state, applies defect maps, and performs the MVM; ADC/DAC are
// modeled as ideal (the paper's simulation does the same — SAF is the studied
// non-ideality; conductance variation lives in variation.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "src/reram/conductance.hpp"
#include "src/reram/defect_map.hpp"
#include "src/reram/quantizer.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

class CrossbarArray {
 public:
  CrossbarArray(std::int64_t rows, std::int64_t cols, ConductanceRange range,
                int quant_levels = 0);

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t cell_count() const noexcept { return rows_ * cols_; }
  [[nodiscard]] const ConductanceRange& range() const noexcept { return range_; }

  /// Programs cell (r,c); the value is clamped to the conductance range and
  /// snapped to a level when quantization is enabled. Programming a stuck
  /// cell has no effect (the device ignores write pulses).
  void program(std::int64_t r, std::int64_t c, float g);

  /// Reads the present conductance of cell (r,c) (stuck value if faulty).
  [[nodiscard]] float read(std::int64_t r, std::int64_t c) const;

  /// Applies a defect map (cell_count must match). Stuck cells snap to
  /// Gmin/Gmax immediately and become immune to program().
  void apply_defects(const DefectMap& map);

  /// Removes all defects (fresh die) while keeping programmed values.
  void clear_defects();

  /// Analog MVM: out[c] = sum_r G[r,c] * in[r]. in must have rows() elements,
  /// out cols() elements.
  void matvec(const float* in, float* out) const;

  /// Raw row-major [rows, cols] conductance matrix (stuck values included).
  /// Lets the tiled engine batch MVMs through the packed GEMM backend.
  [[nodiscard]] const float* conductance_data() const noexcept { return g_.data(); }

  /// Number of currently stuck cells.
  [[nodiscard]] std::int64_t stuck_count() const noexcept;

 private:
  [[nodiscard]] std::size_t idx(std::int64_t r, std::int64_t c) const noexcept {
    return static_cast<std::size_t>(r * cols_ + c);
  }

  std::int64_t rows_, cols_;
  ConductanceRange range_;
  ConductanceQuantizer quantizer_;
  std::vector<float> g_;
  std::vector<std::uint8_t> fault_;  ///< FaultType per cell
};

}  // namespace ftpim
