// In-service defect aging — the runtime half of the paper's lifetime story.
//
// A mass-produced ReRAM device does not keep the defect map it shipped with:
// endurance wear-out keeps converting cells to stuck-at faults while the
// device serves traffic. AgingModel makes that degradation a deterministic
// function of (seed, device stream, served-batch count): service time is
// divided into fixed-size intervals of `interval_batches` served batches,
// and interval k contributes a freshly sampled batch of new stuck cells
// drawn from Rng(derive_seed(derive_seed(seed, device_stream), k)). Because
// each interval's faults depend only on the interval index, evolution
// composes: evolve(map, 0 -> a) then evolve(map, a -> b) is bit-identical to
// evolve(map, 0 -> b), which is what makes degradation reproducible under
// ManualServeClock in the serving layer (DESIGN.md §9).
//
// Merging uses DefectMap::merge_from — a cell that is already stuck keeps
// its original fault type, so the map grows monotonically.
#pragma once

#include <cstdint>

#include "src/reram/defect_map.hpp"
#include "src/reram/fault_model.hpp"

namespace ftpim {

class ByteWriter;
class ByteReader;

struct AgingConfig {
  /// Per-cell probability that a healthy cell fails during one aging
  /// interval; 0 disables aging entirely.
  double p_new_per_interval = 0.0;
  /// Served batches per aging interval (the unit of in-service "time").
  std::int64_t interval_batches = 64;
  double sa0_fraction = kPaperSa0Fraction;
  std::uint64_t seed = 99;  ///< master aging seed; streams derive per device

  [[nodiscard]] bool enabled() const noexcept { return p_new_per_interval > 0.0; }
  void validate() const;

  /// Checkpoint encoding. An AgingModel is a pure function of its config —
  /// (seed, device stream, interval) fully determine every fault batch — so
  /// the config IS the model state: round-tripping it through decode()
  /// reproduces the exact same degradation trajectory.
  void encode(ByteWriter& out) const;
  [[nodiscard]] static AgingConfig decode(ByteReader& in);
};

class AgingModel {
 public:
  AgingModel() = default;
  explicit AgingModel(const AgingConfig& config);

  [[nodiscard]] const AgingConfig& config() const noexcept { return config_; }

  /// Whole aging intervals elapsed after `served_batches` batches.
  [[nodiscard]] std::int64_t intervals_at(std::int64_t served_batches) const noexcept;

  /// The new faults arriving during interval `interval` (0-based) on the
  /// device identified by `device_stream`. Pure function of
  /// (seed, device_stream, interval) — never of the current map.
  [[nodiscard]] DefectMap interval_faults(std::int64_t cell_count, std::uint64_t device_stream,
                                          std::int64_t interval) const;

  /// Merges every interval in [from_interval, to_interval) into `map`.
  /// Returns the number of newly stuck cells (cells already stuck are not
  /// re-counted, mirroring DefectMap::merge_from).
  std::int64_t evolve(DefectMap& map, std::uint64_t device_stream, std::int64_t from_interval,
                      std::int64_t to_interval) const;

 private:
  AgingConfig config_;
};

}  // namespace ftpim
