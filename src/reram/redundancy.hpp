// Hardware redundancy schemes — the error-correction family the paper cites
// as complementary to stochastic FT training ([28] T. Liu et al., DAC'19;
// redundant columns [4]). Implemented here: R-modular redundancy at the
// weight level — each weight is stored on R independent differential cell
// pairs and read back as the median (R odd), which masks any single stuck
// cell at R=3 (TMR) at 3x cell cost.
//
// The redundancy ablation bench combines this with stochastic FT training to
// reproduce the paper's claim that the two approaches compose.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/reram/conductance.hpp"
#include "src/reram/fault_model.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

struct RedundancyConfig {
  int replicas = 3;            ///< R (odd, >= 1); 1 = no redundancy
  ConductanceRange range{};
  bool per_tensor_wmax = true;
  float fixed_wmax = 1.0f;
};

struct RedundantInjectionStats {
  std::int64_t cells = 0;            ///< 2 * R * weights
  std::int64_t faulted_cells = 0;
  std::int64_t affected_weights = 0; ///< weights whose median readback changed
  [[nodiscard]] double cell_fault_rate() const noexcept {
    return cells > 0 ? static_cast<double>(faulted_cells) / static_cast<double>(cells) : 0.0;
  }
};

/// Applies stuck-at faults to a weight tensor deployed with R-modular
/// redundancy: every weight is programmed on R cell pairs, faults hit each
/// cell independently at the model's rate, and the weight reads back as the
/// median of the R pair readouts.
RedundantInjectionStats apply_faults_with_redundancy(Tensor& weights,
                                                     const StuckAtFaultModel& model,
                                                     const RedundancyConfig& config, Rng& rng);

/// Applies redundant injection to every crossbar weight of a network.
RedundantInjectionStats inject_model_with_redundancy(Module& model_root,
                                                     const StuckAtFaultModel& model,
                                                     const RedundancyConfig& config, Rng& rng);

/// RAII guard mirroring WeightFaultGuard for the redundant deployment.
class RedundantFaultGuard {
 public:
  RedundantFaultGuard(Module& model_root, const StuckAtFaultModel& model,
                      const RedundancyConfig& config, Rng& rng);
  ~RedundantFaultGuard();
  RedundantFaultGuard(const RedundantFaultGuard&) = delete;
  RedundantFaultGuard& operator=(const RedundantFaultGuard&) = delete;

  void restore();
  [[nodiscard]] const RedundantInjectionStats& stats() const noexcept { return stats_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> clean_;
  RedundantInjectionStats stats_;
  bool restored_ = false;
};

}  // namespace ftpim
