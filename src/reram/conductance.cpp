#include "src/reram/conductance.hpp"

#include "src/common/check.hpp"

#include <algorithm>

namespace ftpim {

DifferentialMapper::DifferentialMapper(ConductanceRange range, float w_max)
    : range_(range), w_max_(w_max) {
  range_.validate();
  FTPIM_CHECK(!(!(w_max > 0.0f)), "DifferentialMapper: w_max must be > 0");
  w_to_g_ = range_.span() / w_max_;
  g_to_w_ = w_max_ / range_.span();
}

CellPair DifferentialMapper::to_cells(float weight) const noexcept {
  const float clamped = std::clamp(weight, -w_max_, w_max_);
  CellPair cells;
  cells.g_pos = range_.g_min + (clamped > 0.0f ? clamped * w_to_g_ : 0.0f);
  cells.g_neg = range_.g_min + (clamped < 0.0f ? -clamped * w_to_g_ : 0.0f);
  return cells;
}

float DifferentialMapper::to_weight(const CellPair& cells) const noexcept {
  return (cells.g_pos - cells.g_neg) * g_to_w_;
}

}  // namespace ftpim
