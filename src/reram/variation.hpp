// Device-to-device conductance variation (lognormal), an extension beyond
// the paper's SAF-only study.
//
// Programming a target conductance g lands at g * exp(sigma * N(0,1)),
// clamped to the device range — the standard lognormal programming-variation
// model for ReRAM. The ablation bench combines this with SAF to show that
// stochastic FT training also buys robustness against analog drift.
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/module.hpp"
#include "src/reram/conductance.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

struct VariationConfig {
  float sigma = 0.1f;          ///< lognormal sigma of the programming error
  ConductanceRange range{};
  bool per_tensor_wmax = true;
  float fixed_wmax = 1.0f;
};

/// Applies lognormal conductance variation to `weights` in place through the
/// differential-pair mapping.
void apply_conductance_variation(Tensor& weights, const VariationConfig& config, Rng& rng);

/// Applies variation to every crossbar-weight parameter of a network.
void apply_variation_to_model(Module& model_root, const VariationConfig& config, Rng& rng);

}  // namespace ftpim
