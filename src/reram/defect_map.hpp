// Per-device defect maps.
//
// A DefectMap records which cells of a cell array are stuck and how. It is
// the persistent identity of one physical device instance: evaluation over
// num_of_runs devices draws num_of_runs maps from per-device seeds.
// Storage is sparse (fault rates of interest are <= 0.2).
//
// Maps are mutable through merge_from() — the in-service aging path
// (src/reram/aging.hpp) grows a device's map over its served lifetime by
// merging freshly sampled fault batches in. A cell that is already stuck
// stays stuck with its original fault type: first fault wins, so evolution
// is monotone and order-independent within an interval.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/reram/fault_model.hpp"

namespace ftpim {

class ByteWriter;
class ByteReader;

struct CellFault {
  std::int64_t cell_index;  ///< flat index into the cell array
  FaultType type;
};

class DefectMap {
 public:
  DefectMap() = default;

  /// Samples a defect map for `cell_count` cells under `model`, using `rng`.
  static DefectMap sample(std::int64_t cell_count, const StuckAtFaultModel& model, Rng& rng);

  /// Convenience: per-device stream — device_index selects the sub-seed.
  static DefectMap sample_for_device(std::int64_t cell_count, const StuckAtFaultModel& model,
                                     std::uint64_t master_seed, std::uint64_t device_index);

  /// A fault-free map over `cell_count` cells (the starting point of a
  /// pristine device that will age in service).
  static DefectMap empty(std::int64_t cell_count);

  /// Builds a map from an explicit fault list (must be sorted by cell_index,
  /// unique, in [0, cell_count), no kNone entries). This is how the
  /// deployment layer re-bases a model-level map onto per-layer cell spaces.
  static DefectMap from_faults(std::int64_t cell_count, std::vector<CellFault> faults);

  /// Merges `newer`'s faults into this map. Cells already stuck keep their
  /// original fault type (a stuck cell cannot re-fail), so repeated merges
  /// are monotone. Both maps must describe the same cell array. Returns the
  /// number of faults actually added.
  std::int64_t merge_from(const DefectMap& newer);

  /// True when `cell_index` is recorded as stuck (binary search).
  [[nodiscard]] bool stuck(std::int64_t cell_index) const noexcept;

  [[nodiscard]] const std::vector<CellFault>& faults() const noexcept { return faults_; }
  [[nodiscard]] std::int64_t cell_count() const noexcept { return cell_count_; }
  [[nodiscard]] std::int64_t fault_count() const noexcept {
    return static_cast<std::int64_t>(faults_.size());
  }
  [[nodiscard]] double observed_rate() const noexcept {
    return cell_count_ > 0 ? static_cast<double>(faults_.size()) / static_cast<double>(cell_count_)
                           : 0.0;
  }

  /// Counts by type (index 1 = stuck-off, 2 = stuck-on).
  [[nodiscard]] std::int64_t count(FaultType type) const noexcept;

  /// Appends the map's checkpoint encoding (cell_count, fault list) to `out`.
  /// Round-trips exactly through decode(); the DMAP chunk of a training
  /// checkpoint carries this encoding (DESIGN.md §10).
  void encode(ByteWriter& out) const;

  /// Parses an encode()d map; throws CheckpointError (kTruncated/kFormat) on
  /// malformed input (unsorted faults, out-of-range cells, bad fault type).
  [[nodiscard]] static DefectMap decode(ByteReader& in);

 private:
  std::int64_t cell_count_ = 0;
  std::vector<CellFault> faults_;  ///< sorted by cell_index
};

}  // namespace ftpim
