#include "src/reram/aging.hpp"

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/rng.hpp"

namespace ftpim {
namespace {

/// Extra constant folded into the per-interval stream so aging streams never
/// collide with the injection streams derived from the same device seed.
constexpr std::uint64_t kAgingStreamSalt = 0xa91d;

}  // namespace

void AgingConfig::validate() const {
  FTPIM_CHECK(p_new_per_interval >= 0.0 && p_new_per_interval <= 1.0,
              "AgingConfig: p_new_per_interval %g outside [0,1]", p_new_per_interval);
  FTPIM_CHECK_GT(interval_batches, std::int64_t{0}, "AgingConfig: interval_batches");
  FTPIM_CHECK(sa0_fraction >= 0.0 && sa0_fraction <= 1.0,
              "AgingConfig: sa0_fraction outside [0,1]");
}

void AgingConfig::encode(ByteWriter& out) const {
  out.f64(p_new_per_interval);
  out.i64(interval_batches);
  out.f64(sa0_fraction);
  out.u64(seed);
}

AgingConfig AgingConfig::decode(ByteReader& in) {
  AgingConfig config;
  config.p_new_per_interval = in.f64();
  config.interval_batches = in.i64();
  config.sa0_fraction = in.f64();
  config.seed = in.u64();
  try {
    config.validate();
  } catch (const ContractViolation& e) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "", e.what());
  }
  return config;
}

AgingModel::AgingModel(const AgingConfig& config) : config_(config) { config.validate(); }

std::int64_t AgingModel::intervals_at(std::int64_t served_batches) const noexcept {
  if (served_batches <= 0) return 0;
  return served_batches / config_.interval_batches;
}

DefectMap AgingModel::interval_faults(std::int64_t cell_count, std::uint64_t device_stream,
                                      std::int64_t interval) const {
  FTPIM_CHECK_GE(interval, std::int64_t{0}, "AgingModel::interval_faults: interval");
  if (!config_.enabled()) return DefectMap::empty(cell_count);
  const StuckAtFaultModel model(config_.p_new_per_interval, config_.sa0_fraction);
  Rng rng(derive_seed(derive_seed(config_.seed, device_stream),
                      static_cast<std::uint64_t>(interval) + kAgingStreamSalt));
  return DefectMap::sample(cell_count, model, rng);
}

std::int64_t AgingModel::evolve(DefectMap& map, std::uint64_t device_stream,
                                std::int64_t from_interval, std::int64_t to_interval) const {
  FTPIM_CHECK_GE(from_interval, std::int64_t{0}, "AgingModel::evolve: from_interval");
  FTPIM_CHECK_GE(to_interval, from_interval,
                 "AgingModel::evolve: to_interval must not precede from_interval");
  std::int64_t added = 0;
  for (std::int64_t k = from_interval; k < to_interval; ++k) {
    added += map.merge_from(interval_faults(map.cell_count(), device_stream, k));
  }
  return added;
}

}  // namespace ftpim
