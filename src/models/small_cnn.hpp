// Compact CNN (conv-BN-ReLU-pool x2 + classifier) — integration-test model
// and quickstart example network; much cheaper than a ResNet.
#pragma once

#include <cstdint>
#include <memory>

#include "src/nn/sequential.hpp"

namespace ftpim {

struct SmallCnnConfig {
  std::int64_t in_channels = 3;
  std::int64_t image_size = 16;  ///< square input side; must be divisible by 4
  std::int64_t width = 8;
  std::int64_t classes = 10;
  std::uint64_t seed = 1;
};

std::unique_ptr<Sequential> make_small_cnn(const SmallCnnConfig& config);

}  // namespace ftpim
