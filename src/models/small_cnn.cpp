#include "src/models/small_cnn.hpp"

#include "src/common/check.hpp"
#include "src/common/rng.hpp"


#include "src/nn/activations.hpp"
#include "src/nn/batchnorm2d.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pooling.hpp"

namespace ftpim {

std::unique_ptr<Sequential> make_small_cnn(const SmallCnnConfig& config) {
  FTPIM_CHECK(!(config.image_size % 4 != 0 || config.image_size < 4), "make_small_cnn: image_size must be a positive multiple of 4");
  Rng rng(config.seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(config.in_channels, config.width, 3, 1, 1, rng, /*with_bias=*/false);
  net->emplace<BatchNorm2d>(config.width);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2, 2);
  net->emplace<Conv2d>(config.width, config.width * 2, 3, 1, 1, rng, /*with_bias=*/false);
  net->emplace<BatchNorm2d>(config.width * 2);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2, 2);
  net->emplace<Flatten>();
  const std::int64_t spatial = config.image_size / 4;
  net->emplace<Linear>(config.width * 2 * spatial * spatial, config.classes, rng,
                       /*with_bias=*/true);
  return net;
}

}  // namespace ftpim
