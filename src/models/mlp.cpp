#include "src/models/mlp.hpp"

#include "src/common/check.hpp"
#include "src/common/rng.hpp"


#include "src/nn/activations.hpp"
#include "src/nn/linear.hpp"

namespace ftpim {

std::unique_ptr<Sequential> make_mlp(const std::vector<std::int64_t>& sizes, std::uint64_t seed) {
  FTPIM_CHECK(!(sizes.size() < 2), "make_mlp: need at least in/out sizes");
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    net->emplace<Linear>(sizes[i], sizes[i + 1], rng, /*with_bias=*/true);
    if (i + 2 < sizes.size()) net->emplace<ReLU>();
  }
  return net;
}

}  // namespace ftpim
