// Small multilayer perceptron — used by unit tests and as a cheap workload
// for fault-injection microbenchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/sequential.hpp"

namespace ftpim {

/// Builds Linear/ReLU stacks: sizes = {in, h1, ..., out}.
std::unique_ptr<Sequential> make_mlp(const std::vector<std::int64_t>& sizes, std::uint64_t seed);

}  // namespace ftpim
