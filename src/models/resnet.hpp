// CIFAR-style ResNet family (He et al. 2016): ResNet-20/32/44/56.
//
// Layout: conv3x3(3->w) -> BN -> ReLU -> 3 stages of n residual blocks
// (w, 2w, 4w channels; first block of stages 2/3 downsamples, option-A
// shortcut) -> global average pool -> linear classifier.
// depth = 6n + 2  =>  ResNet-20: n=3, ResNet-32: n=5.
//
// `base_width` scales channel counts for CPU-budget reproduction runs
// (paper value: 16).
#pragma once

#include <cstdint>
#include <memory>

#include "src/nn/sequential.hpp"

namespace ftpim {

struct ResNetConfig {
  int depth = 20;            ///< 6n+2: 20, 32, 44, 56, ...
  std::int64_t classes = 10;
  std::int64_t base_width = 16;
  std::uint64_t seed = 1;
};

/// Builds a CIFAR ResNet; throws std::invalid_argument for unsupported depth.
std::unique_ptr<Sequential> make_resnet(const ResNetConfig& config);

/// Convenience builders matching the paper's two benchmark networks.
std::unique_ptr<Sequential> make_resnet20(std::int64_t classes, std::int64_t base_width,
                                          std::uint64_t seed);
std::unique_ptr<Sequential> make_resnet32(std::int64_t classes, std::int64_t base_width,
                                          std::uint64_t seed);

}  // namespace ftpim
