#include "src/models/resnet.hpp"

#include "src/common/check.hpp"
#include "src/common/rng.hpp"


#include "src/nn/activations.hpp"
#include "src/nn/batchnorm2d.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pooling.hpp"
#include "src/nn/residual.hpp"

namespace ftpim {

std::unique_ptr<Sequential> make_resnet(const ResNetConfig& config) {
  if (config.depth < 8 || (config.depth - 2) % 6 != 0) {
    throw ContractViolation("make_resnet: depth must be 6n+2, got " +
                                std::to_string(config.depth));
  }
  FTPIM_CHECK(!(config.classes <= 1 || config.base_width <= 0), "make_resnet: invalid classes/base_width");
  const int blocks_per_stage = (config.depth - 2) / 6;
  const std::int64_t w = config.base_width;

  Rng rng(config.seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(3, w, 3, 1, 1, rng, /*with_bias=*/false);
  net->emplace<BatchNorm2d>(w);
  net->emplace<ReLU>();

  std::int64_t in_c = w;
  for (int stage = 0; stage < 3; ++stage) {
    const std::int64_t out_c = w << stage;
    for (int b = 0; b < blocks_per_stage; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->emplace<ResidualBlock>(in_c, out_c, stride, rng);
      in_c = out_c;
    }
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_c, config.classes, rng, /*with_bias=*/true);
  return net;
}

std::unique_ptr<Sequential> make_resnet20(std::int64_t classes, std::int64_t base_width,
                                          std::uint64_t seed) {
  return make_resnet(
      ResNetConfig{.depth = 20, .classes = classes, .base_width = base_width, .seed = seed});
}

std::unique_ptr<Sequential> make_resnet32(std::int64_t classes, std::int64_t base_width,
                                          std::uint64_t seed) {
  return make_resnet(
      ResNetConfig{.depth = 32, .classes = classes, .base_width = base_width, .seed = seed});
}

}  // namespace ftpim
