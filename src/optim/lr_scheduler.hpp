// Learning-rate schedules. The paper uses cosine annealing from 0.1.
#pragma once

#include <vector>

namespace ftpim {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// LR for 0-based epoch `epoch` of `total_epochs`.
  [[nodiscard]] virtual float lr_at(int epoch, int total_epochs) const = 0;
};

/// lr(t) = eta_min + (base - eta_min) * (1 + cos(pi * t / T)) / 2
class CosineSchedule final : public LrSchedule {
 public:
  explicit CosineSchedule(float base_lr, float eta_min = 0.0f);
  [[nodiscard]] float lr_at(int epoch, int total_epochs) const override;

 private:
  float base_lr_, eta_min_;
};

/// Piecewise-constant decay at given epoch milestones.
class StepSchedule final : public LrSchedule {
 public:
  StepSchedule(float base_lr, std::vector<int> milestones, float gamma = 0.1f);
  [[nodiscard]] float lr_at(int epoch, int total_epochs) const override;

 private:
  float base_lr_;
  std::vector<int> milestones_;
  float gamma_;
};

/// Constant LR (fine-tuning).
class ConstantSchedule final : public LrSchedule {
 public:
  explicit ConstantSchedule(float lr) : lr_(lr) {}
  [[nodiscard]] float lr_at(int, int) const override { return lr_; }

 private:
  float lr_;
};

}  // namespace ftpim
