#include "src/optim/adam.hpp"

#include "src/common/check.hpp"

#include <cmath>
#include <cstring>

namespace ftpim {

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  FTPIM_CHECK(!(config_.lr <= 0.0f), "Adam: lr must be positive");
  if (config_.beta1 < 0.0f || config_.beta1 >= 1.0f || config_.beta2 < 0.0f ||
      config_.beta2 >= 1.0f) {
    throw ContractViolation("Adam: betas must be in [0,1)");
  }
  FTPIM_CHECK(!(config_.eps <= 0.0f), "Adam: eps must be positive");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::set_mask(const Param* param, Tensor mask) {
  if (mask.shape() != param->value.shape()) {
    throw ContractViolation("Adam::set_mask: mask shape mismatch for " + param->name);
  }
  masks_[param] = std::move(mask);
}

StateDict Adam::state_dict() const {
  StateDict state;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    state.emplace("adam_m/" + params_[k]->name, m_[k]);
    state.emplace("adam_v/" + params_[k]->name, v_[k]);
  }
  // The step counter drives bias correction; its 64 bits are bit-cast into
  // two float lanes so the whole optimizer state stays one StateDict and the
  // round trip is exact at any step count.
  Tensor t_bits(Shape{2});
  const auto u = static_cast<std::uint64_t>(t_);
  const std::uint32_t lo = static_cast<std::uint32_t>(u);
  const std::uint32_t hi = static_cast<std::uint32_t>(u >> 32);
  std::memcpy(t_bits.data(), &lo, sizeof(lo));
  std::memcpy(t_bits.data() + 1, &hi, sizeof(hi));
  state.emplace("adam_t", std::move(t_bits));
  return state;
}

void Adam::load_state(const StateDict& state) {
  auto fetch = [&state](const std::string& key) -> const Tensor& {
    const auto it = state.find(key);
    FTPIM_CHECK(it != state.end(), "Adam::load_state: missing entry '%s'", key.c_str());
    return it->second;
  };
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const Tensor& m = fetch("adam_m/" + params_[k]->name);
    const Tensor& v = fetch("adam_v/" + params_[k]->name);
    FTPIM_CHECK(m.shape() == m_[k].shape() && v.shape() == v_[k].shape(),
                "Adam::load_state: shape mismatch for '%s'", params_[k]->name.c_str());
    m_[k] = m;
    v_[k] = v;
  }
  const Tensor& t_bits = fetch("adam_t");
  FTPIM_CHECK_EQ(t_bits.numel(), std::int64_t{2}, "Adam::load_state: adam_t must hold 2 lanes");
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::memcpy(&lo, t_bits.data(), sizeof(lo));
  std::memcpy(&hi, t_bits.data() + 1, sizeof(hi));
  t_ = static_cast<std::int64_t>((static_cast<std::uint64_t>(hi) << 32) | lo);
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    const auto mask_it = masks_.find(p);
    const float* mask = mask_it != masks_.end() ? mask_it->second.data() : nullptr;
    const float decay = (p->kind == ParamKind::kCrossbarWeight) ? config_.weight_decay : 0.0f;

    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (mask != nullptr && mask[i] == 0.0f) {
        m[i] = 0.0f;
        v[i] = 0.0f;
        w[i] = 0.0f;
        continue;
      }
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) + decay * w[i]);
    }
  }
}

}  // namespace ftpim
