#include "src/optim/adam.hpp"

#include "src/common/check.hpp"

#include <cmath>
#include <stdexcept>

namespace ftpim {

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  FTPIM_CHECK(!(config_.lr <= 0.0f), "Adam: lr must be positive");
  if (config_.beta1 < 0.0f || config_.beta1 >= 1.0f || config_.beta2 < 0.0f ||
      config_.beta2 >= 1.0f) {
    throw ContractViolation("Adam: betas must be in [0,1)");
  }
  FTPIM_CHECK(!(config_.eps <= 0.0f), "Adam: eps must be positive");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::set_mask(const Param* param, Tensor mask) {
  if (mask.shape() != param->value.shape()) {
    throw ContractViolation("Adam::set_mask: mask shape mismatch for " + param->name);
  }
  masks_[param] = std::move(mask);
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    const auto mask_it = masks_.find(p);
    const float* mask = mask_it != masks_.end() ? mask_it->second.data() : nullptr;
    const float decay = (p->kind == ParamKind::kCrossbarWeight) ? config_.weight_decay : 0.0f;

    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (mask != nullptr && mask[i] == 0.0f) {
        m[i] = 0.0f;
        v[i] = 0.0f;
        w[i] = 0.0f;
        continue;
      }
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) + decay * w[i]);
    }
  }
}

}  // namespace ftpim
