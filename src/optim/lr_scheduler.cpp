#include "src/optim/lr_scheduler.hpp"

#include "src/common/check.hpp"

#include <cmath>

namespace ftpim {

CosineSchedule::CosineSchedule(float base_lr, float eta_min)
    : base_lr_(base_lr), eta_min_(eta_min) {
  FTPIM_CHECK(!(base_lr <= 0.0f || eta_min < 0.0f || eta_min > base_lr), "CosineSchedule: invalid lr range");
}

float CosineSchedule::lr_at(int epoch, int total_epochs) const {
  if (total_epochs <= 1) return base_lr_;
  const float t = static_cast<float>(epoch) / static_cast<float>(total_epochs);
  return eta_min_ +
         (base_lr_ - eta_min_) * 0.5f * (1.0f + std::cos(3.14159265358979323846f * t));
}

StepSchedule::StepSchedule(float base_lr, std::vector<int> milestones, float gamma)
    : base_lr_(base_lr), milestones_(std::move(milestones)), gamma_(gamma) {
  FTPIM_CHECK(!(base_lr <= 0.0f || gamma <= 0.0f || gamma > 1.0f), "StepSchedule: invalid base_lr/gamma");
}

float StepSchedule::lr_at(int epoch, int /*total_epochs*/) const {
  float lr = base_lr_;
  for (const int m : milestones_) {
    if (epoch >= m) lr *= gamma_;
  }
  return lr;
}

}  // namespace ftpim
