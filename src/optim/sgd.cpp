#include "src/optim/sgd.hpp"

#include "src/common/check.hpp"

#include <cmath>

namespace ftpim {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  FTPIM_CHECK(!(config_.lr <= 0.0f), "Sgd: lr must be positive");
  FTPIM_CHECK(!(config_.momentum < 0.0f || config_.momentum >= 1.0f), "Sgd: momentum must be in [0,1)");
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::set_mask(const Param* param, Tensor mask) {
  if (mask.shape() != param->value.shape()) {
    throw ContractViolation("Sgd::set_mask: mask shape mismatch for " + param->name);
  }
  masks_[param] = std::move(mask);
}

StateDict Sgd::state_dict() const {
  StateDict state;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    state.emplace("velocity/" + params_[k]->name, velocity_[k]);
  }
  return state;
}

void Sgd::load_state(const StateDict& state) {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const std::string key = "velocity/" + params_[k]->name;
    const auto it = state.find(key);
    FTPIM_CHECK(it != state.end(), "Sgd::load_state: missing entry '%s'", key.c_str());
    FTPIM_CHECK(it->second.shape() == velocity_[k].shape(),
                "Sgd::load_state: shape mismatch for '%s'", key.c_str());
    velocity_[k] = it->second;
  }
}

void Sgd::step() {
  // Optional global-norm gradient clipping.
  float clip_scale = 1.0f;
  if (config_.grad_clip > 0.0f) {
    double sq = 0.0;
    for (const Param* p : params_) {
      const float* g = p->grad.data();
      for (std::int64_t i = 0; i < p->grad.numel(); ++i) sq += static_cast<double>(g[i]) * g[i];
    }
    const double norm = std::sqrt(sq);
    if (norm > config_.grad_clip) {
      clip_scale = static_cast<float>(config_.grad_clip / (norm + 1e-12));
    }
  }

  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    Tensor& vel = velocity_[k];
    const float decay = (p->kind == ParamKind::kCrossbarWeight) ? config_.weight_decay : 0.0f;
    const auto mask_it = masks_.find(p);
    const float* mask = mask_it != masks_.end() ? mask_it->second.data() : nullptr;

    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = vel.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      float grad = g[i] * clip_scale + decay * w[i];
      if (mask != nullptr && mask[i] == 0.0f) {
        v[i] = 0.0f;
        w[i] = 0.0f;
        continue;
      }
      v[i] = config_.momentum * v[i] + grad;
      w[i] -= config_.lr * v[i];
    }
  }
}

}  // namespace ftpim
