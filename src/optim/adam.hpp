// Adam optimizer (Kingma & Ba) with decoupled weight decay (AdamW-style,
// applied only to crossbar weights). Alternative to SGD for fine-tuning
// experiments; supports the same pruning masks as Sgd.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/tensor/param.hpp"
#include "src/tensor/serialize.hpp"

namespace ftpim {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  ///< decoupled; crossbar weights only
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig config);

  /// One update from accumulated grads; does NOT zero grads.
  void step();

  void set_lr(float lr) noexcept { config_.lr = lr; }
  [[nodiscard]] float lr() const noexcept { return config_.lr; }

  /// 0/1 keep-mask; masked positions receive no update and stay zero.
  void set_mask(const Param* param, Tensor mask);

  /// Moment buffers keyed "adam_m/<name>" / "adam_v/<name>" plus the step
  /// counter as scalar "adam_t" — checkpointable, bit-exact round trip.
  [[nodiscard]] StateDict state_dict() const;

  /// Restores moments + step counter captured by state_dict(). Throws
  /// ContractViolation on a missing entry or shape mismatch.
  void load_state(const StateDict& state);

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::unordered_map<const Param*, Tensor> masks_;
  AdamConfig config_;
  std::int64_t t_ = 0;
};

}  // namespace ftpim
