// SGD with momentum and decoupled-per-kind weight decay (paper recipe:
// momentum SGD, initial LR 0.1, cosine schedule).
//
// Weight decay is applied only to crossbar weights (conv/linear kernels), as
// is conventional for BN networks. Optional per-parameter freeze masks keep
// ADMM-pruned positions at zero during fine-tuning.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/tensor/param.hpp"
#include "src/tensor/serialize.hpp"

namespace ftpim {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  float grad_clip = 0.0f;  ///< 0 disables; otherwise clip global L2 norm to this
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  /// Applies one update using accumulated grads; does NOT zero grads.
  void step();

  void set_lr(float lr) noexcept { config_.lr = lr; }
  [[nodiscard]] float lr() const noexcept { return config_.lr; }
  [[nodiscard]] const SgdConfig& config() const noexcept { return config_; }

  /// Attaches a 0/1 mask for a parameter: masked (0) positions receive no
  /// update and are re-zeroed after each step (pruning support).
  void set_mask(const Param* param, Tensor mask);
  void clear_masks() { masks_.clear(); }

  /// Momentum buffers keyed "velocity/<param name>" — the optimizer half of
  /// a training checkpoint (pruning masks are reconstructed by the pruner,
  /// not checkpointed). Round-trips bit-exactly through load_state().
  [[nodiscard]] StateDict state_dict() const;

  /// Restores momentum buffers captured by state_dict(). Throws
  /// ContractViolation on a missing entry or shape mismatch.
  void load_state(const StateDict& state);

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  std::unordered_map<const Param*, Tensor> masks_;
  SgdConfig config_;
};

}  // namespace ftpim
