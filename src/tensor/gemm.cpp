#include "src/tensor/gemm.hpp"

#include "src/common/check.hpp"
#include "src/tensor/kernels/gemm_driver.hpp"

namespace ftpim {
namespace {

// Entry preconditions (debug-only: gemm sits on the training hot path).
// Null operand pointers are legal only for empty problems.
void dcheck_gemm_args(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                      const float* b, const float* c) {
  FTPIM_DCHECK_GE(m, 0);
  FTPIM_DCHECK_GE(n, 0);
  FTPIM_DCHECK_GE(k, 0);
  FTPIM_DCHECK(m == 0 || n == 0 || c != nullptr, "gemm: null C");
  FTPIM_DCHECK(m == 0 || k == 0 || a != nullptr, "gemm: null A");
  FTPIM_DCHECK(k == 0 || n == 0 || b != nullptr, "gemm: null B");
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  const kernels::PackASource pa{a, k, kernels::PackASource::Layout::kRowMajor};
  const kernels::PackBSource pb{b, n, nullptr, kernels::PackBSource::Layout::kRowMajor};
  kernels::gemm_packed(m, n, k, alpha, pa, pb, beta, c, n);
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  const kernels::PackASource pa{a, m, kernels::PackASource::Layout::kTransposed};
  const kernels::PackBSource pb{b, n, nullptr, kernels::PackBSource::Layout::kRowMajor};
  kernels::gemm_packed(m, n, k, alpha, pa, pb, beta, c, n);
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  const kernels::PackASource pa{a, k, kernels::PackASource::Layout::kRowMajor};
  const kernels::PackBSource pb{b, k, nullptr, kernels::PackBSource::Layout::kTransposed};
  kernels::gemm_packed(m, n, k, alpha, pa, pb, beta, c, n);
}

}  // namespace ftpim
