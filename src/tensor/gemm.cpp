#include "src/tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace ftpim {
namespace {

// Kernel-entry preconditions (debug-only: gemm sits on the training hot
// path). Null operand pointers are legal only for empty problems.
void dcheck_gemm_args(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                      const float* b, const float* c) {
  FTPIM_DCHECK_GE(m, 0);
  FTPIM_DCHECK_GE(n, 0);
  FTPIM_DCHECK_GE(k, 0);
  FTPIM_DCHECK(m == 0 || n == 0 || c != nullptr, "gemm: null C");
  FTPIM_DCHECK(m == 0 || k == 0 || a != nullptr, "gemm: null A");
  FTPIM_DCHECK(k == 0 || n == 0 || b != nullptr, "gemm: null B");
}

constexpr std::int64_t kBlockK = 256;
constexpr std::int64_t kBlockN = 128;

// Scales (or clears) a row range of C by beta before accumulation.
void scale_c(std::int64_t rows, std::int64_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(rows * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < rows * n; ++i) c[i] *= beta;
}

// Inner kernel: C[lo:hi, :] += alpha * A[lo:hi, :] * B, plain row-major.
void gemm_rows(std::int64_t lo, std::int64_t hi, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float* c) {
  for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
    const std::int64_t kend = std::min(k, kk + kBlockK);
    for (std::int64_t nn = 0; nn < n; nn += kBlockN) {
      const std::int64_t nend = std::min(n, nn + kBlockN);
      for (std::int64_t i = lo; i < hi; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::int64_t p = kk; p < kend; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;  // sparse models: skip pruned weights
          const float* brow = b + p * n;
          for (std::int64_t j = nn; j < nend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  if (m <= 0 || n <= 0) return;
  scale_c(m, n, beta, c);
  if (k <= 0 || alpha == 0.0f) return;
  const std::int64_t min_rows_parallel = std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, n * k / 64));
  if (m >= 2 && m >= min_rows_parallel) {
    parallel_for_chunks(0, static_cast<std::size_t>(m),
                        [&](std::size_t lo, std::size_t hi) {
                          gemm_rows(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi),
                                    n, k, alpha, a, b, c);
                        },
                        /*min_parallel_trip=*/2);
  } else {
    gemm_rows(0, m, n, k, alpha, a, b, c);
  }
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  if (m <= 0 || n <= 0) return;
  scale_c(m, n, beta, c);
  if (k <= 0 || alpha == 0.0f) return;
  // C[i,j] += alpha * sum_p A[p,i] * B[p,j]; stream over p for locality.
  // Parallelize over row blocks of C to avoid write races.
  const auto body = [&](std::size_t lo_sz, std::size_t hi_sz) {
    const auto lo = static_cast<std::int64_t>(lo_sz);
    const auto hi = static_cast<std::int64_t>(hi_sz);
    for (std::int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (std::int64_t i = lo; i < hi; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (m >= 8) {
    parallel_for_chunks(0, static_cast<std::size_t>(m), body, /*min_parallel_trip=*/8);
  } else {
    body(0, static_cast<std::size_t>(m));
  }
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  if (m <= 0 || n <= 0) return;
  scale_c(m, n, beta, c);
  if (k <= 0 || alpha == 0.0f) return;
  const auto body = [&](std::size_t lo_sz, std::size_t hi_sz) {
    const auto lo = static_cast<std::int64_t>(lo_sz);
    const auto hi = static_cast<std::int64_t>(hi_sz);
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        double acc = 0.0;
        for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
        crow[j] += alpha * static_cast<float>(acc);
      }
    }
  };
  if (m >= 4) {
    parallel_for_chunks(0, static_cast<std::size_t>(m), body, /*min_parallel_trip=*/4);
  } else {
    body(0, static_cast<std::size_t>(m));
  }
}

}  // namespace ftpim
