#include "src/tensor/kernels/microkernel.hpp"

#include "src/common/annotations.hpp"
#include "src/tensor/kernels/kernel_params.hpp"

namespace ftpim::kernels {

FTPIM_HOT void micro_kernel_scalar(std::int64_t kc, const float* a_panel, const float* b_panel,
                                   float* c, std::int64_t ldc, std::int64_t mr_eff,
                                   std::int64_t nr_eff) {
  float acc[kMR][kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = a_panel + p * kMR;
    const float* b = b_panel + p * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = a[r];
      for (std::int64_t j = 0; j < kNR; ++j) acc[r][j] += av * b[j];
    }
  }
  if (mr_eff == kMR && nr_eff == kNR) {
    for (std::int64_t r = 0; r < kMR; ++r) {
      float* crow = c + r * ldc;
      for (std::int64_t j = 0; j < kNR; ++j) crow[j] += acc[r][j];
    }
  } else {
    for (std::int64_t r = 0; r < mr_eff; ++r) {
      float* crow = c + r * ldc;
      for (std::int64_t j = 0; j < nr_eff; ++j) crow[j] += acc[r][j];
    }
  }
}

MicroKernel select_micro_kernel(KernelLevel level) noexcept {
  return level == KernelLevel::kAvx2 ? micro_kernel_avx2 : micro_kernel_scalar;
}

}  // namespace ftpim::kernels
