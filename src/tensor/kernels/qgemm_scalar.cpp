#include "src/tensor/kernels/qgemm.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/annotations.hpp"

namespace ftpim::kernels {

void pack_levels(const std::uint8_t* levels, std::int64_t k, std::int64_t n, std::int64_t ldb,
                 std::uint8_t* dst) {
  const std::int64_t pairs = ceil_div(k, 2);
  const std::int64_t panels = ceil_div(n, kQNR);
  std::memset(dst, 0, packed_levels_bytes(k, n));
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    std::uint8_t* panel = dst + jp * pairs * 2 * kQNR;
    const std::int64_t j0 = jp * kQNR;
    const std::int64_t jn = std::min(kQNR, n - j0);
    for (std::int64_t p = 0; p < pairs; ++p) {
      std::uint8_t* row = panel + p * 2 * kQNR;
      const std::uint8_t* b0 = levels + (2 * p) * ldb + j0;
      for (std::int64_t j = 0; j < jn; ++j) row[2 * j] = b0[j];
      if (2 * p + 1 < k) {
        const std::uint8_t* b1 = b0 + ldb;
        for (std::int64_t j = 0; j < jn; ++j) row[2 * j + 1] = b1[j];
      }
    }
  }
}

FTPIM_HOT void qmvm_scalar(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                           std::int64_t lda, const std::uint8_t* packed_b, std::int32_t* c,
                           std::int64_t ldc) {
  const std::int64_t pairs = ceil_div(k, 2);
  const std::int64_t panels = ceil_div(n, kQNR);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    std::int32_t* crow = c + i * ldc;
    for (std::int64_t jp = 0; jp < panels; ++jp) {
      const std::uint8_t* panel = packed_b + jp * pairs * 2 * kQNR;
      const std::int64_t j0 = jp * kQNR;
      const std::int64_t jn = std::min(kQNR, n - j0);
      std::int32_t acc[kQNR] = {};
      for (std::int64_t p = 0; p < pairs; ++p) {
        const std::int32_t a0 = arow[2 * p];
        const std::int32_t a1 = arow[2 * p + 1];
        const std::uint8_t* row = panel + p * 2 * kQNR;
        for (std::int64_t j = 0; j < kQNR; ++j) {
          acc[j] += a0 * row[2 * j] + a1 * row[2 * j + 1];
        }
      }
      for (std::int64_t j = 0; j < jn; ++j) crow[j0 + j] = acc[j];
    }
  }
}

QmvmKernel select_qmvm_kernel(KernelLevel level) noexcept {
  return level == KernelLevel::kAvx2 ? qmvm_avx2 : qmvm_scalar;
}

}  // namespace ftpim::kernels
