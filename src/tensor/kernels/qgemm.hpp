// Int8 quantized MVM kernels — the integer compute core of the quantized
// crossbar inference engine (src/reram/qinfer/).
//
// The operands are what the hardware sees, not floats:
//
//   A   int8 activation codes, row-major [m, k] (symmetric per-batch
//       quantization, |code| <= 127), one row per batch sample;
//   B   uint8 conductance LEVEL INDICES of one crossbar tile, logically
//       [k, n] (k = wordlines, n = bitlines), pre-packed by pack_levels();
//   C   int32 column accumulators, row-major [m, n] (overwritten, not
//       accumulated — the caller applies the ADC transfer per tile and then
//       accumulates across row tiles itself).
//
// Packed-B layout ("k-pair interleave", fixed across kernel levels): columns
// are grouped into kQNR-wide panels; within a panel, K advances in pairs and
// each pair stores 2*kQNR bytes
//
//   panel[jp], pair p, byte 2*j + s  =  B(2*p + s, jp*kQNR + j)   (s in {0,1})
//
// i.e. exactly the operand order _mm256_madd_epi16 consumes after a u8->i16
// widen. Edge columns and an odd trailing K row are zero-filled at pack time;
// a level index of zero contributes nothing to the dot product, so padding
// never changes a result. Weights are static once a tile is programmed, so
// packing runs once per (re)program/fault event — never per MVM.
//
// Determinism: everything here is int8*u8 -> int32 accumulation, which is
// exact and fully associative. Unlike the float GEMM, results are
// bit-identical across BOTH thread counts and kernel levels (scalar vs AVX2)
// — tests assert exact equality, not a tolerance.
//
// Overflow bound: |acc| <= k * 127 * 255 — a 128-wordline tile stays below
// 4.2e6, and even k = 65535 (the packed format's practical ceiling) fits
// int32 with 500x headroom.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/kernels/kernel_params.hpp"

namespace ftpim::kernels {

/// Column-panel width of the packed level layout (one 32-byte k-pair row).
inline constexpr std::int64_t kQNR = 16;

/// Bytes pack_levels() writes for a logical [k, n] level matrix.
[[nodiscard]] constexpr std::size_t packed_levels_bytes(std::int64_t k, std::int64_t n) {
  return static_cast<std::size_t>(ceil_div(n, kQNR) * ceil_div(k, 2) * 2 * kQNR);
}

/// Packs row-major u8 levels[k, n] (leading dimension ldb >= n) into the
/// k-pair interleaved panel layout described above. dst must hold
/// packed_levels_bytes(k, n); padding bytes are zeroed. The panel stride of
/// the layout is ceil(k/2)*2*kQNR — a function of k — so the kernel MUST be
/// invoked with the same k the buffer was packed with.
void pack_levels(const std::uint8_t* levels, std::int64_t k, std::int64_t n, std::int64_t ldb,
                 std::uint8_t* dst);

/// c[i, j] = sum_p a[i*lda + p] * B(p, j), p < k — C overwritten.
/// When k is odd the kernels read a[i*lda + k] as the partner of the last
/// pair: callers must zero-pad each A row to even length (lda >= k + (k & 1)).
using QmvmKernel = void (*)(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                            std::int64_t lda, const std::uint8_t* packed_b, std::int32_t* c,
                            std::int64_t ldc);

/// Portable reference kernel (the FTPIM_KERNEL=scalar path).
void qmvm_scalar(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                 std::int64_t lda, const std::uint8_t* packed_b, std::int32_t* c,
                 std::int64_t ldc);

/// AVX2 kernel: 4-row x 16-column i32 tiles via u8/i8 -> i16 widening and
/// _mm256_madd_epi16 (pairwise i16 multiply-add; never saturates, so any
/// level count up to 256 is exact). Falls back to qmvm_scalar when the TU
/// was built without AVX2; the dispatcher never selects it there.
void qmvm_avx2(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
               std::int64_t lda, const std::uint8_t* packed_b, std::int32_t* c, std::int64_t ldc);

/// Level -> function pointer; follows the same KernelLevel dispatch (CPUID +
/// FTPIM_KERNEL override) as the float micro-kernels.
[[nodiscard]] QmvmKernel select_qmvm_kernel(KernelLevel level) noexcept;

}  // namespace ftpim::kernels
