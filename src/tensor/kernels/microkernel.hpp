// Register-tiled micro-kernels consumed by the packed GEMM macro loops.
//
// Contract (identical for every level):
//
//   C[0:mr_eff, 0:nr_eff] += sum_p a_panel[p*kMR + r] * b_panel[p*kNR + j]
//
// a_panel/b_panel are kMR-row / kNR-column panels produced by pack.hpp,
// zero-padded to the full micro-tile, with alpha already folded into A.
// The kernel accumulates the whole K-slab in registers and performs one
// read-modify-write per C element, so per-element floating-point order is a
// pure function of the global (k-block, k) sequence — never of which thread
// ran the tile or where the mc/nc block boundaries fell. That property is
// what makes gemm results bit-identical at any FTPIM_THREADS.
//
// Edge tiles (mr_eff < kMR or nr_eff < kNR) compute the full padded tile and
// write back only the valid region; padded lanes multiply zeros.
#pragma once

#include <cstdint>

#include "src/tensor/kernels/dispatch.hpp"

namespace ftpim::kernels {

using MicroKernel = void (*)(std::int64_t kc, const float* a_panel, const float* b_panel,
                             float* c, std::int64_t ldc, std::int64_t mr_eff,
                             std::int64_t nr_eff);

/// Portable reference micro-kernel (the FTPIM_KERNEL=scalar path).
void micro_kernel_scalar(std::int64_t kc, const float* a_panel, const float* b_panel, float* c,
                         std::int64_t ldc, std::int64_t mr_eff, std::int64_t nr_eff);

/// AVX2/FMA micro-kernel: 6x16 tile in 12 ymm accumulators. Falls back to
/// the scalar kernel when the translation unit was built without AVX2
/// support (non-x86 targets); the dispatcher never selects it there.
void micro_kernel_avx2(std::int64_t kc, const float* a_panel, const float* b_panel, float* c,
                       std::int64_t ldc, std::int64_t mr_eff, std::int64_t nr_eff);

/// True when micro_kernel_avx2 was actually compiled with AVX2+FMA.
[[nodiscard]] bool kernel_avx2_compiled() noexcept;

/// Level -> function pointer.
[[nodiscard]] MicroKernel select_micro_kernel(KernelLevel level) noexcept;

}  // namespace ftpim::kernels
