#include "src/tensor/kernels/conv_kernels.hpp"

#include <algorithm>

#include "src/common/annotations.hpp"
#include "src/tensor/kernels/gemm_driver.hpp"
#include "src/tensor/kernels/pack_arena.hpp"

namespace ftpim::kernels {
namespace {

/// Pixel-panel width for the dX path: bounds the transient column-gradient
/// slab at col_rows * kPixelTile floats per thread.
constexpr std::int64_t kPixelTile = 512;

/// Scatters dcol[col_rows, npix] (pixels pix0..pix0+npix of the logical
/// column-gradient matrix) back into the [C,H,W] image gradient.
void col2im_range(const float* dcol, const ConvGeometry& g, std::int64_t pix0,
                  std::int64_t npix, float* dx) {
  const std::int64_t ow = g.out_w();
  const std::int64_t khw = g.kernel_h * g.kernel_w;
  const std::int64_t col_rows = g.col_rows();
  for (std::int64_t r = 0; r < col_rows; ++r) {
    const std::int64_t c = r / khw;
    const std::int64_t rem = r % khw;
    const std::int64_t kh = rem / g.kernel_w;
    const std::int64_t kw = rem % g.kernel_w;
    float* plane = dx + c * g.in_h * g.in_w;
    const float* src = dcol + r * npix;
    std::int64_t y = pix0 / ow;
    std::int64_t x = pix0 % ow;
    for (std::int64_t p = 0; p < npix; ++p) {
      const std::int64_t iy = y * g.stride_h - g.pad_h + kh;
      const std::int64_t ix = x * g.stride_w - g.pad_w + kw;
      if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
        plane[iy * g.in_w + ix] += src[p];
      }
      if (++x == ow) {
        x = 0;
        ++y;
      }
    }
  }
}

}  // namespace

FTPIM_HOT void conv_forward_packed(const ConvGeometry& g, const float* weight, std::int64_t out_c,
                                   const float* image, float* out) {
  const PackASource a{weight, g.col_rows(), PackASource::Layout::kRowMajor};
  const PackBSource b{image, 0, &g, PackBSource::Layout::kIm2col};
  gemm_packed(out_c, g.col_cols(), g.col_rows(), 1.0f, a, b, 0.0f, out, g.col_cols());
}

FTPIM_HOT void conv_grad_weight_packed(const ConvGeometry& g, const float* dout,
                                       std::int64_t out_c, const float* image, float* dw) {
  const PackASource a{dout, g.col_cols(), PackASource::Layout::kRowMajor};
  const PackBSource b{image, 0, &g, PackBSource::Layout::kIm2colTrans};
  gemm_packed(out_c, g.col_rows(), g.col_cols(), 1.0f, a, b, 1.0f, dw, g.col_rows());
}

FTPIM_HOT void conv_grad_input_packed(const ConvGeometry& g, const float* weight,
                                      std::int64_t out_c, const float* dout, float* dx) {
  const std::int64_t col_rows = g.col_rows();
  const std::int64_t pixels = g.col_cols();
  PackArena& arena = PackArena::local();
  for (std::int64_t pix0 = 0; pix0 < pixels; pix0 += kPixelTile) {
    const std::int64_t npix = std::min<std::int64_t>(kPixelTile, pixels - pix0);
    float* dcol = arena.scratch_buffer(0, static_cast<std::size_t>(col_rows * npix));
    // dcol[col_rows, npix] = W^T[col_rows, out_c] * dY[:, pix0:pix0+npix]
    const PackASource a{weight, col_rows, PackASource::Layout::kTransposed};
    const PackBSource b{dout + pix0, pixels, nullptr, PackBSource::Layout::kRowMajor};
    gemm_packed(col_rows, npix, out_c, 1.0f, a, b, 0.0f, dcol, npix);
    col2im_range(dcol, g, pix0, npix, dx);
  }
}

}  // namespace ftpim::kernels
