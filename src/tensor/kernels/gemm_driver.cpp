#include "src/tensor/kernels/gemm_driver.hpp"

#include <algorithm>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/tensor/kernels/dispatch.hpp"
#include "src/tensor/kernels/kernel_params.hpp"
#include "src/tensor/kernels/microkernel.hpp"
#include "src/tensor/kernels/pack_arena.hpp"

namespace ftpim::kernels {
namespace {

void scale_rows(float* c, std::int64_t ldc, std::int64_t i_begin, std::int64_t i_end,
                std::int64_t n, float beta) {
  if (beta == 1.0f) return;
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    float* row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(row, row + n, 0.0f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

}  // namespace

FTPIM_HOT void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                           const PackASource& a, const PackBSource& b, float beta, float* c,
                           std::int64_t ldc) {
  FTPIM_CHECK_GE(m, 0);
  FTPIM_CHECK_GE(n, 0);
  FTPIM_CHECK_GE(k, 0);
  FTPIM_CHECK_GE(ldc, n);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    scale_rows(c, ldc, 0, m, n, beta);
    return;
  }

  const MicroKernel uk = select_micro_kernel(active_kernel_level());
  const std::int64_t kc_max = std::min<std::int64_t>(k, kKC);
  const std::int64_t nc_max = std::min<std::int64_t>(n, kNC);
  const std::int64_t mc_max = std::min<std::int64_t>(m, kMC);
  const std::size_t b_elems =
      static_cast<std::size_t>(ceil_div(nc_max, kNR) * kNR * kc_max);
  const std::size_t a_elems =
      static_cast<std::size_t>(ceil_div(mc_max, kMR) * kMR * kc_max);

  // Each worker owns a contiguous range of absolute kMR-aligned micro-row
  // panels of C and runs the full NC/KC loop nest over its rows, packing its
  // own copy of B. Packing work for B is duplicated across workers; with a
  // shared pack the slab would need a barrier per (jc, pc) and the splitter
  // spawns threads per region, so per-worker packs are both simpler and
  // cheaper at the core counts this repo targets.
  const auto worker = [&](std::size_t panel_begin, std::size_t panel_end) {
    const std::int64_t i_begin = static_cast<std::int64_t>(panel_begin) * kMR;
    const std::int64_t i_end =
        std::min<std::int64_t>(m, static_cast<std::int64_t>(panel_end) * kMR);
    if (i_begin >= i_end) return;
    scale_rows(c, ldc, i_begin, i_end, n, beta);

    PackArena& arena = PackArena::local();
    float* bbuf = arena.b_buffer(b_elems);
    float* abuf = arena.a_buffer(a_elems);

    for (std::int64_t jc = 0; jc < n; jc += kNC) {
      const std::int64_t nc = std::min<std::int64_t>(kNC, n - jc);
      for (std::int64_t pc = 0; pc < k; pc += kKC) {
        const std::int64_t kc = std::min<std::int64_t>(kKC, k - pc);
        pack_b_block(b, pc, kc, jc, nc, bbuf);
        for (std::int64_t ic = i_begin; ic < i_end; ic += kMC) {
          const std::int64_t mc = std::min<std::int64_t>(kMC, i_end - ic);
          pack_a_block(a, ic, mc, pc, kc, alpha, abuf);
          for (std::int64_t jr = 0; jr < nc; jr += kNR) {
            const std::int64_t nr_eff = std::min<std::int64_t>(kNR, nc - jr);
            const float* b_panel = bbuf + (jr / kNR) * kc * kNR;
            for (std::int64_t ir = 0; ir < mc; ir += kMR) {
              const std::int64_t mr_eff = std::min<std::int64_t>(kMR, mc - ir);
              uk(kc, abuf + (ir / kMR) * kc * kMR, b_panel,
                 c + (ic + ir) * ldc + jc + jr, ldc, mr_eff, nr_eff);
            }
          }
        }
      }
    }
  };

  const std::int64_t row_panels = ceil_div(m, kMR);
  const bool go_parallel =
      row_panels >= 2 && 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                                 static_cast<double>(k) >=
                             kMinParallelFlops;
  if (go_parallel) {
    parallel_for_chunks(0, static_cast<std::size_t>(row_panels), worker,
                        /*min_parallel_trip=*/2);
  } else {
    worker(0, static_cast<std::size_t>(row_panels));
  }
}

}  // namespace ftpim::kernels
