// AVX2 int8 MVM kernel — with microkernel_avx2.cpp, one of the two TUs in
// the tree allowed raw SIMD intrinsics (simd-intrinsics lint rule confines
// them to src/tensor/kernels/); built with -mavx2 -mfma on x86 (see
// src/CMakeLists.txt). Integer arithmetic is exact, so this kernel is
// bit-identical to qmvm_scalar — the dpbusd-style k-pair layout is consumed
// through u8/i8 -> i16 widening and _mm256_madd_epi16, which cannot
// saturate (two i16 products always fit an i32 lane), unlike the
// _mm256_maddubs_epi16 shortcut that clips at level counts above 128.
#include "src/tensor/kernels/qgemm.hpp"

#include <algorithm>

#include "src/common/annotations.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ftpim::kernels {
namespace {

/// One A k-pair [a(2p), a(2p+1)] widened to i16 and broadcast to every
/// 32-bit lane — the second madd operand for all 16 columns of a panel row.
inline __m256i broadcast_pair(const std::int8_t* a) noexcept {
  const std::uint32_t lo = static_cast<std::uint16_t>(static_cast<std::int16_t>(a[0]));
  const std::uint32_t hi = static_cast<std::uint16_t>(static_cast<std::int16_t>(a[1]));
  return _mm256_set1_epi32(static_cast<std::int32_t>(lo | (hi << 16)));
}

}  // namespace

FTPIM_HOT void qmvm_avx2(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                         std::int64_t lda, const std::uint8_t* packed_b, std::int32_t* c,
                         std::int64_t ldc) {
  const std::int64_t pairs = ceil_div(k, 2);
  const std::int64_t panels = ceil_div(n, kQNR);
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::uint8_t* panel = packed_b + jp * pairs * 2 * kQNR;
    const std::int64_t j0 = jp * kQNR;
    const std::int64_t jn = std::min<std::int64_t>(kQNR, n - j0);
    std::int64_t i = 0;
    // 4-row main loop: the widened B pair row is reused by four A rows.
    for (; i + 4 <= m; i += 4) {
      const std::int8_t* a0 = a + (i + 0) * lda;
      const std::int8_t* a1 = a + (i + 1) * lda;
      const std::int8_t* a2 = a + (i + 2) * lda;
      const std::int8_t* a3 = a + (i + 3) * lda;
      __m256i r0a = _mm256_setzero_si256(), r0b = _mm256_setzero_si256();
      __m256i r1a = _mm256_setzero_si256(), r1b = _mm256_setzero_si256();
      __m256i r2a = _mm256_setzero_si256(), r2b = _mm256_setzero_si256();
      __m256i r3a = _mm256_setzero_si256(), r3b = _mm256_setzero_si256();
      for (std::int64_t p = 0; p < pairs; ++p) {
        const __m256i bytes =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(panel + p * 2 * kQNR));
        const __m256i blo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(bytes));
        const __m256i bhi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(bytes, 1));
        __m256i av;
        av = broadcast_pair(a0 + 2 * p);
        r0a = _mm256_add_epi32(r0a, _mm256_madd_epi16(blo, av));
        r0b = _mm256_add_epi32(r0b, _mm256_madd_epi16(bhi, av));
        av = broadcast_pair(a1 + 2 * p);
        r1a = _mm256_add_epi32(r1a, _mm256_madd_epi16(blo, av));
        r1b = _mm256_add_epi32(r1b, _mm256_madd_epi16(bhi, av));
        av = broadcast_pair(a2 + 2 * p);
        r2a = _mm256_add_epi32(r2a, _mm256_madd_epi16(blo, av));
        r2b = _mm256_add_epi32(r2b, _mm256_madd_epi16(bhi, av));
        av = broadcast_pair(a3 + 2 * p);
        r3a = _mm256_add_epi32(r3a, _mm256_madd_epi16(blo, av));
        r3b = _mm256_add_epi32(r3b, _mm256_madd_epi16(bhi, av));
      }
      if (jn == kQNR) {
        std::int32_t* crow = c + i * ldc + j0;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), r0a);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), r0b);
        crow += ldc;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), r1a);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), r1b);
        crow += ldc;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), r2a);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), r2b);
        crow += ldc;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), r3a);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), r3b);
      } else {
        // Edge panel: spill the full tile, copy the valid columns. The
        // accumulation arithmetic is identical to the full-width path.
        alignas(32) std::int32_t buf[4 * kQNR];
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 0), r0a);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8), r0b);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 16), r1a);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 24), r1b);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 32), r2a);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 40), r2b);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 48), r3a);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 56), r3b);
        for (std::int64_t r = 0; r < 4; ++r) {
          std::int32_t* crow = c + (i + r) * ldc + j0;
          for (std::int64_t j = 0; j < jn; ++j) crow[j] = buf[r * kQNR + j];
        }
      }
    }
    for (; i < m; ++i) {
      const std::int8_t* arow = a + i * lda;
      __m256i ra = _mm256_setzero_si256(), rb = _mm256_setzero_si256();
      for (std::int64_t p = 0; p < pairs; ++p) {
        const __m256i bytes =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(panel + p * 2 * kQNR));
        const __m256i blo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(bytes));
        const __m256i bhi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(bytes, 1));
        const __m256i av = broadcast_pair(arow + 2 * p);
        ra = _mm256_add_epi32(ra, _mm256_madd_epi16(blo, av));
        rb = _mm256_add_epi32(rb, _mm256_madd_epi16(bhi, av));
      }
      if (jn == kQNR) {
        std::int32_t* crow = c + i * ldc + j0;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), ra);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), rb);
      } else {
        alignas(32) std::int32_t buf[kQNR];
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf), ra);
        _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8), rb);
        std::int32_t* crow = c + i * ldc + j0;
        for (std::int64_t j = 0; j < jn; ++j) crow[j] = buf[j];
      }
    }
  }
}

}  // namespace ftpim::kernels

#else  // portable fallback for builds without AVX2

namespace ftpim::kernels {

FTPIM_HOT void qmvm_avx2(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                         std::int64_t lda, const std::uint8_t* packed_b, std::int32_t* c,
                         std::int64_t ldc) {
  qmvm_scalar(m, n, k, a, lda, packed_b, c, ldc);
}

}  // namespace ftpim::kernels

#endif
