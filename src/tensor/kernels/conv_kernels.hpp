// Convolution entry points over the packed GEMM backend.
//
// All three operate on a single NCHW sample and never materialize the full
// [C*kh*kw, oh*ow] im2col patch matrix:
//   - forward and dW gather patches inside pack_b_block (kIm2col /
//     kIm2colTrans layouts), so the patch matrix exists only as transient
//     KC x NR panels in the per-thread arena;
//   - dX blocks over pixel panels: a [col_rows, tile] column-gradient slab is
//     computed per panel and scattered with col2im_range before the next.
//
// Callers run these per-sample (typically under a batch-level parallel_for,
// where the nested GEMM degrades to serial — per-sample results are then
// independent of the batch partition, which is what makes Conv2d forward and
// backward bit-identical across FTPIM_THREADS).
#pragma once

#include <cstdint>

#include "src/tensor/im2col.hpp"

namespace ftpim::kernels {

/// out[out_c, oh*ow] = weight[out_c, col_rows] * patches(image).
void conv_forward_packed(const ConvGeometry& g, const float* weight, std::int64_t out_c,
                         const float* image, float* out);

/// dw[out_c, col_rows] += dout[out_c, oh*ow] * patches(image)^T.
void conv_grad_weight_packed(const ConvGeometry& g, const float* dout, std::int64_t out_c,
                             const float* image, float* dw);

/// dx[C,H,W] += col2im(weight^T * dout), pixel-panel blocked. The caller
/// must pass a zeroed (or accumulation-target) dx.
void conv_grad_input_packed(const ConvGeometry& g, const float* weight, std::int64_t out_c,
                            const float* dout, float* dx);

}  // namespace ftpim::kernels
