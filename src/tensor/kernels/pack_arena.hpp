// Per-thread reusable scratch for the packed kernel backend.
//
// Pack buffers are requested on every gemm call but the backing storage is
// thread-local and grows monotonically, so steady-state serving and
// Monte-Carlo evaluation hot paths perform zero heap allocations: a worker
// thread's first conv/gemm sizes the buffers, every later call reuses them.
//
// Slots:
//   a_buffer / b_buffer   packed A / B panels inside gemm_packed
//   scratch_buffer(slot)  caller-side staging (conv dX column panels,
//                         crossbar input slices / column currents). Distinct
//                         slots never alias; gemm_packed only touches a/b,
//                         so scratch contents survive a nested gemm call.
//   byte/i32/i64_buffer   integer staging for the quantized crossbar path
//                         (int8 activation codes, per-tile i32 column
//                         accumulators, i64 differential totals). Typed slots
//                         are independent of the float slots and of each
//                         other, so the quantized MVM can nest inside a
//                         Conv2d hook that holds float scratch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/annotations.hpp"

namespace ftpim::kernels {

class PackArena {
 public:
  static constexpr int kScratchSlots = 4;
  static constexpr int kIntSlots = 2;

  /// The calling thread's arena (thread_local singleton).
  FTPIM_HOT [[nodiscard]] static PackArena& local();

  FTPIM_HOT [[nodiscard]] float* a_buffer(std::size_t n) { return grow(a_, n); }
  FTPIM_HOT [[nodiscard]] float* b_buffer(std::size_t n) { return grow(b_, n); }
  FTPIM_HOT [[nodiscard]] float* scratch_buffer(int slot, std::size_t n);
  FTPIM_HOT [[nodiscard]] std::uint8_t* byte_buffer(int slot, std::size_t n);
  FTPIM_HOT [[nodiscard]] std::int32_t* i32_buffer(int slot, std::size_t n);
  FTPIM_HOT [[nodiscard]] std::int64_t* i64_buffer(int slot, std::size_t n);

 private:
  /// Monotonic growth is the acknowledged slow path: it only runs the first
  /// time a thread sees a new problem size; steady state never reallocates.
  FTPIM_COLD static float* grow(std::vector<float>& buf, std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return buf.data();
  }
  template <typename T>
  FTPIM_COLD static T* grow_int(std::vector<T>& buf, std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return buf.data();
  }

  std::vector<float> a_;
  std::vector<float> b_;
  std::vector<float> scratch_[kScratchSlots];
  std::vector<std::uint8_t> bytes_[kIntSlots];
  std::vector<std::int32_t> i32_[kIntSlots];
  std::vector<std::int64_t> i64_[kIntSlots];
};

}  // namespace ftpim::kernels
