// Per-thread reusable scratch for the packed kernel backend.
//
// Pack buffers are requested on every gemm call but the backing storage is
// thread-local and grows monotonically, so steady-state serving and
// Monte-Carlo evaluation hot paths perform zero heap allocations: a worker
// thread's first conv/gemm sizes the buffers, every later call reuses them.
//
// Slots:
//   a_buffer / b_buffer   packed A / B panels inside gemm_packed
//   scratch_buffer(slot)  caller-side staging (conv dX column panels,
//                         crossbar input slices / column currents). Distinct
//                         slots never alias; gemm_packed only touches a/b,
//                         so scratch contents survive a nested gemm call.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/annotations.hpp"

namespace ftpim::kernels {

class PackArena {
 public:
  static constexpr int kScratchSlots = 4;

  /// The calling thread's arena (thread_local singleton).
  FTPIM_HOT [[nodiscard]] static PackArena& local();

  FTPIM_HOT [[nodiscard]] float* a_buffer(std::size_t n) { return grow(a_, n); }
  FTPIM_HOT [[nodiscard]] float* b_buffer(std::size_t n) { return grow(b_, n); }
  FTPIM_HOT [[nodiscard]] float* scratch_buffer(int slot, std::size_t n);

 private:
  /// Monotonic growth is the acknowledged slow path: it only runs the first
  /// time a thread sees a new problem size; steady state never reallocates.
  FTPIM_COLD static float* grow(std::vector<float>& buf, std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return buf.data();
  }

  std::vector<float> a_;
  std::vector<float> b_;
  std::vector<float> scratch_[kScratchSlots];
};

}  // namespace ftpim::kernels
