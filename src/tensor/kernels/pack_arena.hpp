// Per-thread reusable scratch for the packed kernel backend.
//
// Pack buffers are requested on every gemm call but the backing storage is
// thread-local and grows monotonically, so steady-state serving and
// Monte-Carlo evaluation hot paths perform zero heap allocations: a worker
// thread's first conv/gemm sizes the buffers, every later call reuses them.
//
// Slots:
//   a_buffer / b_buffer   packed A / B panels inside gemm_packed
//   scratch_buffer(slot)  caller-side staging (conv dX column panels,
//                         crossbar input slices / column currents). Distinct
//                         slots never alias; gemm_packed only touches a/b,
//                         so scratch contents survive a nested gemm call.
#pragma once

#include <cstddef>
#include <vector>

namespace ftpim::kernels {

class PackArena {
 public:
  static constexpr int kScratchSlots = 4;

  /// The calling thread's arena (thread_local singleton).
  [[nodiscard]] static PackArena& local();

  [[nodiscard]] float* a_buffer(std::size_t n) { return grow(a_, n); }
  [[nodiscard]] float* b_buffer(std::size_t n) { return grow(b_, n); }
  [[nodiscard]] float* scratch_buffer(int slot, std::size_t n);

 private:
  static float* grow(std::vector<float>& buf, std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return buf.data();
  }

  std::vector<float> a_;
  std::vector<float> b_;
  std::vector<float> scratch_[kScratchSlots];
};

}  // namespace ftpim::kernels
