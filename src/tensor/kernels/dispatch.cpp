#include "src/tensor/kernels/dispatch.hpp"

#include <atomic>
#include <cstring>
#include <string>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"
#include "src/common/config.hpp"
#include "src/tensor/kernels/microkernel.hpp"

namespace ftpim::kernels {
namespace {

// Test/bench override. -1 = none. Same release/acquire single-word protocol
// as the num_threads override (see src/common/parallel.cpp): concurrent
// set + read is formally race-free, and dispatches already in flight keep
// the level they read at entry.
std::atomic<int> g_level_override{-1};

bool cpu_has_avx2_fma() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// One-time FTPIM_KERNEL env resolution behind active_kernel_level()'s magic
/// static — the std::string allocation happens exactly once per process.
/// Strict: an unknown level name throws instead of silently picking `best`.
FTPIM_COLD KernelLevel resolve_default_kernel_level() {
  const KernelLevel best = avx2_available() ? KernelLevel::kAvx2 : KernelLevel::kScalar;
  const std::string env = env_string("FTPIM_KERNEL", "");
  return parse_kernel_env_strict(env.empty() ? nullptr : env.c_str(), best);
}

}  // namespace

bool avx2_available() noexcept {
  static const bool available = kernel_avx2_compiled() && cpu_has_avx2_fma();
  return available;
}

KernelLevel parse_kernel_env(const char* value, KernelLevel fallback) noexcept {
  if (value == nullptr) return fallback;
  if (std::strcmp(value, "scalar") == 0) return KernelLevel::kScalar;
  if (std::strcmp(value, "avx2") == 0) {
    return avx2_available() ? KernelLevel::kAvx2 : KernelLevel::kScalar;
  }
  return fallback;
}

KernelLevel parse_kernel_env_strict(const char* value, KernelLevel fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  FTPIM_CHECK(std::strcmp(value, "scalar") == 0 || std::strcmp(value, "avx2") == 0,
              "FTPIM_KERNEL: '%s' is not a kernel level (scalar|avx2)", value);
  return parse_kernel_env(value, fallback);
}

FTPIM_HOT KernelLevel active_kernel_level() {
  const int override_level = g_level_override.load(std::memory_order_acquire);
  if (override_level >= 0) return static_cast<KernelLevel>(override_level);
  // Magic-static init is thread-safe; FTPIM_KERNEL is read exactly once.
  static const KernelLevel resolved = resolve_default_kernel_level();
  return resolved;
}

void set_kernel_level(KernelLevel level) noexcept {
  if (level == KernelLevel::kAvx2 && !avx2_available()) level = KernelLevel::kScalar;
  g_level_override.store(static_cast<int>(level), std::memory_order_release);
}

void clear_kernel_level_override() noexcept {
  g_level_override.store(-1, std::memory_order_release);
}

const char* kernel_level_name(KernelLevel level) noexcept {
  return level == KernelLevel::kAvx2 ? "avx2" : "scalar";
}

}  // namespace ftpim::kernels
