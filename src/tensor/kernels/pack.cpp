#include "src/tensor/kernels/pack.hpp"

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"
#include "src/tensor/kernels/kernel_params.hpp"

namespace ftpim::kernels {
namespace {

void pack_b_matrix(const PackBSource& src, std::int64_t p0, std::int64_t kc, std::int64_t j0,
                   std::int64_t nc, float* dst) {
  const std::int64_t panels = ceil_div(nc, kNR);
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::int64_t cols = std::min<std::int64_t>(kNR, nc - jp * kNR);
    float* out = dst + jp * kc * kNR;
    if (src.layout == PackBSource::Layout::kRowMajor) {
      const float* base = src.data + p0 * src.ld + j0 + jp * kNR;
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* row = base + p * src.ld;
        float* o = out + p * kNR;
        for (std::int64_t j = 0; j < cols; ++j) o[j] = row[j];
        for (std::int64_t j = cols; j < kNR; ++j) o[j] = 0.0f;
      }
    } else {  // kTransposed: B(p,j) = data[j*ld + p]
      const float* base = src.data + (j0 + jp * kNR) * src.ld + p0;
      for (std::int64_t p = 0; p < kc; ++p) {
        float* o = out + p * kNR;
        for (std::int64_t j = 0; j < cols; ++j) o[j] = base[j * src.ld + p];
        for (std::int64_t j = cols; j < kNR; ++j) o[j] = 0.0f;
      }
    }
  }
}

// Forward-conv layout: B(p = patch row, j = output pixel). Gathers straight
// from the NCHW image — the fused-im2col half of the backend.
void pack_b_im2col(const PackBSource& src, std::int64_t p0, std::int64_t kc, std::int64_t j0,
                   std::int64_t nc, float* dst) {
  const ConvGeometry& g = *src.geom;
  const std::int64_t ow = g.out_w();
  const std::int64_t khw = g.kernel_h * g.kernel_w;
  const std::int64_t panels = ceil_div(nc, kNR);
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::int64_t cols = std::min<std::int64_t>(kNR, nc - jp * kNR);
    float* out = dst + jp * kc * kNR;
    const std::int64_t pix0 = j0 + jp * kNR;
    for (std::int64_t p = 0; p < kc; ++p) {
      const std::int64_t rp = p0 + p;
      const std::int64_t c = rp / khw;
      const std::int64_t rem = rp % khw;
      const std::int64_t kh = rem / g.kernel_w;
      const std::int64_t kw = rem % g.kernel_w;
      const float* plane = src.data + c * g.in_h * g.in_w;
      std::int64_t y = pix0 / ow;
      std::int64_t x = pix0 % ow;
      float* o = out + p * kNR;
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::int64_t iy = y * g.stride_h - g.pad_h + kh;
        const std::int64_t ix = x * g.stride_w - g.pad_w + kw;
        const bool inside = iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
        o[j] = inside ? plane[iy * g.in_w + ix] : 0.0f;
        if (++x == ow) {
          x = 0;
          ++y;
        }
      }
      for (std::int64_t j = cols; j < kNR; ++j) o[j] = 0.0f;
    }
  }
}

// dW layout: B(p = output pixel, j = patch row) — the patch matrix used
// transposed, still gathered from the image with no intermediate buffer.
void pack_b_im2col_trans(const PackBSource& src, std::int64_t p0, std::int64_t kc,
                         std::int64_t j0, std::int64_t nc, float* dst) {
  const ConvGeometry& g = *src.geom;
  const std::int64_t ow = g.out_w();
  const std::int64_t khw = g.kernel_h * g.kernel_w;
  const std::int64_t panels = ceil_div(nc, kNR);
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::int64_t cols = std::min<std::int64_t>(kNR, nc - jp * kNR);
    float* out = dst + jp * kc * kNR;
    // Decompose this panel's patch rows once.
    const float* plane[kNR];
    std::int64_t kh[kNR];
    std::int64_t kw[kNR];
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::int64_t rj = j0 + jp * kNR + j;
      const std::int64_t c = rj / khw;
      const std::int64_t rem = rj % khw;
      plane[j] = src.data + c * g.in_h * g.in_w;
      kh[j] = rem / g.kernel_w;
      kw[j] = rem % g.kernel_w;
    }
    std::int64_t y = p0 / ow;
    std::int64_t x = p0 % ow;
    for (std::int64_t p = 0; p < kc; ++p) {
      float* o = out + p * kNR;
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::int64_t iy = y * g.stride_h - g.pad_h + kh[j];
        const std::int64_t ix = x * g.stride_w - g.pad_w + kw[j];
        const bool inside = iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
        o[j] = inside ? plane[j][iy * g.in_w + ix] : 0.0f;
      }
      for (std::int64_t j = cols; j < kNR; ++j) o[j] = 0.0f;
      if (++x == ow) {
        x = 0;
        ++y;
      }
    }
  }
}

}  // namespace

FTPIM_HOT void pack_a_block(const PackASource& src, std::int64_t i0, std::int64_t mc,
                            std::int64_t p0, std::int64_t kc, float alpha, float* dst) {
  FTPIM_DCHECK(src.data != nullptr);
  const std::int64_t panels = ceil_div(mc, kMR);
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    const std::int64_t rows = std::min<std::int64_t>(kMR, mc - ip * kMR);
    float* out = dst + ip * kc * kMR;
    if (src.layout == PackASource::Layout::kRowMajor) {
      const float* base = src.data + (i0 + ip * kMR) * src.ld + p0;
      for (std::int64_t p = 0; p < kc; ++p) {
        float* o = out + p * kMR;
        for (std::int64_t r = 0; r < rows; ++r) o[r] = alpha * base[r * src.ld + p];
        for (std::int64_t r = rows; r < kMR; ++r) o[r] = 0.0f;
      }
    } else {  // kTransposed: A(i,p) = data[p*ld + i]
      const float* base = src.data + p0 * src.ld + i0 + ip * kMR;
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* col = base + p * src.ld;
        float* o = out + p * kMR;
        for (std::int64_t r = 0; r < rows; ++r) o[r] = alpha * col[r];
        for (std::int64_t r = rows; r < kMR; ++r) o[r] = 0.0f;
      }
    }
  }
}

FTPIM_HOT void pack_b_block(const PackBSource& src, std::int64_t p0, std::int64_t kc,
                            std::int64_t j0, std::int64_t nc, float* dst) {
  FTPIM_DCHECK(src.data != nullptr);
  switch (src.layout) {
    case PackBSource::Layout::kRowMajor:
    case PackBSource::Layout::kTransposed:
      pack_b_matrix(src, p0, kc, j0, nc, dst);
      break;
    case PackBSource::Layout::kIm2col:
      FTPIM_DCHECK(src.geom != nullptr);
      pack_b_im2col(src, p0, kc, j0, nc, dst);
      break;
    case PackBSource::Layout::kIm2colTrans:
      FTPIM_DCHECK(src.geom != nullptr);
      pack_b_im2col_trans(src, p0, kc, j0, nc, dst);
      break;
  }
}

}  // namespace ftpim::kernels
