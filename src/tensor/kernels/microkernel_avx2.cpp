// With qgemm_avx2.cpp, one of the two translation units in the tree allowed
// to use raw SIMD intrinsics (enforced by the simd-intrinsics lint rule);
// built with -mavx2 -mfma on x86 (see src/CMakeLists.txt). Everything else
// reaches vector code through the dispatch in dispatch.hpp.
#include "src/tensor/kernels/microkernel.hpp"

#include "src/common/annotations.hpp"
#include "src/tensor/kernels/kernel_params.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace ftpim::kernels {

bool kernel_avx2_compiled() noexcept { return true; }

FTPIM_HOT void micro_kernel_avx2(std::int64_t kc, const float* a_panel, const float* b_panel,
                                 float* c, std::int64_t ldc, std::int64_t mr_eff,
                                 std::int64_t nr_eff) {
  // 6x16 tile: two ymm columns per row, 12 accumulators + 2 B loads + 1
  // broadcast = 15 of the 16 ymm registers.
  __m256 c0a = _mm256_setzero_ps(), c0b = _mm256_setzero_ps();
  __m256 c1a = _mm256_setzero_ps(), c1b = _mm256_setzero_ps();
  __m256 c2a = _mm256_setzero_ps(), c2b = _mm256_setzero_ps();
  __m256 c3a = _mm256_setzero_ps(), c3b = _mm256_setzero_ps();
  __m256 c4a = _mm256_setzero_ps(), c4b = _mm256_setzero_ps();
  __m256 c5a = _mm256_setzero_ps(), c5b = _mm256_setzero_ps();

  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = a_panel + p * kMR;
    const float* b = b_panel + p * kNR;
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    c0a = _mm256_fmadd_ps(av, b0, c0a);
    c0b = _mm256_fmadd_ps(av, b1, c0b);
    av = _mm256_broadcast_ss(a + 1);
    c1a = _mm256_fmadd_ps(av, b0, c1a);
    c1b = _mm256_fmadd_ps(av, b1, c1b);
    av = _mm256_broadcast_ss(a + 2);
    c2a = _mm256_fmadd_ps(av, b0, c2a);
    c2b = _mm256_fmadd_ps(av, b1, c2b);
    av = _mm256_broadcast_ss(a + 3);
    c3a = _mm256_fmadd_ps(av, b0, c3a);
    c3b = _mm256_fmadd_ps(av, b1, c3b);
    av = _mm256_broadcast_ss(a + 4);
    c4a = _mm256_fmadd_ps(av, b0, c4a);
    c4b = _mm256_fmadd_ps(av, b1, c4b);
    av = _mm256_broadcast_ss(a + 5);
    c5a = _mm256_fmadd_ps(av, b0, c5a);
    c5b = _mm256_fmadd_ps(av, b1, c5b);
  }

  if (mr_eff == kMR && nr_eff == kNR) {
    float* r0 = c;
    float* r1 = c + ldc;
    float* r2 = c + 2 * ldc;
    float* r3 = c + 3 * ldc;
    float* r4 = c + 4 * ldc;
    float* r5 = c + 5 * ldc;
    _mm256_storeu_ps(r0, _mm256_add_ps(_mm256_loadu_ps(r0), c0a));
    _mm256_storeu_ps(r0 + 8, _mm256_add_ps(_mm256_loadu_ps(r0 + 8), c0b));
    _mm256_storeu_ps(r1, _mm256_add_ps(_mm256_loadu_ps(r1), c1a));
    _mm256_storeu_ps(r1 + 8, _mm256_add_ps(_mm256_loadu_ps(r1 + 8), c1b));
    _mm256_storeu_ps(r2, _mm256_add_ps(_mm256_loadu_ps(r2), c2a));
    _mm256_storeu_ps(r2 + 8, _mm256_add_ps(_mm256_loadu_ps(r2 + 8), c2b));
    _mm256_storeu_ps(r3, _mm256_add_ps(_mm256_loadu_ps(r3), c3a));
    _mm256_storeu_ps(r3 + 8, _mm256_add_ps(_mm256_loadu_ps(r3 + 8), c3b));
    _mm256_storeu_ps(r4, _mm256_add_ps(_mm256_loadu_ps(r4), c4a));
    _mm256_storeu_ps(r4 + 8, _mm256_add_ps(_mm256_loadu_ps(r4 + 8), c4b));
    _mm256_storeu_ps(r5, _mm256_add_ps(_mm256_loadu_ps(r5), c5a));
    _mm256_storeu_ps(r5 + 8, _mm256_add_ps(_mm256_loadu_ps(r5 + 8), c5b));
    return;
  }

  // Edge tile: spill the padded tile, write back only the valid region.
  // The accumulation arithmetic is identical to the full-tile path, so a
  // C element's value never depends on whether it sat in an edge tile.
  alignas(32) float buf[kMR * kNR];
  _mm256_store_ps(buf + 0 * kNR, c0a);
  _mm256_store_ps(buf + 0 * kNR + 8, c0b);
  _mm256_store_ps(buf + 1 * kNR, c1a);
  _mm256_store_ps(buf + 1 * kNR + 8, c1b);
  _mm256_store_ps(buf + 2 * kNR, c2a);
  _mm256_store_ps(buf + 2 * kNR + 8, c2b);
  _mm256_store_ps(buf + 3 * kNR, c3a);
  _mm256_store_ps(buf + 3 * kNR + 8, c3b);
  _mm256_store_ps(buf + 4 * kNR, c4a);
  _mm256_store_ps(buf + 4 * kNR + 8, c4b);
  _mm256_store_ps(buf + 5 * kNR, c5a);
  _mm256_store_ps(buf + 5 * kNR + 8, c5b);
  for (std::int64_t r = 0; r < mr_eff; ++r) {
    float* crow = c + r * ldc;
    for (std::int64_t j = 0; j < nr_eff; ++j) crow[j] += buf[r * kNR + j];
  }
}

}  // namespace ftpim::kernels

#else  // portable fallback for builds without AVX2/FMA

namespace ftpim::kernels {

bool kernel_avx2_compiled() noexcept { return false; }

FTPIM_HOT void micro_kernel_avx2(std::int64_t kc, const float* a_panel, const float* b_panel,
                                 float* c, std::int64_t ldc, std::int64_t mr_eff,
                                 std::int64_t nr_eff) {
  micro_kernel_scalar(kc, a_panel, b_panel, c, ldc, mr_eff, nr_eff);
}

}  // namespace ftpim::kernels

#endif
