// Packed blocked GEMM driver — the single compute entry point behind
// ftpim::gemm / gemm_at / gemm_bt and the fused Conv2d path.
//
// Computes C = alpha * A * B + beta * C where A and B are *logical* operands
// described by PackASource / PackBSource: transposes and im2col patch
// gathering are absorbed into packing, so one macro-loop nest and one
// micro-kernel (scalar or AVX2, chosen by runtime dispatch) serve every
// caller.
//
// Structure is the classic GotoBLAS five-loop nest: NC -> KC slabs with B
// packed into kNR-column panels, MC blocks of A packed into kMR-row panels
// (alpha folded in), and an MR x NR register-tiled micro-kernel at the core.
//
// Determinism contract: results are bit-identical for any FTPIM_THREADS value
// at a fixed dispatch level. Work is split over absolute kMR-aligned
// micro-row panels of C, each owned by exactly one worker; for every C
// element, beta scaling happens once up front and K-contributions accumulate
// in ascending (pc, p) order with one read-modify-write per KC slab — a pure
// function of the problem, not of the thread partition. Results are NOT
// bit-identical *across* dispatch levels (the AVX2 kernel contracts
// multiply+add into FMA).
#pragma once

#include <cstdint>

#include "src/tensor/kernels/pack.hpp"

namespace ftpim::kernels {

/// C[m,n] = alpha * A[m,k] * B[k,n] + beta * C, C row-major with leading
/// dimension ldc (>= n). A and B layouts per their sources.
void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const PackASource& a, const PackBSource& b, float beta, float* c,
                 std::int64_t ldc);

}  // namespace ftpim::kernels
