#include "src/tensor/kernels/pack_arena.hpp"

#include "src/common/check.hpp"

namespace ftpim::kernels {

FTPIM_HOT PackArena& PackArena::local() {
  thread_local PackArena arena;
  return arena;
}

FTPIM_HOT float* PackArena::scratch_buffer(int slot, std::size_t n) {
  FTPIM_DCHECK_GE(slot, 0);
  FTPIM_DCHECK_LT(slot, kScratchSlots);
  return grow(scratch_[slot], n);
}

}  // namespace ftpim::kernels
