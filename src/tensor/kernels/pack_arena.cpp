#include "src/tensor/kernels/pack_arena.hpp"

#include "src/common/check.hpp"

namespace ftpim::kernels {

FTPIM_HOT PackArena& PackArena::local() {
  thread_local PackArena arena;
  return arena;
}

FTPIM_HOT float* PackArena::scratch_buffer(int slot, std::size_t n) {
  FTPIM_DCHECK_GE(slot, 0);
  FTPIM_DCHECK_LT(slot, kScratchSlots);
  return grow(scratch_[slot], n);
}

FTPIM_HOT std::uint8_t* PackArena::byte_buffer(int slot, std::size_t n) {
  FTPIM_DCHECK_GE(slot, 0);
  FTPIM_DCHECK_LT(slot, kIntSlots);
  return grow_int(bytes_[slot], n);
}

FTPIM_HOT std::int32_t* PackArena::i32_buffer(int slot, std::size_t n) {
  FTPIM_DCHECK_GE(slot, 0);
  FTPIM_DCHECK_LT(slot, kIntSlots);
  return grow_int(i32_[slot], n);
}

FTPIM_HOT std::int64_t* PackArena::i64_buffer(int slot, std::size_t n) {
  FTPIM_DCHECK_GE(slot, 0);
  FTPIM_DCHECK_LT(slot, kIntSlots);
  return grow_int(i64_[slot], n);
}

}  // namespace ftpim::kernels
