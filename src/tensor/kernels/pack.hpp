// Panel packing for the packed GEMM backend.
//
// pack_a_block / pack_b_block copy a cache block of the logical operands
// into micro-kernel order:
//
//   A~  kMR-row panels, column-major within a panel:
//         dst[(ip*kc + p)*kMR + r] = alpha * A(i0 + ip*kMR + r, p0 + p)
//   B~  kNR-column panels, row-major within a panel:
//         dst[(jp*kc + p)*kNR + j] = B(p0 + p, j0 + jp*kNR + j)
//
// Rows/columns beyond the operand edge are zero-filled so the micro-kernel
// always runs a full tile. Transposes are absorbed here (the micro-kernel
// never knows), and so is im2col: the kIm2col / kIm2colTrans layouts gather
// convolution patches straight from the NCHW image, which is how Conv2d
// runs without ever materializing the [C*kh*kw, oh*ow] patch matrix.
#pragma once

#include <cstdint>

#include "src/tensor/im2col.hpp"

namespace ftpim::kernels {

/// Logical A operand: element A(i, p), i in [0,m), p in [0,k).
struct PackASource {
  enum class Layout {
    kRowMajor,    ///< A(i,p) = data[i*ld + p]        (data is [m,k], ld >= k)
    kTransposed,  ///< A(i,p) = data[p*ld + i]        (data is [k,m], ld >= m)
  };
  const float* data = nullptr;
  std::int64_t ld = 0;
  Layout layout = Layout::kRowMajor;
};

/// Logical B operand: element B(p, j), p in [0,k), j in [0,n).
struct PackBSource {
  enum class Layout {
    kRowMajor,     ///< B(p,j) = data[p*ld + j]       (data is [k,n], ld >= n)
    kTransposed,   ///< B(p,j) = data[j*ld + p]       (data is [n,k], ld >= k)
    kIm2col,       ///< B(p,j) = patch(row=p, pixel=j) of the image (forward)
    kIm2colTrans,  ///< B(p,j) = patch(row=j, pixel=p) of the image (dW)
  };
  const float* data = nullptr;         ///< matrix data, or NCHW image plane set
  std::int64_t ld = 0;                 ///< unused by the im2col layouts
  const ConvGeometry* geom = nullptr;  ///< required by the im2col layouts
  Layout layout = Layout::kRowMajor;
};

/// Packs A(i0:i0+mc, p0:p0+kc), folding alpha, into ceil(mc/kMR) panels.
void pack_a_block(const PackASource& src, std::int64_t i0, std::int64_t mc, std::int64_t p0,
                  std::int64_t kc, float alpha, float* dst);

/// Packs B(p0:p0+kc, j0:j0+nc) into ceil(nc/kNR) panels.
void pack_b_block(const PackBSource& src, std::int64_t p0, std::int64_t kc, std::int64_t j0,
                  std::int64_t nc, float* dst);

}  // namespace ftpim::kernels
