// Runtime kernel-level dispatch for the packed GEMM backend.
//
// The backend ships one micro-kernel per level; everything above it (packing,
// macro loops, parallel partitioning) is level-independent. The active level
// is resolved once from the environment and the CPU:
//
//   FTPIM_KERNEL=scalar   force the portable fallback (CI runs this leg so
//                         the fallback stays tested on AVX2 machines)
//   FTPIM_KERNEL=avx2     request the AVX2/FMA micro-kernel; silently falls
//                         back to scalar when the CPU or build lacks support
//   (unset)               best level the host supports
//
// Results are bit-identical across FTPIM_THREADS for a fixed level, but NOT
// across levels (FMA contracts the multiply-add rounding), which is why the
// level is pinned per process rather than per call. Tests switch levels at
// runtime through set_kernel_level(); the override is a release/acquire
// atomic following the set_num_threads() convention.
#pragma once

namespace ftpim::kernels {

enum class KernelLevel : int {
  kScalar = 0,  ///< portable C++, any target
  kAvx2 = 1,    ///< AVX2 + FMA register-tiled micro-kernel
};

/// The level every gemm/conv entry point will use right now: the test
/// override if set, else the cached FTPIM_KERNEL/CPUID resolution. The first
/// call resolves FTPIM_KERNEL strictly — an unknown value throws
/// ContractViolation (see parse_kernel_env_strict) instead of silently
/// running the best level under a name the user never asked for.
[[nodiscard]] KernelLevel active_kernel_level();

/// Overrides the dispatch level at runtime (for tests comparing levels and
/// benches recording both). Requesting kAvx2 on a host without AVX2/FMA
/// support pins kScalar instead — the override never selects an
/// unrunnable kernel.
void set_kernel_level(KernelLevel level) noexcept;

/// Clears the override, returning to the FTPIM_KERNEL / CPUID default.
void clear_kernel_level_override() noexcept;

/// "scalar" / "avx2" — for bench records and logs.
[[nodiscard]] const char* kernel_level_name(KernelLevel level) noexcept;

/// True when the AVX2 micro-kernel was compiled in AND this CPU reports
/// AVX2+FMA. The dispatcher never returns kAvx2 when this is false.
[[nodiscard]] bool avx2_available() noexcept;

/// Parses an FTPIM_KERNEL-style string ("scalar" | "avx2"); unknown values
/// return `fallback`. Exposed for unit tests of the env contract.
[[nodiscard]] KernelLevel parse_kernel_env(const char* value, KernelLevel fallback) noexcept;

/// Strict variant used for the actual FTPIM_KERNEL resolution: nullptr/empty
/// returns `fallback` (the knob is optional), "scalar"/"avx2" resolve like
/// parse_kernel_env ("avx2" still clamps to scalar on hosts without support
/// — a capability limit, not a typo), and anything else throws
/// ContractViolation naming the offending text. Exposed for unit tests; the
/// cached resolution behind active_kernel_level() makes the env read itself
/// hard to exercise twice in one process.
[[nodiscard]] KernelLevel parse_kernel_env_strict(const char* value, KernelLevel fallback);

}  // namespace ftpim::kernels
