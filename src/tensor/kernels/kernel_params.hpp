// Blocking parameters shared by every kernel backend level.
//
// The packed GEMM follows the GotoBLAS/BLIS decomposition: C is computed in
// kMR x kNR register tiles from panels packed so the micro-kernel streams
// both operands contiguously. The pack layout is a function of kMR/kNR only,
// so the scalar and AVX2 micro-kernels consume identical buffers and the
// dispatch level can change without touching the packing or macro loops.
//
//   kMR x kNR   register tile  (6x16: 12 fp32 ymm accumulators on AVX2)
//   kKC         K-block: one packed A panel of kMC*kKC floats stays L2-hot
//   kMC         M-block per pack-A call (multiple of kMR)
//   kNC         N-block: packed B panel of kKC*kNC floats (L3) (multiple of kNR)
#pragma once

#include <cstdint>

namespace ftpim::kernels {

inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 16;
inline constexpr std::int64_t kMC = 96;
inline constexpr std::int64_t kKC = 256;
inline constexpr std::int64_t kNC = 1024;

static_assert(kMC % kMR == 0, "kMC must be a multiple of the micro-tile rows");
static_assert(kNC % kNR == 0, "kNC must be a multiple of the micro-tile cols");

/// ceil(a / b) for positive operands.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Problems below this flop count run the macro loops on the calling thread:
/// thread spawn costs more than the multiply (parallel.hpp has no pool).
inline constexpr double kMinParallelFlops = 1.5e6;

}  // namespace ftpim::kernels
