// Binary serialization of tensors and named-tensor state dicts.
//
// In-memory entry encoding (little-endian, shared by the legacy FTPM file
// format and the MODL/OPTM chunks of the FTCK checkpoint container):
//   u64 entry_count |
//   per entry: u32 name_len, bytes name, u32 rank, i64 dims..., f32 data...
//
// The file-level format prepends magic "FTPM" u32 | u32 version. Files are
// written through AtomicFileWriter (write temp, fsync, rename), so a crash
// mid-save never leaves a torn state dict under the final name.
//
// Float payloads are raw IEEE-754 bytes: a round trip is bit-exact, which the
// exact-resume guarantee (DESIGN.md §10) depends on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace ftpim {

class ByteWriter;
class ByteReader;

using StateDict = std::map<std::string, Tensor>;

/// Writes a state dict to `path` atomically; throws std::runtime_error
/// (CheckpointError) on IO failure.
void save_state_dict(const StateDict& state, const std::string& path);

/// Reads a state dict from `path`; throws std::runtime_error on IO/format
/// failure.
StateDict load_state_dict(const std::string& path);

/// Appends the headerless entry encoding of `state` to `out`.
void encode_state_dict(const StateDict& state, ByteWriter& out);

/// Convenience: encode into a fresh byte vector.
[[nodiscard]] std::vector<std::uint8_t> encode_state_dict(const StateDict& state);

/// Parses the entry encoding; throws CheckpointError (kTruncated/kFormat,
/// tagged with the reader's context) on malformed input.
[[nodiscard]] StateDict decode_state_dict(ByteReader& in);

}  // namespace ftpim
