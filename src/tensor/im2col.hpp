// im2col / col2im lowering for convolution.
//
// Conv2d forward lowers each input image to a [C*kh*kw, out_h*out_w] matrix so
// the convolution becomes a GEMM against the [out_c, C*kh*kw] filter matrix;
// backward uses col2im to scatter column gradients back to image layout.
#pragma once

#include <cstdint>

namespace ftpim {

struct ConvGeometry {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;

  [[nodiscard]] std::int64_t out_h() const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  [[nodiscard]] std::int64_t out_w() const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  [[nodiscard]] std::int64_t col_rows() const { return in_c * kernel_h * kernel_w; }
  [[nodiscard]] std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// image [C,H,W] -> col [C*kh*kw, out_h*out_w] (zero padding).
void im2col(const float* image, const ConvGeometry& g, float* col);

/// col [C*kh*kw, out_h*out_w] -> image [C,H,W], accumulating overlaps.
/// The destination must be zeroed by the caller if accumulation from a clean
/// slate is desired.
void col2im(const float* col, const ConvGeometry& g, float* image);

}  // namespace ftpim
