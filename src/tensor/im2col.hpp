// im2col / col2im lowering for convolution.
//
// Conv2d forward lowers each input image to a [C*kh*kw, out_h*out_w] matrix so
// the convolution becomes a GEMM against the [out_c, C*kh*kw] filter matrix;
// backward uses col2im to scatter column gradients back to image layout.
#pragma once

#include <cstdint>

#include "src/common/check.hpp"

namespace ftpim {

struct ConvGeometry {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;

  [[nodiscard]] std::int64_t out_h() const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  [[nodiscard]] std::int64_t out_w() const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  [[nodiscard]] std::int64_t col_rows() const { return in_c * kernel_h * kernel_w; }
  [[nodiscard]] std::int64_t col_cols() const { return out_h() * out_w(); }

  /// Contract: all extents positive, pads non-negative, kernel not larger
  /// than the padded input (so out_h/out_w are positive). Throws
  /// ContractViolation otherwise. Called by im2col/col2im and Conv2d.
  void validate() const {
    FTPIM_CHECK(in_c > 0 && in_h > 0 && in_w > 0, "ConvGeometry: input extents must be positive");
    FTPIM_CHECK(kernel_h > 0 && kernel_w > 0, "ConvGeometry: kernel extents must be positive");
    FTPIM_CHECK(stride_h > 0 && stride_w > 0, "ConvGeometry: strides must be positive");
    FTPIM_CHECK(pad_h >= 0 && pad_w >= 0, "ConvGeometry: pads must be non-negative");
    FTPIM_CHECK(out_h() > 0 && out_w() > 0,
                "ConvGeometry: kernel %lldx%lld does not fit padded input %lldx%lld",
                static_cast<long long>(kernel_h), static_cast<long long>(kernel_w),
                static_cast<long long>(in_h + 2 * pad_h), static_cast<long long>(in_w + 2 * pad_w));
  }
};

/// image [C,H,W] -> col [C*kh*kw, out_h*out_w] (zero padding).
void im2col(const float* image, const ConvGeometry& g, float* col);

/// col [C*kh*kw, out_h*out_w] -> image [C,H,W], accumulating overlaps.
/// The destination must be zeroed by the caller if accumulation from a clean
/// slate is desired.
void col2im(const float* col, const ConvGeometry& g, float* image);

}  // namespace ftpim
