// Elementwise and reduction operations on Tensor, plus matmul convenience
// wrappers over the raw GEMM kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace ftpim {

// --- elementwise (shape-checked) -------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

void add_inplace(Tensor& a, const Tensor& b);
void sub_inplace(Tensor& a, const Tensor& b);
void mul_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float s);
/// a += s * b (axpy).
void axpy_inplace(Tensor& a, float s, const Tensor& b);

// --- matmul ------------------------------------------------------------------
/// [M,K] x [K,N] -> [M,N].
Tensor matmul(const Tensor& a, const Tensor& b);

// --- reductions / statistics -------------------------------------------------
/// Index of the maximum element of row r in a rank-2 tensor.
std::int64_t argmax_row(const Tensor& logits, std::int64_t row);

/// Fraction of rows whose argmax equals labels[row]. logits: [N, classes].
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

/// L2 norm of all elements.
double l2_norm(const Tensor& a);

/// Number of exactly-zero elements.
std::int64_t count_zeros(const Tensor& a);

/// k-th largest absolute value (k>=1); used by pruning projections.
float kth_largest_abs(const Tensor& a, std::int64_t k);

}  // namespace ftpim
