#include "src/tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/tensor/gemm.hpp"

namespace ftpim {
namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FTPIM_CHECK(a.shape() == b.shape(), "%s: shape mismatch %s vs %s", op,
              shape_to_string(a.shape()).c_str(), shape_to_string(b.shape()).c_str());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  mul_inplace(out, b);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] -= pb[i];
}

void mul_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] *= pb[i];
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] *= s;
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += s * pb[i];
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FTPIM_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
              "matmul: incompatible shapes %s x %s", shape_to_string(a.shape()).c_str(),
              shape_to_string(b.shape()).c_str());
  Tensor c(Shape{a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

std::int64_t argmax_row(const Tensor& logits, std::int64_t row) {
  FTPIM_CHECK_EQ(logits.rank(), std::size_t{2}, "argmax_row: rank-2 tensor required");
  FTPIM_DCHECK_GE(row, 0);
  FTPIM_DCHECK_LT(row, logits.dim(0));
  const std::int64_t cols = logits.dim(1);
  const float* p = logits.data() + row * cols;
  std::int64_t best = 0;
  for (std::int64_t j = 1; j < cols; ++j) {
    if (p[j] > p[best]) best = j;
  }
  return best;
}

double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  FTPIM_CHECK_EQ(logits.rank(), std::size_t{2}, "accuracy: rank-2 logits required");
  const std::int64_t rows = logits.dim(0);
  FTPIM_CHECK_EQ(rows, static_cast<std::int64_t>(labels.size()),
                 "accuracy: label count mismatch");
  if (rows == 0) return 0.0;
  std::int64_t hits = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    if (argmax_row(logits, r) == labels[static_cast<std::size_t>(r)]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(rows);
}

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(p[i]) * p[i];
  return std::sqrt(acc);
}

std::int64_t count_zeros(const Tensor& a) {
  std::int64_t zeros = 0;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (p[i] == 0.0f) ++zeros;
  }
  return zeros;
}

float kth_largest_abs(const Tensor& a, std::int64_t k) {
  FTPIM_CHECK_GE(k, std::int64_t{1}, "kth_largest_abs: k out of range");
  FTPIM_CHECK_LE(k, a.numel(), "kth_largest_abs: k out of range");
  std::vector<float> mags(static_cast<std::size_t>(a.numel()));
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) mags[static_cast<std::size_t>(i)] = std::fabs(p[i]);
  auto nth = mags.begin() + static_cast<std::ptrdiff_t>(k - 1);
  std::nth_element(mags.begin(), nth, mags.end(), std::greater<float>());
  return *nth;
}

}  // namespace ftpim
