// Dense row-major float tensor.
//
// ftpim uses a single value type (float32) and contiguous row-major storage;
// this matches what a ReRAM crossbar compiler would consume and keeps the
// kernel surface small. Shapes are small vectors of int64.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.hpp"

namespace ftpim {

using Shape = std::vector<std::int64_t>;

/// Number of elements of a shape (product of dims; 1 for rank-0).
[[nodiscard]] std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" — for error messages and logs.
[[nodiscard]] std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `fill`.
  Tensor(Shape shape, float fill);

  /// Wraps existing data (copied) with the given shape.
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience literal constructor for 1-D tensors in tests.
  static Tensor from_vector(std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  // Indices and axes are std::int64_t throughout (one signed type, no mixed
  // signed/unsigned comparisons in the contracts); rank() stays size_t to
  // mirror shape().size().
  [[nodiscard]] std::int64_t dim(std::int64_t axis) const {
    FTPIM_DCHECK_GE(axis, 0);
    FTPIM_DCHECK_LT(axis, static_cast<std::int64_t>(shape_.size()));
    return shape_[static_cast<std::size_t>(axis)];
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::vector<float>& vec() noexcept { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const noexcept { return data_; }

  [[nodiscard]] float& operator[](std::int64_t i) {
    FTPIM_DCHECK_GE(i, 0);
    FTPIM_DCHECK_LT(i, numel());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float operator[](std::int64_t i) const {
    FTPIM_DCHECK_GE(i, 0);
    FTPIM_DCHECK_LT(i, numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D indexed access (rank must be 2; bounds DCHECKed per axis).
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c) {
    return data_[index2_(r, c)];
  }
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const {
    return data_[index2_(r, c)];
  }

  /// 4-D indexed access (rank must be 4; NCHW convention).
  [[nodiscard]] float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[index4_(n, c, h, w)];
  }
  [[nodiscard]] float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    return data_[index4_(n, c, h, w)];
  }

  /// Sets every element to `value`.
  void fill(float value);

  /// Sets every element to zero (grad reset).
  void zero() { fill(0.0f); }

  /// Returns a reshaped copy-free view is not supported; this returns a new
  /// tensor sharing nothing — reshape of a contiguous tensor is a metadata
  /// change so we just copy the shape and move/copy the data.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// In-place metadata reshape (numel must match).
  void reshape_inplace(Shape new_shape);

  /// Deep equality within tolerance (shape + data).
  [[nodiscard]] bool allclose(const Tensor& other, float atol = 1e-5f,
                              float rtol = 1e-5f) const;

  // --- simple reductions (full implementations in tensor_ops for the rest) --
  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;
  [[nodiscard]] float abs_max() const;

 private:
  [[nodiscard]] std::size_t index2_(std::int64_t r, std::int64_t c) const {
    FTPIM_DCHECK_EQ(rank(), std::size_t{2});
    FTPIM_DCHECK_GE(r, 0);
    FTPIM_DCHECK_LT(r, shape_[0]);
    FTPIM_DCHECK_GE(c, 0);
    FTPIM_DCHECK_LT(c, shape_[1]);
    return static_cast<std::size_t>(r * shape_[1] + c);
  }
  [[nodiscard]] std::size_t index4_(std::int64_t n, std::int64_t c, std::int64_t h,
                                    std::int64_t w) const {
    FTPIM_DCHECK_EQ(rank(), std::size_t{4});
    FTPIM_DCHECK_GE(n, 0);
    FTPIM_DCHECK_LT(n, shape_[0]);
    FTPIM_DCHECK_GE(c, 0);
    FTPIM_DCHECK_LT(c, shape_[1]);
    FTPIM_DCHECK_GE(h, 0);
    FTPIM_DCHECK_LT(h, shape_[2]);
    FTPIM_DCHECK_GE(w, 0);
    FTPIM_DCHECK_LT(w, shape_[3]);
    return static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w);
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace ftpim
