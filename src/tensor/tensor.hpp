// Dense row-major float tensor.
//
// ftpim uses a single value type (float32) and contiguous row-major storage;
// this matches what a ReRAM crossbar compiler would consume and keeps the
// kernel surface small. Shapes are small vectors of int64.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ftpim {

using Shape = std::vector<std::int64_t>;

/// Number of elements of a shape (product of dims; 1 for rank-0).
[[nodiscard]] std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" — for error messages and logs.
[[nodiscard]] std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `fill`.
  Tensor(Shape shape, float fill);

  /// Wraps existing data (copied) with the given shape.
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience literal constructor for 1-D tensors in tests.
  static Tensor from_vector(std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t dim(std::size_t axis) const {
    assert(axis < shape_.size());
    return shape_[axis];
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::vector<float>& vec() noexcept { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const noexcept { return data_; }

  [[nodiscard]] float& operator[](std::int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float operator[](std::int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D indexed access (rank must be 2).
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c) {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// 4-D indexed access (rank must be 4; NCHW convention).
  [[nodiscard]] float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    assert(rank() == 4);
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  [[nodiscard]] float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    assert(rank() == 4);
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Sets every element to `value`.
  void fill(float value);

  /// Sets every element to zero (grad reset).
  void zero() { fill(0.0f); }

  /// Returns a reshaped copy-free view is not supported; this returns a new
  /// tensor sharing nothing — reshape of a contiguous tensor is a metadata
  /// change so we just copy the shape and move/copy the data.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// In-place metadata reshape (numel must match).
  void reshape_inplace(Shape new_shape);

  /// Deep equality within tolerance (shape + data).
  [[nodiscard]] bool allclose(const Tensor& other, float atol = 1e-5f,
                              float rtol = 1e-5f) const;

  // --- simple reductions (full implementations in tensor_ops for the rest) --
  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;
  [[nodiscard]] float abs_max() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace ftpim
