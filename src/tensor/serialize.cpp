#include "src/tensor/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "src/common/atomic_file.hpp"
#include "src/common/checkpoint.hpp"

namespace ftpim {
namespace {

constexpr std::uint32_t kMagic = 0x4d505446;  // "FTPM" little-endian
constexpr std::uint32_t kVersion = 1;

// Tensor names/shapes are bounded in practice; a cap turns a corrupted length
// field into a format error instead of a multi-GB allocation.
constexpr std::uint64_t kMaxEntries = 1u << 24;
constexpr std::uint32_t kMaxNameLen = 1u << 16;
constexpr std::uint32_t kMaxRank = 16;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void encode_state_dict(const StateDict& state, ByteWriter& out) {
  out.u64(state.size());
  for (const auto& [name, tensor] : state) {
    out.str(name);
    out.u32(static_cast<std::uint32_t>(tensor.rank()));
    for (const std::int64_t d : tensor.shape()) out.i64(d);
    out.raw(tensor.data(), static_cast<std::size_t>(tensor.numel()) * sizeof(float));
  }
}

std::vector<std::uint8_t> encode_state_dict(const StateDict& state) {
  ByteWriter out;
  encode_state_dict(state, out);
  return out.take();
}

StateDict decode_state_dict(ByteReader& in) {
  const std::uint64_t count = in.u64();
  if (count > kMaxEntries) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "",
                          "state dict declares " + std::to_string(count) + " entries");
  }
  StateDict state;
  for (std::uint64_t e = 0; e < count; ++e) {
    const std::string name = in.str();
    if (name.size() > kMaxNameLen) {
      throw CheckpointError(CheckpointErrorKind::kFormat, "", "oversized tensor name");
    }
    const std::uint32_t rank = in.u32();
    if (rank > kMaxRank) {
      throw CheckpointError(CheckpointErrorKind::kFormat, "",
                            "tensor '" + name + "' declares rank " + std::to_string(rank));
    }
    Shape shape(rank);
    for (auto& d : shape) {
      d = in.i64();
      if (d < 0) {
        throw CheckpointError(CheckpointErrorKind::kFormat, "",
                              "tensor '" + name + "' has a negative dimension");
      }
    }
    Tensor tensor(shape);
    const std::size_t payload = static_cast<std::size_t>(tensor.numel()) * sizeof(float);
    const std::uint8_t* bytes = in.take_bytes(payload);
    if (payload > 0) std::memcpy(tensor.data(), bytes, payload);
    if (!state.emplace(std::move(name), std::move(tensor)).second) {
      throw CheckpointError(CheckpointErrorKind::kFormat, "", "duplicate state dict entry");
    }
  }
  return state;
}

void save_state_dict(const StateDict& state, const std::string& path) {
  ByteWriter out;
  out.u32(kMagic);
  out.u32(kVersion);
  encode_state_dict(state, out);
  AtomicFileWriter file(path);
  file.write(out.bytes());
  file.commit();
}

StateDict load_state_dict(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("serialize: cannot open " + path + " for reading");
  std::vector<std::uint8_t> image;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    image.insert(image.end(), buf, buf + n);
  }
  if (std::ferror(f.get()) != 0) {
    throw std::runtime_error("serialize: short read from " + path);
  }
  ByteReader in(image, path);
  if (in.u32() != kMagic) {
    throw std::runtime_error("serialize: bad magic in " + path);
  }
  const auto version = in.u32();
  if (version != kVersion) {
    throw std::runtime_error("serialize: unsupported version in " + path);
  }
  StateDict state = decode_state_dict(in);
  in.expect_done();
  return state;
}

}  // namespace ftpim
