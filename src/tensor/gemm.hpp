// Blocked single-precision GEMM kernels.
//
// C[M,N] (+)= A[M,K] * B[K,N], with optional transposes. The inner kernel is
// register-blocked and cache-tiled; rows of C are split across worker threads.
// This is the compute backbone for both the Linear/Conv2d layers (via im2col)
// and the ideal-arithmetic reference path of the crossbar engine.
#pragma once

#include <cstdint>

namespace ftpim {

/// C = alpha * A(MxK) * B(KxN) + beta * C. Row-major, no transposes.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c);

/// C = alpha * A^T(KxM stored as MxK? no: A is KxM stored row-major, used as MxK) * B + beta*C.
/// Concretely: C[i,j] += sum_k A[k,i] * B[k,j], A has leading dim M.
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// C[i,j] += sum_k A[i,k] * B[j,k] — B used transposed, B has leading dim K.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

}  // namespace ftpim
