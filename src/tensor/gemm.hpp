// Single-precision GEMM entry points.
//
// C[M,N] (+)= A[M,K] * B[K,N], with optional transposes. These are thin
// wrappers over the packed blocked backend in src/tensor/kernels/ (panel
// packing + register-tiled micro-kernel, scalar or AVX2 chosen by runtime
// dispatch — see kernels/dispatch.hpp and the FTPIM_KERNEL env var).
// Transposes are absorbed into packing, so all three variants share one
// driver. This is the compute backbone for the Linear/Conv2d layers and the
// ideal-arithmetic reference path of the crossbar engine.
//
// Results are bit-identical across FTPIM_THREADS values at a fixed dispatch
// level; see kernels/gemm_driver.hpp for the determinism contract.
#pragma once

#include <cstdint>

namespace ftpim {

/// C = alpha * A(MxK) * B(KxN) + beta * C. Row-major, no transposes.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c);

/// C = alpha * A^T * B + beta * C with A stored [K,M] row-major.
/// Concretely: C[i,j] += sum_k A[k,i] * B[k,j], A has leading dim M.
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// C[i,j] += sum_k A[i,k] * B[j,k] — B used transposed, B has leading dim K.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

}  // namespace ftpim
