// Named trainable parameter: a value/grad Tensor pair tagged with where the
// weight physically lives (ReRAM crossbar vs digital periphery).
//
// This lives in the tensor module (not nn) on purpose: optimizers update
// `Param`s and fault injection / pruning select by `ParamKind` without ever
// needing the Module graph, so optim and reram can depend on tensor alone —
// the layering DAG keeps nn/optim/data as independent siblings
// (tools/ftpim_analyze.py enforces it).
#pragma once

#include <string>
#include <utility>

#include "src/tensor/tensor.hpp"

namespace ftpim {

enum class ParamKind {
  kCrossbarWeight,  ///< mapped onto ReRAM cells: fault-injectable, prunable, weight-decayed
  kBias,            ///< digital peripheral storage: not fault-injected
  kNorm,            ///< batch-norm scale/shift: digital, not fault-injected
};

struct Param {
  std::string name;  ///< hierarchical name, e.g. "stage1.block0.conv1.weight"
  Tensor value;
  Tensor grad;
  ParamKind kind = ParamKind::kCrossbarWeight;

  Param() = default;
  Param(std::string n, Tensor v, ParamKind k)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()), kind(k) {}

  /// Copy with the value in fresh storage and a zeroed gradient — what a
  /// Module::clone() needs (grads are per-training-loop state, not weights).
  [[nodiscard]] Param clone_detached() const { return Param(name, value, kind); }
};

}  // namespace ftpim
