#include "src/tensor/im2col.hpp"

#include <cstring>

namespace ftpim {

void im2col(const float* image, const ConvGeometry& g, float* col) {
  g.validate();
  FTPIM_DCHECK(image != nullptr);
  FTPIM_DCHECK(col != nullptr);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = col + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(dst + y * ow, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = plane + iy * g.in_w;
          float* dst_row = dst + y * ow;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w - g.pad_w + kw;
            dst_row[x] = (ix >= 0 && ix < g.in_w) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& g, float* image) {
  g.validate();
  FTPIM_DCHECK(col != nullptr);
  FTPIM_DCHECK(image != nullptr);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst_row = plane + iy * g.in_w;
          const float* src_row = src + y * ow;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w - g.pad_w + kw;
            if (ix >= 0 && ix < g.in_w) dst_row[ix] += src_row[x];
          }
        }
      }
    }
  }
}

}  // namespace ftpim
