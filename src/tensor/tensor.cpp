#include "src/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.hpp"

namespace ftpim {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const std::int64_t d : shape) {
    FTPIM_CHECK_GE(d, std::int64_t{0}, "negative dimension in shape %s",
                   shape_to_string(shape).c_str());
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << shape[i];
  }
  oss << ']';
  return oss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FTPIM_CHECK_EQ(shape_numel(shape_), static_cast<std::int64_t>(data_.size()),
                 "Tensor: data size does not match shape %s", shape_to_string(shape_).c_str());
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const auto n = static_cast<std::int64_t>(values.size());
  return Tensor(Shape{n}, std::move(values));
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor Tensor::reshaped(Shape new_shape) const {
  FTPIM_CHECK_EQ(shape_numel(new_shape), numel(), "reshape: %s -> %s",
                 shape_to_string(shape_).c_str(), shape_to_string(new_shape).c_str());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::reshape_inplace(Shape new_shape) {
  FTPIM_CHECK_EQ(shape_numel(new_shape), numel(), "reshape_inplace: %s -> %s",
                 shape_to_string(shape_).c_str(), shape_to_string(new_shape).c_str());
  shape_ = std::move(new_shape);
}

bool Tensor::allclose(const Tensor& other, float atol, float rtol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const float a = data_[i];
    const float b = other.data_[i];
    if (std::isnan(a) || std::isnan(b)) return false;
    if (std::fabs(a - b) > atol + rtol * std::fabs(b)) return false;
  }
  return true;
}

float Tensor::sum() const {
  // Pairwise-ish accumulation in double for stability of large reductions.
  double acc = 0.0;
  for (const float v : data_) acc += static_cast<double>(v);
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  FTPIM_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  FTPIM_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace ftpim
