#include "src/data/augment.hpp"

#include "src/common/check.hpp"


namespace ftpim {

Tensor hflip_image(const Tensor& image) {
  FTPIM_CHECK(!(image.rank() != 3), "hflip_image: [C,H,W] required");
  const std::int64_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  Tensor out(image.shape());
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float* src = image.data() + ch * h * w;
    float* dst = out.data() + ch * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) dst[y * w + x] = src[y * w + (w - 1 - x)];
    }
  }
  return out;
}

Tensor pad_crop_image(const Tensor& image, std::int64_t pad, std::int64_t dy, std::int64_t dx) {
  FTPIM_CHECK(!(image.rank() != 3), "pad_crop_image: [C,H,W] required");
  FTPIM_CHECK(!(pad < 0 || dy < 0 || dx < 0 || dy > 2 * pad || dx > 2 * pad), "pad_crop_image: offsets out of range");
  const std::int64_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  Tensor out(image.shape());
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float* src = image.data() + ch * h * w;
    float* dst = out.data() + ch * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = y + dy - pad;  // source row in the unpadded image
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = x + dx - pad;
        dst[y * w + x] =
            (sy >= 0 && sy < h && sx >= 0 && sx < w) ? src[sy * w + sx] : 0.0f;
      }
    }
  }
  return out;
}

Tensor augment_image(const Tensor& image, const AugmentConfig& config, Rng& rng) {
  if (!config.enabled) return image;
  Tensor out = image;
  if (config.crop_pad > 0) {
    const auto range = static_cast<std::uint64_t>(2 * config.crop_pad + 1);
    const auto dy = static_cast<std::int64_t>(rng.uniform_int(range));
    const auto dx = static_cast<std::int64_t>(rng.uniform_int(range));
    out = pad_crop_image(out, config.crop_pad, dy, dx);
  }
  if (config.hflip && rng.bernoulli(0.5)) out = hflip_image(out);
  return out;
}

}  // namespace ftpim
