// Dataset abstractions.
//
// A Dataset yields (image [C,H,W], label) pairs by index. Experiments use
// either the real CIFAR binary loader (when the files exist on disk) or the
// SynthVision procedural substitute (see synthetic.hpp and DESIGN.md §3).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace ftpim {

struct Sample {
  Tensor image;  ///< [C,H,W], float
  std::int64_t label = 0;
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  [[nodiscard]] virtual std::int64_t size() const = 0;
  [[nodiscard]] virtual std::int64_t num_classes() const = 0;
  /// Image dims as {C,H,W}.
  [[nodiscard]] virtual Shape image_shape() const = 0;
  [[nodiscard]] virtual Sample get(std::int64_t index) const = 0;
};

/// Materialized dataset backed by flat storage; the workhorse implementation.
class InMemoryDataset final : public Dataset {
 public:
  InMemoryDataset(Shape image_shape, std::int64_t num_classes);

  void add(Tensor image, std::int64_t label);
  void reserve(std::int64_t n);

  [[nodiscard]] std::int64_t size() const override {
    return static_cast<std::int64_t>(labels_.size());
  }
  [[nodiscard]] std::int64_t num_classes() const override { return num_classes_; }
  [[nodiscard]] Shape image_shape() const override { return image_shape_; }
  [[nodiscard]] Sample get(std::int64_t index) const override;

  /// Per-channel mean/std normalization applied in place across all images.
  void normalize_channels();

 private:
  Shape image_shape_;
  std::int64_t num_classes_;
  std::vector<Tensor> images_;
  std::vector<std::int64_t> labels_;
};

}  // namespace ftpim
