// Loader for the CIFAR-10/100 binary distributions.
//
// When the standard binary files exist on disk (data/cifar-10-batches-bin or
// data/cifar-100-binary), experiments use real CIFAR exactly as the paper
// did; otherwise they fall back to SynthVision (see synthetic.hpp).
//
// CIFAR-10 record:  1 byte label, 3072 bytes pixels (RGB planes, 32x32).
// CIFAR-100 record: 1 byte coarse label, 1 byte fine label, 3072 bytes pixels.
#pragma once

#include <memory>
#include <string>

#include "src/data/dataset.hpp"

namespace ftpim {

/// True if the directory contains the expected CIFAR-10 train batches.
bool cifar10_available(const std::string& dir);

/// True if the directory contains the expected CIFAR-100 train file.
bool cifar100_available(const std::string& dir);

/// Loads up to `max_samples` (0 = all) from the train or test split.
/// Pixels are scaled to [0,1] and per-channel normalized.
/// Throws std::runtime_error on missing/corrupt files.
std::unique_ptr<InMemoryDataset> load_cifar10(const std::string& dir, bool train,
                                              std::int64_t max_samples);
std::unique_ptr<InMemoryDataset> load_cifar100(const std::string& dir, bool train,
                                               std::int64_t max_samples);

}  // namespace ftpim
