// Training-time augmentation: random crop with padding + horizontal flip
// (the standard CIFAR recipe).
#pragma once

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {

struct AugmentConfig {
  std::int64_t crop_pad = 2;  ///< zero-pad border before random crop (CIFAR: 4 at 32px)
  bool hflip = true;
  bool enabled = true;
};

/// Returns an augmented copy of image [C,H,W].
Tensor augment_image(const Tensor& image, const AugmentConfig& config, Rng& rng);

/// Horizontal flip (exposed for tests).
Tensor hflip_image(const Tensor& image);

/// Zero-pad by `pad` on all sides then crop back to the original size at
/// offset (dy, dx) in [0, 2*pad].
Tensor pad_crop_image(const Tensor& image, std::int64_t pad, std::int64_t dy, std::int64_t dx);

}  // namespace ftpim
