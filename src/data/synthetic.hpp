// SynthVision — procedural CIFAR substitute (see DESIGN.md §3).
//
// The paper evaluates on CIFAR-10/100, which are not available offline.
// SynthVision generates class-conditional RGB textures that exercise the same
// conv/BN/residual training pipeline: each class owns a seeded generator
// producing a mixture of oriented sinusoidal gratings and Gaussian blobs with
// class-specific frequencies, orientations, palettes and blob layouts; each
// sample adds per-sample phase/position jitter, global gain, and pixel noise.
// Classes are separable but require non-linear features (a linear probe does
// markedly worse than a CNN), so accuracy-vs-fault-rate curves show the same
// qualitative collapse-and-rescue shape as real CIFAR.
#pragma once

#include <cstdint>
#include <memory>

#include "src/data/dataset.hpp"

namespace ftpim {

struct SynthVisionConfig {
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;  ///< square side
  std::int64_t samples = 1024;
  std::uint64_t seed = 7;        ///< class prototypes derive from this
  float noise_std = 0.6f;        ///< per-pixel Gaussian noise
  float jitter = 1.0f;           ///< phase/position jitter magnitude
  bool normalize = true;         ///< per-channel normalization after generation
};

/// Generates a dataset. Train/test splits should use the same `seed` (same
/// class prototypes) but different `sample_stream` values so the samples
/// differ while the task stays identical.
std::unique_ptr<InMemoryDataset> make_synthvision(const SynthVisionConfig& config,
                                                  std::uint64_t sample_stream);

}  // namespace ftpim
