#include "src/data/dataloader.hpp"

#include "src/common/check.hpp"

#include <cstring>
#include <numeric>
#include <stdexcept>

namespace ftpim {

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
                       std::uint64_t seed, AugmentConfig augment)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      seed_(seed),
      augment_(augment),
      order_(static_cast<std::size_t>(dataset.size())),
      augment_rng_(derive_seed(seed, 0xa09)) {
  FTPIM_CHECK(!(batch_size <= 0), "DataLoader: batch_size must be positive");
  std::iota(order_.begin(), order_.end(), 0);
}

std::int64_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch(int epoch) {
  if (!shuffle_) return;
  Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(epoch) + 1));
  rng.shuffle(order_.data(), order_.size());
}

Batch DataLoader::batch(std::int64_t index) const {
  const std::int64_t lo = index * batch_size_;
  if (lo < 0 || lo >= dataset_.size()) throw std::out_of_range("DataLoader::batch");
  const std::int64_t hi = std::min<std::int64_t>(dataset_.size(), lo + batch_size_);
  const Shape img_shape = dataset_.image_shape();
  const std::int64_t n = hi - lo;
  Batch out;
  out.images = Tensor(Shape{n, img_shape[0], img_shape[1], img_shape[2]});
  out.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t per_image = img_shape[0] * img_shape[1] * img_shape[2];
  for (std::int64_t i = 0; i < n; ++i) {
    Sample s = dataset_.get(order_[static_cast<std::size_t>(lo + i)]);
    Tensor img = augment_.enabled ? augment_image(s.image, augment_, augment_rng_)
                                  : std::move(s.image);
    std::memcpy(out.images.data() + i * per_image, img.data(),
                static_cast<std::size_t>(per_image) * sizeof(float));
    out.labels[static_cast<std::size_t>(i)] = s.label;
  }
  return out;
}

Batch DataLoader::full_batch(const Dataset& dataset) {
  const Shape img_shape = dataset.image_shape();
  const std::int64_t n = dataset.size();
  Batch out;
  out.images = Tensor(Shape{n, img_shape[0], img_shape[1], img_shape[2]});
  out.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t per_image = img_shape[0] * img_shape[1] * img_shape[2];
  for (std::int64_t i = 0; i < n; ++i) {
    const Sample s = dataset.get(i);
    std::memcpy(out.images.data() + i * per_image, s.image.data(),
                static_cast<std::size_t>(per_image) * sizeof(float));
    out.labels[static_cast<std::size_t>(i)] = s.label;
  }
  return out;
}

}  // namespace ftpim
