#include "src/data/synthetic.hpp"

#include "src/common/check.hpp"
#include "src/common/rng.hpp"

#include <cmath>
#include <vector>

namespace ftpim {
namespace {

constexpr float kTwoPi = 6.28318530717958647692f;

/// Per-class generative parameters, derived deterministically from the
/// dataset seed so train and test share prototypes.
struct ClassProto {
  // Two gratings: frequency (cycles per image), orientation, per-channel amp.
  float freq[2];
  float theta[2];
  float amp[2][3];
  // Two blobs: center (fraction of image), radius, per-channel amp.
  float blob_cx[2], blob_cy[2], blob_r[2];
  float blob_amp[2][3];
  // Base color offset.
  float base[3];
};

/// Base texture shared by a group of classes. Classes are small perturbations
/// of a base, so class pairs within a group are confusable — this keeps the
/// task hard enough that accuracy-vs-fault-rate curves show the paper's
/// collapse shape instead of saturating at 100%.
ClassProto make_base_proto(std::uint64_t seed, std::int64_t base_id) {
  Rng rng(derive_seed(seed, static_cast<std::uint64_t>(base_id) + 0x5a17));
  ClassProto p{};
  for (int g = 0; g < 2; ++g) {
    p.freq[g] = rng.uniform(1.5f, 5.5f);
    p.theta[g] = rng.uniform(0.0f, kTwoPi);
    for (int c = 0; c < 3; ++c) p.amp[g][c] = rng.uniform(-0.9f, 0.9f);
  }
  for (int b = 0; b < 2; ++b) {
    p.blob_cx[b] = rng.uniform(0.2f, 0.8f);
    p.blob_cy[b] = rng.uniform(0.2f, 0.8f);
    p.blob_r[b] = rng.uniform(0.12f, 0.3f);
    for (int c = 0; c < 3; ++c) p.blob_amp[b][c] = rng.uniform(-1.2f, 1.2f);
  }
  for (int c = 0; c < 3; ++c) p.base[c] = rng.uniform(-0.3f, 0.3f);
  return p;
}

ClassProto make_proto(std::uint64_t seed, std::int64_t cls, std::int64_t num_classes) {
  // Two classes per base group -> every class has one near neighbor.
  const std::int64_t groups = (num_classes + 1) / 2;
  ClassProto p = make_base_proto(seed, cls % groups);
  Rng rng(derive_seed(seed, static_cast<std::uint64_t>(cls) + 0xc1a55));
  for (int g = 0; g < 2; ++g) {
    p.freq[g] += rng.normal(0.0f, 0.5f);
    p.theta[g] += rng.normal(0.0f, 0.25f);
    for (int c = 0; c < 3; ++c) p.amp[g][c] *= 1.0f + rng.normal(0.0f, 0.2f);
  }
  for (int b = 0; b < 2; ++b) {
    p.blob_cx[b] += rng.normal(0.0f, 0.06f);
    p.blob_cy[b] += rng.normal(0.0f, 0.06f);
    p.blob_r[b] *= 1.0f + rng.normal(0.0f, 0.15f);
    for (int c = 0; c < 3; ++c) p.blob_amp[b][c] *= 1.0f + rng.normal(0.0f, 0.2f);
  }
  return p;
}

}  // namespace

std::unique_ptr<InMemoryDataset> make_synthvision(const SynthVisionConfig& config,
                                                  std::uint64_t sample_stream) {
  FTPIM_CHECK(!(config.num_classes <= 1 || config.image_size < 4 || config.samples <= 0), "make_synthvision: invalid config");
  const std::int64_t side = config.image_size;
  auto data = std::make_unique<InMemoryDataset>(Shape{3, side, side}, config.num_classes);
  data->reserve(config.samples);

  std::vector<ClassProto> protos;
  protos.reserve(static_cast<std::size_t>(config.num_classes));
  for (std::int64_t c = 0; c < config.num_classes; ++c) {
    protos.push_back(make_proto(config.seed, c, config.num_classes));
  }

  Rng rng(derive_seed(config.seed, 0xda7a ^ sample_stream));
  const float inv_side = 1.0f / static_cast<float>(side);

  for (std::int64_t s = 0; s < config.samples; ++s) {
    const auto cls = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(config.num_classes)));
    const ClassProto& p = protos[static_cast<std::size_t>(cls)];

    // Per-sample jitter.
    float phase[2], dtheta[2], dcx[2], dcy[2];
    for (int g = 0; g < 2; ++g) {
      phase[g] = rng.uniform(0.0f, kTwoPi);
      dtheta[g] = config.jitter * rng.normal(0.0f, 0.2f);
    }
    for (int b = 0; b < 2; ++b) {
      dcx[b] = config.jitter * rng.normal(0.0f, 0.08f);
      dcy[b] = config.jitter * rng.normal(0.0f, 0.08f);
    }
    const float gain = 1.0f + 0.2f * rng.normal();

    Tensor img(Shape{3, side, side});
    for (std::int64_t y = 0; y < side; ++y) {
      const float fy = static_cast<float>(y) * inv_side;
      for (std::int64_t x = 0; x < side; ++x) {
        const float fx = static_cast<float>(x) * inv_side;
        float px[3] = {p.base[0], p.base[1], p.base[2]};
        for (int g = 0; g < 2; ++g) {
          const float th = p.theta[g] + dtheta[g];
          const float proj = fx * std::cos(th) + fy * std::sin(th);
          const float v = std::sin(kTwoPi * p.freq[g] * proj + phase[g]);
          for (int c = 0; c < 3; ++c) px[c] += p.amp[g][c] * v;
        }
        for (int b = 0; b < 2; ++b) {
          const float dx = fx - (p.blob_cx[b] + dcx[b]);
          const float dy = fy - (p.blob_cy[b] + dcy[b]);
          const float r2 = p.blob_r[b] * p.blob_r[b];
          const float v = std::exp(-(dx * dx + dy * dy) / (2.0f * r2));
          for (int c = 0; c < 3; ++c) px[c] += p.blob_amp[b][c] * v;
        }
        const std::int64_t plane = side * side;
        for (int c = 0; c < 3; ++c) {
          img.data()[c * plane + y * side + x] =
              gain * px[c] + config.noise_std * rng.normal();
        }
      }
    }
    data->add(std::move(img), cls);
  }
  if (config.normalize) data->normalize_channels();
  return data;
}

}  // namespace ftpim
