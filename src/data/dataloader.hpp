// Mini-batch assembly with per-epoch shuffling and optional augmentation.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/data/augment.hpp"
#include "src/data/dataset.hpp"

namespace ftpim {

struct Batch {
  Tensor images;  ///< [N,C,H,W]
  std::vector<std::int64_t> labels;
  [[nodiscard]] std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

class DataLoader {
 public:
  /// Does not own `dataset`; it must outlive the loader.
  DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle, std::uint64_t seed,
             AugmentConfig augment = AugmentConfig{.enabled = false});

  /// Number of batches per epoch (last partial batch included).
  [[nodiscard]] std::int64_t batches_per_epoch() const;

  /// Reshuffles sample order; call once per epoch when shuffle is enabled.
  void start_epoch(int epoch);

  /// Materializes batch `index` of the current epoch order.
  [[nodiscard]] Batch batch(std::int64_t index) const;

  /// Materializes the whole dataset as a single batch (no shuffle/augment) —
  /// convenient for evaluation of small test sets.
  [[nodiscard]] static Batch full_batch(const Dataset& dataset);

  /// The augmentation Rng is the loader's only state that advances across
  /// epochs (shuffle order is re-derived per epoch from the seed). Capturing
  /// and restoring it is what lets a resumed run replay the exact
  /// augmentation stream of the uninterrupted one (DESIGN.md §10).
  [[nodiscard]] RngState augment_rng_state() const noexcept { return augment_rng_.state(); }
  void set_augment_rng_state(const RngState& state) noexcept { augment_rng_.set_state(state); }

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  bool shuffle_;
  std::uint64_t seed_;
  AugmentConfig augment_;
  std::vector<std::int64_t> order_;
  mutable Rng augment_rng_;
};

}  // namespace ftpim
