#include "src/data/dataset.hpp"

#include "src/common/check.hpp"

#include <cmath>
#include <stdexcept>

namespace ftpim {

InMemoryDataset::InMemoryDataset(Shape image_shape, std::int64_t num_classes)
    : image_shape_(std::move(image_shape)), num_classes_(num_classes) {
  FTPIM_CHECK(!(image_shape_.size() != 3), "InMemoryDataset: image shape must be [C,H,W]");
  FTPIM_CHECK(!(num_classes <= 1), "InMemoryDataset: need >= 2 classes");
}

void InMemoryDataset::add(Tensor image, std::int64_t label) {
  FTPIM_CHECK(!(image.shape() != image_shape_), "InMemoryDataset::add: image shape mismatch");
  FTPIM_CHECK(!(label < 0 || label >= num_classes_), "InMemoryDataset::add: label out of range");
  images_.push_back(std::move(image));
  labels_.push_back(label);
}

void InMemoryDataset::reserve(std::int64_t n) {
  images_.reserve(static_cast<std::size_t>(n));
  labels_.reserve(static_cast<std::size_t>(n));
}

Sample InMemoryDataset::get(std::int64_t index) const {
  if (index < 0 || index >= size()) throw std::out_of_range("InMemoryDataset::get");
  return Sample{images_[static_cast<std::size_t>(index)],
                labels_[static_cast<std::size_t>(index)]};
}

void InMemoryDataset::normalize_channels() {
  if (images_.empty()) return;
  const std::int64_t channels = image_shape_[0];
  const std::int64_t plane = image_shape_[1] * image_shape_[2];
  for (std::int64_t c = 0; c < channels; ++c) {
    double sum = 0.0, sq = 0.0;
    const double count = static_cast<double>(plane) * static_cast<double>(images_.size());
    for (const Tensor& img : images_) {
      const float* src = img.data() + c * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        sum += src[p];
        sq += static_cast<double>(src[p]) * src[p];
      }
    }
    const double mean = sum / count;
    const double var = sq / count - mean * mean;
    const float inv_std = 1.0f / static_cast<float>(std::sqrt(std::max(var, 1e-8)));
    const float fmean = static_cast<float>(mean);
    for (Tensor& img : images_) {
      float* dst = img.data() + c * plane;
      for (std::int64_t p = 0; p < plane; ++p) dst[p] = (dst[p] - fmean) * inv_std;
    }
  }
}

}  // namespace ftpim
