#include "src/data/cifar_loader.hpp"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

namespace ftpim {
namespace {

constexpr std::int64_t kSide = 32;
constexpr std::int64_t kPixels = 3 * kSide * kSide;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};

/// Reads CIFAR records from `path` into `out`. label_bytes is 1 for CIFAR-10,
/// 2 for CIFAR-100 (coarse+fine; the fine label is used).
void read_cifar_file(const std::string& path, int label_bytes, std::int64_t max_samples,
                     InMemoryDataset& out) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cifar: cannot open " + path);
  std::vector<unsigned char> record(static_cast<std::size_t>(label_bytes + kPixels));
  while (max_samples == 0 || out.size() < max_samples) {
    const std::size_t got = std::fread(record.data(), 1, record.size(), f.get());
    if (got == 0) break;
    if (got != record.size()) throw std::runtime_error("cifar: truncated record in " + path);
    const std::int64_t label = record[static_cast<std::size_t>(label_bytes - 1)];
    Tensor img(Shape{3, kSide, kSide});
    float* dst = img.data();
    const unsigned char* src = record.data() + label_bytes;
    for (std::int64_t i = 0; i < kPixels; ++i) dst[i] = static_cast<float>(src[i]) / 255.0f;
    out.add(std::move(img), label);
  }
}

}  // namespace

bool cifar10_available(const std::string& dir) {
  return std::filesystem::exists(dir + "/data_batch_1.bin") &&
         std::filesystem::exists(dir + "/test_batch.bin");
}

bool cifar100_available(const std::string& dir) {
  return std::filesystem::exists(dir + "/train.bin") &&
         std::filesystem::exists(dir + "/test.bin");
}

std::unique_ptr<InMemoryDataset> load_cifar10(const std::string& dir, bool train,
                                              std::int64_t max_samples) {
  auto data = std::make_unique<InMemoryDataset>(Shape{3, kSide, kSide}, 10);
  if (train) {
    for (int batch = 1; batch <= 5; ++batch) {
      if (max_samples != 0 && data->size() >= max_samples) break;
      read_cifar_file(dir + "/data_batch_" + std::to_string(batch) + ".bin", 1, max_samples,
                      *data);
    }
  } else {
    read_cifar_file(dir + "/test_batch.bin", 1, max_samples, *data);
  }
  data->normalize_channels();
  return data;
}

std::unique_ptr<InMemoryDataset> load_cifar100(const std::string& dir, bool train,
                                               std::int64_t max_samples) {
  auto data = std::make_unique<InMemoryDataset>(Shape{3, kSide, kSide}, 100);
  read_cifar_file(dir + (train ? "/train.bin" : "/test.bin"), 2, max_samples, *data);
  data->normalize_channels();
  return data;
}

}  // namespace ftpim
