// Clang Thread Safety Analysis attribute macros + annotated mutex wrappers.
//
// Under clang these expand to the capability attributes that -Wthread-safety
// checks statically (build with -DFTPIM_WERROR=ON to promote findings to
// errors); under GCC and other compilers they expand to nothing, so the
// annotations are free documentation. Conventions (DESIGN.md "Invariants &
// determinism rules"):
//
//   * every std::mutex in the library is wrapped in ftpim::Mutex and locked
//     through ftpim::MutexLock so the analysis sees acquire/release;
//   * shared state protected by a mutex carries FTPIM_GUARDED_BY(mu);
//   * functions that must be called with a lock held carry FTPIM_REQUIRES(mu);
//   * lock-free shared state uses std::atomic with an explicit, commented
//     memory order (see parallel.cpp's g_thread_override) — atomics need no
//     capability annotation, but the ordering comment is mandatory.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define FTPIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FTPIM_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

#define FTPIM_CAPABILITY(x) FTPIM_THREAD_ANNOTATION_(capability(x))
#define FTPIM_SCOPED_CAPABILITY FTPIM_THREAD_ANNOTATION_(scoped_lockable)
#define FTPIM_GUARDED_BY(x) FTPIM_THREAD_ANNOTATION_(guarded_by(x))
#define FTPIM_PT_GUARDED_BY(x) FTPIM_THREAD_ANNOTATION_(pt_guarded_by(x))
#define FTPIM_REQUIRES(...) FTPIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define FTPIM_ACQUIRE(...) FTPIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define FTPIM_RELEASE(...) FTPIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define FTPIM_TRY_ACQUIRE(...) FTPIM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define FTPIM_EXCLUDES(...) FTPIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define FTPIM_ACQUIRED_BEFORE(...) FTPIM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define FTPIM_ACQUIRED_AFTER(...) FTPIM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define FTPIM_RETURN_CAPABILITY(x) FTPIM_THREAD_ANNOTATION_(lock_returned(x))
#define FTPIM_NO_THREAD_SAFETY_ANALYSIS FTPIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ftpim {

/// std::mutex wrapped as a Clang capability so -Wthread-safety can track it.
class FTPIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FTPIM_ACQUIRE() { mu_.lock(); }
  void unlock() FTPIM_RELEASE() { mu_.unlock(); }
  bool try_lock() FTPIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for ftpim::Mutex (std::lock_guard is invisible to the analysis).
class FTPIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FTPIM_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() FTPIM_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// Condition variable paired with ftpim::Mutex/MutexLock (std::condition_
/// variable wants a raw std::unique_lock<std::mutex>, which the analysis
/// cannot see). wait() atomically releases the lock and reacquires it before
/// returning; the capability is held again on exit, so callers keep their
/// FTPIM_GUARDED_BY guarantees — the transient release inside the wait is
/// hidden from the analysis (FTPIM_NO_THREAD_SAFETY_ANALYSIS), matching how
/// scoped capabilities model condition waits.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) FTPIM_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(*lock.mu_); }

  template <typename Pred>
  void wait(MutexLock& lock, Pred pred) {
    while (!pred()) wait(lock);
  }

  /// Bounded wait; returns false on timeout (predicate-free form may also
  /// wake spuriously — use the predicate overload for state waits).
  template <typename Rep, typename Period>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout) FTPIM_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(*lock.mu_, timeout) == std::cv_status::no_timeout;
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout, Pred pred)
      FTPIM_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(*lock.mu_, timeout, std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ftpim
