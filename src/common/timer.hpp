// Wall-clock stopwatch for experiment harness reporting.
#pragma once

#include <chrono>

namespace ftpim {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ftpim
