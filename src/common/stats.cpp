#include "src/common/stats.hpp"

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"

#include <algorithm>
#include <cmath>

namespace ftpim {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0, sq = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    sq += v * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(values.size());
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sq / n - s.mean * s.mean));
  return s;
}

double quantile(std::vector<double> values, double q) {
  FTPIM_CHECK(!(values.empty()), "quantile: empty sample");
  FTPIM_CHECK(!(q < 0.0 || q > 1.0), "quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(values.size() - 1)));
  return values[idx];
}

// --- LatencyHistogram --------------------------------------------------------

FTPIM_HOT int LatencyHistogram::bin_index(std::int64_t ns) noexcept {
  if (ns < 1) ns = 1;
  // Floor log2 via bit scan; sub-bin from the two bits below the leading one.
  int octave = 0;
  for (std::uint64_t v = static_cast<std::uint64_t>(ns); v > 1; v >>= 1) ++octave;
  if (octave >= kOctaves) return kBins - 1;
  const int sub =
      octave >= 2 ? static_cast<int>((static_cast<std::uint64_t>(ns) >> (octave - 2)) & 3) : 0;
  return octave * kSubBins + sub;
}

std::int64_t LatencyHistogram::bin_upper_ns(int bin) noexcept {
  // Upper edge from the bin's own (octave o, sub s). For o >= 2 the quarter
  // sub-bins are real and the next lower edge is ((4+s+1) << (o-2)); s+1 == 4
  // rolls cleanly into the next octave's start. For o < 2 the sub-bins are
  // degenerate (bin_index only emits s == 0), so the octave spans
  // [2^o, 2^(o+1)-1] whole.
  if (bin >= kBins - 1) return (std::int64_t{1} << kOctaves) - 1;
  const int octave = bin / kSubBins;
  const int sub = bin % kSubBins;
  if (octave < 2) return (std::int64_t{1} << (octave + 1)) - 1;
  return (std::int64_t{4 + sub + 1} << (octave - 2)) - 1;
}

FTPIM_HOT void LatencyHistogram::record(std::int64_t ns) noexcept {
  const std::int64_t clamped = std::max<std::int64_t>(ns, 0);
  ++counts_[static_cast<std::size_t>(bin_index(clamped))];
  if (count_ == 0) {
    min_ = clamped;
    max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  ++count_;
  sum_ += clamped;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBins; ++b) counts_[static_cast<std::size_t>(b)] +=
      other.counts_[static_cast<std::size_t>(b)];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t LatencyHistogram::quantile_ns(double q) const {
  FTPIM_CHECK(!(q < 0.0 || q > 1.0), "LatencyHistogram::quantile_ns: q %g outside [0,1]", q);
  if (count_ == 0) return 0;
  if (q == 0.0) return min_;  // exact; the bin upper edge would overshoot
  // Nearest-rank: smallest bin whose cumulative count reaches ceil(q*count).
  const auto target = std::max<std::int64_t>(
      std::int64_t{1},
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_))));
  std::int64_t cum = 0;
  for (int b = 0; b < kBins; ++b) {
    cum += counts_[static_cast<std::size_t>(b)];
    if (cum >= target) {
      return std::clamp(bin_upper_ns(b), min_, max_);
    }
  }
  return max_;
}

double LatencyHistogram::mean_ns() const noexcept {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

OutcomeWindow::OutcomeWindow(int capacity) {
  FTPIM_CHECK_GT(capacity, 0, "OutcomeWindow: capacity");
  ring_.assign(static_cast<std::size_t>(capacity), 0);
}

FTPIM_HOT void OutcomeWindow::record(bool success) noexcept {
  const auto slot = static_cast<std::size_t>(head_);
  if (size_ == capacity()) {
    successes_ -= ring_[slot];  // evict the oldest outcome
  } else {
    ++size_;
  }
  ring_[slot] = success ? 1 : 0;
  successes_ += ring_[slot];
  head_ = (head_ + 1) % capacity();
}

void OutcomeWindow::reset() noexcept {
  std::fill(ring_.begin(), ring_.end(), std::uint8_t{0});
  head_ = 0;
  size_ = 0;
  successes_ = 0;
}

void OutcomeWindow::encode(ByteWriter& out) const {
  out.i64(capacity());
  out.i64(head_);
  out.i64(size_);
  out.raw(ring_.data(), ring_.size());
}

OutcomeWindow OutcomeWindow::decode(ByteReader& in) {
  const std::int64_t capacity = in.i64();
  const std::int64_t head = in.i64();
  const std::int64_t size = in.i64();
  if (capacity <= 0 || head < 0 || head >= capacity || size < 0 || size > capacity) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "",
                          "outcome window: cursor/size outside the ring");
  }
  OutcomeWindow w(static_cast<int>(capacity));
  const std::uint8_t* ring = in.take_bytes(static_cast<std::size_t>(capacity));
  int successes = 0;
  for (std::int64_t i = 0; i < capacity; ++i) {
    if (ring[i] > 1) {
      throw CheckpointError(CheckpointErrorKind::kFormat, "",
                            "outcome window: ring byte is not 0/1");
    }
    w.ring_[static_cast<std::size_t>(i)] = ring[i];
    successes += ring[i];
  }
  // Slots outside the live region are zero by construction of record(), so
  // summing the whole ring IS the success count; a nonzero stale slot would
  // desynchronize rate math and is rejected above by the 0/1 screen plus
  // this recount (successes_ is derived, never trusted from the file).
  w.head_ = static_cast<int>(head);
  w.size_ = static_cast<int>(size);
  w.successes_ = successes;
  if (w.successes_ > w.size_) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "",
                          "outcome window: more successes than recorded outcomes");
  }
  return w;
}

}  // namespace ftpim
