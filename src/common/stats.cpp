#include "src/common/stats.hpp"

#include "src/common/check.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftpim {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0, sq = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    sq += v * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(values.size());
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sq / n - s.mean * s.mean));
  return s;
}

double quantile(std::vector<double> values, double q) {
  FTPIM_CHECK(!(values.empty()), "quantile: empty sample");
  FTPIM_CHECK(!(q < 0.0 || q > 1.0), "quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(values.size() - 1)));
  return values[idx];
}

}  // namespace ftpim
