#include "src/common/serialize.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace ftpim {
namespace {

constexpr std::uint32_t kMagic = 0x4d505446;  // "FTPM" little-endian
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t size, const std::string& path) {
  if (std::fwrite(data, 1, size, f) != size) {
    throw std::runtime_error("serialize: short write to " + path);
  }
}

void read_bytes(std::FILE* f, void* data, std::size_t size, const std::string& path) {
  if (std::fread(data, 1, size, f) != size) {
    throw std::runtime_error("serialize: short read from " + path);
  }
}

template <typename T>
void write_pod(std::FILE* f, T value, const std::string& path) {
  write_bytes(f, &value, sizeof(T), path);
}

template <typename T>
T read_pod(std::FILE* f, const std::string& path) {
  T value{};
  read_bytes(f, &value, sizeof(T), path);
  return value;
}

}  // namespace

void save_state_dict(const StateDict& state, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("serialize: cannot open " + path + " for writing");
  write_pod<std::uint32_t>(f.get(), kMagic, path);
  write_pod<std::uint32_t>(f.get(), kVersion, path);
  write_pod<std::uint64_t>(f.get(), state.size(), path);
  for (const auto& [name, tensor] : state) {
    write_pod<std::uint32_t>(f.get(), static_cast<std::uint32_t>(name.size()), path);
    write_bytes(f.get(), name.data(), name.size(), path);
    write_pod<std::uint32_t>(f.get(), static_cast<std::uint32_t>(tensor.rank()), path);
    for (const std::int64_t d : tensor.shape()) write_pod<std::int64_t>(f.get(), d, path);
    write_bytes(f.get(), tensor.data(), static_cast<std::size_t>(tensor.numel()) * sizeof(float),
                path);
  }
  if (std::fflush(f.get()) != 0) throw std::runtime_error("serialize: flush failed for " + path);
}

StateDict load_state_dict(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("serialize: cannot open " + path + " for reading");
  if (read_pod<std::uint32_t>(f.get(), path) != kMagic) {
    throw std::runtime_error("serialize: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(f.get(), path);
  if (version != kVersion) {
    throw std::runtime_error("serialize: unsupported version in " + path);
  }
  const auto count = read_pod<std::uint64_t>(f.get(), path);
  StateDict state;
  for (std::uint64_t e = 0; e < count; ++e) {
    const auto name_len = read_pod<std::uint32_t>(f.get(), path);
    std::string name(name_len, '\0');
    read_bytes(f.get(), name.data(), name_len, path);
    const auto rank = read_pod<std::uint32_t>(f.get(), path);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(f.get(), path);
    Tensor tensor(shape);
    read_bytes(f.get(), tensor.data(), static_cast<std::size_t>(tensor.numel()) * sizeof(float),
               path);
    state.emplace(std::move(name), std::move(tensor));
  }
  return state;
}

}  // namespace ftpim
