#include "src/common/crc32c.hpp"

#include <array>

namespace ftpim {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32c_update(std::uint32_t crc, const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32c_finish(std::uint32_t crc) noexcept { return crc ^ 0xFFFFFFFFu; }

std::uint32_t crc32c(const void* data, std::size_t size) noexcept {
  return crc32c_finish(crc32c_update(crc32c_init(), data, size));
}

}  // namespace ftpim
