#include "src/common/config.hpp"

#include <cstdlib>

#include "src/common/annotations.hpp"
#include "src/common/check.hpp"

namespace ftpim {

// env_* are one-time configuration reads (magic statics / setup code); they
// are FTPIM_COLD so the hot-path audit stops at them by design.
FTPIM_COLD int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<int>(value);
}

FTPIM_COLD double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env) return fallback;
  return value;
}

FTPIM_COLD double env_double_in(const char* name, double fallback, double lo_exclusive,
                                double hi_inclusive) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  // Full-parse: trailing junk ("0.5x") is a typo, not a smaller number.
  FTPIM_CHECK(end != env && *end == '\0', "%s: '%s' is not a number", name, env);
  // NaN fails both comparisons, so it is rejected here too.
  FTPIM_CHECK(value > lo_exclusive && value <= hi_inclusive, "%s: %g outside (%g, %g]", name,
              value, lo_exclusive, hi_inclusive);
  return value;
}

FTPIM_COLD int env_int_in(const char* name, int fallback, int lo_inclusive, int hi_inclusive) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  // Full-parse: trailing junk ("8x", "4.5") is a typo, not a smaller number.
  FTPIM_CHECK(end != env && *end == '\0', "%s: '%s' is not an integer", name, env);
  FTPIM_CHECK(value >= lo_inclusive && value <= hi_inclusive, "%s: %ld outside [%d, %d]", name,
              value, lo_inclusive, hi_inclusive);
  return static_cast<int>(value);
}

FTPIM_COLD std::string env_string(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::string(env);
}

RunScale run_scale() {
  RunScale scale;
  const std::string preset = env_string("FTPIM_SCALE", "quick");
  if (preset == "medium") {
    scale = RunScale{.epochs = 10,
                     .defect_runs = 20,
                     .train_size = 4096,
                     .test_size = 1024,
                     .image_size = 24,
                     .resnet_width = 12,
                     .batch_size = 64,
                     .name = "medium"};
  } else if (preset == "full") {
    scale = RunScale{.epochs = 160,
                     .defect_runs = 100,
                     .train_size = 50000,
                     .test_size = 10000,
                     .image_size = 32,
                     .resnet_width = 16,
                     .batch_size = 128,
                     .name = "full"};
  }
  scale.epochs = env_int("FTPIM_EPOCHS", scale.epochs);
  scale.defect_runs = env_int("FTPIM_RUNS", scale.defect_runs);
  scale.train_size = env_int("FTPIM_TRAIN", scale.train_size);
  scale.test_size = env_int("FTPIM_TEST", scale.test_size);
  scale.image_size = env_int("FTPIM_IMG", scale.image_size);
  scale.resnet_width = env_int("FTPIM_WIDTH", scale.resnet_width);
  scale.batch_size = env_int("FTPIM_BATCH", scale.batch_size);
  return scale;
}

}  // namespace ftpim
