#include "src/common/check.hpp"

#include <cstring>

namespace ftpim::detail {
namespace {

// Trailing path component only — keeps messages stable across build roots.
const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void contract_fail(const char* file, int line, const char* expr_text,
                   const std::string& values, const std::string& message) {
  std::string what;
  what.reserve(128);
  what += basename_of(file);
  what += ':';
  what += std::to_string(line);
  what += ": ";
  what += expr_text;
  what += " failed";
  if (!values.empty()) {
    what += " (";
    what += values;
    what += ')';
  }
  if (!message.empty()) {
    what += ": ";
    what += message;
  }
  throw ContractViolation(what);
}

}  // namespace ftpim::detail
