// Torn-write-safe file creation: write to a temp sibling, fsync, rename.
//
// POSIX rename(2) within one directory is atomic: readers either see the old
// file or the complete new one, never a partial write. Every durable artifact
// in ftpim (state dicts, training checkpoints) goes through this class — the
// determinism linter's `raw-file-write` rule bans std::ofstream / fopen-for-
// write everywhere else in src/ (the log sink excepted), so a crash or kill
// at any instant cannot leave a torn checkpoint under the final name.
//
// Usage:
//   AtomicFileWriter w(path);
//   w.write(bytes, size);          // any number of times
//   w.commit();                    // flush + fsync + rename; throws on error
// Destruction without commit() removes the temp file (abort semantics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ftpim {

class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp` for writing; throws CheckpointError (kind kIo) when
  /// the temp file cannot be created.
  explicit AtomicFileWriter(std::string path);

  /// Removes the temp file when commit() was never reached.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends `size` bytes; throws CheckpointError (kIo) on a short write.
  void write(const void* data, std::size_t size);
  void write(const std::vector<std::uint8_t>& bytes) {
    if (!bytes.empty()) write(bytes.data(), bytes.size());
  }

  /// Flushes, fsyncs, closes, and atomically renames the temp file onto the
  /// final path. Throws CheckpointError (kIo) on any failure (the temp file
  /// is removed); at most one commit per writer.
  void commit();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& temp_path() const noexcept { return temp_path_; }
  [[nodiscard]] bool committed() const noexcept { return committed_; }

 private:
  void discard() noexcept;  ///< close + unlink the temp file

  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
  bool committed_ = false;
};

}  // namespace ftpim
