#include "src/common/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "src/common/atomic_file.hpp"
#include "src/common/check.hpp"
#include "src/common/crc32c.hpp"

namespace ftpim {
namespace {

constexpr char kMagic[4] = {'F', 'T', 'C', 'K'};
constexpr char kSentinelTag[5] = "FEND";

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void push_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void push_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

const char* to_string(CheckpointErrorKind kind) noexcept {
  switch (kind) {
    case CheckpointErrorKind::kMissing: return "missing";
    case CheckpointErrorKind::kBadMagic: return "bad-magic";
    case CheckpointErrorKind::kVersionSkew: return "version-skew";
    case CheckpointErrorKind::kTruncated: return "truncated";
    case CheckpointErrorKind::kChecksumMismatch: return "checksum-mismatch";
    case CheckpointErrorKind::kMissingChunk: return "missing-chunk";
    case CheckpointErrorKind::kFormat: return "format";
    case CheckpointErrorKind::kStateMismatch: return "state-mismatch";
    case CheckpointErrorKind::kIo: return "io";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointErrorKind kind, std::string chunk,
                                 const std::string& detail)
    : std::runtime_error(std::string("checkpoint [") + to_string(kind) + "]" +
                         (chunk.empty() ? "" : " chunk '" + chunk + "'") + ": " + detail),
      kind_(kind),
      chunk_(std::move(chunk)) {}

// --- ByteWriter / ByteReader -------------------------------------------------

void ByteWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void ByteWriter::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  const std::uint8_t* p = take_bytes(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

const std::uint8_t* ByteReader::take_bytes(std::size_t size) {
  if (size > size_ - pos_) {
    throw CheckpointError(CheckpointErrorKind::kTruncated, context_,
                          "payload ends after " + std::to_string(size_) + " bytes, need " +
                              std::to_string(pos_) + "+" + std::to_string(size));
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += size;
  return p;
}

void ByteReader::expect_done() const {
  if (!done()) {
    throw CheckpointError(CheckpointErrorKind::kFormat, context_,
                          std::to_string(remaining()) + " unexpected trailing payload byte(s)");
  }
}

// --- CheckpointWriter --------------------------------------------------------

void CheckpointWriter::add_chunk(const std::string& tag, std::vector<std::uint8_t> payload) {
  FTPIM_CHECK_EQ(tag.size(), std::size_t{4}, "checkpoint chunk tag must be 4 chars");
  FTPIM_CHECK(tag != kSentinelTag, "checkpoint chunk tag FEND is reserved");
  for (const CheckpointChunk& c : chunks_) {
    FTPIM_CHECK(c.tag != tag, "duplicate checkpoint chunk tag '%s'", tag.c_str());
  }
  chunks_.push_back(CheckpointChunk{tag, std::move(payload)});
}

std::vector<std::uint8_t> CheckpointWriter::serialize() const {
  std::vector<std::uint8_t> out;
  std::size_t total = 8 + 16;  // header + empty sentinel frame
  for (const CheckpointChunk& c : chunks_) total += 16 + c.payload.size();
  out.reserve(total);
  // Byte-wise appends (not char-range inserts): GCC 12's -Wstringop-overflow
  // misfires on const char* range-inserts into a byte vector.
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  push_le32(out, kCheckpointFormatVersion);
  auto frame = [&out](const std::string& tag, const std::vector<std::uint8_t>& payload) {
    for (const char c : tag) out.push_back(static_cast<std::uint8_t>(c));
    push_le64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    // The CRC covers tag + payload (as in PNG): a bit flip that renames a
    // chunk — which would otherwise parse as a valid unknown chunk and
    // silently drop state — fails the checksum instead.
    std::uint32_t crc = crc32c_update(crc32c_init(), tag.data(), tag.size());
    crc = crc32c_update(crc, payload.data(), payload.size());
    push_le32(out, crc32c_finish(crc));
  };
  for (const CheckpointChunk& c : chunks_) frame(c.tag, c.payload);
  frame(kSentinelTag, {});
  return out;
}

void CheckpointWriter::write(const std::string& path) const {
  const std::vector<std::uint8_t> image = serialize();
  AtomicFileWriter file(path);
  file.write(image);
  file.commit();
}

// --- CheckpointReader --------------------------------------------------------

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

CheckpointReader::CheckpointReader(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw CheckpointError(CheckpointErrorKind::kMissing, "", "cannot open " + path);
  }
  std::vector<std::uint8_t> image;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    image.insert(image.end(), buf, buf + n);
  }
  if (std::ferror(f.get()) != 0) {
    throw CheckpointError(CheckpointErrorKind::kIo, "", "read error on " + path);
  }
  parse(image, path);
}

CheckpointReader::CheckpointReader(const std::vector<std::uint8_t>& image,
                                   const std::string& origin) {
  parse(image, origin);
}

void CheckpointReader::parse(const std::vector<std::uint8_t>& image, const std::string& origin) {
  if (image.size() < 8) {
    throw CheckpointError(CheckpointErrorKind::kTruncated, "",
                          origin + " is only " + std::to_string(image.size()) +
                              " byte(s), shorter than the header");
  }
  if (std::memcmp(image.data(), kMagic, 4) != 0) {
    throw CheckpointError(CheckpointErrorKind::kBadMagic, "",
                          origin + " does not start with FTCK");
  }
  version_ = le32(image.data() + 4);
  if (version_ > kCheckpointFormatVersion) {
    throw CheckpointError(CheckpointErrorKind::kVersionSkew, "",
                          origin + " has format version " + std::to_string(version_) +
                              ", this reader understands <= " +
                              std::to_string(kCheckpointFormatVersion));
  }
  if (version_ == 0) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "",
                          origin + " has format version 0");
  }

  std::size_t pos = 8;
  bool saw_sentinel = false;
  while (!saw_sentinel) {
    if (image.size() - pos < 12) {
      throw CheckpointError(CheckpointErrorKind::kTruncated, "",
                            origin + " ends mid-chunk-header at byte " + std::to_string(pos));
    }
    std::string tag(reinterpret_cast<const char*>(image.data() + pos), 4);
    for (const char c : tag) {
      if (c < 0x20 || c > 0x7e) {
        throw CheckpointError(CheckpointErrorKind::kFormat, "",
                              origin + " has a non-printable chunk tag at byte " +
                                  std::to_string(pos));
      }
    }
    const std::uint64_t len = le64(image.data() + pos + 4);
    pos += 12;
    if (len > image.size() - pos) {
      throw CheckpointError(CheckpointErrorKind::kTruncated, tag,
                            origin + " declares a " + std::to_string(len) +
                                "-byte payload but only " +
                                std::to_string(image.size() - pos) + " byte(s) remain");
    }
    const std::uint8_t* payload = image.data() + pos;
    pos += static_cast<std::size_t>(len);
    if (image.size() - pos < 4) {
      throw CheckpointError(CheckpointErrorKind::kTruncated, tag,
                            origin + " ends before the chunk checksum");
    }
    const std::uint32_t stored = le32(image.data() + pos);
    pos += 4;
    std::uint32_t crc = crc32c_update(crc32c_init(), tag.data(), tag.size());
    crc = crc32c_update(crc, payload, static_cast<std::size_t>(len));
    const std::uint32_t actual = crc32c_finish(crc);
    if (stored != actual) {
      throw CheckpointError(CheckpointErrorKind::kChecksumMismatch, tag,
                            origin + " chunk CRC32C " + std::to_string(actual) +
                                " != stored " + std::to_string(stored));
    }
    if (tag == kSentinelTag) {
      if (len != 0) {
        throw CheckpointError(CheckpointErrorKind::kFormat, tag,
                              origin + " end sentinel carries a payload");
      }
      saw_sentinel = true;
    } else {
      if (has_chunk(tag)) {
        throw CheckpointError(CheckpointErrorKind::kFormat, tag,
                              origin + " contains the chunk twice");
      }
      chunks_.push_back(CheckpointChunk{tag, {payload, payload + len}});
    }
  }
  if (pos != image.size()) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "",
                          origin + " has " + std::to_string(image.size() - pos) +
                              " trailing byte(s) after the end sentinel");
  }
}

bool CheckpointReader::has_chunk(const std::string& tag) const noexcept {
  for (const CheckpointChunk& c : chunks_) {
    if (c.tag == tag) return true;
  }
  return false;
}

const std::vector<std::uint8_t>& CheckpointReader::chunk(const std::string& tag) const {
  for (const CheckpointChunk& c : chunks_) {
    if (c.tag == tag) return c.payload;
  }
  throw CheckpointError(CheckpointErrorKind::kMissingChunk, tag, "required chunk not present");
}

ByteReader CheckpointReader::reader(const std::string& tag) const {
  const std::vector<std::uint8_t>& payload = chunk(tag);
  return ByteReader(payload.data(), payload.size(), tag);
}

}  // namespace ftpim
