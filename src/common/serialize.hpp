// Binary serialization of tensors and named-tensor state dicts.
//
// Format (little-endian):
//   magic "FTPM" u32 version | u64 entry_count |
//   per entry: u32 name_len, bytes name, u32 rank, i64 dims..., f32 data...
// Used for model checkpoints produced by the trainer and consumed by the
// deployment examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/tensor/tensor.hpp"

namespace ftpim {

using StateDict = std::map<std::string, Tensor>;

/// Writes a state dict to `path`; throws std::runtime_error on IO failure.
void save_state_dict(const StateDict& state, const std::string& path);

/// Reads a state dict from `path`; throws std::runtime_error on IO/format
/// failure.
StateDict load_state_dict(const std::string& path);

}  // namespace ftpim
