#include "src/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/common/config.hpp"

namespace ftpim {
namespace {

// Worker-count override. Lock-free shared state (see the atomics convention
// in thread_annotations.hpp): written by set_num_threads from any thread,
// read by every parallel_for dispatch. Release on store / acquire on load so
// a dispatcher that observes a new override also observes everything the
// setting thread did before publishing it; the value itself is a single int,
// so no stronger ordering is needed and TSan sees every access as
// synchronized (tests/parallel_test.cpp hammers this concurrently).
// 0 means "no override" — fall back to FTPIM_THREADS / hardware_concurrency.
std::atomic<int> g_thread_override{0};

// Upper bound accepted from FTPIM_THREADS. Far above any host this runs on;
// it exists so "FTPIM_THREADS=80000" (a pasted PID, say) is rejected as the
// typo it is rather than spawning a machine-killing thread storm.
constexpr int kMaxThreads = 4096;

// Set inside worker threads so nested parallel loops run serial instead of
// spawning threads on top of threads.
thread_local bool t_in_worker = false;

}  // namespace

int num_threads() {
  const int override_n = g_thread_override.load(std::memory_order_acquire);
  if (override_n > 0) return override_n;
  // Magic-static init is itself thread-safe; the env is read exactly once.
  // Strict parse: garbage like "8x" throws (tests/parallel_test.cpp covers
  // the helper directly since this static caches the first resolution).
  static const int cached = [] {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int fallback = hw > 0 ? hw : 2;
    return env_int_in("FTPIM_THREADS", fallback, 1, kMaxThreads);
  }();
  return cached;
}

void set_num_threads(int n) noexcept {
  g_thread_override.store(n > 0 ? n : 0, std::memory_order_release);
}

bool in_parallel_region() noexcept { return t_in_worker; }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_parallel_trip) {
  if (begin >= end) return;
  const std::size_t trip = end - begin;
  const int workers = num_threads();
  if (t_in_worker || workers <= 1 || trip < min_parallel_trip) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t nthreads = std::min<std::size_t>(static_cast<std::size_t>(workers), trip);
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  const std::size_t chunk = (trip + nthreads - 1) / nthreads;
  for (std::size_t t = 0; t < nthreads; ++t) {
    const std::size_t lo = begin + t * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      t_in_worker = true;
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& th : threads) th.join();
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t min_parallel_trip) {
  if (begin >= end) return;
  const std::size_t trip = end - begin;
  const int workers = num_threads();
  if (t_in_worker || workers <= 1 || trip < min_parallel_trip) {
    fn(begin, end);
    return;
  }
  const std::size_t nthreads = std::min<std::size_t>(static_cast<std::size_t>(workers), trip);
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  const std::size_t chunk = (trip + nthreads - 1) / nthreads;
  for (std::size_t t = 0; t < nthreads; ++t) {
    const std::size_t lo = begin + t * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      t_in_worker = true;
      fn(lo, hi);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace ftpim
