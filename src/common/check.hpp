// Contract-checking macros — the machine-checked invariants layer.
//
// Two tiers (see DESIGN.md "Invariants & determinism rules"):
//
//   FTPIM_CHECK(cond [, fmt, ...])        always on, every build type. Use at
//   FTPIM_CHECK_{EQ,NE,LT,LE,GT,GE}(a,b)  public API boundaries: argument
//                                         shapes, probability ranges, config
//                                         validation. Failure throws
//                                         ftpim::ContractViolation with
//                                         file:line, the failed expression,
//                                         and (for comparisons) both operand
//                                         values.
//
//   FTPIM_DCHECK(...) / FTPIM_DCHECK_*    debug-only twins for hot loops
//                                         (tensor indexing, kernel inner
//                                         preconditions). Compile away to
//                                         nothing in Release — operands are
//                                         not evaluated — so they are free on
//                                         the paper's Monte-Carlo hot path.
//
// ContractViolation derives from std::invalid_argument: call sites that used
// to `throw std::invalid_argument(...)` by hand migrate to FTPIM_CHECK
// without changing what callers (and tests) can catch.
//
// The enabled/disabled state of DCHECKs is controlled by FTPIM_DCHECK_ENABLED
// (0/1). The build sets it via the FTPIM_DCHECKS CMake option (AUTO = on in
// Debug, off in Release); standalone inclusion falls back to !NDEBUG.
// The optional message is printf-style, same formatting as the logger.
#pragma once

#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "src/common/strformat.hpp"

#if !defined(FTPIM_DCHECK_ENABLED)
#if defined(NDEBUG)
#define FTPIM_DCHECK_ENABLED 0
#else
#define FTPIM_DCHECK_ENABLED 1
#endif
#endif

namespace ftpim {

/// Thrown by every violated FTPIM_CHECK*/FTPIM_DCHECK*. IS-A
/// std::invalid_argument (hence std::logic_error), so legacy catch sites work.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

/// True when FTPIM_DCHECK* are live in this build (tests branch on this to
/// assert both the firing and the compiled-away behavior).
inline constexpr bool kDChecksEnabled = FTPIM_DCHECK_ENABLED != 0;

namespace detail {

/// Builds the what() string and throws ContractViolation. `values` is the
/// pre-rendered "3 vs 4" operand text for comparison checks ("" otherwise).
[[noreturn]] void contract_fail(const char* file, int line, const char* expr_text,
                                const std::string& values, const std::string& message);

/// Renders one comparison operand for the failure message. Arithmetic types
/// print their value; anything else prints a placeholder so the header stays
/// iostream-free.
template <typename T>
std::string contract_repr(const T& v) {
  using D = std::decay_t<T>;
  if constexpr (std::is_same_v<D, bool>) {
    return v ? "true" : "false";
  } else if constexpr (std::is_enum_v<D>) {
    return std::to_string(static_cast<long long>(static_cast<std::underlying_type_t<D>>(v)));
  } else if constexpr (std::is_arithmetic_v<D>) {
    return std::to_string(v);
  } else if constexpr (std::is_convertible_v<const T&, std::string>) {
    return std::string(v);
  } else {
    return "<value>";
  }
}

inline std::string contract_msg() { return {}; }
template <typename... Args>
std::string contract_msg(const char* fmt, Args&&... args) {
  return format_msg(fmt, std::forward<Args>(args)...);
}

}  // namespace detail
}  // namespace ftpim

#define FTPIM_CHECK(cond, ...)                                                        \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      ::ftpim::detail::contract_fail(__FILE__, __LINE__, "FTPIM_CHECK(" #cond ")",    \
                                     std::string(),                                   \
                                     ::ftpim::detail::contract_msg(__VA_ARGS__));     \
    }                                                                                 \
  } while (0)

// Operands are evaluated exactly once; both values appear in the message.
#define FTPIM_CHECK_OP_(checkname, op, a, b, ...)                                     \
  do {                                                                                \
    const auto& ftpim_chk_a_ = (a);                                                   \
    const auto& ftpim_chk_b_ = (b);                                                   \
    if (!(ftpim_chk_a_ op ftpim_chk_b_)) {                                            \
      ::ftpim::detail::contract_fail(                                                 \
          __FILE__, __LINE__, checkname "(" #a ", " #b ")",                           \
          ::ftpim::detail::contract_repr(ftpim_chk_a_) + " vs " +                     \
              ::ftpim::detail::contract_repr(ftpim_chk_b_),                           \
          ::ftpim::detail::contract_msg(__VA_ARGS__));                                \
    }                                                                                 \
  } while (0)

#define FTPIM_CHECK_EQ(a, b, ...) FTPIM_CHECK_OP_("FTPIM_CHECK_EQ", ==, a, b, __VA_ARGS__)
#define FTPIM_CHECK_NE(a, b, ...) FTPIM_CHECK_OP_("FTPIM_CHECK_NE", !=, a, b, __VA_ARGS__)
#define FTPIM_CHECK_LT(a, b, ...) FTPIM_CHECK_OP_("FTPIM_CHECK_LT", <, a, b, __VA_ARGS__)
#define FTPIM_CHECK_LE(a, b, ...) FTPIM_CHECK_OP_("FTPIM_CHECK_LE", <=, a, b, __VA_ARGS__)
#define FTPIM_CHECK_GT(a, b, ...) FTPIM_CHECK_OP_("FTPIM_CHECK_GT", >, a, b, __VA_ARGS__)
#define FTPIM_CHECK_GE(a, b, ...) FTPIM_CHECK_OP_("FTPIM_CHECK_GE", >=, a, b, __VA_ARGS__)

#if FTPIM_DCHECK_ENABLED

#define FTPIM_DCHECK(cond, ...) FTPIM_CHECK(cond, __VA_ARGS__)
#define FTPIM_DCHECK_EQ(a, b, ...) FTPIM_CHECK_EQ(a, b, __VA_ARGS__)
#define FTPIM_DCHECK_NE(a, b, ...) FTPIM_CHECK_NE(a, b, __VA_ARGS__)
#define FTPIM_DCHECK_LT(a, b, ...) FTPIM_CHECK_LT(a, b, __VA_ARGS__)
#define FTPIM_DCHECK_LE(a, b, ...) FTPIM_CHECK_LE(a, b, __VA_ARGS__)
#define FTPIM_DCHECK_GT(a, b, ...) FTPIM_CHECK_GT(a, b, __VA_ARGS__)
#define FTPIM_DCHECK_GE(a, b, ...) FTPIM_CHECK_GE(a, b, __VA_ARGS__)

#else  // FTPIM_DCHECK_ENABLED

// sizeof keeps the operands type-checked but UNEVALUATED (no side effects,
// no codegen) while still counting as a use for -Wunused purposes.
#define FTPIM_DCHECK(cond, ...) static_cast<void>(sizeof(!(cond)))
#define FTPIM_DCHECK_EQ(a, b, ...) static_cast<void>(sizeof(!((a) == (b))))
#define FTPIM_DCHECK_NE(a, b, ...) static_cast<void>(sizeof(!((a) != (b))))
#define FTPIM_DCHECK_LT(a, b, ...) static_cast<void>(sizeof(!((a) < (b))))
#define FTPIM_DCHECK_LE(a, b, ...) static_cast<void>(sizeof(!((a) <= (b))))
#define FTPIM_DCHECK_GT(a, b, ...) static_cast<void>(sizeof(!((a) > (b))))
#define FTPIM_DCHECK_GE(a, b, ...) static_cast<void>(sizeof(!((a) >= (b))))

#endif  // FTPIM_DCHECK_ENABLED
