#include "src/common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "src/common/checkpoint_error.hpp"

namespace ftpim {
namespace {

[[noreturn]] void throw_io(const std::string& detail) {
  throw CheckpointError(CheckpointErrorKind::kIo, "",
                        detail + ": " + std::strerror(errno));
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) throw_io("AtomicFileWriter: cannot open " + temp_path_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) discard();
}

void AtomicFileWriter::discard() noexcept {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(temp_path_.c_str());
}

void AtomicFileWriter::write(const void* data, std::size_t size) {
  if (file_ == nullptr) {
    throw CheckpointError(CheckpointErrorKind::kIo, "",
                          "AtomicFileWriter: write after commit on " + path_);
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    const int saved = errno;
    discard();
    errno = saved;
    throw_io("AtomicFileWriter: short write to " + temp_path_);
  }
}

void AtomicFileWriter::commit() {
  if (file_ == nullptr) {
    throw CheckpointError(CheckpointErrorKind::kIo, "",
                          "AtomicFileWriter: double commit on " + path_);
  }
  if (std::fflush(file_) != 0) {
    discard();
    throw_io("AtomicFileWriter: flush failed for " + temp_path_);
  }
  // fsync before rename: the rename must not become durable before the data.
  if (::fsync(::fileno(file_)) != 0) {
    discard();
    throw_io("AtomicFileWriter: fsync failed for " + temp_path_);
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    std::remove(temp_path_.c_str());
    throw_io("AtomicFileWriter: close failed for " + temp_path_);
  }
  file_ = nullptr;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    const int saved = errno;
    std::remove(temp_path_.c_str());
    errno = saved;
    throw_io("AtomicFileWriter: rename to " + path_ + " failed");
  }
  committed_ = true;
}

}  // namespace ftpim
