// Environment-driven experiment scaling.
//
// The paper's experiments ran 160-epoch GPU training on real CIFAR; on the
// reproduction host (CPU-only) the benches default to reduced sizes. All
// scale knobs live here so every bench/example interprets them identically:
//
//   FTPIM_SCALE  = quick | medium | full   (preset bundle; default quick)
//   FTPIM_EPOCHS = <int>    override epochs per training stage
//   FTPIM_RUNS   = <int>    override num_of_runs for defect averaging
//   FTPIM_TRAIN  = <int>    override train-set size
//   FTPIM_TEST   = <int>    override test-set size
//   FTPIM_IMG    = <int>    override image side (HxW)
//   FTPIM_WIDTH  = <int>    override ResNet base width
//   FTPIM_THREADS= <int>    override worker thread count
#pragma once

#include <string>

namespace ftpim {

struct RunScale {
  int epochs = 3;          ///< epochs per training stage (paper: 160)
  int defect_runs = 6;     ///< Monte-Carlo defect maps per point (paper: 100)
  int train_size = 896;    ///< training samples (CIFAR: 50000)
  int test_size = 384;     ///< test samples (CIFAR: 10000)
  int image_size = 16;     ///< image side (CIFAR: 32)
  int resnet_width = 8;    ///< ResNet stage-1 channels (paper: 16)
  int batch_size = 64;
  std::string name = "quick";
};

/// Resolves the active scale from the environment (see file comment).
[[nodiscard]] RunScale run_scale();

/// Reads an integer env var, returning fallback when unset/unparsable.
[[nodiscard]] int env_int(const char* name, int fallback);

/// Reads a float env var, returning fallback when unset/unparsable.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Strict variant for knobs where a typo must not silently fall back: the
/// value must parse IN FULL as a finite number inside (lo, hi] or the call
/// throws ContractViolation naming the env var and the offending text.
/// Unset/empty still returns fallback (the knob is optional, not mistyped).
[[nodiscard]] double env_double_in(const char* name, double fallback, double lo_exclusive,
                                   double hi_inclusive);

/// Integer sibling of env_double_in: the value must parse IN FULL as a
/// decimal integer inside [lo, hi] or the call throws ContractViolation.
/// Unset/empty returns fallback. FTPIM_THREADS goes through this — a
/// mistyped worker count must fail loudly, not silently serialize the run.
[[nodiscard]] int env_int_in(const char* name, int fallback, int lo_inclusive, int hi_inclusive);

/// Reads a string env var, returning fallback when unset.
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback);

}  // namespace ftpim
