// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every checkpoint chunk (src/common/checkpoint.hpp).
//
// Chosen over CRC32 (zlib polynomial) for its better error-detection
// properties on short frames and because it is the checksum hardware
// accelerates (SSE4.2 crc32, ARMv8 CRC) — this software table version keeps
// the repo dependency-free while staying bit-compatible with accelerated
// implementations and with tools/ftpim_ckpt.py's Python mirror.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ftpim {

/// One-shot CRC32C of `size` bytes (the common case: one checkpoint chunk).
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t size) noexcept;

/// Streaming form: feed `crc` from the previous call (start from
/// crc32c_init()) and finalize with crc32c_finish(). crc32c() above is
/// crc32c_finish(crc32c_update(crc32c_init(), data, size)).
[[nodiscard]] std::uint32_t crc32c_init() noexcept;
[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                                          std::size_t size) noexcept;
[[nodiscard]] std::uint32_t crc32c_finish(std::uint32_t crc) noexcept;

}  // namespace ftpim
