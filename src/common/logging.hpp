// Minimal leveled logger. Thread-safe at line granularity: concurrent
// log_* calls never interleave within a line (the sink runs under a mutex —
// see logging.cpp for the Clang thread-safety annotations).
#pragma once

#include <string>
#include <utility>

#include "src/common/strformat.hpp"

namespace ftpim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kInfo,
/// overridable with environment variable FTPIM_LOG={debug,info,warn,error,off}.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Sink hook: receives every emitted line instead of stderr. Used by tests to
/// capture output and by embedding hosts to reroute logs. The callback runs
/// under the logging mutex (so it must not log). nullptr restores stderr.
using LogSink = void (*)(LogLevel level, const std::string& line, void* user);
void set_log_sink(LogSink sink, void* user) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    detail::log_line(LogLevel::kDebug, detail::format_msg(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    detail::log_line(LogLevel::kInfo, detail::format_msg(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    detail::log_line(LogLevel::kWarn, detail::format_msg(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kError)
    detail::log_line(LogLevel::kError, detail::format_msg(fmt, std::forward<Args>(args)...));
}

}  // namespace ftpim
