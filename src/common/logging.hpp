// Minimal leveled logger. Not thread-interleave-safe beyond line granularity;
// suitable for experiment harness progress output.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace ftpim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kInfo,
/// overridable with environment variable FTPIM_LOG={debug,info,warn,error,off}.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string format_msg(const char* fmt, Args&&... args) {
  const int needed = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (needed <= 0) return std::string(fmt);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
  return out;
}
inline std::string format_msg(const char* fmt) { return std::string(fmt); }
}  // namespace detail

template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    detail::log_line(LogLevel::kDebug, detail::format_msg(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    detail::log_line(LogLevel::kInfo, detail::format_msg(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    detail::log_line(LogLevel::kWarn, detail::format_msg(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kError)
    detail::log_line(LogLevel::kError, detail::format_msg(fmt, std::forward<Args>(args)...));
}

}  // namespace ftpim
