// Thread-parallel loop helper.
//
// Uses OpenMP when compiled with it, otherwise falls back to a std::thread
// splitter. Grain control keeps tiny loops serial (thread spawn costs more
// than the work on 2-core hosts).
#pragma once

#include <cstddef>
#include <functional>

namespace ftpim {

/// Number of worker threads parallel_for will use (env FTPIM_THREADS or
/// hardware_concurrency).
[[nodiscard]] int num_threads() noexcept;

/// Runs fn(i) for i in [begin, end). Runs serially when the trip count is
/// below min_parallel_trip or only one worker is configured.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_parallel_trip = 2);

/// Runs fn(chunk_begin, chunk_end) over contiguous chunks — lower dispatch
/// overhead than per-index parallel_for for fine-grained bodies.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t min_parallel_trip = 1024);

}  // namespace ftpim
