// Thread-parallel loop helper.
//
// Uses a std::thread splitter with grain control that keeps tiny loops serial
// (thread spawn costs more than the work on 2-core hosts). Parallel regions
// do not nest: a parallel_for issued from inside a worker thread runs serial,
// so coarse outer loops (e.g. the defect evaluator fanning out Monte-Carlo
// runs) are never oversubscribed by the per-image parallelism inside
// Conv2d::forward.
#pragma once

#include <cstddef>
#include <functional>

namespace ftpim {

/// Number of worker threads parallel_for will use: set_num_threads() override
/// if active, else env FTPIM_THREADS, else hardware_concurrency. FTPIM_THREADS
/// is parsed strictly (env_int_in): a malformed or out-of-range value throws
/// ContractViolation on the first call instead of silently falling back —
/// the worker count decides wall-clock AND chunking, so a typo must be loud.
[[nodiscard]] int num_threads();

/// Overrides the worker count at runtime (n >= 1); n <= 0 clears the
/// override, falling back to FTPIM_THREADS / hardware_concurrency. Intended
/// for tests (thread-count invariance checks) and embedding hosts that
/// manage their own thread budget. Safe to call concurrently with
/// num_threads() and with running parallel loops: the override is a single
/// release/acquire atomic (documented in parallel.cpp), so concurrent
/// override + read is formally race-free; loops already dispatched keep the
/// worker count they read at entry.
void set_num_threads(int n) noexcept;

/// True while the calling thread is inside a parallel_for worker — nested
/// parallel loops detect this and degrade to serial execution.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Runs fn(i) for i in [begin, end). Runs serially when the trip count is
/// below min_parallel_trip, only one worker is configured, or the caller is
/// itself a parallel_for worker (no nested parallelism).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_parallel_trip = 2);

/// Runs fn(chunk_begin, chunk_end) over contiguous chunks — lower dispatch
/// overhead than per-index parallel_for for fine-grained bodies. Same
/// serial-fallback rules as parallel_for.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t min_parallel_trip = 1024);

}  // namespace ftpim
