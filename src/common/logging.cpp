#include "src/common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/thread_annotations.hpp"

namespace ftpim {
namespace {

// Log threshold. Lock-free: relaxed is sufficient because the level is a
// standalone filter — no other data is published through it.
std::atomic<int> g_level{-1};  // -1 = not yet initialized from env

// Serializes sink invocation (line-granularity interleaving guarantee) and
// guards the sink registration below.
Mutex g_mutex;
LogSink g_sink FTPIM_GUARDED_BY(g_mutex) = nullptr;
void* g_sink_user FTPIM_GUARDED_BY(g_mutex) = nullptr;

LogLevel level_from_env() {
  const char* env = std::getenv("FTPIM_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

LogLevel log_level() noexcept {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(level_from_env());
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_sink(LogSink sink, void* user) noexcept {
  const MutexLock lock(g_mutex);
  g_sink = sink;
  g_sink_user = user;
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const MutexLock lock(g_mutex);
  if (g_sink != nullptr) {
    g_sink(level, msg, g_sink_user);
    return;
  }
  std::fprintf(stderr, "[ftpim %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace ftpim
