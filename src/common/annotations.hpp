// FTPIM_HOT / FTPIM_COLD — hot-path annotations.
//
// FTPIM_HOT marks a function as steady-state hot path: the serve
// pop/batch/dispatch loop, the packed GEMM driver and micro-kernels, and
// PackArena steady-state accessors. tools/ftpim_analyze.py audits every
// FTPIM_HOT body AND everything it locally calls for heap allocation,
// container growth, std::string construction, mutex acquisition and
// wall-clock reads; violations must be fixed or explicitly baselined in
// tools/analyze_baseline.json with a reason.
//
// FTPIM_COLD marks an acknowledged slow path (arena growth, error
// settlement, one-time config reads, lazy materialization): the audit's
// call-graph traversal stops there, so a hot function may call a cold one
// without inheriting its allocations. Annotate the cold boundary narrowly —
// everything behind it is invisible to the audit.
//
// On GCC/Clang the macros also emit [[gnu::hot]] / [[gnu::cold]] so the
// optimizer and BOLT-style layout tools see the same contract. Place them
// at the very start of the declaration (before `static`).
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define FTPIM_HOT [[gnu::hot]]
#define FTPIM_COLD [[gnu::cold]]
#else
#define FTPIM_HOT
#define FTPIM_COLD
#endif
