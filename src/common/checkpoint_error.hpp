// Typed failure surface of the durable-checkpoint subsystem.
//
// Every way a checkpoint can fail to load (or be written) maps to exactly one
// CheckpointErrorKind, so callers — the trainer's resume path, the
// crash-injection CI leg, tools/ftpim_ckpt.py's C++ agreement tests — can
// assert on the failure mode instead of string-matching what(). A corrupted
// file must NEVER surface as a crash or a silently garbage state dict: the
// reader (src/common/checkpoint.hpp) validates framing and per-chunk CRC32C
// before any payload is decoded.
#pragma once

#include <stdexcept>
#include <string>

namespace ftpim {

enum class CheckpointErrorKind {
  kMissing,           ///< file does not exist / cannot be opened for reading
  kBadMagic,          ///< leading magic is not "FTCK" (not a checkpoint)
  kVersionSkew,       ///< written by a newer format version than this reader
  kTruncated,         ///< file ends mid-header, mid-chunk, or before the sentinel
  kChecksumMismatch,  ///< a chunk's CRC32C does not match its payload
  kMissingChunk,      ///< framing is valid but a required chunk is absent
  kFormat,            ///< framing/payload is malformed (duplicate chunk, bad field...)
  kStateMismatch,     ///< checkpoint is valid but incompatible with the resuming run
  kIo,                ///< write-side failure (open/short write/fsync/rename)
};

/// Human-readable kind name ("truncated", "checksum-mismatch", ...).
[[nodiscard]] const char* to_string(CheckpointErrorKind kind) noexcept;

/// IS-A std::runtime_error; what() carries kind, failing chunk (when the
/// error is chunk-scoped) and detail text.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorKind kind, std::string chunk, const std::string& detail);

  [[nodiscard]] CheckpointErrorKind kind() const noexcept { return kind_; }
  /// Four-character tag of the failing chunk, or "" for file-level errors.
  [[nodiscard]] const std::string& chunk() const noexcept { return chunk_; }

 private:
  CheckpointErrorKind kind_;
  std::string chunk_;
};

}  // namespace ftpim
