#include "src/common/rng.hpp"

// Rng is fully inline; this TU exists so the module shows up in the library
// and to host any future out-of-line additions.
namespace ftpim {
static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);
}  // namespace ftpim
