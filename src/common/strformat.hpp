// printf-style formatting into std::string.
//
// Shared by the logging layer and the contract-check layer so both produce
// identically formatted messages. The two-pass snprintf sizes the buffer
// exactly; a malformed format string degrades to returning the format text.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace ftpim::detail {

template <typename... Args>
std::string format_msg(const char* fmt, Args&&... args) {
  const int needed = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (needed <= 0) return std::string(fmt);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
  return out;
}
inline std::string format_msg(const char* fmt) { return std::string(fmt); }

}  // namespace ftpim::detail
