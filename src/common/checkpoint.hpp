// CRC32C-framed chunked checkpoint container (DESIGN.md §10).
//
// File layout (little-endian):
//   u32 magic "FTCK" | u32 format_version |
//   chunk*: u32 tag | u64 payload_len | payload bytes | u32 crc32c(tag+payload)
//   sentinel: tag "FEND" | u64 0 | u32 crc32c("FEND")
//
// Properties the framing buys:
//   * torn/truncated files are detected structurally (missing sentinel or a
//     short chunk) before any payload is trusted;
//   * a bit flip anywhere in a tag or payload fails that chunk's CRC32C
//     (the CRC covers tag + payload, as in PNG, so a flipped tag cannot
//     masquerade as a valid unknown chunk), naming the chunk; flips in the
//     header fail magic/version checks; flips in framing fields surface as
//     truncation/format errors — every corruption mode maps to a typed
//     CheckpointError, never a crash or a silent garbage load
//     (tests/checkpoint_test.cpp sweeps them);
//   * unknown chunk tags are skipped after CRC validation, so older readers
//     tolerate additive extensions (removing or reinterpreting a chunk bumps
//     kFormatVersion, which readers reject as kVersionSkew).
//
// Writing always goes through AtomicFileWriter, so a crash mid-save never
// replaces the previous good checkpoint with a partial one.
//
// ByteWriter/ByteReader are the bounds-checked scalar codecs used for chunk
// payloads here and by the reram/optim/core state-capture layers; the Python
// inspector (tools/ftpim_ckpt.py) mirrors both the framing and the codecs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/checkpoint_error.hpp"

namespace ftpim {

/// Current container format version. Readers reject anything newer.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

// --- scalar byte codecs ------------------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// Length-prefixed (u32) byte string.
  void str(const std::string& s);
  void raw(const void* data, std::size_t size);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> bytes_;
};

/// Reads back what ByteWriter wrote. Out-of-bounds reads throw
/// CheckpointError(kTruncated) carrying `context` (typically the chunk tag).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}
  ByteReader(const std::vector<std::uint8_t>& bytes, std::string context)
      : ByteReader(bytes.data(), bytes.size(), std::move(context)) {}

  [[nodiscard]] std::uint8_t u8() { return take_bytes(1)[0]; }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  /// Borrow `size` raw bytes (valid while the underlying buffer lives).
  [[nodiscard]] const std::uint8_t* take_bytes(std::size_t size);

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }
  /// Throws CheckpointError(kFormat) unless the payload was fully consumed.
  void expect_done() const;

 private:
  template <typename T>
  T read_le() {
    const std::uint8_t* p = take_bytes(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) v |= static_cast<T>(p[i]) << (8 * i);
    return v;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

// --- chunked container -------------------------------------------------------

struct CheckpointChunk {
  std::string tag;  ///< exactly 4 printable characters
  std::vector<std::uint8_t> payload;
};

/// Accumulates chunks and writes the framed file atomically.
class CheckpointWriter {
 public:
  /// Tags must be unique, 4 chars. Payload is moved in.
  void add_chunk(const std::string& tag, std::vector<std::uint8_t> payload);

  /// Frames all chunks (in insertion order) + sentinel and writes the file
  /// through AtomicFileWriter. Throws CheckpointError(kIo) on IO failure.
  void write(const std::string& path) const;

  /// In-memory image of the file (exposed for format tests).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

 private:
  std::vector<CheckpointChunk> chunks_;
};

/// Fully validates a checkpoint file on open: magic, version, every chunk's
/// framing and CRC32C, and the end sentinel. After construction, chunk
/// payloads are trustworthy bytes.
class CheckpointReader {
 public:
  /// Throws CheckpointError (kMissing/kBadMagic/kVersionSkew/kTruncated/
  /// kChecksumMismatch/kFormat) on any defect.
  explicit CheckpointReader(const std::string& path);

  /// Parses an in-memory image (same validation; `origin` names the source
  /// in error messages).
  CheckpointReader(const std::vector<std::uint8_t>& image, const std::string& origin);

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] const std::vector<CheckpointChunk>& chunks() const noexcept { return chunks_; }
  [[nodiscard]] bool has_chunk(const std::string& tag) const noexcept;

  /// Payload of chunk `tag`; throws CheckpointError(kMissingChunk) when absent.
  [[nodiscard]] const std::vector<std::uint8_t>& chunk(const std::string& tag) const;

  /// ByteReader over chunk `tag` (context pre-set to the tag).
  [[nodiscard]] ByteReader reader(const std::string& tag) const;

 private:
  void parse(const std::vector<std::uint8_t>& image, const std::string& origin);

  std::uint32_t version_ = 0;
  std::vector<CheckpointChunk> chunks_;
};

}  // namespace ftpim
