// Deterministic random number generation for ftpim.
//
// Everything stochastic in the library (weight init, data generation, fault
// maps, training-time fault injection) draws from an explicitly seeded Rng so
// that experiments are reproducible bit-for-bit. Device d's defect map is
// seeded with derive_seed(master_seed, d), which decorrelates streams without
// any shared state.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>

namespace ftpim {

/// splitmix64 step: the standard seed-expansion function. Used both to expand
/// a user seed into xoshiro state and to derive independent sub-stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a statistically independent seed for sub-stream `stream_id` of a
/// master seed. Suitable for per-device / per-layer / per-epoch streams.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t stream_id) noexcept {
  std::uint64_t s = master ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  // Two rounds of splitmix to break up low-entropy stream ids.
  (void)splitmix64(s);
  return splitmix64(s);
}

/// Complete serializable state of an Rng: the four xoshiro256** words plus
/// the Box-Muller cache. Capturing and restoring it resumes the stream
/// bit-exactly — the checkpoint subsystem (DESIGN.md §10) persists the
/// long-lived streams (e.g. the DataLoader's augmentation Rng) this way.
struct RngState {
  std::uint64_t words[4]{};
  float cached = 0.0f;
  bool has_cached = false;

  friend bool operator==(const RngState& a, const RngState& b) noexcept {
    return a.words[0] == b.words[0] && a.words[1] == b.words[1] && a.words[2] == b.words[2] &&
           a.words[3] == b.words[3] && a.has_cached == b.has_cached &&
           (!a.has_cached || a.cached == b.cached);
  }
};

/// xoshiro256** — small, fast, high-quality PRNG (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Snapshot of the full generator state (see RngState).
  [[nodiscard]] RngState state() const noexcept {
    RngState s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.cached = cached_;
    s.has_cached = has_cached_;
    return s;
  }

  /// Restores a snapshot: the stream continues exactly where state() was
  /// taken, including a pending Box-Muller second value.
  void set_state(const RngState& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    cached_ = s.cached;
    has_cached_ = s.has_cached;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  [[nodiscard]] float uniform() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  [[nodiscard]] float uniform(float lo, float hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli(p) — true with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform_double() < p; }

  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] float normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u1 = uniform();
    // Avoid log(0).
    while (u1 <= 1e-12f) u1 = uniform();
    const float u2 = uniform();
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530717958647692f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  [[nodiscard]] float normal(float mean, float stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal with the given parameters of the underlying normal.
  [[nodiscard]] float lognormal(float mu, float sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Fisher-Yates shuffle of indices [0, n) written into out (size n).
  template <typename Index>
  void shuffle(Index* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<Index>(i);
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      const Index tmp = out[i - 1];
      out[i - 1] = out[j];
      out[j] = tmp;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace ftpim
