// Small descriptive-statistics helpers used by evaluators and benches.
#pragma once

#include <vector>

namespace ftpim {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean/std/min/max of a sample (population std). Empty input -> zeros.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// q-quantile (0 <= q <= 1) by nearest-rank on a sorted copy.
/// Throws std::invalid_argument on empty input or q outside [0,1].
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace ftpim
