// Small descriptive-statistics helpers used by evaluators, benches, and the
// serving layer's latency accounting.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

namespace ftpim {

class ByteWriter;
class ByteReader;

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean/std/min/max of a sample (population std). Empty input -> zeros.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// q-quantile (0 <= q <= 1) by nearest-rank on a sorted copy.
/// Throws std::invalid_argument on empty input or q outside [0,1].
[[nodiscard]] double quantile(std::vector<double> values, double q);

namespace detail {
template <typename T>
[[nodiscard]] double stat_value(const T& v) {
  return static_cast<double>(v);
}
/// Durations summarize as seconds (matches Timer::seconds()).
template <typename Rep, typename Period>
[[nodiscard]] double stat_value(const std::chrono::duration<Rep, Period>& d) {
  return std::chrono::duration<double>(d).count();
}
template <typename T>
[[nodiscard]] std::vector<double> to_doubles(const std::vector<T>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const T& v : values) out.push_back(stat_value(v));
  return out;
}
}  // namespace detail

/// summarize/quantile over float, integer, or std::chrono::duration samples
/// (durations are converted to seconds) — callers no longer hand-copy into a
/// std::vector<double> first.
template <typename T>
[[nodiscard]] Summary summarize(const std::vector<T>& values) {
  return summarize(detail::to_doubles(values));
}
template <typename T>
[[nodiscard]] double quantile(const std::vector<T>& values, double q) {
  return quantile(detail::to_doubles(values), q);
}

/// Fixed-capacity sliding window of boolean outcomes — the integer-exact
/// health gauge behind the serving layer's per-replica HealthMonitor.
///
/// record() is O(1); the state (and therefore success_rate()) is a pure
/// function of the recorded sequence, so health decisions driven by it are
/// bit-reproducible across runs. An empty window reads as rate 1.0: absence
/// of evidence is not evidence of ill health.
class OutcomeWindow {
 public:
  explicit OutcomeWindow(int capacity = 64);

  /// Records one outcome, evicting the oldest once the window is full.
  void record(bool success) noexcept;

  /// Forgets everything (e.g. after a replica repair).
  void reset() noexcept;

  [[nodiscard]] int capacity() const noexcept { return static_cast<int>(ring_.size()); }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] int successes() const noexcept { return successes_; }
  [[nodiscard]] int failures() const noexcept { return size_ - successes_; }

  /// successes/size; 1.0 while empty.
  [[nodiscard]] double success_rate() const noexcept {
    return size_ == 0 ? 1.0 : static_cast<double>(successes_) / static_cast<double>(size_);
  }

  /// Checkpoint encoding (capacity, cursor, and the ring bytes). Round-trips
  /// exactly through decode(), including the eviction cursor, so a resumed
  /// fleet device keeps forgetting outcomes in the same order it would have.
  void encode(ByteWriter& out) const;
  /// Parses an encode()d window; throws CheckpointError(kFormat) on
  /// inconsistent framing (cursor/size outside the ring, success mismatch).
  [[nodiscard]] static OutcomeWindow decode(ByteReader& in);

 private:
  std::vector<std::uint8_t> ring_;
  int head_ = 0;  ///< next slot to overwrite
  int size_ = 0;
  int successes_ = 0;
};

/// Fixed-bin log-spaced latency histogram (nanosecond samples).
///
/// Bins are quarter-octave (4 sub-bins per power of two, ~19-25% relative
/// width) covering [1ns, 2^32 ns ≈ 4.3s); samples outside clamp to the edge
/// bins while exact min/max/sum are tracked separately. All state is integer,
/// so merge() is exactly associative and commutative — per-worker histograms
/// merged in any order yield bit-identical quantiles.
class LatencyHistogram {
 public:
  static constexpr int kOctaves = 32;
  static constexpr int kSubBins = 4;  ///< per octave
  static constexpr int kBins = kOctaves * kSubBins;

  /// Records one latency sample; ns < 1 clamps to the first bin.
  void record(std::int64_t ns) noexcept;

  /// Accumulates `other` into *this (exact, associative).
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// q-quantile estimate (bin upper edge, clamped to the observed [min,max]).
  /// Throws ContractViolation for q outside [0,1]; returns 0 when empty.
  [[nodiscard]] std::int64_t quantile_ns(double q) const;

  [[nodiscard]] std::int64_t p50_ns() const { return quantile_ns(0.50); }
  [[nodiscard]] std::int64_t p95_ns() const { return quantile_ns(0.95); }
  [[nodiscard]] std::int64_t p99_ns() const { return quantile_ns(0.99); }

  /// Exact aggregates (0 when empty).
  [[nodiscard]] double mean_ns() const noexcept;
  [[nodiscard]] std::int64_t min_ns() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max_ns() const noexcept { return count_ == 0 ? 0 : max_; }

  [[nodiscard]] const std::array<std::int64_t, kBins>& bin_counts() const noexcept {
    return counts_;
  }

  /// Bin index a sample lands in / inclusive upper edge of a bin (both pure,
  /// exposed for tests).
  [[nodiscard]] static int bin_index(std::int64_t ns) noexcept;
  [[nodiscard]] static std::int64_t bin_upper_ns(int bin) noexcept;

 private:
  std::array<std::int64_t, kBins> counts_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;  ///< exact ns total (int math keeps merge associative)
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace ftpim
