// Fleet sweep configuration + deterministic heterogeneous device profiles.
//
// A fleet run simulates num_devices virtual edge devices for `ticks` steps of
// a shared virtual clock. Devices are NOT identical: each one draws a
// DeviceProfile — manufacturing defect rate, aging speed, traffic intensity,
// and datapath (float vs quantized) — from the FleetConfig's
// ProfileDistribution. The draw is a pure function of (seed, device index)
// via draw_profile(), so device d has the same profile at any thread count,
// after any checkpoint resume, and across processes; nothing about a profile
// is stored in checkpoints because the config reproduces it.
//
// Rates (defect and aging probabilities) are drawn LOG-uniform: a fleet
// spanning p_sa in [0.002, 0.02] should have as many devices per decade near
// the benign end as near the hostile end, which a linear draw would not give.
// Traffic (batches per tick) is a plain uniform integer draw.
//
// FleetConfig::encode() is the canonical byte encoding used as the FLCF
// checkpoint chunk: resume() byte-compares it against the live config and
// refuses to resume a sweep under different parameters (CheckpointError
// kStateMismatch), because profiles, fault streams, and policy behavior are
// all functions of the config.
#pragma once

#include <cstdint>
#include <string>

#include "src/fleet/repair_policy.hpp"
#include "src/reram/fault_injector.hpp"
#include "src/reram/fault_model.hpp"
#include "src/reram/qinfer/quantized_engine.hpp"
#include "src/tensor/tensor.hpp"

namespace ftpim {
class ByteWriter;
class ByteReader;
}  // namespace ftpim

namespace ftpim::fleet {

/// Which compute engine a device's ReplicaPool deploys through.
enum class Datapath : std::uint8_t {
  kFloat = 0,      ///< faults folded into float weights
  kQuantized = 1,  ///< int8 conductance-domain engines (+ ABFT detection)
};

[[nodiscard]] const char* to_string(Datapath datapath) noexcept;

/// One device's fixed-at-birth characteristics (the draw of draw_profile).
struct DeviceProfile {
  double p_sa = 0.01;               ///< manufacturing per-cell stuck-at rate
  double aging_per_interval = 0.0;  ///< per-cell failure rate per aging interval
  std::int64_t batches_per_tick = 16;  ///< traffic slice served each tick
  Datapath datapath = Datapath::kQuantized;
};

/// Ranges the per-device draws come from. min == max pins a knob fleet-wide.
struct ProfileDistribution {
  double p_sa_min = 0.002;  ///< log-uniform manufacturing defect rate
  double p_sa_max = 0.02;
  double aging_min = 1e-5;  ///< log-uniform per-interval aging rate
  double aging_max = 4e-4;
  std::int64_t traffic_min = 8;  ///< uniform integer batches/tick
  std::int64_t traffic_max = 64;
  /// Fraction of devices on the quantized datapath (the rest run float).
  /// Quantized devices carry ABFT checksums and can take transient upsets;
  /// float devices are blind to both (no checksum hardware to model).
  double quantized_fraction = 1.0;

  void validate() const;
};

struct FleetConfig {
  int num_devices = 100;
  std::int64_t ticks = 64;  ///< virtual-clock horizon of run()

  /// Probe-set geometry: every device is scored each tick on the same
  /// known-answer canary set (make_canary_set) built from the clean model.
  Shape sample_shape{16};
  int probe_samples = 32;

  /// A device DIES (permanently, Kaplan-Meier event) the first tick its
  /// probe accuracy drops below this floor.
  double accuracy_floor = 0.5;

  std::int64_t interval_batches = 64;  ///< served batches per aging interval
  double sa0_fraction = kPaperSa0Fraction;

  /// Per-cell probability of a transient upset per tick (quantized devices
  /// only — float datapaths fold faults into weights, which is not
  /// replay-safe for run-time upsets). 0 disables transients.
  double p_transient_per_tick = 0.0;

  std::uint64_t seed = 99;  ///< master seed; every stream derives from it

  ProfileDistribution profile{};

  RepairPolicyKind policy = RepairPolicyKind::kNeverRepair;
  RepairPolicyConfig policy_config{};

  /// Engine geometry for quantized devices. ABFT is forced ON for them (the
  /// detection-driven policy and DeviceStatus::abft_flagged need it).
  qinfer::QuantizedEngineConfig quantized{};
  /// Float-device conductance mapping.
  InjectorConfig injector{};

  /// Crash-safe sweep state: when non-empty, the simulator writes an FTCK
  /// checkpoint here every checkpoint_every_ticks ticks (and at the end of
  /// run()). FleetSimulator::resume() picks the sweep back up bit-exactly.
  std::string checkpoint_path;
  std::int64_t checkpoint_every_ticks = 16;

  void validate() const;

  /// Canonical config echo for the FLCF chunk; two configs produce the same
  /// bytes iff every simulation-relevant field matches.
  void encode(ByteWriter& out) const;
};

/// Device `device`'s profile: pure function of (config.seed, device), drawn
/// from its own derived stream in a fixed order. See file comment.
[[nodiscard]] DeviceProfile draw_profile(const FleetConfig& config, int device);

// Stream ids hung off FleetConfig::seed via derive_seed(seed, stream). Fixed
// constants: checkpoint resume replays these streams, so renumbering them is
// a checkpoint format change.
inline constexpr std::uint64_t kProfileStream = 11;    ///< draw_profile
inline constexpr std::uint64_t kPoolStream = 12;       ///< per-device ReplicaPool seeds
inline constexpr std::uint64_t kAgingStream = 13;      ///< shared AgingModel seed
inline constexpr std::uint64_t kTransientStream = 14;  ///< per-(device, tick) upsets
inline constexpr std::uint64_t kProbeStream = 15;      ///< canary probe set

}  // namespace ftpim::fleet
