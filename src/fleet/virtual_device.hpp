// One virtual edge device of the fleet simulator.
//
// A VirtualDevice wraps a single-replica ReplicaPool (the serve layer's
// device abstraction: clone of the clean model + persistent defect map +
// optional quantized deployment) and drives it through the fault lifecycle
// one virtual-clock tick at a time:
//
//   serve -> age -> transient upsets -> probe -> ABFT drain -> death check
//         -> repair-policy action
//
// Traffic is modeled as a served-batch COUNT that advances the aging clock —
// running real traffic batches for thousands of devices would dominate
// wall-time without changing any signal the policies see; the probe forward
// (the device's real inference over the shared canary set) is the measured
// compute, and its accuracy is the device's health ground truth.
//
// Transient upsets are QUANTIZED-datapath only: they land non-destructively
// in the engines' level domain, where a refresh (re-program) can heal them
// and a checkpoint can replay them. The float path folds faults into weights
// — not invertible, hence not replay-safe for run-time upsets — so float
// devices model manufacturing + aging faults only.
//
// Determinism: every stochastic stream is a pure function of
// (FleetConfig::seed, device index, tick/interval index) — profile draw,
// defect maps, aging batches, transient bursts. A device's whole trajectory
// is therefore independent of every other device and of thread count, which
// is what lets FleetSimulator fan devices out over parallel_for_chunks and
// restore them in parallel from a checkpoint.
//
// Checkpointing: encode_state() captures the device's evolving state
// (counters, outcome window, transient map) plus an echo of its persistent
// defect map. restore_state() rebuilds the pool by REPLAY — repair() per
// generation, advance_aging() to the recorded interval — then byte-compares
// the reconstructed map against the echo and throws
// CheckpointError(kStateMismatch) on any divergence, so a checkpoint from a
// different seed/config can never silently resume.
#pragma once

#include <cstdint>
#include <memory>

#include "src/common/stats.hpp"
#include "src/core/evaluator.hpp"
#include "src/fleet/fleet_config.hpp"
#include "src/fleet/repair_policy.hpp"
#include "src/reram/aging.hpp"
#include "src/reram/defect_map.hpp"
#include "src/serve/replica_pool.hpp"

namespace ftpim::fleet {

/// What one device did during one tick — the simulator's aggregation input.
struct DeviceTick {
  bool was_alive = false;  ///< entered the tick alive (dead devices no-op)
  bool died = false;       ///< probe fell below the accuracy floor THIS tick
  double probe_accuracy = 1.0;
  std::int64_t repairs = 0;          ///< device swaps this tick (0 or 1)
  std::int64_t scrubs = 0;           ///< whole-die refreshes this tick (0 or 1)
  std::int64_t detections = 0;       ///< ABFT flagged this tick (0 or 1)
  std::int64_t aged_cells = 0;       ///< cells newly stuck by aging this tick
  std::int64_t transient_cells = 0;  ///< cells newly upset this tick
};

class VirtualDevice {
 public:
  /// Builds device `index` of the fleet: draws its profile, clones `source`
  /// into a one-replica pool with its manufacturing defect map, and (on the
  /// quantized datapath) deploys with ABFT checksums armed.
  VirtualDevice(const Module& source, const FleetConfig& config, int index);

  VirtualDevice(const VirtualDevice&) = delete;
  VirtualDevice& operator=(const VirtualDevice&) = delete;

  /// Advances the device through virtual tick `tick` (see file comment).
  /// `policy` decides the end-of-tick maintenance action; `probe` is the
  /// fleet-shared canary set. Dead devices return a default DeviceTick.
  /// Single-owner: one thread drives a given device at a time.
  DeviceTick step(const RepairPolicy& policy, std::int64_t tick, const CanarySet& probe);

  [[nodiscard]] int index() const noexcept { return index_; }
  [[nodiscard]] const DeviceProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] bool alive() const noexcept { return dead_at_ < 0; }
  /// Tick the device died on, or -1 while alive.
  [[nodiscard]] std::int64_t dead_at() const noexcept { return dead_at_; }

  // Lifetime totals (survive repairs; the policy-comparison accounting).
  [[nodiscard]] std::int64_t repairs() const noexcept { return repairs_; }
  [[nodiscard]] std::int64_t scrubs() const noexcept { return scrubs_; }
  [[nodiscard]] std::int64_t detections() const noexcept { return detections_; }
  [[nodiscard]] std::int64_t aged_cells() const noexcept { return aged_cells_; }
  [[nodiscard]] std::int64_t transient_cells() const noexcept { return transient_cells_; }

  /// Probe accuracy measured on the most recent live tick (1.0 before the
  /// first step).
  [[nodiscard]] double last_probe_accuracy() const noexcept { return last_probe_accuracy_; }

  /// The underlying pool (tests introspect maps/generations through it).
  [[nodiscard]] const serve::ReplicaPool& pool() const noexcept { return *pool_; }

  /// Serializes the device's evolving state (see file comment). Layout is
  /// the FLDV chunk's per-device record.
  void encode_state(ByteWriter& out) const;

  /// Restores an encode_state() record into this freshly constructed device
  /// by replaying its lifecycle. Throws CheckpointError on malformed input
  /// or on any mismatch with the device this config would have produced.
  void restore_state(ByteReader& in);

 private:
  [[nodiscard]] bool quantized() const noexcept {
    return profile_.datapath == Datapath::kQuantized;
  }
  void do_refresh();
  void do_repair();

  const FleetConfig* config_;  ///< owned by FleetSimulator; outlives devices
  int index_ = 0;
  DeviceProfile profile_;
  std::unique_ptr<serve::ReplicaPool> pool_;
  AgingModel aging_;
  std::int64_t cells_ = 0;  ///< model-level cell count (transient sampling)

  // Evolving state — everything encode_state() must capture.
  std::int64_t dead_at_ = -1;
  std::int64_t served_batches_ = 0;  ///< since last repair (drives aging)
  std::int64_t ticks_since_heal_ = 0;
  std::int64_t consecutive_detections_ = 0;
  std::int64_t repairs_ = 0;
  std::int64_t scrubs_ = 0;
  std::int64_t detections_ = 0;
  std::int64_t aged_cells_ = 0;
  std::int64_t transient_cells_ = 0;
  double last_probe_accuracy_ = 1.0;
  OutcomeWindow window_;
  DefectMap transients_;  ///< accumulated un-healed upsets (quantized only)
};

}  // namespace ftpim::fleet
