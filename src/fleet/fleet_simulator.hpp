// Fleet-at-scale fault-lifecycle simulator (DESIGN.md §15).
//
// FleetSimulator runs FleetConfig::num_devices VirtualDevices over a shared
// virtual clock: step() advances every live device one tick — serve, age,
// take transient upsets, probe, consult the repair policy — then reduces the
// per-device outcomes into one TickAggregate. run() steps to the configured
// horizon and returns the policy-comparison summary.
//
// Parallelism: devices are mutually independent by construction (every
// stochastic stream is keyed by device index), so each tick fans the device
// loop out over parallel_for_chunks with results landing in per-device slots;
// the reduction then walks the slots serially in index order. Aggregates —
// and therefore survival curves, percentile bands, checkpoints, everything —
// are bit-identical at any FTPIM_THREADS setting.
//
// Crash-safe sweeps: with FleetConfig::checkpoint_path set, the simulator
// writes an FTCK checkpoint (atomically, CRC32C-framed) every
// checkpoint_every_ticks ticks and at the end of run(). Chunks:
//
//   FLCF  canonical FleetConfig echo (resume() byte-compares and refuses a
//         mismatched config with CheckpointError kStateMismatch)
//   FLCU  cursor: next tick to simulate
//   FLTL  the TickAggregate timeline so far
//   FLDV  per-device records, each u64-length-prefixed so restore can fan
//         device replay out over parallel_for_chunks
//
// resume() restores a freshly constructed simulator to the checkpoint's
// cursor; stepping to the horizon then reproduces the uninterrupted run's
// timeline BIT-EXACTLY (tests/fleet_resume_test.cpp kills a sweep at every
// checkpoint boundary and diffs the curves).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/evaluator.hpp"
#include "src/fleet/fleet_config.hpp"
#include "src/fleet/repair_policy.hpp"
#include "src/fleet/survival.hpp"
#include "src/fleet/virtual_device.hpp"
#include "src/nn/module.hpp"

namespace ftpim::fleet {

class FleetSimulator {
 public:
  /// Validates `config`, builds the probe set from a pristine clone of
  /// `source`, and constructs the fleet (device construction — profile draw,
  /// clone, defect injection, deployment — fans out in parallel).
  FleetSimulator(const Module& source, const FleetConfig& config);

  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  /// Advances the whole fleet one tick and appends the tick's aggregate.
  /// Writes a checkpoint when the cadence (or the horizon) says so.
  void step();

  /// Steps until config().ticks ticks have been simulated (no-op if already
  /// there — a resumed-at-the-horizon sweep just returns its summary), then
  /// returns the final rollup.
  FleetSummary run();

  /// Restores this simulator to a checkpoint written by a sweep with a
  /// byte-identical config. Must be called before any step() — the restore
  /// replaces the freshly built tick-0 state. Throws CheckpointError on any
  /// corruption or config/seed mismatch.
  void resume(const std::string& path);

  /// Writes the current sweep state to `path` (atomic; see file comment).
  void checkpoint_to(const std::string& path) const;

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  /// Next tick step() will simulate (== ticks completed so far).
  [[nodiscard]] std::int64_t next_tick() const noexcept { return next_tick_; }
  [[nodiscard]] const std::vector<TickAggregate>& timeline() const noexcept { return timeline_; }
  [[nodiscard]] int device_count() const noexcept { return static_cast<int>(devices_.size()); }
  [[nodiscard]] const VirtualDevice& device(int index) const { return *devices_.at(static_cast<std::size_t>(index)); }
  [[nodiscard]] const CanarySet& probe() const noexcept { return probe_; }

  /// Per-device death ticks (-1 = still alive / censored), index order.
  [[nodiscard]] std::vector<std::int64_t> death_ticks() const;

  /// Rollup of the timeline so far (priced with config().policy_config).
  [[nodiscard]] FleetSummary summary() const;

 private:
  void maybe_checkpoint() const;

  FleetConfig config_;
  std::unique_ptr<Module> source_;  ///< pristine clone; devices clone from it
  CanarySet probe_;
  std::unique_ptr<RepairPolicy> policy_;
  std::vector<std::unique_ptr<VirtualDevice>> devices_;
  std::vector<TickAggregate> timeline_;
  std::int64_t next_tick_ = 0;
};

}  // namespace ftpim::fleet
