#include "src/fleet/survival.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"

namespace ftpim::fleet {

void TickAggregate::encode(ByteWriter& out) const {
  out.i64(tick);
  out.i64(alive);
  out.i64(deaths);
  out.f64(acc_mean);
  out.f64(acc_p10);
  out.f64(acc_p50);
  out.f64(acc_p90);
  out.i64(repairs);
  out.i64(scrubs);
  out.i64(detections);
  out.i64(aged_cells);
  out.i64(transient_cells);
}

TickAggregate TickAggregate::decode(ByteReader& in) {
  TickAggregate agg;
  agg.tick = in.i64();
  agg.alive = in.i64();
  agg.deaths = in.i64();
  agg.acc_mean = in.f64();
  agg.acc_p10 = in.f64();
  agg.acc_p50 = in.f64();
  agg.acc_p90 = in.f64();
  agg.repairs = in.i64();
  agg.scrubs = in.i64();
  agg.detections = in.i64();
  agg.aged_cells = in.i64();
  agg.transient_cells = in.i64();
  if (agg.alive < 0 || agg.deaths < 0 || agg.deaths > agg.alive) {
    throw CheckpointError(CheckpointErrorKind::kFormat, "FLTL",
                          "tick aggregate: deaths/alive counts inconsistent");
  }
  return agg;
}

std::vector<double> survival_curve(const std::vector<TickAggregate>& timeline) {
  std::vector<double> curve;
  curve.reserve(timeline.size());
  double survival = 1.0;
  for (const TickAggregate& agg : timeline) {
    if (agg.alive > 0) {
      survival *= 1.0 - static_cast<double>(agg.deaths) / static_cast<double>(agg.alive);
    }
    // alive == 0: nobody at risk, the estimate carries flat (S stays 0 once
    // the whole fleet is gone).
    curve.push_back(survival);
  }
  return curve;
}

FleetSummary summarize_fleet(const std::vector<TickAggregate>& timeline,
                             const std::vector<std::int64_t>& death_ticks, double repair_cost,
                             double scrub_cost) {
  FleetSummary summary;
  summary.devices = static_cast<int>(death_ticks.size());
  summary.ticks = static_cast<std::int64_t>(timeline.size());

  const std::int64_t horizon = summary.ticks;
  std::int64_t lifetime_sum = 0;
  for (std::int64_t death : death_ticks) {
    if (death < 0) {
      ++summary.survivors;
      lifetime_sum += horizon;  // censored: survived the whole observation
    } else {
      lifetime_sum += death;  // lived ticks [0, death)
    }
  }
  summary.mean_lifetime_ticks =
      summary.devices == 0 ? 0.0
                           : static_cast<double>(lifetime_sum) / static_cast<double>(summary.devices);

  const std::vector<double> curve = survival_curve(timeline);
  summary.survival_fraction = curve.empty() ? 1.0 : curve.back();
  for (const TickAggregate& agg : timeline) {
    summary.repairs += agg.repairs;
    summary.scrubs += agg.scrubs;
    summary.detections += agg.detections;
  }
  summary.total_cost = static_cast<double>(summary.repairs) * repair_cost +
                       static_cast<double>(summary.scrubs) * scrub_cost;
  if (!timeline.empty()) summary.final_acc_p50 = timeline.back().acc_p50;
  return summary;
}

std::string survival_sparkline(const std::vector<double>& curve, int width) {
  FTPIM_CHECK(width >= 1, "survival_sparkline: width %d must be >= 1", width);
  static const char* kGlyphs[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (curve.empty()) return "";
  const int cols = std::min<int>(width, static_cast<int>(curve.size()));
  std::string out;
  for (int c = 0; c < cols; ++c) {
    // Sample the curve at evenly spaced ticks (last column = last tick).
    const std::size_t at =
        cols == 1 ? curve.size() - 1
                  : static_cast<std::size_t>(c) * (curve.size() - 1) / (static_cast<std::size_t>(cols) - 1);
    const double v = std::clamp(curve[at], 0.0, 1.0);
    const int level = std::min(7, static_cast<int>(v * 8.0));
    out += kGlyphs[level];
  }
  return out;
}

}  // namespace ftpim::fleet
