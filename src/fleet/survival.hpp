// Fleet-level survival analysis: per-tick aggregates, Kaplan-Meier curves,
// and the end-of-sweep policy-comparison summary.
//
// The simulator reduces each tick's DeviceTicks (in device-index order —
// exact integer/double sums in a fixed order, so aggregates are bit-identical
// at any thread count) into one TickAggregate. The timeline of aggregates is
// the sweep's whole observable output: survival curves, accuracy percentile
// bands, and maintenance accounting all derive from it, and it round-trips
// through the FLTL checkpoint chunk so a resumed sweep's artifacts are
// bit-identical to an uninterrupted run's.
//
// Survival here is the textbook right-censored setting: a device "dies" the
// first tick its probe accuracy drops below FleetConfig::accuracy_floor
// (death is permanent — no post-mortem repair), and devices still alive at
// the horizon are censored. With every device observed every tick there are
// no unknown-risk gaps, so the Kaplan-Meier product estimator reduces to the
// running alive-fraction; we keep the product form because it is the curve
// the fleet-reliability literature names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftpim {
class ByteWriter;
class ByteReader;
}  // namespace ftpim

namespace ftpim::fleet {

/// One tick of fleet-wide history (device-order-exact sums; see file
/// comment). Accuracy stats are over devices ALIVE ENTERING the tick — a
/// device's dying probe is its last contribution.
struct TickAggregate {
  std::int64_t tick = 0;
  std::int64_t alive = 0;   ///< devices alive entering the tick (at risk)
  std::int64_t deaths = 0;  ///< of those, how many died this tick
  double acc_mean = 0.0;    ///< probe accuracy over at-risk devices
  double acc_p10 = 0.0;     ///< percentile band (nearest-rank)
  double acc_p50 = 0.0;
  double acc_p90 = 0.0;
  std::int64_t repairs = 0;  ///< device swaps this tick
  std::int64_t scrubs = 0;   ///< whole-die refreshes this tick
  std::int64_t detections = 0;  ///< devices whose ABFT rang this tick
  std::int64_t aged_cells = 0;
  std::int64_t transient_cells = 0;

  void encode(ByteWriter& out) const;
  [[nodiscard]] static TickAggregate decode(ByteReader& in);
};

/// Kaplan-Meier survival estimate S(t) per tick: the product over ticks
/// u <= t of (1 - deaths_u / at_risk_u). One entry per timeline entry.
[[nodiscard]] std::vector<double> survival_curve(const std::vector<TickAggregate>& timeline);

/// End-of-sweep rollup (one row of the policy-comparison table).
struct FleetSummary {
  int devices = 0;
  std::int64_t ticks = 0;      ///< timeline length
  std::int64_t survivors = 0;  ///< alive at the horizon (censored)
  double survival_fraction = 0.0;  ///< final Kaplan-Meier S(t)
  /// Mean ticks-before-death, counting censored devices at the horizon — a
  /// lower bound on true mean lifetime, comparable across policies run to
  /// the same horizon.
  double mean_lifetime_ticks = 0.0;
  std::int64_t repairs = 0;
  std::int64_t scrubs = 0;
  std::int64_t detections = 0;
  /// repairs * repair_cost + scrubs * scrub_cost (RepairPolicyConfig units).
  double total_cost = 0.0;
  double final_acc_p50 = 0.0;  ///< last tick's at-risk median accuracy
};

/// Reduces a timeline (plus the per-device death ticks, -1 = censored) to a
/// summary. `repair_cost`/`scrub_cost` price the maintenance column.
[[nodiscard]] FleetSummary summarize_fleet(const std::vector<TickAggregate>& timeline,
                                           const std::vector<std::int64_t>& death_ticks,
                                           double repair_cost, double scrub_cost);

/// Unicode sparkline of a survival curve (examples render sweeps with it):
/// one glyph per sampled tick, ▁..█ scaled over [0, 1].
[[nodiscard]] std::string survival_sparkline(const std::vector<double>& curve, int width = 48);

}  // namespace ftpim::fleet
