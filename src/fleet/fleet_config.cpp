#include "src/fleet/fleet_config.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/rng.hpp"

namespace ftpim::fleet {
namespace {

/// Log-uniform draw in [lo, hi]: uniform in log-space, so a decade near lo
/// gets as many devices as a decade near hi. hi <= lo pins the knob at lo
/// (the "every device identical" configuration needs no positivity check).
double log_uniform(Rng& rng, double lo, double hi) {
  if (hi <= lo) return lo;
  return lo * std::exp(rng.uniform_double() * std::log(hi / lo));
}

}  // namespace

const char* to_string(Datapath datapath) noexcept {
  switch (datapath) {
    case Datapath::kFloat: return "float";
    case Datapath::kQuantized: return "quantized";
  }
  return "unknown";
}

void ProfileDistribution::validate() const {
  FTPIM_CHECK(p_sa_min >= 0.0 && p_sa_max <= 0.5 && p_sa_min <= p_sa_max,
              "fleet profile: p_sa range [%.4g, %.4g] must satisfy 0 <= min <= max <= 0.5",
              p_sa_min, p_sa_max);
  FTPIM_CHECK(p_sa_max <= p_sa_min || p_sa_min > 0.0,
              "fleet profile: log-uniform p_sa needs p_sa_min > 0 when the range is non-empty");
  FTPIM_CHECK(aging_min >= 0.0 && aging_min <= aging_max,
              "fleet profile: aging range [%.4g, %.4g] must satisfy 0 <= min <= max", aging_min,
              aging_max);
  FTPIM_CHECK(aging_max <= aging_min || aging_min > 0.0,
              "fleet profile: log-uniform aging needs aging_min > 0 when the range is non-empty");
  FTPIM_CHECK(traffic_min >= 1 && traffic_min <= traffic_max,
              "fleet profile: traffic range [%lld, %lld] must satisfy 1 <= min <= max",
              static_cast<long long>(traffic_min), static_cast<long long>(traffic_max));
  FTPIM_CHECK(quantized_fraction >= 0.0 && quantized_fraction <= 1.0,
              "fleet profile: quantized_fraction %.3f outside [0, 1]", quantized_fraction);
}

void FleetConfig::validate() const {
  FTPIM_CHECK(num_devices >= 1, "fleet: num_devices %d must be >= 1", num_devices);
  FTPIM_CHECK(ticks >= 1, "fleet: ticks %lld must be >= 1", static_cast<long long>(ticks));
  FTPIM_CHECK(!sample_shape.empty(), "fleet: sample_shape must be non-empty");
  for (std::int64_t dim : sample_shape) {
    FTPIM_CHECK(dim >= 1, "fleet: sample_shape dims must be >= 1 (got %lld)",
                static_cast<long long>(dim));
  }
  FTPIM_CHECK(probe_samples >= 1, "fleet: probe_samples %d must be >= 1", probe_samples);
  FTPIM_CHECK(accuracy_floor >= 0.0 && accuracy_floor <= 1.0,
              "fleet: accuracy_floor %.3f outside [0, 1]", accuracy_floor);
  FTPIM_CHECK(interval_batches >= 1, "fleet: interval_batches %lld must be >= 1",
              static_cast<long long>(interval_batches));
  FTPIM_CHECK(sa0_fraction >= 0.0 && sa0_fraction <= 1.0, "fleet: sa0_fraction %.3f outside [0, 1]",
              sa0_fraction);
  FTPIM_CHECK(p_transient_per_tick >= 0.0 && p_transient_per_tick <= 0.5,
              "fleet: p_transient_per_tick %.4g outside [0, 0.5]", p_transient_per_tick);
  FTPIM_CHECK(checkpoint_every_ticks >= 1, "fleet: checkpoint_every_ticks %lld must be >= 1",
              static_cast<long long>(checkpoint_every_ticks));
  profile.validate();
  policy_config.validate();
}

void FleetConfig::encode(ByteWriter& out) const {
  // Canonical echo: every field the simulation's trajectory depends on, in
  // declaration order. checkpoint_path / checkpoint_every_ticks are
  // deliberately OMITTED — where and how often a sweep snapshots itself does
  // not change its results, and resuming from a relocated file must work.
  out.u32(static_cast<std::uint32_t>(num_devices));
  out.i64(ticks);
  out.u32(static_cast<std::uint32_t>(sample_shape.size()));
  for (std::int64_t dim : sample_shape) out.i64(dim);
  out.u32(static_cast<std::uint32_t>(probe_samples));
  out.f64(accuracy_floor);
  out.i64(interval_batches);
  out.f64(sa0_fraction);
  out.f64(p_transient_per_tick);
  out.u64(seed);
  out.f64(profile.p_sa_min);
  out.f64(profile.p_sa_max);
  out.f64(profile.aging_min);
  out.f64(profile.aging_max);
  out.i64(profile.traffic_min);
  out.i64(profile.traffic_max);
  out.f64(profile.quantized_fraction);
  out.u8(static_cast<std::uint8_t>(policy));
  out.u32(static_cast<std::uint32_t>(policy_config.min_samples));
  out.f64(policy_config.repair_below);
  out.i64(policy_config.refresh_every_ticks);
  out.u32(static_cast<std::uint32_t>(policy_config.max_scrub_retries));
  out.f64(policy_config.repair_cost);
  out.f64(policy_config.scrub_cost);
  out.i64(quantized.tile_rows);
  out.i64(quantized.tile_cols);
  out.f32(quantized.range.g_min);
  out.f32(quantized.range.g_max);
  out.u32(static_cast<std::uint32_t>(quantized.levels));
  out.u32(static_cast<std::uint32_t>(quantized.adc.bits));
  out.f64(quantized.adc.range_factor);
  out.f64(quantized.abft.tolerance_scale);
  out.f32(injector.range.g_min);
  out.f32(injector.range.g_max);
  out.u32(static_cast<std::uint32_t>(injector.quant_levels));
  out.u8(injector.per_tensor_wmax ? 1 : 0);
  out.f32(injector.fixed_wmax);
}

DeviceProfile draw_profile(const FleetConfig& config, int device) {
  // Fixed draw ORDER (p_sa, aging, traffic, datapath) — reordering these
  // calls re-rolls every fleet, so it is part of the reproducibility
  // contract, like the stream ids.
  Rng rng(derive_seed(derive_seed(config.seed, kProfileStream), static_cast<std::uint64_t>(device)));
  DeviceProfile profile;
  profile.p_sa = log_uniform(rng, config.profile.p_sa_min, config.profile.p_sa_max);
  profile.aging_per_interval = log_uniform(rng, config.profile.aging_min, config.profile.aging_max);
  profile.batches_per_tick =
      config.profile.traffic_min +
      static_cast<std::int64_t>(rng.uniform_int(
          static_cast<std::uint64_t>(config.profile.traffic_max - config.profile.traffic_min + 1)));
  profile.datapath =
      rng.bernoulli(config.profile.quantized_fraction) ? Datapath::kQuantized : Datapath::kFloat;
  return profile;
}

}  // namespace ftpim::fleet
