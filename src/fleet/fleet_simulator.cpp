#include "src/fleet/fleet_simulator.hpp"

#include <exception>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/strformat.hpp"

namespace ftpim::fleet {
namespace {

// Checkpoint chunk tags (see fleet_simulator.hpp).
constexpr const char* kConfigChunk = "FLCF";
constexpr const char* kCursorChunk = "FLCU";
constexpr const char* kTimelineChunk = "FLTL";
constexpr const char* kDevicesChunk = "FLDV";

/// parallel_for workers must not throw (std::thread would terminate), so
/// every per-device parallel body records its first failure here and the
/// caller rethrows serially after the join — lowest device index wins, which
/// keeps even the error surface thread-count-independent.
void rethrow_first(const std::vector<std::exception_ptr>& errors) {
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

FleetSimulator::FleetSimulator(const Module& source, const FleetConfig& config) : config_(config) {
  config_.validate();
  source_ = source.clone();
  probe_ = make_canary_set(*source_, config_.sample_shape, config_.probe_samples,
                           derive_seed(config_.seed, kProbeStream));
  policy_ = make_repair_policy(config_.policy, config_.policy_config);

  // Device construction — profile draw, clone, defect injection, deployment
  // — is index-keyed and independent, so it fans out like a tick does.
  devices_.resize(static_cast<std::size_t>(config_.num_devices));
  std::vector<std::exception_ptr> errors(devices_.size());
  parallel_for_chunks(
      0, devices_.size(),
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          try {
            devices_[i] = std::make_unique<VirtualDevice>(*source_, config_, static_cast<int>(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      },
      /*min_parallel_trip=*/1);
  rethrow_first(errors);
}

void FleetSimulator::step() {
  const std::int64_t tick = next_tick_;

  // Fan out: every device advances independently into its own slot.
  std::vector<DeviceTick> slots(devices_.size());
  std::vector<std::exception_ptr> errors(devices_.size());
  parallel_for_chunks(
      0, devices_.size(),
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          try {
            slots[i] = devices_[i]->step(*policy_, tick, probe_);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      },
      /*min_parallel_trip=*/1);
  rethrow_first(errors);

  // Reduce serially in device-index order: fixed-order sums, so the
  // aggregate is bit-identical at any thread count.
  TickAggregate agg;
  agg.tick = tick;
  std::vector<double> at_risk;
  at_risk.reserve(slots.size());
  double acc_sum = 0.0;
  for (const DeviceTick& dev : slots) {
    if (!dev.was_alive) continue;
    ++agg.alive;
    if (dev.died) ++agg.deaths;
    acc_sum += dev.probe_accuracy;
    at_risk.push_back(dev.probe_accuracy);
    agg.repairs += dev.repairs;
    agg.scrubs += dev.scrubs;
    agg.detections += dev.detections;
    agg.aged_cells += dev.aged_cells;
    agg.transient_cells += dev.transient_cells;
  }
  if (agg.alive > 0) {
    agg.acc_mean = acc_sum / static_cast<double>(agg.alive);
    agg.acc_p10 = quantile(at_risk, 0.10);
    agg.acc_p50 = quantile(at_risk, 0.50);
    agg.acc_p90 = quantile(at_risk, 0.90);
  }
  timeline_.push_back(agg);
  ++next_tick_;
  maybe_checkpoint();
}

FleetSummary FleetSimulator::run() {
  while (next_tick_ < config_.ticks) step();
  return summary();
}

std::vector<std::int64_t> FleetSimulator::death_ticks() const {
  std::vector<std::int64_t> deaths;
  deaths.reserve(devices_.size());
  for (const auto& dev : devices_) deaths.push_back(dev->dead_at());
  return deaths;
}

FleetSummary FleetSimulator::summary() const {
  return summarize_fleet(timeline_, death_ticks(), config_.policy_config.repair_cost,
                         config_.policy_config.scrub_cost);
}

void FleetSimulator::maybe_checkpoint() const {
  if (config_.checkpoint_path.empty()) return;
  if (next_tick_ % config_.checkpoint_every_ticks == 0 || next_tick_ == config_.ticks) {
    checkpoint_to(config_.checkpoint_path);
  }
}

void FleetSimulator::checkpoint_to(const std::string& path) const {
  CheckpointWriter writer;
  {
    ByteWriter config_echo;
    config_.encode(config_echo);
    writer.add_chunk(kConfigChunk, config_echo.take());
  }
  {
    ByteWriter cursor;
    cursor.i64(next_tick_);
    writer.add_chunk(kCursorChunk, cursor.take());
  }
  {
    ByteWriter timeline;
    timeline.u32(static_cast<std::uint32_t>(timeline_.size()));
    for (const TickAggregate& agg : timeline_) agg.encode(timeline);
    writer.add_chunk(kTimelineChunk, timeline.take());
  }
  {
    // Each device record is u64-length-prefixed so resume() can locate all
    // records in one serial scan and replay them in parallel.
    ByteWriter devices;
    devices.u32(static_cast<std::uint32_t>(devices_.size()));
    for (const auto& dev : devices_) {
      ByteWriter record;
      dev->encode_state(record);
      devices.u64(record.bytes().size());
      devices.raw(record.bytes().data(), record.bytes().size());
    }
    writer.add_chunk(kDevicesChunk, devices.take());
  }
  writer.write(path);
}

void FleetSimulator::resume(const std::string& path) {
  FTPIM_CHECK(next_tick_ == 0 && timeline_.empty(),
              "FleetSimulator::resume: must be called before any step()");
  CheckpointReader reader(path);

  // The checkpointed config must byte-match the live one: profiles, fault
  // streams, and policy behavior are all functions of it, so resuming under
  // different parameters would silently change the sweep's meaning.
  ByteWriter live_config;
  config_.encode(live_config);
  if (reader.chunk(kConfigChunk) != live_config.bytes()) {
    throw CheckpointError(CheckpointErrorKind::kStateMismatch, kConfigChunk,
                          "checkpoint was written under a different fleet config/seed");
  }

  ByteReader cursor = reader.reader(kCursorChunk);
  const std::int64_t tick = cursor.i64();
  cursor.expect_done();
  if (tick < 0) {
    throw CheckpointError(CheckpointErrorKind::kFormat, kCursorChunk, "negative tick cursor");
  }

  ByteReader timeline_in = reader.reader(kTimelineChunk);
  const std::uint32_t entries = timeline_in.u32();
  if (static_cast<std::int64_t>(entries) != tick) {
    throw CheckpointError(
        CheckpointErrorKind::kFormat, kTimelineChunk,
        detail::format_msg("timeline holds %u entries but the cursor says %lld ticks completed",
                           entries, static_cast<long long>(tick)));
  }
  std::vector<TickAggregate> timeline;
  timeline.reserve(entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    TickAggregate agg = TickAggregate::decode(timeline_in);
    if (agg.tick != static_cast<std::int64_t>(i)) {
      throw CheckpointError(CheckpointErrorKind::kFormat, kTimelineChunk,
                            "timeline entries out of tick order");
    }
    timeline.push_back(agg);
  }
  timeline_in.expect_done();

  // One serial scan over the device chunk collects each record's extent...
  const std::vector<std::uint8_t>& device_bytes = reader.chunk(kDevicesChunk);
  ByteReader scan(device_bytes, kDevicesChunk);
  const std::uint32_t count = scan.u32();
  if (count != devices_.size()) {
    throw CheckpointError(
        CheckpointErrorKind::kStateMismatch, kDevicesChunk,
        detail::format_msg("checkpoint holds %u devices, this fleet has %zu", count,
                           devices_.size()));
  }
  struct Extent {
    std::size_t offset = 0;
    std::size_t length = 0;
  };
  std::vector<Extent> extents(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t length = scan.u64();
    extents[i].offset = device_bytes.size() - scan.remaining();
    extents[i].length = static_cast<std::size_t>(length);
    (void)scan.take_bytes(extents[i].length);  // bounds-checked skip
  }
  scan.expect_done();

  // ...then device replay (repair generations + aging + transient re-apply,
  // each cross-checked against its map echo) fans out in parallel.
  std::vector<std::exception_ptr> errors(devices_.size());
  parallel_for_chunks(
      0, devices_.size(),
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          try {
            ByteReader record(device_bytes.data() + extents[i].offset, extents[i].length,
                              kDevicesChunk);
            devices_[i]->restore_state(record);
            record.expect_done();
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      },
      /*min_parallel_trip=*/1);
  rethrow_first(errors);

  timeline_ = std::move(timeline);
  next_tick_ = tick;
}

}  // namespace ftpim::fleet
