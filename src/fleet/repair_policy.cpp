#include "src/fleet/repair_policy.hpp"

#include "src/common/check.hpp"

namespace ftpim::fleet {
namespace {

class NeverRepairPolicy final : public RepairPolicy {
 public:
  explicit NeverRepairPolicy(const RepairPolicyConfig&) {}
  [[nodiscard]] RepairPolicyKind kind() const noexcept override {
    return RepairPolicyKind::kNeverRepair;
  }
  [[nodiscard]] RepairActionKind decide(const DeviceStatus&) const override {
    return RepairActionKind::kNone;
  }
};

class CanaryGatedPolicy final : public RepairPolicy {
 public:
  explicit CanaryGatedPolicy(const RepairPolicyConfig& config) : config_(config) {}
  [[nodiscard]] RepairPolicyKind kind() const noexcept override {
    return RepairPolicyKind::kCanaryGated;
  }
  [[nodiscard]] RepairActionKind decide(const DeviceStatus& status) const override {
    // Evidence gate first: an empty or barely-filled window scores 1.0-ish
    // on tiny sample counts, so no verdict until min_samples outcomes exist.
    if (status.window_size < config_.min_samples) return RepairActionKind::kNone;
    if (status.window_score < config_.repair_below) return RepairActionKind::kRepair;
    return RepairActionKind::kNone;
  }

 private:
  RepairPolicyConfig config_;
};

class ScheduledRefreshPolicy final : public RepairPolicy {
 public:
  explicit ScheduledRefreshPolicy(const RepairPolicyConfig& config) : config_(config) {}
  [[nodiscard]] RepairPolicyKind kind() const noexcept override {
    return RepairPolicyKind::kScheduledRefresh;
  }
  [[nodiscard]] RepairActionKind decide(const DeviceStatus& status) const override {
    // Blind cadence: re-program the die on schedule regardless of health.
    // Heals transients; persistent (manufacturing + aging) faults come back.
    if (status.ticks_since_heal >= config_.refresh_every_ticks) return RepairActionKind::kScrub;
    return RepairActionKind::kNone;
  }

 private:
  RepairPolicyConfig config_;
};

class DetectionDrivenScrubPolicy final : public RepairPolicy {
 public:
  explicit DetectionDrivenScrubPolicy(const RepairPolicyConfig& config) : config_(config) {}
  [[nodiscard]] RepairPolicyKind kind() const noexcept override {
    return RepairPolicyKind::kDetectionDrivenScrub;
  }
  [[nodiscard]] RepairActionKind decide(const DeviceStatus& status) const override {
    // A detection streak that survives the scrub budget means scrubbing is
    // not fixing the cause (persistent faults resurface with the map), so
    // escalate to a swap — the same ladder maintain() walks in src/serve.
    if (status.consecutive_detections > config_.max_scrub_retries) return RepairActionKind::kRepair;
    if (status.abft_flagged) return RepairActionKind::kScrub;
    return RepairActionKind::kNone;
  }

 private:
  RepairPolicyConfig config_;
};

}  // namespace

const char* to_string(RepairActionKind action) noexcept {
  switch (action) {
    case RepairActionKind::kNone: return "none";
    case RepairActionKind::kScrub: return "scrub";
    case RepairActionKind::kRepair: return "repair";
  }
  return "unknown";
}

const char* to_string(RepairPolicyKind kind) noexcept {
  switch (kind) {
    case RepairPolicyKind::kNeverRepair: return "never_repair";
    case RepairPolicyKind::kCanaryGated: return "canary_gated";
    case RepairPolicyKind::kScheduledRefresh: return "scheduled_refresh";
    case RepairPolicyKind::kDetectionDrivenScrub: return "detection_driven_scrub";
  }
  return "unknown";
}

RepairPolicyKind parse_repair_policy(const std::string& name) {
  for (RepairPolicyKind kind : kAllRepairPolicies) {
    if (name == to_string(kind)) return kind;
  }
  FTPIM_CHECK(false,
              "unknown repair policy '%s' (want never_repair|canary_gated|"
              "scheduled_refresh|detection_driven_scrub)",
              name.c_str());
}

void RepairPolicyConfig::validate() const {
  FTPIM_CHECK(window >= 1, "repair policy: window %d must be >= 1", window);
  FTPIM_CHECK(min_samples >= 1, "repair policy: min_samples %d must be >= 1", min_samples);
  FTPIM_CHECK(repair_below >= 0.0 && repair_below <= 1.0,
              "repair policy: repair_below %.3f outside [0, 1]", repair_below);
  FTPIM_CHECK(refresh_every_ticks >= 1, "repair policy: refresh_every_ticks %lld must be >= 1",
              static_cast<long long>(refresh_every_ticks));
  FTPIM_CHECK(max_scrub_retries >= 0, "repair policy: max_scrub_retries %d must be >= 0",
              max_scrub_retries);
  FTPIM_CHECK(repair_cost >= 0.0 && scrub_cost >= 0.0,
              "repair policy: costs (%.2f, %.2f) must be non-negative", repair_cost, scrub_cost);
}

std::unique_ptr<RepairPolicy> make_repair_policy(RepairPolicyKind kind,
                                                 const RepairPolicyConfig& config) {
  config.validate();
  switch (kind) {
    case RepairPolicyKind::kNeverRepair: return std::make_unique<NeverRepairPolicy>(config);
    case RepairPolicyKind::kCanaryGated: return std::make_unique<CanaryGatedPolicy>(config);
    case RepairPolicyKind::kScheduledRefresh:
      return std::make_unique<ScheduledRefreshPolicy>(config);
    case RepairPolicyKind::kDetectionDrivenScrub:
      return std::make_unique<DetectionDrivenScrubPolicy>(config);
  }
  FTPIM_CHECK(false, "unknown repair policy kind %d", static_cast<int>(kind));
}

}  // namespace ftpim::fleet
